// Series summarizer: digests a per-window telemetry CSV captured with
// `--series` (any bench figure binary) into a run-quality report —
//
//   1. the steady-state window, found by MSER-5 truncation over the
//      committed-per-window throughput series, with steady-state
//      throughput / abort rate / MPL / operation latency;
//   2. the run's tightest epsilon headroom: which hierarchy node came
//      closest to its inconsistency bound, in which window, under which
//      limit — the margin-to-violation signal, not just the violation;
//   3. a per-node bound-utilization table over all charged nodes.
//
// Usage:
//   esr_series <series.csv> [--json]
//   esr_series --demo | --demo-negative [--json]
//
// --demo summarizes a built-in synthetic ramp-then-steady series;
// --demo-negative is the same series with one window pushed past its
// bound, demonstrating — and letting CI assert — that a negative-headroom
// window is detected and named.
//
// Exit status mirrors esr_audit: 0 when every window kept positive
// headroom, 2 when any node's headroom went negative (a bound violation
// the engine should have prevented), 1 on usage or I/O errors.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/series.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <series.csv> [--json]\n"
               "       %s --demo | --demo-negative [--json]\n",
               argv0, argv0);
  return 1;
}

void PrintSummary(const esr::RunSeries& series,
                  const esr::SeriesSummary& s) {
  std::printf("=== series summary: %s ===\n",
              series.source.empty() ? "(unlabeled run)"
                                    : series.source.c_str());
  std::printf("windows: %zu x %.1fs\n", s.total_windows, series.window_s);
  if (s.steady_state_found) {
    std::printf("steady state: found after %zu warmup window(s) (MSER-5)\n",
                s.warmup_windows);
  } else {
    std::printf(
        "steady state: NOT FOUND (MSER-5 never settled; stats below "
        "cover the whole run)\n");
  }
  std::printf("  throughput      %8.2f tps\n", s.steady_throughput);
  std::printf("  abort rate      %8.1f %%\n", 100.0 * s.steady_abort_rate);
  std::printf("  mean active MPL %8.2f\n", s.steady_mean_mpl);
  std::printf("  mean op latency %8.2f ms\n", s.steady_mean_op_latency_ms);

  if (s.certification_observed) {
    std::printf("certified through: %.1f s (streaming bound certification%s)\n",
                s.certified_through_s,
                s.certification_froze ? "; WATERMARK FROZE mid-run" : "");
  }

  if (!s.headroom_observed) {
    std::printf(
        "headroom: no bounded charges observed (unbounded run, or a "
        "build with tracing disabled)\n");
    return;
  }
  std::printf(
      "tightest headroom: %.1f%% at node '%s' in window %zu (limit %g)\n",
      100.0 * s.tightest_headroom_frac, s.tightest_node.c_str(),
      s.tightest_window, s.tightest_limit);

  std::printf("\n%-16s %12s %12s %10s %8s %10s\n", "node", "peak_accum",
              "min_headroom", "window", "limit", "charges");
  for (const esr::SeriesNodeSummary& node : s.nodes) {
    if (node.charges <= 0) continue;
    std::printf("%-16s %12.1f %11.1f%% %10zu %8g %10lld\n",
                node.name.c_str(), node.peak_accumulated,
                100.0 * node.min_headroom_frac, node.min_window,
                node.limit_at_min, static_cast<long long>(node.charges));
  }

  if (s.negative_headroom) {
    std::printf(
        "\nVIOLATION: node '%s' exceeded its bound in window %zu "
        "(headroom %.1f%% of limit %g)\n",
        s.tightest_node.c_str(), s.tightest_window,
        100.0 * s.tightest_headroom_frac, s.tightest_limit);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  bool json = false;
  bool demo = false;
  bool demo_negative = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--demo-negative") == 0) {
      demo_negative = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (csv_path.empty()) {
      csv_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  // Exactly one input: a series file, or one of the built-in demos.
  const int inputs =
      (csv_path.empty() ? 0 : 1) + (demo ? 1 : 0) + (demo_negative ? 1 : 0);
  if (inputs != 1) return Usage(argv[0]);

  esr::RunSeries series;
  if (demo || demo_negative) {
    series = esr::BuildDemoSeries(/*with_violation=*/demo_negative);
  } else {
    esr::Result<esr::RunSeries> read = esr::ReadSeriesCsvFile(csv_path);
    if (!read.ok()) {
      std::fprintf(stderr, "esr_series: %s\n",
                   read.status().ToString().c_str());
      return 1;
    }
    series = *std::move(read);
  }

  const esr::SeriesSummary summary = esr::SummarizeSeries(series);
  if (json) {
    esr::WriteSeriesSummaryJson(summary, std::cout);
  } else {
    PrintSummary(series, summary);
  }
  if (summary.negative_headroom && json) {
    // The printed report names the violation; keep the JSON stream pure
    // and route the human-readable pointer to stderr.
    std::fprintf(stderr,
                 "esr_series: node '%s' exceeded its bound in window %zu\n",
                 summary.tightest_node.c_str(), summary.tightest_window);
  }
  return summary.negative_headroom ? 2 : 0;
}
