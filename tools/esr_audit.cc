// Offline trace auditor: replays a Chrome trace captured with --trace
// (threaded_server, banking_hierarchy, or any bench figure binary) and
//
//   1. recertifies every hierarchical inconsistency bound from the
//      BoundCheck/ImportCharge stream — Sec. 5.3.1's invariant, proved
//      from the trace alone, flagging any interval during which an
//      admitted charge pushed a node past its declared limit;
//   2. reconstructs per-transaction conflict chains (which writer forced
//      which wait, and who blocked the most total time);
//   3. decomposes commit latency along the causal spans into RPC wait,
//      engine service, conflict wait, and client-side remainder.
//
// Usage:
//   esr_audit <trace.json> [--json report.json] [--top N]
//             [--perturb N] [--seed S]
//   esr_audit --demo-violation [--json report.json] [--perturb N]
//
// --demo-violation audits a built-in hand-crafted history in which an
// engine (wrongly) admits charges past a group bound, demonstrating —
// and letting CI assert — that a broken invariant is detected.
//
// Every audit also streams the same events through the online certifier
// (obs/stream_audit.h) and diffs its verdict against the offline replay
// field for field; any divergence is a certifier bug and exits 1.
//
// --perturb N hunts for schedule-sensitive violations: N seeded
// commit-order/timing perturbations of the captured schedule — each
// preserving per-client program order — are recertified; a violation
// under perturbation of an otherwise certified trace exits 2 and a
// minimal reproduction (the violating transaction's bound-relevant
// events) is reported. --seed S sets the base seed (default 1).
//
// Exit status: 0 when the trace (and every perturbed schedule) certifies,
// 2 when any bound violation is found, 1 on usage or I/O errors, or on a
// streaming/offline divergence.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/stream_audit.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace {

// A history in which the engine mis-enforces the banking example's
// hierarchy: a query ET declares TIL 100 with LIMIT 50 on group 5, and the
// (buggy) engine admits import charges of 30 then 40 through the full
// bottom-up walk. The second walk leaves group 5 at 70 — over its declared
// bound — which the replay must flag, naming the node and the interval
// from the offending admit to the transaction's end.
std::vector<esr::TraceEvent> DemoViolationHistory() {
  using esr::TraceEvent;
  constexpr esr::TxnId kQuery = 7;
  constexpr esr::SiteId kSite = 1;
  constexpr uint64_t kGroup = 5;

  std::vector<TraceEvent> events;
  auto at = [&events](int64_t ts, TraceEvent e) {
    e.ts_micros = ts;
    events.push_back(e);
  };

  at(1000, TraceEvent::BeginTxn(kQuery, esr::TxnType::kQuery, kSite));
  // First walk: group 5 reaches 30/50, transaction level 30/100 — fine.
  at(1010, TraceEvent::Op(esr::TraceEventType::kRead, kQuery, kSite, 42));
  at(1011, TraceEvent::BoundCheck(kQuery, kSite, /*level=*/1, kGroup,
                                  /*charged=*/30.0, /*limit=*/50.0,
                                  /*admitted=*/true));
  at(1012, TraceEvent::BoundCheck(kQuery, kSite, /*level=*/0, /*group=*/0,
                                  /*charged=*/30.0, /*limit=*/100.0,
                                  /*admitted=*/true));
  at(1013, TraceEvent::ImportCharge(kQuery, kSite, /*object=*/42, 30.0));
  // Second walk: the engine admits another 40 against group 5 even though
  // that leaves the node at 70 > 50. The root check is honest (70 <= 100),
  // so only the group-level replay can catch the bug.
  at(1020, TraceEvent::Op(esr::TraceEventType::kRead, kQuery, kSite, 43));
  at(1021, TraceEvent::BoundCheck(kQuery, kSite, /*level=*/1, kGroup,
                                  /*charged=*/40.0, /*limit=*/50.0,
                                  /*admitted=*/true));
  at(1022, TraceEvent::BoundCheck(kQuery, kSite, /*level=*/0, /*group=*/0,
                                  /*charged=*/40.0, /*limit=*/100.0,
                                  /*admitted=*/true));
  at(1023, TraceEvent::ImportCharge(kQuery, kSite, /*object=*/43, 40.0));
  at(1100, TraceEvent::CommitTxn(kQuery, kSite));
  return events;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--json report.json] [--top N] "
               "[--perturb N] [--seed S]\n"
               "       %s --demo-violation [--json report.json] "
               "[--perturb N]\n",
               argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  size_t top_n = 10;
  size_t perturb_n = 0;
  uint64_t base_seed = 1;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--perturb") == 0 && i + 1 < argc) {
      perturb_n = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      base_seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--demo-violation") == 0) {
      demo = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  // Exactly one input: a trace file, or the built-in demo history.
  if (demo == !trace_path.empty()) return Usage(argv[0]);

  std::vector<esr::TraceEvent> events;
  esr::TraceMetadata metadata;
  if (demo) {
    events = DemoViolationHistory();
    metadata.recorded = events.size();
  } else {
    const esr::Status s =
        esr::ReadChromeTraceFile(trace_path, &events, &metadata);
    if (!s.ok()) {
      std::fprintf(stderr, "esr_audit: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  const esr::AuditReport report = esr::AuditTrace(events, metadata);
  esr::PrintAuditReport(report, std::cout, top_n);

  // Streaming cross-check: the same events through the online certifier.
  // The two share BoundWalkReplayer, so any disagreement is a certifier
  // bug — worth failing loudly over, not a property of the trace.
  esr::StreamCertifierOptions stream_options;
  stream_options.source = demo ? "demo-violation" : trace_path;
  stream_options.log_violations = false;  // offline replay: report below
  esr::StreamCertifier streamer(stream_options);
  if (metadata.dropped > 0 && !events.empty()) {
    streamer.NoteLostPrefix(metadata.dropped, events.front().ts_micros);
  }
  for (const esr::TraceEvent& e : events) streamer.Observe(e);
  if (!events.empty()) streamer.AdvanceTo(events.back().ts_micros);
  const esr::StreamCertification stream = streamer.Snapshot();
  const bool stream_matches = esr::StreamMatchesOffline(report, stream);
  if (stream_matches) {
    std::printf(
        "streaming recertification: verdict matches offline replay "
        "(certified through %.1fs over %zu window(s), %zu violation(s))\n",
        stream.certified_through_s, stream.windows_closed,
        stream.violations.size());
  } else {
    std::printf(
        "STREAM DIVERGENCE: online certifier disagrees with offline "
        "replay (offline %zu violation(s) / %zu walks, stream %zu / %zu) "
        "— certifier bug\n",
        report.violations.size(), report.walks_replayed,
        stream.violations.size(), stream.walks_replayed);
  }

  // Perturbation hunt: recertify N seeded reorderings of the schedule.
  bool perturbed_violation = false;
  if (perturb_n > 0) {
    const esr::PerturbReport hunt =
        esr::HuntPerturbations(events, perturb_n, base_seed,
                               stream_options.window_s);
    std::printf(
        "perturbation hunt: %zu schedule(s), seeds %llu..%llu — "
        "certified: %zu, violating: %zu\n",
        hunt.schedules, static_cast<unsigned long long>(base_seed),
        static_cast<unsigned long long>(base_seed + perturb_n - 1),
        hunt.schedules - hunt.violating, hunt.violating);
    perturbed_violation = hunt.violating > 0;
    std::vector<esr::TraceEvent> minimal;
    if (!report.certified()) {
      minimal = esr::MinimizeViolatingSchedule(events,
                                               stream_options.window_s);
    } else if (hunt.violating > 0) {
      std::printf(
          "  first violating seed %llu: %zu violation(s) on a certified "
          "base trace\n",
          static_cast<unsigned long long>(hunt.first_violating_seed),
          hunt.first_violations.size());
      minimal = hunt.minimal_schedule;
    }
    if (!minimal.empty()) {
      std::printf(
          "minimal reproduction: %zu event(s) (violating transaction's "
          "bound-relevant prefix, re-verified to still violate)\n",
          minimal.size());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "esr_audit: cannot open %s\n", json_path.c_str());
      return 1;
    }
    esr::WriteAuditJson(report, out, top_n, &stream);
    if (!out.good()) {
      std::fprintf(stderr, "esr_audit: failed writing %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote audit JSON to %s\n", json_path.c_str());
  }

  if (!stream_matches) return 1;
  return (report.certified() && !perturbed_violation) ? 0 : 2;
}
