// esr_health: offline health analysis over recorded telemetry.
//
// Replays a per-window series (captured with any figure binary's
// `--series`) through the obs/health detector set — the exact monitor
// the bench harness runs for `--health` and threaded_server runs live —
// and prints the alert journal. Because detectors see only the window
// stream, this replay reproduces byte-for-byte the alerts a live
// monitor would have raised over the same run.
//
// Usage:
//   esr_health <series.csv> [--json]
//   esr_health --journal <health.json> [--json]
//   esr_health --registry <dir> [--metric NAME] [--tolerance FRAC]
//              [--json]
//   esr_health --demo [--json]
//
// Modes:
//   <series.csv>   analyze a recorded series (esr_series CSV format);
//   --journal      reprint a previously written --health journal and
//                  exit by its content — lets CI and the
//                  threaded_server signal test validate a journal
//                  without re-running the workload;
//   --registry     scan a benchmark registry directory (the envelope
//                  JSONs appended by --registry/ESR_BENCH_REGISTRY) and
//                  surface cross-run performance regressions as
//                  `perf_trend` alerts, using the same CI-aware rule as
//                  esr_bench_report: latest < previous*(1-tolerance)
//                  regresses, unless the point's own ci90_rel covers
//                  the drop (WARNING, not an alert);
//   --demo         analyze the built-in synthetic reproduction of the
//                  documented MPL 2/low abort livelock (one
//                  abort_livelock alert blaming windows 12..25).
//
// Exit codes: 0 healthy, 2 when any alert fires (including --demo,
// which always fires — CI pins that), 1 on usage or I/O errors.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/json_value.h"
#include "obs/series.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <series.csv> [--json]\n"
      "       %s --journal <health.json> [--json]\n"
      "       %s --registry <dir> [--metric NAME] [--tolerance FRAC]"
      " [--json]\n"
      "       %s --demo [--json]\n",
      argv0, argv0, argv0, argv0);
  return 1;
}

int EmitReport(const esr::HealthReport& report, bool json) {
  if (json) {
    esr::WriteHealthJson(report, std::cout);
    std::cout << "\n";
  } else {
    esr::WriteHealthText(report, std::cout);
  }
  return report.healthy() ? 0 : 2;
}

// -- Registry trend mode ----------------------------------------------------
//
// Mirrors esr_bench_report's envelope parsing and regression rule so
// the two tools can never disagree on what counts as a regression;
// the difference is the output contract: regressions become structured
// `perf_trend` alerts in a HealthReport, one per regressed point.

struct TrendPoint {
  double value = 0.0;
  double ci90_rel = 0.0;
};

struct TrendRun {
  std::string figure;
  std::string sha;
  std::string file;
  int64_t recorded = 0;
  std::map<std::string, TrendPoint> points;
};

std::string FormatX(double x) {
  char buf[32];
  if (x == static_cast<int64_t>(x)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(x));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", x);
  }
  return buf;
}

bool ParseEnvelope(const std::string& json, const std::string& file,
                   const std::string& metric, TrendRun* run,
                   std::string* error) {
  esr::JsonValue root;
  if (!esr::ParseJson(json, &root, error)) return false;
  const esr::JsonValue* registered = root.Find("registered");
  const esr::JsonValue* report = root.Find("report");
  if (registered == nullptr || report == nullptr) {
    *error = "not a registry envelope (missing registered/report)";
    return false;
  }
  run->file = file;
  if (const esr::JsonValue* v = registered->Find("figure");
      v != nullptr && v->is_string()) {
    run->figure = v->string;
  }
  if (const esr::JsonValue* v = registered->Find("git_sha");
      v != nullptr && v->is_string()) {
    run->sha = v->string;
  }
  run->recorded =
      static_cast<int64_t>(registered->NumberOr("recorded_unix", 0.0));
  if (run->figure.empty()) {
    *error = "envelope has no figure name";
    return false;
  }
  const esr::JsonValue* series = report->Find("series");
  if (series == nullptr || !series->is_object()) {
    *error = "report has no series object";
    return false;
  }
  for (const auto& [name, rows] : series->object) {
    if (!rows.is_array()) continue;
    for (const esr::JsonValue& row : rows.array) {
      const esr::JsonValue* m = row.Find(metric);
      if (m == nullptr || !m->is_number()) continue;
      TrendPoint point;
      point.value = m->number;
      point.ci90_rel = row.NumberOr(metric + "_ci90_rel",
                                    row.NumberOr("ci90_rel", 0.0));
      run->points[name + " @ x=" + FormatX(row.NumberOr("x", 0.0))] =
          point;
    }
  }
  return true;
}

int RunRegistryMode(const std::string& dir, const std::string& metric,
                    double tolerance, bool json) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "esr_health: not a directory: %s\n", dir.c_str());
    return 1;
  }
  std::map<std::string, std::vector<TrendRun>> figures;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  size_t parsed = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    TrendRun run;
    std::string error;
    if (!ParseEnvelope(buf.str(), file, metric, &run, &error)) {
      std::fprintf(stderr, "esr_health: skipping %s: %s\n", file.c_str(),
                   error.c_str());
      continue;
    }
    figures[run.figure].push_back(std::move(run));
    ++parsed;
  }
  if (parsed == 0) {
    std::fprintf(stderr, "esr_health: no registry envelopes under %s\n",
                 dir.c_str());
    return 1;
  }

  esr::HealthReport report;
  report.source = "bench registry " + dir + " (metric: " + metric + ")";
  report.window_s = 0.0;
  report.windows = parsed;
  for (auto& [figure, runs] : figures) {
    std::sort(runs.begin(), runs.end(),
              [](const TrendRun& a, const TrendRun& b) {
                if (a.recorded != b.recorded) return a.recorded < b.recorded;
                return a.file < b.file;
              });
    if (runs.size() < 2) continue;  // no trend yet
    const TrendRun& previous = runs[runs.size() - 2];
    const TrendRun& latest = runs.back();
    for (const auto& [key, prev] : previous.points) {
      esr::Alert alert;
      alert.detector = "perf_trend";
      alert.severity = esr::AlertSeverity::kError;
      alert.first_window = runs.size() - 2;
      alert.last_window = runs.size() - 1;
      alert.open = true;  // still the latest run — unresolved
      const auto cur_it = latest.points.find(key);
      if (cur_it == latest.points.end()) {
        alert.message = figure + ": " + key +
                        " missing from latest run (" + latest.sha + ")";
        alert.evidence.emplace_back("previous", prev.value);
        report.alerts.push_back(std::move(alert));
        continue;
      }
      const double cur = cur_it->second.value;
      const double floor = prev.value * (1.0 - tolerance);
      if (cur >= floor) continue;
      const double ci = cur_it->second.ci90_rel;
      if (ci > tolerance && cur >= prev.value * (1.0 - ci)) {
        // Drop within the point's own confidence interval: a noisy
        // configuration, not a regression (esr_bench_report prints
        // WARNING(ci) for the same case).
        continue;
      }
      alert.message = figure + ": " + key + " regressed " +
                      std::to_string(prev.value) + " -> " +
                      std::to_string(cur) + " (floor " +
                      std::to_string(floor) + ", run " + latest.sha + ")";
      alert.evidence.emplace_back("previous", prev.value);
      alert.evidence.emplace_back("latest", cur);
      alert.evidence.emplace_back("floor", floor);
      alert.evidence.emplace_back("ci90_rel", ci);
      report.alerts.push_back(std::move(alert));
    }
  }
  return EmitReport(report, json);
}

}  // namespace

int main(int argc, char** argv) {
  std::string series_path;
  std::string journal_path;
  std::string registry_dir;
  std::string metric = "throughput";
  double tolerance = 0.05;
  bool demo = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--journal") {
      if (++i >= argc) return Usage(argv[0]);
      journal_path = argv[i];
    } else if (arg == "--registry") {
      if (++i >= argc) return Usage(argv[0]);
      registry_dir = argv[i];
    } else if (arg == "--metric") {
      if (++i >= argc) return Usage(argv[0]);
      metric = argv[i];
    } else if (arg == "--tolerance") {
      if (++i >= argc) return Usage(argv[0]);
      char* end = nullptr;
      tolerance = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || tolerance < 0.0) {
        return Usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (series_path.empty()) {
      series_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  const int modes = (series_path.empty() ? 0 : 1) +
                    (journal_path.empty() ? 0 : 1) +
                    (registry_dir.empty() ? 0 : 1) + (demo ? 1 : 0);
  if (modes != 1) return Usage(argv[0]);

  if (demo) {
    return EmitReport(esr::AnalyzeSeries(esr::BuildLivelockDemoSeries()),
                      json);
  }
  if (!journal_path.empty()) {
    esr::Result<esr::HealthReport> report =
        esr::ReadHealthJsonFile(journal_path);
    if (!report.ok()) {
      std::fprintf(stderr, "esr_health: %s\n",
                   report.status().message().c_str());
      return 1;
    }
    return EmitReport(report.value(), json);
  }
  if (!registry_dir.empty()) {
    return RunRegistryMode(registry_dir, metric, tolerance, json);
  }

  esr::Result<esr::RunSeries> series =
      esr::ReadSeriesCsvFile(series_path);
  if (!series.ok()) {
    std::fprintf(stderr, "esr_health: %s\n",
                 series.status().message().c_str());
    return 1;
  }
  return EmitReport(esr::AnalyzeSeries(series.value()), json);
}
