// esr_profile: renders a threaded_server wall-clock profile capture
// (obs/profile.h JSON) as human-readable attribution tables, flamegraph
// folded stacks, and per-thread Chrome trace lanes.
//
// Usage:
//   esr_profile <profile.json> [--trace trace.json] [--lanes lanes.json]
//               [--folded out.folded] [--check-coverage PCT]
//   esr_profile --demo
//
// Prints the per-phase cost attribution table (self-time, % of measured
// commit latency, p50-p999 scope percentiles), the contention-site table,
// and the blocker table ranked by total wait across all sites.
//
// --folded writes folded stacks (`threaded_server;thread<N>;<phase>
// <self_us>`, plus `threaded_server;site_wait;<site> <wait_us>` frames
// for the named contention sites — shard latches in particular)
// consumable by flamegraph.pl / inferno-flamegraph.
// --lanes re-exports the --trace capture with one Perfetto track per
// client thread (tid = thread lane) instead of per transaction.
// --check-coverage PCT exits 2 when the phase self-time sum deviates from
// the measured commit-latency total by more than PCT percent — the
// attribution completeness gate CI runs at MPL 16.
// --demo runs the whole pipeline on a deterministic in-process profile
// (no input files) for tests.
//
// Exit codes: 0 success, 1 usage/input errors, 2 coverage gate failure.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_value.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: esr_profile <profile.json> [--trace trace.json]\n"
      "                   [--lanes lanes.json] [--folded out.folded]\n"
      "                   [--check-coverage PCT]\n"
      "       esr_profile --demo\n");
  return 1;
}

struct PhaseRow {
  std::string name;
  uint64_t count = 0;
  double self_ms = 0.0;
  double frac_of_txn = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

struct ThreadRow {
  uint32_t lane = 0;
  /// phase name -> self milliseconds.
  std::vector<std::pair<std::string, double>> self_ms;
};

struct BlockerRow {
  uint64_t txn = 0;
  uint64_t waits = 0;
  double total_wait_ms = 0.0;
};

struct SiteRow {
  std::string name;
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  uint64_t conflicts = 0;
  double total_wait_ms = 0.0;
  double max_wait_ms = 0.0;
  double p50_wait_us = 0.0;
  double p99_wait_us = 0.0;
  std::vector<BlockerRow> blockers;
};

struct ProfileDoc {
  bool enabled = false;
  uint64_t txn_count = 0;
  double txn_total_ms = 0.0;
  double coverage_ms = 0.0;
  std::vector<PhaseRow> phases;
  std::vector<ThreadRow> threads;
  std::vector<SiteRow> sites;
};

bool ParseProfile(const std::string& json, ProfileDoc* doc,
                  std::string* error) {
  esr::JsonValue root;
  if (!esr::ParseJson(json, &root, error)) return false;
  const esr::JsonValue* profile = root.Find("profile");
  if (profile == nullptr || !profile->is_object()) {
    *error = "no \"profile\" object";
    return false;
  }
  if (const esr::JsonValue* enabled = profile->Find("enabled")) {
    doc->enabled = enabled->type == esr::JsonValue::Type::kBool &&
                   enabled->bool_value;
  }
  if (const esr::JsonValue* txn = profile->Find("txn")) {
    doc->txn_count = static_cast<uint64_t>(txn->NumberOr("count", 0.0));
    doc->txn_total_ms = txn->NumberOr("total_ms", 0.0);
  }
  doc->coverage_ms = profile->NumberOr("coverage_ms", 0.0);
  const esr::JsonValue* phases = profile->Find("phases");
  if (phases == nullptr || !phases->is_object()) {
    *error = "no \"phases\" object";
    return false;
  }
  for (const auto& [name, value] : phases->object) {
    PhaseRow row;
    row.name = name;
    row.count = static_cast<uint64_t>(value.NumberOr("count", 0.0));
    row.self_ms = value.NumberOr("self_ms", 0.0);
    row.frac_of_txn = value.NumberOr("frac_of_txn", 0.0);
    row.p50_ms = value.NumberOr("p50_ms", 0.0);
    row.p90_ms = value.NumberOr("p90_ms", 0.0);
    row.p99_ms = value.NumberOr("p99_ms", 0.0);
    row.p999_ms = value.NumberOr("p999_ms", 0.0);
    doc->phases.push_back(std::move(row));
  }
  if (const esr::JsonValue* threads = profile->Find("threads");
      threads != nullptr && threads->is_array()) {
    for (const esr::JsonValue& t : threads->array) {
      ThreadRow row;
      row.lane = static_cast<uint32_t>(t.NumberOr("lane", 0.0));
      if (const esr::JsonValue* tp = t.Find("phases");
          tp != nullptr && tp->is_object()) {
        for (const auto& [name, value] : tp->object) {
          row.self_ms.emplace_back(name, value.NumberOr("self_ms", 0.0));
        }
      }
      doc->threads.push_back(std::move(row));
    }
  }
  if (const esr::JsonValue* sites = profile->Find("sites");
      sites != nullptr && sites->is_array()) {
    for (const esr::JsonValue& s : sites->array) {
      SiteRow row;
      if (const esr::JsonValue* name = s.Find("name");
          name != nullptr && name->is_string()) {
        row.name = name->string;
      }
      row.acquisitions =
          static_cast<uint64_t>(s.NumberOr("acquisitions", 0.0));
      row.contended = static_cast<uint64_t>(s.NumberOr("contended", 0.0));
      row.conflicts = static_cast<uint64_t>(s.NumberOr("conflicts", 0.0));
      row.total_wait_ms = s.NumberOr("total_wait_ms", 0.0);
      row.max_wait_ms = s.NumberOr("max_wait_ms", 0.0);
      row.p50_wait_us = s.NumberOr("p50_wait_us", 0.0);
      row.p99_wait_us = s.NumberOr("p99_wait_us", 0.0);
      if (const esr::JsonValue* blockers = s.Find("blockers");
          blockers != nullptr && blockers->is_array()) {
        for (const esr::JsonValue& b : blockers->array) {
          BlockerRow blocker;
          blocker.txn = static_cast<uint64_t>(b.NumberOr("txn", 0.0));
          blocker.waits = static_cast<uint64_t>(b.NumberOr("waits", 0.0));
          blocker.total_wait_ms = b.NumberOr("total_wait_ms", 0.0);
          row.blockers.push_back(blocker);
        }
      }
      doc->sites.push_back(std::move(row));
    }
  }
  return true;
}

// Canonical phase print order (the JSON object is alphabetized).
const char* const kPhaseOrder[] = {"lock_wait", "rpc",   "validate",
                                   "bound_walk", "apply", "commit"};

void PrintAttribution(const ProfileDoc& doc) {
  std::printf("profile: %llu txns, %.2f ms total commit latency%s\n",
              static_cast<unsigned long long>(doc.txn_count),
              doc.txn_total_ms,
              doc.enabled ? "" : " (profiler was DISABLED)");
  std::printf("\nphase attribution (self-time, %zu thread(s)):\n",
              doc.threads.size());
  std::printf("  %-10s %10s %12s %9s %9s %9s %9s %9s\n", "phase", "samples",
              "self(ms)", "% of txn", "p50(ms)", "p90(ms)", "p99(ms)",
              "p999(ms)");
  for (const char* name : kPhaseOrder) {
    for (const PhaseRow& row : doc.phases) {
      if (row.name != name) continue;
      std::printf("  %-10s %10llu %12.2f %8.1f%% %9.3f %9.3f %9.3f %9.3f\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.count), row.self_ms,
                  100.0 * row.frac_of_txn, row.p50_ms, row.p90_ms,
                  row.p99_ms, row.p999_ms);
    }
  }
  const double coverage_frac =
      doc.txn_total_ms > 0 ? doc.coverage_ms / doc.txn_total_ms : 0.0;
  std::printf(
      "\ncoverage: phase self-times sum to %.2f ms = %.1f%% of measured "
      "commit latency\n",
      doc.coverage_ms, 100.0 * coverage_frac);
}

void PrintSites(const ProfileDoc& doc) {
  if (doc.sites.empty()) {
    std::printf("\ncontention sites: none recorded\n");
    return;
  }
  std::printf("\ncontention sites (ranked by total wait):\n");
  std::printf("  %-22s %12s %10s %10s %10s %9s %9s\n", "site", "acquired",
              "contended", "conflicts", "wait(ms)", "p50(us)", "p99(us)");
  for (const SiteRow& site : doc.sites) {
    std::printf("  %-22s %12llu %10llu %10llu %10.2f %9.1f %9.1f\n",
                site.name.c_str(),
                static_cast<unsigned long long>(site.acquisitions),
                static_cast<unsigned long long>(site.contended),
                static_cast<unsigned long long>(site.conflicts),
                site.total_wait_ms, site.p50_wait_us, site.p99_wait_us);
  }
  // Blocked-by attribution, merged across sites and ranked by the total
  // wall-clock wait each holder inflicted.
  std::map<uint64_t, BlockerRow> merged;
  for (const SiteRow& site : doc.sites) {
    for (const BlockerRow& b : site.blockers) {
      BlockerRow& entry = merged[b.txn];
      entry.txn = b.txn;
      entry.waits += b.waits;
      entry.total_wait_ms += b.total_wait_ms;
    }
  }
  std::vector<BlockerRow> blockers;
  for (const auto& [txn, row] : merged) blockers.push_back(row);
  std::sort(blockers.begin(), blockers.end(),
            [](const BlockerRow& a, const BlockerRow& b) {
              if (a.total_wait_ms != b.total_wait_ms) {
                return a.total_wait_ms > b.total_wait_ms;
              }
              if (a.waits != b.waits) return a.waits > b.waits;
              return a.txn < b.txn;
            });
  constexpr size_t kTopBlockers = 10;
  std::printf("\nblockers (by total wait inflicted, top %zu of %zu):\n",
              std::min(kTopBlockers, blockers.size()), blockers.size());
  std::printf("  %-12s %10s %12s\n", "txn", "waits", "wait(ms)");
  for (size_t i = 0; i < blockers.size() && i < kTopBlockers; ++i) {
    std::printf("  %-12llu %10llu %12.2f\n",
                static_cast<unsigned long long>(blockers[i].txn),
                static_cast<unsigned long long>(blockers[i].waits),
                blockers[i].total_wait_ms);
  }
}

bool WriteFolded(const ProfileDoc& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open folded output: %s\n", path.c_str());
    return false;
  }
  // One folded stack per (thread, phase); weights are integer self-time
  // microseconds, the format flamegraph.pl / inferno expect.
  for (const ThreadRow& thread : doc.threads) {
    for (const char* name : kPhaseOrder) {
      for (const auto& [phase, self_ms] : thread.self_ms) {
        if (phase != name) continue;
        const long long self_us = std::llround(self_ms * 1000.0);
        if (self_us <= 0) continue;
        out << "threaded_server;thread" << thread.lane << ";" << phase
            << " " << self_us << "\n";
      }
    }
  }
  // Contention sites as a parallel frame family: the measured wait on
  // each named latch (engine.shard<i>.latch and friends) so the
  // flamegraph shows which shard's latch the lock-wait time sits on —
  // per-site, which the per-thread phase rows can't resolve.
  for (const SiteRow& site : doc.sites) {
    const long long wait_us = std::llround(site.total_wait_ms * 1000.0);
    if (wait_us <= 0) continue;
    out << "threaded_server;site_wait;" << site.name << " " << wait_us
        << "\n";
  }
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "failed writing folded stacks to %s\n",
                 path.c_str());
    return false;
  }
  std::printf("\nwrote folded stacks to %s\n", path.c_str());
  return true;
}

bool WriteLanes(const std::string& trace_path, const std::string& out_path) {
  std::vector<esr::TraceEvent> events;
  esr::TraceMetadata metadata;
  const esr::Status s =
      esr::ReadChromeTraceFile(trace_path, &events, &metadata);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot read trace: %s\n", s.ToString().c_str());
    return false;
  }
  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open lanes output: %s\n", out_path.c_str());
    return false;
  }
  esr::WriteChromeTraceEvents(events, out, metadata.recorded,
                              metadata.dropped, metadata.capacity,
                              /*thread_lanes=*/true);
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "failed writing lanes to %s\n", out_path.c_str());
    return false;
  }
  std::printf("\nwrote %zu events as per-thread lanes to %s\n",
              events.size(), out_path.c_str());
  return true;
}

// Deterministic synthetic profile exercising writer -> parser -> printer
// in every build (probe-independent, so it passes under
// ESR_DISABLE_TRACING too).
std::string DemoProfileJson() {
  esr::ProfileSnapshot snap;
  const uint64_t ms = 1000000;  // ns per ms
  snap.threads.resize(2);
  for (uint32_t i = 0; i < 2; ++i) {
    esr::ThreadProfile& t = snap.threads[i];
    t.lane = i + 1;
    auto fill = [&](esr::ProfilePhase phase, uint64_t count,
                    uint64_t self_ns, double scope_ms) {
      esr::PhaseSnapshot& p =
          t.phases[static_cast<size_t>(phase)];
      p.count = count;
      p.self_ns = self_ns;
      for (uint64_t s = 0; s < count; ++s) p.scope_ms.Record(scope_ms);
    };
    fill(esr::ProfilePhase::kLockWait, 40, 30 * ms, 0.75);
    fill(esr::ProfilePhase::kRpc, 200, 44 * ms, 0.22);
    fill(esr::ProfilePhase::kValidate, 240, 5 * ms, 0.02);
    fill(esr::ProfilePhase::kBoundWalk, 80, 1 * ms, 0.012);
    fill(esr::ProfilePhase::kApply, 60, 500000, 0.008);
    fill(esr::ProfilePhase::kCommit, 20, 800000, 0.04);
    for (size_t p = 0; p < esr::kNumProfilePhases; ++p) {
      snap.phases[p].count += t.phases[p].count;
      snap.phases[p].self_ns += t.phases[p].self_ns;
      snap.phases[p].scope_ms.Merge(t.phases[p].scope_ms);
    }
  }
  esr::ContentionSite site("demo.engine_mu");
  for (int i = 0; i < 500; ++i) site.RecordAcquisition();
  site.RecordWait(2 * ms, 7);
  site.RecordWait(5 * ms, 7);
  site.RecordWait(1 * ms, 9);
  site.RecordConflict(9);
  snap.sites.push_back(site.TakeSnapshot());
  esr::ProfileTxnTotals txn;
  txn.count = 40;
  txn.total_ms = 165.0;
  std::ostringstream out;
  esr::WriteProfileJson(snap, txn, /*enabled=*/true, out);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_path;
  std::string trace_path;
  std::string lanes_path;
  std::string folded_path;
  double check_coverage_pct = -1.0;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    const bool is_trace = std::strcmp(argv[i], "--trace") == 0;
    const bool is_lanes = std::strcmp(argv[i], "--lanes") == 0;
    const bool is_folded = std::strcmp(argv[i], "--folded") == 0;
    const bool is_check = std::strcmp(argv[i], "--check-coverage") == 0;
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (is_trace || is_lanes || is_folded || is_check) {
      if (i + 1 >= argc) return Usage();
      if (is_trace) trace_path = argv[++i];
      else if (is_lanes) lanes_path = argv[++i];
      else if (is_folded) folded_path = argv[++i];
      else check_coverage_pct = std::atof(argv[++i]);
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (profile_path.empty()) {
      profile_path = argv[i];
    } else {
      return Usage();
    }
  }
  if (!demo && profile_path.empty()) return Usage();
  if (demo && !profile_path.empty()) return Usage();
  if (!lanes_path.empty() && trace_path.empty()) {
    std::fprintf(stderr, "--lanes requires --trace <capture>\n");
    return Usage();
  }

  std::string json;
  if (demo) {
    json = DemoProfileJson();
  } else {
    std::ifstream in(profile_path);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open profile: %s\n",
                   profile_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json = buffer.str();
  }

  ProfileDoc doc;
  std::string error;
  if (!ParseProfile(json, &doc, &error)) {
    std::fprintf(stderr, "malformed profile JSON: %s\n", error.c_str());
    return 1;
  }

  PrintAttribution(doc);
  PrintSites(doc);

  if (!folded_path.empty() && !WriteFolded(doc, folded_path)) return 1;
  if (!lanes_path.empty() && !WriteLanes(trace_path, lanes_path)) return 1;

  if (check_coverage_pct >= 0.0) {
    if (doc.txn_total_ms <= 0.0) {
      std::fprintf(stderr,
                   "coverage check: no measured commit latency in capture\n");
      return 2;
    }
    const double deviation =
        std::fabs(doc.coverage_ms / doc.txn_total_ms - 1.0) * 100.0;
    if (deviation > check_coverage_pct) {
      std::printf(
          "coverage check: FAIL — attribution deviates %.2f%% from "
          "measured latency (budget %.2f%%)\n",
          deviation, check_coverage_pct);
      return 2;
    }
    std::printf(
        "coverage check: PASS — attribution within %.2f%% of measured "
        "latency (budget %.2f%%)\n",
        deviation, check_coverage_pct);
  }
  return 0;
}
