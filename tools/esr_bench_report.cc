// esr_bench_report: renders cross-run trend tables from a benchmark
// registry directory (envelope JSON files appended by the figure
// binaries' --registry flag / ESR_BENCH_REGISTRY) and flags regressions.
//
// Usage:
//   esr_bench_report <registry_dir> [--metric throughput]
//                    [--tolerance 0.05]
//   esr_bench_report --demo | --demo-regression
//
// Entries are grouped by figure and ordered by recorded_unix (filename as
// tiebreak). For each figure the last runs are printed as columns labeled
// by short git sha, one row per (series, x) point, with the latest run's
// delta against the previous run and a per-point status.
//
// Regression rule (same as scripts/check_bench_regression.py): the latest
// run regresses a point when its value falls below previous*(1-tolerance);
// when the point's own CI half-width (ci90_rel) exceeds the tolerance and
// the drop is within that CI, the point is downgraded to a WARNING —
// noisy configurations don't hard-fail the trend. A point present in the
// previous run but missing from the latest is a regression.
//
// Exit codes: 0 trend PASS (or single run, "no trend yet"), 1 usage /
// unreadable registry, 2 regression detected.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_value.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: esr_bench_report <registry_dir> [--metric NAME]\n"
      "                        [--tolerance FRAC]\n"
      "       esr_bench_report --demo | --demo-regression\n");
  return 1;
}

struct Point {
  double value = 0.0;
  /// Relative 90% CI half-width of the point, when the report carried one.
  double ci90_rel = 0.0;
};

struct RunEntry {
  std::string figure;
  std::string sha;
  std::string preset;
  std::string file;
  int64_t recorded = 0;
  /// "<series> @ x=<x>" -> metric point.
  std::map<std::string, Point> points;
};

std::string FormatX(double x) {
  char buf[32];
  if (x == static_cast<int64_t>(x)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(x));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", x);
  }
  return buf;
}

bool ParseEntry(const std::string& json, const std::string& file,
                const std::string& metric, RunEntry* entry,
                std::string* error) {
  esr::JsonValue root;
  if (!esr::ParseJson(json, &root, error)) return false;
  const esr::JsonValue* registered = root.Find("registered");
  const esr::JsonValue* report = root.Find("report");
  if (registered == nullptr || report == nullptr) {
    *error = "not a registry envelope (missing registered/report)";
    return false;
  }
  entry->file = file;
  if (const esr::JsonValue* v = registered->Find("figure");
      v != nullptr && v->is_string()) {
    entry->figure = v->string;
  }
  if (const esr::JsonValue* v = registered->Find("git_sha");
      v != nullptr && v->is_string()) {
    entry->sha = v->string;
  }
  if (const esr::JsonValue* v = registered->Find("preset");
      v != nullptr && v->is_string()) {
    entry->preset = v->string;
  }
  entry->recorded =
      static_cast<int64_t>(registered->NumberOr("recorded_unix", 0.0));
  if (entry->figure.empty()) {
    *error = "envelope has no figure name";
    return false;
  }
  const esr::JsonValue* series = report->Find("series");
  if (series == nullptr || !series->is_object()) {
    *error = "report has no series object";
    return false;
  }
  for (const auto& [name, rows] : series->object) {
    if (!rows.is_array()) continue;
    for (const esr::JsonValue& row : rows.array) {
      const esr::JsonValue* m = row.Find(metric);
      if (m == nullptr || !m->is_number()) continue;
      Point point;
      point.value = m->number;
      point.ci90_rel = row.NumberOr(metric + "_ci90_rel",
                                    row.NumberOr("ci90_rel", 0.0));
      entry->points[name + " @ x=" + FormatX(row.NumberOr("x", 0.0))] =
          point;
    }
  }
  return true;
}

std::string Sha7(const std::string& sha) {
  return sha.size() > 7 ? sha.substr(0, 7) : sha;
}

/// Renders one figure's trend and returns the number of regressed points
/// between the latest run and its predecessor.
size_t RenderFigure(const std::string& figure, std::vector<RunEntry> runs,
                    const std::string& metric, double tolerance,
                    std::vector<std::string>* regressions) {
  std::sort(runs.begin(), runs.end(),
            [](const RunEntry& a, const RunEntry& b) {
              if (a.recorded != b.recorded) return a.recorded < b.recorded;
              return a.file < b.file;
            });
  std::printf("=== %s — %zu run%s (metric: %s, tolerance %.1f%%) ===\n",
              figure.c_str(), runs.size(), runs.size() == 1 ? "" : "s",
              metric.c_str(), 100.0 * tolerance);

  // Show at most the last six runs as columns; note what's elided.
  constexpr size_t kMaxColumns = 6;
  const size_t first =
      runs.size() > kMaxColumns ? runs.size() - kMaxColumns : 0;
  if (first > 0) {
    std::printf("(showing last %zu of %zu runs)\n", kMaxColumns,
                runs.size());
  }
  std::vector<const RunEntry*> cols;
  for (size_t i = first; i < runs.size(); ++i) cols.push_back(&runs[i]);

  // Row set: union of point keys across the displayed runs, in map order.
  std::map<std::string, bool> keys;
  for (const RunEntry* run : cols) {
    for (const auto& [key, point] : run->points) keys[key] = true;
  }

  std::printf("  %-28s", "point");
  for (const RunEntry* run : cols) {
    std::printf(" %12s", Sha7(run->sha).c_str());
  }
  std::printf(" %8s  %s\n", "delta", "status");

  const RunEntry* latest = cols.back();
  const RunEntry* previous = cols.size() >= 2 ? cols[cols.size() - 2] : nullptr;
  size_t regressed = 0;
  for (const auto& [key, unused] : keys) {
    std::printf("  %-28s", key.c_str());
    for (const RunEntry* run : cols) {
      auto it = run->points.find(key);
      if (it == run->points.end()) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.3f", it->second.value);
      }
    }
    std::string status = "ok";
    std::string delta = "-";
    const auto cur_it = latest->points.find(key);
    if (previous == nullptr) {
      status = "baseline";
    } else {
      const auto prev_it = previous->points.find(key);
      if (cur_it == latest->points.end()) {
        if (prev_it != previous->points.end()) {
          status = "MISSING";
          ++regressed;
          regressions->push_back(figure + ": " + key +
                                 " missing from latest run");
        } else {
          status = "-";
        }
      } else if (prev_it == previous->points.end()) {
        status = "new";
      } else {
        const double base = prev_it->second.value;
        const double cur = cur_it->second.value;
        if (base != 0.0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%+.1f%%",
                        100.0 * (cur - base) / base);
          delta = buf;
        }
        const double floor = base * (1.0 - tolerance);
        if (cur < floor) {
          const double ci = cur_it->second.ci90_rel;
          if (ci > tolerance && cur >= base * (1.0 - ci)) {
            status = "WARNING(ci)";
          } else {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "%.3f -> %.3f (floor %.3f)", base, cur, floor);
            status = "REGRESSION";
            ++regressed;
            regressions->push_back(figure + ": " + key + " " + buf);
          }
        }
      }
    }
    std::printf(" %8s  %s\n", delta.c_str(), status.c_str());
  }
  if (runs.size() == 1) std::printf("  (single run — no trend yet)\n");
  std::printf("\n");
  return regressed;
}

int Analyze(std::vector<RunEntry> entries, const std::string& metric,
            double tolerance) {
  std::map<std::string, std::vector<RunEntry>> by_figure;
  for (RunEntry& entry : entries) {
    by_figure[entry.figure].push_back(std::move(entry));
  }
  std::vector<std::string> regressions;
  for (auto& [figure, runs] : by_figure) {
    RenderFigure(figure, std::move(runs), metric, tolerance, &regressions);
  }
  if (!regressions.empty()) {
    std::printf("bench trend: REGRESSION (%zu point%s)\n",
                regressions.size(), regressions.size() == 1 ? "" : "s");
    for (const std::string& r : regressions) {
      std::printf("  %s\n", r.c_str());
    }
    return 2;
  }
  std::printf("bench trend: PASS\n");
  return 0;
}

RunEntry DemoRun(const std::string& sha, int64_t recorded, double zero,
                 double med, double med_ci) {
  RunEntry run;
  run.figure = "fig07_throughput_vs_mpl";
  run.sha = sha;
  run.preset = "quick";
  run.file = sha + ".json";
  run.recorded = recorded;
  run.points["zero(SR) @ x=8"] = {zero, 0.01};
  run.points["medium @ x=8"] = {med, med_ci};
  return run;
}

int RunDemo(bool with_regression, const std::string& metric,
            double tolerance) {
  std::vector<RunEntry> entries;
  entries.push_back(DemoRun("aaaaaaaaaaaa", 1000, 120.0, 150.0, 0.01));
  // Second run: steady zero-bound series; the medium series either holds
  // (demo) or drops 20% with a tight CI (demo-regression).
  const double med = with_regression ? 120.0 : 151.5;
  entries.push_back(DemoRun("bbbbbbbbbbbb", 2000, 121.0, med, 0.01));
  return Analyze(std::move(entries), metric, tolerance);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string metric = "throughput";
  double tolerance = 0.05;
  bool demo = false;
  bool demo_regression = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--demo-regression") == 0) {
      demo_regression = true;
    } else if (std::strcmp(argv[i], "--metric") == 0) {
      if (i + 1 >= argc) return Usage();
      metric = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) return Usage();
      tolerance = std::atof(argv[++i]);
    } else if (argv[i][0] == '-') {
      return Usage();
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      return Usage();
    }
  }
  if (demo || demo_regression) {
    if (!dir.empty() || (demo && demo_regression)) return Usage();
    return RunDemo(demo_regression, metric, tolerance);
  }
  if (dir.empty()) return Usage();

  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot read registry dir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::vector<std::string> files;
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file()) continue;
    if (dirent.path().extension() != ".json") continue;
    files.push_back(dirent.path().string());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "registry dir %s holds no .json entries\n",
                 dir.c_str());
    return 1;
  }

  std::vector<RunEntry> entries;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    RunEntry entry;
    std::string error;
    if (!ParseEntry(buffer.str(), file, metric, &entry, &error)) {
      // Skip non-envelope JSON (a stray report dropped in the dir) with a
      // warning instead of failing the whole trend.
      std::fprintf(stderr, "skipping %s: %s\n", file.c_str(),
                   error.c_str());
      continue;
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    std::fprintf(stderr, "no parseable registry entries in %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("registry %s: %zu entr%s\n\n", dir.c_str(), entries.size(),
              entries.size() == 1 ? "y" : "ies");
  return Analyze(std::move(entries), metric, tolerance);
}
