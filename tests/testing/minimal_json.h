#ifndef ESR_TESTS_TESTING_MINIMAL_JSON_H_
#define ESR_TESTS_TESTING_MINIMAL_JSON_H_

// The JSON parser the exporter tests assert with used to live here; it
// was promoted to src/obs/json_value.h so runtime tools (the trace
// auditor) can parse exporter output too. This wrapper keeps the
// historical test-side spelling esr::testing::ParseJson working.

#include "obs/json_value.h"

namespace esr {
namespace testing {

using esr::JsonValue;
using esr::ParseJson;

}  // namespace testing
}  // namespace esr

#endif  // ESR_TESTS_TESTING_MINIMAL_JSON_H_
