#ifndef ESR_TESTS_TESTING_TEST_UTIL_H_
#define ESR_TESTS_TESTING_TEST_UTIL_H_

#include <memory>

#include "common/metrics.h"
#include "hierarchy/group_schema.h"
#include "storage/object_store.h"
#include "txn/transaction_manager.h"

namespace esr {
namespace testing {

inline Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

/// A small engine with deterministic object values: object i holds
/// 1000 * (i + 1). Gives tests exact arithmetic over proper/present
/// values.
struct EngineFixture {
  ObjectStore store;
  GroupSchema schema;
  MetricRegistry metrics;
  TransactionManager manager;

  static ObjectStoreOptions StoreOptions(size_t n, size_t history_depth) {
    ObjectStoreOptions opt;
    opt.num_objects = n;
    opt.history_depth = history_depth;
    opt.seed = 7;
    return opt;
  }

  explicit EngineFixture(size_t num_objects = 10, size_t history_depth = 20,
                         DivergenceOptions divergence = {})
      : store(StoreOptions(num_objects, history_depth)),
        manager(&store, &schema, &metrics, divergence) {
    for (ObjectId id = 0; id < num_objects; ++id) {
      SetValue(id, static_cast<Value>(1000 * (id + 1)));
    }
  }

  /// Directly installs a committed value older than every timestamp.
  void SetValue(ObjectId id, Value v) {
    ObjectRecord& rec = store.Get(id);
    rec.ApplyWrite(UINT64_MAX, Timestamp::Min(), v);
    rec.CommitWrite(UINT64_MAX);
  }

  /// Runs a complete single-object update ET: begin(ts), write, commit.
  void CommitWrite(int64_t ts, ObjectId object, Value v,
                   Inconsistency tel = kUnbounded) {
    const TxnId txn = manager.Begin(TxnType::kUpdate, Ts(ts),
                                    BoundSpec::TransactionOnly(tel));
    const OpResult r = manager.Write(txn, object, v);
    ASSERT_EQ(r.kind, OpResult::Kind::kOk) << "seed write failed";
    ASSERT_TRUE(manager.Commit(txn).ok());
  }
};

}  // namespace testing
}  // namespace esr

#endif  // ESR_TESTS_TESTING_TEST_UTIL_H_
