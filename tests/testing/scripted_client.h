#ifndef ESR_TESTS_TESTING_SCRIPTED_CLIENT_H_
#define ESR_TESTS_TESTING_SCRIPTED_CLIENT_H_

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "txn/engine.h"

namespace esr {
namespace testing {

/// A logical client for deterministic interleaving tests, driving any
/// TransactionEngine one operation per Step(): either sum-preserving
/// TRANSFER update ETs over a small universe, or full-universe SUM query
/// ETs. Handles waits (retry), aborts (restart with a fresh timestamp),
/// and a draining mode that finishes in-flight work without starting
/// more.
class ScriptedClient {
 public:
  ScriptedClient(TransactionEngine* engine, size_t num_objects, SiteId site,
                 bool is_query, Inconsistency limit, uint64_t seed)
      : engine_(engine),
        num_objects_(num_objects),
        is_query_(is_query),
        limit_(limit),
        rng_(seed),
        ts_gen_(site) {}

  void Step() {
    if (txn_ == kInvalidTxnId) {
      if (draining_) return;
      BeginAttempt();
      return;
    }
    if (is_query_) {
      StepQuery();
    } else {
      StepTransfer();
    }
  }

  /// Stops starting new transactions; in-flight work still completes.
  void StartDraining() { draining_ = true; }

  int64_t commits() const { return commits_; }
  int64_t aborts() const { return aborts_; }

  /// Committed query results with the inconsistency they imported.
  struct QueryOutcome {
    Value sum;
    Inconsistency imported;
  };
  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }

 private:
  void BeginAttempt() {
    const Timestamp ts = ts_gen_.Next(++clock_);
    txn_ = engine_->Begin(is_query_ ? TxnType::kQuery : TxnType::kUpdate,
                          ts, BoundSpec::TransactionOnly(limit_));
    step_ = 0;
    sum_ = 0;
    src_value_ = 0;
    if (!is_query_) {
      const int64_t n = static_cast<int64_t>(num_objects_);
      src_ = static_cast<ObjectId>(rng_.UniformInt(0, n - 1));
      dst_ = static_cast<ObjectId>(rng_.UniformInt(0, n - 1));
      while (dst_ == src_) {
        dst_ = static_cast<ObjectId>(rng_.UniformInt(0, n - 1));
      }
      amount_ = rng_.UniformInt(1, 200);
    }
  }

  void StepQuery() {
    if (step_ < static_cast<int>(num_objects_)) {
      const OpResult r = engine_->Read(txn_, static_cast<ObjectId>(step_));
      if (!Advance(r)) return;
      sum_ += r.value;
      return;
    }
    const Transaction* state = engine_->Find(txn_);
    ASSERT_NE(state, nullptr);
    outcomes_.push_back(
        QueryOutcome{sum_, state->accumulator().total()});
    ASSERT_TRUE(engine_->Commit(txn_).ok());
    txn_ = kInvalidTxnId;
    ++commits_;
  }

  void StepTransfer() {
    switch (step_) {
      case 0: {
        const OpResult r = engine_->Read(txn_, src_);
        if (!Advance(r)) return;
        src_value_ = r.value;
        return;
      }
      case 1: {
        const OpResult r = engine_->Read(txn_, dst_);
        if (!Advance(r)) return;
        dst_value_ = r.value;
        return;
      }
      case 2:
        Advance(engine_->Write(txn_, src_, src_value_ - amount_));
        return;
      case 3:
        Advance(engine_->Write(txn_, dst_, dst_value_ + amount_));
        return;
      default: {
        ASSERT_TRUE(engine_->Commit(txn_).ok());
        txn_ = kInvalidTxnId;
        ++commits_;
      }
    }
  }

  bool Advance(const OpResult& r) {
    switch (r.kind) {
      case OpResult::Kind::kOk:
        ++step_;
        return true;
      case OpResult::Kind::kWait:
        return false;
      case OpResult::Kind::kAbort:
        txn_ = kInvalidTxnId;
        ++aborts_;
        return false;
    }
    return false;
  }

  TransactionEngine* engine_;
  size_t num_objects_;
  bool is_query_;
  Inconsistency limit_;
  Rng rng_;
  TimestampGenerator ts_gen_;
  int64_t clock_ = 0;

  TxnId txn_ = kInvalidTxnId;
  int step_ = 0;
  Value sum_ = 0;
  ObjectId src_ = 0, dst_ = 0;
  Value src_value_ = 0, dst_value_ = 0;
  Value amount_ = 0;

  bool draining_ = false;
  int64_t commits_ = 0;
  int64_t aborts_ = 0;
  std::vector<QueryOutcome> outcomes_;
};

}  // namespace testing
}  // namespace esr

#endif  // ESR_TESTS_TESTING_SCRIPTED_CLIENT_H_
