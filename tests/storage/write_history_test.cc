#include "storage/write_history.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

TEST(WriteHistoryTest, EmptyHasNoProperValue) {
  WriteHistory h(4);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.ProperValueBefore(Ts(100)).has_value());
  EXPECT_EQ(h.NewestTimestamp(), Timestamp::Min());
}

TEST(WriteHistoryTest, ProperValueIsNewestOlderWrite) {
  WriteHistory h(8);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  h.Record(Ts(30), 300);
  // A query with ts 25 should see the value written at ts 20 as proper.
  EXPECT_EQ(h.ProperValueBefore(Ts(25)).value(), 200);
  EXPECT_EQ(h.ProperValueBefore(Ts(35)).value(), 300);
  EXPECT_EQ(h.ProperValueBefore(Ts(15)).value(), 100);
}

TEST(WriteHistoryTest, ExactTimestampIsNotStrictlyOlder) {
  WriteHistory h(4);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  // "last write with a timestamp lesser than this read": strict.
  EXPECT_EQ(h.ProperValueBefore(Ts(20)).value(), 100);
}

TEST(WriteHistoryTest, QueryOlderThanEverythingRetainedMisses) {
  WriteHistory h(2);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  h.Record(Ts(30), 300);  // evicts ts=10
  EXPECT_FALSE(h.ProperValueBefore(Ts(15)).has_value());
  EXPECT_EQ(h.ProperValueBefore(Ts(25)).value(), 200);
}

TEST(WriteHistoryTest, DepthBoundsRetention) {
  WriteHistory h(20);  // the paper's empirical depth
  for (int i = 1; i <= 50; ++i) h.Record(Ts(i * 10), i);
  EXPECT_EQ(h.size(), 20u);
  // Oldest retained write is #31 (50 - 20 + 1).
  EXPECT_EQ(h.entries().front().value, 31);
  EXPECT_FALSE(h.ProperValueBefore(Ts(305)).has_value());
  EXPECT_EQ(h.ProperValueBefore(Ts(315)).value(), 31);
}

TEST(WriteHistoryTest, OutOfOrderInsertKeptSorted) {
  WriteHistory h(8);
  h.Record(Ts(10), 100);
  h.Record(Ts(30), 300);
  h.Record(Ts(20), 200);  // strict TO commits nearly in order, not exactly
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.entries()[0].ts, Ts(10));
  EXPECT_EQ(h.entries()[1].ts, Ts(20));
  EXPECT_EQ(h.entries()[2].ts, Ts(30));
  EXPECT_EQ(h.ProperValueBefore(Ts(25)).value(), 200);
}

TEST(WriteHistoryTest, OutOfOrderEvictionDropsOldest) {
  WriteHistory h(2);
  h.Record(Ts(10), 100);
  h.Record(Ts(30), 300);
  h.Record(Ts(20), 200);  // sorted insert then eviction of ts=10
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.entries().front().ts, Ts(20));
}

TEST(WriteHistoryTest, DepthOneKeepsOnlyNewest) {
  WriteHistory h(1);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.ProperValueBefore(Ts(100)).value(), 200);
  EXPECT_FALSE(h.ProperValueBefore(Ts(15)).has_value());
}

TEST(WriteHistoryTest, NewestTimestampTracksTail) {
  WriteHistory h(4);
  h.Record(Ts(10), 1);
  EXPECT_EQ(h.NewestTimestamp(), Ts(10));
  h.Record(Ts(50), 2);
  EXPECT_EQ(h.NewestTimestamp(), Ts(50));
  h.Record(Ts(30), 3);  // older insert does not change the newest
  EXPECT_EQ(h.NewestTimestamp(), Ts(50));
}

// Parameterized sweep: proper-value lookup is correct at every depth.
class WriteHistoryDepthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WriteHistoryDepthTest, LookupMatchesBruteForce) {
  const size_t depth = GetParam();
  WriteHistory h(depth);
  constexpr int kWrites = 40;
  for (int i = 1; i <= kWrites; ++i) h.Record(Ts(i * 10), i);
  const int oldest_retained = kWrites - static_cast<int>(h.size()) + 1;
  for (int q = 0; q <= kWrites + 1; ++q) {
    const auto got = h.ProperValueBefore(Ts(q * 10 + 5));
    // Brute force: newest write with ts < query is write #q (value q).
    if (q >= oldest_retained) {
      ASSERT_TRUE(got.has_value()) << "depth=" << depth << " q=" << q;
      EXPECT_EQ(*got, std::min(q, kWrites));
    } else {
      EXPECT_FALSE(got.has_value()) << "depth=" << depth << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, WriteHistoryDepthTest,
                         ::testing::Values(1, 2, 5, 20, 64));

}  // namespace
}  // namespace esr
