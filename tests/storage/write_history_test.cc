#include "storage/write_history.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

TEST(WriteHistoryTest, EmptyHasNoProperValue) {
  WriteHistory h(4);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.ProperValueBefore(Ts(100)).has_value());
  EXPECT_EQ(h.NewestTimestamp(), Timestamp::Min());
}

TEST(WriteHistoryTest, ProperValueIsNewestOlderWrite) {
  WriteHistory h(8);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  h.Record(Ts(30), 300);
  // A query with ts 25 should see the value written at ts 20 as proper.
  EXPECT_EQ(h.ProperValueBefore(Ts(25)).value(), 200);
  EXPECT_EQ(h.ProperValueBefore(Ts(35)).value(), 300);
  EXPECT_EQ(h.ProperValueBefore(Ts(15)).value(), 100);
}

TEST(WriteHistoryTest, ExactTimestampIsNotStrictlyOlder) {
  WriteHistory h(4);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  // "last write with a timestamp lesser than this read": strict.
  EXPECT_EQ(h.ProperValueBefore(Ts(20)).value(), 100);
}

TEST(WriteHistoryTest, QueryOlderThanEverythingRetainedMisses) {
  WriteHistory h(2);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  h.Record(Ts(30), 300);  // evicts ts=10
  EXPECT_FALSE(h.ProperValueBefore(Ts(15)).has_value());
  EXPECT_EQ(h.ProperValueBefore(Ts(25)).value(), 200);
}

TEST(WriteHistoryTest, DepthBoundsRetention) {
  WriteHistory h(20);  // the paper's empirical depth
  for (int i = 1; i <= 50; ++i) h.Record(Ts(i * 10), i);
  EXPECT_EQ(h.size(), 20u);
  // Oldest retained write is #31 (50 - 20 + 1).
  EXPECT_EQ(h.entries().front().value, 31);
  EXPECT_FALSE(h.ProperValueBefore(Ts(305)).has_value());
  EXPECT_EQ(h.ProperValueBefore(Ts(315)).value(), 31);
}

TEST(WriteHistoryTest, OutOfOrderInsertKeptSorted) {
  WriteHistory h(8);
  h.Record(Ts(10), 100);
  h.Record(Ts(30), 300);
  h.Record(Ts(20), 200);  // strict TO commits nearly in order, not exactly
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.entries()[0].ts, Ts(10));
  EXPECT_EQ(h.entries()[1].ts, Ts(20));
  EXPECT_EQ(h.entries()[2].ts, Ts(30));
  EXPECT_EQ(h.ProperValueBefore(Ts(25)).value(), 200);
}

TEST(WriteHistoryTest, OutOfOrderEvictionDropsOldest) {
  WriteHistory h(2);
  h.Record(Ts(10), 100);
  h.Record(Ts(30), 300);
  h.Record(Ts(20), 200);  // sorted insert then eviction of ts=10
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.entries().front().ts, Ts(20));
}

TEST(WriteHistoryTest, DepthOneKeepsOnlyNewest) {
  WriteHistory h(1);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.ProperValueBefore(Ts(100)).value(), 200);
  EXPECT_FALSE(h.ProperValueBefore(Ts(15)).has_value());
}

TEST(WriteHistoryTest, NewestTimestampTracksTail) {
  WriteHistory h(4);
  h.Record(Ts(10), 1);
  EXPECT_EQ(h.NewestTimestamp(), Ts(10));
  h.Record(Ts(50), 2);
  EXPECT_EQ(h.NewestTimestamp(), Ts(50));
  h.Record(Ts(30), 3);  // older insert does not change the newest
  EXPECT_EQ(h.NewestTimestamp(), Ts(50));
}

TEST(WriteHistoryTest, ExactlyOldestRetainedTimestampMisses) {
  // A query at exactly the oldest retained timestamp needs the write
  // *before* it (strictly older), and a full ring has already evicted
  // that one — the lookup must miss, not return the boundary write.
  WriteHistory h(3);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  h.Record(Ts(30), 300);
  h.Record(Ts(40), 400);  // evicts ts=10; oldest retained is ts=20
  ASSERT_EQ(h.OldestTimestamp(), Ts(20));
  EXPECT_FALSE(h.ProperValueBefore(Ts(20)).has_value());
  // One tick past the boundary, the oldest retained write is proper.
  EXPECT_EQ(h.ProperValueBefore(Ts(21)).value(), 200);
}

TEST(WriteHistoryTest, ExactlyOldestTimestampHitsWhileRingHasRoom) {
  // Same boundary query, but the ring never evicted: the write before
  // the oldest retained one was never recorded at all, so the miss is
  // genuine only after eviction. With ts=10 still present, a query at
  // its timestamp misses because nothing is older — not because the ring
  // forgot.
  WriteHistory h(8);
  h.Record(Ts(10), 100);
  h.Record(Ts(20), 200);
  EXPECT_FALSE(h.ProperValueBefore(Ts(10)).has_value());
  EXPECT_EQ(h.ProperValueBefore(Ts(20)).value(), 100);
}

TEST(WriteHistoryTest, ArenaBackedDepthOneWrapsInPlace) {
  // Depth-1 ring over an arena slice: every Record overwrites the single
  // slot (start_ never moves past it), and the neighboring object's slice
  // must stay untouched.
  HistoryArena arena(/*num_objects=*/2, /*depth=*/1);
  WriteHistory h0(arena.SlotFor(0), 1);
  WriteHistory h1(arena.SlotFor(1), 1);
  h1.Record(Ts(5), 555);
  for (int i = 1; i <= 10; ++i) h0.Record(Ts(i * 10), i);
  EXPECT_EQ(h0.size(), 1u);
  EXPECT_EQ(h0.NewestTimestamp(), Ts(100));
  EXPECT_EQ(h0.OldestTimestamp(), Ts(100));
  EXPECT_EQ(h0.ProperValueBefore(Ts(1000)).value(), 10);
  // Stale write older than the sole retained entry is dropped outright.
  h0.Record(Ts(15), 99);
  EXPECT_EQ(h0.ProperValueBefore(Ts(1000)).value(), 10);
  // Neighbor slice is unperturbed by object 0's churn.
  EXPECT_EQ(h1.ProperValueBefore(Ts(6)).value(), 555);
  EXPECT_EQ(arena.SlotFor(1)[0].value, 555);
}

TEST(WriteHistoryTest, ArenaBackedRingWrapsPastPhysicalEnd) {
  // Enough records to cycle start_ around the physical slice several
  // times; logical order and lookups must be oblivious to the wrap.
  HistoryArena arena(/*num_objects=*/1, /*depth=*/4);
  WriteHistory h(arena.SlotFor(0), 4);
  for (int i = 1; i <= 11; ++i) h.Record(Ts(i * 10), i);
  ASSERT_EQ(h.size(), 4u);
  const auto entries = h.entries();
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    EXPECT_LT(entries[i].ts, entries[i + 1].ts);
  }
  EXPECT_EQ(entries.front().value, 8);   // writes 8..11 retained
  EXPECT_EQ(entries.back().value, 11);
  EXPECT_EQ(h.ProperValueBefore(Ts(95)).value(), 9);
  EXPECT_FALSE(h.ProperValueBefore(Ts(80)).has_value());
}

// Parameterized sweep: proper-value lookup is correct at every depth.
class WriteHistoryDepthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WriteHistoryDepthTest, LookupMatchesBruteForce) {
  const size_t depth = GetParam();
  WriteHistory h(depth);
  constexpr int kWrites = 40;
  for (int i = 1; i <= kWrites; ++i) h.Record(Ts(i * 10), i);
  const int oldest_retained = kWrites - static_cast<int>(h.size()) + 1;
  for (int q = 0; q <= kWrites + 1; ++q) {
    const auto got = h.ProperValueBefore(Ts(q * 10 + 5));
    // Brute force: newest write with ts < query is write #q (value q).
    if (q >= oldest_retained) {
      ASSERT_TRUE(got.has_value()) << "depth=" << depth << " q=" << q;
      EXPECT_EQ(*got, std::min(q, kWrites));
    } else {
      EXPECT_FALSE(got.has_value()) << "depth=" << depth << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, WriteHistoryDepthTest,
                         ::testing::Values(1, 2, 5, 20, 64));

}  // namespace
}  // namespace esr
