#include "storage/object.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

TEST(ObjectRecordTest, InitialState) {
  ObjectRecord obj(7, 1234, 20);
  EXPECT_EQ(obj.id(), 7u);
  EXPECT_EQ(obj.value(), 1234);
  EXPECT_FALSE(obj.has_uncommitted_write());
  EXPECT_EQ(obj.write_ts(), Timestamp::Min());
  EXPECT_EQ(obj.query_read_ts(), Timestamp::Min());
  EXPECT_EQ(obj.update_read_ts(), Timestamp::Min());
}

TEST(ObjectRecordTest, InitialValueIsProperForAnyQuery) {
  ObjectRecord obj(1, 500, 20);
  EXPECT_EQ(obj.ProperValueFor(Ts(1)).value(), 500);
}

TEST(ObjectRecordTest, ReadTimestampsAreMonotoneMaxima) {
  ObjectRecord obj(1, 0, 4);
  obj.NoteQueryRead(Ts(10));
  obj.NoteQueryRead(Ts(5));  // older read does not regress the ts
  EXPECT_EQ(obj.query_read_ts(), Ts(10));
  obj.NoteUpdateRead(Ts(20));
  EXPECT_EQ(obj.update_read_ts(), Ts(20));
  EXPECT_EQ(obj.max_read_ts(), Ts(20));
}

TEST(ObjectRecordTest, WriteAppliesInPlaceWithShadow) {
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(/*txn=*/5, Ts(10), 150);
  EXPECT_TRUE(obj.has_uncommitted_write());
  EXPECT_EQ(obj.uncommitted_writer(), 5u);
  // Present value reflects the uncommitted write (shadow paging).
  EXPECT_EQ(obj.value(), 150);
  EXPECT_EQ(obj.write_ts(), Ts(10));
}

TEST(ObjectRecordTest, CommitMakesWriteVisibleInHistory) {
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(5, Ts(10), 150);
  obj.CommitWrite(5);
  EXPECT_FALSE(obj.has_uncommitted_write());
  EXPECT_EQ(obj.value(), 150);
  EXPECT_EQ(obj.ProperValueFor(Ts(11)).value(), 150);
  EXPECT_EQ(obj.ProperValueFor(Ts(9)).value(), 100);
}

TEST(ObjectRecordTest, AbortRestoresShadowValueAndTimestamp) {
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(5, Ts(10), 150);
  obj.AbortWrite(5);
  EXPECT_FALSE(obj.has_uncommitted_write());
  EXPECT_EQ(obj.value(), 100);
  EXPECT_EQ(obj.write_ts(), Timestamp::Min());
  // The aborted write never enters the history.
  EXPECT_EQ(obj.ProperValueFor(Ts(11)).value(), 100);
}

TEST(ObjectRecordTest, SameTxnOverwriteKeepsOriginalShadow) {
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(5, Ts(10), 150);
  obj.ApplyWrite(5, Ts(10), 175);  // blind overwrite by the same txn
  obj.AbortWrite(5);
  EXPECT_EQ(obj.value(), 100);  // restored to the pre-transaction image
}

TEST(ObjectRecordTest, CommitAfterOverwriteRecordsFinalValue) {
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(5, Ts(10), 150);
  obj.ApplyWrite(5, Ts(10), 175);
  obj.CommitWrite(5);
  EXPECT_EQ(obj.value(), 175);
  EXPECT_EQ(obj.ProperValueFor(Ts(11)).value(), 175);
}

TEST(ObjectRecordTest, QueryReaderRegistrationIsIdempotent) {
  ObjectRecord obj(1, 100, 4);
  obj.RegisterQueryReader(9, Ts(5), 100);
  obj.RegisterQueryReader(9, Ts(5), 100);  // one read per object per txn
  EXPECT_EQ(obj.query_readers().size(), 1u);
  EXPECT_EQ(obj.query_readers()[0].txn, 9u);
  EXPECT_EQ(obj.query_readers()[0].proper_value, 100);
}

TEST(ObjectRecordTest, UnregisterRemovesOnlyNamedReader) {
  ObjectRecord obj(1, 100, 4);
  obj.RegisterQueryReader(9, Ts(5), 100);
  obj.RegisterQueryReader(10, Ts(6), 101);
  obj.UnregisterQueryReader(9);
  ASSERT_EQ(obj.query_readers().size(), 1u);
  EXPECT_EQ(obj.query_readers()[0].txn, 10u);
  obj.UnregisterQueryReader(999);  // unknown reader is a no-op
  EXPECT_EQ(obj.query_readers().size(), 1u);
}

TEST(ObjectRecordTest, LimitsAreStored) {
  ObjectRecord obj(1, 0, 4);
  EXPECT_EQ(obj.oil(), kUnbounded);
  EXPECT_EQ(obj.oel(), kUnbounded);
  obj.set_oil(500.0);
  obj.set_oel(250.0);
  EXPECT_EQ(obj.oil(), 500.0);
  EXPECT_EQ(obj.oel(), 250.0);
}

TEST(ObjectRecordDeathTest, CommitByNonWriterIsFatal) {
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(5, Ts(10), 150);
  EXPECT_DEATH(obj.CommitWrite(6), "commit by non-writer");
}

TEST(ObjectRecordDeathTest, ConcurrentSecondWriterIsFatal) {
  // Strict ordering guarantees the engine never lets this happen; the
  // storage layer enforces it as an invariant.
  ObjectRecord obj(1, 100, 4);
  obj.ApplyWrite(5, Ts(10), 150);
  EXPECT_DEATH(obj.ApplyWrite(6, Ts(11), 160), "concurrent uncommitted");
}

}  // namespace
}  // namespace esr
