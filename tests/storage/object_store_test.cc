#include "storage/object_store.h"

#include <gtest/gtest.h>

#include <cmath>

namespace esr {
namespace {

ObjectStoreOptions SmallStore() {
  ObjectStoreOptions opt;
  opt.num_objects = 100;
  opt.seed = 1;
  return opt;
}

TEST(ObjectStoreTest, PopulatesRequestedNumberOfObjects) {
  ObjectStore store(SmallStore());
  EXPECT_EQ(store.size(), 100u);
  EXPECT_TRUE(store.Contains(0));
  EXPECT_TRUE(store.Contains(99));
  EXPECT_FALSE(store.Contains(100));
}

TEST(ObjectStoreTest, InitialValuesWithinPaperRange) {
  ObjectStore store(SmallStore());
  for (ObjectId id = 0; id < 100; ++id) {
    const Value v = store.Get(id).value();
    EXPECT_GE(v, 1000);
    EXPECT_LE(v, 9999);
  }
}

TEST(ObjectStoreTest, DeterministicGivenSeed) {
  ObjectStore a(SmallStore()), b(SmallStore());
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_EQ(a.Get(id).value(), b.Get(id).value());
  }
}

TEST(ObjectStoreTest, DifferentSeedsDiffer) {
  ObjectStoreOptions opt2 = SmallStore();
  opt2.seed = 2;
  ObjectStore a(SmallStore()), b(opt2);
  int same = 0;
  for (ObjectId id = 0; id < 100; ++id) {
    if (a.Get(id).value() == b.Get(id).value()) ++same;
  }
  EXPECT_LT(same, 20);
}

TEST(ObjectStoreTest, ReadValueChecksBounds) {
  ObjectStore store(SmallStore());
  EXPECT_TRUE(store.ReadValue(5).ok());
  EXPECT_EQ(store.ReadValue(100).status().code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, DefaultLimitsAreUnbounded) {
  ObjectStore store(SmallStore());
  EXPECT_EQ(store.Get(0).oil(), kUnbounded);
  EXPECT_EQ(store.Get(0).oel(), kUnbounded);
}

TEST(ObjectStoreTest, RandomizedLimitsWithinRange) {
  ObjectStoreOptions opt = SmallStore();
  opt.min_oil = 100.0;
  opt.max_oil = 200.0;
  opt.min_oel = 50.0;
  opt.max_oel = 60.0;
  ObjectStore store(opt);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_GE(store.Get(id).oil(), 100.0);
    EXPECT_LE(store.Get(id).oil(), 200.0);
    EXPECT_GE(store.Get(id).oel(), 50.0);
    EXPECT_LE(store.Get(id).oel(), 60.0);
  }
}

TEST(ObjectStoreTest, SetObjectImportLimitsResamples) {
  ObjectStore store(SmallStore());
  store.SetObjectImportLimits(10.0, 20.0);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_GE(store.Get(id).oil(), 10.0);
    EXPECT_LE(store.Get(id).oil(), 20.0);
    EXPECT_EQ(store.Get(id).oel(), kUnbounded);  // untouched
  }
  store.SetObjectExportLimits(5.0, 5.0);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_EQ(store.Get(id).oel(), 5.0);
  }
}

TEST(ObjectStoreTest, UnboundedRangeYieldsUnbounded) {
  ObjectStore store(SmallStore());
  store.SetObjectImportLimits(kUnbounded, kUnbounded);
  EXPECT_TRUE(std::isinf(store.Get(0).oil()));
}

TEST(ObjectStoreTest, TotalValueSumsEverything) {
  ObjectStoreOptions opt = SmallStore();
  opt.num_objects = 3;
  opt.min_value = 5;
  opt.max_value = 5;
  ObjectStore store(opt);
  EXPECT_EQ(store.TotalValue(), 15);
}

TEST(ObjectStoreTest, ImportLimitResampleAfterWritesPreservesState) {
  // Re-randomizing OILs mid-experiment (the Fig. 12/13 sweeps do this
  // between points) must not disturb values, histories, or OELs that
  // accumulated since load time.
  ObjectStore store(SmallStore());
  const Timestamp ts{100, 1};
  store.Get(7).ApplyWrite(/*txn=*/1, ts, 4321);
  store.Get(7).CommitWrite(/*txn=*/1);
  const Value total_before = store.TotalValue();

  store.SetObjectImportLimits(10.0, 20.0);
  EXPECT_EQ(store.TotalValue(), total_before);
  EXPECT_EQ(store.Get(7).value(), 4321);
  // The load-time value plus the committed write.
  ASSERT_EQ(store.Get(7).history().size(), 2u);
  EXPECT_EQ(store.Get(7).history().NewestTimestamp(), ts);
  EXPECT_EQ(store.Get(7).ProperValueFor(Timestamp{200, 1}).value(), 4321);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_GE(store.Get(id).oil(), 10.0);
    EXPECT_LE(store.Get(id).oil(), 20.0);
    EXPECT_EQ(store.Get(id).oel(), kUnbounded);
  }
}

TEST(ObjectStoreTest, ImportLimitResampleIsDeterministicAcrossStores) {
  // The resample draws from the store's own seeded stream, so two stores
  // with the same seed land on identical limits no matter how many
  // writes happened in between — sweep points stay reproducible.
  ObjectStore a(SmallStore()), b(SmallStore());
  b.Get(3).ApplyWrite(/*txn=*/9, Timestamp{50, 2}, 7777);
  b.Get(3).CommitWrite(/*txn=*/9);
  a.SetObjectImportLimits(100.0, 900.0);
  b.SetObjectImportLimits(100.0, 900.0);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_EQ(a.Get(id).oil(), b.Get(id).oil()) << "object " << id;
  }
  // Consecutive resamples keep consuming the stream: a second call must
  // actually re-draw, not replay the first assignment.
  a.SetObjectImportLimits(100.0, 900.0);
  int changed = 0;
  for (ObjectId id = 0; id < 100; ++id) {
    if (a.Get(id).oil() != b.Get(id).oil()) ++changed;
  }
  EXPECT_GT(changed, 50);
}

TEST(ObjectStoreTest, HistoryDepthPropagates) {
  ObjectStoreOptions opt = SmallStore();
  opt.history_depth = 3;
  ObjectStore store(opt);
  EXPECT_EQ(store.Get(0).history().depth(), 3u);
}

}  // namespace
}  // namespace esr
