#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace esr {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.ScheduleAt(10, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue q;
  SimTime observed = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAfter(50, [&] { observed = q.now(); });
  });
  q.RunAll();
  EXPECT_EQ(observed, 150);
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  SimTime observed = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAt(10, [&] { observed = q.now(); });  // in the past
  });
  q.RunAll();
  EXPECT_EQ(observed, 100);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&] { ++ran; });
  q.ScheduleAt(20, [&] { ++ran; });
  q.ScheduleAt(21, [&] { ++ran; });
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(q.now(), 100);  // clock advances to the horizon
}

TEST(EventQueueTest, EventsCanChainIndefinitely) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) q.ScheduleAfter(5, tick);
  };
  q.ScheduleAt(0, tick);
  q.RunAll();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.now(), 99 * 5);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueueTest, RunAllGuardStopsRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.ScheduleAfter(1, forever); };
  q.ScheduleAt(0, forever);
  q.RunAll(/*max_events=*/500);
  EXPECT_EQ(q.executed(), 500u);
}

// --- Determinism suite: the kernel's FIFO-within-timestamp contract is
// what makes every simulation bit-reproducible, so it gets hammered
// beyond the basic three-event case above.

TEST(EventQueueDeterminismTest, SameTimestampStormKeepsFifoOrder) {
  EventQueue q;
  constexpr int kEvents = 10'000;
  std::vector<int> order;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    q.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  ASSERT_EQ(order.size(), static_cast<size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueDeterminismTest, InterleavedTimestampStormSortsStably) {
  // Schedule events across a handful of timestamps in a scrambled but
  // fixed pattern; within each timestamp the scheduling order must hold.
  EventQueue q;
  constexpr int kEvents = 5'000;
  std::vector<std::pair<SimTime, int>> executed;
  executed.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    const SimTime at = (i * 7919) % 10;  // deterministic scramble
    q.ScheduleAt(at, [&executed, at, i] { executed.push_back({at, i}); });
  }
  q.RunAll();
  ASSERT_EQ(executed.size(), static_cast<size_t>(kEvents));
  for (size_t i = 1; i < executed.size(); ++i) {
    ASSERT_LE(executed[i - 1].first, executed[i].first);
    if (executed[i - 1].first == executed[i].first) {
      ASSERT_LT(executed[i - 1].second, executed[i].second);
    }
  }
}

TEST(EventQueueDeterminismTest, ReentrantScheduleAtSameTimeRunsAfter) {
  // An event that schedules another event at the CURRENT time must see
  // it run after every already-queued event at that time (seq order).
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] {
    order.push_back(1);
    q.ScheduleAt(10, [&] { order.push_back(3); });
  });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueDeterminismTest, IdenticalSchedulesExecuteIdentically) {
  auto run = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 1'000; ++i) {
      q.ScheduleAt((i * 31) % 17, [&order, i] { order.push_back(i); });
    }
    q.RunAll();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventQueueTest, OversizedCallbackRunsIntact) {
  // A capture bigger than the inline slot buffer takes the slab's
  // oversize path; the payload must arrive unscrambled.
  EventQueue q;
  struct BigPayload {
    long data[32];
  };
  BigPayload payload;
  for (int i = 0; i < 32; ++i) payload.data[i] = i * 1'000'003L;
  static_assert(sizeof(BigPayload) > 64, "must exceed inline storage");
  long sum = 0;
  q.ScheduleAt(5, [payload, &sum] {
    for (const long v : payload.data) sum += v;
  });
  q.RunAll();
  long expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * 1'000'003L;
  EXPECT_EQ(sum, expected);
}

TEST(EventQueueTest, OversizedSlotsAreRecycled) {
  // Repeatedly scheduling oversized callbacks through the same queue
  // must reuse slots/blocks rather than grow without bound; this is a
  // behavioural check (counts), the allocation claim is covered by the
  // sanitizer jobs and micro_event_queue.
  EventQueue q;
  struct Big {
    char bytes[256];
  };
  Big big{};
  big.bytes[0] = 7;
  int ran = 0;
  for (int round = 0; round < 100; ++round) {
    q.ScheduleAfter(1, [big, &ran] { ran += big.bytes[0]; });
    q.RunAll();
  }
  EXPECT_EQ(ran, 700);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueueTest, MoveOnlyCallablesAreSupported) {
  EventQueue q;
  auto payload = std::make_unique<int>(99);
  int seen = 0;
  q.ScheduleAt(1, [p = std::move(payload), &seen] { seen = *p; });
  q.RunAll();
  EXPECT_EQ(seen, 99);
}

TEST(EventQueueTest, DestructorReleasesPendingEvents) {
  // Pending callables (inline and oversized) must be destroyed with the
  // queue; shared_ptr use-counts make the destruction observable.
  auto tracker = std::make_shared<int>(0);
  struct Fat {
    char pad[200];
  };
  {
    EventQueue q;
    q.ScheduleAt(10, [tracker] { ++*tracker; });
    Fat fat{};
    q.ScheduleAt(20, [tracker, fat] { ++*tracker; (void)fat; });
    EXPECT_EQ(tracker.use_count(), 3);
  }
  EXPECT_EQ(tracker.use_count(), 1);
  EXPECT_EQ(*tracker, 0);  // never executed
}

}  // namespace
}  // namespace esr
