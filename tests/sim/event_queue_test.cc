#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace esr {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.ScheduleAt(10, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue q;
  SimTime observed = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAfter(50, [&] { observed = q.now(); });
  });
  q.RunAll();
  EXPECT_EQ(observed, 150);
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  SimTime observed = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAt(10, [&] { observed = q.now(); });  // in the past
  });
  q.RunAll();
  EXPECT_EQ(observed, 100);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&] { ++ran; });
  q.ScheduleAt(20, [&] { ++ran; });
  q.ScheduleAt(21, [&] { ++ran; });
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(q.now(), 100);  // clock advances to the horizon
}

TEST(EventQueueTest, EventsCanChainIndefinitely) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) q.ScheduleAfter(5, tick);
  };
  q.ScheduleAt(0, tick);
  q.RunAll();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.now(), 99 * 5);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueueTest, RunAllGuardStopsRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.ScheduleAfter(1, forever); };
  q.ScheduleAt(0, forever);
  q.RunAll(/*max_events=*/500);
  EXPECT_EQ(q.executed(), 500u);
}

}  // namespace
}  // namespace esr
