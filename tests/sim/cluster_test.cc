#include "sim/cluster.h"

#include <gtest/gtest.h>

#include "esr/limits.h"

namespace esr {
namespace {

ClusterOptions FastOptions(int mpl, EpsilonLevel level, uint64_t seed = 7) {
  ClusterOptions opt;
  opt.mpl = mpl;
  const TransactionLimits limits = LimitsForLevel(level);
  opt.workload.til = limits.til;
  opt.workload.tel = limits.tel;
  opt.warmup_s = 2.0;
  opt.measure_s = 20.0;
  opt.seed = seed;
  return opt;
}

TEST(ClusterTest, SingleClientMakesProgress) {
  const SimResult r = RunCluster(FastOptions(1, EpsilonLevel::kHigh));
  EXPECT_GT(r.committed, 20);
  EXPECT_EQ(r.aborts, 0);          // nothing to conflict with
  EXPECT_EQ(r.waits, 0);
  EXPECT_GT(r.throughput(), 1.0);
  EXPECT_GT(r.ops_executed, r.committed * 5);
}

TEST(ClusterTest, DeterministicGivenSeed) {
  const SimResult a = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 99));
  const SimResult b = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 99));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.inconsistent_ops, b.inconsistent_ops);
  EXPECT_EQ(a.waits, b.waits);
}

TEST(ClusterTest, DifferentSeedsDiffer) {
  const SimResult a = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 1));
  const SimResult b = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 2));
  EXPECT_NE(a.ops_executed, b.ops_executed);
}

TEST(ClusterTest, SrNeverExecutesInconsistentOps) {
  const SimResult r = RunCluster(FastOptions(5, EpsilonLevel::kZero));
  EXPECT_EQ(r.inconsistent_ops, 0);
  EXPECT_EQ(r.import_total, 0.0);
  EXPECT_GT(r.aborts, 0);  // high-conflict SR must abort sometimes
}

TEST(ClusterTest, EsrExecutesInconsistentOpsUnderContention) {
  const SimResult r = RunCluster(FastOptions(5, EpsilonLevel::kHigh));
  EXPECT_GT(r.inconsistent_ops, 0);
  EXPECT_GT(r.import_total, 0.0);
}

TEST(ClusterTest, EsrOutperformsSrUnderContention) {
  const SimResult sr = RunCluster(FastOptions(6, EpsilonLevel::kZero));
  const SimResult esr = RunCluster(FastOptions(6, EpsilonLevel::kHigh));
  EXPECT_GT(esr.throughput(), sr.throughput() * 1.2);
  EXPECT_LT(esr.aborts, sr.aborts);
}

TEST(ClusterTest, ThroughputScalesAtLowMpl) {
  const SimResult one = RunCluster(FastOptions(1, EpsilonLevel::kHigh));
  const SimResult three = RunCluster(FastOptions(3, EpsilonLevel::kHigh));
  EXPECT_GT(three.throughput(), one.throughput() * 1.8);
}

TEST(ClusterTest, MetricsAreInternallyConsistent) {
  const SimResult r = RunCluster(FastOptions(4, EpsilonLevel::kMedium));
  EXPECT_EQ(r.committed, r.committed_query + r.committed_update);
  EXPECT_GE(r.ops_executed, r.committed);  // every commit ran ops
  EXPECT_GE(r.ops_per_committed_txn(), 1.0);
  EXPECT_GT(r.avg_txn_latency_ms(), 0.0);
  EXPECT_EQ(r.mpl, 4);
  EXPECT_EQ(r.elapsed_s, 20.0);
}

TEST(ClusterTest, ImportedInconsistencyRespectsTilOnAverage) {
  // Every committed query imported at most TIL; so must the average.
  const ClusterOptions opt = FastOptions(5, EpsilonLevel::kLow);
  const SimResult r = RunCluster(opt);
  ASSERT_GT(r.committed_query, 0);
  EXPECT_LE(r.avg_import_per_query(),
            LimitsForLevel(EpsilonLevel::kLow).til);
}

TEST(ClusterTest, ToStringMentionsKeyNumbers) {
  const SimResult r = RunCluster(FastOptions(2, EpsilonLevel::kHigh));
  const std::string s = r.ToString();
  EXPECT_NE(s.find("mpl=2"), std::string::npos);
  EXPECT_NE(s.find("tput="), std::string::npos);
}

TEST(ClusterTest, ServerObjectCountFollowsWorkload) {
  ClusterOptions opt = FastOptions(1, EpsilonLevel::kHigh);
  opt.workload.num_objects = 123;
  Cluster cluster(opt);
  EXPECT_EQ(cluster.server().store().size(), 123u);
}

}  // namespace
}  // namespace esr
