#include "sim/cluster.h"

#include <gtest/gtest.h>

#include "esr/limits.h"

namespace esr {
namespace {

ClusterOptions FastOptions(int mpl, EpsilonLevel level, uint64_t seed = 7) {
  ClusterOptions opt;
  opt.mpl = mpl;
  const TransactionLimits limits = LimitsForLevel(level);
  opt.workload.til = limits.til;
  opt.workload.tel = limits.tel;
  opt.warmup_s = 2.0;
  opt.measure_s = 20.0;
  opt.seed = seed;
  return opt;
}

TEST(ClusterTest, SingleClientMakesProgress) {
  const SimResult r = RunCluster(FastOptions(1, EpsilonLevel::kHigh));
  EXPECT_GT(r.committed, 20);
  EXPECT_EQ(r.aborts, 0);          // nothing to conflict with
  EXPECT_EQ(r.waits, 0);
  EXPECT_GT(r.throughput(), 1.0);
  EXPECT_GT(r.ops_executed, r.committed * 5);
}

TEST(ClusterTest, DeterministicGivenSeed) {
  const SimResult a = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 99));
  const SimResult b = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 99));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.inconsistent_ops, b.inconsistent_ops);
  EXPECT_EQ(a.waits, b.waits);
}

TEST(ClusterTest, LaneWorkerCountDoesNotChangeAnyResult) {
  // The --lanes determinism contract: worker threads only change who
  // executes a conservative round, never what it computes. Every result
  // field — including the per-window series and the merged latency
  // distribution — must match byte for byte.
  ClusterOptions serial = FastOptions(4, EpsilonLevel::kMedium, 99);
  serial.collect_series = true;
  serial.series_window_s = 1.0;
  serial.lanes = 1;
  ClusterOptions parallel = serial;
  parallel.lanes = 8;  // clamped to mpl + 1 lanes internally

  const SimResult a = RunCluster(serial);
  const SimResult b = RunCluster(parallel);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.committed_query, b.committed_query);
  EXPECT_EQ(a.committed_update, b.committed_update);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.inconsistent_ops, b.inconsistent_ops);
  EXPECT_EQ(a.waits, b.waits);
  EXPECT_EQ(a.import_total, b.import_total);
  EXPECT_EQ(a.export_total, b.export_total);
  EXPECT_EQ(a.txn_latency_total_us, b.txn_latency_total_us);
  EXPECT_EQ(a.latency_ms.count(), b.latency_ms.count());
  ASSERT_EQ(a.series.windows.size(), b.series.windows.size());
  for (size_t i = 0; i < a.series.windows.size(); ++i) {
    EXPECT_EQ(a.series.windows[i].committed, b.series.windows[i].committed);
    EXPECT_EQ(a.series.windows[i].aborted, b.series.windows[i].aborted);
    EXPECT_EQ(a.series.windows[i].active_mpl,
              b.series.windows[i].active_mpl);
    EXPECT_EQ(a.series.windows[i].mean_op_latency_ms,
              b.series.windows[i].mean_op_latency_ms);
  }
}

TEST(ClusterTest, DifferentSeedsDiffer) {
  const SimResult a = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 1));
  const SimResult b = RunCluster(FastOptions(4, EpsilonLevel::kMedium, 2));
  EXPECT_NE(a.ops_executed, b.ops_executed);
}

TEST(ClusterTest, SrNeverExecutesInconsistentOps) {
  const SimResult r = RunCluster(FastOptions(5, EpsilonLevel::kZero));
  EXPECT_EQ(r.inconsistent_ops, 0);
  EXPECT_EQ(r.import_total, 0.0);
  EXPECT_GT(r.aborts, 0);  // high-conflict SR must abort sometimes
}

TEST(ClusterTest, EsrExecutesInconsistentOpsUnderContention) {
  const SimResult r = RunCluster(FastOptions(5, EpsilonLevel::kHigh));
  EXPECT_GT(r.inconsistent_ops, 0);
  EXPECT_GT(r.import_total, 0.0);
}

TEST(ClusterTest, EsrOutperformsSrUnderContention) {
  const SimResult sr = RunCluster(FastOptions(6, EpsilonLevel::kZero));
  const SimResult esr = RunCluster(FastOptions(6, EpsilonLevel::kHigh));
  EXPECT_GT(esr.throughput(), sr.throughput() * 1.2);
  EXPECT_LT(esr.aborts, sr.aborts);
}

TEST(ClusterTest, ThroughputScalesAtLowMpl) {
  const SimResult one = RunCluster(FastOptions(1, EpsilonLevel::kHigh));
  const SimResult three = RunCluster(FastOptions(3, EpsilonLevel::kHigh));
  EXPECT_GT(three.throughput(), one.throughput() * 1.8);
}

TEST(ClusterTest, MetricsAreInternallyConsistent) {
  const SimResult r = RunCluster(FastOptions(4, EpsilonLevel::kMedium));
  EXPECT_EQ(r.committed, r.committed_query + r.committed_update);
  EXPECT_GE(r.ops_executed, r.committed);  // every commit ran ops
  EXPECT_GE(r.ops_per_committed_txn(), 1.0);
  EXPECT_GT(r.avg_txn_latency_ms(), 0.0);
  EXPECT_EQ(r.mpl, 4);
  EXPECT_EQ(r.elapsed_s, 20.0);
}

TEST(ClusterTest, ImportedInconsistencyRespectsTilOnAverage) {
  // Every committed query imported at most TIL; so must the average.
  const ClusterOptions opt = FastOptions(5, EpsilonLevel::kLow);
  const SimResult r = RunCluster(opt);
  ASSERT_GT(r.committed_query, 0);
  EXPECT_LE(r.avg_import_per_query(),
            LimitsForLevel(EpsilonLevel::kLow).til);
}

TEST(ClusterTest, ToStringMentionsKeyNumbers) {
  const SimResult r = RunCluster(FastOptions(2, EpsilonLevel::kHigh));
  const std::string s = r.ToString();
  EXPECT_NE(s.find("mpl=2"), std::string::npos);
  EXPECT_NE(s.find("tput="), std::string::npos);
}

TEST(ClusterTest, ServerObjectCountFollowsWorkload) {
  ClusterOptions opt = FastOptions(1, EpsilonLevel::kHigh);
  opt.workload.num_objects = 123;
  Cluster cluster(opt);
  EXPECT_EQ(cluster.server().store().size(), 123u);
}

ClusterOptions SeriesOptions(int mpl, EpsilonLevel level, uint64_t seed = 7) {
  ClusterOptions opt = FastOptions(mpl, level, seed);
  opt.collect_series = true;
  opt.series_window_s = 1.0;
  opt.series_source = "cluster_test";
  return opt;
}

TEST(SeriesSamplerTest, SamplingIsPurelyObservational) {
  // The telemetry windows ride on sampling events interleaved into the
  // queue; workload results must be identical with and without them.
  const SimResult plain = RunCluster(FastOptions(4, EpsilonLevel::kMedium));
  const SimResult sampled =
      RunCluster(SeriesOptions(4, EpsilonLevel::kMedium));
  EXPECT_EQ(plain.committed, sampled.committed);
  EXPECT_EQ(plain.aborts, sampled.aborts);
  EXPECT_EQ(plain.ops_executed, sampled.ops_executed);
  EXPECT_EQ(plain.inconsistent_ops, sampled.inconsistent_ops);
  EXPECT_EQ(plain.waits, sampled.waits);
  EXPECT_TRUE(plain.series.windows.empty());
}

TEST(SeriesSamplerTest, WindowsTileTheWholeRun) {
  const SimResult r = RunCluster(SeriesOptions(4, EpsilonLevel::kMedium));
  const RunSeries& series = r.series;
  EXPECT_EQ(series.source, "cluster_test");
  // warmup 2 s + measure 20 s at 1 s windows.
  ASSERT_EQ(series.windows.size(), 22u);
  int64_t committed = 0;
  for (size_t i = 0; i < series.windows.size(); ++i) {
    const SeriesWindow& w = series.windows[i];
    EXPECT_DOUBLE_EQ(w.start_s, static_cast<double>(i));
    EXPECT_DOUBLE_EQ(w.duration_s, 1.0);
    EXPECT_GE(w.active_mpl, 0.0);
    EXPECT_LE(w.active_mpl, 4.0);
    // The synchronous clients resubmit every abort.
    EXPECT_EQ(w.restarts, w.aborted);
    committed += w.committed;
  }
  // Window totals cover warmup too, so they can only exceed the
  // measurement-phase count.
  EXPECT_GE(committed, r.committed);
  EXPECT_GT(committed, 0);
}

#ifndef ESR_TRACE_DISABLED
TEST(SeriesSamplerTest, HeadroomProbesSeeBoundedCharges) {
  const SimResult r = RunCluster(SeriesOptions(5, EpsilonLevel::kMedium));
  const RunSeries& series = r.series;
  ASSERT_FALSE(series.node_names.empty());
  int64_t charges = 0;
  for (const SeriesWindow& w : series.windows) {
    ASSERT_EQ(w.nodes.size(), series.node_names.size());
    for (const SeriesNodeWindow& node : w.nodes) {
      charges += node.charges;
      if (node.charges > 0) {
        // Divergence control admits an op only within its bound, so the
        // observed headroom must never go negative.
        EXPECT_GE(node.min_headroom_frac, 0.0);
        EXPECT_GT(node.limit_at_min, 0.0);
        EXPECT_GE(node.max_accumulated, 0.0);
      }
    }
  }
  EXPECT_GT(charges, 0);
}
#endif  // ESR_TRACE_DISABLED

TEST(SeriesSamplerTest, SeriesIsDeterministicGivenSeed) {
  const SimResult a = RunCluster(SeriesOptions(3, EpsilonLevel::kLow, 42));
  const SimResult b = RunCluster(SeriesOptions(3, EpsilonLevel::kLow, 42));
  ASSERT_EQ(a.series.windows.size(), b.series.windows.size());
  for (size_t i = 0; i < a.series.windows.size(); ++i) {
    EXPECT_EQ(a.series.windows[i].committed, b.series.windows[i].committed);
    EXPECT_EQ(a.series.windows[i].aborted, b.series.windows[i].aborted);
    EXPECT_EQ(a.series.windows[i].mean_op_latency_ms,
              b.series.windows[i].mean_op_latency_ms);
  }
}

}  // namespace
}  // namespace esr
