#include "sim/skewed_clock.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace esr {
namespace {

TEST(SkewedClockTest, RawSkewWithinTwoMinuteRange) {
  Rng rng(1);
  SkewedClockOptions opt;  // defaults: +/-60 s raw
  for (SiteId site = 1; site <= 50; ++site) {
    SkewedClock clock(site, opt, &rng);
    const int64_t raw_offset = clock.ReadRaw(0);
    EXPECT_LE(std::llabs(raw_offset), 60'000'000);
  }
}

TEST(SkewedClockTest, CorrectionShrinksOffsetDramatically) {
  Rng rng(2);
  SkewedClockOptions opt;
  for (SiteId site = 1; site <= 50; ++site) {
    SkewedClock clock(site, opt, &rng);
    const int64_t residual = clock.residual_offset_micros();
    EXPECT_LE(std::llabs(residual),
              static_cast<int64_t>(opt.residual_skew_ms * 1000));
  }
}

TEST(SkewedClockTest, ReadAddsResidualToVirtualTime) {
  Rng rng(3);
  SkewedClock clock(1, {}, &rng);
  const int64_t r = clock.residual_offset_micros();
  EXPECT_EQ(clock.Read(1'000'000), 1'000'000 + r);
  EXPECT_EQ(clock.Read(2'000'000) - clock.Read(1'000'000), 1'000'000);
}

TEST(SkewedClockTest, SitesGetDifferentOffsets) {
  Rng rng(4);
  SkewedClock a(1, {}, &rng), b(2, {}, &rng);
  EXPECT_NE(a.residual_offset_micros(), b.residual_offset_micros());
}

TEST(SkewedClockTest, TimestampsAcrossSkewedSitesStayUnique) {
  // Clock skew can reorder timestamps between sites, but the site id
  // keeps them unique — the paper's correctness requirement.
  Rng rng(5);
  SkewedClock c1(1, {}, &rng), c2(2, {}, &rng);
  TimestampGenerator g1(1), g2(2);
  for (int64_t t = 0; t < 100'000; t += 1'000) {
    const Timestamp a = g1.Next(c1.Read(t));
    const Timestamp b = g2.Next(c2.Read(t));
    EXPECT_NE(a, b);
  }
}

}  // namespace
}  // namespace esr
