#include "sim/lane_executor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace esr {
namespace {

/// Execution log entry: (virtual time, lane, tag). Comparing whole logs
/// across worker counts is the determinism check.
struct LogEntry {
  SimTime at;
  size_t lane;
  int tag;
  bool operator==(const LogEntry& other) const {
    return at == other.at && lane == other.lane && tag == other.tag;
  }
};

TEST(LaneExecutorTest, RunsLaneLocalEventsInTimeOrder) {
  // Each lane's events run in time order; lanes are mutually independent
  // within a conservative round, so no cross-lane interleaving is
  // promised (or needed).
  LaneExecutor ex(2, /*lookahead=*/100);
  std::vector<LogEntry> log;
  ex.lane(0).ScheduleAt(50, [&] { log.push_back({50, 0, 1}); });
  ex.lane(0).ScheduleAt(10, [&] { log.push_back({10, 0, 2}); });
  ex.lane(1).ScheduleAt(30, [&] { log.push_back({30, 1, 3}); });
  ex.RunUntil(100);
  ASSERT_EQ(log.size(), 3u);
  std::vector<SimTime> lane0_times;
  for (const LogEntry& e : log) {
    if (e.lane == 0) lane0_times.push_back(e.at);
  }
  EXPECT_EQ(lane0_times, (std::vector<SimTime>{10, 50}));
  EXPECT_EQ(ex.lane(0).now(), 100);
  EXPECT_EQ(ex.lane(1).now(), 100);
}

TEST(LaneExecutorTest, CrossLaneMessageArrivesAtRequestedTime) {
  LaneExecutor ex(2, /*lookahead=*/100);
  SimTime delivered_at = -1;
  ex.lane(0).ScheduleAt(10, [&] {
    ex.Send(0, 1, ex.lane(0).now() + 150,
            [&] { delivered_at = ex.lane(1).now(); });
  });
  ex.RunUntil(500);
  EXPECT_EQ(delivered_at, 160);
}

TEST(LaneExecutorTest, SameTimeDeliveriesMergeByOriginLane) {
  // Lanes 1 and 2 both send to lane 0 for the same virtual instant; the
  // canonical merge rule must order them by origin lane no matter which
  // send was issued first in real time.
  LaneExecutor ex(3, /*lookahead=*/100);
  std::vector<int> order;
  // Lane 2's event runs before lane 1's in wall time (earlier virtual
  // time), but both deliveries land at t=300.
  ex.lane(2).ScheduleAt(10, [&] { ex.Send(2, 0, 300, [&] { order.push_back(2); }); });
  ex.lane(1).ScheduleAt(20, [&] { ex.Send(1, 0, 300, [&] { order.push_back(1); }); });
  ex.RunUntil(400);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(LaneExecutorTest, CheckpointPhaseRunsBoundaryEventsInLaneOrder) {
  // Events at exactly `until` run serially in lane order — the window
  // where cross-lane observers may read.
  LaneExecutor ex(3, /*lookahead=*/100);
  std::vector<size_t> order;
  ex.lane(2).ScheduleAt(500, [&] { order.push_back(2); });
  ex.lane(0).ScheduleAt(500, [&] { order.push_back(0); });
  ex.lane(1).ScheduleAt(500, [&] { order.push_back(1); });
  ex.RunUntil(500);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

/// Deterministic ping-pong workload: every lane keeps a running hash of
/// what it executed and bounces messages to the next lane. Lane state is
/// only touched by that lane's events, mirroring the cluster's rule.
struct PingPong {
  LaneExecutor ex;
  std::vector<uint64_t> hash;
  std::vector<LogEntry> log;  // only lane 0 appends (single-writer)

  explicit PingPong(size_t lanes, int workers)
      : ex(lanes, /*lookahead=*/1000), hash(lanes, 0) {
    ex.set_workers(workers);
  }

  void Bounce(size_t lane, int hops) {
    hash[lane] = hash[lane] * 1315423911u + static_cast<uint64_t>(
                                                ex.lane(lane).now());
    if (lane == 0) {
      log.push_back({ex.lane(lane).now(), lane, hops});
    }
    if (hops == 0) return;
    const size_t next = (lane + 1) % hash.size();
    ex.Send(lane, next, ex.lane(lane).now() + 1500,
            [this, next, hops] { Bounce(next, hops - 1); });
  }

  void Seed() {
    for (size_t i = 0; i < hash.size(); ++i) {
      ex.lane(i).ScheduleAt(static_cast<SimTime>(10 * i + 5),
                            [this, i] { Bounce(i, 40); });
    }
  }
};

TEST(LaneExecutorTest, WorkerCountDoesNotChangeExecution) {
  PingPong serial(4, 1);
  serial.Seed();
  serial.ex.RunUntil(100'000);

  PingPong parallel(4, 4);
  parallel.Seed();
  parallel.ex.RunUntil(100'000);

  EXPECT_EQ(serial.hash, parallel.hash);
  ASSERT_EQ(serial.log.size(), parallel.log.size());
  for (size_t i = 0; i < serial.log.size(); ++i) {
    EXPECT_EQ(serial.log[i], parallel.log[i]) << "log entry " << i;
  }
}

TEST(LaneExecutorTest, SplitRunsMatchOneRun) {
  // RunUntil(a); RunUntil(b) must execute exactly what RunUntil(b)
  // would — checkpoints are observation points, not perturbations.
  PingPong split(3, 1);
  split.Seed();
  split.ex.RunUntil(20'000);
  split.ex.RunUntil(40'000);
  split.ex.RunUntil(100'000);

  PingPong whole(3, 1);
  whole.Seed();
  whole.ex.RunUntil(100'000);

  EXPECT_EQ(split.hash, whole.hash);
}

TEST(LaneExecutorTest, IdleLanesStillAdvanceTheirClocks) {
  LaneExecutor ex(3, /*lookahead=*/50);
  ex.RunUntil(1234);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(ex.lane(i).now(), 1234);
}

}  // namespace
}  // namespace esr
