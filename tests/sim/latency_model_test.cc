#include "sim/latency_model.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

TEST(LatencyModelTest, OpRpcWithinConfiguredRange) {
  LatencyModel model({}, 1);
  const LatencyModelOptions& opt = model.options();
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = model.SampleOpRpc();
    EXPECT_GE(t, static_cast<SimTime>(opt.op_rpc_min_ms * 1000));
    EXPECT_LE(t, static_cast<SimTime>(opt.op_rpc_max_ms * 1000) + 1);
  }
}

TEST(LatencyModelTest, ControlRpcNearNullFigure) {
  LatencyModel model({}, 2);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = model.SampleControlRpc();
    // 11 ms +/- 10%.
    EXPECT_GE(t, 9'800);
    EXPECT_LE(t, 12'200);
  }
}

TEST(LatencyModelTest, TotalOpLatencyMatchesPaperWindow) {
  // RPC + server CPU should land in the prototype's measured 17-20 ms
  // band for an uncontended op.
  LatencyModelOptions opt;
  LatencyModel model(opt, 3);
  for (int i = 0; i < 100; ++i) {
    const double total_ms =
        static_cast<double>(model.SampleOpRpc()) / 1000.0 +
        opt.server_cpu_per_op_ms;
    EXPECT_GE(total_ms, 17.0);
    EXPECT_LE(total_ms, 20.5);
  }
}

TEST(LatencyModelTest, ServerCpuIsFifoResource) {
  LatencyModelOptions opt;
  opt.server_cpu_per_op_ms = 2.0;
  LatencyModel model(opt, 4);
  // First op at t=0 finishes at 2000us.
  EXPECT_EQ(model.ReserveServerCpu(0), 2'000);
  // Second op arriving at t=500 queues behind the first.
  EXPECT_EQ(model.ReserveServerCpu(500), 4'000);
  // An op arriving after the backlog drains starts immediately.
  EXPECT_EQ(model.ReserveServerCpu(10'000), 12'000);
}

TEST(LatencyModelTest, FixedDelaysComeFromOptions) {
  LatencyModelOptions opt;
  opt.wait_retry_ms = 7.0;
  opt.restart_delay_ms = 3.0;
  LatencyModel model(opt, 5);
  EXPECT_EQ(model.WaitRetryDelay(), 7'000);
  EXPECT_EQ(model.RestartDelay(), 3'000);
}

TEST(LatencyModelTest, DeterministicGivenSeed) {
  LatencyModel a({}, 42), b({}, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.SampleOpRpc(), b.SampleOpRpc());
  }
}

}  // namespace
}  // namespace esr
