#include "sim/replica_cluster.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

ReplicaClusterOptions FastOptions(uint64_t seed = 7) {
  ReplicaClusterOptions opt;
  opt.update_clients = 3;
  opt.replica_query_clients = 2;
  opt.replication.num_replicas = 2;
  opt.replication.propagation_delay_ms = 100.0;
  opt.query_til = 10'000;
  opt.warmup_s = 2.0;
  opt.measure_s = 15.0;
  opt.seed = seed;
  return opt;
}

TEST(ReplicaClusterTest, BothSidesMakeProgress) {
  ReplicaCluster cluster(FastOptions());
  const ReplicaSimResult r = cluster.Run();
  EXPECT_GT(r.primary_commits, 50);
  EXPECT_GT(r.queries_admitted, 50);
  EXPECT_GT(r.admitted_fraction(), 0.5);
}

TEST(ReplicaClusterTest, DeterministicGivenSeed) {
  const ReplicaSimResult a = ReplicaCluster(FastOptions(11)).Run();
  const ReplicaSimResult b = ReplicaCluster(FastOptions(11)).Run();
  EXPECT_EQ(a.primary_commits, b.primary_commits);
  EXPECT_EQ(a.queries_attempted, b.queries_attempted);
  EXPECT_EQ(a.queries_admitted, b.queries_admitted);
}

TEST(ReplicaClusterTest, AdmittedQueriesRespectBudgetAndTruth) {
  ReplicaCluster cluster(FastOptions());
  const ReplicaSimResult r = cluster.Run();
  ASSERT_GT(r.queries_admitted, 0);
  // Estimates are conservative: estimate >= truth, and within the TIL.
  EXPECT_GE(r.avg_estimated_import + 1e-9, r.avg_true_import);
  EXPECT_LE(r.avg_estimated_import, 10'000.0);
}

TEST(ReplicaClusterTest, TighterBudgetsAdmitFewerQueries) {
  ReplicaClusterOptions tight = FastOptions();
  tight.query_til = 500;
  ReplicaClusterOptions loose = FastOptions();
  loose.query_til = kUnbounded;
  const ReplicaSimResult tight_result = ReplicaCluster(tight).Run();
  const ReplicaSimResult loose_result = ReplicaCluster(loose).Run();
  EXPECT_LT(tight_result.admitted_fraction(),
            loose_result.admitted_fraction());
  EXPECT_EQ(loose_result.admitted_fraction(), 1.0);
}

TEST(ReplicaClusterTest, LongerLagLowersAdmission) {
  ReplicaClusterOptions fast = FastOptions();
  fast.replication.propagation_delay_ms = 10.0;
  ReplicaClusterOptions slow = FastOptions();
  slow.replication.propagation_delay_ms = 2'000.0;
  const ReplicaSimResult fast_result = ReplicaCluster(fast).Run();
  const ReplicaSimResult slow_result = ReplicaCluster(slow).Run();
  EXPECT_GT(fast_result.admitted_fraction(),
            slow_result.admitted_fraction());
}

TEST(ReplicaClusterTest, ReplicaQueriesDoNotDepressPrimaryThroughput) {
  // The scaling argument: replica queries consume no primary CPU, so
  // doubling the dashboard load leaves update throughput essentially
  // unchanged.
  ReplicaClusterOptions light = FastOptions();
  light.replica_query_clients = 1;
  ReplicaClusterOptions heavy = FastOptions();
  heavy.replica_query_clients = 8;
  const ReplicaSimResult light_result = ReplicaCluster(light).Run();
  const ReplicaSimResult heavy_result = ReplicaCluster(heavy).Run();
  EXPECT_GT(heavy_result.queries_admitted, light_result.queries_admitted);
  EXPECT_NEAR(static_cast<double>(heavy_result.primary_commits),
              static_cast<double>(light_result.primary_commits),
              0.15 * static_cast<double>(light_result.primary_commits));
}

}  // namespace
}  // namespace esr
