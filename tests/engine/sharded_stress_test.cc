// Multi-threaded stress + invariant harness for the sharded ESR engine
// (DESIGN.md §"Sharded engine"). Each configuration drives a mixed
// query/update workload at MPL 16-256 over 1/4/8/16 shards through the
// worker-pool session multiplexer, with the global trace recording every
// probe event, then proves from the captured artifacts that concurrency
// never broke the paper's guarantees:
//
//   * every hierarchical bound check replays clean (BoundWalkReplayer:
//     zero admitted charges past a declared limit, Sec. 5.3.1);
//   * the streaming certifier certifies the identical event stream
//     through its windowed watermark (StreamCertifier);
//   * per shard, committed writes respect timestamp order per object
//     (the TO invariant) and land on the owning shard;
//   * the per-shard stats snapshots satisfy their monotone chain;
//   * every session reached its commit target and nothing leaked
//     (num_active == 0, shared budgets fully refunded).
//
// Determinism: session scripts derive from (spec, seed), so a failing
// configuration replays with the same transaction mix; only the thread
// interleaving varies run to run, which is exactly what the invariants
// quantify over. The TSan CI job re-runs the Seed* configurations under
// the race detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/sharded/session.h"
#include "engine/sharded/sharded_engine.h"
#include "hierarchy/bound_replay.h"
#include "obs/stream_audit.h"
#include "obs/trace.h"
#include "txn/server.h"

namespace esr {
namespace {

// Population sized so every shard count divides it evenly-ish (CountFor
// handles remainders; 240 = 16 * 15 keeps slices balanced) while the
// default hot set of 20 keeps the conflict ratio high.
constexpr size_t kObjects = 240;
constexpr size_t kGroups = 6;

struct StressConfig {
  const char* name;
  size_t shards;
  size_t sessions;  // MPL
  size_t workers;
  int txns_per_session;
  uint64_t seed;
  /// Install an engine-wide shared epsilon budget on top of the
  /// per-transaction declarations.
  bool shared_bounds = false;
  /// Shrink scripts so the MPL-256 run stays inside the trace ring.
  bool small_txns = false;
  /// Object population and write hot-set width. The MPL-256 run widens
  /// both: 256 zero-think-time sessions against a 20-object hot set
  /// generate enough abort/retry probe events to wrap the global trace
  /// ring, and a lossy capture cannot be certified (asserted below).
  size_t objects = kObjects;
  size_t hot_set = 20;
};

std::string ConfigName(const ::testing::TestParamInfo<StressConfig>& info) {
  return info.param.name;
}

class ShardedStressTest : public ::testing::TestWithParam<StressConfig> {};

TEST_P(ShardedStressTest, BoundsHoldUnderConcurrency) {
  const StressConfig& cfg = GetParam();

  ServerOptions opt;
  opt.engine = EngineKind::kSharded;
  opt.sharded.num_shards = cfg.shards;
  opt.sharded.record_commit_log = true;
  opt.store.num_objects = cfg.objects;
  opt.store.seed = 400 + cfg.seed;
  Server server(opt);
  ShardedEngine* engine = server.sharded_engine();
  ASSERT_NE(engine, nullptr);
  ASSERT_EQ(engine->num_shards(), cfg.shards);

  // Hierarchy: kGroups sibling groups under the root, objects assigned
  // round-robin so every shard holds members of every group (charges from
  // all shards fold into the same nodes).
  std::vector<GroupId> groups;
  for (size_t g = 0; g < kGroups; ++g) {
    groups.push_back(
        *server.schema().AddGroup("g" + std::to_string(g), kRootGroup));
  }
  for (ObjectId id = 0; id < cfg.objects; ++id) {
    ASSERT_TRUE(server.schema().AssignObject(id, groups[id % kGroups]).ok());
  }

  WorkloadSpec spec;
  spec.num_objects = cfg.objects;
  spec.hot_set_size = cfg.hot_set;
  if (cfg.small_txns) {
    spec.query_ops_min = 6;
    spec.query_ops_max = 10;
    spec.update_ops_min = 3;
    spec.update_ops_max = 5;
  }
  // Hierarchical declarations on every transaction: a root limit plus a
  // tighter per-group limit, so the bottom-up walk exercises real
  // rejections at both levels under contention.
  constexpr Inconsistency kTil = 50'000;
  constexpr Inconsistency kTel = 12'000;
  spec.bound_factory = [&groups](TxnType type) {
    BoundSpec bounds;
    const Inconsistency root =
        type == TxnType::kQuery ? kTil : kTel;
    bounds.SetTransactionLimit(root);
    for (const GroupId g : groups) bounds.SetLimit(g, root / 2);
    return bounds;
  };

  if (cfg.shared_bounds) {
    BoundSpec shared_import;
    shared_import.SetTransactionLimit(kTil * 4);
    for (const GroupId g : groups) shared_import.SetLimit(g, kTil * 2);
    BoundSpec shared_export;
    shared_export.SetTransactionLimit(kTel * 4);
    engine->SetSharedBounds(shared_import, shared_export);
    ASSERT_TRUE(engine->shared_import()->enforced());
    ASSERT_TRUE(engine->shared_export()->enforced());
  }

  GlobalTrace().Reset();
  GlobalTrace().set_enabled(true);

  SessionPoolOptions pool;
  pool.sessions = cfg.sessions;
  pool.txns_per_session = cfg.txns_per_session;
  pool.workers = cfg.workers;
  pool.seed = cfg.seed;
  const SessionPoolResult result = RunSessionWorkers(&server, spec, pool);

  GlobalTrace().set_enabled(false);
  const std::vector<TraceEvent> events = GlobalTrace().Snapshot();
  const uint64_t dropped = GlobalTrace().dropped();

  // -- Completion: every session reached its target, nothing leaked. ------
  EXPECT_EQ(result.total.committed,
            static_cast<int64_t>(cfg.sessions) * cfg.txns_per_session);
  ASSERT_EQ(result.per_session.size(), cfg.sessions);
  for (size_t s = 0; s < result.per_session.size(); ++s) {
    EXPECT_EQ(result.per_session[s].committed, cfg.txns_per_session)
        << "session " << s;
  }
  EXPECT_EQ(engine->num_active(), 0u);
  EXPECT_GT(result.elapsed_s, 0.0);

  // -- Trace is complete: a lossy capture cannot certify the full run. ----
  ASSERT_EQ(dropped, 0u) << "trace ring wrapped; shrink the configuration";
  ASSERT_FALSE(events.empty());

  // -- Offline recertification: no admitted charge ever crossed a bound. --
  BoundWalkReplayer replayer;
  for (const TraceEvent& event : events) replayer.OnEvent(event);
  EXPECT_GT(replayer.walks_replayed(), 0u);
  EXPECT_TRUE(replayer.violations().empty())
      << replayer.violations().size() << " bound violations; first: group "
      << replayer.violations()[0].group << " accumulated "
      << replayer.violations()[0].accumulated << " > limit "
      << replayer.violations()[0].limit;

  // -- Streaming certification over the same stream reaches a clean
  //    watermark past the last event. ------------------------------------
  int64_t min_ts = events.front().ts_micros;
  int64_t max_ts = events.front().ts_micros;
  for (const TraceEvent& event : events) {
    min_ts = std::min(min_ts, event.ts_micros);
    max_ts = std::max(max_ts, event.ts_micros);
  }
  StreamCertifierOptions cert_opt;
  cert_opt.window_s = 0.05;
  cert_opt.epoch_micros = min_ts;
  cert_opt.source = cfg.name;
  StreamCertifier certifier(cert_opt);
  for (const TraceEvent& event : events) certifier.Observe(event);
  certifier.AdvanceTo(max_ts + 100'000);
  const StreamCertification cert = certifier.Snapshot();
  EXPECT_TRUE(cert.certified()) << cert.violations.size() << " violations";
  EXPECT_EQ(cert.walks_replayed, replayer.walks_replayed());
  EXPECT_EQ(cert.charges_applied, replayer.charges_applied());
  EXPECT_GT(cert.certified_through_s, 0.0);
  EXPECT_GE(cert.certified_through_s,
            static_cast<double>(max_ts - min_ts) / 1e6);

  // -- Per-shard TO invariant: committed writes strictly increase in
  //    timestamp per object and live on the owning shard. ----------------
  std::map<ObjectId, Timestamp> last_commit;
  int64_t logged = 0;
  for (size_t s = 0; s < cfg.shards; ++s) {
    for (const CommitLogEntry& entry : engine->commit_log(s)) {
      ++logged;
      EXPECT_EQ(engine->shard_map().ShardOf(entry.object), s)
          << "object " << entry.object << " committed on foreign shard";
      auto [it, first] = last_commit.emplace(entry.object, entry.ts);
      if (!first) {
        EXPECT_LT(it->second, entry.ts)
            << "out-of-timestamp-order commit on object " << entry.object;
        it->second = entry.ts;
      }
    }
  }
  EXPECT_GT(logged, 0);

  // -- Per-shard stats snapshots satisfy the monotone chain, and the
  //    commit log agrees with the counters. ------------------------------
  int64_t committed_writes = 0;
  for (size_t s = 0; s < cfg.shards; ++s) {
    const ShardStats stats = engine->SnapshotShardStats(s);
    EXPECT_GE(stats.applied_writes, stats.committed_writes) << "shard " << s;
    EXPECT_GE(stats.committed_writes, stats.committed_writers)
        << "shard " << s;
    EXPECT_GE(stats.committed_writers, stats.commit_batches) << "shard " << s;
    EXPECT_GE(stats.ops, 0) << "shard " << s;
    committed_writes += stats.committed_writes;
  }
  EXPECT_EQ(committed_writes, logged);
  EXPECT_GT(engine->commit_batches(), 0);

  // -- Shared budgets fully refunded at quiescence (charge/uncharge are
  //    exact inverses per transaction). ----------------------------------
  if (cfg.shared_bounds) {
    EXPECT_NEAR(engine->shared_import()->total(), 0.0, 1e-6);
    EXPECT_NEAR(engine->shared_export()->total(), 0.0, 1e-6);
    for (const GroupId g : groups) {
      EXPECT_NEAR(engine->shared_import()->accumulated(g), 0.0, 1e-6);
    }
    // Contention at this MPL guarantees relaxed reads, so the import
    // budget must have been exercised.
    EXPECT_GT(engine->shared_import()->FoldedCharges(), 0);
  }

  // -- Gauge export runs against the quiescent engine without assert or
  //    torn state (the concurrent-scrape case lives in
  //    shard_gauges_test.cc). --------------------------------------------
  engine->ExportShardGauges(&server.metrics());
  const Gauge* batches =
      server.metrics().FindGauge("engine.commit_batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_EQ(static_cast<int64_t>(batches->value()),
            engine->commit_batches());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedStressTest,
    ::testing::Values(
        // Single shard: the degenerate case, everything serializes on one
        // latch but group commit still batches.
        StressConfig{"OneShardMpl16", 1, 16, 4, 30, 11},
        // The mid configuration, re-run under three seeds (the TSan CI
        // job replays these). Slightly wider hot set than the default:
        // when the host is oversubscribed (parallel ctest, TSan's
        // slowdown) the run stretches and the extra abort-retry probes
        // on a 20-object hot set can wrap the trace ring.
        StressConfig{"FourShardMpl32SeedA", 4, 32, 8, 25, 11,
                     /*shared_bounds=*/false, /*small_txns=*/false,
                     /*objects=*/480, /*hot_set=*/60},
        StressConfig{"FourShardMpl32SeedB", 4, 32, 8, 25, 12,
                     /*shared_bounds=*/false, /*small_txns=*/false,
                     /*objects=*/480, /*hot_set=*/60},
        StressConfig{"FourShardMpl32SeedC", 4, 32, 8, 25, 13,
                     /*shared_bounds=*/false, /*small_txns=*/false,
                     /*objects=*/480, /*hot_set=*/60},
        // Wide sharding with one worker per shard. Wider hot set: under
        // TSan's ~10x slowdown the thread interleavings stretch out and
        // the default 20-object hot set generates enough abort-retry
        // probes to wrap the trace ring.
        StressConfig{"SixteenShardMpl64", 16, 64, 16, 12, 14,
                     /*shared_bounds=*/false, /*small_txns=*/false,
                     /*objects=*/480, /*hot_set=*/80},
        // Engine-wide shared epsilon budget on top of per-txn bounds.
        StressConfig{"SharedBudgetMpl32", 4, 32, 8, 20, 15,
                     /*shared_bounds=*/true},
        // MPL 256: a thundering herd of sessions over 16 workers; small
        // scripts plus a wider population/hot set keep the abort-retry
        // event volume inside the trace ring.
        StressConfig{"HighMpl256", 8, 256, 16, 3, 16,
                     /*shared_bounds=*/false, /*small_txns=*/true,
                     /*objects=*/960, /*hot_set=*/120}),
    ConfigName);

}  // namespace
}  // namespace esr
