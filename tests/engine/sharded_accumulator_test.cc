// ShardedAccumulator semantics and the concurrent charge/uncharge race
// audit. The load-bearing property (satellite of the sharded-engine PR):
// a hierarchy node's published total NEVER exceeds its declared limit,
// not even transiently, because admission CASes `total + d <= limit`
// before publishing. The audit test runs charger threads against
// spin-reader threads that assert the bound on every acquire load.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/sharded/sharded_accumulator.h"
#include "hierarchy/group_schema.h"

namespace esr {
namespace {

// Two sibling groups under the root; objects 0..3 in g0, 4..7 in g1.
struct TwoGroupSchema {
  TwoGroupSchema() {
    g0 = *schema.AddGroup("g0", kRootGroup);
    g1 = *schema.AddGroup("g1", kRootGroup);
    for (ObjectId id = 0; id < 8; ++id) {
      EXPECT_TRUE(schema.AssignObject(id, id < 4 ? g0 : g1).ok());
    }
  }
  GroupSchema schema;
  GroupId g0 = kInvalidGroup;
  GroupId g1 = kInvalidGroup;
};

TEST(ShardedAccumulatorTest, ChargesAccumulateAlongThePath) {
  TwoGroupSchema fx;
  BoundSpec bounds;
  bounds.SetTransactionLimit(1000);
  bounds.SetLimit(fx.g0, 400);
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kImport,
                         /*num_shards=*/4);
  ASSERT_TRUE(acc.enforced());

  EXPECT_TRUE(acc.TryCharge(/*object=*/0, 150, /*shard=*/0).admitted);
  EXPECT_TRUE(acc.TryCharge(/*object=*/5, 100, /*shard=*/1).admitted);
  EXPECT_EQ(acc.accumulated(fx.g0), 150.0);
  EXPECT_EQ(acc.accumulated(fx.g1), 100.0);
  EXPECT_EQ(acc.total(), 250.0);
  EXPECT_EQ(acc.ShardCharges(0), 1);
  EXPECT_EQ(acc.ShardCharges(1), 1);
  EXPECT_EQ(acc.FoldedCharges(), 2);
}

TEST(ShardedAccumulatorTest, GroupRejectLeavesNothingCharged) {
  TwoGroupSchema fx;
  BoundSpec bounds;
  bounds.SetTransactionLimit(1000);
  bounds.SetLimit(fx.g0, 400);
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kImport, 1);

  ASSERT_TRUE(acc.TryCharge(0, 350, 0).admitted);
  const ChargeResult reject = acc.TryCharge(1, 100, 0);  // 450 > 400
  EXPECT_FALSE(reject.admitted);
  EXPECT_EQ(reject.violated_group, fx.g0);
  // All-or-nothing: the losing walk left no residue anywhere.
  EXPECT_EQ(acc.accumulated(fx.g0), 350.0);
  EXPECT_EQ(acc.total(), 350.0);
}

TEST(ShardedAccumulatorTest, RootRejectRollsBackTheLeafCharge) {
  TwoGroupSchema fx;
  BoundSpec bounds;
  bounds.SetTransactionLimit(500);  // tighter than either group
  bounds.SetLimit(fx.g0, 1000);
  bounds.SetLimit(fx.g1, 1000);
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kImport, 1);

  ASSERT_TRUE(acc.TryCharge(0, 300, 0).admitted);
  const ChargeResult reject = acc.TryCharge(5, 300, 0);  // root 600 > 500
  EXPECT_FALSE(reject.admitted);
  EXPECT_EQ(reject.violated_group, kRootGroup);
  // g1's already-published leaf charge was rolled back.
  EXPECT_EQ(acc.accumulated(fx.g1), 0.0);
  EXPECT_EQ(acc.total(), 300.0);
}

TEST(ShardedAccumulatorTest, UnchargeReversesExactly) {
  TwoGroupSchema fx;
  BoundSpec bounds;
  bounds.SetTransactionLimit(1000);
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kExport, 2);

  ASSERT_TRUE(acc.TryCharge(0, 600, 0).admitted);
  EXPECT_FALSE(acc.TryCharge(4, 600, 1).admitted);
  acc.UnchargePath(0, 600);
  EXPECT_EQ(acc.total(), 0.0);
  EXPECT_EQ(acc.accumulated(fx.g0), 0.0);
  // The freed budget admits the previously rejected charge.
  EXPECT_TRUE(acc.TryCharge(4, 600, 1).admitted);
}

TEST(ShardedAccumulatorTest, WeightsScaleChargesPerNode) {
  TwoGroupSchema fx;
  ASSERT_TRUE(fx.schema.SetWeight(fx.g0, 2.0).ok());
  BoundSpec bounds;
  bounds.SetTransactionLimit(1000);
  bounds.SetLimit(fx.g0, 1000);
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kImport, 1);

  ASSERT_TRUE(acc.TryCharge(0, 100, 0).admitted);
  EXPECT_EQ(acc.accumulated(fx.g0), 200.0);  // d * weight(g0)
  EXPECT_EQ(acc.total(), 100.0);             // root weight 1.0
}

TEST(ShardedAccumulatorTest, UnboundedSpecDisablesEnforcement) {
  TwoGroupSchema fx;
  ShardedAccumulator acc(&fx.schema, BoundSpec::Unlimited(),
                         ChargeDirection::kImport, 4);
  EXPECT_FALSE(acc.enforced());
  EXPECT_TRUE(acc.TryCharge(0, 1e12, 0).admitted);
  // No-op admit: nothing was published and nothing is counted.
  EXPECT_EQ(acc.total(), 0.0);
  EXPECT_EQ(acc.FoldedCharges(), 0);
}

TEST(ShardedAccumulatorTest, NonPositiveChargeAlwaysAdmits) {
  TwoGroupSchema fx;
  BoundSpec bounds;
  bounds.SetTransactionLimit(10);
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kImport, 1);
  ASSERT_TRUE(acc.TryCharge(0, 10, 0).admitted);  // budget now full
  EXPECT_TRUE(acc.TryCharge(0, 0, 0).admitted);
  EXPECT_TRUE(acc.TryCharge(0, -5, 0).admitted);
  EXPECT_EQ(acc.total(), 10.0);
}

// The race audit: charger threads hammer TryCharge/UnchargePath with
// integer-valued amounts (exact in binary floating point, so the final
// refund cancels to exactly zero) while spin-reader threads assert, on
// every acquire load, that no node total exceeds its limit. A bug that
// published before validating — or tore the rollback — shows up here as
// an observed overshoot, and under TSan as a data race.
TEST(ShardedAccumulatorRaceTest, ConcurrentChargesNeverExceedTheLimit) {
  TwoGroupSchema fx;
  constexpr double kRootLimit = 1000.0;
  constexpr double kGroupLimit = 600.0;
  BoundSpec bounds;
  bounds.SetTransactionLimit(kRootLimit);
  bounds.SetLimit(fx.g0, kGroupLimit);
  bounds.SetLimit(fx.g1, kGroupLimit);
  constexpr size_t kChargers = 8;
  ShardedAccumulator acc(&fx.schema, bounds, ChargeDirection::kImport,
                         kChargers);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> overshoots{0};
  std::atomic<int64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Acquire loads: a charge observed here was fully validated
        // before it was published.
        if (acc.total() > kRootLimit ||
            acc.accumulated(fx.g0) > kGroupLimit ||
            acc.accumulated(fx.g1) > kGroupLimit) {
          overshoots.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> chargers;
  std::atomic<int64_t> admitted_total{0};
  for (size_t c = 0; c < kChargers; ++c) {
    chargers.emplace_back([&, c] {
      Rng rng(1000 + c);
      // Outstanding (object, amount) charges owned by this thread.
      std::vector<std::pair<ObjectId, double>> held;
      int64_t admitted = 0;
      for (int iter = 0; iter < 30'000; ++iter) {
        const bool release = !held.empty() &&
                             (held.size() >= 16 || rng.UniformInt(0, 2) == 0);
        if (release) {
          const auto [object, amount] = held.back();
          held.pop_back();
          acc.UnchargePath(object, amount);
        } else {
          const ObjectId object =
              static_cast<ObjectId>(rng.UniformInt(0, 7));
          const double amount =
              static_cast<double>(rng.UniformInt(1, 40));
          if (acc.TryCharge(object, amount, c).admitted) {
            held.push_back({object, amount});
            ++admitted;
          }
        }
      }
      for (const auto& [object, amount] : held) {
        acc.UnchargePath(object, amount);
      }
      admitted_total.fetch_add(admitted, std::memory_order_relaxed);
    });
  }

  for (auto& t : chargers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(overshoots.load(), 0);
  EXPECT_GT(reads.load(), 0);
  // With limits this tight versus 8 threads holding up to 16 charges of
  // mean 20 each, both admissions and rejections must have occurred.
  EXPECT_GT(admitted_total.load(), 0);
  EXPECT_EQ(acc.FoldedCharges(), admitted_total.load());
  // Integer charges uncharge exactly: the budget is fully refunded.
  EXPECT_EQ(acc.total(), 0.0);
  EXPECT_EQ(acc.accumulated(fx.g0), 0.0);
  EXPECT_EQ(acc.accumulated(fx.g1), 0.0);
}

}  // namespace
}  // namespace esr
