// The sharded engine's hot paths must feed the wall-clock profiler:
// shard latches are ContentionSites, the group-commit batched apply is
// a kApply scope nested under the leader's kCommit, abort teardown
// books as kCommit, and the session pool's retry backoff charges
// kLockWait against the shared session.wait_backoff site. A profiled
// sharded run therefore produces a non-empty phase attribution — the
// PR 6 contention profiler works on the multi-threaded engine, not
// just the thread-per-client server.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "engine/sharded/session.h"
#include "engine/sharded/sharded_engine.h"
#include "obs/profile.h"
#include "txn/server.h"
#include "workload/spec.h"

namespace esr {
namespace {

#ifndef ESR_TRACE_DISABLED

TEST(ShardedProfileTest, SessionRunPopulatesPhasesAndSites) {
  GlobalProfiler().Reset();
  GlobalProfiler().set_enabled(true);

  ServerOptions opt;
  opt.engine = EngineKind::kSharded;
  opt.sharded.num_shards = 4;
  opt.store.num_objects = 64;
  opt.store.seed = 5;
  Server server(opt);
  ASSERT_NE(server.sharded_engine(), nullptr);

  WorkloadSpec spec;
  spec.num_objects = 64;
  SessionPoolOptions pool;
  pool.sessions = 8;
  pool.txns_per_session = 200;
  pool.workers = 4;
  pool.seed = 11;
  const SessionPoolResult result = RunSessionWorkers(&server, spec, pool);
  EXPECT_GT(result.total.committed, 0);

  GlobalProfiler().set_enabled(false);
  const ProfileSnapshot snap = GlobalProfiler().Snapshot();

  // Commit and batched-apply scopes ran; every commit passes through
  // ProcessCommitBatch exactly once as part of some leader's drain.
  const PhaseSnapshot& commit =
      snap.phases[static_cast<size_t>(ProfilePhase::kCommit)];
  const PhaseSnapshot& apply =
      snap.phases[static_cast<size_t>(ProfilePhase::kApply)];
  EXPECT_GT(commit.count, 0u);
  EXPECT_GT(apply.count, 0u);

  // Shard latches registered as contention sites and were acquired.
  uint64_t latch_acquisitions = 0;
  bool backoff_site_seen = false;
  for (const ContentionSite::Snapshot& site : snap.sites) {
    if (site.name.rfind("engine.shard", 0) == 0 &&
        site.name.find(".latch") != std::string::npos) {
      latch_acquisitions += site.acquisitions;
    }
    if (site.name == "session.wait_backoff") backoff_site_seen = true;
  }
  EXPECT_GT(latch_acquisitions, 0u)
      << "shard latches must profile as contention sites";
  EXPECT_TRUE(backoff_site_seen)
      << "the worker pool must register its shared backoff site";

  GlobalProfiler().Reset();
}

#endif  // ESR_TRACE_DISABLED

}  // namespace
}  // namespace esr
