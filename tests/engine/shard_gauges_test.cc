// Regression test for torn gauge reads: the MetricsHttpServer /metrics
// endpoint must render the per-shard `engine.shard<i>.*` gauges
// consistently while the sharded engine is mid group commit. The fix
// under test: ExportShardGauges snapshots each shard's six counters under
// that shard's latch in one hold (never field by field), so every scrape
// observes a state satisfying the monotone chain
//
//   applied_writes >= committed_writes >= committed_writers
//                  >= commit_batches
//
// even when writes are landing between the scraper's field reads.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded/session.h"
#include "engine/sharded/sharded_engine.h"
#include "obs/prometheus.h"
#include "txn/server.h"

namespace esr {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kObjects = 64;

// Blocking one-shot HTTP GET against 127.0.0.1:port; empty on failure
// (same minimal client as the prometheus endpoint tests).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// Value of `esr_<sanitized name> <value>` in a scrape body; -1 if absent.
double GaugeIn(const std::string& body, const std::string& name) {
  const std::string needle = "\n" + PrometheusMetricName(name) + " ";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(body.substr(pos + needle.size()));
}

// Value of the labeled per-shard family sample
// `esr_shard_<stat>{shard="<s>"} <value>`; -1 if absent. The text
// exposition promotes the dotted engine.shard<i>.<stat> gauges to
// these labeled spellings (JSON/CSV keep the dotted names).
double ShardGaugeIn(const std::string& body, const std::string& stat,
                    size_t shard) {
  const std::string needle = "\nesr_shard_" + stat + "{shard=\"" +
                             std::to_string(shard) + "\"} ";
  const size_t pos = body.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(body.substr(pos + needle.size()));
}

TEST(ShardGaugesTest, ConcurrentScrapesSeeConsistentShardCounters) {
  ServerOptions opt;
  opt.engine = EngineKind::kSharded;
  opt.sharded.num_shards = kShards;
  opt.store.num_objects = kObjects;
  opt.store.seed = 21;
  Server server(opt);
  ShardedEngine* engine = server.sharded_engine();
  ASSERT_NE(engine, nullptr);
  // Root-only shared budget so the engine.shared_eps.* gauges render too.
  BoundSpec shared_import;
  shared_import.SetTransactionLimit(1e9);
  BoundSpec shared_export;
  shared_export.SetTransactionLimit(1e9);
  engine->SetSharedBounds(shared_import, shared_export);

  // The endpoint renders exactly like the threaded server's sampler: fold
  // fresh shard snapshots into the registry, then serialize it. Renders
  // are serialized inside MetricsHttpServer, so concurrent scrapes never
  // interleave an export with a text write.
  MetricsHttpServer http([&server, engine] {
    engine->ExportShardGauges(&server.metrics());
    std::ostringstream out;
    WritePrometheusText(server.metrics(), out);
    return out.str();
  });
  ASSERT_TRUE(http.Start(/*port=*/0).ok());
  ASSERT_NE(http.port(), 0);

  // Background load keeping group commit hot while the scrapers run.
  std::atomic<bool> load_done{false};
  std::thread load([&server, &load_done] {
    WorkloadSpec spec;
    spec.num_objects = kObjects;
    SessionPoolOptions pool;
    pool.sessions = 16;
    pool.txns_per_session = 400;
    pool.workers = 4;
    pool.seed = 7;
    RunSessionWorkers(&server, spec, pool);
    load_done.store(true, std::memory_order_release);
  });

  std::atomic<int> scrapes{0};
  std::atomic<int> torn{0};
  // Each scraper performs a fixed number of scrapes (most overlap the
  // load; any tail scrapes are quiescent and must still satisfy the
  // chain), so the test always exercises >= 24 concurrent renders.
  auto scraper = [&] {
    for (int round = 0; round < 8; ++round) {
      const std::string body = HttpGet(http.port(), "/metrics");
      if (body.empty()) continue;
      scrapes.fetch_add(1, std::memory_order_relaxed);
      for (size_t s = 0; s < kShards; ++s) {
        const double applied = ShardGaugeIn(body, "applied_writes", s);
        const double committed = ShardGaugeIn(body, "committed_writes", s);
        const double writers = ShardGaugeIn(body, "committed_writers", s);
        const double batches = ShardGaugeIn(body, "commit_batches", s);
        if (applied < 0 || committed < 0 || writers < 0 || batches < 0) {
          torn.fetch_add(1, std::memory_order_relaxed);  // gauge missing
          continue;
        }
        if (applied < committed || committed < writers ||
            writers < batches) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 3; ++i) scrapers.emplace_back(scraper);
  for (auto& t : scrapers) t.join();
  load.join();

  EXPECT_EQ(torn.load(), 0)
      << "a scrape observed a shard snapshot violating the monotone chain";
  EXPECT_GE(scrapes.load(), 24);

  // Quiescent final scrape: everything renders and adds up.
  const std::string body = HttpGet(http.port(), "/metrics");
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(GaugeIn(body, "engine.shards"), static_cast<double>(kShards));
  EXPECT_EQ(GaugeIn(body, "engine.commit_batches"),
            static_cast<double>(engine->commit_batches()));
  double committed_writes = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const double shard_committed = ShardGaugeIn(body, "committed_writes", s);
    ASSERT_GE(shard_committed, 0.0) << "shard " << s;
    committed_writes += shard_committed;
    EXPECT_GE(ShardGaugeIn(body, "ops", s), 0.0);
    EXPECT_GE(ShardGaugeIn(body, "waits", s), 0.0);
  }
  EXPECT_GT(committed_writes, 0.0);
  // Shared budgets fully refunded at quiescence, and their gauges render.
  EXPECT_EQ(GaugeIn(body, "engine.shared_eps.import.node0"), 0.0);
  EXPECT_EQ(GaugeIn(body, "engine.shared_eps.export.node0"), 0.0);
  EXPECT_GE(GaugeIn(body, "engine.shared_eps.import.charges"), 0.0);

  http.Stop();
}

}  // namespace
}  // namespace esr
