#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace esr {
namespace {

using testing::EngineFixture;
using testing::Ts;

TEST(TransactionManagerTest, BeginAssignsFreshIds) {
  EngineFixture f;
  const TxnId a = f.manager.Begin(TxnType::kQuery, Ts(1), BoundSpec());
  const TxnId b = f.manager.Begin(TxnType::kUpdate, Ts(2), BoundSpec());
  EXPECT_NE(a, b);
  EXPECT_TRUE(f.manager.IsActive(a));
  EXPECT_TRUE(f.manager.IsActive(b));
  EXPECT_EQ(f.manager.num_active(), 2u);
}

TEST(TransactionManagerTest, SimpleReadReturnsValue) {
  EngineFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(10), BoundSpec());
  const OpResult r = f.manager.Read(q, 2);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 3000);
  EXPECT_EQ(r.inconsistency, 0.0);
  EXPECT_FALSE(r.relaxed);
  EXPECT_TRUE(f.manager.Commit(q).ok());
  EXPECT_FALSE(f.manager.IsActive(q));
}

TEST(TransactionManagerTest, WriteCommitPersists) {
  EngineFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1234).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  EXPECT_EQ(f.store.Get(0).value(), 1234);
  EXPECT_FALSE(f.store.Get(0).has_uncommitted_write());
}

TEST(TransactionManagerTest, ExplicitAbortRestoresValues) {
  EngineFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1234).kind, OpResult::Kind::kOk);
  EXPECT_EQ(f.store.Get(0).value(), 1234);  // in-place with shadow
  ASSERT_TRUE(f.manager.Abort(u).ok());
  EXPECT_EQ(f.store.Get(0).value(), 1000);
  EXPECT_FALSE(f.manager.IsActive(u));
  EXPECT_EQ(f.metrics.CounterValue("txn.abort"), 1);
}

TEST(TransactionManagerTest, CommitUnknownTxnFails) {
  EngineFixture f;
  EXPECT_EQ(f.manager.Commit(999).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(f.manager.Abort(999).code(), StatusCode::kFailedPrecondition);
}

TEST(TransactionManagerTest, UpdateReadsOwnWrite) {
  EngineFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1500).kind, OpResult::Kind::kOk);
  const OpResult r = f.manager.Read(u, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1500);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TransactionManagerTest, SrLateReadAbortsAndTearsDown) {
  EngineFixture f;
  f.CommitWrite(/*ts=*/50, /*object=*/0, /*v=*/2000);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(0));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kLateRead);
  EXPECT_FALSE(f.manager.IsActive(q));  // server-side teardown happened
  EXPECT_EQ(f.metrics.CounterValue("abort.late_read"), 1);
}

TEST(TransactionManagerTest, EsrLateReadSucceedsWithinBounds) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);  // proper for ts<50 is 1000, present 2000
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(1500));
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 2000);  // the present value, not the proper one
  EXPECT_EQ(r.inconsistency, 1000.0);
  EXPECT_TRUE(r.relaxed);
  EXPECT_EQ(f.metrics.CounterValue("op.inconsistent_ok"), 1);
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(TransactionManagerTest, EsrLateReadAbortsBeyondTil) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(999));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kTransactionBound);
  EXPECT_EQ(f.metrics.CounterValue("abort.transaction_bound"), 1);
}

TEST(TransactionManagerTest, TilAccumulatesAcrossReads) {
  EngineFixture f;
  f.CommitWrite(50, 0, 1600);  // d = 600 for queries older than 50
  f.CommitWrite(51, 1, 2600);  // d = 600
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(1000));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  // Second read would push the total to 1200 > 1000.
  const OpResult r = f.manager.Read(q, 1);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kTransactionBound);
}

TEST(TransactionManagerTest, QueryReadsUncommittedUnderEsr) {
  EngineFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1800).kind, OpResult::Kind::kOk);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(5000));
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1800);  // uncommitted (present) value
  EXPECT_EQ(r.inconsistency, 800.0);
  EXPECT_TRUE(r.relaxed);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TransactionManagerTest, SrQueryWaitsForUncommitted) {
  EngineFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1800).kind, OpResult::Kind::kOk);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(0));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kWait);
  EXPECT_EQ(r.blocker, u);
  EXPECT_EQ(f.metrics.CounterValue("op.wait"), 1);
  // After the writer (older ts) commits, the retried SR read is on time
  // and sees the committed value — the wait preserved serializability.
  ASSERT_TRUE(f.manager.Commit(u).ok());
  const OpResult retry = f.manager.Read(q, 0);
  ASSERT_EQ(retry.kind, OpResult::Kind::kOk);
  EXPECT_EQ(retry.value, 1800);
  EXPECT_EQ(retry.inconsistency, 0.0);
}

TEST(TransactionManagerTest, UpdateWaitsThenReadsCommittedValue) {
  EngineFixture f;
  const TxnId u1 = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u1, 0, 1800).kind, OpResult::Kind::kOk);
  const TxnId u2 = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  EXPECT_EQ(f.manager.Read(u2, 0).kind, OpResult::Kind::kWait);
  ASSERT_TRUE(f.manager.Commit(u1).ok());
  const OpResult r = f.manager.Read(u2, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1800);
  ASSERT_TRUE(f.manager.Commit(u2).ok());
}

TEST(TransactionManagerTest, LateUpdateWriteVsUpdateReadAborts) {
  EngineFixture f;
  const TxnId u1 = f.manager.Begin(TxnType::kUpdate, Ts(50), BoundSpec());
  ASSERT_EQ(f.manager.Read(u1, 0).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(u1).ok());
  const TxnId u2 = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  const OpResult r = f.manager.Write(u2, 0, 1);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kLateWrite);
}

TEST(TransactionManagerTest, HistoryExhaustionAbortsQuery) {
  EngineFixture f(/*num_objects=*/10, /*history_depth=*/2);
  // Three committed writes evict the seed value (and the first write)
  // from a depth-2 history.
  f.CommitWrite(30, 0, 1100);
  f.CommitWrite(40, 0, 1200);
  f.CommitWrite(50, 0, 1300);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kHistoryExhausted);
  EXPECT_EQ(f.metrics.CounterValue("abort.history_exhausted"), 1);
}

TEST(TransactionManagerTest, AbortedUpdateLeavesNoTraceInHistory) {
  EngineFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(30), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1700).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Abort(u).ok());
  // A later ESR query sees no inconsistency from the aborted write.
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(40),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1000);
  EXPECT_EQ(r.inconsistency, 0.0);
}

TEST(TransactionManagerTest, CommitCleansReaderRegistrations) {
  EngineFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  EXPECT_EQ(f.store.Get(0).query_readers().size(), 1u);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  EXPECT_EQ(f.store.Get(0).query_readers().size(), 0u);
}

TEST(TransactionManagerTest, MetricsCountCommitsByType) {
  EngineFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(1), BoundSpec());
  ASSERT_TRUE(f.manager.Commit(q).ok());
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(2), BoundSpec());
  ASSERT_TRUE(f.manager.Commit(u).ok());
  EXPECT_EQ(f.metrics.CounterValue("txn.commit.query"), 1);
  EXPECT_EQ(f.metrics.CounterValue("txn.commit.update"), 1);
  EXPECT_EQ(f.metrics.CounterValue("txn.begin.query"), 1);
  EXPECT_EQ(f.metrics.CounterValue("txn.begin.update"), 1);
}

TEST(TransactionManagerDeathTest, QueryWriteIsProgrammerError) {
  EngineFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(1), BoundSpec());
  EXPECT_DEATH(f.manager.Write(q, 0, 1), "read-only");
}

}  // namespace
}  // namespace esr
