#include <gtest/gtest.h>

#include "testing/test_util.h"
#include "txn/data_manager.h"
#include "txn/transaction_manager.h"

namespace esr {
namespace {

using testing::EngineFixture;
using testing::Ts;

// ------------------------------------------------ export control (5.2) --

TEST(ExportControlTest, LateWriteExportsMaxOverReaders) {
  EngineFixture f;
  // Two ESR queries read object 0 (value 1000) and register proper values.
  const TxnId q1 = f.manager.Begin(TxnType::kQuery, Ts(100),
                                   BoundSpec::TransactionOnly(kUnbounded));
  const TxnId q2 = f.manager.Begin(TxnType::kQuery, Ts(110),
                                   BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q1, 0).kind, OpResult::Kind::kOk);
  ASSERT_EQ(f.manager.Read(q2, 0).kind, OpResult::Kind::kOk);

  // An update with an OLDER timestamp writes object 0: Fig. 3 case 3.
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(700));
  const OpResult w = f.manager.Write(u, 0, 1600);
  ASSERT_EQ(w.kind, OpResult::Kind::kOk);
  EXPECT_TRUE(w.relaxed);
  // d = max(|1600 - 1000|, |1600 - 1000|) = 600 <= TEL 700.
  EXPECT_EQ(w.inconsistency, 600.0);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(ExportControlTest, TelViolationAbortsLateWrite) {
  EngineFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(100),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(500));
  const OpResult w = f.manager.Write(u, 0, 1600);  // d = 600 > TEL 500
  EXPECT_EQ(w.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(w.abort_reason, AbortReason::kTransactionBound);
  EXPECT_FALSE(f.manager.IsActive(u));
  // Value untouched by the rejected write.
  EXPECT_EQ(f.store.Get(0).value(), 1000);
}

TEST(ExportControlTest, TelAccumulatesAcrossWrites) {
  EngineFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(100),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);  // proper 1000
  ASSERT_EQ(f.manager.Read(q, 1).kind, OpResult::Kind::kOk);  // proper 2000
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(1000));
  ASSERT_EQ(f.manager.Write(u, 0, 1600).kind, OpResult::Kind::kOk);  // 600
  // Second late write would export 600 more: 1200 > TEL 1000.
  const OpResult w2 = f.manager.Write(u, 1, 2600);
  EXPECT_EQ(w2.kind, OpResult::Kind::kAbort);
  // The first (admitted) write was rolled back by the abort.
  EXPECT_EQ(f.store.Get(0).value(), 1000);
}

TEST(ExportControlTest, WriteWithNoReadersExportsNothing) {
  EngineFixture f;
  // A query read makes the object's query_read_ts newer, then COMMITS —
  // its registration disappears, but query_read_ts remains.
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(100),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(1));
  const OpResult w = f.manager.Write(u, 0, 1600);
  ASSERT_EQ(w.kind, OpResult::Kind::kOk);
  EXPECT_EQ(w.inconsistency, 0.0);  // nobody left to export to
  EXPECT_TRUE(w.relaxed);           // still a case-3 write
}

TEST(ExportControlTest, SumRuleChargesAllReaders) {
  DivergenceOptions div;
  div.export_combine = ExportCombine::kSum;
  EngineFixture f(10, 20, div);
  const TxnId q1 = f.manager.Begin(TxnType::kQuery, Ts(100),
                                   BoundSpec::TransactionOnly(kUnbounded));
  const TxnId q2 = f.manager.Begin(TxnType::kQuery, Ts(110),
                                   BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q1, 0).kind, OpResult::Kind::kOk);
  ASSERT_EQ(f.manager.Read(q2, 0).kind, OpResult::Kind::kOk);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult w = f.manager.Write(u, 0, 1600);
  ASSERT_EQ(w.kind, OpResult::Kind::kOk);
  // Wu et al. [21]: d = 600 + 600 — the overestimate the paper avoids.
  EXPECT_EQ(w.inconsistency, 1200.0);
}

TEST(ExportControlTest, NewerReaderScopeIgnoresOlderReaders) {
  DivergenceOptions div;
  div.export_scope = ExportScope::kNewerReaders;
  EngineFixture f(10, 20, div);
  // Reader OLDER than the writer: serially it precedes the write and read
  // the old value, so under the narrowed scope nothing is exported.
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(30),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(kUnbounded));
  // ts 50 > query_read_ts 30: consistent write, no export either way.
  const OpResult w = f.manager.Write(u, 0, 1600);
  ASSERT_EQ(w.kind, OpResult::Kind::kOk);
  EXPECT_EQ(w.inconsistency, 0.0);
  EXPECT_FALSE(w.relaxed);
}

// --------------------------------------------- object-level limits (3.2.2)

TEST(ObjectLimitTest, OilRejectsTooInconsistentRead) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);  // d = 1000 for older queries
  f.store.Get(0).set_oil(999.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kObjectBound);
  EXPECT_EQ(f.metrics.CounterValue("abort.object_bound"), 1);
}

TEST(ObjectLimitTest, OilAdmitsAtExactLimit) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);
  f.store.Get(0).set_oil(1000.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(kUnbounded));
  EXPECT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
}

TEST(ObjectLimitTest, OelRejectsTooInconsistentWrite) {
  EngineFixture f;
  f.store.Get(0).set_oel(500.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(100),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(50),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult w = f.manager.Write(u, 0, 1600);  // d = 600 > OEL 500
  EXPECT_EQ(w.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(w.abort_reason, AbortReason::kObjectBound);
}

TEST(ObjectLimitTest, ObjectCheckFiresBeforeTransactionCheck) {
  // Bottom-up control: the object level is checked first, so the abort
  // reason names the object bound even when both would reject.
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);
  f.store.Get(0).set_oil(10.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(10.0));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kObjectBound);
}

// ------------------------------------------------ group-level bounds (5.3.1)

TEST(GroupBoundTest, GroupLimitRejectsBetweenObjectAndTransaction) {
  EngineFixture f;
  const GroupId company = *f.schema.AddGroup("company", kRootGroup);
  ASSERT_TRUE(f.schema.AssignObject(0, company).ok());
  ASSERT_TRUE(f.schema.AssignObject(1, company).ok());
  f.CommitWrite(50, 0, 1400);  // d = 400
  f.CommitWrite(51, 1, 2400);  // d = 400

  BoundSpec bounds;
  bounds.SetTransactionLimit(kUnbounded);
  bounds.SetLimit(company, 700.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20), bounds);
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  const OpResult r = f.manager.Read(q, 1);  // 400 + 400 > 700 at company
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kGroupBound);
  EXPECT_EQ(f.metrics.CounterValue("abort.group_bound"), 1);
}

TEST(GroupBoundTest, IndependentGroupsDoNotInterfere) {
  EngineFixture f;
  const GroupId a = *f.schema.AddGroup("a", kRootGroup);
  const GroupId b = *f.schema.AddGroup("b", kRootGroup);
  ASSERT_TRUE(f.schema.AssignObject(0, a).ok());
  ASSERT_TRUE(f.schema.AssignObject(1, b).ok());
  f.CommitWrite(50, 0, 1400);
  f.CommitWrite(51, 1, 2400);

  BoundSpec bounds;
  bounds.SetTransactionLimit(kUnbounded);
  bounds.SetLimit(a, 500.0);
  bounds.SetLimit(b, 500.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20), bounds);
  EXPECT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  EXPECT_EQ(f.manager.Read(q, 1).kind, OpResult::Kind::kOk);
  const Transaction* txn = f.manager.Find(q);
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->accumulator().accumulated(a), 400.0);
  EXPECT_EQ(txn->accumulator().accumulated(b), 400.0);
  EXPECT_EQ(txn->accumulator().total(), 800.0);
}

TEST(GroupBoundTest, DeepHierarchyChecksEveryLevel) {
  // Four-level banking hierarchy from Fig. 1, checked bottom-up.
  EngineFixture f;
  const GroupId company = *f.schema.AddGroup("company", kRootGroup);
  const GroupId com1 = *f.schema.AddGroup("com1", company);
  const GroupId div1 = *f.schema.AddGroup("div1", com1);
  ASSERT_TRUE(f.schema.AssignObject(0, div1).ok());
  f.CommitWrite(50, 0, 1300);  // d = 300

  // The tightest violated level should be reported (div1 passes, com1
  // fails).
  BoundSpec bounds;
  bounds.SetTransactionLimit(kUnbounded);
  bounds.SetLimit(div1, 350.0);
  bounds.SetLimit(com1, 250.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20), bounds);
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kGroupBound);
}

// ------------------------------------------ import measurement details --

TEST(ImportMeasureTest, ProperValueTracksQueryTimestamp) {
  EngineFixture f;
  f.CommitWrite(10, 0, 1100);
  f.CommitWrite(20, 0, 1200);
  f.CommitWrite(30, 0, 1300);
  DataManager& dm = f.manager.data_manager();
  const ObjectRecord& obj = f.store.Get(0);
  // Query between writes: proper is the newest write older than it.
  EXPECT_EQ(dm.ImportInconsistency(obj, Ts(25))->proper, 1200);
  EXPECT_EQ(dm.ImportInconsistency(obj, Ts(25))->d, 100.0);
  EXPECT_EQ(dm.ImportInconsistency(obj, Ts(15))->proper, 1100);
  EXPECT_EQ(dm.ImportInconsistency(obj, Ts(15))->d, 200.0);
  EXPECT_EQ(dm.ImportInconsistency(obj, Ts(35))->d, 0.0);
}

TEST(ImportMeasureTest, DistanceIsAbsoluteValue) {
  EngineFixture f;
  f.CommitWrite(50, 0, 400);  // value decreased: 1000 -> 400
  DataManager& dm = f.manager.data_manager();
  EXPECT_EQ(dm.ImportInconsistency(f.store.Get(0), Ts(20))->d, 600.0);
}

TEST(ImportMeasureTest, RegisteredProperValueUsedForLaterExport) {
  EngineFixture f;
  f.CommitWrite(10, 0, 1100);
  // ESR query with ts 5 reads late: proper is the seed 1000, present 1100.
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(5),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1100);
  EXPECT_EQ(r.inconsistency, 100.0);
  ASSERT_EQ(f.store.Get(0).query_readers().size(), 1u);
  // The registration carries the PROPER value (1000), not the present.
  EXPECT_EQ(f.store.Get(0).query_readers()[0].proper_value, 1000);
}

}  // namespace
}  // namespace esr
