// Tests for the Sec. 1 generalization: update ETs that view inconsistent
// data "the same way query ETs do", with a separate import budget —
// excluded from the paper's evaluation but part of the ESR framework —
// and for the Sec. 3.2.1 repeated-read worst-case accounting.

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace esr {
namespace {

using testing::EngineFixture;
using testing::Ts;

TEST(UpdateImportTest, DefaultUpdatesStayConsistent) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20),
                                  BoundSpec::TransactionOnly(kUnbounded));
  // Plain update ET (no import budget): a late read still aborts.
  const OpResult r = f.manager.Read(u, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kLateRead);
}

TEST(UpdateImportTest, ImportBudgetAdmitsLateRead) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);  // d = 1000 for older readers
  const TxnId u = f.manager.BeginUpdateWithImport(
      Ts(20), BoundSpec::TransactionOnly(kUnbounded),
      BoundSpec::TransactionOnly(1500));
  const OpResult r = f.manager.Read(u, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 2000);
  EXPECT_EQ(r.inconsistency, 1000.0);
  EXPECT_TRUE(r.relaxed);
  const Transaction* state = f.manager.Find(u);
  ASSERT_NE(state, nullptr);
  ASSERT_NE(state->import_accumulator(), nullptr);
  EXPECT_EQ(state->import_accumulator()->total(), 1000.0);
  // The export accumulator is untouched by reads.
  EXPECT_EQ(state->accumulator().total(), 0.0);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(UpdateImportTest, ImportBudgetIsEnforced) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);
  const TxnId u = f.manager.BeginUpdateWithImport(
      Ts(20), BoundSpec::TransactionOnly(kUnbounded),
      BoundSpec::TransactionOnly(999));
  const OpResult r = f.manager.Read(u, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kTransactionBound);
}

TEST(UpdateImportTest, ImportEnabledUpdateReadsUncommitted) {
  EngineFixture f;
  const TxnId writer = f.manager.Begin(TxnType::kUpdate, Ts(10),
                                       BoundSpec());
  ASSERT_EQ(f.manager.Write(writer, 0, 1400).kind, OpResult::Kind::kOk);
  const TxnId u = f.manager.BeginUpdateWithImport(
      Ts(20), BoundSpec::TransactionOnly(kUnbounded),
      BoundSpec::TransactionOnly(500));
  const OpResult r = f.manager.Read(u, 0);  // d = 400 <= 500
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1400);
  EXPECT_EQ(r.inconsistency, 400.0);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  ASSERT_TRUE(f.manager.Commit(writer).ok());
}

TEST(UpdateImportTest, ZeroImportBudgetBehavesLikePlainUpdate) {
  EngineFixture f;
  f.CommitWrite(50, 0, 2000);
  const TxnId u = f.manager.BeginUpdateWithImport(
      Ts(20), BoundSpec::TransactionOnly(kUnbounded),
      BoundSpec::TransactionOnly(0));
  EXPECT_EQ(f.manager.Read(u, 0).kind, OpResult::Kind::kAbort);
}

TEST(UpdateImportTest, ImportAndExportBudgetsAreSeparate) {
  EngineFixture f;
  f.CommitWrite(50, 0, 1600);  // import d = 600 for older readers
  // A query holds a registered read of object 1 so a late write exports.
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(100),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 1).kind, OpResult::Kind::kOk);  // proper 2000

  const TxnId u = f.manager.BeginUpdateWithImport(
      Ts(20), BoundSpec::TransactionOnly(700),
      BoundSpec::TransactionOnly(700));
  ASSERT_EQ(f.manager.Read(u, 0).kind, OpResult::Kind::kOk);  // import 600
  // Late write to object 1 exports |2500 - 2000| = 500 <= TEL 700; the
  // 600 already imported does NOT count against the export budget.
  const OpResult w = f.manager.Write(u, 1, 2500);
  ASSERT_EQ(w.kind, OpResult::Kind::kOk);
  EXPECT_EQ(w.inconsistency, 500.0);
  const Transaction* state = f.manager.Find(u);
  EXPECT_EQ(state->import_accumulator()->total(), 600.0);
  EXPECT_EQ(state->accumulator().total(), 500.0);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

// ------------------------------------------- repeated reads (Sec. 3.2.1) --

TEST(RepeatedReadTest, SecondReadOfSameObjectChargesOnlyExcess) {
  EngineFixture f;
  f.CommitWrite(50, 0, 1600);  // d = 600 for a query at ts 20
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(1000));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  const Transaction* state = f.manager.Find(q);
  EXPECT_EQ(state->accumulator().total(), 600.0);
  // Re-reading the unchanged object charges nothing (naive accounting
  // would charge another 600 and blow the TIL).
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  EXPECT_EQ(state->accumulator().total(), 600.0);
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(RepeatedReadTest, GrowingInconsistencyChargesTheIncrease) {
  EngineFixture f;
  f.CommitWrite(50, 0, 1600);  // d = 600
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(1000));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);  // charge 600
  f.CommitWrite(60, 0, 1900);  // d grows to 900
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);  // +300
  const Transaction* state = f.manager.Find(q);
  EXPECT_EQ(state->accumulator().total(), 900.0);
  // The observed range is tracked for aggregate queries.
  const Transaction::ValueRange* range = state->RangeFor(0);
  ASSERT_NE(range, nullptr);
  EXPECT_EQ(range->min, 1600);
  EXPECT_EQ(range->max, 1900);
  EXPECT_EQ(range->reads, 2);
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(RepeatedReadTest, ShrinkingInconsistencyChargesNothing) {
  EngineFixture f;
  f.CommitWrite(50, 0, 1600);  // d = 600
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(700));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  f.CommitWrite(60, 0, 1200);  // present moves BACK toward proper: d = 200
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.inconsistency, 200.0);  // measured d
  const Transaction* state = f.manager.Find(q);
  EXPECT_EQ(state->accumulator().total(), 600.0);  // worst case retained
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(RepeatedReadTest, TilStillBindsOnTheWorstCase) {
  EngineFixture f;
  f.CommitWrite(50, 0, 1600);  // d = 600
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20),
                                  BoundSpec::TransactionOnly(800));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  f.CommitWrite(60, 0, 2500);  // d grows to 1500; increment 900 > 200 left
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kTransactionBound);
}

}  // namespace
}  // namespace esr
