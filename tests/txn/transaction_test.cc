#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "storage/object.h"

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

TEST(TransactionTest, BasicAccessors) {
  GroupSchema schema;
  Transaction txn(7, TxnType::kQuery, Ts(100), &schema,
                  BoundSpec::TransactionOnly(500));
  EXPECT_EQ(txn.id(), 7u);
  EXPECT_EQ(txn.type(), TxnType::kQuery);
  EXPECT_TRUE(txn.is_query());
  EXPECT_EQ(txn.ts(), Ts(100));
  EXPECT_EQ(txn.state(), TxnState::kActive);
  EXPECT_TRUE(txn.esr_enabled());
}

TEST(TransactionTest, ZeroBoundsDisableEsr) {
  GroupSchema schema;
  Transaction txn(1, TxnType::kQuery, Ts(1), &schema,
                  BoundSpec::TransactionOnly(0));
  EXPECT_FALSE(txn.esr_enabled());
  EXPECT_FALSE(txn.View().esr_enabled);
}

TEST(TransactionTest, ViewMirrorsIdentity) {
  GroupSchema schema;
  Transaction txn(9, TxnType::kUpdate, Ts(55), &schema,
                  BoundSpec::TransactionOnly(10));
  const TxnView view = txn.View();
  EXPECT_EQ(view.id, 9u);
  EXPECT_EQ(view.type, TxnType::kUpdate);
  EXPECT_EQ(view.ts, Ts(55));
  EXPECT_TRUE(view.esr_enabled);
}

TEST(TransactionTest, ReadAndWriteSetsDeduplicate) {
  GroupSchema schema;
  Transaction txn(1, TxnType::kUpdate, Ts(1), &schema, BoundSpec());
  // Dedup of registered reads lives at the object: RegisterQueryReader
  // reports repeat registrations, and the transaction appends only on a
  // fresh one (the engines' call pattern).
  ObjectRecord obj(3, 0, WriteHistory::kDefaultDepth);
  if (obj.RegisterQueryReader(txn.id(), txn.ts(), 0)) {
    txn.NoteRegisteredRead(3);
  }
  if (obj.RegisterQueryReader(txn.id(), txn.ts(), 0)) {
    txn.NoteRegisteredRead(3);
  }
  ObjectRecord other(4, 0, WriteHistory::kDefaultDepth);
  if (other.RegisterQueryReader(txn.id(), txn.ts(), 0)) {
    txn.NoteRegisteredRead(4);
  }
  EXPECT_EQ(txn.registered_reads().size(), 2u);
  EXPECT_EQ(obj.query_readers().size(), 1u);
  txn.NotePendingWrite(5);
  txn.NotePendingWrite(5);
  EXPECT_EQ(txn.pending_writes().size(), 1u);
  EXPECT_TRUE(txn.HasPendingWrite(5));
  EXPECT_FALSE(txn.HasPendingWrite(3));
}

TEST(TransactionTest, ObserveValueTracksMinMaxLast) {
  GroupSchema schema;
  Transaction txn(1, TxnType::kQuery, Ts(1), &schema, BoundSpec());
  txn.ObserveValue(2, 50);
  txn.ObserveValue(2, 10);
  txn.ObserveValue(2, 30);
  const Transaction::ValueRange* range = txn.RangeFor(2);
  ASSERT_NE(range, nullptr);
  EXPECT_EQ(range->min, 10);
  EXPECT_EQ(range->max, 50);
  EXPECT_EQ(range->last, 30);
  EXPECT_EQ(range->reads, 3);
  EXPECT_EQ(txn.RangeFor(99), nullptr);
}

TEST(TransactionTest, OpCountersAccumulate) {
  GroupSchema schema;
  Transaction txn(1, TxnType::kQuery, Ts(1), &schema, BoundSpec());
  txn.CountOp();
  txn.CountOp();
  txn.CountInconsistentOp();
  EXPECT_EQ(txn.ops_executed(), 2);
  EXPECT_EQ(txn.inconsistent_ops(), 1);
}

TEST(TransactionTest, AccumulatorUsesDeclaredBounds) {
  GroupSchema schema;
  Transaction txn(1, TxnType::kQuery, Ts(1), &schema,
                  BoundSpec::TransactionOnly(100));
  EXPECT_TRUE(txn.accumulator().TryCharge(0, 60).admitted);
  EXPECT_FALSE(txn.accumulator().TryCharge(0, 60).admitted);
  EXPECT_EQ(txn.accumulator().total(), 60);
}

}  // namespace
}  // namespace esr
