#include "hierarchy/group_schema.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

TEST(GroupSchemaTest, StartsWithRootOnly) {
  GroupSchema schema;
  EXPECT_EQ(schema.num_groups(), 1u);
  EXPECT_EQ(schema.depth(), 1u);
  EXPECT_EQ(schema.name(kRootGroup), "overall");
  EXPECT_EQ(schema.parent(kRootGroup), kRootGroup);
}

TEST(GroupSchemaTest, AddGroupUnderRoot) {
  GroupSchema schema;
  auto company = schema.AddGroup("company", kRootGroup);
  ASSERT_TRUE(company.ok());
  EXPECT_EQ(schema.parent(*company), kRootGroup);
  EXPECT_EQ(schema.name(*company), "company");
  EXPECT_EQ(schema.num_groups(), 2u);
  EXPECT_EQ(schema.depth(), 2u);
}

TEST(GroupSchemaTest, RejectsUnknownParent) {
  GroupSchema schema;
  EXPECT_EQ(schema.AddGroup("x", 42).status().code(), StatusCode::kNotFound);
}

TEST(GroupSchemaTest, RejectsDuplicateNames) {
  GroupSchema schema;
  ASSERT_TRUE(schema.AddGroup("company", kRootGroup).ok());
  EXPECT_EQ(schema.AddGroup("company", kRootGroup).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupSchemaTest, FindGroupByName) {
  GroupSchema schema;
  const GroupId company = *schema.AddGroup("company", kRootGroup);
  EXPECT_EQ(*schema.FindGroup("company"), company);
  EXPECT_EQ(*schema.FindGroup("overall"), kRootGroup);
  EXPECT_EQ(schema.FindGroup("nope").status().code(), StatusCode::kNotFound);
}

TEST(GroupSchemaTest, UnassignedObjectsHangOffRoot) {
  GroupSchema schema;
  EXPECT_EQ(schema.GroupOf(123), kRootGroup);
  const auto path = schema.PathToRoot(123);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], kRootGroup);
}

TEST(GroupSchemaTest, BankingHierarchyPaths) {
  // The paper's Fig. 1: overall -> {company, preferred, personal},
  // company -> {com1, com2}, com1 -> {div1, div2}.
  GroupSchema schema;
  const GroupId company = *schema.AddGroup("company", kRootGroup);
  const GroupId preferred = *schema.AddGroup("preferred", kRootGroup);
  const GroupId com1 = *schema.AddGroup("com1", company);
  const GroupId div1 = *schema.AddGroup("div1", com1);
  ASSERT_TRUE(schema.AssignObject(7, div1).ok());
  ASSERT_TRUE(schema.AssignObject(8, preferred).ok());

  EXPECT_EQ(schema.depth(), 4u);
  const auto path7 = schema.PathToRoot(7);
  ASSERT_EQ(path7.size(), 4u);
  EXPECT_EQ(path7[0], div1);
  EXPECT_EQ(path7[1], com1);
  EXPECT_EQ(path7[2], company);
  EXPECT_EQ(path7[3], kRootGroup);

  const auto path8 = schema.PathToRoot(8);
  ASSERT_EQ(path8.size(), 2u);
  EXPECT_EQ(path8[0], preferred);
  EXPECT_EQ(path8[1], kRootGroup);
}

TEST(GroupSchemaTest, AssignObjectValidatesGroup) {
  GroupSchema schema;
  EXPECT_EQ(schema.AssignObject(1, 99).code(), StatusCode::kNotFound);
}

TEST(GroupSchemaTest, ReassignmentMovesObject) {
  GroupSchema schema;
  const GroupId a = *schema.AddGroup("a", kRootGroup);
  const GroupId b = *schema.AddGroup("b", kRootGroup);
  ASSERT_TRUE(schema.AssignObject(1, a).ok());
  ASSERT_TRUE(schema.AssignObject(1, b).ok());
  EXPECT_EQ(schema.GroupOf(1), b);
}

TEST(GroupSchemaTest, WeightsDefaultToOneAndValidate) {
  GroupSchema schema;
  const GroupId g = *schema.AddGroup("g", kRootGroup);
  EXPECT_EQ(schema.weight(g), 1.0);
  EXPECT_TRUE(schema.SetWeight(g, 2.5).ok());
  EXPECT_EQ(schema.weight(g), 2.5);
  EXPECT_EQ(schema.SetWeight(g, -1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.SetWeight(77, 1.0).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace esr
