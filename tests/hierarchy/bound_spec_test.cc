#include "hierarchy/bound_spec.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

TEST(BoundSpecTest, DefaultIsUnlimited) {
  BoundSpec spec;
  EXPECT_EQ(spec.LimitFor(kRootGroup), kUnbounded);
  EXPECT_EQ(spec.LimitFor(42), kUnbounded);
  EXPECT_FALSE(spec.IsSerializable());
}

TEST(BoundSpecTest, TransactionOnlySetsRoot) {
  const BoundSpec spec = BoundSpec::TransactionOnly(10'000);
  EXPECT_EQ(spec.transaction_limit(), 10'000);
  EXPECT_EQ(spec.LimitFor(3), kUnbounded);
  EXPECT_EQ(spec.num_limits(), 1u);
}

TEST(BoundSpecTest, ZeroRootMeansSerializable) {
  EXPECT_TRUE(BoundSpec::TransactionOnly(0).IsSerializable());
  EXPECT_FALSE(BoundSpec::TransactionOnly(1).IsSerializable());
}

TEST(BoundSpecTest, GroupLimitsAreIndependent) {
  BoundSpec spec;
  spec.SetTransactionLimit(10'000).SetLimit(1, 4'000).SetLimit(2, 3'000);
  EXPECT_EQ(spec.transaction_limit(), 10'000);
  EXPECT_EQ(spec.LimitFor(1), 4'000);
  EXPECT_EQ(spec.LimitFor(2), 3'000);
  EXPECT_EQ(spec.LimitFor(3), kUnbounded);
}

TEST(BoundSpecTest, SetLimitOverwrites) {
  BoundSpec spec;
  spec.SetLimit(5, 100).SetLimit(5, 200);
  EXPECT_EQ(spec.LimitFor(5), 200);
  EXPECT_EQ(spec.num_limits(), 1u);
}

TEST(BoundSpecTest, PaperExampleDeclaration) {
  // BEGIN Query TIL 10000, LIMIT company 4000, LIMIT preferred 3000,
  // LIMIT personal 3000, LIMIT com1 200 (Sec. 3.1).
  BoundSpec spec;
  spec.SetTransactionLimit(10'000)
      .SetLimit(/*company=*/1, 4'000)
      .SetLimit(/*preferred=*/2, 3'000)
      .SetLimit(/*personal=*/3, 3'000)
      .SetLimit(/*com1=*/4, 200);
  EXPECT_EQ(spec.num_limits(), 5u);
  EXPECT_EQ(spec.LimitFor(4), 200);
}

}  // namespace
}  // namespace esr
