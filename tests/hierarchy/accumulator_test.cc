#include "hierarchy/accumulator.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

// overall -> {company, preferred}, company -> {com1, com2}; objects
// 1 -> com1, 2 -> com2, 3 -> preferred, 4 -> root (independent object).
struct BankFixture {
  GroupSchema schema;
  GroupId company, preferred, com1, com2;

  BankFixture() {
    company = *schema.AddGroup("company", kRootGroup);
    preferred = *schema.AddGroup("preferred", kRootGroup);
    com1 = *schema.AddGroup("com1", company);
    com2 = *schema.AddGroup("com2", company);
    EXPECT_TRUE(schema.AssignObject(1, com1).ok());
    EXPECT_TRUE(schema.AssignObject(2, com2).ok());
    EXPECT_TRUE(schema.AssignObject(3, preferred).ok());
  }
};

TEST(AccumulatorTest, ZeroChargeAlwaysAdmitted) {
  BankFixture f;
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(0));
  const ChargeResult r = acc.TryCharge(1, 0.0);
  EXPECT_TRUE(r.admitted);
  EXPECT_EQ(acc.total(), 0.0);
}

TEST(AccumulatorTest, ChargePropagatesToEveryAncestor) {
  BankFixture f;
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(1000));
  ASSERT_TRUE(acc.TryCharge(1, 100.0).admitted);
  EXPECT_EQ(acc.accumulated(f.com1), 100.0);
  EXPECT_EQ(acc.accumulated(f.company), 100.0);
  EXPECT_EQ(acc.accumulated(kRootGroup), 100.0);
  EXPECT_EQ(acc.accumulated(f.com2), 0.0);
  EXPECT_EQ(acc.accumulated(f.preferred), 0.0);
}

TEST(AccumulatorTest, SiblingsShareParentBudget) {
  BankFixture f;
  BoundSpec b;
  b.SetTransactionLimit(kUnbounded);
  b.SetLimit(f.company, 150.0);
  InconsistencyAccumulator acc(&f.schema, b);
  EXPECT_TRUE(acc.TryCharge(1, 100.0).admitted);  // com1 -> company 100
  // com2 contributes to the same company budget: 100 + 100 > 150.
  const ChargeResult r = acc.TryCharge(2, 100.0);
  EXPECT_FALSE(r.admitted);
  EXPECT_EQ(r.violated_group, f.company);
  // State unchanged after rejection.
  EXPECT_EQ(acc.accumulated(f.company), 100.0);
  EXPECT_EQ(acc.accumulated(f.com2), 0.0);
}

TEST(AccumulatorTest, RootLimitCaughtLast) {
  BankFixture f;
  BoundSpec b;
  b.SetTransactionLimit(250.0);
  InconsistencyAccumulator acc(&f.schema, b);
  EXPECT_TRUE(acc.TryCharge(1, 100.0).admitted);
  EXPECT_TRUE(acc.TryCharge(3, 100.0).admitted);
  const ChargeResult r = acc.TryCharge(2, 100.0);
  EXPECT_FALSE(r.admitted);
  EXPECT_EQ(r.violated_group, kRootGroup);
  EXPECT_EQ(acc.total(), 200.0);
}

TEST(AccumulatorTest, LeafLevelViolationDetectedFirst) {
  BankFixture f;
  BoundSpec b;
  b.SetTransactionLimit(10.0);
  b.SetLimit(f.com1, 5.0);
  InconsistencyAccumulator acc(&f.schema, b);
  const ChargeResult r = acc.TryCharge(1, 7.0);
  EXPECT_FALSE(r.admitted);
  EXPECT_EQ(r.violated_group, f.com1);  // leaf check fires before root
}

TEST(AccumulatorTest, ExactLimitIsAdmitted) {
  BankFixture f;
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(100.0));
  EXPECT_TRUE(acc.TryCharge(4, 100.0).admitted);  // <= is allowed
  EXPECT_FALSE(acc.TryCharge(4, 0.0001).admitted);
}

TEST(AccumulatorTest, CheckDoesNotMutate) {
  BankFixture f;
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(100.0));
  EXPECT_TRUE(acc.Check(1, 60.0).admitted);
  EXPECT_EQ(acc.total(), 0.0);
  EXPECT_TRUE(acc.TryCharge(1, 60.0).admitted);
  EXPECT_FALSE(acc.Check(1, 60.0).admitted);
  EXPECT_EQ(acc.total(), 60.0);
}

TEST(AccumulatorTest, HeadroomTracksRemainingBudget) {
  BankFixture f;
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(100.0));
  EXPECT_EQ(acc.Headroom(), 100.0);
  ASSERT_TRUE(acc.TryCharge(4, 30.0).admitted);
  EXPECT_EQ(acc.Headroom(), 70.0);
  InconsistencyAccumulator unbounded(&f.schema, BoundSpec());
  EXPECT_EQ(unbounded.Headroom(), kUnbounded);
}

TEST(AccumulatorTest, WeightsScaleCharges) {
  BankFixture f;
  ASSERT_TRUE(f.schema.SetWeight(f.company, 2.0).ok());
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(1000));
  ASSERT_TRUE(acc.TryCharge(1, 100.0).admitted);
  EXPECT_EQ(acc.accumulated(f.com1), 100.0);
  EXPECT_EQ(acc.accumulated(f.company), 200.0);  // 100 * weight 2
  EXPECT_EQ(acc.accumulated(kRootGroup), 100.0);
}

TEST(AccumulatorTest, ZeroBoundRejectsAnyPositiveCharge) {
  BankFixture f;
  InconsistencyAccumulator acc(&f.schema, BoundSpec::TransactionOnly(0.0));
  EXPECT_FALSE(acc.TryCharge(1, 0.001).admitted);
  EXPECT_TRUE(acc.TryCharge(1, 0.0).admitted);
}

// Property-style sweep: for random charge sequences, the hierarchy
// invariant holds at every node: accumulated(child subtree) never exceeds
// any ancestor limit, and accumulated(parent) == sum of admitted charges
// under it (with unit weights).
class AccumulatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccumulatorPropertyTest, InvariantsUnderRandomCharges) {
  BankFixture f;
  BoundSpec b;
  b.SetTransactionLimit(500.0);
  b.SetLimit(f.company, 300.0);
  b.SetLimit(f.com1, 120.0);
  InconsistencyAccumulator acc(&f.schema, b);

  uint64_t state = GetParam();
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  double sum_com1 = 0, sum_com2 = 0, sum_pref = 0, sum_root_direct = 0;
  for (int i = 0; i < 300; ++i) {
    const ObjectId object = static_cast<ObjectId>(1 + next() % 4);
    const double d = static_cast<double>(next() % 50);
    const bool admitted = acc.TryCharge(object, d).admitted;
    if (admitted) {
      if (object == 1) sum_com1 += d;
      if (object == 2) sum_com2 += d;
      if (object == 3) sum_pref += d;
      if (object == 4) sum_root_direct += d;
    }
    // Invariants after every step.
    ASSERT_LE(acc.accumulated(f.com1), 120.0);
    ASSERT_LE(acc.accumulated(f.company), 300.0);
    ASSERT_LE(acc.total(), 500.0);
    ASSERT_DOUBLE_EQ(acc.accumulated(f.com1), sum_com1);
    ASSERT_DOUBLE_EQ(acc.accumulated(f.company), sum_com1 + sum_com2);
    ASSERT_DOUBLE_EQ(acc.total(),
                     sum_com1 + sum_com2 + sum_pref + sum_root_direct);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccumulatorPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 99, 12345));

}  // namespace
}  // namespace esr
