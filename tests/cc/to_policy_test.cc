#include "cc/to_policy.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

TxnView Query(TxnId id, int64_t ts, bool esr = true) {
  return TxnView{id, TxnType::kQuery, Ts(ts), esr};
}
TxnView Update(TxnId id, int64_t ts, bool esr = true) {
  return TxnView{id, TxnType::kUpdate, Ts(ts), esr};
}

ObjectRecord FreshObject() { return ObjectRecord(1, 1000, 20); }

// ---------------------------------------------------------------- reads --

TEST(DecideReadTest, OnTimeReadProceeds) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(10), 1100);
  obj.CommitWrite(9);
  EXPECT_EQ(DecideRead(Query(2, 20), obj), ReadDecision::kProceedConsistent);
  EXPECT_EQ(DecideRead(Update(3, 20), obj), ReadDecision::kProceedConsistent);
}

TEST(DecideReadTest, ReadAtExactWriteTimestampProceeds) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(10), 1100);
  obj.CommitWrite(9);
  EXPECT_EQ(DecideRead(Query(2, 10), obj), ReadDecision::kProceedConsistent);
}

TEST(DecideReadTest, LateQueryReadRelaxesUnderEsr) {
  // Fig. 3 case 1: query ts older than the object's last committed write.
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  obj.CommitWrite(9);
  EXPECT_EQ(DecideRead(Query(2, 20), obj), ReadDecision::kRelaxLateRead);
}

TEST(DecideReadTest, LateQueryReadAbortsUnderSr) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  obj.CommitWrite(9);
  EXPECT_EQ(DecideRead(Query(2, 20, /*esr=*/false), obj),
            ReadDecision::kAbortLate);
}

TEST(DecideReadTest, LateUpdateReadAlwaysAborts) {
  // Update-ET reads feed writes, so they must stay consistent (Sec. 4).
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  obj.CommitWrite(9);
  EXPECT_EQ(DecideRead(Update(2, 20), obj), ReadDecision::kAbortLate);
  EXPECT_EQ(DecideRead(Update(2, 20, /*esr=*/false), obj),
            ReadDecision::kAbortLate);
}

TEST(DecideReadTest, QueryReadOfUncommittedRelaxesUnderEsr) {
  // Fig. 3 case 2: viewing uncommitted data from a concurrent update ET.
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);  // not committed
  EXPECT_EQ(DecideRead(Query(2, 60), obj), ReadDecision::kRelaxUncommitted);
  // Even a late query read of uncommitted data goes through case 2.
  EXPECT_EQ(DecideRead(Query(2, 20), obj), ReadDecision::kRelaxUncommitted);
}

TEST(DecideReadTest, SrQueryWaitsOrAbortsOnUncommitted) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  // Strict ordering: newer request waits for the writer...
  EXPECT_EQ(DecideRead(Query(2, 60, /*esr=*/false), obj),
            ReadDecision::kWait);
  // ...older request is late.
  EXPECT_EQ(DecideRead(Query(2, 20, /*esr=*/false), obj),
            ReadDecision::kAbortLate);
}

TEST(DecideReadTest, UpdateWaitsOrAbortsOnUncommitted) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  EXPECT_EQ(DecideRead(Update(2, 60), obj), ReadDecision::kWait);
  EXPECT_EQ(DecideRead(Update(2, 20), obj), ReadDecision::kAbortLate);
}

TEST(DecideReadTest, ReadingOwnPendingWriteIsConsistent) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  EXPECT_EQ(DecideRead(Update(9, 50), obj),
            ReadDecision::kProceedConsistent);
}

TEST(DecideReadTest, FreshObjectAlwaysReadable) {
  ObjectRecord obj = FreshObject();
  EXPECT_EQ(DecideRead(Query(1, 1), obj), ReadDecision::kProceedConsistent);
  EXPECT_EQ(DecideRead(Update(1, 1), obj), ReadDecision::kProceedConsistent);
}

// --------------------------------------------------------------- writes --

TEST(DecideWriteTest, OnTimeWriteProceeds) {
  ObjectRecord obj = FreshObject();
  obj.NoteQueryRead(Ts(10));
  obj.NoteUpdateRead(Ts(15));
  EXPECT_EQ(DecideWrite(Update(2, 20), obj),
            WriteDecision::kProceedConsistent);
}

TEST(DecideWriteTest, LateWriteVsUpdateReadAborts) {
  ObjectRecord obj = FreshObject();
  obj.NoteUpdateRead(Ts(50));
  EXPECT_EQ(DecideWrite(Update(2, 20), obj),
            WriteDecision::kAbortLateRead);
}

TEST(DecideWriteTest, LateWriteVsQueryReadRelaxesUnderEsr) {
  // Fig. 3 case 3: last conflicting read came from a query ET.
  ObjectRecord obj = FreshObject();
  obj.NoteQueryRead(Ts(50));
  EXPECT_EQ(DecideWrite(Update(2, 20), obj),
            WriteDecision::kRelaxLateWrite);
}

TEST(DecideWriteTest, LateWriteVsQueryReadAbortsUnderSr) {
  ObjectRecord obj = FreshObject();
  obj.NoteQueryRead(Ts(50));
  EXPECT_EQ(DecideWrite(Update(2, 20, /*esr=*/false), obj),
            WriteDecision::kAbortLateRead);
}

TEST(DecideWriteTest, UpdateReadConflictTrumpsQueryRelaxation) {
  // Both a newer update read and a newer query read exist: the update
  // read makes the write unsalvageable.
  ObjectRecord obj = FreshObject();
  obj.NoteQueryRead(Ts(50));
  obj.NoteUpdateRead(Ts(40));
  EXPECT_EQ(DecideWrite(Update(2, 30), obj),
            WriteDecision::kAbortLateRead);
}

TEST(DecideWriteTest, LateWriteVsCommittedWriteAborts) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  obj.CommitWrite(9);
  EXPECT_EQ(DecideWrite(Update(2, 20), obj),
            WriteDecision::kAbortLateWrite);
  // ESR does not relax write-write conflicts (updates stay consistent).
  EXPECT_EQ(DecideWrite(Update(2, 20, /*esr=*/true), obj),
            WriteDecision::kAbortLateWrite);
}

TEST(DecideWriteTest, WaitsForUncommittedWriter) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  EXPECT_EQ(DecideWrite(Update(2, 60), obj), WriteDecision::kWait);
  EXPECT_EQ(DecideWrite(Update(2, 20), obj),
            WriteDecision::kAbortLateWrite);
}

TEST(DecideWriteTest, OverwritingOwnPendingWriteProceeds) {
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(50), 1100);
  EXPECT_EQ(DecideWrite(Update(9, 50), obj),
            WriteDecision::kProceedConsistent);
}

TEST(DecideWriteTest, WriteAfterOlderQueryReadIsConsistent) {
  // Query read with an OLDER ts does not conflict: serially the query
  // precedes the update and it already read the old value.
  ObjectRecord obj = FreshObject();
  obj.NoteQueryRead(Ts(10));
  EXPECT_EQ(DecideWrite(Update(2, 20), obj),
            WriteDecision::kProceedConsistent);
}

TEST(AbortReasonTest, AllReasonsHaveNames) {
  EXPECT_STREQ(AbortReasonToString(AbortReason::kNone), "none");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kLateRead), "late_read");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kLateWrite), "late_write");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kObjectBound),
               "object_bound");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kGroupBound), "group_bound");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kTransactionBound),
               "transaction_bound");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kHistoryExhausted),
               "history_exhausted");
  EXPECT_STREQ(AbortReasonToString(AbortReason::kUserRequested),
               "user_requested");
}

// The wait-for relation always points from newer to older timestamps, so
// the wait graph is acyclic and timestamp-ordering with waits is
// deadlock-free. Parameterized check across both op kinds.
struct WaitCase {
  bool read;
  int64_t requester_ts;
  int64_t writer_ts;
};

class WaitDirectionTest : public ::testing::TestWithParam<WaitCase> {};

TEST_P(WaitDirectionTest, WaitOnlyForOlderWriters) {
  const WaitCase c = GetParam();
  ObjectRecord obj = FreshObject();
  obj.ApplyWrite(9, Ts(c.writer_ts), 1100);
  const bool requester_newer = c.requester_ts > c.writer_ts;
  if (c.read) {
    const ReadDecision d = DecideRead(Update(2, c.requester_ts), obj);
    EXPECT_EQ(d == ReadDecision::kWait, requester_newer);
  } else {
    const WriteDecision d = DecideWrite(Update(2, c.requester_ts), obj);
    EXPECT_EQ(d == WriteDecision::kWait, requester_newer);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WaitDirectionTest,
    ::testing::Values(WaitCase{true, 60, 50}, WaitCase{true, 40, 50},
                      WaitCase{false, 60, 50}, WaitCase{false, 40, 50},
                      WaitCase{true, 51, 50}, WaitCase{false, 49, 50}));

}  // namespace
}  // namespace esr
