#include "esr/aggregate.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

// Builds a query transaction that observed the given (min..max, last)
// ranges by feeding the raw observations.
struct TxnBuilder {
  GroupSchema schema;
  Transaction txn;

  explicit TxnBuilder(Inconsistency til = kUnbounded)
      : txn(1, TxnType::kQuery, Ts(1), &schema,
            BoundSpec::TransactionOnly(til)) {}

  TxnBuilder& Observe(ObjectId object, std::initializer_list<Value> values) {
    for (Value v : values) txn.ObserveValue(object, v);
    return *this;
  }
};

TEST(AggregateTest, SumOverSingleReads) {
  TxnBuilder b;
  b.Observe(0, {100}).Observe(1, {200}).Observe(2, {300});
  const auto out = EvaluateAggregate(b.txn, {0, 1, 2}, AggregateKind::kSum);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->result, 600.0);
  EXPECT_EQ(out->min_result, 600.0);
  EXPECT_EQ(out->max_result, 600.0);
  EXPECT_EQ(out->result_inconsistency, 0.0);
}

TEST(AggregateTest, AvgUsesMinMaxSpread) {
  // Sec. 5.3.2: min_result = sum of minima / n, max_result = sum of
  // maxima / n, result_inconsistency = (max - min) / 2.
  TxnBuilder b;
  b.Observe(0, {100, 140}).Observe(1, {200, 180});  // ranges [100,140],[180,200]
  const auto out = EvaluateAggregate(b.txn, {0, 1}, AggregateKind::kAvg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->min_result, (100.0 + 180.0) / 2);
  EXPECT_EQ(out->max_result, (140.0 + 200.0) / 2);
  EXPECT_EQ(out->result_inconsistency, (170.0 - 140.0) / 2);
  // Result uses the last-viewed values: (140 + 180) / 2.
  EXPECT_EQ(out->result, 160.0);
}

TEST(AggregateTest, MinAggregateBounds) {
  TxnBuilder b;
  b.Observe(0, {50, 70}).Observe(1, {60, 40});
  const auto out = EvaluateAggregate(b.txn, {0, 1}, AggregateKind::kMin);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->min_result, 40.0);  // min over minima = min(50, 40)
  EXPECT_EQ(out->max_result, 60.0);  // min over maxima = min(70, 60)
  EXPECT_EQ(out->result, 40.0);      // min over last = min(70, 40)
}

TEST(AggregateTest, MaxAggregateBounds) {
  TxnBuilder b;
  b.Observe(0, {50, 70}).Observe(1, {60, 40});
  const auto out = EvaluateAggregate(b.txn, {0, 1}, AggregateKind::kMax);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->min_result, 50.0);  // max over minima = max(50, 40)
  EXPECT_EQ(out->max_result, 70.0);  // max over maxima = max(70, 60)
  EXPECT_EQ(out->result, 70.0);
}

TEST(AggregateTest, CountIsExact) {
  TxnBuilder b;
  b.Observe(0, {1}).Observe(1, {2}).Observe(2, {3});
  const auto out = EvaluateAggregate(b.txn, {0, 1, 2}, AggregateKind::kCount);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->result, 3.0);
  EXPECT_EQ(out->result_inconsistency, 0.0);
}

TEST(AggregateTest, UnreadObjectIsError) {
  TxnBuilder b;
  b.Observe(0, {1});
  const auto out = EvaluateAggregate(b.txn, {0, 7}, AggregateKind::kSum);
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(AggregateTest, EmptyObjectListIsError) {
  TxnBuilder b;
  const auto out = EvaluateAggregate(b.txn, {}, AggregateKind::kSum);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(AggregateTest, AdmissionComparesResultInconsistencyToTil) {
  TxnBuilder tight(/*til=*/10.0);
  tight.Observe(0, {100, 200});  // avg spread 50 > TIL 10
  const auto out = EvaluateAggregate(tight.txn, {0}, AggregateKind::kAvg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->result_inconsistency, 50.0);
  EXPECT_EQ(CheckAggregateAdmissible(tight.txn, *out).code(),
            StatusCode::kBoundViolation);

  TxnBuilder loose(/*til=*/100.0);
  loose.Observe(0, {100, 200});
  const auto out2 = EvaluateAggregate(loose.txn, {0}, AggregateKind::kAvg);
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(CheckAggregateAdmissible(loose.txn, *out2).ok());
}

TEST(AggregateTest, SingleReadAvgHasZeroResultInconsistency) {
  TxnBuilder b(/*til=*/0.0);
  b.Observe(0, {100}).Observe(1, {200});
  const auto out = EvaluateAggregate(b.txn, {0, 1}, AggregateKind::kAvg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->result_inconsistency, 0.0);
  EXPECT_TRUE(CheckAggregateAdmissible(b.txn, *out).ok());
}

TEST(AggregateTest, KindNames) {
  EXPECT_EQ(AggregateKindToString(AggregateKind::kSum), "sum");
  EXPECT_EQ(AggregateKindToString(AggregateKind::kAvg), "avg");
  EXPECT_EQ(AggregateKindToString(AggregateKind::kMin), "min");
  EXPECT_EQ(AggregateKindToString(AggregateKind::kMax), "max");
  EXPECT_EQ(AggregateKindToString(AggregateKind::kCount), "count");
}

// Property: for every kind, min_result <= result <= max_result over
// random observation sets.
class AggregateBoundsProperty
    : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(AggregateBoundsProperty, ResultWithinBounds) {
  uint64_t state = 99;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int round = 0; round < 50; ++round) {
    TxnBuilder b;
    std::vector<ObjectId> objects;
    const int n = 1 + static_cast<int>(next() % 8);
    for (int i = 0; i < n; ++i) {
      objects.push_back(static_cast<ObjectId>(i));
      const int reads = 1 + static_cast<int>(next() % 4);
      for (int r = 0; r < reads; ++r) {
        b.txn.ObserveValue(static_cast<ObjectId>(i),
                           static_cast<Value>(next() % 10000));
      }
    }
    const auto out = EvaluateAggregate(b.txn, objects, GetParam());
    ASSERT_TRUE(out.ok());
    EXPECT_LE(out->min_result, out->result + 1e-9);
    EXPECT_LE(out->result, out->max_result + 1e-9);
    EXPECT_GE(out->result_inconsistency, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AggregateBoundsProperty,
                         ::testing::Values(AggregateKind::kSum,
                                           AggregateKind::kAvg,
                                           AggregateKind::kMin,
                                           AggregateKind::kMax,
                                           AggregateKind::kCount));

}  // namespace
}  // namespace esr
