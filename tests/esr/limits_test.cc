#include "esr/limits.h"

#include <gtest/gtest.h>

#include "hierarchy/bound_spec.h"

namespace esr {
namespace {

TEST(LimitsTest, Table1MagnitudesMatchPaper) {
  const TransactionLimits high = LimitsForLevel(EpsilonLevel::kHigh);
  EXPECT_EQ(high.til, 100'000);
  EXPECT_EQ(high.tel, 10'000);
  const TransactionLimits medium = LimitsForLevel(EpsilonLevel::kMedium);
  EXPECT_EQ(medium.til, 50'000);
  EXPECT_EQ(medium.tel, 5'000);
  const TransactionLimits low = LimitsForLevel(EpsilonLevel::kLow);
  EXPECT_EQ(low.til, 10'000);
  EXPECT_EQ(low.tel, 1'000);
}

TEST(LimitsTest, ZeroLevelIsSerializability) {
  const TransactionLimits zero = LimitsForLevel(EpsilonLevel::kZero);
  EXPECT_EQ(zero.til, 0);
  EXPECT_EQ(zero.tel, 0);
  EXPECT_TRUE(BoundSpec::TransactionOnly(zero.til).IsSerializable());
}

TEST(LimitsTest, LevelsAreMonotone) {
  const auto zero = LimitsForLevel(EpsilonLevel::kZero);
  const auto low = LimitsForLevel(EpsilonLevel::kLow);
  const auto medium = LimitsForLevel(EpsilonLevel::kMedium);
  const auto high = LimitsForLevel(EpsilonLevel::kHigh);
  EXPECT_LT(zero.til, low.til);
  EXPECT_LT(low.til, medium.til);
  EXPECT_LT(medium.til, high.til);
  EXPECT_LT(zero.tel, low.tel);
  EXPECT_LT(low.tel, medium.tel);
  EXPECT_LT(medium.tel, high.tel);
}

TEST(LimitsTest, TelBelowTilAtEveryLevel) {
  // Update ETs have ~6 ops vs ~20 for queries, hence lower TELs (Sec. 7).
  for (auto level :
       {EpsilonLevel::kLow, EpsilonLevel::kMedium, EpsilonLevel::kHigh}) {
    const auto limits = LimitsForLevel(level);
    EXPECT_LT(limits.tel, limits.til);
  }
}

TEST(LimitsTest, LevelNames) {
  EXPECT_EQ(EpsilonLevelToString(EpsilonLevel::kZero), "zero");
  EXPECT_EQ(EpsilonLevelToString(EpsilonLevel::kLow), "low");
  EXPECT_EQ(EpsilonLevelToString(EpsilonLevel::kMedium), "medium");
  EXPECT_EQ(EpsilonLevelToString(EpsilonLevel::kHigh), "high");
}

}  // namespace
}  // namespace esr
