// End-to-end property tests of the ESR correctness guarantee on the
// paper's TO engine.
//
// Setup: a small universe where every update ET is a TRANSFER (it moves
// an amount between two objects, preserving the global total T0) and
// every query ET sums ALL objects. Under any serializable execution a
// query's sum is exactly T0, so ESR's promise — "the result is within
// the imported inconsistency of some serializable result" (Sec. 3.2.1) —
// becomes the machine-checkable invariant |sum - T0| <= imported <= TIL.
//
// Updates run with TEL = 0 (consistent update ETs), matching the paper's
// scenario; that is what makes the import-only bound strict — a case-3
// write would shift part of a query's deviation into the writer's export
// account, which this invariant does not model.
//
// A deterministic interleaving harness (testing::ScriptedClient) drives
// many logical clients one operation at a time in random order,
// exercising waits, aborts with restart, all three ESR relaxation cases,
// and shadow recovery. engines_test.cc runs the same harness over the
// 2PL and MVTO engines.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/random.h"
#include "testing/scripted_client.h"
#include "testing/test_util.h"

namespace esr {
namespace {

using testing::EngineFixture;
using testing::ScriptedClient;

constexpr size_t kObjects = 12;

struct PropertyCase {
  uint64_t seed;
  Inconsistency til;
};

class EsrGuaranteeTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EsrGuaranteeTest, QueriesStayWithinTilOfSerializableSum) {
  const PropertyCase param = GetParam();
  EngineFixture f(kObjects, /*history_depth=*/64);
  const Value total0 = f.store.TotalValue();

  std::vector<std::unique_ptr<ScriptedClient>> clients;
  // 3 query clients with the parameterized TIL, 4 transfer clients with
  // TEL = 0.
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &f.manager, kObjects, static_cast<SiteId>(i + 1),
        /*is_query=*/true, param.til, param.seed * 7 + i));
  }
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &f.manager, kObjects, static_cast<SiteId>(i + 10),
        /*is_query=*/false, /*limit=*/0.0, param.seed * 13 + i));
  }

  Rng scheduler(param.seed);
  for (int step = 0; step < 30000; ++step) {
    const size_t pick = static_cast<size_t>(
        scheduler.UniformInt(0, static_cast<int64_t>(clients.size()) - 1));
    clients[pick]->Step();
  }
  // Drain: finish every in-flight transaction; no new ones start.
  for (auto& client : clients) client->StartDraining();
  for (int step = 0; step < 5000; ++step) {
    for (auto& client : clients) client->Step();
  }

  int64_t query_commits = 0;
  for (const auto& client : clients) {
    for (const auto& outcome : client->outcomes()) {
      ++query_commits;
      // The headline ESR guarantee, end to end.
      EXPECT_LE(std::llabs(outcome.sum - total0),
                static_cast<int64_t>(outcome.imported) + 1)
          << "query sum " << outcome.sum << " vs T0 " << total0
          << " imported " << outcome.imported;
      EXPECT_LE(outcome.imported, param.til);
    }
  }
  // Tight bounds legitimately make query commits rare (they keep being
  // rejected and retried); looser bounds must commit plenty.
  ASSERT_GT(query_commits, 0);
  if (param.til >= 2000.0) ASSERT_GT(query_commits, 10);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBounds, EsrGuaranteeTest,
    ::testing::Values(PropertyCase{1, 500.0}, PropertyCase{2, 500.0},
                      PropertyCase{3, 2000.0}, PropertyCase{4, 2000.0},
                      PropertyCase{5, 100.0}, PropertyCase{6, kUnbounded},
                      PropertyCase{7, 50.0}, PropertyCase{8, 10000.0}));

TEST(EngineQuiescenceTest, TotalsRestoredAfterMixedWorkload) {
  EngineFixture f(kObjects, 64);
  const Value total0 = f.store.TotalValue();
  std::vector<std::unique_ptr<ScriptedClient>> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &f.manager, kObjects, static_cast<SiteId>(i + 1),
        /*is_query=*/false, kUnbounded, 100 + static_cast<uint64_t>(i)));
  }
  Rng scheduler(42);
  for (int step = 0; step < 20000; ++step) {
    clients[static_cast<size_t>(scheduler.UniformInt(0, 4))]->Step();
  }
  for (auto& client : clients) client->StartDraining();
  for (int step = 0; step < 5000; ++step) {
    for (auto& client : clients) client->Step();
  }
  EXPECT_EQ(f.manager.num_active(), 0u);
  EXPECT_EQ(f.store.TotalValue(), total0);
  // No dangling CC state on any object.
  for (ObjectId id = 0; id < kObjects; ++id) {
    EXPECT_FALSE(f.store.Get(id).has_uncommitted_write());
    EXPECT_TRUE(f.store.Get(id).query_readers().empty());
  }
}

TEST(EngineQuiescenceTest, SerializableModeAlsoQuiesces) {
  EngineFixture f(kObjects, 64);
  const Value total0 = f.store.TotalValue();
  std::vector<std::unique_ptr<ScriptedClient>> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &f.manager, kObjects, static_cast<SiteId>(i + 1),
        /*is_query=*/true, /*limit=*/0.0, 200 + static_cast<uint64_t>(i)));
  }
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &f.manager, kObjects, static_cast<SiteId>(i + 10),
        /*is_query=*/false, /*limit=*/0.0, 300 + static_cast<uint64_t>(i)));
  }
  Rng scheduler(43);
  for (int step = 0; step < 20000; ++step) {
    clients[static_cast<size_t>(scheduler.UniformInt(0, 4))]->Step();
  }
  for (auto& client : clients) client->StartDraining();
  for (int step = 0; step < 5000; ++step) {
    for (auto& client : clients) client->Step();
  }
  EXPECT_EQ(f.store.TotalValue(), total0);
  // SR queries that committed saw EXACTLY the serializable sum.
  for (const auto& client : clients) {
    for (const auto& outcome : client->outcomes()) {
      EXPECT_EQ(outcome.sum, total0);
      EXPECT_EQ(outcome.imported, 0.0);
    }
  }
}

}  // namespace
}  // namespace esr
