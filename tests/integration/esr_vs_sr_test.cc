// Integration tests over the full simulated prototype, checking the
// qualitative relationships the paper's evaluation section reports.
// These use short measurement windows; the bench harnesses regenerate the
// full figures.

#include <gtest/gtest.h>

#include "esr/limits.h"
#include "sim/cluster.h"

namespace esr {
namespace {

ClusterOptions Options(int mpl, EpsilonLevel level, uint64_t seed) {
  ClusterOptions opt;
  opt.mpl = mpl;
  const TransactionLimits limits = LimitsForLevel(level);
  opt.workload.til = limits.til;
  opt.workload.tel = limits.tel;
  opt.warmup_s = 3.0;
  opt.measure_s = 40.0;
  opt.seed = seed;
  return opt;
}

SimResult Averaged(int mpl, EpsilonLevel level) {
  SimResult total;
  constexpr int kSeeds = 3;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const SimResult r = RunCluster(Options(mpl, level, seed * 37));
    total.mpl = r.mpl;
    total.elapsed_s += r.elapsed_s;
    total.committed += r.committed;
    total.committed_query += r.committed_query;
    total.committed_update += r.committed_update;
    total.aborts += r.aborts;
    total.ops_executed += r.ops_executed;
    total.inconsistent_ops += r.inconsistent_ops;
    total.waits += r.waits;
    total.import_total += r.import_total;
  }
  return total;
}

TEST(EsrVsSrTest, ThroughputOrderedByEpsilonUnderContention) {
  // Fig. 7: at higher bounds, ESR throughput is much higher than SR, and
  // ESR approaches SR as bounds decrease.
  const SimResult zero = Averaged(5, EpsilonLevel::kZero);
  const SimResult low = Averaged(5, EpsilonLevel::kLow);
  const SimResult high = Averaged(5, EpsilonLevel::kHigh);
  EXPECT_GT(low.throughput(), zero.throughput());
  EXPECT_GE(high.throughput(), low.throughput() * 0.95);
  EXPECT_GT(high.throughput(), zero.throughput() * 1.3);
}

TEST(EsrVsSrTest, AbortsOrderedInverselyWithEpsilon) {
  // Fig. 9: aborts at high bounds are almost zero; at zero bounds very
  // high.
  const SimResult zero = Averaged(5, EpsilonLevel::kZero);
  const SimResult low = Averaged(5, EpsilonLevel::kLow);
  const SimResult high = Averaged(5, EpsilonLevel::kHigh);
  EXPECT_GT(zero.aborts, low.aborts);
  EXPECT_GT(low.aborts, high.aborts);
  // "Almost zero" relative to SR's abort storm, and a small fraction of
  // the commit count.
  EXPECT_LT(static_cast<double>(high.aborts),
            0.35 * static_cast<double>(zero.aborts));
  EXPECT_LT(static_cast<double>(high.aborts),
            0.15 * static_cast<double>(high.committed));
}

TEST(EsrVsSrTest, InconsistentOpsGrowWithEpsilonAndMpl) {
  // Fig. 8.
  const SimResult low4 = Averaged(4, EpsilonLevel::kLow);
  const SimResult high4 = Averaged(4, EpsilonLevel::kHigh);
  const SimResult high8 = Averaged(8, EpsilonLevel::kHigh);
  EXPECT_GE(high4.inconsistent_ops, low4.inconsistent_ops);
  EXPECT_GT(high8.inconsistent_ops, high4.inconsistent_ops);
  EXPECT_EQ(Averaged(4, EpsilonLevel::kZero).inconsistent_ops, 0);
}

TEST(EsrVsSrTest, WastedOperationsShrinkWithEpsilon) {
  // Fig. 10: at high bounds nearly all executed operations belong to
  // transactions that commit; lower bounds waste work in aborted
  // attempts. Ops-per-commit is the normalized form (Fig. 13).
  const SimResult zero = Averaged(5, EpsilonLevel::kZero);
  const SimResult high = Averaged(5, EpsilonLevel::kHigh);
  EXPECT_GT(zero.ops_per_committed_txn(),
            high.ops_per_committed_txn() * 1.1);
  // The workload averages ~20-op queries (60%) and ~6-op updates (40%);
  // with near-zero aborts, ops/commit should sit near that mix average.
  EXPECT_LT(high.ops_per_committed_txn(), 18.0);
}

TEST(EsrVsSrTest, ImportedInconsistencyScalesWithTil) {
  const SimResult low = Averaged(5, EpsilonLevel::kLow);
  const SimResult high = Averaged(5, EpsilonLevel::kHigh);
  ASSERT_GT(low.committed_query, 0);
  ASSERT_GT(high.committed_query, 0);
  // Queries never import more than their TIL.
  EXPECT_LE(low.avg_import_per_query(),
            LimitsForLevel(EpsilonLevel::kLow).til);
  // Looser bounds admit at least as much inconsistency on average.
  EXPECT_GE(high.avg_import_per_query(),
            low.avg_import_per_query() * 0.8);
}

TEST(EsrVsSrTest, ZeroEpsilonMatchesSrSemantics) {
  // Zero-bound ESR *is* SR: no inconsistent op may ever execute, no
  // inconsistency may ever be imported.
  for (int mpl : {2, 6}) {
    const SimResult r = RunCluster(Options(mpl, EpsilonLevel::kZero, 11));
    EXPECT_EQ(r.inconsistent_ops, 0);
    EXPECT_EQ(r.import_total, 0.0);
    EXPECT_EQ(r.export_total, 0.0);
  }
}

TEST(EsrVsSrTest, ThrashingShiftsToHigherMplWithHigherBounds) {
  // The headline Fig. 7 observation. We compare the throughput DROP from
  // each curve's peak to MPL 10: the zero/low curves must have collapsed
  // much further than the high curve, i.e. high-epsilon pushes the
  // thrashing point to a higher MPL.
  auto retention = [](EpsilonLevel level) {
    double peak = 0.0, at10 = 0.0;
    for (int mpl : {4, 5, 6, 7, 8, 10}) {
      const double t = Averaged(mpl, level).throughput();
      peak = std::max(peak, t);
      if (mpl == 10) at10 = t;
    }
    return at10 / peak;
  };
  const double zero_retention = retention(EpsilonLevel::kZero);
  const double high_retention = retention(EpsilonLevel::kHigh);
  EXPECT_LT(zero_retention, high_retention);
}

}  // namespace
}  // namespace esr
