// Cross-engine integration tests: the same transfer/sum workload driven
// through TO-ESR, 2PL-ESR (wait-die), and MVTO via the shared
// TransactionEngine interface, checking each protocol's characteristic
// guarantee, plus full simulated-cluster runs for every engine.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "engine/sharded/sharded_engine.h"
#include "esr/limits.h"
#include "mvto/mvto_manager.h"
#include "sim/cluster.h"
#include "testing/scripted_client.h"
#include "testing/test_util.h"
#include "twopl/twopl_manager.h"

namespace esr {
namespace {

using testing::ScriptedClient;

constexpr size_t kObjects = 12;

/// Engine-agnostic harness: owns whichever engine the param names, seeds
/// deterministic values, and exposes the invariant total.
class EngineHarness {
 public:
  EngineHarness(EngineKind kind, size_t num_objects)
      : kind_(kind),
        store_(testing::EngineFixture::StoreOptions(num_objects, 64)) {
    switch (kind) {
      case EngineKind::kTimestampOrdering:
        engine_ = std::make_unique<TransactionManager>(&store_, &schema_,
                                                       &metrics_);
        break;
      case EngineKind::kTwoPhaseLocking:
        engine_ = std::make_unique<TwoPLManager>(&store_, &schema_,
                                                 &metrics_);
        break;
      case EngineKind::kMultiversion:
        engine_ = std::make_unique<MvtoManager>(
            testing::EngineFixture::StoreOptions(num_objects, 64), &schema_,
            &metrics_);
        break;
      case EngineKind::kSharded: {
        // Same protocol as TO-ESR behind per-shard latches and group
        // commit; single-threaded it must honor the same guarantees.
        ShardedEngineOptions sharded;
        sharded.num_shards = 4;
        engine_ = std::make_unique<ShardedEngine>(
            sharded, testing::EngineFixture::StoreOptions(num_objects, 64),
            &schema_, &metrics_);
        break;
      }
    }
  }

  TransactionEngine& engine() { return *engine_; }

  Value TotalCommitted() {
    if (kind_ == EngineKind::kSharded) {
      return static_cast<ShardedEngine&>(*engine_).TotalValue();
    }
    Value total = 0;
    for (ObjectId id = 0; id < kObjects; ++id) {
      if (kind_ == EngineKind::kMultiversion) {
        total += static_cast<MvtoManager&>(*engine_)
                     .store()
                     .Get(id)
                     .LatestCommittedValue();
      } else {
        total += store_.Get(id).value();
      }
    }
    return total;
  }

  EngineKind kind() const { return kind_; }

 private:
  EngineKind kind_;
  ObjectStore store_;
  GroupSchema schema_;
  MetricRegistry metrics_;
  std::unique_ptr<TransactionEngine> engine_;
};

class EngineGuaranteeTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineGuaranteeTest, TransfersPreserveTotalsAndQueriesAreBounded) {
  EngineHarness harness(GetParam(), kObjects);
  const Value total0 = harness.TotalCommitted();
  constexpr Inconsistency kTil = 2000.0;

  std::vector<std::unique_ptr<ScriptedClient>> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &harness.engine(), kObjects, static_cast<SiteId>(i + 1),
        /*is_query=*/true, kTil, 31 + static_cast<uint64_t>(i)));
  }
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<ScriptedClient>(
        &harness.engine(), kObjects, static_cast<SiteId>(i + 10),
        /*is_query=*/false, /*limit=*/0.0, 57 + static_cast<uint64_t>(i)));
  }

  Rng scheduler(99);
  for (int step = 0; step < 30000; ++step) {
    clients[static_cast<size_t>(
                scheduler.UniformInt(0,
                                     static_cast<int64_t>(clients.size()) -
                                         1))]
        ->Step();
  }
  for (auto& client : clients) client->StartDraining();
  for (int step = 0; step < 8000; ++step) {
    for (auto& client : clients) client->Step();
  }

  // Recovery correctness holds for every engine.
  EXPECT_EQ(harness.engine().num_active(), 0u);
  EXPECT_EQ(harness.TotalCommitted(), total0);

  int64_t query_commits = 0;
  for (const auto& client : clients) {
    for (const auto& outcome : client->outcomes()) {
      ++query_commits;
      if (GetParam() == EngineKind::kMultiversion) {
        // MVTO queries read a serializable snapshot: exact answers.
        EXPECT_EQ(outcome.sum, total0);
        EXPECT_EQ(outcome.imported, 0.0);
      } else {
        // ESR engines: within the imported inconsistency of T0, within
        // TIL.
        EXPECT_LE(std::llabs(outcome.sum - total0),
                  static_cast<int64_t>(outcome.imported) + 1);
        EXPECT_LE(outcome.imported, kTil);
      }
    }
  }
  EXPECT_GT(query_commits, 5);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineGuaranteeTest,
    ::testing::Values(EngineKind::kTimestampOrdering,
                      EngineKind::kTwoPhaseLocking,
                      EngineKind::kMultiversion, EngineKind::kSharded),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kTimestampOrdering:
          return std::string("ToEsr");
        case EngineKind::kTwoPhaseLocking:
          return std::string("TwoPlEsr");
        case EngineKind::kMultiversion:
          return std::string("Mvto");
        case EngineKind::kSharded:
          return std::string("Sharded");
      }
      return std::string("Unknown");
    });

// ----------------------------------------------------- cluster runs --

ClusterOptions EngineClusterOptions(EngineKind engine, EpsilonLevel level,
                                    uint64_t seed) {
  ClusterOptions opt;
  opt.mpl = 5;
  const TransactionLimits limits = LimitsForLevel(level);
  opt.workload.til = limits.til;
  opt.workload.tel = limits.tel;
  opt.server.engine = engine;
  opt.warmup_s = 2.0;
  opt.measure_s = 25.0;
  opt.seed = seed;
  return opt;
}

TEST(EngineClusterTest, AllEnginesMakeProgressUnderContention) {
  for (EngineKind engine :
       {EngineKind::kTimestampOrdering, EngineKind::kTwoPhaseLocking,
        EngineKind::kMultiversion, EngineKind::kSharded}) {
    const SimResult r = RunCluster(
        EngineClusterOptions(engine, EpsilonLevel::kHigh, 5));
    EXPECT_GT(r.committed, 100) << EngineKindToString(engine);
    EXPECT_GT(r.committed_query, 0) << EngineKindToString(engine);
    EXPECT_GT(r.committed_update, 0) << EngineKindToString(engine);
  }
}

TEST(EngineClusterTest, MvtoQueriesNeverViewInconsistency) {
  const SimResult r = RunCluster(
      EngineClusterOptions(EngineKind::kMultiversion, EpsilonLevel::kHigh,
                           7));
  EXPECT_EQ(r.inconsistent_ops, 0);
  EXPECT_EQ(r.import_total, 0.0);
}

TEST(EngineClusterTest, TwoPlEsrBeatsTwoPlSr) {
  const SimResult sr = RunCluster(
      EngineClusterOptions(EngineKind::kTwoPhaseLocking,
                           EpsilonLevel::kZero, 9));
  const SimResult esr = RunCluster(
      EngineClusterOptions(EngineKind::kTwoPhaseLocking,
                           EpsilonLevel::kHigh, 9));
  // Divergence control pays off under 2PL exactly as under TO.
  EXPECT_GT(esr.throughput(), sr.throughput() * 1.1);
  EXPECT_GT(esr.inconsistent_ops, 0);
  EXPECT_EQ(sr.inconsistent_ops, 0);
}

TEST(EngineClusterTest, DeterministicPerEngine) {
  for (EngineKind engine :
       {EngineKind::kTwoPhaseLocking, EngineKind::kMultiversion}) {
    const SimResult a = RunCluster(
        EngineClusterOptions(engine, EpsilonLevel::kMedium, 11));
    const SimResult b = RunCluster(
        EngineClusterOptions(engine, EpsilonLevel::kMedium, 11));
    EXPECT_EQ(a.committed, b.committed) << EngineKindToString(engine);
    EXPECT_EQ(a.ops_executed, b.ops_executed) << EngineKindToString(engine);
    EXPECT_EQ(a.aborts, b.aborts) << EngineKindToString(engine);
  }
}

TEST(EngineKindTest, Names) {
  EXPECT_EQ(EngineKindToString(EngineKind::kTimestampOrdering), "TO-ESR");
  EXPECT_EQ(EngineKindToString(EngineKind::kTwoPhaseLocking), "2PL-ESR");
  EXPECT_EQ(EngineKindToString(EngineKind::kMultiversion), "MVTO");
  EXPECT_EQ(EngineKindToString(EngineKind::kSharded), "TO-SHARDED");
}

}  // namespace
}  // namespace esr
