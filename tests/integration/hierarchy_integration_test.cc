// Full-stack tests of hierarchical inconsistency bounds: the banking
// hierarchy of Fig. 1 running on the public API, and hierarchical
// workloads running on the simulated cluster.

#include <gtest/gtest.h>

#include "api/database.h"
#include "sim/cluster.h"

namespace esr {
namespace {

// overall -> {company, preferred, personal}; company -> {com1, com2};
// objects: 0,1 in com1; 2,3 in com2; 4,5 preferred; 6,7 personal.
struct Bank {
  Database db;
  GroupId company, preferred, personal, com1, com2;

  static ServerOptions MakeOptions() {
    ServerOptions opt;
    opt.store.num_objects = 8;
    opt.store.seed = 5;
    return opt;
  }

  Bank() : db(MakeOptions()) {
    GroupSchema& schema = db.schema();
    company = *schema.AddGroup("company", kRootGroup);
    preferred = *schema.AddGroup("preferred", kRootGroup);
    personal = *schema.AddGroup("personal", kRootGroup);
    com1 = *schema.AddGroup("com1", company);
    com2 = *schema.AddGroup("com2", company);
    EXPECT_TRUE(schema.AssignObject(0, com1).ok());
    EXPECT_TRUE(schema.AssignObject(1, com1).ok());
    EXPECT_TRUE(schema.AssignObject(2, com2).ok());
    EXPECT_TRUE(schema.AssignObject(3, com2).ok());
    EXPECT_TRUE(schema.AssignObject(4, preferred).ok());
    EXPECT_TRUE(schema.AssignObject(5, preferred).ok());
    EXPECT_TRUE(schema.AssignObject(6, personal).ok());
    EXPECT_TRUE(schema.AssignObject(7, personal).ok());
    for (ObjectId id = 0; id < 8; ++id) {
      EXPECT_TRUE(db.LoadValue(id, 1000).ok());
    }
  }

  // Applies an uncommitted delta to `object` from a fresh session and
  // returns the handle (caller commits or aborts).
  TxnHandle PendingDelta(SiteId site, ObjectId object, Value delta) {
    Session session = db.CreateSession(site);
    TxnHandle txn = session.Begin(TxnType::kUpdate, BoundSpec());
    const OpResult r = txn.Read(object);
    EXPECT_EQ(r.kind, OpResult::Kind::kOk);
    EXPECT_EQ(txn.Write(object, r.value + delta).kind, OpResult::Kind::kOk);
    return txn;
  }
};

TEST(BankHierarchyTest, OverallEstimateWithPerCategoryBounds) {
  Bank bank;
  // Pending updates: +300 in com1, +200 in preferred.
  TxnHandle u1 = bank.PendingDelta(10, 0, 300);
  TxnHandle u2 = bank.PendingDelta(11, 4, 200);

  // The paper's query declaration: overall bound plus per-category and
  // per-subgroup limits.
  BoundSpec bounds;
  bounds.SetTransactionLimit(10'000);
  bounds.SetLimit(bank.company, 4'000);
  bounds.SetLimit(bank.preferred, 3'000);
  bounds.SetLimit(bank.personal, 3'000);
  bounds.SetLimit(bank.com1, 350);

  Session session = bank.db.CreateSession(1);
  const auto result = session.AggregateQuery(
      {0, 1, 2, 3, 4, 5, 6, 7}, AggregateKind::kSum, bounds);
  ASSERT_TRUE(result.ok());
  // The query viewed both uncommitted deltas.
  EXPECT_EQ(result->outcome.result, 8000.0 + 300.0 + 200.0);
  EXPECT_EQ(result->imported, 500.0);
  ASSERT_TRUE(u1.Commit().ok());
  ASSERT_TRUE(u2.Commit().ok());
}

TEST(BankHierarchyTest, SubgroupLimitRejectsLocalizedInconsistency) {
  Bank bank;
  TxnHandle u1 = bank.PendingDelta(10, 0, 300);  // com1 inconsistency 300

  BoundSpec bounds;
  bounds.SetTransactionLimit(10'000);
  bounds.SetLimit(bank.com1, 250);  // tighter than the pending delta

  Session session = bank.db.CreateSession(1);
  const auto result =
      session.AggregateQuery({0, 1, 2, 3, 4, 5, 6, 7}, AggregateKind::kSum,
                             bounds, /*max_restarts=*/1);
  EXPECT_FALSE(result.ok());
  ASSERT_TRUE(u1.Abort().ok());
}

TEST(BankHierarchyTest, CategoryBudgetSharedAcrossSubgroups) {
  Bank bank;
  TxnHandle u1 = bank.PendingDelta(10, 0, 300);  // com1
  TxnHandle u2 = bank.PendingDelta(11, 2, 300);  // com2

  // Each subgroup alone fits (350), but company (500) cannot absorb both.
  BoundSpec bounds;
  bounds.SetTransactionLimit(10'000);
  bounds.SetLimit(bank.com1, 350);
  bounds.SetLimit(bank.com2, 350);
  bounds.SetLimit(bank.company, 500);

  Session session = bank.db.CreateSession(1);
  const auto rejected =
      session.AggregateQuery({0, 1, 2, 3}, AggregateKind::kSum, bounds,
                             /*max_restarts=*/1);
  EXPECT_FALSE(rejected.ok());

  // Raising only the company budget admits the same query.
  bounds.SetLimit(bank.company, 700);
  const auto admitted =
      session.AggregateQuery({0, 1, 2, 3}, AggregateKind::kSum, bounds,
                             /*max_restarts=*/1);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->imported, 600.0);
  ASSERT_TRUE(u1.Commit().ok());
  ASSERT_TRUE(u2.Commit().ok());
}

TEST(BankHierarchyTest, InconsistencyCheckedBottomUp) {
  // When both a subgroup and the overall limit would reject, the leafmost
  // violation is reported first (Sec. 5.3.1's bottom-up control flow) —
  // observable through the abort-reason counters.
  Bank bank;
  TxnHandle u1 = bank.PendingDelta(10, 0, 300);
  BoundSpec bounds;
  bounds.SetTransactionLimit(100);  // would also reject
  bounds.SetLimit(bank.com1, 50);   // but com1 rejects first
  Session session = bank.db.CreateSession(1);
  const auto result = session.AggregateQuery({0}, AggregateKind::kSum,
                                             bounds, /*max_restarts=*/0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(bank.db.metrics().CounterValue("abort.group_bound"), 1);
  EXPECT_EQ(bank.db.metrics().CounterValue("abort.transaction_bound"), 0);
  ASSERT_TRUE(u1.Abort().ok());
}

TEST(BankHierarchyTest, PerLevelBoundCheckCountersExposeControlFlow) {
  // The bound_check.level<N>.admit|reject counters make the bottom-up
  // control loop of Sec. 5.3.1 observable: an admitted charge counts one
  // admit per level on the leaf-to-root path, a rejected charge counts a
  // single reject at the leafmost violating level and nothing above it.
  Bank bank;
  TxnHandle u1 = bank.PendingDelta(10, 0, 300);  // com1, depth 2

  BoundSpec loose;
  loose.SetTransactionLimit(10'000);
  loose.SetLimit(bank.com1, 400);
  Session session = bank.db.CreateSession(1);
  const auto admitted = session.AggregateQuery({0}, AggregateKind::kSum,
                                               loose, /*max_restarts=*/0);
  ASSERT_TRUE(admitted.ok());
  const MetricRegistry& m = bank.db.metrics();
  EXPECT_EQ(m.CounterValue("bound_check.level2.admit"), 1);
  EXPECT_EQ(m.CounterValue("bound_check.level1.admit"), 1);
  EXPECT_EQ(m.CounterValue("bound_check.level0.admit"), 1);
  EXPECT_EQ(m.CounterValue("bound_check.level2.reject"), 0);

  // Same read under a tight com1 limit: the depth-2 check rejects and
  // short-circuits, so the level-1/level-0 counters do not move.
  BoundSpec tight;
  tight.SetTransactionLimit(10'000);
  tight.SetLimit(bank.com1, 50);
  const auto rejected = session.AggregateQuery({0}, AggregateKind::kSum,
                                               tight, /*max_restarts=*/0);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(m.CounterValue("bound_check.level2.reject"), 1);
  EXPECT_EQ(m.CounterValue("bound_check.level2.admit"), 1);
  EXPECT_EQ(m.CounterValue("bound_check.level1.admit"), 1);
  EXPECT_EQ(m.CounterValue("bound_check.level0.admit"), 1);
  ASSERT_TRUE(u1.Abort().ok());
}

TEST(BankHierarchyTest, WeightedGroupsScaleCharges) {
  Bank bank;
  ASSERT_TRUE(bank.db.schema().SetWeight(bank.preferred, 3.0).ok());
  TxnHandle u1 = bank.PendingDelta(10, 4, 100);  // preferred, d = 100

  // Charge at 'preferred' is 100 * 3 = 300 > 250 even though the raw d
  // fits comfortably.
  BoundSpec bounds;
  bounds.SetTransactionLimit(10'000);
  bounds.SetLimit(bank.preferred, 250);
  Session session = bank.db.CreateSession(1);
  const auto rejected = session.AggregateQuery({4}, AggregateKind::kSum,
                                               bounds, /*max_restarts=*/0);
  EXPECT_FALSE(rejected.ok());

  bounds.SetLimit(bank.preferred, 300);
  const auto admitted = session.AggregateQuery({4}, AggregateKind::kSum,
                                               bounds, /*max_restarts=*/0);
  EXPECT_TRUE(admitted.ok());
  ASSERT_TRUE(u1.Commit().ok());
}

TEST(HierarchicalClusterTest, GroupLimitsThrottleAdmittedInconsistency) {
  // Run the full simulated cluster with a 4-group hierarchy over the hot
  // set and group limits at a quarter of the TIL; queries must still make
  // progress and never import more than the TIL.
  ClusterOptions opt;
  opt.mpl = 4;
  opt.warmup_s = 2.0;
  opt.measure_s = 20.0;
  opt.seed = 17;
  opt.workload.til = 20'000;
  opt.workload.tel = 10'000;

  ClusterOptions grouped = opt;
  Cluster cluster(grouped);
  GroupSchema& schema = cluster.server().schema();
  std::vector<GroupId> groups;
  for (int g = 0; g < 4; ++g) {
    groups.push_back(*schema.AddGroup("g" + std::to_string(g), kRootGroup));
  }
  for (ObjectId id = 0; id < 1000; ++id) {
    ASSERT_TRUE(schema.AssignObject(id, groups[id % 4]).ok());
  }
  // NOTE: the workload's bound factory was fixed at construction; the
  // default factory emits transaction-only bounds, so group limits here
  // come from a second cluster below.
  const SimResult baseline = cluster.Run();
  ASSERT_GT(baseline.committed_query, 0);
  EXPECT_LE(baseline.avg_import_per_query(), 20'000.0);

  // Same run but with per-group limits declared by every query.
  ClusterOptions strict = opt;
  strict.workload.bound_factory = [&groups](TxnType type) {
    if (type == TxnType::kUpdate) return BoundSpec::TransactionOnly(10'000);
    BoundSpec bounds;
    bounds.SetTransactionLimit(20'000);
    for (const GroupId g : groups) bounds.SetLimit(g, 2'000);
    return bounds;
  };
  Cluster strict_cluster(strict);
  GroupSchema& strict_schema = strict_cluster.server().schema();
  std::vector<GroupId> strict_groups;
  for (int g = 0; g < 4; ++g) {
    strict_groups.push_back(
        *strict_schema.AddGroup("g" + std::to_string(g), kRootGroup));
  }
  for (ObjectId id = 0; id < 1000; ++id) {
    ASSERT_TRUE(strict_schema.AssignObject(id, strict_groups[id % 4]).ok());
  }
  const SimResult limited = strict_cluster.Run();
  ASSERT_GT(limited.committed_query, 0);
  // Group limits cap the import at 4 * 2000 even though TIL allows more.
  EXPECT_LE(limited.avg_import_per_query(), 8'000.0);
  // Tighter control admits less inconsistency on average.
  EXPECT_LE(limited.avg_import_per_query(),
            baseline.avg_import_per_query() + 1e-9);
}

}  // namespace
}  // namespace esr
