// The engine outside the simulator: real std::thread clients hammering
// one Server through the public API. Checks thread safety, progress
// (no deadlock — the TO wait graph is acyclic), shadow recovery, and the
// ESR guarantee under true concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "api/database.h"
#include "common/random.h"

namespace esr {
namespace {

constexpr size_t kObjects = 16;
constexpr Value kInitialValue = 10'000;

ServerOptions MakeOptions() {
  ServerOptions opt;
  opt.store.num_objects = kObjects;
  opt.store.seed = 9;
  return opt;
}

class ThreadedTest : public ::testing::Test {
 protected:
  ThreadedTest() : db_(MakeOptions()) {
    for (ObjectId id = 0; id < kObjects; ++id) {
      EXPECT_TRUE(db_.LoadValue(id, kInitialValue).ok());
    }
  }

  Database db_;
};

TEST_F(ThreadedTest, ConcurrentTransfersPreserveTotal) {
  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 200;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &committed] {
      Session session = db_.CreateSession(static_cast<SiteId>(t + 1));
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const ObjectId src = static_cast<ObjectId>(
            rng.UniformInt(0, kObjects - 1));
        ObjectId dst =
            static_cast<ObjectId>(rng.UniformInt(0, kObjects - 1));
        if (dst == src) dst = (dst + 1) % kObjects;
        const Value amount = rng.UniformInt(1, 50);
        const Status status = session.RunUpdate(
            [&](TxnHandle& txn) -> Status {
              const OpResult a = txn.Read(src);
              if (!a.ok()) return Status::Aborted("src");
              const OpResult b = txn.Read(dst);
              if (!b.ok()) return Status::Aborted("dst");
              if (!txn.Write(src, a.value - amount).ok()) {
                return Status::Aborted("wsrc");
              }
              if (!txn.Write(dst, b.value + amount).ok()) {
                return Status::Aborted("wdst");
              }
              return Status::OK();
            },
            BoundSpec::TransactionOnly(0), /*max_restarts=*/100000);
        if (status.ok()) ++committed;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(committed.load(), kThreads * kTransfersPerThread);
  Value total = 0;
  for (ObjectId id = 0; id < kObjects; ++id) {
    total += *db_.PeekValue(id);
    EXPECT_FALSE(db_.server().store().Get(id).has_uncommitted_write());
  }
  EXPECT_EQ(total, static_cast<Value>(kObjects) * kInitialValue);
}

TEST_F(ThreadedTest, QueriesBoundedWhileTransfersRun) {
  std::atomic<bool> stop{false};
  // Two writer threads run sum-preserving transfers with TEL = 0.
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([this, t, &stop] {
      Session session = db_.CreateSession(static_cast<SiteId>(t + 1));
      Rng rng(static_cast<uint64_t>(t) + 77);
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectId src =
            static_cast<ObjectId>(rng.UniformInt(0, kObjects - 1));
        const ObjectId dst = static_cast<ObjectId>(
            (src + 1 + rng.UniformInt(0, kObjects - 2)) % kObjects);
        const Value amount = rng.UniformInt(1, 100);
        (void)session.RunUpdate(
            [&](TxnHandle& txn) -> Status {
              const OpResult a = txn.Read(src);
              if (!a.ok()) return Status::Aborted("src");
              const OpResult b = txn.Read(dst);
              if (!b.ok()) return Status::Aborted("dst");
              if (!txn.Write(src, a.value - amount).ok()) {
                return Status::Aborted("wsrc");
              }
              if (!txn.Write(dst, b.value + amount).ok()) {
                return Status::Aborted("wdst");
              }
              return Status::OK();
            },
            BoundSpec::TransactionOnly(0), /*max_restarts=*/1000);
      }
    });
  }

  // Reader thread: full-universe ESR sums must stay within TIL of the
  // invariant total (transfers are sum-preserving and consistent).
  constexpr Inconsistency kTil = 2'000.0;
  const Value expected_total = static_cast<Value>(kObjects) * kInitialValue;
  std::vector<ObjectId> all;
  for (ObjectId id = 0; id < kObjects; ++id) all.push_back(id);
  Session reader = db_.CreateSession(42);
  int committed_queries = 0;
  for (int i = 0; i < 50; ++i) {
    const auto result = reader.AggregateQuery(
        all, AggregateKind::kSum, BoundSpec::TransactionOnly(kTil),
        /*max_restarts=*/1000);
    if (!result.ok()) continue;
    ++committed_queries;
    EXPECT_LE(result->imported, kTil);
    EXPECT_LE(std::abs(result->outcome.result -
                       static_cast<double>(expected_total)),
              result->imported + 1e-6)
        << "sum " << result->outcome.result << " imported "
        << result->imported;
  }
  stop.store(true);
  for (auto& thread : writers) thread.join();
  EXPECT_GT(committed_queries, 0);
}

TEST_F(ThreadedTest, ManySessionsUniqueTimestamps) {
  // Sessions on distinct sites never collide even when begun in parallel.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<std::pair<int64_t, uint32_t>> seen;
  std::atomic<bool> duplicate{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &mu, &seen, &duplicate] {
      Session session = db_.CreateSession(static_cast<SiteId>(t + 1));
      for (int i = 0; i < 100; ++i) {
        TxnHandle txn = session.Begin(TxnType::kQuery, BoundSpec());
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!seen.emplace(txn.ts().micros, txn.ts().site).second) {
            duplicate.store(true);
          }
        }
        EXPECT_TRUE(txn.Abort().ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(duplicate.load());
}

}  // namespace
}  // namespace esr
