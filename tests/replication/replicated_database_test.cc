#include "replication/replicated_database.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

struct ReplFixture {
  ReplicatedDatabase db;

  static ReplicationOptions Replication(int replicas = 2,
                                        double delay_ms = 100.0) {
    ReplicationOptions opt;
    opt.num_replicas = replicas;
    opt.propagation_delay_ms = delay_ms;
    return opt;
  }

  static ServerOptions ServerOpts() {
    ServerOptions opt;
    opt.store.num_objects = 16;
    opt.store.seed = 8;
    return opt;
  }

  ReplFixture() : db(Replication(), ServerOpts()) {}

  /// Runs a single-object update on the primary at virtual time `now`.
  void CommitWrite(int64_t ts, ObjectId object, Value value, SimTime now) {
    const TxnId txn = db.Begin(TxnType::kUpdate, Ts(ts), BoundSpec());
    ASSERT_EQ(db.Write(txn, object, value).kind, OpResult::Kind::kOk);
    ASSERT_TRUE(db.Commit(txn, now).ok());
  }
};

TEST(ReplicatedDatabaseTest, ReplicasStartIdenticalToPrimary) {
  ReplFixture f;
  for (ObjectId id = 0; id < 16; ++id) {
    const Value primary = f.db.primary().store().Get(id).value();
    EXPECT_EQ(f.db.PeekReplica(0, id), primary);
    EXPECT_EQ(f.db.PeekReplica(1, id), primary);
    EXPECT_EQ(f.db.DivergenceEstimate(0, id), 0.0);
  }
}

TEST(ReplicatedDatabaseTest, WritesPropagateAfterDelay) {
  ReplFixture f;
  const Value before = f.db.PeekReplica(0, 3);
  f.CommitWrite(10, 3, before + 500, /*now=*/0);
  // Before the delay elapses the replica still has the old value and a
  // non-zero divergence estimate.
  f.db.AdvanceTo(50 * kMicrosPerMilli);
  EXPECT_EQ(f.db.PeekReplica(0, 3), before);
  EXPECT_EQ(f.db.DivergenceEstimate(0, 3), 500.0);
  EXPECT_EQ(f.db.PendingWrites(0), 1u);
  // After the delay it catches up and the estimate returns to zero.
  f.db.AdvanceTo(100 * kMicrosPerMilli);
  EXPECT_EQ(f.db.PeekReplica(0, 3), before + 500);
  EXPECT_EQ(f.db.DivergenceEstimate(0, 3), 0.0);
  EXPECT_EQ(f.db.PendingWrites(0), 0u);
}

TEST(ReplicatedDatabaseTest, AbortedTransactionsNeverPropagate) {
  ReplFixture f;
  const Value before = f.db.PeekReplica(0, 3);
  const TxnId txn = f.db.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.db.Write(txn, 3, before + 500).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.db.Abort(txn).ok());
  f.db.AdvanceTo(1000 * kMicrosPerMilli);
  EXPECT_EQ(f.db.PeekReplica(0, 3), before);
  EXPECT_EQ(f.db.PendingWrites(0), 0u);
}

TEST(ReplicatedDatabaseTest, EstimateAccumulatesAcrossWrites) {
  ReplFixture f;
  const Value before = f.db.PeekReplica(0, 3);
  f.CommitWrite(10, 3, before + 300, 0);
  f.CommitWrite(20, 3, before + 300 - 200, 0);
  // Conservative: |+300| + |-200| = 500 even though the net change is
  // 100 (triangle inequality makes this an upper bound, never an
  // underestimate).
  EXPECT_EQ(f.db.DivergenceEstimate(0, 3), 500.0);
  const auto read = f.db.ReadAtReplica(0, 3, /*budget=*/500.0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->true_divergence, 100.0);
  EXPECT_GE(read->estimated_divergence, read->true_divergence);
}

TEST(ReplicatedDatabaseTest, BoundedReadRejectsWhenEstimateExceedsBudget) {
  ReplFixture f;
  const Value before = f.db.PeekReplica(0, 3);
  f.CommitWrite(10, 3, before + 500, 0);
  EXPECT_EQ(f.db.ReadAtReplica(0, 3, 499.0).status().code(),
            StatusCode::kBoundViolation);
  const auto admitted = f.db.ReadAtReplica(0, 3, 500.0);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->value, before);  // stale but bounded
}

TEST(ReplicatedDatabaseTest, ZeroBudgetRequiresFullSync) {
  ReplFixture f;
  const Value before = f.db.PeekReplica(0, 3);
  f.CommitWrite(10, 3, before + 500, 0);
  EXPECT_FALSE(f.db.ReadAtReplica(0, 3, 0.0).ok());
  f.db.SyncReplica(0);
  const auto read = f.db.ReadAtReplica(0, 3, 0.0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, before + 500);
  EXPECT_EQ(read->true_divergence, 0.0);
}

TEST(ReplicatedDatabaseTest, SumQueryAccumulatesBudget) {
  ReplFixture f;
  const Value v3 = f.db.PeekReplica(0, 3);
  const Value v4 = f.db.PeekReplica(0, 4);
  f.CommitWrite(10, 3, v3 + 300, 0);
  f.CommitWrite(20, 4, v4 + 300, 0);
  // 300 + 300 > 500: the query must be rejected at the second read.
  EXPECT_EQ(f.db.ReplicaSumQuery(0, {3, 4}, 500.0).status().code(),
            StatusCode::kBoundViolation);
  const auto admitted = f.db.ReplicaSumQuery(0, {3, 4}, 600.0);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->estimated_import, 600.0);
  EXPECT_EQ(admitted->sum, static_cast<double>(v3 + v4));  // stale values
}

TEST(ReplicatedDatabaseTest, PropertyEstimateAlwaysDominatesTruth) {
  // Random committed writes, partial propagation at random times: the
  // conservative estimate must never fall below the true divergence, and
  // sync must restore exact agreement.
  ReplFixture f;
  Rng rng(99);
  SimTime now = 0;
  int64_t ts = 1;
  for (int round = 0; round < 200; ++round) {
    const ObjectId object = static_cast<ObjectId>(rng.UniformInt(0, 15));
    const Value current = f.db.primary().store().Get(object).value();
    const Value delta = rng.UniformInt(-400, 400);
    const TxnId txn = f.db.Begin(TxnType::kUpdate, Ts(ts++), BoundSpec());
    ASSERT_EQ(f.db.Write(txn, object, current + delta).kind,
              OpResult::Kind::kOk);
    ASSERT_TRUE(f.db.Commit(txn, now).ok());
    now += rng.UniformInt(0, 40) * kMicrosPerMilli;
    f.db.AdvanceTo(now);

    for (int replica = 0; replica < 2; ++replica) {
      for (ObjectId id = 0; id < 16; ++id) {
        const auto read = f.db.ReadAtReplica(replica, id, kUnbounded);
        ASSERT_TRUE(read.ok());
        EXPECT_GE(read->estimated_divergence + 1e-9,
                  read->true_divergence)
            << "replica " << replica << " object " << id;
      }
    }
  }
  for (int replica = 0; replica < 2; ++replica) {
    f.db.SyncReplica(replica);
    for (ObjectId id = 0; id < 16; ++id) {
      EXPECT_EQ(f.db.PeekReplica(replica, id),
                f.db.primary().store().Get(id).value());
    }
  }
}

TEST(ReplicatedDatabaseTest, ReplicasProgressIndependently) {
  ReplicatedDatabase db(ReplFixture::Replication(3, 100.0),
                        ReplFixture::ServerOpts());
  const Value before = db.PeekReplica(0, 1);
  const TxnId txn = db.Begin(TxnType::kUpdate, Ts(5), BoundSpec());
  ASSERT_EQ(db.Write(txn, 1, before + 100).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(db.Commit(txn, 0).ok());
  db.SyncReplica(1);  // only replica 1 catches up
  EXPECT_EQ(db.PeekReplica(0, 1), before);
  EXPECT_EQ(db.PeekReplica(1, 1), before + 100);
  EXPECT_EQ(db.PeekReplica(2, 1), before);
}

TEST(ReplicatedDatabaseTest, InvalidTargetsRejected) {
  ReplFixture f;
  EXPECT_EQ(f.db.ReadAtReplica(9, 0, 1.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(f.db.ReadAtReplica(0, 999, 1.0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(f.db.ReplicaSumQuery(0, {}, 1.0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace esr
