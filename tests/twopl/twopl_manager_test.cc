#include "twopl/twopl_manager.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace esr {
namespace {

using testing::Ts;

/// Like EngineFixture but running the 2PL engine.
struct TwoPLFixture {
  ObjectStore store;
  GroupSchema schema;
  MetricRegistry metrics;
  TwoPLManager manager;

  explicit TwoPLFixture(size_t num_objects = 10)
      : store(testing::EngineFixture::StoreOptions(num_objects, 20)),
        manager(&store, &schema, &metrics) {
    for (ObjectId id = 0; id < num_objects; ++id) {
      SetValue(id, static_cast<Value>(1000 * (id + 1)));
    }
  }

  void SetValue(ObjectId id, Value v) {
    ObjectRecord& rec = store.Get(id);
    rec.ApplyWrite(UINT64_MAX, Timestamp::Min(), v);
    rec.CommitWrite(UINT64_MAX);
  }
};

TEST(TwoPLManagerTest, SimpleReadWriteCommit) {
  TwoPLFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  const OpResult r = f.manager.Read(u, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1000);
  ASSERT_EQ(f.manager.Write(u, 0, 1500).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  EXPECT_EQ(f.store.Get(0).value(), 1500);
  EXPECT_EQ(f.manager.lock_table().num_locked_objects(), 0u);
}

TEST(TwoPLManagerTest, AbortRestoresShadowAndReleasesLocks) {
  TwoPLFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1500).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Abort(u).ok());
  EXPECT_EQ(f.store.Get(0).value(), 1000);
  EXPECT_EQ(f.manager.lock_table().num_locked_objects(), 0u);
}

TEST(TwoPLManagerTest, WriteWriteConflictWaitDie) {
  TwoPLFixture f;
  const TxnId old_txn = f.manager.Begin(TxnType::kUpdate, Ts(10),
                                        BoundSpec());
  const TxnId young_txn = f.manager.Begin(TxnType::kUpdate, Ts(20),
                                          BoundSpec());
  ASSERT_EQ(f.manager.Write(young_txn, 0, 1500).kind, OpResult::Kind::kOk);
  // Older requester waits.
  const OpResult wait = f.manager.Write(old_txn, 0, 1600);
  EXPECT_EQ(wait.kind, OpResult::Kind::kWait);
  EXPECT_EQ(wait.blocker, young_txn);
  // After the holder commits, the retry succeeds.
  ASSERT_TRUE(f.manager.Commit(young_txn).ok());
  EXPECT_EQ(f.manager.Write(old_txn, 0, 1600).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(old_txn).ok());
  EXPECT_EQ(f.store.Get(0).value(), 1600);
}

TEST(TwoPLManagerTest, YoungerRequesterDies) {
  TwoPLFixture f;
  const TxnId old_txn = f.manager.Begin(TxnType::kUpdate, Ts(10),
                                        BoundSpec());
  const TxnId young_txn = f.manager.Begin(TxnType::kUpdate, Ts(20),
                                          BoundSpec());
  ASSERT_EQ(f.manager.Write(old_txn, 0, 1500).kind, OpResult::Kind::kOk);
  const OpResult died = f.manager.Write(young_txn, 0, 1600);
  EXPECT_EQ(died.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(died.abort_reason, AbortReason::kDeadlockVictim);
  EXPECT_FALSE(f.manager.IsActive(young_txn));
  EXPECT_EQ(f.metrics.CounterValue("abort.deadlock_victim"), 1);
  ASSERT_TRUE(f.manager.Commit(old_txn).ok());
}

TEST(TwoPLManagerTest, SrQueryBlocksBehindWriter) {
  TwoPLFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1500).kind, OpResult::Kind::kOk);
  // SR query (zero TIL) takes S locks: older query waits on the X lock.
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(10),
                                  BoundSpec::TransactionOnly(0));
  EXPECT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kWait);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1500);  // 2PL reads current committed state
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(TwoPLManagerTest, EsrQueryReadsThroughExclusiveLock) {
  TwoPLFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1800).kind, OpResult::Kind::kOk);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(30),
                                  BoundSpec::TransactionOnly(5000));
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1800);  // dirty read, divergence-controlled
  EXPECT_TRUE(r.relaxed);
  EXPECT_EQ(r.inconsistency, 800.0);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TwoPLManagerTest, EsrQueryRespectsTil) {
  TwoPLFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1800).kind, OpResult::Kind::kOk);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(30),
                                  BoundSpec::TransactionOnly(500));
  const OpResult r = f.manager.Read(q, 0);  // d = 800 > TIL 500
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kTransactionBound);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TwoPLManagerTest, EsrQueryRespectsOil) {
  TwoPLFixture f;
  f.store.Get(0).set_oil(500.0);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1800).kind, OpResult::Kind::kOk);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(30),
                                  BoundSpec::TransactionOnly(kUnbounded));
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kObjectBound);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TwoPLManagerTest, WriteExportsToRegisteredEsrReaders) {
  TwoPLFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(10),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);  // proper 1000
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20),
                                  BoundSpec::TransactionOnly(700));
  const OpResult w = f.manager.Write(u, 0, 1600);  // d = 600 <= TEL 700
  ASSERT_EQ(w.kind, OpResult::Kind::kOk);
  EXPECT_EQ(w.inconsistency, 600.0);
  EXPECT_TRUE(w.relaxed);
  // A second write elsewhere with the remaining budget too small fails.
  const TxnId q2 = f.manager.Begin(TxnType::kQuery, Ts(12),
                                   BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q2, 1).kind, OpResult::Kind::kOk);  // proper 2000
  const OpResult w2 = f.manager.Write(u, 1, 2300);  // 600 + 300 > 700
  EXPECT_EQ(w2.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(w2.abort_reason, AbortReason::kTransactionBound);
  // The first write was rolled back.
  EXPECT_EQ(f.store.Get(0).value(), 1000);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  ASSERT_TRUE(f.manager.Commit(q2).ok());
}

TEST(TwoPLManagerTest, WriteRespectsOel) {
  TwoPLFixture f;
  f.store.Get(0).set_oel(500.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(10),
                                  BoundSpec::TransactionOnly(kUnbounded));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  const OpResult w = f.manager.Write(u, 0, 1600);  // d = 600 > OEL 500
  EXPECT_EQ(w.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(w.abort_reason, AbortReason::kObjectBound);
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(TwoPLManagerTest, UpdateReadThenWriteUpgrades) {
  TwoPLFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Read(u, 0).kind, OpResult::Kind::kOk);
  ASSERT_EQ(f.manager.Write(u, 0, 1100).kind, OpResult::Kind::kOk);
  const OpResult own = f.manager.Read(u, 0);
  ASSERT_EQ(own.kind, OpResult::Kind::kOk);
  EXPECT_EQ(own.value, 1100);  // sees its own write
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TwoPLManagerTest, CommitCleansReaderRegistrations) {
  TwoPLFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(10),
                                  BoundSpec::TransactionOnly(1000));
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  EXPECT_EQ(f.store.Get(0).query_readers().size(), 1u);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  EXPECT_EQ(f.store.Get(0).query_readers().size(), 0u);
}

TEST(TwoPLManagerTest, HierarchicalBoundsApplyToLockFreeReads) {
  // The bottom-up group checks of Sec. 5.3.1 are engine-independent:
  // a 2PL ESR query's lock-free read is charged through the same
  // hierarchy.
  TwoPLFixture f;
  const GroupId company = *f.schema.AddGroup("company", kRootGroup);
  ASSERT_TRUE(f.schema.AssignObject(0, company).ok());
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(20), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1800).kind, OpResult::Kind::kOk);

  BoundSpec bounds;
  bounds.SetTransactionLimit(kUnbounded);
  bounds.SetLimit(company, 500.0);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(30), bounds);
  const OpResult r = f.manager.Read(q, 0);  // d = 800 > company 500
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kGroupBound);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(TwoPLManagerDeathTest, QueryWriteIsProgrammerError) {
  TwoPLFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(1), BoundSpec());
  EXPECT_DEATH(f.manager.Write(q, 0, 1), "read-only");
}

}  // namespace
}  // namespace esr
