#include "twopl/lock_table.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

LockTable::Request Req(TxnId txn, int64_t ts) {
  return LockTable::Request{txn, Timestamp{ts, 0}};
}

TEST(LockTableTest, SharedLocksAreCompatible) {
  LockTable locks;
  EXPECT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(locks.AcquireShared(1, Req(11, 110)).outcome,
            LockOutcome::kGranted);
  EXPECT_TRUE(locks.HoldsShared(1, 10));
  EXPECT_TRUE(locks.HoldsShared(1, 11));
}

TEST(LockTableTest, SharedAcquireIsIdempotent) {
  LockTable locks;
  EXPECT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(locks.num_locked_objects(), 1u);
}

TEST(LockTableTest, ExclusiveExcludesEverything) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireExclusive(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  // Older requester waits for the younger holder? No: wait-die says the
  // OLDER (smaller ts) requester waits...
  EXPECT_EQ(locks.AcquireShared(1, Req(11, 50)).outcome, LockOutcome::kWait);
  // ...and the younger requester dies.
  EXPECT_EQ(locks.AcquireShared(1, Req(12, 150)).outcome, LockOutcome::kDie);
  EXPECT_EQ(locks.AcquireExclusive(1, Req(13, 50)).outcome,
            LockOutcome::kWait);
  EXPECT_EQ(locks.AcquireExclusive(1, Req(14, 150)).outcome,
            LockOutcome::kDie);
}

TEST(LockTableTest, ConflictReportsHolder) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireExclusive(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  const LockTable::Grant grant = locks.AcquireShared(1, Req(11, 50));
  EXPECT_EQ(grant.outcome, LockOutcome::kWait);
  EXPECT_EQ(grant.conflict, 10u);
}

TEST(LockTableTest, ExclusiveVsSharedHoldersWaitDie) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(locks.AcquireShared(1, Req(11, 200)).outcome,
            LockOutcome::kGranted);
  // Requester older than both shared holders: wait.
  EXPECT_EQ(locks.AcquireExclusive(1, Req(12, 50)).outcome,
            LockOutcome::kWait);
  // Requester younger than the oldest holder: die (even though it is
  // older than holder 11).
  EXPECT_EQ(locks.AcquireExclusive(1, Req(13, 150)).outcome,
            LockOutcome::kDie);
}

TEST(LockTableTest, UpgradeWhenSoleSharedHolder) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(locks.AcquireExclusive(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_TRUE(locks.HoldsExclusive(1, 10));
  EXPECT_FALSE(locks.HoldsShared(1, 10));
}

TEST(LockTableTest, UpgradeBlockedByOtherSharedHolder) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(locks.AcquireShared(1, Req(11, 200)).outcome,
            LockOutcome::kGranted);
  // Txn 10 (older than 11) waits to upgrade.
  EXPECT_EQ(locks.AcquireExclusive(1, Req(10, 100)).outcome,
            LockOutcome::kWait);
  // Txn 11 (younger than 10) dies trying to upgrade.
  EXPECT_EQ(locks.AcquireExclusive(1, Req(11, 200)).outcome,
            LockOutcome::kDie);
}

TEST(LockTableTest, ExclusiveIsReentrant) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireExclusive(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(locks.AcquireExclusive(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  // Own X lock also covers a shared request.
  EXPECT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
}

TEST(LockTableTest, ReleaseAllFreesEveryObject) {
  LockTable locks;
  ASSERT_EQ(locks.AcquireShared(1, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  ASSERT_EQ(locks.AcquireExclusive(2, Req(10, 100)).outcome,
            LockOutcome::kGranted);
  EXPECT_EQ(locks.num_locked_objects(), 2u);
  locks.ReleaseAll(10);
  EXPECT_EQ(locks.num_locked_objects(), 0u);
  // Previously blocked requests now succeed.
  EXPECT_EQ(locks.AcquireExclusive(2, Req(11, 300)).outcome,
            LockOutcome::kGranted);
}

TEST(LockTableTest, ReleaseOfUnknownTxnIsNoOp) {
  LockTable locks;
  locks.ReleaseAll(99);
  EXPECT_EQ(locks.num_locked_objects(), 0u);
}

TEST(LockTableTest, WaitEdgesAlwaysPointOldToYoung) {
  // Structural deadlock-freedom of wait-die: a requester may only WAIT
  // for a younger holder, so wait cycles cannot form.
  LockTable locks;
  ASSERT_EQ(locks.AcquireExclusive(1, Req(20, 200)).outcome,
            LockOutcome::kGranted);
  for (int64_t requester_ts : {50, 150, 199, 201, 250}) {
    const LockTable::Grant grant =
        locks.AcquireExclusive(1, Req(99, requester_ts));
    if (grant.outcome == LockOutcome::kWait) {
      EXPECT_LT(requester_ts, 200);
    } else {
      EXPECT_EQ(grant.outcome, LockOutcome::kDie);
      EXPECT_GE(requester_ts, 200);
    }
  }
}

}  // namespace
}  // namespace esr
