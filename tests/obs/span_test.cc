// Causal-span machinery: nesting/parenting rules, instant attachment,
// cross-callback spans, and the validity of the exported Chrome trace
// structure (balanced sync pairs, id-matched async pairs, flow arrows).

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "testing/minimal_json.h"

namespace esr {
namespace {

using testing::JsonValue;
using testing::ParseJson;

#ifndef ESR_TRACE_DISABLED

// Every test runs against the process-global recorder (that is what the
// RAII helpers talk to), so isolate each one with a reset.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalTrace().Reset();
    GlobalTrace().set_enabled(true);
  }
  void TearDown() override {
    GlobalTrace().set_enabled(false);
    GlobalTrace().Reset();
  }
};

TEST_F(SpanTest, NestedSpansParentAutomatically) {
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer(SpanKind::kOp, /*txn=*/1, /*site=*/1, /*target=*/10);
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(CurrentSpan(), outer_id);
    {
      TraceSpan inner(SpanKind::kBoundWalk, 1, 1, /*target=*/3);
      inner_id = inner.id();
      EXPECT_EQ(CurrentSpan(), inner_id);
    }
    EXPECT_EQ(CurrentSpan(), outer_id);
  }
  EXPECT_EQ(CurrentSpan(), 0u);

  const std::vector<TraceEvent> events = GlobalTrace().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, TraceEventType::kSpanBegin);
  EXPECT_EQ(events[0].span, outer_id);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].type, TraceEventType::kSpanBegin);
  EXPECT_EQ(events[1].span, inner_id);
  EXPECT_EQ(events[1].parent, outer_id);
  // Strict LIFO: the inner span closes before the outer.
  EXPECT_EQ(events[2].type, TraceEventType::kSpanEnd);
  EXPECT_EQ(events[2].span, inner_id);
  EXPECT_EQ(events[3].type, TraceEventType::kSpanEnd);
  EXPECT_EQ(events[3].span, outer_id);
}

TEST_F(SpanTest, InstantsAutoAttachToEnclosingSpan) {
  uint64_t walk_id = 0;
  {
    TraceSpan walk(SpanKind::kBoundWalk, 2, 1, /*target=*/5);
    walk_id = walk.id();
    ESR_TRACE_EVENT(TraceEvent::BoundCheck(2, 1, /*level=*/1, /*group=*/5,
                                           /*charged=*/10.0, /*limit=*/50.0,
                                           /*admitted=*/true));
    // An explicit span is never overwritten by the stack.
    ESR_TRACE_EVENT(WithSpan(TraceEvent::ImportCharge(2, 1, 7, 10.0), 999));
  }
  ESR_TRACE_EVENT(TraceEvent::CommitTxn(2, 1));

  const std::vector<TraceEvent> events = GlobalTrace().Snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[1].type, TraceEventType::kBoundCheck);
  EXPECT_EQ(events[1].span, walk_id);
  EXPECT_EQ(events[2].type, TraceEventType::kImportCharge);
  EXPECT_EQ(events[2].span, 999u);
  // No span open: the instant stays unattached.
  EXPECT_EQ(events[4].type, TraceEventType::kCommit);
  EXPECT_EQ(events[4].span, 0u);
}

TEST_F(SpanTest, FallbackParentAppliesOnlyWhenStackIsEmpty) {
  {
    TraceSpan orphan(SpanKind::kOp, 1, 1, /*target=*/0,
                     /*fallback_parent=*/77);
    TraceSpan nested(SpanKind::kBoundWalk, 1, 1, /*target=*/0,
                     /*fallback_parent=*/88);
  }
  const std::vector<TraceEvent> events = GlobalTrace().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].parent, 77u);  // empty stack: fallback wins
  EXPECT_EQ(events[1].parent, events[0].span);  // stack beats fallback
}

TEST_F(SpanTest, BeginEndSpanCrossesCallbacksWithoutTouchingTheStack) {
  // The simulator's RPC spans outlive the callback that opened them, so
  // BeginSpan must not leave anything on the thread's stack.
  const uint64_t rpc = BeginSpan(SpanKind::kRpc, 3, 2, /*target=*/9,
                                 /*parent=*/42);
  ASSERT_NE(rpc, 0u);
  EXPECT_EQ(CurrentSpan(), 0u);

  // A later callback re-establishes it around the server call.
  {
    ScopedSpanParent reestablish(rpc);
    EXPECT_EQ(CurrentSpan(), rpc);
    TraceSpan op(SpanKind::kOp, 3, 2, /*target=*/9);
    (void)op;
  }
  EXPECT_EQ(CurrentSpan(), 0u);
  EndSpan(SpanKind::kRpc, rpc, 3, 2);

  const std::vector<TraceEvent> events = GlobalTrace().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, TraceEventType::kSpanBegin);
  EXPECT_EQ(events[0].parent, 42u);
  EXPECT_EQ(events[1].type, TraceEventType::kSpanBegin);
  EXPECT_EQ(events[1].parent, rpc);  // op parented to the re-established rpc
  EXPECT_EQ(events[3].type, TraceEventType::kSpanEnd);
  EXPECT_EQ(events[3].span, rpc);
}

TEST_F(SpanTest, DisabledRecorderMakesSpansFree) {
  GlobalTrace().set_enabled(false);
  const uint64_t id = BeginSpan(SpanKind::kRpc, 1, 1);
  EXPECT_EQ(id, 0u);
  EndSpan(SpanKind::kRpc, id, 1, 1);
  {
    TraceSpan span(SpanKind::kOp, 1, 1);
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(CurrentSpan(), 0u);  // nothing pushed
  }
  EXPECT_EQ(GlobalTrace().recorded(), 0u);
}

TEST_F(SpanTest, SpanIdsAreUniqueAndResetRestartsThem) {
  const uint64_t a = BeginSpan(SpanKind::kOp, 1, 1);
  const uint64_t b = BeginSpan(SpanKind::kOp, 1, 1);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  GlobalTrace().Reset();
  const uint64_t c = BeginSpan(SpanKind::kOp, 1, 1);
  EXPECT_EQ(c, a);  // id allocation restarted from 1
}

// -- Exported structure ---------------------------------------------------

TEST_F(SpanTest, ExportedSyncSpansAreBalancedAndOrdered) {
  {
    TraceSpan rpc(SpanKind::kRpc, 4, 1, /*target=*/11);
    TraceSpan op(SpanKind::kOp, 4, 1, /*target=*/11);
  }
  std::ostringstream out;
  GlobalTrace().ExportChromeTrace(out);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 4u);

  // Per-name B/E balance with B strictly first, per Chrome's LIFO rule.
  std::map<std::string, int> depth;
  for (const JsonValue& e : events->array) {
    const std::string name = e.Find("name")->string;
    const std::string ph = e.Find("ph")->string;
    ASSERT_TRUE(ph == "B" || ph == "E") << ph;
    depth[name] += ph == "B" ? 1 : -1;
    EXPECT_GE(depth[name], 0) << "E before B for " << name;
  }
  for (const auto& [name, d] : depth) EXPECT_EQ(d, 0) << name;

  // Begin events carry the causal linkage for offline consumers.
  const JsonValue* rpc_args = events->array[0].Find("args");
  ASSERT_NE(rpc_args, nullptr);
  ASSERT_NE(rpc_args->Find("span"), nullptr);
  ASSERT_NE(rpc_args->Find("parent"), nullptr);
  const JsonValue* op_args = events->array[1].Find("args");
  ASSERT_NE(op_args, nullptr);
  EXPECT_EQ(op_args->Find("parent")->number,
            rpc_args->Find("span")->number);
}

TEST_F(SpanTest, TxnSpansExportAsIdMatchedAsyncPairs) {
  const uint64_t txn_span = BeginSpan(SpanKind::kTxn, 5, 2);
  {
    // The engine records the txn span's end while the commit span is
    // still open — legal only because txn pairs are async ("b"/"e").
    TraceSpan commit(SpanKind::kCommit, 5, 2, 0, txn_span);
    EndSpan(SpanKind::kTxn, txn_span, 5, 2);
  }
  std::ostringstream out;
  GlobalTrace().ExportChromeTrace(out);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 4u);

  const JsonValue& txn_b = events->array[0];
  EXPECT_EQ(txn_b.Find("name")->string, "txn");
  EXPECT_EQ(txn_b.Find("ph")->string, "b");
  EXPECT_EQ(txn_b.Find("cat")->string, "txn");
  const JsonValue& txn_e = events->array[2];
  EXPECT_EQ(txn_e.Find("ph")->string, "e");
  // Async pairs match by id, not stack position.
  ASSERT_NE(txn_b.Find("id"), nullptr);
  ASSERT_NE(txn_e.Find("id"), nullptr);
  EXPECT_EQ(txn_b.Find("id")->number, txn_e.Find("id")->number);
}

TEST_F(SpanTest, ConflictFlowArrowsPairByIdAndBindToSliceEnds) {
  // Waiter txn 6 anchors a flow at its op (id = the writer's TxnId 2);
  // the writer's teardown closes the arrow with its own id.
  GlobalTrace().Record(
      TraceEvent::Flow(TraceEventType::kFlowBegin, /*flow=*/2, /*txn=*/6,
                       /*site=*/1));
  GlobalTrace().Record(
      TraceEvent::Flow(TraceEventType::kFlowEnd, /*flow=*/2, /*txn=*/2,
                       /*site=*/1));
  std::ostringstream out;
  GlobalTrace().ExportChromeTrace(out);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue& s = events->array[0];
  EXPECT_EQ(s.Find("ph")->string, "s");
  EXPECT_EQ(s.Find("name")->string, "conflict");
  EXPECT_EQ(s.Find("tid")->number, 6.0);
  const JsonValue& f = events->array[1];
  EXPECT_EQ(f.Find("ph")->string, "f");
  EXPECT_EQ(f.Find("tid")->number, 2.0);
  ASSERT_NE(f.Find("bp"), nullptr);
  EXPECT_EQ(f.Find("bp")->string, "e");
  EXPECT_EQ(s.Find("id")->number, f.Find("id")->number);
}

#endif  // !ESR_TRACE_DISABLED

}  // namespace
}  // namespace esr
