// Wall-clock profiler (obs/profile.h): contention-site accounting and
// blocked-by attribution, phase self-time nesting, the ProfiledMutex
// fast/contended paths, gauge/histogram export, and the JSON writer.
//
// ContentionSite and the JSON writer are probe-independent and tested in
// every build. The probe-driven pieces (ScopedPhaseTimer, ProfiledMutex)
// route through GlobalProfiler() and fold to no-ops under
// ESR_DISABLE_TRACING, so those tests are compiled out with them.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "obs/json_value.h"

namespace esr {
namespace {

TEST(ContentionSiteTest, CountsAcquisitionsWaitsAndConflicts) {
  ContentionSite site("test.site");
  for (int i = 0; i < 10; ++i) site.RecordAcquisition();
  site.RecordWait(2000000, /*holder=*/7);  // 2 ms
  site.RecordWait(1000000, /*holder=*/7);
  site.RecordConflict(/*holder=*/9);

  const ContentionSite::Snapshot s = site.TakeSnapshot();
  EXPECT_EQ(s.name, "test.site");
  EXPECT_EQ(s.acquisitions, 10u);
  EXPECT_EQ(s.contended, 2u);
  EXPECT_EQ(s.conflicts, 1u);
  EXPECT_EQ(s.total_wait_ns, 3000000u);
  EXPECT_EQ(s.max_wait_ns, 2000000u);
}

TEST(ContentionSiteTest, BlockersRankedByTotalWaitInflicted) {
  ContentionSite site("test.blockers");
  site.RecordWait(1000000, 1);
  site.RecordWait(5000000, 2);  // txn 2 inflicted the most wait
  site.RecordWait(500000, 1);
  site.RecordConflict(3);  // untimed: counted but no wait time

  const ContentionSite::Snapshot s = site.TakeSnapshot();
  ASSERT_EQ(s.blockers.size(), 3u);
  EXPECT_EQ(s.blockers[0].txn, 2u);
  EXPECT_EQ(s.blockers[0].total_wait_ns, 5000000u);
  EXPECT_EQ(s.blockers[1].txn, 1u);
  EXPECT_EQ(s.blockers[1].waits, 2u);
  EXPECT_EQ(s.blockers[2].txn, 3u);
  EXPECT_EQ(s.blockers[2].total_wait_ns, 0u);
}

TEST(ContentionSiteTest, UnknownHolderIsNotBlamed) {
  ContentionSite site("test.unknown");
  site.RecordWait(1000000, kInvalidTxnId);
  const ContentionSite::Snapshot s = site.TakeSnapshot();
  EXPECT_EQ(s.contended, 1u);
  EXPECT_TRUE(s.blockers.empty());
}

TEST(ContentionSiteTest, WaitPercentilesBracketTheSamples) {
  ContentionSite site("test.pct");
  // 90 fast waits (~100 us) and 10 slow ones (~6.5 ms): p50 must sit near
  // the fast mode, p99 near the slow one (log2 buckets, geometric mid).
  for (int i = 0; i < 90; ++i) site.RecordWait(100000, 1);
  for (int i = 0; i < 10; ++i) site.RecordWait(6500000, 1);
  const ContentionSite::Snapshot s = site.TakeSnapshot();
  const double p50 = s.WaitPercentileUs(0.5);
  const double p99 = s.WaitPercentileUs(0.99);
  EXPECT_GT(p50, 50.0);
  EXPECT_LT(p50, 200.0);
  EXPECT_GT(p99, 3000.0);
  EXPECT_LT(p99, 13000.0);
  EXPECT_LE(p50, p99);
}

TEST(ContentionSiteTest, ResetClearsEverything) {
  ContentionSite site("test.reset");
  site.RecordAcquisition();
  site.RecordWait(1000, 5);
  site.Reset();
  const ContentionSite::Snapshot s = site.TakeSnapshot();
  EXPECT_EQ(s.acquisitions, 0u);
  EXPECT_EQ(s.contended, 0u);
  EXPECT_EQ(s.total_wait_ns, 0u);
  EXPECT_TRUE(s.blockers.empty());
}

TEST(ProfilerTest, SiteLookupIsStableAndNamed) {
  Profiler profiler;
  ContentionSite* a = profiler.site("alpha");
  ContentionSite* b = profiler.site("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, profiler.site("alpha"));
  EXPECT_EQ(a->name(), "alpha");
}

TEST(ProfileJsonTest, WritesParseableDocumentWithAllSections) {
  ProfileSnapshot snap;
  snap.threads.resize(1);
  snap.threads[0].lane = 3;
  PhaseSnapshot& lock_wait =
      snap.threads[0].phases[static_cast<size_t>(ProfilePhase::kLockWait)];
  lock_wait.count = 4;
  lock_wait.self_ns = 8000000;  // 8 ms
  for (int i = 0; i < 4; ++i) lock_wait.scope_ms.Record(2.0);
  snap.phases[static_cast<size_t>(ProfilePhase::kLockWait)] = lock_wait;

  ContentionSite site("json.site");
  site.RecordAcquisition();
  site.RecordWait(3000000, 11);
  snap.sites.push_back(site.TakeSnapshot());

  ProfileTxnTotals txn;
  txn.count = 2;
  txn.total_ms = 10.0;
  std::ostringstream out;
  WriteProfileJson(snap, txn, /*enabled=*/true, out);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  const JsonValue* profile = root.Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_DOUBLE_EQ(profile->Find("txn")->NumberOr("count", 0), 2.0);
  EXPECT_DOUBLE_EQ(profile->NumberOr("coverage_ms", 0), 8.0);

  const JsonValue* phases = profile->Find("phases");
  ASSERT_NE(phases, nullptr);
  const JsonValue* lw = phases->Find("lock_wait");
  ASSERT_NE(lw, nullptr);
  EXPECT_DOUBLE_EQ(lw->NumberOr("count", 0), 4.0);
  EXPECT_DOUBLE_EQ(lw->NumberOr("self_ms", 0), 8.0);
  EXPECT_DOUBLE_EQ(lw->NumberOr("frac_of_txn", 0), 0.8);
  EXPECT_DOUBLE_EQ(lw->NumberOr("p50_ms", 0), 2.0);

  const JsonValue* threads = profile->Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_EQ(threads->array.size(), 1u);
  EXPECT_DOUBLE_EQ(threads->array[0].NumberOr("lane", 0), 3.0);

  const JsonValue* sites = profile->Find("sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_EQ(sites->array.size(), 1u);
  const JsonValue& s = sites->array[0];
  EXPECT_EQ(s.Find("name")->string, "json.site");
  EXPECT_DOUBLE_EQ(s.NumberOr("total_wait_ms", 0), 3.0);
  const JsonValue* blockers = s.Find("blockers");
  ASSERT_NE(blockers, nullptr);
  ASSERT_EQ(blockers->array.size(), 1u);
  EXPECT_DOUBLE_EQ(blockers->array[0].NumberOr("txn", 0), 11.0);
}

#ifndef ESR_TRACE_DISABLED

// RAII guard: enables the global profiler on a clean slate and restores
// the disabled default on exit, so probe tests cannot leak state into
// each other (the global profiler is process-wide).
class ScopedGlobalProfiler {
 public:
  ScopedGlobalProfiler() {
    GlobalProfiler().Reset();
    GlobalProfiler().set_enabled(true);
  }
  ~ScopedGlobalProfiler() {
    GlobalProfiler().set_enabled(false);
    GlobalProfiler().Reset();
  }
};

void SpinFor(std::chrono::microseconds d) {
  const int64_t until = ProfileNowNs() + d.count() * 1000;
  while (ProfileNowNs() < until) {
  }
}

TEST(ScopedPhaseTimerTest, SelfTimeNestingSettlesIntoParent) {
  ScopedGlobalProfiler guard;
  {
    ScopedPhaseTimer outer(ProfilePhase::kValidate);
    SpinFor(std::chrono::microseconds(200));
    {
      ScopedPhaseTimer inner(ProfilePhase::kBoundWalk);
      SpinFor(std::chrono::microseconds(200));
    }
    SpinFor(std::chrono::microseconds(200));
  }
  const ProfileSnapshot snap = GlobalProfiler().Snapshot();
  const PhaseSnapshot& validate =
      snap.phases[static_cast<size_t>(ProfilePhase::kValidate)];
  const PhaseSnapshot& walk =
      snap.phases[static_cast<size_t>(ProfilePhase::kBoundWalk)];
  EXPECT_EQ(validate.count, 1u);
  EXPECT_EQ(walk.count, 1u);
  // The child's spin is excluded from the parent's self-time but included
  // in the parent's full-scope duration.
  EXPECT_GE(validate.self_ns, 400000u);
  EXPECT_GE(walk.self_ns, 200000u);
  EXPECT_LT(validate.self_ns, validate.scope_ms.max() * 1e6 + 1.0);
  EXPECT_GE(validate.scope_ms.max(), 0.6);  // >= 600 us total scope
  // Self-times sum to the covered wall-clock: no double counting.
  EXPECT_LE(snap.TotalSelfNs(),
            static_cast<uint64_t>(validate.scope_ms.max() * 1e6) + 200000u);
}

TEST(ScopedPhaseTimerTest, DisabledProfilerRecordsNothing) {
  GlobalProfiler().Reset();
  GlobalProfiler().set_enabled(false);
  {
    ScopedPhaseTimer t(ProfilePhase::kApply);
    SpinFor(std::chrono::microseconds(50));
  }
  const ProfileSnapshot snap = GlobalProfiler().Snapshot();
  EXPECT_EQ(snap.TotalSelfNs(), 0u);
  for (const ThreadProfile& t : snap.threads) {
    EXPECT_EQ(t.phases[static_cast<size_t>(ProfilePhase::kApply)].count, 0u);
  }
}

TEST(ProfiledMutexTest, ContendedLockBlamesThePublishedHolder) {
  ScopedGlobalProfiler guard;
  ProfiledMutex mu("test.profiled_mu");
  std::atomic<bool> held{false};

  std::thread holder([&] {
    mu.lock();
    mu.set_holder(42);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mu.unlock();
  });
  while (!held.load(std::memory_order_acquire)) {
  }
  {
    // Contended path: must wait out the holder's sleep and blame txn 42.
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  holder.join();

  const ProfileSnapshot snap = GlobalProfiler().Snapshot();
  const ContentionSite::Snapshot* site = nullptr;
  for (const auto& s : snap.sites) {
    if (s.name == "test.profiled_mu") site = &s;
  }
  ASSERT_NE(site, nullptr);
  EXPECT_GE(site->acquisitions, 1u);
  EXPECT_GE(site->contended, 1u);
  EXPECT_GE(site->total_wait_ns, 1000000u);  // waited >= 1 ms of the 20
  ASSERT_FALSE(site->blockers.empty());
  EXPECT_EQ(site->blockers[0].txn, 42u);
}

TEST(ProfilerTest, SnapshotKeepsThreadLanesDistinct) {
  ScopedGlobalProfiler guard;
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      ScopedPhaseTimer t(ProfilePhase::kCommit);
      SpinFor(std::chrono::microseconds(100));
    });
  }
  for (std::thread& t : threads) t.join();

  const ProfileSnapshot snap = GlobalProfiler().Snapshot();
  ASSERT_GE(snap.threads.size(), static_cast<size_t>(kThreads));
  uint64_t commits = 0;
  std::vector<uint32_t> lanes;
  for (const ThreadProfile& t : snap.threads) {
    lanes.push_back(t.lane);
    commits += t.phases[static_cast<size_t>(ProfilePhase::kCommit)].count;
  }
  EXPECT_EQ(commits, static_cast<uint64_t>(kThreads));
  std::sort(lanes.begin(), lanes.end());
  EXPECT_EQ(std::unique(lanes.begin(), lanes.end()), lanes.end())
      << "thread lanes must be distinct";
}

TEST(ProfilerTest, ExportsLiveGaugesAndPhaseHistograms) {
  ScopedGlobalProfiler guard;
  {
    ScopedPhaseTimer t(ProfilePhase::kApply);
    SpinFor(std::chrono::microseconds(100));
  }
  GlobalProfiler().site("gauge.site")->RecordAcquisition();
  GlobalProfiler().site("gauge.site")->RecordWait(2000000, 5);

  MetricRegistry reg;
  GlobalProfiler().ExportLiveGauges(&reg);
  const Gauge* count = reg.FindGauge("profile.phase_count.apply");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value(), 1.0);
  const Gauge* self = reg.FindGauge("profile.phase_self_ms.apply");
  ASSERT_NE(self, nullptr);
  EXPECT_GT(self->value(), 0.05);
  const Gauge* wait = reg.FindGauge("profile.site.gauge.site.wait_ms");
  ASSERT_NE(wait, nullptr);
  EXPECT_DOUBLE_EQ(wait->value(), 2.0);

  GlobalProfiler().set_enabled(false);  // quiesce before histogram export
  GlobalProfiler().ExportPhaseHistograms(&reg);
  const Histogram* hist = reg.FindHistogram("profile.phase_ms.apply");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  EXPECT_GT(hist->mean(), 0.05);
}

#endif  // ESR_TRACE_DISABLED

}  // namespace
}  // namespace esr
