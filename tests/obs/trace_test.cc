#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "testing/minimal_json.h"

namespace esr {
namespace {

using testing::JsonValue;
using testing::ParseJson;

TEST(TraceRecorderTest, StartsEmptyAndDisabled) {
  TraceRecorder recorder(/*capacity=*/16);
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.capacity(), 16u);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceRecorderTest, CapturesLifecycleEventsInOrder) {
  TraceRecorder recorder(/*capacity=*/64);
  recorder.Record(TraceEvent::BeginTxn(7, TxnType::kQuery, /*site=*/3));
  recorder.Record(TraceEvent::Op(TraceEventType::kRead, 7, 3, /*object=*/42));
  recorder.Record(TraceEvent::ImportCharge(7, 3, 42, 12.5));
  recorder.Record(TraceEvent::WaitOn(7, 3, /*object=*/43, /*writer=*/5));
  recorder.Record(TraceEvent::CommitTxn(7, 3));

  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].type, TraceEventType::kBegin);
  EXPECT_EQ(events[0].txn, 7u);
  EXPECT_EQ(events[0].site, 3);
  EXPECT_EQ(events[1].type, TraceEventType::kRead);
  EXPECT_EQ(events[1].target, 42u);
  EXPECT_EQ(events[2].type, TraceEventType::kImportCharge);
  EXPECT_DOUBLE_EQ(events[2].charged, 12.5);
  EXPECT_EQ(events[3].type, TraceEventType::kWait);
  EXPECT_EQ(events[3].target, 43u);
  // The blocking writer rides in `parent` for the offline auditor.
  EXPECT_EQ(events[3].parent, 5u);
  EXPECT_EQ(events[4].type, TraceEventType::kCommit);
}

TEST(TraceRecorderTest, BoundCheckEventCarriesHierarchyPayload) {
  TraceRecorder recorder(/*capacity=*/8);
  recorder.Record(TraceEvent::BoundCheck(/*txn=*/9, /*site=*/1, /*level=*/2,
                                         /*group=*/5, /*charged=*/300.0,
                                         /*limit=*/50.0, /*admitted=*/false));
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kBoundCheck);
  EXPECT_EQ(events[0].level, 2);
  EXPECT_EQ(events[0].target, 5u);
  EXPECT_DOUBLE_EQ(events[0].charged, 300.0);
  EXPECT_DOUBLE_EQ(events[0].limit, 50.0);
  EXPECT_EQ(events[0].detail, 0);  // rejected
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestEvents) {
  TraceRecorder recorder(/*capacity=*/4);
  for (TxnId id = 1; id <= 10; ++id) {
    recorder.Record(TraceEvent::CommitTxn(id, /*site=*/0));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the four youngest commits, 7..10.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].txn, 7u + i);
  }
}

TEST(TraceRecorderTest, ResetDropsEventsButKeepsEnabledState) {
  TraceRecorder recorder(/*capacity=*/8);
  recorder.set_enabled(true);
  recorder.Record(TraceEvent::CommitTxn(1, 0));
  recorder.Reset();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.enabled());
}

int64_t CountingClock(void* ctx) {
  auto* next = static_cast<int64_t*>(ctx);
  return ++*next;
}

TEST(TraceRecorderTest, TimeSourceStampsEvents) {
  TraceRecorder recorder(/*capacity=*/8);
  int64_t clock = 100;
  recorder.SetTimeSource(&CountingClock, &clock);
  recorder.Record(TraceEvent::CommitTxn(1, 0));
  recorder.Record(TraceEvent::CommitTxn(2, 0));
  recorder.ClearTimeSource();
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_micros, 101);
  EXPECT_EQ(events[1].ts_micros, 102);
}

TEST(TraceRecorderTest, ScopedTimeSourceRestoresWallClockOnExit) {
  TraceRecorder& global = GlobalTrace();
  global.Reset();
  global.set_enabled(true);
  int64_t clock = 0;
  {
    ScopedTraceTimeSource scoped(&CountingClock, &clock);
    global.Record(TraceEvent::CommitTxn(1, 0));
  }
  global.Record(TraceEvent::CommitTxn(2, 0));
  const std::vector<TraceEvent> events = global.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_micros, 1);
  // Outside the scope the default wall clock stamps far past the counter.
  EXPECT_GT(events[1].ts_micros, 1000);
  global.set_enabled(false);
  global.Reset();
}

TEST(TraceMacroTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& global = GlobalTrace();
  global.Reset();
  global.set_enabled(false);
  int evaluations = 0;
  ESR_TRACE_EVENT(
      (++evaluations, TraceEvent::CommitTxn(/*txn=*/1, /*site=*/0)));
  EXPECT_EQ(global.recorded(), 0u);
  // The macro must not even evaluate the event expression when disabled.
  EXPECT_EQ(evaluations, 0);
}

#ifndef ESR_TRACE_DISABLED
TEST(TraceMacroTest, EnabledRecorderCapturesMacroEvents) {
  TraceRecorder& global = GlobalTrace();
  global.Reset();
  global.set_enabled(true);
  ESR_TRACE_EVENT(TraceEvent::BeginTxn(5, TxnType::kUpdate, /*site=*/2));
  ESR_TRACE_EVENT(TraceEvent::CommitTxn(5, /*site=*/2));
  EXPECT_EQ(global.recorded(), 2u);
  const std::vector<TraceEvent> events = global.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kBegin);
  EXPECT_EQ(events[1].type, TraceEventType::kCommit);
  global.set_enabled(false);
  global.Reset();
}
#endif  // ESR_TRACE_DISABLED

TEST(TraceRecorderTest, ConcurrentRecordLosesNothingWithinCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  TraceRecorder recorder(/*capacity=*/8192);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(TraceEvent::Op(TraceEventType::kWrite,
                                       /*txn=*/static_cast<TxnId>(t + 1),
                                       /*site=*/0,
                                       /*object=*/static_cast<ObjectId>(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.dropped(), 0u);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  std::vector<int> per_txn(kThreads + 1, 0);
  for (const TraceEvent& e : events) {
    ASSERT_GE(e.txn, 1u);
    ASSERT_LE(e.txn, static_cast<TxnId>(kThreads));
    ++per_txn[e.txn];
  }
  for (int t = 1; t <= kThreads; ++t) EXPECT_EQ(per_txn[t], kPerThread);
}

TEST(ChromeTraceExportTest, ProducesValidTraceEventJson) {
  TraceRecorder recorder(/*capacity=*/32);
  recorder.Record(TraceEvent::BeginTxn(11, TxnType::kQuery, /*site=*/2));
  recorder.Record(TraceEvent::Op(TraceEventType::kRead, 11, 2, 7));
  recorder.Record(TraceEvent::BoundCheck(11, 2, /*level=*/1, /*group=*/3,
                                         /*charged=*/25.0, kUnbounded,
                                         /*admitted=*/true));
  recorder.Record(TraceEvent::AbortTxn(11, 2, /*reason=*/2));

  std::ostringstream out;
  recorder.ExportChromeTrace(out);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  // Object form: the event array plus recorder metadata, so consumers can
  // tell whether the capture lost events to ring wraparound.
  ASSERT_TRUE(root.is_object());
  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->Find("recorded"), nullptr);
  EXPECT_EQ(other->Find("recorded")->number, 4.0);
  ASSERT_NE(other->Find("dropped"), nullptr);
  EXPECT_EQ(other->Find("dropped")->number, 0.0);
  ASSERT_NE(other->Find("capacity"), nullptr);
  EXPECT_EQ(other->Find("capacity")->number, 32.0);
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->array.size(), 4u);
  for (const JsonValue& event : trace_events->array) {
    ASSERT_TRUE(event.is_object());
    // The keys Perfetto / about:tracing require of every event.
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    EXPECT_TRUE(event.Find("name")->is_string());
    EXPECT_EQ(event.Find("ph")->string, "i");
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_EQ(event.Find("pid")->number, 2.0);
    EXPECT_EQ(event.Find("tid")->number, 11.0);
  }
  // Unbounded limits must serialize as the -1 sentinel, not bare inf.
  const JsonValue& check = trace_events->array[2];
  const JsonValue* args = check.Find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->Find("limit"), nullptr);
  EXPECT_EQ(args->Find("limit")->number, -1.0);
  ASSERT_NE(args->Find("outcome"), nullptr);
  EXPECT_EQ(args->Find("outcome")->string, "admit");
  // Abort events name their reason.
  const JsonValue* abort_args = trace_events->array[3].Find("args");
  ASSERT_NE(abort_args, nullptr);
  ASSERT_NE(abort_args->Find("reason"), nullptr);
  EXPECT_TRUE(abort_args->Find("reason")->is_string());
}

TEST(ChromeTraceExportTest, ExportToFileRoundTrips) {
  TraceRecorder recorder(/*capacity=*/8);
  recorder.Record(TraceEvent::CommitTxn(3, /*site=*/1));
  const std::string path =
      ::testing::TempDir() + "/esr_trace_test_export.json";
  ASSERT_TRUE(recorder.ExportChromeTraceToFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(buffer.str(), &root, &error)) << error;
  ASSERT_TRUE(root.is_object());
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  EXPECT_EQ(trace_events->array.size(), 1u);
}

TEST(ChromeTraceExportTest, BadPathReturnsError) {
  TraceRecorder recorder(/*capacity=*/8);
  EXPECT_FALSE(
      recorder.ExportChromeTraceToFile("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace esr
