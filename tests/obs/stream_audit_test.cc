// Streaming consistency certification: the online certifier against the
// offline auditor on histories with known verdicts, watermark/lag
// semantics, lossy-capture degradation, recorder observer delivery,
// whole-cluster online==offline equivalence across seeds, and the
// schedule-perturbation violation hunt.

#include "obs/stream_audit.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "esr/limits.h"
#include "obs/audit.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"
#include "sim/cluster.h"

namespace esr {
namespace {

// Event-stream builder with explicit timestamps (the certifier only looks
// at what the events say, never at wall time).
class History {
 public:
  void At(int64_t ts, TraceEvent e) {
    e.ts_micros = ts;
    events_.push_back(e);
  }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

// One bottom-up import walk: group node (level 1), then the transaction
// root (level 0), both admitted.
void ImportWalk(History* h, int64_t ts, TxnId txn, SiteId site,
                uint64_t group, double charge, double group_limit,
                double til) {
  h->At(ts, TraceEvent::BoundCheck(txn, site, /*level=*/1, group, charge,
                                   group_limit, /*admitted=*/true));
  h->At(ts + 1, TraceEvent::BoundCheck(txn, site, /*level=*/0, /*group=*/0,
                                       charge, til, /*admitted=*/true));
}

// The esr_audit --demo-violation history: a buggy engine admits 30 then
// 40 against group 5 (limit 50), so the second walk leaves the node at 70
// while the root check (limit 100) stays honest.
std::vector<TraceEvent> DemoViolationHistory() {
  History h;
  h.At(1000, TraceEvent::BeginTxn(7, TxnType::kQuery, 1));
  ImportWalk(&h, 1011, 7, 1, /*group=*/5, 30.0, /*group_limit=*/50.0,
             /*til=*/100.0);
  ImportWalk(&h, 1021, 7, 1, 5, 40.0, 50.0, 100.0);
  h.At(1100, TraceEvent::CommitTxn(7, 1));
  return h.events();
}

// A clean two-site history: every admitted charge stays within bounds.
std::vector<TraceEvent> CleanTwoSiteHistory() {
  History h;
  h.At(100, TraceEvent::BeginTxn(1, TxnType::kQuery, 1));
  h.At(150, TraceEvent::BeginTxn(2, TxnType::kQuery, 2));
  ImportWalk(&h, 200, 1, 1, /*group=*/3, 10.0, 50.0, 100.0);
  ImportWalk(&h, 250, 2, 2, 3, 15.0, 50.0, 100.0);
  ImportWalk(&h, 300, 1, 1, 3, 20.0, 50.0, 100.0);
  ImportWalk(&h, 350, 2, 2, 4, 30.0, 50.0, 100.0);
  h.At(400, TraceEvent::CommitTxn(1, 1));
  h.At(450, TraceEvent::CommitTxn(2, 2));
  return h.events();
}

StreamCertification StreamOver(const std::vector<TraceEvent>& events,
                               double window_s = 1.0) {
  StreamCertifierOptions options;
  options.window_s = window_s;
  options.log_violations = false;
  StreamCertifier certifier(options);
  for (const TraceEvent& e : events) certifier.Observe(e);
  return certifier.Snapshot();
}

TEST(StreamCertifierTest, DemoHistoryOnlineMatchesOffline) {
  const std::vector<TraceEvent> events = DemoViolationHistory();
  const AuditReport offline = AuditTrace(events);
  ASSERT_EQ(offline.violations.size(), 1u);

  StreamCertifierOptions options;
  options.log_violations = false;
  StreamCertifier certifier(options);
  for (const TraceEvent& e : events) certifier.Observe(e);
  const StreamCertification stream = certifier.Snapshot();

  EXPECT_TRUE(stream.enabled);
  EXPECT_FALSE(stream.certified());
  EXPECT_TRUE(StreamMatchesOffline(offline, stream));
  const BoundViolation& v = stream.violations.front();
  EXPECT_EQ(v.txn, 7u);
  EXPECT_EQ(v.group, 5u);
  EXPECT_EQ(v.level, 1u);
  EXPECT_EQ(v.ts_begin, 1021);
  EXPECT_EQ(v.ts_end, 1100);  // resolved at the commit event, like offline
  EXPECT_DOUBLE_EQ(v.accumulated, 70.0);
  EXPECT_DOUBLE_EQ(v.limit, 50.0);
  ASSERT_EQ(stream.blamed_writers.size(), 1u);
  EXPECT_TRUE(stream.blamed_writers.front().empty());  // no waits captured
}

TEST(StreamCertifierTest, WatermarkFreezesAtViolationWindow) {
  StreamCertifierOptions options;
  options.log_violations = false;
  StreamCertifier certifier(options);
  for (const TraceEvent& e : DemoViolationHistory()) certifier.Observe(e);

  // The violation landed in window [0s, 1s): the watermark freezes at its
  // left edge and never advances past it, however far time runs on.
  certifier.AdvanceTo(5'000'000);
  EXPECT_DOUBLE_EQ(certifier.certified_through_s(), 0.0);
  EXPECT_DOUBLE_EQ(certifier.lag_windows(), 5.0);
  EXPECT_FALSE(certifier.certified());
  EXPECT_EQ(certifier.violation_count(), 1u);

  const StreamCertification snap = certifier.Snapshot();
  EXPECT_EQ(snap.windows_closed, 5u);
  EXPECT_DOUBLE_EQ(snap.certified_through_s, 0.0);
  // The violated node is frozen; the (honest) root node is not.
  bool saw_group = false, saw_root = false;
  for (const NodeCertification& node : snap.nodes) {
    if (node.group == 5) {
      saw_group = true;
      EXPECT_TRUE(node.violated);
      EXPECT_DOUBLE_EQ(node.certified_through_s, 0.0);
    }
    if (node.group == 0) {
      saw_root = true;
      EXPECT_FALSE(node.violated);
      EXPECT_DOUBLE_EQ(node.certified_through_s, 5.0);
    }
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_root);
}

TEST(StreamCertifierTest, WatermarkTracksClosedWindowsOnCleanStream) {
  StreamCertifierOptions options;
  options.log_violations = false;
  StreamCertifier certifier(options);
  // Mid-window: nothing closed yet.
  certifier.AdvanceTo(400'000);
  EXPECT_DOUBLE_EQ(certifier.certified_through_s(), 0.0);
  EXPECT_NEAR(certifier.lag_windows(), 0.4, 1e-9);
  // Heartbeats close windows even without events.
  certifier.AdvanceTo(2'500'000);
  EXPECT_DOUBLE_EQ(certifier.certified_through_s(), 2.0);
  EXPECT_NEAR(certifier.lag_windows(), 0.5, 1e-9);
  // Time never runs backwards.
  certifier.AdvanceTo(1'000'000);
  EXPECT_DOUBLE_EQ(certifier.certified_through_s(), 2.0);
}

TEST(StreamCertifierTest, LostPrefixCeilsCertifiedFrom) {
  StreamCertifierOptions options;
  options.log_violations = false;
  StreamCertifier certifier(options);
  certifier.NoteLostPrefix(/*lost_events=*/137,
                           /*first_retained_ts=*/1'500'000);
  certifier.AdvanceTo(4'000'000);
  const StreamCertification snap = certifier.Snapshot();
  // Window [1s, 2s) was only partially observed: vouch from 2s on.
  EXPECT_DOUBLE_EQ(snap.certified_from_s, 2.0);
  EXPECT_DOUBLE_EQ(snap.certified_through_s, 4.0);
  EXPECT_EQ(snap.lost_prefix_events, 137u);
}

TEST(StreamCertifierTest, ViolationLogNamesNodeWindowAndBlame) {
  CapturingLogSink sink;
  LogSink* previous = SetLogSink(&sink);

  History h;
  h.At(1000, TraceEvent::BeginTxn(9, TxnType::kQuery, 1));
  // The writer it waited on becomes the blamed conflict chain.
  h.At(1005, TraceEvent::WaitOn(9, 1, /*object=*/42, /*writer=*/4));
  ImportWalk(&h, 1011, 9, 1, /*group=*/6, 40.0, 50.0, 100.0);
  ImportWalk(&h, 1021, 9, 1, 6, 30.0, 50.0, 100.0);
  h.At(1100, TraceEvent::CommitTxn(9, 1));

  StreamCertifierOptions options;
  options.source = "unit-test";
  StreamCertifier certifier(options);
  for (const TraceEvent& e : h.events()) certifier.Observe(e);
  SetLogSink(previous);

  ASSERT_EQ(certifier.violation_count(), 1u);
  const StreamCertification snap = certifier.Snapshot();
  ASSERT_EQ(snap.blamed_writers.size(), 1u);
  ASSERT_EQ(snap.blamed_writers.front().size(), 1u);
  EXPECT_EQ(snap.blamed_writers.front().front(), 4u);

  bool found = false;
  for (const CapturingLogSink::Captured& record : sink.records()) {
    if (record.message.find("VIOLATION txn 9") == std::string::npos) continue;
    found = true;
    EXPECT_EQ(record.level, LogLevel::kError);
    EXPECT_NE(record.message.find("unit-test"), std::string::npos);
    EXPECT_NE(record.message.find("group 6"), std::string::npos);
    EXPECT_NE(record.message.find("window [0s, 1s)"), std::string::npos);
    EXPECT_NE(record.message.find("blamed writers: [4]"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(TraceObserverTest, RecorderDeliversEveryRecordUntilCleared) {
  TraceRecorder recorder(/*capacity=*/16);
  size_t seen = 0;
  recorder.SetObserver(
      [](void* ctx, const TraceEvent&) { ++*static_cast<size_t*>(ctx); },
      &seen);
  recorder.Record(TraceEvent::BeginTxn(1, TxnType::kQuery, 1));
  recorder.Record(TraceEvent::CommitTxn(1, 1));
  EXPECT_EQ(seen, 2u);
  recorder.ClearObserver();
  recorder.Record(TraceEvent::BeginTxn(2, TxnType::kQuery, 1));
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(recorder.size(), 3u);  // the ring stored all three regardless
}

// -- Lossy captures --------------------------------------------------------

TEST(LossyCaptureTest, OverflowedRingWarnsAndCertifiesRetainedSuffix) {
  // A small recorder overwhelmed with clean history: the ring wraps, the
  // reader warns, and certification vouches only from the first fully
  // observed window on.
  TraceRecorder recorder(/*capacity=*/64);
  int64_t fake_now = 0;
  recorder.SetTimeSource(
      [](void* ctx) { return *static_cast<int64_t*>(ctx); }, &fake_now);
  for (TxnId txn = 1; txn <= 50; ++txn) {
    const int64_t base = static_cast<int64_t>(txn) * 50'000;
    fake_now = base;
    recorder.Record(TraceEvent::BeginTxn(txn, TxnType::kQuery, 1));
    fake_now = base + 10;
    recorder.Record(TraceEvent::BoundCheck(txn, 1, 1, /*group=*/3, 5.0,
                                           50.0, true));
    fake_now = base + 11;
    recorder.Record(TraceEvent::BoundCheck(txn, 1, 0, 0, 5.0, 100.0, true));
    fake_now = base + 100;
    recorder.Record(TraceEvent::CommitTxn(txn, 1));
  }
  ASSERT_GT(recorder.dropped(), 0u);

  std::ostringstream out;
  recorder.ExportChromeTrace(out);

  CapturingLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  std::vector<TraceEvent> events;
  TraceMetadata metadata;
  const Status status = ReadChromeTrace(out.str(), &events, &metadata);
  SetLogSink(previous);

  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(metadata.dropped, recorder.dropped());
  EXPECT_FALSE(metadata.truncated);
  EXPECT_EQ(events.size(), recorder.size());
  bool warned = false;
  for (const CapturingLogSink::Captured& record : sink.records()) {
    if (record.level == LogLevel::kWarning &&
        record.message.find("ring wraparound") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);

  StreamCertifierOptions options;
  options.log_violations = false;
  StreamCertifier certifier(options);
  certifier.NoteLostPrefix(metadata.dropped, events.front().ts_micros);
  for (const TraceEvent& e : events) certifier.Observe(e);
  const StreamCertification snap = certifier.Snapshot();
  EXPECT_TRUE(snap.certified());
  EXPECT_GT(snap.certified_from_s, 0.0);
  EXPECT_GE(snap.certified_through_s, snap.certified_from_s);
  EXPECT_EQ(snap.lost_prefix_events, metadata.dropped);
}

TEST(LossyCaptureTest, TruncatedFileSalvagesContiguousPrefix) {
  const std::vector<TraceEvent> full = CleanTwoSiteHistory();
  std::ostringstream out;
  WriteChromeTraceEvents(full, out, full.size(), /*dropped=*/0,
                         /*capacity=*/1024);
  const std::string json = out.str();

  // Cut the file mid-write, as a dying process would.
  const std::string cut = json.substr(0, (json.size() * 7) / 10);

  CapturingLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  std::vector<TraceEvent> events;
  TraceMetadata metadata;
  const Status status = ReadChromeTrace(cut, &events, &metadata);
  SetLogSink(previous);

  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(metadata.truncated);
  ASSERT_GT(events.size(), 0u);
  ASSERT_LT(events.size(), full.size());
  // What was salvaged is exactly a prefix of the original stream.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].type, full[i].type) << i;
    EXPECT_EQ(events[i].txn, full[i].txn) << i;
    EXPECT_EQ(events[i].ts_micros, full[i].ts_micros) << i;
  }
  bool warned = false;
  for (const CapturingLogSink::Captured& record : sink.records()) {
    if (record.level == LogLevel::kWarning &&
        record.message.find("truncated") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
  // The salvaged prefix still certifies (all charges were in bounds).
  EXPECT_TRUE(StreamOver(events).certified());
}

// -- Schedule perturbation -------------------------------------------------

std::vector<std::vector<std::pair<TxnId, TraceEventType>>> PerSiteOrder(
    const std::vector<TraceEvent>& events) {
  std::map<SiteId, std::vector<std::pair<TxnId, TraceEventType>>> by_site;
  for (const TraceEvent& e : events) {
    by_site[e.site].emplace_back(e.txn, e.type);
  }
  std::vector<std::vector<std::pair<TxnId, TraceEventType>>> out;
  for (auto& [site, order] : by_site) out.push_back(std::move(order));
  return out;
}

TEST(PerturbScheduleTest, PreservesPerSiteProgramOrder) {
  const std::vector<TraceEvent> base = CleanTwoSiteHistory();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PerturbOptions options;
    options.seed = seed;
    const std::vector<TraceEvent> perturbed = PerturbSchedule(base, options);
    ASSERT_EQ(perturbed.size(), base.size()) << "seed " << seed;
    EXPECT_EQ(PerSiteOrder(perturbed), PerSiteOrder(base)) << "seed " << seed;
    int64_t prev = perturbed.front().ts_micros;
    for (const TraceEvent& e : perturbed) {
      EXPECT_GE(e.ts_micros, prev) << "seed " << seed;
      prev = e.ts_micros;
    }
  }
}

TEST(PerturbScheduleTest, SeedsActuallyReorderAcrossSites) {
  const std::vector<TraceEvent> base = CleanTwoSiteHistory();
  bool any_differs = false;
  for (uint64_t seed = 1; seed <= 8 && !any_differs; ++seed) {
    PerturbOptions options;
    options.seed = seed;
    const std::vector<TraceEvent> perturbed = PerturbSchedule(base, options);
    for (size_t i = 0; i < base.size(); ++i) {
      if (perturbed[i].txn != base[i].txn ||
          perturbed[i].type != base[i].type) {
        any_differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_differs)
      << "8 seeds never moved an event across sites — no hunt coverage";
}

TEST(PerturbHuntTest, CertifiedScheduleHasNoFalsePositives) {
  const PerturbReport report =
      HuntPerturbations(CleanTwoSiteHistory(), /*n=*/16, /*base_seed=*/1,
                        /*window_s=*/1.0);
  EXPECT_EQ(report.schedules, 16u);
  EXPECT_EQ(report.violating, 0u);
  EXPECT_TRUE(report.minimal_schedule.empty());
  for (const PerturbVerdict& verdict : report.verdicts) {
    EXPECT_EQ(verdict.violations, 0u) << "seed " << verdict.seed;
  }
}

TEST(PerturbHuntTest, DemoViolationCaughtUnderEveryPerturbation) {
  const PerturbReport report =
      HuntPerturbations(DemoViolationHistory(), /*n=*/8, /*base_seed=*/1,
                        /*window_s=*/1.0);
  EXPECT_EQ(report.schedules, 8u);
  EXPECT_EQ(report.violating, 8u);
  EXPECT_EQ(report.first_violating_seed, 1u);
  ASSERT_FALSE(report.first_violations.empty());
  EXPECT_EQ(report.first_violations.front().group, 5u);

  // The minimized reproduction is smaller than the schedule and still
  // violates when streamed on its own.
  ASSERT_FALSE(report.minimal_schedule.empty());
  EXPECT_LT(report.minimal_schedule.size(), DemoViolationHistory().size());
  EXPECT_FALSE(StreamOver(report.minimal_schedule).certified());
}

TEST(MinimizeScheduleTest, CertifiedScheduleMinimizesToNothing) {
  EXPECT_TRUE(
      MinimizeViolatingSchedule(CleanTwoSiteHistory(), 1.0).empty());
}

TEST(MinimizeScheduleTest, DemoMinimizesToBoundRelevantPrefix) {
  const std::vector<TraceEvent> minimal =
      MinimizeViolatingSchedule(DemoViolationHistory(), 1.0);
  ASSERT_FALSE(minimal.empty());
  // Begin plus the import-direction bound checks up to the crossing walk:
  // no ops, no commit, no root check after the crossing.
  for (const TraceEvent& e : minimal) {
    EXPECT_TRUE(e.type == TraceEventType::kBegin ||
                e.type == TraceEventType::kBoundCheck)
        << TraceEventTypeToString(e.type);
    EXPECT_EQ(e.txn, 7u);
  }
  EXPECT_FALSE(StreamOver(minimal).certified());
}

// -- Whole-cluster equivalence (needs tracing compiled in) -----------------

#ifndef ESR_TRACE_DISABLED

ClusterOptions CertifyOptions(uint64_t seed) {
  ClusterOptions opt;
  opt.mpl = 3;
  const TransactionLimits limits = LimitsForLevel(EpsilonLevel::kMedium);
  opt.workload.til = limits.til;
  opt.workload.tel = limits.tel;
  opt.warmup_s = 0.5;
  opt.measure_s = 2.0;
  opt.seed = seed;
  opt.certify = true;
  return opt;
}

TEST(ClusterCertifyTest, OnlineVerdictMatchesOfflineAcrossSeeds) {
  const bool was_enabled = GlobalTrace().enabled();
  for (const uint64_t seed : {1ull, 7ull, 23757ull}) {
    const SimResult result = RunCluster(CertifyOptions(seed));
    ASSERT_TRUE(result.certification.enabled) << "seed " << seed;
    EXPECT_TRUE(result.certification.certified()) << "seed " << seed;
    EXPECT_GT(result.certification.walks_replayed, 0u) << "seed " << seed;

    // The run left its whole event stream in the global ring: replay it
    // through the offline auditor and demand the identical verdict.
    ASSERT_EQ(GlobalTrace().dropped(), 0u) << "seed " << seed;
    const std::vector<TraceEvent> events = GlobalTrace().Snapshot();
    ASSERT_EQ(events.size(), result.certification.events_observed)
        << "seed " << seed;
    const AuditReport offline = AuditTrace(events);
    EXPECT_TRUE(StreamMatchesOffline(offline, result.certification))
        << "seed " << seed;
  }
  GlobalTrace().set_enabled(was_enabled);
  GlobalTrace().Reset();
}

TEST(ClusterCertifyTest, SeriesWindowsCarryTheLiveWatermark) {
  ClusterOptions opt = CertifyOptions(7);
  opt.warmup_s = 1.0;
  opt.measure_s = 3.0;
  opt.collect_series = true;
  opt.series_window_s = 1.0;
  const SimResult result = RunCluster(opt);
  GlobalTrace().Reset();

  ASSERT_EQ(result.series.windows.size(), 4u);
  for (size_t i = 0; i < result.series.windows.size(); ++i) {
    // The sampler fires exactly at each window boundary, after the
    // certifier's heartbeat: a healthy run certifies through boundary
    // (i+1) with zero lag.
    EXPECT_DOUBLE_EQ(result.series.windows[i].certified_through_s,
                     static_cast<double>(i + 1))
        << "window " << i;
  }
  EXPECT_DOUBLE_EQ(result.certification.certified_through_s, 4.0);
  EXPECT_DOUBLE_EQ(result.certification.lag_windows, 0.0);
}

TEST(ClusterCertifyTest, CertificationIsObservationallyPure) {
  ClusterOptions plain = CertifyOptions(11);
  plain.certify = false;
  const SimResult without = RunCluster(plain);
  const SimResult with = RunCluster(CertifyOptions(11));
  GlobalTrace().Reset();
  EXPECT_EQ(without.committed, with.committed);
  EXPECT_EQ(without.aborts, with.aborts);
  EXPECT_EQ(without.ops_executed, with.ops_executed);
  EXPECT_EQ(without.inconsistent_ops, with.inconsistent_ops);
  EXPECT_FALSE(without.certification.enabled);
  EXPECT_TRUE(with.certification.enabled);
}

#endif  // ESR_TRACE_DISABLED

}  // namespace
}  // namespace esr
