#include "obs/series.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/metrics.h"

namespace esr {
namespace {

RunSeries RoundTrip(const RunSeries& series) {
  std::ostringstream out;
  WriteSeriesCsv(series, out);
  std::istringstream in(out.str());
  Result<RunSeries> read = ReadSeriesCsv(in);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  return *std::move(read);
}

TEST(SeriesCsvTest, DemoSeriesRoundTripsExactly) {
  const RunSeries demo = BuildDemoSeries(/*with_violation=*/false);
  const RunSeries back = RoundTrip(demo);

  EXPECT_EQ(back.source, demo.source);
  EXPECT_EQ(back.window_s, demo.window_s);
  ASSERT_EQ(back.node_names, demo.node_names);
  ASSERT_EQ(back.windows.size(), demo.windows.size());
  for (size_t i = 0; i < demo.windows.size(); ++i) {
    const SeriesWindow& a = demo.windows[i];
    const SeriesWindow& b = back.windows[i];
    EXPECT_EQ(b.start_s, a.start_s) << "window " << i;
    EXPECT_EQ(b.duration_s, a.duration_s);
    EXPECT_EQ(b.committed, a.committed);
    EXPECT_EQ(b.aborted, a.aborted);
    EXPECT_EQ(b.restarts, a.restarts);
    EXPECT_EQ(b.active_mpl, a.active_mpl);
    EXPECT_EQ(b.mean_op_latency_ms, a.mean_op_latency_ms);
    ASSERT_EQ(b.nodes.size(), a.nodes.size());
    for (size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(b.nodes[n].max_accumulated, a.nodes[n].max_accumulated);
      EXPECT_EQ(b.nodes[n].min_headroom_frac, a.nodes[n].min_headroom_frac);
      EXPECT_EQ(b.nodes[n].limit_at_min, a.nodes[n].limit_at_min);
      EXPECT_EQ(b.nodes[n].charges, a.nodes[n].charges);
    }
  }
}

TEST(SeriesCsvTest, CommasInNamesAreEscapedNotQuoted) {
  RunSeries series;
  series.source = "fig07 mpl=10, til=2";
  series.window_s = 0.5;
  series.node_names = {"a,b"};
  SeriesWindow w;
  w.duration_s = 0.5;
  w.committed = 1;
  SeriesNodeWindow node;
  node.charges = 1;
  node.min_headroom_frac = 0.5;
  w.nodes = {node};
  series.windows.push_back(w);

  const RunSeries back = RoundTrip(series);
  EXPECT_EQ(back.window_s, 0.5);
  EXPECT_EQ(back.source, "fig07 mpl=10_ til=2");
  ASSERT_EQ(back.node_names.size(), 1u);
  EXPECT_EQ(back.node_names[0], "a_b");
}

TEST(SeriesCsvTest, CertifiedWatermarkColumnRoundTrips) {
  RunSeries series;
  series.source = "certify";
  series.window_s = 1.0;
  for (int i = 0; i < 3; ++i) {
    SeriesWindow w;
    w.start_s = static_cast<double>(i);
    w.duration_s = 1.0;
    w.committed = 5;
    w.certified_through_s = static_cast<double>(i + 1);
    series.windows.push_back(w);
  }
  // A violation froze the watermark in the last window.
  series.windows[2].certified_through_s = 2.0;

  const RunSeries back = RoundTrip(series);
  ASSERT_EQ(back.windows.size(), 3u);
  EXPECT_EQ(back.windows[0].certified_through_s, 1.0);
  EXPECT_EQ(back.windows[1].certified_through_s, 2.0);
  EXPECT_EQ(back.windows[2].certified_through_s, 2.0);
}

TEST(SeriesCsvTest, LegacyFourteenFieldRowsReadAsCertificationOff) {
  const std::string magic = "# esr-series v1 window_s=1\n";
  // Pre-certification 14-field layout, and the 15-field layout with an
  // empty watermark cell: both read as "certification off" (-1).
  for (const char* row : {"window,0,0,1,5,0,0,1,2,,,,,\n",
                          "window,0,0,1,5,0,0,1,2,,,,,,\n"}) {
    std::istringstream in(magic + row);
    Result<RunSeries> read = ReadSeriesCsv(in);
    ASSERT_TRUE(read.ok()) << row << read.status().ToString();
    const RunSeries series = *std::move(read);
    ASSERT_EQ(series.windows.size(), 1u) << row;
    EXPECT_EQ(series.windows[0].certified_through_s, -1.0) << row;
  }
}

TEST(SeriesCsvTest, ReaderRejectsMalformedInput) {
  const auto read = [](const std::string& text) {
    std::istringstream in(text);
    return ReadSeriesCsv(in);
  };
  // Empty stream and wrong magic.
  EXPECT_FALSE(read("").ok());
  EXPECT_FALSE(read("kind,window\n").ok());

  const std::string magic = "# esr-series v1 window_s=1\n";
  // Wrong field count.
  EXPECT_FALSE(read(magic + "window,0,0,1\n").ok());
  // Non-contiguous window index.
  EXPECT_FALSE(read(magic + "window,1,0,1,5,0,0,1,2,,,,,\n").ok());
  // Node row before its window exists.
  EXPECT_FALSE(read(magic + "node,0,,,,,,,,root,1,0.5,10,3\n").ok());
  // Node row without a name.
  EXPECT_FALSE(
      read(magic + "window,0,0,1,5,0,0,1,2,,,,,\n"
                   "node,0,,,,,,,,,1,0.5,10,3\n")
          .ok());
  // Unknown row kind.
  EXPECT_FALSE(read(magic + "bogus,0,0,1,5,0,0,1,2,,,,,\n").ok());
  // Errors name the offending line.
  const auto bad = read(magic + "window,0,0,1,5,0,0,1,2,,,,,\n"
                                "window,7,0,1,5,0,0,1,2,,,,,\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 3"), std::string::npos)
      << bad.status().ToString();
}

TEST(SeriesTest, ThroughputSeriesIsCommittedPerSecond) {
  RunSeries series;
  SeriesWindow w;
  w.duration_s = 2.0;
  w.committed = 50;
  series.windows.push_back(w);
  w.duration_s = 0.0;  // zero-length window must not divide by zero
  w.committed = 10;
  series.windows.push_back(w);
  const std::vector<double> tput = series.ThroughputSeries();
  ASSERT_EQ(tput.size(), 2u);
  EXPECT_EQ(tput[0], 25.0);
  EXPECT_EQ(tput[1], 0.0);
}

TEST(SeriesSummaryTest, DemoSeriesSettlesAfterTheRamp) {
  const SeriesSummary s = SummarizeSeries(BuildDemoSeries(false));
  EXPECT_EQ(s.total_windows, 30u);
  EXPECT_TRUE(s.steady_state_found);
  // MSER-5 cuts the 8-window ramp at the 2-batch boundary.
  EXPECT_EQ(s.warmup_windows, 10u);
  EXPECT_DOUBLE_EQ(s.steady_throughput, 100.0);
  EXPECT_GT(s.steady_abort_rate, 0.0);
  EXPECT_LT(s.steady_abort_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.steady_mean_mpl, 8.0);

  EXPECT_TRUE(s.headroom_observed);
  EXPECT_FALSE(s.negative_headroom);
  // The 'accounts' node runs closest to its bound in the demo.
  EXPECT_EQ(s.tightest_node, "accounts");
  EXPECT_GT(s.tightest_headroom_frac, 0.0);
  EXPECT_EQ(s.tightest_limit, 2.0);

  ASSERT_EQ(s.nodes.size(), 3u);
  for (const SeriesNodeSummary& node : s.nodes) {
    EXPECT_GT(node.charges, 0);
    EXPECT_DOUBLE_EQ(node.utilization, 1.0 - node.min_headroom_frac);
  }
}

TEST(SeriesSummaryTest, NegativeHeadroomIsDetectedAndNamed) {
  const SeriesSummary s = SummarizeSeries(BuildDemoSeries(true));
  EXPECT_TRUE(s.negative_headroom);
  EXPECT_EQ(s.tightest_node, "accounts");
  EXPECT_EQ(s.tightest_window, 20u);
  EXPECT_DOUBLE_EQ(s.tightest_headroom_frac, -0.05);
}

TEST(SeriesSummaryTest, EmptySeriesSummarizesToDefaults) {
  const SeriesSummary s = SummarizeSeries(RunSeries{});
  EXPECT_EQ(s.total_windows, 0u);
  EXPECT_FALSE(s.steady_state_found);
  EXPECT_FALSE(s.headroom_observed);
  EXPECT_FALSE(s.negative_headroom);
}

TEST(SeriesSummaryTest, JsonCarriesTheVerdict) {
  std::ostringstream out;
  WriteSeriesSummaryJson(SummarizeSeries(BuildDemoSeries(true)), out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"negative_headroom\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"steady_state_found\":true"), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"accounts\""), std::string::npos);
}

TEST(HeadroomGaugeTest, PublishesPerNodeAndGlobalMinima) {
  RunSeries series;
  series.node_names = {"root", "idle"};
  for (int i = 0; i < 3; ++i) {
    SeriesWindow w;
    w.duration_s = 1.0;
    SeriesNodeWindow root;
    root.charges = 5;
    root.min_headroom_frac = 0.9 - 0.2 * i;  // min over windows: 0.5
    SeriesNodeWindow idle;                   // never charged
    w.nodes = {root, idle};
    series.windows.push_back(w);
  }
  MetricRegistry metrics;
  ExportHeadroomGauges(series, &metrics);
  const Gauge* root = metrics.FindGauge("headroom.min_frac.root");
  ASSERT_NE(root, nullptr);
  EXPECT_DOUBLE_EQ(root->value(), 0.5);
  // Uncharged nodes publish nothing (a 1.0 gauge would read as "healthy"
  // when it really means "no data").
  EXPECT_EQ(metrics.FindGauge("headroom.min_frac.idle"), nullptr);
  const Gauge* global = metrics.FindGauge("headroom.min_frac");
  ASSERT_NE(global, nullptr);
  EXPECT_DOUBLE_EQ(global->value(), 0.5);

  // Null registry is a documented no-op.
  ExportHeadroomGauges(series, nullptr);
}

}  // namespace
}  // namespace esr
