#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "testing/minimal_json.h"

namespace esr {
namespace {

using testing::JsonValue;
using testing::ParseJson;

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(JsonWriterTest, WritesNestedStructures) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.KV("name", "run");
  w.Key("points");
  w.BeginArray();
  w.Value(static_cast<int64_t>(1));
  w.Value(2.5);
  w.Value(true);
  w.Null();
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.KV("x", static_cast<int64_t>(-3));
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\"name\":\"run\",\"points\":[1,2.5,true,null],"
            "\"nested\":{\"x\":-3}}");

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  EXPECT_EQ(root.Find("points")->array.size(), 4u);
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");

  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.KV("key \"q\"", "line1\nline2");
  w.EndObject();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  const JsonValue* v = root.Find("key \"q\"");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->string, "line1\nline2");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginArray();
  w.Value(std::nan(""));
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(1.0);
  w.EndArray();
  EXPECT_EQ(out.str(), "[null,null,1]");
}

TEST(MetricsJsonTest, ExportsCountersAndHistogramSummaries) {
  MetricRegistry reg;
  reg.counter("txn.commit").Increment(12);
  reg.counter("txn.abort").Increment(3);
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("latency_ms").Record(static_cast<double>(i));
  }

  std::ostringstream out;
  WriteMetricsJson(reg, out);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("txn.commit"), nullptr);
  EXPECT_EQ(counters->Find("txn.commit")->number, 12.0);
  EXPECT_EQ(counters->Find("txn.abort")->number, 3.0);

  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* latency = histograms->Find("latency_ms");
  ASSERT_NE(latency, nullptr);
  for (const char* key :
       {"count", "mean", "min", "max", "stddev", "p50", "p90", "p99",
        "p999"}) {
    ASSERT_NE(latency->Find(key), nullptr) << key;
    EXPECT_TRUE(latency->Find(key)->is_number()) << key;
  }
  EXPECT_EQ(latency->Find("count")->number, 100.0);
  EXPECT_DOUBLE_EQ(latency->Find("mean")->number, 50.5);
  EXPECT_EQ(latency->Find("min")->number, 1.0);
  EXPECT_EQ(latency->Find("max")->number, 100.0);
  EXPECT_NEAR(latency->Find("p50")->number, 50.5, 5.0);
}

TEST(MetricsJsonTest, EmptyRegistryIsStillValidJson) {
  MetricRegistry reg;
  std::ostringstream out;
  WriteMetricsJson(reg, out);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(out.str(), &root, &error)) << error;
  EXPECT_TRUE(root.Find("counters")->object.empty());
  EXPECT_TRUE(root.Find("histograms")->object.empty());
}

TEST(MetricsCsvTest, EmitsHeaderAndOneRowPerMetric) {
  MetricRegistry reg;
  reg.counter("aborts").Increment(7);
  reg.histogram("latency").Record(2.0);
  reg.histogram("latency").Record(4.0);

  std::ostringstream out;
  WriteMetricsCsv(reg, out);
  const std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "kind,name,count,value,mean,min,max,stddev,p50,p90,p99,p999");
  EXPECT_EQ(lines[1], "counter,aborts,,7,,,,,,,,");
  EXPECT_EQ(lines[2].rfind("histogram,latency,2,,3,2,4,", 0), 0u)
      << lines[2];
}

TEST(MetricsCsvTest, QuotesNamesContainingCommas) {
  MetricRegistry reg;
  reg.counter("weird,name").Increment();
  std::ostringstream out;
  WriteMetricsCsv(reg, out);
  const std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "counter,\"weird,name\",,1,,,,,,,,");
}

TEST(MetricsExportFileTest, JsonAndCsvRoundTripThroughDisk) {
  MetricRegistry reg;
  reg.counter("c").Increment(5);
  reg.histogram("h").Record(1.5);

  const std::string json_path =
      ::testing::TempDir() + "/esr_exporter_test_metrics.json";
  ASSERT_TRUE(ExportMetricsJsonToFile(reg, json_path).ok());
  std::ifstream json_in(json_path);
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(json_buf.str(), &root, &error)) << error;
  EXPECT_EQ(root.Find("counters")->Find("c")->number, 5.0);

  const std::string csv_path =
      ::testing::TempDir() + "/esr_exporter_test_metrics.csv";
  ASSERT_TRUE(ExportMetricsCsvToFile(reg, csv_path).ok());
  std::ifstream csv_in(csv_path);
  std::stringstream csv_buf;
  csv_buf << csv_in.rdbuf();
  EXPECT_EQ(SplitLines(csv_buf.str()).size(), 3u);
}

TEST(MetricsExportFileTest, BadPathReturnsError) {
  MetricRegistry reg;
  EXPECT_FALSE(ExportMetricsJsonToFile(reg, "/nonexistent-dir/m.json").ok());
  EXPECT_FALSE(ExportMetricsCsvToFile(reg, "/nonexistent-dir/m.csv").ok());
}

}  // namespace
}  // namespace esr
