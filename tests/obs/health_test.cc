#include "obs/health.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "esr/limits.h"
#include "sim/cluster.h"

namespace esr {
namespace {

HealthOptions QuietOptions() {
  HealthOptions options;
  options.log_alerts = false;
  return options;
}

size_t CountDetector(const HealthReport& report, const std::string& name) {
  size_t n = 0;
  for (const Alert& a : report.alerts) {
    if (a.detector == name) ++n;
  }
  return n;
}

const Alert* FindDetector(const HealthReport& report, const std::string& name) {
  for (const Alert& a : report.alerts) {
    if (a.detector == name) return &a;
  }
  return nullptr;
}

// -- Synthetic detector shapes ----------------------------------------------

TEST(HealthDetectorTest, LivelockDemoFiresWithExactEvidenceWindows) {
  const HealthReport report =
      AnalyzeSeries(BuildLivelockDemoSeries(), QuietOptions());
  ASSERT_EQ(report.alerts.size(), 1u);
  const Alert& a = report.alerts[0];
  EXPECT_EQ(a.detector, "abort_livelock");
  EXPECT_EQ(a.severity, AlertSeverity::kError);
  // The demo livelocks windows 12..25 inclusive; the alert must blame
  // exactly that range.
  EXPECT_EQ(a.first_window, 12u);
  EXPECT_EQ(a.last_window, 25u);
  EXPECT_DOUBLE_EQ(a.start_s, 12.0);
  EXPECT_DOUBLE_EQ(a.end_s, 26.0);
  // The episode ends before the series does, so the alert is closed.
  EXPECT_FALSE(a.open);
}

TEST(HealthDetectorTest, BistableDemoFiresThrashingBistability) {
  const HealthReport report =
      AnalyzeSeries(BuildBistableDemoSeries(), QuietOptions());
  const Alert* a = FindDetector(report, "thrashing_bistability");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->severity, AlertSeverity::kWarn);
  // Evidence: the two regimes the demo alternates between.
  double mean_high = 0.0, mean_low = 0.0;
  for (const auto& kv : a->evidence) {
    if (kv.first == "mean_high") mean_high = kv.second;
    if (kv.first == "mean_low") mean_low = kv.second;
  }
  EXPECT_NEAR(mean_high, 17.0, 1.0);
  EXPECT_NEAR(mean_low, 7.0, 1.0);
  // No livelock in the bistable shape: both regimes commit.
  EXPECT_EQ(CountDetector(report, "abort_livelock"), 0u);
}

TEST(HealthDetectorTest, SteadyDemoSeriesIsHealthy) {
  // The series demo (ramp then steady ~100/s) must not alert: the ramp
  // is monotone *up*, the steady state has tiny CV at MPL 4.
  const HealthReport report =
      AnalyzeSeries(BuildDemoSeries(/*with_violation=*/false), QuietOptions());
  EXPECT_TRUE(report.healthy())
      << "unexpected alert: " << report.alerts[0].detector << ": "
      << report.alerts[0].message;
}

TEST(HealthDetectorTest, IdleSeriesIsNotLivelock) {
  // Zero commits with zero aborts is idleness, not livelock.
  RunSeries series;
  series.window_s = 1.0;
  for (int i = 0; i < 30; ++i) {
    SeriesWindow w;
    w.start_s = i;
    w.duration_s = 1.0;
    series.windows.push_back(w);
  }
  EXPECT_TRUE(AnalyzeSeries(series, QuietOptions()).healthy());
}

TEST(HealthDetectorTest, ShortStarvationDoesNotFire) {
  // 4 zero-commit windows (below the 5-window default) must not alert.
  RunSeries series = BuildLivelockDemoSeries();
  for (size_t i = 16; i <= 25; ++i) {
    series.windows[i].committed = 50;
    series.windows[i].aborted = 5;
    series.windows[i].restarts = 5;
  }
  EXPECT_EQ(
      CountDetector(AnalyzeSeries(series, QuietOptions()), "abort_livelock"),
      0u);
}

TEST(HealthDetectorTest, HeadroomMonotoneDrainFires) {
  RunSeries series;
  series.window_s = 1.0;
  series.node_names = {"root"};
  for (int i = 0; i < 30; ++i) {
    SeriesWindow w;
    w.start_s = i;
    w.duration_s = 1.0;
    w.committed = 50;
    w.active_mpl = 4.0;
    SeriesNodeWindow node;
    // Steady monotone drain: 0.95 down toward zero, ~0.03 per window.
    node.min_headroom_frac = 0.95 - 0.03 * i;
    node.max_accumulated = 1.0 - node.min_headroom_frac;
    node.limit_at_min = 1.0;
    node.charges = 40;
    w.nodes = {node};
    series.windows.push_back(std::move(w));
  }
  const HealthReport report = AnalyzeSeries(series, QuietOptions());
  const Alert* a = FindDetector(report, "headroom_exhaustion");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->node, "root");
  EXPECT_EQ(a->severity, AlertSeverity::kWarn);
  // Still draining at series end.
  EXPECT_TRUE(a->open);
}

TEST(HealthDetectorTest, NoisyStationaryHeadroomDoesNotFire) {
  // Per-window min headroom in a healthy ESR run is stationary noise
  // that routinely brushes near zero; none of that is an anomaly.
  RunSeries series;
  series.window_s = 1.0;
  series.node_names = {"root"};
  const double noisy[] = {0.05, 0.4, 0.01, 0.3,  0.6, 0.02, 0.2,
                          0.5,  0.1, 0.02, 0.45, 0.3, 0.08, 0.35};
  for (int i = 0; i < 56; ++i) {
    SeriesWindow w;
    w.start_s = i;
    w.duration_s = 1.0;
    w.committed = 50;
    w.active_mpl = 4.0;
    SeriesNodeWindow node;
    node.min_headroom_frac = noisy[i % 14];
    node.limit_at_min = 1.0;
    node.charges = 40;
    w.nodes = {node};
    series.windows.push_back(std::move(w));
  }
  EXPECT_EQ(CountDetector(AnalyzeSeries(series, QuietOptions()),
                          "headroom_exhaustion"),
            0u);
}

TEST(HealthDetectorTest, NegativeHeadroomIsAnImmediateError) {
  RunSeries series = BuildDemoSeries(/*with_violation=*/true);
  const HealthReport report = AnalyzeSeries(series, QuietOptions());
  const Alert* a = FindDetector(report, "headroom_exhaustion");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->severity, AlertSeverity::kError);
}

TEST(HealthDetectorTest, CertificationStallFiresWhenWatermarkFreezes) {
  RunSeries series;
  series.window_s = 1.0;
  for (int i = 0; i < 20; ++i) {
    SeriesWindow w;
    w.start_s = i;
    w.duration_s = 1.0;
    w.committed = 50;
    w.active_mpl = 4.0;
    // The watermark tracks the boundary for 10 windows, then freezes at
    // 10 s (the streaming certifier freezes at the first violation).
    w.certified_through_s = i < 10 ? i + 1.0 : 10.0;
    series.windows.push_back(w);
  }
  const HealthReport report = AnalyzeSeries(series, QuietOptions());
  const Alert* a = FindDetector(report, "certification_stall");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->severity, AlertSeverity::kError);
  // Default threshold is 3 windows of lag: frozen at 10 s, window 12
  // ends at 13 s — the first window 3 behind.
  EXPECT_EQ(a->first_window, 12u);
  EXPECT_TRUE(a->open);
}

TEST(HealthDetectorTest, CertificationOffNeverStalls) {
  RunSeries series = BuildLivelockDemoSeries();
  for (SeriesWindow& w : series.windows) w.certified_through_s = -1.0;
  EXPECT_EQ(CountDetector(AnalyzeSeries(series, QuietOptions()),
                          "certification_stall"),
            0u);
}

TEST(HealthDetectorTest, ShardImbalanceFiresOnHotShard) {
  HealthOptions options = QuietOptions();
  HealthMonitor monitor(options);
  SeriesWindow w;
  w.duration_s = 1.0;
  w.committed = 100;
  for (int i = 0; i < 4; ++i) {
    w.start_s = i;
    HealthInput input;
    // Shard 2 carries ~5.3x the mean op rate.
    input.shard_ops = {100, 100, 3000, 100, 100, 100, 100, 100};
    monitor.OnWindow(w, input);
  }
  monitor.Finish();
  const HealthReport report = monitor.Report();
  const Alert* a = FindDetector(report, "shard_imbalance");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->shard, 2);
  EXPECT_TRUE(a->open);
}

TEST(HealthDetectorTest, BalancedShardsStayQuiet) {
  HealthMonitor monitor(QuietOptions());
  SeriesWindow w;
  w.duration_s = 1.0;
  w.committed = 100;
  for (int i = 0; i < 10; ++i) {
    w.start_s = i;
    HealthInput input;
    input.shard_ops = {900, 1100, 1000, 950, 1050, 1000, 980, 1020};
    monitor.OnWindow(w, input);
  }
  monitor.Finish();
  EXPECT_TRUE(monitor.Report().healthy());
}

// -- Episode semantics / gauges ---------------------------------------------

TEST(HealthMonitorTest, EpisodeExtendsWhileConditionPersists) {
  const HealthReport report =
      AnalyzeSeries(BuildLivelockDemoSeries(), QuietOptions());
  ASSERT_EQ(report.alerts.size(), 1u);
  // One 14-window episode, not 10 alerts (the streak past min_windows
  // extends the same episode).
  EXPECT_EQ(report.alerts[0].last_window - report.alerts[0].first_window + 1,
            14u);
}

TEST(HealthMonitorTest, GaugesTrackActiveEpisodes) {
  HealthMonitor monitor(QuietOptions());
  const RunSeries demo = BuildLivelockDemoSeries();
  MetricRegistry metrics;
  // Feed through window 20 — inside the livelock episode.
  for (size_t i = 0; i <= 20; ++i) monitor.OnWindow(demo.windows[i]);
  monitor.ExportGauges(&metrics);
  const Gauge* active = metrics.FindGauge("alert.active.abort_livelock");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->value(), 1.0);
  const Gauge* count = metrics.FindGauge("alert.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value(), 1.0);

  // Feed the recovery; the episode closes, the gauge drops.
  for (size_t i = 21; i < demo.windows.size(); ++i) {
    monitor.OnWindow(demo.windows[i]);
  }
  monitor.Finish();
  monitor.ExportGauges(&metrics);
  EXPECT_EQ(metrics.FindGauge("alert.active.abort_livelock")->value(), 0.0);
  EXPECT_EQ(metrics.FindGauge("alert.count")->value(), 1.0);
}

// -- Journal round-trip ------------------------------------------------------

TEST(HealthJournalTest, JsonRoundTripsAlerts) {
  const HealthReport report =
      AnalyzeSeries(BuildLivelockDemoSeries(), QuietOptions());
  std::ostringstream out;
  WriteHealthJson(report, out);
  std::istringstream in(out.str());
  Result<HealthReport> back = ReadHealthJson(in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->source, report.source);
  EXPECT_EQ(back->windows, report.windows);
  ASSERT_EQ(back->alerts.size(), report.alerts.size());
  const Alert& a = report.alerts[0];
  const Alert& b = back->alerts[0];
  EXPECT_EQ(b.detector, a.detector);
  EXPECT_EQ(b.severity, a.severity);
  EXPECT_EQ(b.first_window, a.first_window);
  EXPECT_EQ(b.last_window, a.last_window);
  EXPECT_EQ(b.message, a.message);
  EXPECT_EQ(b.open, a.open);
}

TEST(HealthJournalTest, RejectsMalformedJournal) {
  std::istringstream in("{\"not_health\": {}}");
  EXPECT_FALSE(ReadHealthJson(in).ok());
  std::istringstream garbage("{{{");
  EXPECT_FALSE(ReadHealthJson(garbage).ok());
}

TEST(HealthJournalTest, JsonIsDeterministic) {
  const HealthReport a =
      AnalyzeSeries(BuildBistableDemoSeries(), QuietOptions());
  const HealthReport b =
      AnalyzeSeries(BuildBistableDemoSeries(), QuietOptions());
  std::ostringstream oa, ob;
  WriteHealthJson(a, oa);
  WriteHealthJson(b, ob);
  EXPECT_EQ(oa.str(), ob.str());
}

// -- Recorded runs: the documented phenomena --------------------------------

ClusterOptions RecordedRunOptions(EpsilonLevel level, int mpl, uint64_t seed) {
  ClusterOptions options;
  options.mpl = mpl;
  const TransactionLimits limits = LimitsForLevel(level);
  options.workload.til = limits.til;
  options.workload.tel = limits.tel;
  options.warmup_s = 5.0;
  options.measure_s = 120.0;  // full-scale run length: the documented
                              // phenomena live in long windows
  options.seed = seed;
  options.health = true;
  return options;
}

TEST(HealthRecordedRunTest, Mpl2LowLivelockEpisodeIsDetected) {
  // The EXPERIMENTS.md episodic abort livelock: MPL 2 at low bounds
  // locks two clients into a timestamp-ordering restart cycle. Seed 13
  // reproduces the documented shape — a long zero-commit streak with a
  // live abort rate — in the current engine.
  const SimResult result =
      RunCluster(RecordedRunOptions(EpsilonLevel::kLow, 2, 13));
  const Alert* a = FindDetector(result.health, "abort_livelock");
  ASSERT_NE(a, nullptr) << "livelock episode not detected";
  EXPECT_EQ(a->severity, AlertSeverity::kError);
  // The blamed windows must actually be starved in the recorded series.
  ASSERT_LT(a->last_window, result.series.windows.size());
  int64_t committed = 0;
  int64_t aborted = 0;
  for (size_t i = a->first_window; i <= a->last_window; ++i) {
    committed += result.series.windows[i].committed;
    aborted += result.series.windows[i].aborted;
  }
  EXPECT_EQ(committed, 0) << "blamed windows are not commit-starved";
  EXPECT_GE(aborted, static_cast<int64_t>(a->last_window - a->first_window));
  // Documented episode shape: tens of seconds, not a blip.
  EXPECT_GE(a->last_window - a->first_window + 1, 5u);
}

TEST(HealthRecordedRunTest, HighMplBistabilityIsDetected) {
  // The EXPERIMENTS.md deep-thrashing bistability at MPL >= 8: the
  // committed-per-window series splits into a high and a low regime.
  const SimResult result =
      RunCluster(RecordedRunOptions(EpsilonLevel::kMedium, 9, 7919));
  const Alert* a = FindDetector(result.health, "thrashing_bistability");
  ASSERT_NE(a, nullptr) << "bistable regime not detected";
  double mean_high = 0.0, mean_low = 0.0, cv = 0.0;
  for (const auto& kv : a->evidence) {
    if (kv.first == "mean_high") mean_high = kv.second;
    if (kv.first == "mean_low") mean_low = kv.second;
    if (kv.first == "cv") cv = kv.second;
  }
  EXPECT_GT(mean_high, mean_low) << "regimes not separated";
  EXPECT_GE(cv, 0.4);
}

TEST(HealthRecordedRunTest, StableFig07RowsAreAlertFree) {
  // Zero false-positive budget: the stable fig07 rows (MPL 3 and 6 at
  // every epsilon level) must be clean across seeds {1, 7, 23757}.
  const EpsilonLevel levels[] = {EpsilonLevel::kZero, EpsilonLevel::kLow,
                                 EpsilonLevel::kMedium, EpsilonLevel::kHigh};
  const uint64_t seeds[] = {1, 7, 23757};
  for (int mpl : {3, 6}) {
    for (EpsilonLevel level : levels) {
      for (uint64_t seed : seeds) {
        const SimResult result =
            RunCluster(RecordedRunOptions(level, mpl, seed));
        EXPECT_TRUE(result.health.healthy())
            << "false positive at mpl=" << mpl << " level="
            << static_cast<int>(level) << " seed=" << seed << ": "
            << result.health.alerts[0].detector << ": "
            << result.health.alerts[0].message;
      }
    }
  }
}

TEST(HealthRecordedRunTest, HealthReportIsDeterministicAcrossLanes) {
  // The health report is a pure function of the series, and the series
  // is byte-identical at any lane count — so the journal must be too.
  ClusterOptions options = RecordedRunOptions(EpsilonLevel::kLow, 2, 13);
  options.measure_s = 30.0;
  const SimResult serial = RunCluster(options);
  options.lanes = 3;
  const SimResult laned = RunCluster(options);
  std::ostringstream a, b;
  WriteHealthJson(serial.health, a);
  WriteHealthJson(laned.health, b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace esr
