// Offline trace auditor: bound recertification on hand-crafted histories
// with known violations, conflict-chain reconstruction, a critical-path
// decomposition with known arithmetic, and a full round trip through the
// Chrome-trace exporter and reader.

#include "obs/audit.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace esr {
namespace {

// Builds event streams with explicit timestamps (AuditTrace never looks at
// wall time, only at what the events say).
class History {
 public:
  void At(int64_t ts, TraceEvent e) {
    e.ts_micros = ts;
    events_.push_back(e);
  }
  /// BoundCheck tagged with the export direction (detail bit 1), as the
  /// update-side accumulator records it.
  void ExportCheckAt(int64_t ts, TxnId txn, uint16_t level, uint64_t group,
                     double charged, double limit, bool admitted) {
    TraceEvent e = TraceEvent::BoundCheck(txn, /*site=*/1, level, group,
                                          charged, limit, admitted);
    e.detail |= 2;
    At(ts, e);
  }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

// A walk that climbs group `group` (level 1) and the transaction root.
void ImportWalk(History* h, int64_t ts, TxnId txn, uint64_t group,
                double charge, double group_limit, double til,
                bool admitted) {
  h->At(ts, TraceEvent::BoundCheck(txn, 1, /*level=*/1, group, charge,
                                   group_limit, admitted));
  if (admitted) {
    h->At(ts + 1, TraceEvent::BoundCheck(txn, 1, /*level=*/0, /*group=*/0,
                                         charge, til, /*admitted=*/true));
  }
}

TEST(AuditBoundsTest, CleanHistoryCertifies) {
  History h;
  h.At(100, TraceEvent::BeginTxn(1, TxnType::kQuery, 1));
  ImportWalk(&h, 110, 1, /*group=*/5, 30.0, /*group_limit=*/50.0,
             /*til=*/100.0, /*admitted=*/true);
  ImportWalk(&h, 120, 1, /*group=*/5, 20.0, 50.0, 100.0, true);
  h.At(200, TraceEvent::CommitTxn(1, 1));

  const AuditReport report = AuditTrace(h.events());
  EXPECT_TRUE(report.certified());
  EXPECT_EQ(report.txns_seen, 1u);
  EXPECT_EQ(report.txns_committed, 1u);
  EXPECT_EQ(report.walks_replayed, 2u);
  EXPECT_EQ(report.charges_applied, 4u);
}

TEST(AuditBoundsTest, AdmittedOverBoundChargeIsFlaggedWithInterval) {
  History h;
  h.At(1000, TraceEvent::BeginTxn(7, TxnType::kQuery, 1));
  ImportWalk(&h, 1010, 7, /*group=*/5, 30.0, 50.0, 100.0, true);
  // The buggy admit: group 5 lands at 70 > 50 while the root stays legal,
  // so only group-level replay can catch it.
  ImportWalk(&h, 1021, 7, /*group=*/5, 40.0, 50.0, 100.0, true);
  h.At(1100, TraceEvent::CommitTxn(7, 1));

  const AuditReport report = AuditTrace(h.events());
  EXPECT_FALSE(report.certified());
  ASSERT_EQ(report.violations.size(), 1u);
  const BoundViolation& v = report.violations[0];
  EXPECT_EQ(v.txn, 7u);
  EXPECT_EQ(v.direction, ChargeDirection::kImport);
  EXPECT_EQ(v.group, 5u);
  EXPECT_EQ(v.level, 1);
  EXPECT_DOUBLE_EQ(v.accumulated, 70.0);
  EXPECT_DOUBLE_EQ(v.limit, 50.0);
  // Over-bound from the offending admit until the transaction ended.
  EXPECT_EQ(v.ts_begin, 1021);
  EXPECT_EQ(v.ts_end, 1100);
}

TEST(AuditBoundsTest, NodeStayingOverBoundYieldsOneViolationWithPeak) {
  History h;
  ImportWalk(&h, 10, 3, 5, 60.0, 50.0, 1000.0, true);  // first crossing
  ImportWalk(&h, 20, 3, 5, 25.0, 50.0, 1000.0, true);  // still climbing
  const AuditReport report = AuditTrace(h.events());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].ts_begin, 10);
  EXPECT_DOUBLE_EQ(report.violations[0].accumulated, 85.0);
}

TEST(AuditBoundsTest, RejectedWalkChargesNothing) {
  History h;
  // Group 5 rejects the 60-unit charge; a later 40-unit walk is admitted.
  // Had the rejected walk leaked into the accumulator, 40 + 60 would
  // cross the limit and produce a false violation.
  ImportWalk(&h, 10, 2, /*group=*/5, 60.0, 50.0, 100.0, /*admitted=*/false);
  ImportWalk(&h, 20, 2, /*group=*/5, 40.0, 50.0, 100.0, /*admitted=*/true);

  const AuditReport report = AuditTrace(h.events());
  EXPECT_TRUE(report.certified());
  EXPECT_EQ(report.walks_replayed, 2u);
  EXPECT_EQ(report.charges_applied, 2u);  // only the admitted walk
}

TEST(AuditBoundsTest, UnboundedNodesNeverViolate) {
  History h;
  ImportWalk(&h, 10, 1, 5, 1e9, kUnbounded, kUnbounded, true);
  EXPECT_TRUE(AuditTrace(h.events()).certified());
}

TEST(AuditBoundsTest, ImportAndExportAccumulatorsReplayIndependently) {
  History h;
  // The same transaction charges group 5 in both directions; each side
  // stays within its own limit, but their sum (75) would not.
  ImportWalk(&h, 10, 4, 5, 40.0, 50.0, 100.0, true);
  h.ExportCheckAt(20, 4, /*level=*/1, /*group=*/5, 35.0, /*limit=*/45.0,
                  /*admitted=*/true);
  h.ExportCheckAt(21, 4, /*level=*/0, /*group=*/0, 35.0, /*limit=*/100.0,
                  /*admitted=*/true);
  EXPECT_TRUE(AuditTrace(h.events()).certified());

  // Push the export side over its bound: the violation carries the
  // export direction, and the import side stays clean.
  h.ExportCheckAt(30, 4, 1, 5, 15.0, 45.0, true);
  h.ExportCheckAt(31, 4, 0, 0, 15.0, 100.0, true);
  const AuditReport report = AuditTrace(h.events());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].direction, ChargeDirection::kExport);
  EXPECT_DOUBLE_EQ(report.violations[0].accumulated, 50.0);
}

TEST(AuditConflictTest, WaitEventsBuildEdgesAndRankBlockers) {
  History h;
  h.At(50, TraceEvent::BeginTxn(2, TxnType::kUpdate, 1));   // the writer
  h.At(90, TraceEvent::BeginTxn(1, TxnType::kQuery, 1));    // the waiter
  // Waiter blocks on object 9 at t=100; its retry RPC goes out at t=150.
  TraceEvent wait = TraceEvent::WaitOn(1, 1, /*object=*/9, /*writer=*/2);
  h.At(100, wait);
  h.At(150, TraceEvent::SpanBeginEvent(SpanKind::kRpc, /*span=*/101,
                                       /*parent=*/0, /*txn=*/1, /*site=*/1,
                                       /*target=*/9));
  h.At(160, TraceEvent::SpanEndEvent(SpanKind::kRpc, 101, 1, 1));
  h.At(200, TraceEvent::CommitTxn(2, 1));

  const AuditReport report = AuditTrace(h.events());
  ASSERT_EQ(report.conflicts.size(), 1u);
  const ConflictEdge& edge = report.conflicts[0];
  EXPECT_EQ(edge.waiter, 1u);
  EXPECT_EQ(edge.writer, 2u);
  EXPECT_EQ(edge.object, 9u);
  EXPECT_EQ(edge.ts_wait, 100);
  EXPECT_EQ(edge.wait_micros, 50);  // verdict at 100, retry at 150

  ASSERT_EQ(report.blockers.size(), 1u);
  EXPECT_EQ(report.blockers[0].writer, 2u);
  EXPECT_EQ(report.blockers[0].waits_induced, 1u);
  EXPECT_EQ(report.blockers[0].total_wait_micros, 50);
  EXPECT_EQ(report.blockers[0].outcome, 'c');
}

TEST(AuditCriticalPathTest, DecomposesCommitLatencyExactly) {
  History h;
  // txn 1 lifetime [1000, 2000]; one rpc [1100, 1500] containing the
  // engine op [1300, 1400]; a wait verdict at 1600 answered by a retry
  // rpc at 1700 ([1700, 1750]); commit instant at 2000.
  h.At(1000, TraceEvent::SpanBeginEvent(SpanKind::kTxn, 1, 0, 1, 1, 0));
  h.At(1000, TraceEvent::BeginTxn(1, TxnType::kQuery, 1));
  h.At(1100, TraceEvent::SpanBeginEvent(SpanKind::kRpc, 2, 1, 1, 1, 9));
  h.At(1300, TraceEvent::SpanBeginEvent(SpanKind::kOp, 3, 2, 1, 1, 9));
  h.At(1400, TraceEvent::SpanEndEvent(SpanKind::kOp, 3, 1, 1));
  h.At(1500, TraceEvent::SpanEndEvent(SpanKind::kRpc, 2, 1, 1));
  h.At(1600, TraceEvent::WaitOn(1, 1, /*object=*/9, /*writer=*/4));
  h.At(1700, TraceEvent::SpanBeginEvent(SpanKind::kRpc, 5, 1, 1, 1, 9));
  h.At(1750, TraceEvent::SpanEndEvent(SpanKind::kRpc, 5, 1, 1));
  h.At(2000, TraceEvent::CommitTxn(1, 1));
  h.At(2000, TraceEvent::SpanEndEvent(SpanKind::kTxn, 1, 1, 1));

  const AuditReport report = AuditTrace(h.events());
  ASSERT_EQ(report.breakdowns.size(), 1u);
  const TxnBreakdown& b = report.breakdowns[0];
  EXPECT_EQ(b.txn, 1u);
  EXPECT_TRUE(b.committed);
  EXPECT_EQ(b.total_micros, 1000);  // from the txn span
  // rpc time 400 + 50 minus the 100 us of engine work inside it.
  EXPECT_EQ(b.rpc_wait_micros, 350);
  EXPECT_EQ(b.service_micros, 100);
  EXPECT_EQ(b.conflict_wait_micros, 100);  // wait 1600 -> retry rpc 1700
  // total - rpc_wait - service - conflict = client think/scheduling.
  EXPECT_EQ(b.other_micros, 450);
  EXPECT_DOUBLE_EQ(report.avg_total, 1000.0);
  EXPECT_DOUBLE_EQ(report.avg_service, 100.0);
}

TEST(AuditCriticalPathTest, FallsBackToInstantsWhenTxnSpanMissing) {
  History h;
  h.At(100, TraceEvent::BeginTxn(1, TxnType::kQuery, 1));
  h.At(400, TraceEvent::CommitTxn(1, 1));
  const AuditReport report = AuditTrace(h.events());
  ASSERT_EQ(report.breakdowns.size(), 1u);
  EXPECT_EQ(report.breakdowns[0].total_micros, 300);
  EXPECT_EQ(report.breakdowns[0].other_micros, 300);
}

#ifndef ESR_TRACE_DISABLED
TEST(AuditRoundTripTest, ExportedTraceAuditsIdenticallyAfterReload) {
  // Record a violating history through the real recorder, export it as
  // Chrome JSON, read it back, and confirm the verdict survives the trip.
  TraceRecorder& trace = GlobalTrace();
  trace.Reset();
  trace.set_enabled(true);
  int64_t clock = 0;
  auto step = [](void* ctx) { return ++*static_cast<int64_t*>(ctx); };
  trace.SetTimeSource(step, &clock);

  trace.Record(TraceEvent::BeginTxn(7, TxnType::kQuery, 1));
  trace.Record(TraceEvent::BoundCheck(7, 1, 1, 5, 30.0, 50.0, true));
  trace.Record(TraceEvent::BoundCheck(7, 1, 0, 0, 30.0, 100.0, true));
  trace.Record(TraceEvent::BoundCheck(7, 1, 1, 5, 40.0, 50.0, true));
  trace.Record(TraceEvent::BoundCheck(7, 1, 0, 0, 40.0, 100.0, true));
  trace.Record(TraceEvent::WaitOn(7, 1, 9, /*writer=*/3));
  trace.Record(TraceEvent::CommitTxn(7, 1));

  std::ostringstream out;
  trace.ExportChromeTrace(out);
  const AuditReport direct = AuditTrace(trace.Snapshot());
  trace.ClearTimeSource();
  trace.set_enabled(false);
  trace.Reset();

  std::vector<TraceEvent> reloaded;
  TraceMetadata metadata;
  ASSERT_TRUE(ReadChromeTrace(out.str(), &reloaded, &metadata).ok());
  EXPECT_EQ(metadata.recorded, 7u);
  EXPECT_EQ(metadata.dropped, 0u);

  const AuditReport replay = AuditTrace(reloaded, metadata);
  ASSERT_EQ(replay.violations.size(), direct.violations.size());
  ASSERT_EQ(replay.violations.size(), 1u);
  EXPECT_EQ(replay.violations[0].group, direct.violations[0].group);
  EXPECT_DOUBLE_EQ(replay.violations[0].accumulated,
                   direct.violations[0].accumulated);
  EXPECT_EQ(replay.violations[0].ts_begin, direct.violations[0].ts_begin);
  EXPECT_EQ(replay.conflicts.size(), 1u);
  EXPECT_EQ(replay.conflicts[0].writer, 3u);
}
#endif  // !ESR_TRACE_DISABLED

TEST(AuditReportTest, PrintNamesViolatedNodeAndInterval) {
  History h;
  ImportWalk(&h, 1021, 7, 5, 70.0, 50.0, 100.0, true);
  h.At(1100, TraceEvent::CommitTxn(7, 1));
  const AuditReport report = AuditTrace(h.events());

  std::ostringstream out;
  PrintAuditReport(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("FAIL"), std::string::npos) << text;
  EXPECT_NE(text.find("VIOLATION txn 7 import group 5 (level 1)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("during [1021, 1100] us"), std::string::npos) << text;
}

TEST(AuditReportTest, JsonReportCarriesVerdict) {
  History h;
  ImportWalk(&h, 10, 1, 5, 70.0, 50.0, 100.0, true);
  std::ostringstream out;
  WriteAuditJson(AuditTrace(h.events()), out);
  EXPECT_NE(out.str().find("\"certified\":false"), std::string::npos);
  EXPECT_NE(out.str().find("\"violations\":[{"), std::string::npos);
}

}  // namespace
}  // namespace esr
