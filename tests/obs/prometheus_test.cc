// Prometheus text exposition and the minimal /metrics HTTP endpoint:
// format conformance, name sanitization, and a real scrape over a
// loopback socket.

#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "obs/exporter.h"

namespace esr {
namespace {

TEST(PrometheusNameTest, SanitizesDisallowedCharacters) {
  EXPECT_EQ(PrometheusMetricName("txn.commit"), "esr_txn_commit");
  EXPECT_EQ(PrometheusMetricName("client.txn_latency-ms"),
            "esr_client_txn_latency_ms");
  EXPECT_EQ(PrometheusMetricName("plain"), "esr_plain");
  EXPECT_EQ(PrometheusMetricName("weird name!"), "esr_weird_name_");
}

TEST(PrometheusTextTest, WritesCountersWithTypeAndTotalSuffix) {
  MetricRegistry reg;
  reg.counter("txn.commit").Increment(12);

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE esr_txn_commit_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("esr_txn_commit_total 12\n"), std::string::npos)
      << text;
}

TEST(PrometheusTextTest, EveryFamilyCarriesHelpBeforeType) {
  MetricRegistry reg;
  reg.counter("txn.commit").Increment();
  reg.gauge("certified_through_seconds").Set(12.0);
  reg.gauge("certification_lag_windows").Set(0.0);
  reg.gauge("headroom.min_frac").Set(0.4);
  reg.gauge("headroom.min_frac.branch_0").Set(0.4);
  reg.histogram("latency").Record(1.0);

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string text = out.str();

  // Generic per-kind fallbacks.
  EXPECT_NE(text.find("# HELP esr_txn_commit_total Monotonic count of "
                      "txn.commit events.\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP esr_latency Distribution of latency "
                      "samples.\n"),
            std::string::npos)
      << text;
  // Documented families get specific help text.
  EXPECT_NE(text.find("# HELP esr_certified_through_seconds "
                      "Streaming-certification watermark"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP esr_certification_lag_windows "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP esr_headroom_min_frac Tightest epsilon "
                      "headroom across all hierarchy nodes"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP esr_headroom_min_frac_branch_0 Tightest "
                      "epsilon headroom of hierarchy node 'branch_0'"),
            std::string::npos)
      << text;

  // HELP precedes TYPE for every family (text-format convention).
  size_t pos = 0;
  int families = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    const size_t name_start = pos + std::strlen("# TYPE ");
    const size_t name_end = text.find(' ', name_start);
    const std::string family = text.substr(name_start, name_end - name_start);
    const size_t help = text.find("# HELP " + family + " ");
    EXPECT_NE(help, std::string::npos) << family << " has no HELP:\n" << text;
    EXPECT_LT(help, pos) << family << " HELP must precede TYPE:\n" << text;
    ++families;
    pos = name_end;
  }
  EXPECT_EQ(families, 6) << text;
}

TEST(PrometheusTextTest, WritesHistogramsAsSummaries) {
  MetricRegistry reg;
  for (int i = 1; i <= 4; ++i) {
    reg.histogram("latency").Record(static_cast<double>(i));
  }

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE esr_latency summary\n"), std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    EXPECT_NE(text.find("esr_latency{quantile=\"" + std::string(q) + "\"}"),
              std::string::npos)
        << q << " missing in:\n"
        << text;
  }
  // _sum is mean * count = 2.5 * 4; _count is the sample count.
  EXPECT_NE(text.find("esr_latency_sum 10\n"), std::string::npos) << text;
  EXPECT_NE(text.find("esr_latency_count 4\n"), std::string::npos) << text;
}

TEST(PrometheusTextTest, EmptyRegistryProducesEmptyExposition) {
  MetricRegistry reg;
  std::ostringstream out;
  WritePrometheusText(reg, out);
  EXPECT_TRUE(out.str().empty());
}

TEST(PrometheusTextTest, PromotesShardGaugesToLabeledFamilies) {
  MetricRegistry reg;
  // Registered out of numeric order, plus a two-digit shard: the label
  // values must come out sorted numerically (2 < 10), not as strings.
  reg.gauge("engine.shard10.ops").Set(111.0);
  reg.gauge("engine.shard2.ops").Set(7.0);
  reg.gauge("engine.shard2.waits").Set(3.0);
  reg.gauge("engine.shards").Set(12.0);  // not per-shard; stays dotted

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE esr_shard_ops gauge\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP esr_shard_ops Per-shard ops"),
            std::string::npos)
      << text;
  const size_t s2 = text.find("esr_shard_ops{shard=\"2\"} 7\n");
  const size_t s10 = text.find("esr_shard_ops{shard=\"10\"} 111\n");
  ASSERT_NE(s2, std::string::npos) << text;
  ASSERT_NE(s10, std::string::npos) << text;
  EXPECT_LT(s2, s10) << "shards must sort numerically:\n" << text;
  EXPECT_NE(text.find("esr_shard_waits{shard=\"2\"} 3\n"),
            std::string::npos)
      << text;

  // The per-shard dotted spellings vanish from the text exposition ...
  EXPECT_EQ(text.find("esr_engine_shard2_ops"), std::string::npos) << text;
  // ... while non-per-shard engine gauges keep their dotted-derived name.
  EXPECT_NE(text.find("esr_engine_shards 12\n"), std::string::npos) << text;
}

TEST(PrometheusTextTest, PromotesAlertGaugesToDetectorLabels) {
  MetricRegistry reg;
  reg.gauge("alert.count").Set(2.0);
  reg.gauge("alert.active.abort_livelock").Set(1.0);
  reg.gauge("alert.active.shard_imbalance").Set(0.0);

  std::ostringstream out;
  WritePrometheusText(reg, out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE esr_alert_active gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("esr_alert_active{detector=\"abort_livelock\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("esr_alert_active{detector=\"shard_imbalance\"} 0\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("esr_alert_count 2\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("esr_alert_active_abort_livelock"),
            std::string::npos)
      << text;
}

TEST(PrometheusTextTest, DottedShardNamesStayCanonicalInJsonAndCsv) {
  // The label promotion is a text-exposition concern only: the JSON and
  // CSV exporters (and FindGauge lookups) keep the dotted spellings, so
  // recorded artifacts stay byte-compatible across the change.
  MetricRegistry reg;
  reg.gauge("engine.shard3.ops").Set(42.0);
  reg.gauge("alert.active.abort_livelock").Set(1.0);

  std::ostringstream json;
  WriteMetricsJson(reg, json);
  EXPECT_NE(json.str().find("\"engine.shard3.ops\""), std::string::npos)
      << json.str();
  EXPECT_NE(json.str().find("\"alert.active.abort_livelock\""),
            std::string::npos)
      << json.str();

  std::ostringstream csv;
  WriteMetricsCsv(reg, csv);
  EXPECT_NE(csv.str().find("engine.shard3.ops"), std::string::npos)
      << csv.str();
  EXPECT_NE(csv.str().find("alert.active.abort_livelock"),
            std::string::npos)
      << csv.str();
}

// Blocking one-shot HTTP GET against 127.0.0.1:port; empty on failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesScrapeOnEphemeralPort) {
  MetricRegistry reg;
  reg.counter("scrapes").Increment(3);
  MetricsHttpServer server([&reg] {
    std::ostringstream out;
    WritePrometheusText(reg, out);
    return out.str();
  });
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
      << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos)
      << response;
  EXPECT_NE(response.find("esr_scrapes_total 3"), std::string::npos)
      << response;

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsHttpServerTest, UnknownPathIs404) {
  MetricsHttpServer server([] { return std::string("body\n"); });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = HttpGet(server.port(), "/other");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos) << response;
  // Root serves the same body as /metrics for curl convenience.
  const std::string root = HttpGet(server.port(), "/");
  EXPECT_NE(root.find("200 OK"), std::string::npos) << root;
}

TEST(MetricsHttpServerTest, RendersLiveValuesPerScrape) {
  MetricRegistry reg;
  MetricsHttpServer server([&reg] {
    std::ostringstream out;
    WritePrometheusText(reg, out);
    return out.str();
  });
  ASSERT_TRUE(server.Start(0).ok());
  reg.counter("ticks").Increment();
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("esr_ticks_total 1"),
            std::string::npos);
  reg.counter("ticks").Increment();
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("esr_ticks_total 2"),
            std::string::npos);
}

TEST(MetricsHttpServerTest, ServesConcurrentScrapes) {
  // A deliberately slow render keeps the first scrape in flight while
  // the second one arrives; both must complete with full bodies and
  // renders must stay serialized (the callback is not reentrant-safe).
  std::atomic<int> renders{0};
  MetricsHttpServer server([&renders] {
    renders.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::string("slow body\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  std::string first;
  std::thread scraper(
      [&] { first = HttpGet(server.port(), "/metrics"); });
  const std::string second = HttpGet(server.port(), "/metrics");
  scraper.join();

  EXPECT_NE(first.find("200 OK"), std::string::npos) << first;
  EXPECT_NE(second.find("200 OK"), std::string::npos) << second;
  EXPECT_NE(first.find("slow body"), std::string::npos) << first;
  EXPECT_NE(second.find("slow body"), std::string::npos) << second;
  EXPECT_EQ(renders.load(), 2);
}

TEST(MetricsHttpServerTest, StalledClientDoesNotBlockOtherScrapers) {
  MetricsHttpServer server([] { return std::string("ok\n"); });
  ASSERT_TRUE(server.Start(0).ok());

  // Connect and send nothing: this client occupies a handler thread
  // until its receive timeout, but must not starve real scrapers.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(
      ::connect(stalled, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("ok\n"), std::string::npos) << response;

  ::close(stalled);
  server.Stop();
}

TEST(MetricsHttpServerTest, StopIsIdempotentAndStartRejectsDoubleStart) {
  MetricsHttpServer server([] { return std::string(); });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());  // already running
  server.Stop();
  server.Stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace esr
