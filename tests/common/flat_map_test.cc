#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/types.h"

namespace esr {
namespace {

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(7), nullptr);
  EXPECT_FALSE(m.Contains(7));
  EXPECT_FALSE(m.Erase(7));
}

TEST(FlatMapTest, SubscriptInsertsDefault) {
  FlatMap<uint32_t, int> m;
  EXPECT_EQ(m[3], 0);
  m[3] = 42;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m[3], 42);
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.Find(3), nullptr);
  EXPECT_EQ(*m.Find(3), 42);
}

TEST(FlatMapTest, TryEmplaceKeepsExisting) {
  FlatMap<uint64_t, std::string> m;
  auto [p1, inserted1] = m.TryEmplace(9, "first");
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*p1, "first");
  auto [p2, inserted2] = m.TryEmplace(9, "second");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*p2, "first");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, EraseBackwardShiftPreservesCluster) {
  // Keys that all hash to the same home slot (identity hash mod
  // capacity 16): 1, 17, 33, 49 form one probe cluster. Erasing from the
  // middle must keep the later keys findable.
  FlatMap<uint32_t, int> m;
  m.Reserve(4);
  ASSERT_EQ(m.capacity(), 16u);
  for (uint32_t k : {1u, 17u, 33u, 49u}) m[k] = static_cast<int>(k);
  EXPECT_TRUE(m.Erase(17));
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.Find(17), nullptr);
  for (uint32_t k : {1u, 33u, 49u}) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), static_cast<int>(k));
  }
  EXPECT_TRUE(m.Erase(1));
  EXPECT_TRUE(m.Erase(49));
  EXPECT_TRUE(m.Erase(33));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMapTest, EraseClusterThatWrapsAroundCapacity) {
  // Home slot 15 of a 16-slot table: 15, 31, 47 probe 15 -> 0 -> 1,
  // wrapping the array. Backward shift must respect circular distance.
  FlatMap<uint32_t, int> m;
  m.Reserve(4);
  ASSERT_EQ(m.capacity(), 16u);
  for (uint32_t k : {15u, 31u, 47u}) m[k] = static_cast<int>(k);
  EXPECT_TRUE(m.Erase(15));
  for (uint32_t k : {31u, 47u}) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), static_cast<int>(k));
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap<uint32_t, int> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  EXPECT_GE(cap - cap / 8, 1000u);
  for (uint32_t k = 0; k < 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, GrowsWithoutReserve) {
  FlatMap<uint32_t, uint32_t> m;
  for (uint32_t k = 0; k < 5000; ++k) m[k * 7919] = k;
  EXPECT_EQ(m.size(), 5000u);
  for (uint32_t k = 0; k < 5000; ++k) {
    ASSERT_NE(m.Find(k * 7919), nullptr) << k;
    EXPECT_EQ(*m.Find(k * 7919), k);
  }
}

TEST(FlatMapTest, ForEachVisitsEveryElementOnce) {
  FlatMap<uint32_t, int> m;
  for (uint32_t k = 10; k < 30; ++k) m[k] = 2;
  std::set<uint32_t> seen;
  int total = 0;
  m.ForEach([&](uint32_t k, int v) {
    seen.insert(k);
    total += v;
  });
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(total, 40);
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<uint32_t, int> m;
  m.Reserve(100);
  const size_t cap = m.capacity();
  for (uint32_t k = 0; k < 100; ++k) m[k] = 1;
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.Find(5), nullptr);
  m[5] = 9;
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, SupportsMoveOnlyNonDefaultConstructibleValues) {
  // The transaction registry stores move-only Transactions; growth and
  // backward-shift erase must work through moves alone.
  FlatMap<uint64_t, std::unique_ptr<int>> m;
  for (uint64_t k = 0; k < 100; ++k) {
    auto [p, inserted] =
        m.TryEmplace(k, std::make_unique<int>(static_cast<int>(k)));
    EXPECT_TRUE(inserted);
    ASSERT_NE(p->get(), nullptr);
  }
  for (uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(m.Erase(k));
  EXPECT_EQ(m.size(), 50u);
  for (uint64_t k = 1; k < 100; k += 2) {
    auto* p = m.Find(k);
    ASSERT_NE(p, nullptr) << k;
    EXPECT_EQ(**p, static_cast<int>(k));
  }
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomChurn) {
  Rng rng(20260809);
  FlatMap<uint64_t, int64_t> flat;
  std::unordered_map<uint64_t, int64_t> ref;
  for (int step = 0; step < 50000; ++step) {
    const uint64_t key = rng.UniformInt(0, 512);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        flat[key] = static_cast<int64_t>(step);
        ref[key] = static_cast<int64_t>(step);
        break;
      case 1: {
        EXPECT_EQ(flat.Erase(key), ref.erase(key) > 0);
        break;
      }
      case 2: {
        auto it = ref.find(key);
        int64_t* p = flat.Find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
      default: {
        auto [p, inserted] = flat.TryEmplace(key, -1);
        auto [it, ref_inserted] = ref.try_emplace(key, -1);
        EXPECT_EQ(inserted, ref_inserted);
        EXPECT_EQ(*p, it->second);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  size_t visited = 0;
  flat.ForEach([&](uint64_t k, int64_t v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace esr
