#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace esr {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, EmptyHistogramIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, TracksMomentsExactly) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Record(v);
  EXPECT_EQ(h.count(), 8);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.min(), 2.0);
  EXPECT_EQ(h.max(), 9.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(h.variance(), 32.0 / 7.0, 1e-9);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, PercentilesOfEmptyAreZero) {
  Histogram h;
  for (double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.ApproximatePercentile(p), 0.0) << "p=" << p;
  }
  const PercentileSummary s = h.Percentiles();
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p999, 0.0);
}

TEST(HistogramTest, PercentilesOfSingleSampleAreTheSample) {
  Histogram h;
  h.Record(42.0);
  // Every quantile of a one-point distribution is that point; the clamp
  // to the observed [min, max] pins it exactly despite the log buckets.
  for (double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.ApproximatePercentile(p), 42.0) << "p=" << p;
  }
}

TEST(HistogramTest, PercentilesOfAllEqualSamplesAreThatValue) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(7.5);
  for (double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.ApproximatePercentile(p), 7.5) << "p=" << p;
  }
  EXPECT_EQ(h.min(), 7.5);
  EXPECT_EQ(h.max(), 7.5);
  EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, PercentileApproximatesOrder) {
  Histogram h;
  for (int i = 1; i <= 1024; ++i) h.Record(static_cast<double>(i));
  // p50 of 1..1024 is ~512; log2 buckets give an upper bound within 2x.
  const double p50 = h.ApproximatePercentile(0.5);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_LE(h.ApproximatePercentile(0.0), h.ApproximatePercentile(1.0));
}

TEST(HistogramTest, InterpolatedPercentilesArePinned) {
  Histogram h;
  for (int i = 1; i <= 1024; ++i) h.Record(static_cast<double>(i));
  // The sub-bucket scheme bounds the error by one sub-bucket width, which
  // for values in [512, 1024) is 512/16 = 32.
  EXPECT_NEAR(h.ApproximatePercentile(0.5), 512.0, 33.0);
  EXPECT_NEAR(h.ApproximatePercentile(0.9), 922.0, 33.0);
  EXPECT_NEAR(h.ApproximatePercentile(0.99), 1014.0, 33.0);
  EXPECT_NEAR(h.ApproximatePercentile(0.999), 1023.0, 33.0);
  // Extremes clamp to the observed range.
  EXPECT_GE(h.ApproximatePercentile(0.0), 1.0);
  EXPECT_LE(h.ApproximatePercentile(1.0), 1024.0);

  const PercentileSummary p = h.Percentiles();
  EXPECT_DOUBLE_EQ(p.p50, h.ApproximatePercentile(0.5));
  EXPECT_DOUBLE_EQ(p.p90, h.ApproximatePercentile(0.9));
  EXPECT_DOUBLE_EQ(p.p99, h.ApproximatePercentile(0.99));
  EXPECT_DOUBLE_EQ(p.p999, h.ApproximatePercentile(0.999));
}

TEST(HistogramTest, PercentilesAreMonotoneInP) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i % 97));
  double prev = h.ApproximatePercentile(0.0);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.ApproximatePercentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergeCombinesMomentsAndBuckets) {
  Histogram lo, hi;
  for (int i = 1; i <= 512; ++i) lo.Record(static_cast<double>(i));
  for (int i = 513; i <= 1024; ++i) hi.Record(static_cast<double>(i));

  Histogram all;
  for (int i = 1; i <= 1024; ++i) all.Record(static_cast<double>(i));

  lo.Merge(hi);
  EXPECT_EQ(lo.count(), 1024);
  EXPECT_DOUBLE_EQ(lo.mean(), all.mean());
  EXPECT_EQ(lo.min(), 1.0);
  EXPECT_EQ(lo.max(), 1024.0);
  EXPECT_NEAR(lo.variance(), all.variance(), 1e-6 * all.variance());
  // Percentiles from merged buckets match recording everything into one.
  EXPECT_DOUBLE_EQ(lo.ApproximatePercentile(0.5),
                   all.ApproximatePercentile(0.5));
  EXPECT_DOUBLE_EQ(lo.ApproximatePercentile(0.99),
                   all.ApproximatePercentile(0.99));
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h, empty;
  h.Record(5.0);
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.mean(), 5.0);
  empty.Merge(h);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_EQ(empty.mean(), 5.0);
}

TEST(HistogramTest, MergeWithEmptySidePreservesExtremaAndQuantiles) {
  Histogram h, empty;
  for (int i = 1; i <= 256; ++i) h.Record(static_cast<double>(i));
  const double p50 = h.ApproximatePercentile(0.5);
  const double p999 = h.ApproximatePercentile(0.999);
  const double stddev = h.stddev();

  // Empty right side: a true identity, including the derived statistics.
  h.Merge(empty);
  EXPECT_EQ(h.count(), 256);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 256.0);
  EXPECT_DOUBLE_EQ(h.stddev(), stddev);
  EXPECT_DOUBLE_EQ(h.ApproximatePercentile(0.5), p50);
  EXPECT_DOUBLE_EQ(h.ApproximatePercentile(0.999), p999);

  // Empty left side: adopts the right side wholesale (the min/max of an
  // empty histogram must not leak in as zeros).
  empty.Merge(h);
  EXPECT_EQ(empty.count(), 256);
  EXPECT_EQ(empty.min(), 1.0);
  EXPECT_EQ(empty.max(), 256.0);
  EXPECT_DOUBLE_EQ(empty.stddev(), stddev);
  EXPECT_DOUBLE_EQ(empty.ApproximatePercentile(0.5), p50);
  EXPECT_DOUBLE_EQ(empty.ApproximatePercentile(0.999), p999);
}

TEST(HistogramTest, MergeOfTwoEmptiesStaysEmpty) {
  Histogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.ApproximatePercentile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesUnderSingleBucketOccupancy) {
  // Identical samples land in one sub-bucket: every quantile collapses
  // to the sample and the summary is degenerate but well-defined.
  Histogram same;
  for (int i = 0; i < 10000; ++i) same.Record(0.037);
  const PercentileSummary sp = same.Percentiles();
  EXPECT_DOUBLE_EQ(sp.p50, 0.037);
  EXPECT_DOUBLE_EQ(sp.p999, 0.037);
  EXPECT_EQ(same.min(), same.max());

  // Distinct samples confined to one sub-bucket ([100, 104) within the
  // [64, 128) log bucket): quantiles must stay inside the observed range
  // and remain monotone even with zero cross-bucket resolution.
  Histogram narrow;
  for (int i = 0; i < 1000; ++i) {
    narrow.Record(100.0 + 0.5 * static_cast<double>(i % 8));
  }
  double prev = narrow.ApproximatePercentile(0.0);
  for (double p : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = narrow.ApproximatePercentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, narrow.min()) << "p=" << p;
    EXPECT_LE(v, narrow.max()) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, ResetClearsState) {
  Histogram h;
  h.Record(3.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(GaugeTest, LastSetWinsAndResetZeroes) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.25);
  g.Set(-0.5);
  EXPECT_EQ(g.value(), -0.5);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricRegistryTest, GaugesAreNamedSortedAndResettable) {
  MetricRegistry reg;
  reg.gauge("headroom.b").Set(0.25);
  reg.gauge("headroom.a").Set(0.75);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  const Gauge* a = reg.FindGauge("headroom.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value(), 0.75);

  const auto snap = reg.GaugeSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "headroom.a");
  EXPECT_EQ(snap[0].second, 0.75);
  EXPECT_EQ(snap[1].first, "headroom.b");

  reg.Reset();
  EXPECT_EQ(reg.gauge("headroom.a").value(), 0.0);
}

TEST(MetricRegistryTest, CountersAreNamedAndPersistent) {
  MetricRegistry reg;
  reg.counter("txn.commit").Increment();
  reg.counter("txn.commit").Increment();
  reg.counter("txn.abort").Increment();
  EXPECT_EQ(reg.CounterValue("txn.commit"), 2);
  EXPECT_EQ(reg.CounterValue("txn.abort"), 1);
  EXPECT_EQ(reg.CounterValue("missing"), 0);
}

TEST(MetricRegistryTest, SnapshotIsSortedByName) {
  MetricRegistry reg;
  reg.counter("b").Increment(2);
  reg.counter("a").Increment(1);
  const auto snap = reg.CounterSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
}

TEST(MetricRegistryTest, ResetZeroesEverything) {
  MetricRegistry reg;
  reg.counter("x").Increment(5);
  reg.histogram("h").Record(1.0);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("x"), 0);
  EXPECT_EQ(reg.histogram("h").count(), 0);
}

TEST(MetricRegistryTest, FindNeverCreates) {
  MetricRegistry reg;
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  EXPECT_EQ(reg.FindHistogram("nope"), nullptr);
  EXPECT_TRUE(reg.CounterSnapshot().empty());

  reg.counter("c").Increment(3);
  reg.histogram("h").Record(2.0);
  const Counter* c = reg.FindCounter("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 3);
  const Histogram* h = reg.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1);
  // Still no cross-kind leakage.
  EXPECT_EQ(reg.FindCounter("h"), nullptr);
  EXPECT_EQ(reg.FindHistogram("c"), nullptr);
}

TEST(MetricRegistryTest, HistogramSnapshotIsSortedAndDecoupled) {
  MetricRegistry reg;
  reg.histogram("b").Record(1.0);
  reg.histogram("a").Record(2.0);
  auto snap = reg.HistogramSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
  // The snapshot is a copy: later recording must not alter it.
  reg.histogram("a").Record(3.0);
  EXPECT_EQ(snap[0].second.count(), 1);
  EXPECT_EQ(reg.histogram("a").count(), 2);
}

TEST(MetricRegistryTest, RecordSampleSupportsConcurrentWriters) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  MetricRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.RecordSample("latency", static_cast<double>(i + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram* h = reg.FindHistogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_EQ(h->min(), 1.0);
  EXPECT_EQ(h->max(), static_cast<double>(kPerThread));
  // The mean is accumulated in interleaving-dependent order, and FP
  // addition is not associative; DOUBLE_EQ's 4-ULP tolerance flakes.
  EXPECT_NEAR(h->mean(), (kPerThread + 1) / 2.0, 1e-9);
}

}  // namespace
}  // namespace esr
