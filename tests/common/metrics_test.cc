#include "common/metrics.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(HistogramTest, EmptyHistogramIsZeroed) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, TracksMomentsExactly) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Record(v);
  EXPECT_EQ(h.count(), 8);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.min(), 2.0);
  EXPECT_EQ(h.max(), 9.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(h.variance(), 32.0 / 7.0, 1e-9);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, PercentileApproximatesOrder) {
  Histogram h;
  for (int i = 1; i <= 1024; ++i) h.Record(static_cast<double>(i));
  // p50 of 1..1024 is ~512; log2 buckets give an upper bound within 2x.
  const double p50 = h.ApproximatePercentile(0.5);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_LE(h.ApproximatePercentile(0.0), h.ApproximatePercentile(1.0));
}

TEST(HistogramTest, ResetClearsState) {
  Histogram h;
  h.Record(3.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(MetricRegistryTest, CountersAreNamedAndPersistent) {
  MetricRegistry reg;
  reg.counter("txn.commit").Increment();
  reg.counter("txn.commit").Increment();
  reg.counter("txn.abort").Increment();
  EXPECT_EQ(reg.CounterValue("txn.commit"), 2);
  EXPECT_EQ(reg.CounterValue("txn.abort"), 1);
  EXPECT_EQ(reg.CounterValue("missing"), 0);
}

TEST(MetricRegistryTest, SnapshotIsSortedByName) {
  MetricRegistry reg;
  reg.counter("b").Increment(2);
  reg.counter("a").Increment(1);
  const auto snap = reg.CounterSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
}

TEST(MetricRegistryTest, ResetZeroesEverything) {
  MetricRegistry reg;
  reg.counter("x").Increment(5);
  reg.histogram("h").Record(1.0);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("x"), 0);
  EXPECT_EQ(reg.histogram("h").count(), 0);
}

}  // namespace
}  // namespace esr
