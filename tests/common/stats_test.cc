#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace esr {
namespace {

TEST(StudentT90Test, MatchesTheTable) {
  // Spot checks against the standard two-sided 90% table.
  EXPECT_NEAR(StudentT90(1), 6.314, 1e-3);
  EXPECT_NEAR(StudentT90(2), 2.920, 1e-3);
  EXPECT_NEAR(StudentT90(4), 2.132, 1e-3);
  EXPECT_NEAR(StudentT90(9), 1.833, 1e-3);
  EXPECT_NEAR(StudentT90(30), 1.697, 1e-3);
}

TEST(StudentT90Test, LargeDfConvergesToNormal) {
  EXPECT_NEAR(StudentT90(31), 1.645, 1e-3);
  EXPECT_NEAR(StudentT90(1000), 1.645, 1e-3);
}

TEST(StudentT90Test, IsMonotoneDecreasing) {
  for (size_t df = 1; df < 35; ++df) {
    EXPECT_GE(StudentT90(df), StudentT90(df + 1)) << "df=" << df;
  }
}

TEST(Ci90HalfWidthTest, DegenerateSamplesGiveZero) {
  EXPECT_EQ(Ci90HalfWidth({}), 0.0);
  EXPECT_EQ(Ci90HalfWidth({5.0}), 0.0);
  // Identical samples: zero variance, zero half-width.
  EXPECT_EQ(Ci90HalfWidth({3.0, 3.0, 3.0}), 0.0);
}

TEST(Ci90HalfWidthTest, MatchesTheFormula) {
  // n = 5, mean 3, sample variance 2.5: hw = t(4) * sqrt(2.5 / 5).
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  const double expected = StudentT90(4) * std::sqrt(2.5 / 5.0);
  EXPECT_NEAR(Ci90HalfWidth(samples), expected, 1e-12);
}

TEST(Ci90HalfWidthTest, ScalesWithDispersion) {
  const double narrow = Ci90HalfWidth({10.0, 10.1, 9.9, 10.05, 9.95});
  const double wide = Ci90HalfWidth({10.0, 13.0, 7.0, 11.5, 8.5});
  EXPECT_LT(narrow, wide);
  EXPECT_GT(narrow, 0.0);
}

TEST(Mser5Test, TooShortSeriesFails) {
  // Fewer than kMserMinBatches batches of 5 can never be trusted.
  std::vector<double> series(5 * kMserMinBatches - 1, 1.0);
  const MserResult r = Mser5Truncation(series);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(Mser5Truncation({}).ok, false);
}

TEST(Mser5Test, FlatSeriesTruncatesNothing) {
  const std::vector<double> series(60, 10.0);
  const MserResult r = Mser5Truncation(series);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.truncation_windows, 0u);
  EXPECT_EQ(r.batches, 12u);
  EXPECT_EQ(r.statistic, 0.0);
}

TEST(Mser5Test, RampThenSteadyTruncatesTheRamp) {
  // 15 windows ramping 0..14, then 60 windows steady at 20 with a small
  // deterministic wobble. MSER-5 should cut at (or just past) the ramp.
  std::vector<double> series;
  for (int i = 0; i < 15; ++i) series.push_back(static_cast<double>(i));
  for (int i = 0; i < 60; ++i) series.push_back(20.0 + ((i % 2) ? 0.1 : -0.1));
  const MserResult r = Mser5Truncation(series);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.truncation_windows, 10u);
  EXPECT_LE(r.truncation_windows, 25u);
  // Truncation is reported in whole batches worth of windows.
  EXPECT_EQ(r.truncation_windows % 5, 0u);
}

TEST(Mser5Test, NeverSettlingSeriesFails) {
  // A geometric decay whose transient dominates the whole window: each
  // extra truncation keeps shrinking the statistic, so the minimum lands
  // on the last allowed candidate and the boundary guard rejects it.
  std::vector<double> series;
  for (int i = 0; i < 80; ++i) series.push_back(1000.0 * std::pow(0.9, i));
  const MserResult r = Mser5Truncation(series);
  EXPECT_FALSE(r.ok);
}

TEST(Mser5Test, DecayThatSettlesTruncatesTheTransient) {
  std::vector<double> series;
  for (int i = 0; i < 20; ++i) series.push_back(1000.0 * std::pow(0.7, i));
  for (int i = 0; i < 60; ++i) series.push_back(1.0);
  const MserResult r = Mser5Truncation(series);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.truncation_windows, 20u);
}

TEST(Mser5Test, CandidatesRestrictedToFrontHalf) {
  // A step late in the series (inside the back half) cannot be truncated
  // away; the heuristic must either settle on a front-half cut or fail,
  // never return a truncation point past batches / 2.
  std::vector<double> series(70, 5.0);
  for (size_t i = 55; i < 70; ++i) series[i] = 50.0;
  const MserResult r = Mser5Truncation(series);
  if (r.ok) {
    EXPECT_LE(r.truncation_windows, 5u * (r.batches / 2));
  }
}

}  // namespace
}  // namespace esr
