#include "common/timestamp.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace esr {
namespace {

TEST(TimestampTest, TotalOrderIsLexicographic) {
  const Timestamp a{100, 1};
  const Timestamp b{100, 2};
  const Timestamp c{101, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Timestamp{100, 1}));
}

TEST(TimestampTest, MinMaxBracketEverything) {
  const Timestamp t{0, 0};
  EXPECT_LT(Timestamp::Min(), t);
  EXPECT_LT(t, Timestamp::Max());
  EXPECT_LT(Timestamp::Min(), Timestamp::Max());
}

TEST(TimestampTest, SiteIdDisambiguatesEqualClocks) {
  // The paper's uniqueness technique: same clock reading at two sites
  // still yields distinct, ordered timestamps.
  const Timestamp site1{5000, 1};
  const Timestamp site2{5000, 2};
  EXPECT_NE(site1, site2);
  EXPECT_LT(site1, site2);
}

TEST(TimestampTest, ToStringFormat) {
  EXPECT_EQ((Timestamp{123, 4}).ToString(), "123@4");
}

TEST(TimestampGeneratorTest, MonotonicWithAdvancingClock) {
  TimestampGenerator gen(3);
  const Timestamp a = gen.Next(100);
  const Timestamp b = gen.Next(200);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.site, 3u);
  EXPECT_EQ(b.site, 3u);
}

TEST(TimestampGeneratorTest, MonotonicWithStalledClock) {
  TimestampGenerator gen(1);
  const Timestamp a = gen.Next(100);
  const Timestamp b = gen.Next(100);  // clock did not advance
  const Timestamp c = gen.Next(50);   // clock went backwards
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(TimestampGeneratorTest, UniqueAcrossManyIssues) {
  TimestampGenerator gen(7);
  std::set<Timestamp> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(gen.Next(i / 3)).second);
  }
}

TEST(TimestampGeneratorTest, TwoSitesNeverCollide) {
  TimestampGenerator g1(1), g2(2);
  std::set<Timestamp> seen;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(seen.insert(g1.Next(i)).second);
    EXPECT_TRUE(seen.insert(g2.Next(i)).second);
  }
}

}  // namespace
}  // namespace esr
