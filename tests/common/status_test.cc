#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace esr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::BoundViolation("x").code(), StatusCode::kBoundViolation);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("why").message(), "why");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::BoundViolation("TIL exceeded");
  EXPECT_EQ(s.ToString(), "BoundViolation: TIL exceeded");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("a"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::NotFound("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    ESR_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto wrapper = []() -> Status {
    ESR_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kBoundViolation),
            "BoundViolation");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace esr
