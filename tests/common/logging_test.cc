#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace esr {
namespace {

TEST(LoggingTest, LevelThresholdRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, BelowThresholdCostsNothingAndEmitsNothing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // The macro's short-circuit must skip evaluation of the stream
  // arguments entirely.
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  ESR_LOG(kDebug) << "never " << expensive();
  ESR_LOG(kInfo) << "never " << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(LoggingTest, AtOrAboveThresholdEvaluates) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  int evaluations = 0;
  auto counted = [&evaluations] {
    ++evaluations;
    return 7;
  };
  ESR_LOG(kWarning) << "emitted " << counted();
  ESR_LOG(kError) << "emitted " << counted();
  EXPECT_EQ(evaluations, 2);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesSilently) {
  ESR_CHECK(1 + 1 == 2) << "unused";
  SUCCEED();
}

TEST(LoggingSinkTest, CapturesStructuredRecords) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CapturingLogSink sink;
  LogSink* previous = SetLogSink(&sink);

  ESR_LOG(kInfo) << "hello " << 42;
  const int expected_line = __LINE__ - 1;
  ESR_LOG(kWarning) << "warn";
  ESR_LOG(kDebug) << "filtered out";

  SetLogSink(previous);
  SetLogLevel(original);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_EQ(records[0].message, "hello 42");
  EXPECT_NE(records[0].file.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(records[0].line, expected_line);
  EXPECT_GT(records[0].wall_micros, 0);
  EXPECT_GT(records[0].thread_id, 0u);
  EXPECT_EQ(records[1].level, LogLevel::kWarning);
  EXPECT_EQ(records[1].message, "warn");
}

TEST(LoggingSinkTest, SetSinkReturnsPreviousForRestore) {
  CapturingLogSink first;
  CapturingLogSink second;
  LogSink* original = SetLogSink(&first);
  EXPECT_EQ(SetLogSink(&second), &first);
  EXPECT_EQ(SetLogSink(original), &second);
}

TEST(LoggingSinkTest, ThreadIdsDistinguishThreads) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CapturingLogSink sink;
  LogSink* previous = SetLogSink(&sink);

  ESR_LOG(kInfo) << "main thread";
  std::thread other([] { ESR_LOG(kInfo) << "other thread"; });
  other.join();

  SetLogSink(previous);
  SetLogLevel(original);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].thread_id, records[1].thread_id);
}

TEST(LoggingSinkTest, ClearEmptiesCapturedRecords) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CapturingLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  ESR_LOG(kInfo) << "one";
  EXPECT_EQ(sink.count(), 1u);
  sink.Clear();
  EXPECT_EQ(sink.count(), 0u);
  SetLogSink(previous);
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(ESR_CHECK(false) << "boom", "Check failed: false");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(ESR_LOG(kFatal) << "fatal path", "fatal path");
}

}  // namespace
}  // namespace esr
