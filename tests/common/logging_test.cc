#include "common/logging.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

TEST(LoggingTest, LevelThresholdRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, BelowThresholdCostsNothingAndEmitsNothing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // The macro's short-circuit must skip evaluation of the stream
  // arguments entirely.
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  ESR_LOG(kDebug) << "never " << expensive();
  ESR_LOG(kInfo) << "never " << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(LoggingTest, AtOrAboveThresholdEvaluates) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  int evaluations = 0;
  auto counted = [&evaluations] {
    ++evaluations;
    return 7;
  };
  ESR_LOG(kWarning) << "emitted " << counted();
  ESR_LOG(kError) << "emitted " << counted();
  EXPECT_EQ(evaluations, 2);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesSilently) {
  ESR_CHECK(1 + 1 == 2) << "unused";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(ESR_CHECK(false) << "boom", "Check failed: false");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(ESR_LOG(kFatal) << "fatal path", "fatal path");
}

}  // namespace
}  // namespace esr
