// Property-based differential test: FlatMap must agree with
// std::unordered_map under any randomized sequence of insert / erase /
// lookup / clear, including the adversarial key regimes its open
// addressing is sensitive to — identity-hashed keys colliding into one
// home slot at the END of the slot array, so probe clusters wrap around
// and backward-shift erase has to move elements across the boundary.
// (The sharded engine's striped transaction table erases hot keys from
// exactly such clusters on every commit.)

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/random.h"

namespace esr {
namespace {

// How the trial draws keys.
enum class KeyRegime {
  kDense,      // [0, 200]: the engine's dense-id fast path
  kWrapping,   // ≡ 63 (mod 64): one home slot, clusters wrap the array
  kMixed,      // half and half
};

uint64_t DrawKey(Rng& rng, KeyRegime regime) {
  switch (regime) {
    case KeyRegime::kDense:
      return static_cast<uint64_t>(rng.UniformInt(0, 200));
    case KeyRegime::kWrapping:
      // Home slot 63 whenever capacity is 64; still one shared cluster
      // (slot capacity-1 region) at larger powers of two.
      return 63 + 64 * static_cast<uint64_t>(rng.UniformInt(0, 15));
    case KeyRegime::kMixed:
      return rng.UniformInt(0, 1) == 0
                 ? DrawKey(rng, KeyRegime::kDense)
                 : DrawKey(rng, KeyRegime::kWrapping);
  }
  return 0;
}

void ExpectMapsEqual(FlatMap<uint64_t, int>& map,
                     const std::unordered_map<uint64_t, int>& ref) {
  ASSERT_EQ(map.size(), ref.size());
  size_t seen = 0;
  map.ForEach([&](uint64_t key, int value) {
    ++seen;
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "phantom key " << key;
    EXPECT_EQ(it->second, value) << "key " << key;
  });
  EXPECT_EQ(seen, ref.size());
  for (const auto& [key, value] : ref) {
    const int* found = map.Find(key);
    ASSERT_NE(found, nullptr) << "lost key " << key;
    EXPECT_EQ(*found, value) << "key " << key;
  }
}

void RunTrial(uint64_t seed, KeyRegime regime) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Rng rng(seed);
  FlatMap<uint64_t, int> map;
  map.Reserve(16);  // start small so the trial crosses several rehashes
  std::unordered_map<uint64_t, int> ref;

  for (int step = 0; step < 6000; ++step) {
    const uint64_t key = DrawKey(rng, regime);
    const int64_t op = rng.UniformInt(0, 99);
    if (op < 30) {
      // TryEmplace: first write wins, both sides.
      const auto [value, inserted] = map.TryEmplace(key, step);
      const auto [it, ref_inserted] = ref.try_emplace(key, step);
      EXPECT_EQ(inserted, ref_inserted);
      EXPECT_EQ(*value, it->second);
    } else if (op < 45) {
      // operator[]: last write wins, both sides.
      map[key] = step;
      ref[key] = step;
    } else if (op < 80) {
      EXPECT_EQ(map.Erase(key), ref.erase(key) > 0);
    } else if (op < 97) {
      const int* found = map.Find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end()) << "key " << key;
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
      EXPECT_EQ(map.Contains(key), it != ref.end());
    } else if (op < 99) {
      // Rare full reconciliation mid-stream.
      ExpectMapsEqual(map, ref);
    } else {
      map.Clear();
      ref.clear();
      EXPECT_TRUE(map.empty());
    }
    ASSERT_EQ(map.size(), ref.size()) << "step " << step;
  }
  ExpectMapsEqual(map, ref);
}

TEST(FlatMapPropertyTest, DifferentialDenseKeys) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RunTrial(seed, KeyRegime::kDense);
  }
}

TEST(FlatMapPropertyTest, DifferentialWrappingClusters) {
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    RunTrial(seed, KeyRegime::kWrapping);
  }
}

TEST(FlatMapPropertyTest, DifferentialMixedRegime) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    RunTrial(seed, KeyRegime::kMixed);
  }
}

// Deterministic wraparound reproduction: fill one probe cluster homed at
// the last slot so it wraps to the front, then erase elements in an order
// that forces backward shifts across the boundary in both directions.
TEST(FlatMapPropertyTest, BackwardShiftEraseAcrossTheWraparound) {
  FlatMap<uint64_t, int> map;
  map.Reserve(16);
  const size_t cap = map.capacity();
  ASSERT_GE(cap, 16u);

  // Seven keys whose identity hash lands every one on slot cap-1: the
  // cluster occupies cap-1, 0, 1, 2, ...
  std::vector<uint64_t> keys;
  for (int i = 0; i < 7; ++i) {
    keys.push_back((cap - 1) + static_cast<uint64_t>(i) * cap);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    map[keys[i]] = static_cast<int>(i);
  }
  ASSERT_EQ(map.size(), keys.size());

  // Erase the cluster head (the slot before the wrap): every wrapped
  // element shifts back across the boundary.
  EXPECT_TRUE(map.Erase(keys[0]));
  EXPECT_FALSE(map.Contains(keys[0]));
  for (size_t i = 1; i < keys.size(); ++i) {
    const int* value = map.Find(keys[i]);
    ASSERT_NE(value, nullptr) << "key " << keys[i] << " lost in the shift";
    EXPECT_EQ(*value, static_cast<int>(i));
  }

  // Erase from the middle of the wrapped region, then re-insert the head
  // key; the cluster must stay internally consistent throughout.
  EXPECT_TRUE(map.Erase(keys[3]));
  map[keys[0]] = 100;
  EXPECT_FALSE(map.Contains(keys[3]));
  EXPECT_EQ(*map.Find(keys[0]), 100);
  for (const size_t i : {1u, 2u, 4u, 5u, 6u}) {
    ASSERT_NE(map.Find(keys[i]), nullptr) << "key " << keys[i];
    EXPECT_EQ(*map.Find(keys[i]), static_cast<int>(i));
  }
  EXPECT_EQ(map.size(), 6u);
}

}  // namespace
}  // namespace esr
