#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace esr {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntStaysInRangeAndHitsEndpoints) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    saw_lo |= (v == -3);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.UniformInt(0, 100));
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng(29);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(37);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.NextU64());
  rng.Seed(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextU64(), first[i]);
}

}  // namespace
}  // namespace esr
