// Robustness tests for the script-language front end: random garbage,
// random token soup, and systematic truncation of valid programs must
// produce a Status error (never a crash, hang, or CHECK failure).

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "lang/parser.h"

namespace esr {
namespace lang {
namespace {

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(2026);
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const int64_t length = rng.UniformInt(0, 200);
    for (int64_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.UniformInt(32, 126));
    }
    // Either parses (vanishingly unlikely) or errors; must not crash.
    (void)ParseScript(garbage);
  }
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* tokens[] = {"BEGIN", "Query",  "Update", "TIL",   "TEL",
                          "LIMIT", "Read",   "Write",  "output", "COMMIT",
                          "END",   "t1",     "t2",     "company", "1863",
                          "=",     "+",      "-",      ",",       "(",
                          ")",     "\"str\"", "#c",    "\n"};
  Rng rng(77);
  for (int round = 0; round < 500; ++round) {
    std::string soup;
    const int64_t length = rng.UniformInt(1, 60);
    for (int64_t i = 0; i < length; ++i) {
      soup += tokens[rng.UniformInt(0, 23)];
      soup += ' ';
    }
    (void)ParseScript(soup);
  }
}

TEST(ParserFuzzTest, TruncationsOfValidProgramErrorGracefully) {
  const std::string program =
      "BEGIN Update TEL = 10000\n"
      "t1 = Read 1923\n"
      "t2 = Read 1644\n"
      "Write 1078 , t2+3000\n"
      "output(\"x\", t1-t2)\n"
      "COMMIT\n";
  for (size_t cut = 0; cut < program.size(); ++cut) {
    const auto result = ParseScript(program.substr(0, cut));
    if (result.ok()) {
      // Only the empty prefix, or one reaching the terminating COMMIT
      // token, may parse — and then as at most one transaction.
      EXPECT_LE(result->size(), 1u) << "cut=" << cut;
      if (!result->empty()) {
        EXPECT_GE(cut, program.size() - 1) << "cut=" << cut;
      }
    }
  }
  // The full program parses.
  EXPECT_TRUE(ParseScript(program).ok());
}

TEST(ParserFuzzTest, DeeplyNestedExpressionsAreFine) {
  std::string program = "BEGIN Query TIL 1\nt1 = Read 1\noutput(\"s\", t1";
  for (int i = 0; i < 2000; ++i) program += " + 1";
  program += ")\nCOMMIT\n";
  const auto result = ParseScript(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].statements[1].expr.terms.size(), 2001u);
}

TEST(ParserFuzzTest, ManyTransactionsParseLinearly) {
  std::string program;
  for (int i = 0; i < 500; ++i) {
    program += "BEGIN Query TIL 10\nt1 = Read " + std::to_string(i) +
               "\nCOMMIT\n";
  }
  const auto result = ParseScript(program);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 500u);
}

}  // namespace
}  // namespace lang
}  // namespace esr
