#include "lang/parser.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace esr {
namespace lang {
namespace {

TEST(ParserTest, PaperQueryExample) {
  // Verbatim from Sec. 3.2.1 (shortened).
  const auto txn = ParseSingleTxn(R"(
    BEGIN Query TIL = 100000
    t1 = Read 1863
    t2 = Read 1427
    t3 = Read 1912
    output("Sum is: ", t1+t2+t3)
    COMMIT
  )");
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_EQ(txn->type, TxnType::kQuery);
  EXPECT_EQ(txn->transaction_limit, 100000);
  ASSERT_EQ(txn->statements.size(), 4u);
  EXPECT_EQ(txn->statements[0].kind, Stmt::Kind::kRead);
  EXPECT_EQ(txn->statements[0].variable, "t1");
  EXPECT_EQ(txn->statements[0].object, 1863u);
  EXPECT_EQ(txn->statements[3].kind, Stmt::Kind::kOutput);
  EXPECT_EQ(txn->statements[3].label, "Sum is: ");
  EXPECT_EQ(txn->statements[3].expr.terms.size(), 3u);
}

TEST(ParserTest, PaperUpdateExample) {
  // Verbatim from Sec. 3.2.1.
  const auto txn = ParseSingleTxn(R"(
    BEGIN Update TEL = 10000
    t1 = Read 1923
    t2 = Read 1644
    Write 1078 , t2+3000
    t3 = Read 1066
    t4 = Read 1213
    Write 1727 , t3-t4+4230
    Write 1501 , t1+t4+7935
    COMMIT
  )");
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_EQ(txn->type, TxnType::kUpdate);
  EXPECT_EQ(txn->transaction_limit, 10000);
  ASSERT_EQ(txn->statements.size(), 7u);
  const Stmt& w2 = txn->statements[5];  // Write 1727 , t3-t4+4230
  EXPECT_EQ(w2.kind, Stmt::Kind::kWrite);
  EXPECT_EQ(w2.object, 1727u);
  ASSERT_EQ(w2.expr.terms.size(), 3u);
  EXPECT_EQ(w2.expr.terms[0].variable, "t3");
  EXPECT_EQ(w2.expr.terms[0].sign, 1);
  EXPECT_EQ(w2.expr.terms[1].variable, "t4");
  EXPECT_EQ(w2.expr.terms[1].sign, -1);
  EXPECT_EQ(w2.expr.terms[2].literal, 4230);
}

TEST(ParserTest, HierarchicalDeclarationFromSec31) {
  const auto txn = ParseSingleTxn(R"(
    BEGIN Query TIL 10000
    LIMIT company 4000
    LIMIT preferred 3000
    LIMIT personal 3000
    LIMIT com1 200
    t1 = Read 2745
    t2 = Read 4639
    END
  )");
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_EQ(txn->transaction_limit, 10000);
  ASSERT_EQ(txn->group_limits.size(), 4u);
  EXPECT_EQ(txn->group_limits[0].group, "company");
  EXPECT_EQ(txn->group_limits[0].limit, 4000);
  EXPECT_EQ(txn->group_limits[3].group, "com1");
  EXPECT_EQ(txn->group_limits[3].limit, 200);
}

TEST(ParserTest, MultipleTransactionsAndComments) {
  const auto txns = ParseScript(R"(
    # load file with two transactions
    BEGIN Query TIL 5
    t1 = Read 1
    COMMIT
    // second one
    BEGIN Update TEL 7
    t1 = Read 2
    Write 3 , t1 + 1
    COMMIT
  )");
  ASSERT_TRUE(txns.ok()) << txns.status().ToString();
  ASSERT_EQ(txns->size(), 2u);
  EXPECT_EQ((*txns)[0].type, TxnType::kQuery);
  EXPECT_EQ((*txns)[1].type, TxnType::kUpdate);
}

TEST(ParserTest, AbortTerminatorParses) {
  const auto txn = ParseSingleTxn(R"(
    BEGIN Update TEL 10
    t1 = Read 1
    Write 2 , t1+5
    ABORT
  )");
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_TRUE(txn->ends_with_abort);
  EXPECT_EQ(txn->statements.size(), 2u);
  const auto committed = ParseSingleTxn("BEGIN Query\nCOMMIT");
  ASSERT_TRUE(committed.ok());
  EXPECT_FALSE(committed->ends_with_abort);
}

TEST(ParserTest, MissingBoundMeansUnbounded) {
  const auto txn = ParseSingleTxn("BEGIN Query\nt1 = Read 1\nCOMMIT");
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(txn->transaction_limit, kUnbounded);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSingleTxn("t1 = Read 1").ok());          // no BEGIN
  EXPECT_FALSE(ParseSingleTxn("BEGIN Foo\nCOMMIT").ok());    // bad type
  EXPECT_FALSE(ParseSingleTxn("BEGIN Query\nt1 = Read 1").ok());  // no end
  EXPECT_FALSE(
      ParseSingleTxn("BEGIN Query TEL 5\nCOMMIT").ok());  // TEL on query
  EXPECT_FALSE(
      ParseSingleTxn("BEGIN Query\nWrite 1 , 2\nCOMMIT").ok());  // RO
  EXPECT_FALSE(
      ParseSingleTxn("BEGIN Query\nt1 = Read\nCOMMIT").ok());  // no id
  EXPECT_FALSE(ParseSingleTxn("BEGIN Update\nWrite 1 t1\nCOMMIT").ok());
  EXPECT_FALSE(ParseSingleTxn("BEGIN Query $\nCOMMIT").ok());  // bad char
  const auto err = ParseSingleTxn("BEGIN Query\nt1 = Read x\nCOMMIT");
  ASSERT_FALSE(err.ok());
  // Errors carry line numbers.
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, UnterminatedString) {
  EXPECT_FALSE(
      ParseSingleTxn("BEGIN Query\noutput(\"oops, t1)\nCOMMIT").ok());
}

TEST(FormatTest, GeneratedLoadRoundTrips) {
  WorkloadSpec spec;
  WorkloadGenerator generator(spec, 77);
  const std::vector<TxnScript> load = generator.MakeLoad(20);
  const std::string text = FormatLoad(load);

  const auto parsed = ParseScript(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), load.size());
  for (size_t i = 0; i < load.size(); ++i) {
    const auto lowered = LowerToTxnScript((*parsed)[i]);
    ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
    ASSERT_EQ(lowered->type, load[i].type);
    EXPECT_EQ(lowered->bounds.transaction_limit(),
              load[i].bounds.transaction_limit());
    ASSERT_EQ(lowered->ops.size(), load[i].ops.size());
    for (size_t j = 0; j < load[i].ops.size(); ++j) {
      EXPECT_EQ(lowered->ops[j].kind, load[i].ops[j].kind);
      EXPECT_EQ(lowered->ops[j].object, load[i].ops[j].object);
      EXPECT_EQ(lowered->ops[j].source_read, load[i].ops[j].source_read);
      EXPECT_EQ(lowered->ops[j].delta, load[i].ops[j].delta);
    }
  }
}

TEST(LowerTest, RejectsComplexWriteExpressions) {
  const auto txn = ParseSingleTxn(R"(
    BEGIN Update TEL 10
    t1 = Read 1
    t2 = Read 2
    Write 3 , t1+t2
    COMMIT
  )");
  ASSERT_TRUE(txn.ok());
  EXPECT_FALSE(LowerToTxnScript(*txn).ok());
}

TEST(LowerTest, RejectsUndefinedVariable) {
  const auto txn = ParseSingleTxn(R"(
    BEGIN Update TEL 10
    t1 = Read 1
    Write 3 , t9+5
    COMMIT
  )");
  ASSERT_TRUE(txn.ok());
  const auto lowered = LowerToTxnScript(*txn);
  ASSERT_FALSE(lowered.ok());
  EXPECT_NE(lowered.status().message().find("t9"), std::string::npos);
}

}  // namespace
}  // namespace lang
}  // namespace esr
