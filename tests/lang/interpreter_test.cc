#include "lang/interpreter.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace esr {
namespace lang {
namespace {

struct ScriptFixture {
  Database db;
  Session session;

  static ServerOptions Options() {
    ServerOptions opt;
    opt.store.num_objects = 32;
    opt.store.seed = 4;
    return opt;
  }

  ScriptFixture() : db(Options()), session(db.CreateSession(1)) {
    for (ObjectId id = 0; id < 32; ++id) {
      EXPECT_TRUE(db.LoadValue(id, 100 * (id + 1)).ok());
    }
  }

  Result<ExecOutcome> Run(std::string_view source) {
    auto txn = ParseSingleTxn(source);
    if (!txn.ok()) return txn.status();
    return ExecuteTxn(&session, db.schema(), *txn);
  }
};

TEST(InterpreterTest, SumQueryProducesOutput) {
  ScriptFixture f;
  const auto outcome = f.Run(R"(
    BEGIN Query TIL 1000
    t1 = Read 0
    t2 = Read 1
    t3 = Read 2
    output("Sum is: ", t1+t2+t3)
    COMMIT
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->outputs.size(), 1u);
  EXPECT_EQ(outcome->outputs[0], "Sum is: 600");
  EXPECT_EQ(outcome->retries, 0);
  EXPECT_EQ(outcome->inconsistency, 0.0);
}

TEST(InterpreterTest, UpdateWritesDerivedValues) {
  ScriptFixture f;
  const auto outcome = f.Run(R"(
    BEGIN Update TEL 10000
    t1 = Read 0
    t2 = Read 1
    Write 5 , t2+3000
    Write 6 , t1-t2+4230
    COMMIT
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(*f.db.PeekValue(5), 200 + 3000);
  EXPECT_EQ(*f.db.PeekValue(6), 100 - 200 + 4230);
}

TEST(InterpreterTest, GroupLimitsResolveAgainstSchema) {
  ScriptFixture f;
  const GroupId company = *f.db.schema().AddGroup("company", kRootGroup);
  ASSERT_TRUE(f.db.schema().AssignObject(0, company).ok());

  // Pend an update so the query must import inconsistency from "company".
  TxnHandle pending = f.session.Begin(TxnType::kUpdate, BoundSpec());
  const OpResult r = pending.Read(0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  ASSERT_EQ(pending.Write(0, r.value + 500).kind, OpResult::Kind::kOk);

  Session reader = f.db.CreateSession(2);
  auto txn = ParseSingleTxn(R"(
    BEGIN Query TIL 10000
    LIMIT company 400
    t1 = Read 0
    COMMIT
  )");
  ASSERT_TRUE(txn.ok());
  const auto rejected = ExecuteTxn(&reader, f.db.schema(), *txn,
                                   /*max_restarts=*/1);
  EXPECT_FALSE(rejected.ok());  // d = 500 > LIMIT company 400

  auto loose = ParseSingleTxn(R"(
    BEGIN Query TIL 10000
    LIMIT company 600
    t1 = Read 0
    output("balance ", t1)
    COMMIT
  )");
  ASSERT_TRUE(loose.ok());
  const auto admitted = ExecuteTxn(&reader, f.db.schema(), *loose);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(admitted->inconsistency, 500.0);
  EXPECT_EQ(admitted->outputs[0], "balance 600");

  ASSERT_TRUE(pending.Commit().ok());
}

TEST(InterpreterTest, UnknownGroupNameFailsBeforeExecution) {
  ScriptFixture f;
  const auto outcome = f.Run(R"(
    BEGIN Query TIL 10
    LIMIT nosuchgroup 5
    t1 = Read 0
    COMMIT
  )");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterTest, UndefinedVariableInWrite) {
  ScriptFixture f;
  const auto outcome = f.Run(R"(
    BEGIN Update TEL 10
    Write 5 , t1+5
    COMMIT
  )");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(InterpreterTest, AbortTerminatorRollsBack) {
  ScriptFixture f;
  const auto outcome = f.Run(R"(
    BEGIN Update TEL 100000
    t1 = Read 0
    Write 0 , t1+999
    output("pending: ", t1+999)
    ABORT
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->outputs[0], "pending: 1099");
  // The deliberate abort restored the shadow value.
  EXPECT_EQ(*f.db.PeekValue(0), 100);
}

TEST(InterpreterTest, ScriptOfMultipleTransactions) {
  ScriptFixture f;
  auto txns = ParseScript(R"(
    BEGIN Update TEL 100000
    t1 = Read 0
    Write 0 , t1+50
    COMMIT

    BEGIN Query TIL 100000
    t1 = Read 0
    output("after: ", t1)
    COMMIT
  )");
  ASSERT_TRUE(txns.ok());
  const auto outcomes = ExecuteScript(&f.session, f.db.schema(), *txns);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 2u);
  EXPECT_EQ((*outcomes)[1].outputs[0], "after: 150");
}

TEST(InterpreterTest, QueryRetriesThroughServerAborts) {
  // A zero-bound query racing a pending writer aborts/waits; once the
  // writer commits it succeeds. Simulate by committing before running.
  ScriptFixture f;
  const auto outcome = f.Run(R"(
    BEGIN Query TIL 0
    t1 = Read 7
    output("v=", t1)
    COMMIT
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->outputs[0], "v=800");
}

}  // namespace
}  // namespace lang
}  // namespace esr
