#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace esr {
namespace {

WorkloadSpec DefaultSpec() { return WorkloadSpec{}; }

TEST(GeneratorTest, DeterministicGivenSeed) {
  WorkloadGenerator a(DefaultSpec(), 42), b(DefaultSpec(), 42);
  for (int i = 0; i < 50; ++i) {
    const TxnScript sa = a.Next();
    const TxnScript sb = b.Next();
    ASSERT_EQ(sa.type, sb.type);
    ASSERT_EQ(sa.ops.size(), sb.ops.size());
    for (size_t j = 0; j < sa.ops.size(); ++j) {
      EXPECT_EQ(sa.ops[j].object, sb.ops[j].object);
      EXPECT_EQ(sa.ops[j].delta, sb.ops[j].delta);
    }
  }
}

TEST(GeneratorTest, QueryShapeMatchesPaper) {
  WorkloadGenerator gen(DefaultSpec(), 1);
  for (int i = 0; i < 100; ++i) {
    const TxnScript s = gen.NextQuery();
    EXPECT_EQ(s.type, TxnType::kQuery);
    EXPECT_GE(s.num_reads(), 16);
    EXPECT_LE(s.num_reads(), 24);
    EXPECT_EQ(s.num_writes(), 0);  // query ETs are read-only
  }
}

TEST(GeneratorTest, UpdateShapeMatchesPaper) {
  WorkloadGenerator gen(DefaultSpec(), 2);
  for (int i = 0; i < 100; ++i) {
    const TxnScript s = gen.NextUpdate();
    EXPECT_EQ(s.type, TxnType::kUpdate);
    EXPECT_GE(s.ops.size(), 4u);
    EXPECT_LE(s.ops.size(), 8u);
    EXPECT_GE(s.num_reads(), 1);
    EXPECT_GE(s.num_writes(), 1);
  }
}

TEST(GeneratorTest, AverageOpCountsNearPaperFigures) {
  WorkloadGenerator gen(DefaultSpec(), 3);
  double query_ops = 0, update_ops = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    query_ops += static_cast<double>(gen.NextQuery().ops.size());
    update_ops += static_cast<double>(gen.NextUpdate().ops.size());
  }
  EXPECT_NEAR(query_ops / n, 20.0, 0.5);   // "about 20 operations"
  EXPECT_NEAR(update_ops / n, 6.0, 0.25);  // "around 6 operations"
}

TEST(GeneratorTest, WritesDeriveFromEarlierReads) {
  WorkloadGenerator gen(DefaultSpec(), 4);
  for (int i = 0; i < 100; ++i) {
    const TxnScript s = gen.NextUpdate();
    const int64_t reads = s.num_reads();
    for (const ScriptOp& op : s.ops) {
      if (op.kind == ScriptOp::Kind::kWrite) {
        EXPECT_GE(op.source_read, 0);
        EXPECT_LT(op.source_read, reads);
        EXPECT_NE(op.delta, 0);
      }
    }
  }
}

TEST(GeneratorTest, ObjectsWithinTransactionAreDistinct) {
  // One read per object per transaction (Sec. 3.2.1); the generator also
  // keeps write targets distinct from each other.
  WorkloadGenerator gen(DefaultSpec(), 5);
  for (int i = 0; i < 50; ++i) {
    const TxnScript s = gen.NextQuery();
    std::set<ObjectId> seen;
    for (const ScriptOp& op : s.ops) {
      EXPECT_TRUE(seen.insert(op.object).second)
          << "duplicate object " << op.object;
    }
  }
}

TEST(GeneratorTest, QueryHotSetSkewApproximatesSpec) {
  WorkloadSpec spec = DefaultSpec();
  spec.query_hot_prob = 0.9;
  WorkloadGenerator gen(spec, 6);
  int64_t hot = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    for (const ScriptOp& op : gen.NextQuery().ops) {
      hot += op.object < spec.hot_set_size ? 1 : 0;
      ++total;
    }
  }
  // Distinctness truncates the skew (only 20 hot objects exist), so the
  // realized hot fraction sits below the nominal probability but far
  // above uniform (20/1000 = 2%).
  const double frac = static_cast<double>(hot) / static_cast<double>(total);
  EXPECT_GT(frac, 0.6);
}

TEST(GeneratorTest, DeltasHaveMeanMagnitudeW) {
  WorkloadSpec spec = DefaultSpec();
  spec.small_write_delta = 250;
  spec.large_write_delta = 5000;
  spec.large_delta_prob = 0.1;
  WorkloadGenerator gen(spec, 7);
  double sum = 0;
  int64_t n = 0, large = 0;
  for (int i = 0; i < 4000; ++i) {
    for (const ScriptOp& op : gen.NextUpdate().ops) {
      if (op.kind == ScriptOp::Kind::kWrite) {
        const double mag =
            static_cast<double>(op.delta < 0 ? -op.delta : op.delta);
        sum += mag;
        large += mag >= 2500.0 ? 1 : 0;
        ++n;
      }
    }
  }
  // Mixture mean = 0.9 * 250 + 0.1 * 5000 = 725.
  EXPECT_NEAR(sum / static_cast<double>(n), spec.MeanWriteDelta(), 40.0);
  // About 10% of writes are large.
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(n), 0.1,
              0.02);
}

TEST(GeneratorTest, MixFollowsQueryFraction) {
  WorkloadSpec spec = DefaultSpec();
  spec.query_fraction = 0.25;
  WorkloadGenerator gen(spec, 8);
  int queries = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    queries += gen.Next().type == TxnType::kQuery ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(queries) / n, 0.25, 0.03);
}

TEST(GeneratorTest, BoundsComeFromSpecLimits) {
  WorkloadSpec spec = DefaultSpec();
  spec.til = 12345;
  spec.tel = 678;
  WorkloadGenerator gen(spec, 9);
  EXPECT_EQ(gen.NextQuery().bounds.transaction_limit(), 12345);
  EXPECT_EQ(gen.NextUpdate().bounds.transaction_limit(), 678);
}

TEST(GeneratorTest, BoundFactoryOverridesLimits) {
  WorkloadSpec spec = DefaultSpec();
  spec.bound_factory = [](TxnType type) {
    return BoundSpec::TransactionOnly(type == TxnType::kQuery ? 7 : 8);
  };
  WorkloadGenerator gen(spec, 10);
  EXPECT_EQ(gen.NextQuery().bounds.transaction_limit(), 7);
  EXPECT_EQ(gen.NextUpdate().bounds.transaction_limit(), 8);
}

TEST(GeneratorTest, MakeLoadProducesRequestedCount) {
  WorkloadGenerator gen(DefaultSpec(), 11);
  EXPECT_EQ(gen.MakeLoad(37).size(), 37u);
}

TEST(ApplyDeltaTest, StaysInRangeAndReflects) {
  EXPECT_EQ(ApplyDeltaReflecting(5000, 200, 1000, 9999), 5200);
  EXPECT_EQ(ApplyDeltaReflecting(5000, -200, 1000, 9999), 4800);
  // Reflection at the top edge: 9900 + 300 = 10200 -> 9999 - 201 = 9798.
  EXPECT_EQ(ApplyDeltaReflecting(9900, 300, 1000, 9999), 9798);
  // Reflection at the bottom edge: 1100 - 300 = 800 -> 1000 + 200 = 1200.
  EXPECT_EQ(ApplyDeltaReflecting(1100, -300, 1000, 9999), 1200);
}

TEST(ApplyDeltaTest, ExtremeDeltasStillClamped) {
  const Value v = ApplyDeltaReflecting(5000, 100000, 1000, 9999);
  EXPECT_GE(v, 1000);
  EXPECT_LE(v, 9999);
}

}  // namespace
}  // namespace esr
