#include "harness/harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace esr {
namespace bench {
namespace {

// Builds a mutable argv from string literals for the flag-scan tests.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

TEST(FlagValueTest, FindsFlagAnywhereInArgv) {
  Argv args({"bin", "--json", "out.json", "--jobs", "4"});
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--jobs", nullptr), "4");
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--json", nullptr),
            "out.json");
}

TEST(FlagValueTest, FirstOccurrenceWins) {
  Argv args({"bin", "--jobs", "2", "--jobs", "9"});
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--jobs", nullptr), "2");
}

TEST(FlagValueTest, MissingValueIsIgnored) {
  Argv args({"bin", "--jobs"});
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--jobs", nullptr), "");
}

TEST(FlagValueTest, EnvironmentIsTheFallback) {
  Argv args({"bin"});
  ::setenv("ESR_TEST_FLAG_FALLBACK", "from-env", /*overwrite=*/1);
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--nope",
                      "ESR_TEST_FLAG_FALLBACK"),
            "from-env");
  Argv with_flag({"bin", "--nope", "from-argv"});
  EXPECT_EQ(FlagValue(with_flag.argc(), with_flag.argv(), "--nope",
                      "ESR_TEST_FLAG_FALLBACK"),
            "from-argv");
  ::unsetenv("ESR_TEST_FLAG_FALLBACK");
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--nope",
                      "ESR_TEST_FLAG_FALLBACK"),
            "");
}

TEST(JobsFromArgsTest, FlagWinsOverEnvironment) {
  ::setenv("ESR_BENCH_JOBS", "3", /*overwrite=*/1);
  Argv args({"bin", "--jobs", "5"});
  EXPECT_EQ(JobsFromArgs(args.argc(), args.argv()), 5);
  Argv no_flag({"bin"});
  EXPECT_EQ(JobsFromArgs(no_flag.argc(), no_flag.argv()), 3);
  ::unsetenv("ESR_BENCH_JOBS");
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 4}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), jobs, [&](size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, InlineWhenSingleJob) {
  const std::thread::id self = std::this_thread::get_id();
  bool same_thread = false;
  ParallelFor(1, /*jobs=*/1,
              [&](size_t) { same_thread = std::this_thread::get_id() == self; });
  EXPECT_TRUE(same_thread);
}

TEST(SeedForRunTest, MatchesTheDocumentedFormula) {
  EXPECT_EQ(SeedForRun(0), 7919u);
  EXPECT_EQ(SeedForRun(1), 2u * 7919u);
  EXPECT_EQ(SeedForRun(6), 7u * 7919u);
}

// Short simulation windows keep the determinism tests fast while still
// exercising real Cluster runs end to end.
RunScale TinyScale() {
  RunScale scale;
  scale.warmup_s = 0.05;
  scale.measure_s = 0.3;
  scale.seeds = 2;
  return scale;
}

std::string ReportJson(const Sweep& sweep, const RunScale& scale,
                       size_t points) {
  JsonReport report("harness_test", scale);
  for (size_t p = 0; p < points; ++p) {
    report.AddPoint("series", static_cast<double>(p), sweep.Result(p));
  }
  std::ostringstream out;
  report.Write(out);
  return out.str();
}

TEST(SweepTest, SerialAndParallelReportsAreByteIdentical) {
  const RunScale scale = TinyScale();
  const int kPoints = 3;
  std::string serial, parallel;
  {
    Sweep sweep(scale, /*jobs=*/1);
    for (int mpl = 1; mpl <= kPoints; ++mpl) {
      sweep.Add(BaseOptions(EpsilonLevel::kHigh, mpl, scale));
    }
    sweep.Run();
    serial = ReportJson(sweep, scale, kPoints);
  }
  {
    Sweep sweep(scale, /*jobs=*/8);
    for (int mpl = 1; mpl <= kPoints; ++mpl) {
      sweep.Add(BaseOptions(EpsilonLevel::kHigh, mpl, scale));
    }
    sweep.Run();
    parallel = ReportJson(sweep, scale, kPoints);
  }
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(SweepTest, RunAveragedMatchesSweepForAnyJobsCount) {
  const RunScale scale = TinyScale();
  const ClusterOptions options =
      BaseOptions(EpsilonLevel::kMedium, /*mpl=*/2, scale);
  const AveragedResult serial = RunAveraged(options, scale, /*jobs=*/1);
  const AveragedResult parallel = RunAveraged(options, scale, /*jobs=*/8);
  EXPECT_EQ(serial.throughput, parallel.throughput);
  EXPECT_EQ(serial.throughput_stddev, parallel.throughput_stddev);
  EXPECT_EQ(serial.committed, parallel.committed);
  EXPECT_EQ(serial.aborts, parallel.aborts);
  EXPECT_EQ(serial.ops_executed, parallel.ops_executed);
  EXPECT_EQ(serial.inconsistent_ops, parallel.inconsistent_ops);
  EXPECT_EQ(serial.avg_txn_latency_ms, parallel.avg_txn_latency_ms);
  EXPECT_EQ(serial.latency_ms.count(), parallel.latency_ms.count());
  EXPECT_EQ(serial.latency_ms.mean(), parallel.latency_ms.mean());
}

}  // namespace
}  // namespace bench
}  // namespace esr
