#include "harness/harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/series.h"
#include "obs/trace.h"

namespace esr {
namespace bench {
namespace {

// Builds a mutable argv from string literals for the flag-scan tests.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

TEST(FlagValueTest, FindsFlagAnywhereInArgv) {
  Argv args({"bin", "--json", "out.json", "--jobs", "4"});
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--jobs", nullptr), "4");
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--json", nullptr),
            "out.json");
}

TEST(FlagValueTest, FirstOccurrenceWins) {
  Argv args({"bin", "--jobs", "2", "--jobs", "9"});
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--jobs", nullptr), "2");
}

TEST(FlagValueTest, MissingValueIsIgnored) {
  Argv args({"bin", "--jobs"});
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--jobs", nullptr), "");
}

TEST(FlagValueTest, EnvironmentIsTheFallback) {
  Argv args({"bin"});
  ::setenv("ESR_TEST_FLAG_FALLBACK", "from-env", /*overwrite=*/1);
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--nope",
                      "ESR_TEST_FLAG_FALLBACK"),
            "from-env");
  Argv with_flag({"bin", "--nope", "from-argv"});
  EXPECT_EQ(FlagValue(with_flag.argc(), with_flag.argv(), "--nope",
                      "ESR_TEST_FLAG_FALLBACK"),
            "from-argv");
  ::unsetenv("ESR_TEST_FLAG_FALLBACK");
  EXPECT_EQ(FlagValue(args.argc(), args.argv(), "--nope",
                      "ESR_TEST_FLAG_FALLBACK"),
            "");
}

TEST(JobsFromArgsTest, FlagWinsOverEnvironment) {
  ::setenv("ESR_BENCH_JOBS", "3", /*overwrite=*/1);
  Argv args({"bin", "--jobs", "5"});
  EXPECT_EQ(JobsFromArgs(args.argc(), args.argv()), 5);
  Argv no_flag({"bin"});
  EXPECT_EQ(JobsFromArgs(no_flag.argc(), no_flag.argv()), 3);
  ::unsetenv("ESR_BENCH_JOBS");
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 4}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), jobs, [&](size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, InlineWhenSingleJob) {
  const std::thread::id self = std::this_thread::get_id();
  bool same_thread = false;
  ParallelFor(1, /*jobs=*/1,
              [&](size_t) { same_thread = std::this_thread::get_id() == self; });
  EXPECT_TRUE(same_thread);
}

TEST(SeedForRunTest, MatchesTheDocumentedFormula) {
  EXPECT_EQ(SeedForRun(0), 7919u);
  EXPECT_EQ(SeedForRun(1), 2u * 7919u);
  EXPECT_EQ(SeedForRun(6), 7u * 7919u);
}

// Short simulation windows keep the determinism tests fast while still
// exercising real Cluster runs end to end.
RunScale TinyScale() {
  RunScale scale;
  scale.warmup_s = 0.05;
  scale.measure_s = 0.3;
  scale.seeds = 2;
  return scale;
}

std::string ReportJson(const Sweep& sweep, const RunScale& scale,
                       size_t points) {
  JsonReport report("harness_test", scale);
  for (size_t p = 0; p < points; ++p) {
    report.AddPoint("series", static_cast<double>(p), sweep.Result(p));
  }
  std::ostringstream out;
  report.Write(out);
  return out.str();
}

TEST(SweepTest, SerialAndParallelReportsAreByteIdentical) {
  const RunScale scale = TinyScale();
  const int kPoints = 3;
  std::string serial, parallel;
  {
    Sweep sweep(scale, /*jobs=*/1);
    for (int mpl = 1; mpl <= kPoints; ++mpl) {
      sweep.Add(BaseOptions(EpsilonLevel::kHigh, mpl, scale));
    }
    sweep.Run();
    serial = ReportJson(sweep, scale, kPoints);
  }
  {
    Sweep sweep(scale, /*jobs=*/8);
    for (int mpl = 1; mpl <= kPoints; ++mpl) {
      sweep.Add(BaseOptions(EpsilonLevel::kHigh, mpl, scale));
    }
    sweep.Run();
    parallel = ReportJson(sweep, scale, kPoints);
  }
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(SweepTest, RunAveragedMatchesSweepForAnyJobsCount) {
  const RunScale scale = TinyScale();
  const ClusterOptions options =
      BaseOptions(EpsilonLevel::kMedium, /*mpl=*/2, scale);
  const AveragedResult serial = RunAveraged(options, scale, /*jobs=*/1);
  const AveragedResult parallel = RunAveraged(options, scale, /*jobs=*/8);
  EXPECT_EQ(serial.throughput, parallel.throughput);
  EXPECT_EQ(serial.throughput_stddev, parallel.throughput_stddev);
  EXPECT_EQ(serial.ci90_rel, parallel.ci90_rel);
  EXPECT_EQ(serial.committed, parallel.committed);
  EXPECT_EQ(serial.aborts, parallel.aborts);
  EXPECT_EQ(serial.ops_executed, parallel.ops_executed);
  EXPECT_EQ(serial.inconsistent_ops, parallel.inconsistent_ops);
  EXPECT_EQ(serial.avg_txn_latency_ms, parallel.avg_txn_latency_ms);
  EXPECT_EQ(serial.latency_ms.count(), parallel.latency_ms.count());
  EXPECT_EQ(serial.latency_ms.mean(), parallel.latency_ms.mean());
}

TEST(SweepTest, CiHalfWidthIsPopulatedAcrossSeeds) {
  const RunScale scale = TinyScale();  // two seeds: a CI exists
  const AveragedResult r =
      RunAveraged(BaseOptions(EpsilonLevel::kMedium, /*mpl=*/3, scale),
                  scale, /*jobs=*/1);
  ASSERT_GT(r.throughput, 0.0);
  // Two distinct seeds essentially never tie exactly.
  EXPECT_GT(r.ci90_rel, 0.0);
  // ci90_rel is the Student-t half-width over the per-seed throughputs,
  // relative to the mean; with stddev known, cross-check the formula
  // (n = 2, t_{0.95,1} = 6.314, hw = t * s / sqrt(2)).
  const double expected =
      6.314 * r.throughput_stddev / std::sqrt(2.0) / r.throughput;
  EXPECT_NEAR(r.ci90_rel, expected, 1e-4 * expected);
}

TEST(SweepTest, AutoWarmupResolvesProvenance) {
  const RunScale scale = TinyScale();
  Sweep sweep(scale, /*jobs=*/1);
  sweep.Add(BaseOptions(EpsilonLevel::kHigh, /*mpl=*/2, scale));
  sweep.Run();
  const RunScale& resolved = sweep.scale();
  // The calibration either resolved a truncation point or fell back —
  // both outcomes must be recorded, and warmup can never eat more than
  // half the measurement budget.
  EXPECT_TRUE(resolved.warmup_source == "mser5" ||
              resolved.warmup_source == "preset-fallback")
      << resolved.warmup_source;
  if (resolved.warmup_source == "mser5") {
    EXPECT_LE(resolved.warmup_s, scale.measure_s / 2.0);
    EXPECT_GE(resolved.warmup_s, 0.0);
  } else {
    EXPECT_EQ(resolved.warmup_s, scale.warmup_s);
  }
}

TEST(SweepTest, SeriesExportIsByteIdenticalAcrossJobs) {
  const RunScale scale = TinyScale();
  const auto run_with_jobs = [&](int jobs, const std::string& path) {
    Sweep sweep(scale, jobs);
    for (int mpl = 1; mpl <= 3; ++mpl) {
      sweep.Add(BaseOptions(EpsilonLevel::kHigh, mpl, scale));
    }
    sweep.set_auto_warmup(false);
    sweep.set_series_export(path, "harness_test");
    sweep.Run();
  };
  const std::string serial_path =
      ::testing::TempDir() + "/series_serial.csv";
  const std::string parallel_path =
      ::testing::TempDir() + "/series_parallel.csv";
  run_with_jobs(1, serial_path);
  run_with_jobs(8, parallel_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const std::string serial = slurp(serial_path);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(parallel_path));

  // The export is a valid series file tagged with the figure source.
  Result<RunSeries> series = ReadSeriesCsvFile(serial_path);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_FALSE(series->windows.empty());
  EXPECT_NE(series->source.find("harness_test"), std::string::npos);
}

TEST(CertifyFromArgsTest, FlagOrEnvironmentEnables) {
  Argv with_flag({"bin", "--certify"});
  EXPECT_TRUE(CertifyFromArgs(with_flag.argc(), with_flag.argv()));
  Argv no_flag({"bin"});
  EXPECT_FALSE(CertifyFromArgs(no_flag.argc(), no_flag.argv()));
  ::setenv("ESR_BENCH_CERTIFY", "1", /*overwrite=*/1);
  EXPECT_TRUE(CertifyFromArgs(no_flag.argc(), no_flag.argv()));
  ::setenv("ESR_BENCH_CERTIFY", "0", /*overwrite=*/1);
  EXPECT_FALSE(CertifyFromArgs(no_flag.argc(), no_flag.argv()));
  ::unsetenv("ESR_BENCH_CERTIFY");
}

#ifndef ESR_TRACE_DISABLED
TEST(SweepTest, CertifyRidesAlongIdenticallyAcrossJobs) {
  const RunScale scale = TinyScale();
  struct Outcome {
    std::string report;
    std::string series;
    StreamCertification certification;
  };
  const auto run_with_jobs = [&](int jobs, const std::string& path) {
    Sweep sweep(scale, jobs);
    for (int mpl = 1; mpl <= 3; ++mpl) {
      sweep.Add(BaseOptions(EpsilonLevel::kHigh, mpl, scale));
    }
    sweep.set_auto_warmup(false);
    sweep.set_series_export(path, "harness_test");
    sweep.set_certify(true);
    sweep.Run();
    Outcome out;
    out.report = ReportJson(sweep, scale, 3);
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    out.series = text.str();
    out.certification = sweep.certification();
    return out;
  };
  const Outcome serial =
      run_with_jobs(1, ::testing::TempDir() + "/certify_serial.csv");
  const Outcome parallel =
      run_with_jobs(8, ::testing::TempDir() + "/certify_parallel.csv");
  GlobalTrace().Reset();

  // Certification rode on the same (last) run either way, so the figure
  // output — report and series alike — stays byte-identical, and both
  // certifier passes saw the identical event stream.
  EXPECT_FALSE(serial.report.empty());
  EXPECT_EQ(serial.report, parallel.report);
  EXPECT_FALSE(serial.series.empty());
  EXPECT_EQ(serial.series, parallel.series);
  ASSERT_TRUE(serial.certification.enabled);
  ASSERT_TRUE(parallel.certification.enabled);
  EXPECT_TRUE(serial.certification.certified());
  EXPECT_GT(serial.certification.walks_replayed, 0u);
  EXPECT_EQ(serial.certification.walks_replayed,
            parallel.certification.walks_replayed);
  EXPECT_EQ(serial.certification.events_observed,
            parallel.certification.events_observed);
  EXPECT_EQ(serial.certification.certified_through_s,
            parallel.certification.certified_through_s);

  // The certified series file carries the watermark column.
  Result<RunSeries> series = ReadSeriesCsvFile(
      ::testing::TempDir() + "/certify_serial.csv");
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_FALSE(series->windows.empty());
  EXPECT_GE(series->windows.back().certified_through_s, 0.0);
}
#endif  // ESR_TRACE_DISABLED

TEST(RunScaleTest, FromEnvAppliesThePresets) {
  ::unsetenv("ESR_BENCH_FULL");
  RunScale quick = RunScale::FromEnv();
  EXPECT_EQ(quick.preset, kQuickScale.name);
  EXPECT_EQ(quick.warmup_s, kQuickScale.warmup_s);
  EXPECT_EQ(quick.measure_s, kQuickScale.measure_s);
  EXPECT_EQ(quick.seeds, kQuickScale.seeds);
  EXPECT_EQ(quick.warmup_source, "preset");

  ::setenv("ESR_BENCH_FULL", "1", /*overwrite=*/1);
  RunScale full = RunScale::FromEnv();
  EXPECT_EQ(full.preset, kFullScale.name);
  EXPECT_EQ(full.warmup_s, kFullScale.warmup_s);
  EXPECT_EQ(full.measure_s, kFullScale.measure_s);
  EXPECT_EQ(full.seeds, kFullScale.seeds);
  ::unsetenv("ESR_BENCH_FULL");
}

TEST(SeriesPathFromArgsTest, FlagWinsOverEnvironment) {
  ::setenv("ESR_BENCH_SERIES", "env.csv", /*overwrite=*/1);
  Argv args({"bin", "--series", "flag.csv"});
  EXPECT_EQ(SeriesPathFromArgs(args.argc(), args.argv()), "flag.csv");
  Argv no_flag({"bin"});
  EXPECT_EQ(SeriesPathFromArgs(no_flag.argc(), no_flag.argv()), "env.csv");
  ::unsetenv("ESR_BENCH_SERIES");
  EXPECT_EQ(SeriesPathFromArgs(no_flag.argc(), no_flag.argv()), "");
}

TEST(TableTest, NumCiFormatsAndFlagsWidePoints) {
  EXPECT_EQ(Table::NumCi(12.3456, 0.012), "12.35 ±1.2%");
  // Above the paper's +/-3% budget: a trailing '!' marks the point.
  EXPECT_EQ(Table::NumCi(100.0, 0.199, /*precision=*/1), "100.0 ±19.9%!");
  // Exactly at the threshold is within budget.
  EXPECT_EQ(Table::NumCi(1.0, Table::kCiFlagThreshold, 0), "1 ±3.0%");
  // Single-seed runs have no interval.
  EXPECT_EQ(Table::NumCi(5.0, 0.0), "5.00 ±0.0%");
}

}  // namespace
}  // namespace bench
}  // namespace esr
