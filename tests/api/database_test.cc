#include "api/database.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

ServerOptions SmallServer() {
  ServerOptions opt;
  opt.store.num_objects = 16;
  opt.store.seed = 3;
  return opt;
}

TEST(DatabaseTest, LoadAndPeekValues) {
  Database db(SmallServer());
  ASSERT_TRUE(db.LoadValue(0, 1111).ok());
  ASSERT_TRUE(db.LoadValue(1, 2222).ok());
  EXPECT_EQ(*db.PeekValue(0), 1111);
  EXPECT_EQ(*db.PeekValue(1), 2222);
  EXPECT_EQ(db.LoadValue(99, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.PeekValue(99).status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, TxnHandleReadWriteCommit) {
  Database db(SmallServer());
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  Session session = db.CreateSession(1);

  TxnHandle txn = session.Begin(TxnType::kUpdate, BoundSpec());
  ASSERT_TRUE(txn.valid());
  const OpResult r = txn.Read(0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 100);
  ASSERT_EQ(txn.Write(0, 150).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.valid());
  EXPECT_EQ(*db.PeekValue(0), 150);
}

TEST(DatabaseTest, TxnHandleAbortRollsBack) {
  Database db(SmallServer());
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  Session session = db.CreateSession(1);
  TxnHandle txn = session.Begin(TxnType::kUpdate, BoundSpec());
  ASSERT_EQ(txn.Write(0, 999).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(txn.Abort().ok());
  EXPECT_EQ(*db.PeekValue(0), 100);
}

TEST(DatabaseTest, SumQueryOverQuiescentData) {
  Database db(SmallServer());
  for (ObjectId id = 0; id < 4; ++id) {
    ASSERT_TRUE(db.LoadValue(id, 100 * (id + 1)).ok());
  }
  Session session = db.CreateSession(1);
  const auto result = session.AggregateQuery(
      {0, 1, 2, 3}, AggregateKind::kSum, BoundSpec::TransactionOnly(1000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.result, 1000.0);
  EXPECT_EQ(result->imported, 0.0);
  EXPECT_EQ(result->retries, 0);
}

TEST(DatabaseTest, QuerySeesUncommittedWriteWithinBounds) {
  Database db(SmallServer());
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  Session writer = db.CreateSession(1);
  Session reader = db.CreateSession(2);

  TxnHandle update = writer.Begin(TxnType::kUpdate, BoundSpec());
  ASSERT_EQ(update.Write(0, 160).kind, OpResult::Kind::kOk);

  // ESR query reads the uncommitted value, importing |160 - 100| = 60.
  const auto result = reader.AggregateQuery(
      {0}, AggregateKind::kSum, BoundSpec::TransactionOnly(100));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.result, 160.0);
  EXPECT_EQ(result->imported, 60.0);
  ASSERT_TRUE(update.Commit().ok());
}

TEST(DatabaseTest, SerializableQueryRefusesUncommittedAndTimesOut) {
  Database db(SmallServer());
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  Session writer = db.CreateSession(1);
  Session reader = db.CreateSession(2);
  TxnHandle update = writer.Begin(TxnType::kUpdate, BoundSpec());
  ASSERT_EQ(update.Write(0, 160).kind, OpResult::Kind::kOk);

  // A zero-bound query cannot view the uncommitted write; with a single
  // restart allowed it gives up quickly (the writer never resolves).
  const auto result = reader.AggregateQuery(
      {0}, AggregateKind::kSum, BoundSpec::TransactionOnly(0),
      /*max_restarts=*/0);
  EXPECT_FALSE(result.ok());
  ASSERT_TRUE(update.Abort().ok());
}

TEST(DatabaseTest, RunUpdateRetriesUntilCommit) {
  Database db(SmallServer());
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  Session session = db.CreateSession(1);
  int attempts = 0;
  const Status status = session.RunUpdate(
      [&](TxnHandle& txn) -> Status {
        ++attempts;
        const OpResult r = txn.Read(0);
        if (r.kind != OpResult::Kind::kOk) return Status::Aborted("read");
        const OpResult w = txn.Write(0, r.value + 10);
        if (w.kind != OpResult::Kind::kOk) return Status::Aborted("write");
        return Status::OK();
      },
      BoundSpec());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(*db.PeekValue(0), 110);
}

TEST(DatabaseTest, RunUpdatePropagatesCallerErrors) {
  Database db(SmallServer());
  Session session = db.CreateSession(1);
  const Status status = session.RunUpdate(
      [](TxnHandle&) { return Status::InvalidArgument("bad input"); },
      BoundSpec());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, AvgQueryEnforcesAggregationRule) {
  Database db(SmallServer());
  for (ObjectId id = 0; id < 3; ++id) {
    ASSERT_TRUE(db.LoadValue(id, 300).ok());
  }
  Session session = db.CreateSession(1);
  const auto result = session.AggregateQuery(
      {0, 1, 2}, AggregateKind::kAvg, BoundSpec::TransactionOnly(50));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome.result, 300.0);
  // Quiescent data, single reads: zero result inconsistency.
  EXPECT_EQ(result->outcome.result_inconsistency, 0.0);
}

TEST(DatabaseTest, EmptyQueryIsInvalid) {
  Database db(SmallServer());
  Session session = db.CreateSession(1);
  const auto result = session.AggregateQuery({}, AggregateKind::kSum,
                                             BoundSpec());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, HierarchicalBoundsThroughPublicApi) {
  Database db(SmallServer());
  GroupSchema& schema = db.schema();
  const GroupId company = *schema.AddGroup("company", kRootGroup);
  ASSERT_TRUE(schema.AssignObject(0, company).ok());
  ASSERT_TRUE(db.LoadValue(0, 100).ok());

  Session writer = db.CreateSession(1);
  Session reader = db.CreateSession(2);
  TxnHandle update = writer.Begin(TxnType::kUpdate, BoundSpec());
  ASSERT_EQ(update.Write(0, 200).kind, OpResult::Kind::kOk);

  // Group limit (50) tighter than the transaction limit (1000): the read
  // of the uncommitted value (d=100) must be rejected at the group level.
  BoundSpec bounds;
  bounds.SetTransactionLimit(1000);
  bounds.SetLimit(company, 50);
  const auto rejected = reader.AggregateQuery({0}, AggregateKind::kSum,
                                              bounds, /*max_restarts=*/1);
  EXPECT_FALSE(rejected.ok());

  // Loosening the group limit admits it.
  BoundSpec loose;
  loose.SetTransactionLimit(1000);
  loose.SetLimit(company, 150);
  const auto admitted = reader.AggregateQuery({0}, AggregateKind::kSum,
                                              loose, /*max_restarts=*/1);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted->imported, 100.0);
  ASSERT_TRUE(update.Commit().ok());
}

}  // namespace
}  // namespace esr
