// The public Database/Session API over every engine: the convenience
// layer must behave identically (modulo each protocol's semantics) no
// matter which concurrency-control engine the server runs.

#include <gtest/gtest.h>

#include "api/database.h"

namespace esr {
namespace {

ServerOptions OptionsFor(EngineKind engine) {
  ServerOptions opt;
  opt.store.num_objects = 16;
  opt.store.seed = 3;
  opt.engine = engine;
  return opt;
}

class EngineApiTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineApiTest, LoadPeekRoundTrip) {
  Database db(OptionsFor(GetParam()));
  ASSERT_TRUE(db.LoadValue(0, 1111).ok());
  ASSERT_TRUE(db.LoadValue(1, 2222).ok());
  EXPECT_EQ(*db.PeekValue(0), 1111);
  EXPECT_EQ(*db.PeekValue(1), 2222);
  EXPECT_EQ(db.LoadValue(99, 1).code(), StatusCode::kNotFound);
}

TEST_P(EngineApiTest, UpdateThenQuery) {
  Database db(OptionsFor(GetParam()));
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  ASSERT_TRUE(db.LoadValue(1, 200).ok());
  Session session = db.CreateSession(1);

  const Status update = session.RunUpdate(
      [](TxnHandle& txn) -> Status {
        const OpResult r = txn.Read(0);
        if (!r.ok()) return Status::Aborted("read");
        if (!txn.Write(0, r.value + 50).ok()) {
          return Status::Aborted("write");
        }
        return Status::OK();
      },
      BoundSpec::TransactionOnly(1000));
  ASSERT_TRUE(update.ok()) << EngineKindToString(GetParam());
  EXPECT_EQ(*db.PeekValue(0), 150);

  const auto query = session.AggregateQuery(
      {0, 1}, AggregateKind::kSum, BoundSpec::TransactionOnly(1000));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->outcome.result, 350.0);
  // Quiescent data: no inconsistency under any engine.
  EXPECT_EQ(query->imported, 0.0);
}

TEST_P(EngineApiTest, AbortRollsBack) {
  Database db(OptionsFor(GetParam()));
  ASSERT_TRUE(db.LoadValue(0, 100).ok());
  Session session = db.CreateSession(1);
  TxnHandle txn = session.Begin(TxnType::kUpdate, BoundSpec());
  ASSERT_EQ(txn.Write(0, 999).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(txn.Abort().ok());
  EXPECT_EQ(*db.PeekValue(0), 100);
}

TEST_P(EngineApiTest, AvgAggregateWorksEverywhere) {
  Database db(OptionsFor(GetParam()));
  for (ObjectId id = 0; id < 4; ++id) {
    ASSERT_TRUE(db.LoadValue(id, 100 * (id + 1)).ok());
  }
  Session session = db.CreateSession(1);
  const auto avg = session.AggregateQuery(
      {0, 1, 2, 3}, AggregateKind::kAvg, BoundSpec::TransactionOnly(1000));
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->outcome.result, 250.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineApiTest,
    ::testing::Values(EngineKind::kTimestampOrdering,
                      EngineKind::kTwoPhaseLocking,
                      EngineKind::kMultiversion, EngineKind::kSharded),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      switch (info.param) {
        case EngineKind::kTimestampOrdering:
          return std::string("ToEsr");
        case EngineKind::kTwoPhaseLocking:
          return std::string("TwoPl");
        case EngineKind::kMultiversion:
          return std::string("Mvto");
        case EngineKind::kSharded:
          return std::string("Sharded");
      }
      return std::string("Unknown");
    });

TEST(EngineSelectionTest, ServerReportsConfiguredEngine) {
  for (EngineKind kind :
       {EngineKind::kTimestampOrdering, EngineKind::kTwoPhaseLocking,
        EngineKind::kMultiversion, EngineKind::kSharded}) {
    Server server(OptionsFor(kind));
    EXPECT_EQ(server.engine().kind(), kind);
  }
}

TEST(EngineSelectionTest, ShardedEngineAccessor) {
  Server to_server(OptionsFor(EngineKind::kTimestampOrdering));
  EXPECT_EQ(to_server.sharded_engine(), nullptr);
  ServerOptions opt = OptionsFor(EngineKind::kSharded);
  opt.sharded.num_shards = 4;
  Server server(opt);
  ASSERT_NE(server.sharded_engine(), nullptr);
  EXPECT_EQ(server.sharded_engine()->num_shards(), 4u);
  EXPECT_EQ(server.engine().kind(), EngineKind::kSharded);
}

TEST(EngineSelectionDeathTest, TxnManagerAccessorGuardsEngineKind) {
  Server server(OptionsFor(EngineKind::kTwoPhaseLocking));
  EXPECT_DEATH(server.txn_manager(), "only available on the TO engine");
}

}  // namespace
}  // namespace esr
