#include "mvto/mvto_manager.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace esr {
namespace {

using testing::Ts;

struct MvtoFixture {
  GroupSchema schema;
  MetricRegistry metrics;
  MvtoManager manager;

  explicit MvtoFixture(size_t num_objects = 10)
      : manager(testing::EngineFixture::StoreOptions(num_objects, 20),
                &schema, &metrics) {}

  Value Peek(ObjectId id) {
    return manager.store().Get(id).LatestCommittedValue();
  }
};

TEST(MvtoManagerTest, WriteCommitRead) {
  MvtoFixture f;
  const Value initial = f.Peek(0);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 4242).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  EXPECT_EQ(f.Peek(0), 4242);

  // Snapshot semantics: an old-timestamp query still sees the old value.
  const TxnId old_query = f.manager.Begin(TxnType::kQuery, Ts(5),
                                          BoundSpec());
  const OpResult r = f.manager.Read(old_query, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, initial);
  EXPECT_EQ(r.inconsistency, 0.0);   // MVTO answers are always consistent
  EXPECT_FALSE(r.relaxed);
  ASSERT_TRUE(f.manager.Commit(old_query).ok());
}

TEST(MvtoManagerTest, QueriesNeverAbortOnLateReads) {
  // The raison d'etre of MVTO: the late-read case that aborts SR-TO and
  // costs bounds under ESR simply reads an older version here.
  MvtoFixture f;
  for (int i = 1; i <= 5; ++i) {
    const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(100 * i),
                                    BoundSpec());
    ASSERT_EQ(f.manager.Write(u, 0, 1000 + i).kind, OpResult::Kind::kOk);
    ASSERT_TRUE(f.manager.Commit(u).ok());
  }
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(250), BoundSpec());
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1002);  // version written at ts 200
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(MvtoManagerTest, ReaderWaitsForPendingVersion) {
  MvtoFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 7777).kind, OpResult::Kind::kOk);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20), BoundSpec());
  const OpResult wait = f.manager.Read(q, 0);
  EXPECT_EQ(wait.kind, OpResult::Kind::kWait);
  EXPECT_EQ(wait.blocker, u);
  ASSERT_TRUE(f.manager.Commit(u).ok());
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 7777);
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(MvtoManagerTest, LateWritePastNewerReadAborts) {
  MvtoFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(50), BoundSpec());
  ASSERT_EQ(f.manager.Read(q, 0).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Commit(q).ok());
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(30), BoundSpec());
  const OpResult w = f.manager.Write(u, 0, 1);
  EXPECT_EQ(w.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(w.abort_reason, AbortReason::kLateWrite);
  EXPECT_FALSE(f.manager.IsActive(u));
}

TEST(MvtoManagerTest, AbortedWriterLeavesNoVersion) {
  MvtoFixture f;
  const Value initial = f.Peek(0);
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 9999).kind, OpResult::Kind::kOk);
  ASSERT_TRUE(f.manager.Abort(u).ok());
  EXPECT_EQ(f.Peek(0), initial);
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(20), BoundSpec());
  const OpResult r = f.manager.Read(q, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, initial);
  ASSERT_TRUE(f.manager.Commit(q).ok());
}

TEST(MvtoManagerTest, UpdateReadsOwnPendingWrite) {
  MvtoFixture f;
  const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(10), BoundSpec());
  ASSERT_EQ(f.manager.Write(u, 0, 1234).kind, OpResult::Kind::kOk);
  const OpResult r = f.manager.Read(u, 0);
  ASSERT_EQ(r.kind, OpResult::Kind::kOk);
  EXPECT_EQ(r.value, 1234);
  ASSERT_TRUE(f.manager.Commit(u).ok());
}

TEST(MvtoManagerTest, VeryOldReaderHitsBoundedChain) {
  MvtoFixture f;
  // Push enough committed versions to evict the seed from a depth-20
  // chain.
  for (int i = 1; i <= 25; ++i) {
    const TxnId u = f.manager.Begin(TxnType::kUpdate, Ts(100 + i),
                                    BoundSpec());
    ASSERT_EQ(f.manager.Write(u, 0, 1000 + i).kind, OpResult::Kind::kOk);
    ASSERT_TRUE(f.manager.Commit(u).ok());
  }
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(50), BoundSpec());
  const OpResult r = f.manager.Read(q, 0);
  EXPECT_EQ(r.kind, OpResult::Kind::kAbort);
  EXPECT_EQ(r.abort_reason, AbortReason::kHistoryExhausted);
}

TEST(MvtoManagerDeathTest, QueryWriteIsProgrammerError) {
  MvtoFixture f;
  const TxnId q = f.manager.Begin(TxnType::kQuery, Ts(1), BoundSpec());
  EXPECT_DEATH(f.manager.Write(q, 0, 1), "read-only");
}

}  // namespace
}  // namespace esr
