#include "mvto/version_store.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

TEST(VersionChainTest, SeededWithInitialValue) {
  VersionChain chain(1000, 8);
  const auto r = chain.Read(Ts(5), /*reader=*/1);
  EXPECT_EQ(r.status, VersionChain::ReadStatus::kOk);
  EXPECT_EQ(r.value, 1000);
  EXPECT_EQ(chain.LatestCommittedValue(), 1000);
}

TEST(VersionChainTest, ReadReturnsGoverningVersion) {
  VersionChain chain(1000, 8);
  ASSERT_EQ(chain.Write(Ts(10), 1, 1100).status,
            VersionChain::WriteStatus::kOk);
  chain.CommitVersions(1);
  ASSERT_EQ(chain.Write(Ts(20), 2, 1200).status,
            VersionChain::WriteStatus::kOk);
  chain.CommitVersions(2);
  EXPECT_EQ(chain.Read(Ts(15), 9).value, 1100);  // snapshot at ts 15
  EXPECT_EQ(chain.Read(Ts(25), 9).value, 1200);
  EXPECT_EQ(chain.Read(Ts(5), 9).value, 1000);
}

TEST(VersionChainTest, ReadOfUncommittedWaits) {
  VersionChain chain(1000, 8);
  ASSERT_EQ(chain.Write(Ts(10), 1, 1100).status,
            VersionChain::WriteStatus::kOk);
  const auto r = chain.Read(Ts(20), /*reader=*/2);
  EXPECT_EQ(r.status, VersionChain::ReadStatus::kWaitForWriter);
  EXPECT_EQ(r.writer, 1u);
  // The writer itself reads its pending version.
  const auto own = chain.Read(Ts(10), /*reader=*/1);
  EXPECT_EQ(own.status, VersionChain::ReadStatus::kOk);
  EXPECT_EQ(own.value, 1100);
  // A reader older than the pending version reads the committed one.
  EXPECT_EQ(chain.Read(Ts(5), 2).value, 1000);
}

TEST(VersionChainTest, LateWriteRejectedWhenPredecessorReadByNewer) {
  VersionChain chain(1000, 8);
  // Reader at ts 50 reads the seed version.
  ASSERT_EQ(chain.Read(Ts(50), 9).status, VersionChain::ReadStatus::kOk);
  // A write at ts 30 would invalidate that read: rejected.
  EXPECT_EQ(chain.Write(Ts(30), 1, 1100).status,
            VersionChain::WriteStatus::kReadByNewer);
  // A write at ts 60 is fine.
  EXPECT_EQ(chain.Write(Ts(60), 1, 1100).status,
            VersionChain::WriteStatus::kOk);
}

TEST(VersionChainTest, WriteIntoThePastAllowedWhenUnread) {
  VersionChain chain(1000, 8);
  ASSERT_EQ(chain.Write(Ts(50), 1, 1500).status,
            VersionChain::WriteStatus::kOk);
  chain.CommitVersions(1);
  // A write at ts 30: predecessor is the seed, unread since. Allowed —
  // multiversioning serializes it before the ts-50 write.
  ASSERT_EQ(chain.Write(Ts(30), 2, 1300).status,
            VersionChain::WriteStatus::kOk);
  chain.CommitVersions(2);
  EXPECT_EQ(chain.Read(Ts(40), 9).value, 1300);
  EXPECT_EQ(chain.Read(Ts(60), 9).value, 1500);
}

TEST(VersionChainTest, WriteBehindPendingVersionWaits) {
  VersionChain chain(1000, 8);
  ASSERT_EQ(chain.Write(Ts(20), 1, 1100).status,
            VersionChain::WriteStatus::kOk);  // pending
  const auto r = chain.Write(Ts(30), 2, 1200);
  EXPECT_EQ(r.status, VersionChain::WriteStatus::kWaitForWriter);
  EXPECT_EQ(r.conflict, 1u);
}

TEST(VersionChainTest, OwnPendingVersionOverwritten) {
  VersionChain chain(1000, 8);
  ASSERT_EQ(chain.Write(Ts(20), 1, 1100).status,
            VersionChain::WriteStatus::kOk);
  ASSERT_EQ(chain.Write(Ts(20), 1, 1150).status,
            VersionChain::WriteStatus::kOk);
  EXPECT_EQ(chain.size(), 2u);  // seed + one pending
  chain.CommitVersions(1);
  EXPECT_EQ(chain.LatestCommittedValue(), 1150);
}

TEST(VersionChainTest, AbortRemovesPendingVersions) {
  VersionChain chain(1000, 8);
  ASSERT_EQ(chain.Write(Ts(20), 1, 1100).status,
            VersionChain::WriteStatus::kOk);
  chain.AbortVersions(1);
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain.Read(Ts(30), 9).value, 1000);
}

TEST(VersionChainTest, BoundedDepthEvictsOldCommitted) {
  VersionChain chain(1000, 3);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_EQ(chain.Write(Ts(i * 10), static_cast<TxnId>(i), 1000 + i)
                  .status,
              VersionChain::WriteStatus::kOk);
    chain.CommitVersions(static_cast<TxnId>(i));
  }
  EXPECT_LE(chain.size(), 3u);
  // A reader older than the oldest retained version fails.
  EXPECT_EQ(chain.Read(Ts(15), 9).status, VersionChain::ReadStatus::kTooOld);
  // Recent reads still work.
  EXPECT_EQ(chain.Read(Ts(200), 9).value, 1010);
}

TEST(VersionStoreTest, SeedsMatchObjectStore) {
  ObjectStoreOptions opt;
  opt.num_objects = 50;
  opt.seed = 3;
  VersionStore versions(opt);
  ObjectStore store(opt);
  ASSERT_EQ(versions.size(), store.size());
  for (ObjectId id = 0; id < 50; ++id) {
    EXPECT_EQ(versions.Get(id).LatestCommittedValue(),
              store.Get(id).value());
  }
}

}  // namespace
}  // namespace esr
