// Airline reservation: the paper's second canonical metric-space domain
// (seat counts). A capacity dashboard runs aggregate queries — including
// an AVERAGE, which uses the Sec. 5.3.2 aggregation-point mechanism with
// min/max tracking — while booking transactions keep selling seats.
//
// Build & run:  ./build/examples/airline_reservation

#include <cstdio>
#include <vector>

#include "api/database.h"
#include "common/random.h"

namespace {

constexpr esr::ObjectId kFlights = 60;

}  // namespace

int main() {
  esr::ServerOptions options;
  options.store.num_objects = kFlights;
  esr::Database db(options);
  // Each flight starts with 180 free seats; group flights by region.
  esr::GroupSchema& schema = db.schema();
  const esr::GroupId domestic = *schema.AddGroup("domestic", esr::kRootGroup);
  const esr::GroupId international =
      *schema.AddGroup("international", esr::kRootGroup);
  std::vector<esr::ObjectId> all_flights;
  for (esr::ObjectId id = 0; id < kFlights; ++id) {
    (void)db.LoadValue(id, 180);
    (void)schema.AssignObject(id, id < 40 ? domestic : international);
    all_flights.push_back(id);
  }

  esr::Session bookings = db.CreateSession(1);
  esr::Session dashboard = db.CreateSession(2);

  // A burst of bookings, some left in flight (uncommitted).
  esr::Rng rng(2026);
  std::vector<esr::TxnHandle> in_flight;
  int sold = 0;
  for (int i = 0; i < 30; ++i) {
    const esr::ObjectId flight =
        static_cast<esr::ObjectId>(rng.UniformInt(0, kFlights - 1));
    const esr::Value seats = rng.UniformInt(1, 4);
    if (i % 3 == 0) {
      // Leave every third booking pending.
      esr::TxnHandle txn =
          bookings.Begin(esr::TxnType::kUpdate, esr::BoundSpec());
      const esr::OpResult r = txn.Read(flight);
      if (r.ok() && txn.Write(flight, r.value - seats).ok()) {
        in_flight.push_back(std::move(txn));
        sold += static_cast<int>(seats);
        continue;
      }
      if (txn.valid()) (void)txn.Abort();
    } else {
      const esr::Status status = bookings.RunUpdate(
          [&](esr::TxnHandle& txn) -> esr::Status {
            const esr::OpResult r = txn.Read(flight);
            if (!r.ok()) return esr::Status::Aborted("read");
            if (!txn.Write(flight, r.value - seats).ok()) {
              return esr::Status::Aborted("write");
            }
            return esr::Status::OK();
          },
          esr::BoundSpec::TransactionOnly(/*TEL=*/50));
      if (status.ok()) sold += static_cast<int>(seats);
    }
  }
  std::printf("bookings processed; %d seats sold, %zu bookings still "
              "uncommitted\n\n",
              sold, in_flight.size());

  // Dashboard 1: total free seats, tolerating up to 40 seats of
  // inconsistency, with a tighter bound on international flights.
  esr::BoundSpec sum_bounds;
  sum_bounds.SetTransactionLimit(40);
  sum_bounds.SetLimit(international, 25);
  const auto total = dashboard.AggregateQuery(
      all_flights, esr::AggregateKind::kSum, sum_bounds, /*max_restarts=*/5);
  if (total.ok()) {
    std::printf("free seats (all flights)   : %.0f  (+/- %.0f)\n",
                total->outcome.result, total->imported);
  } else {
    std::printf("seat total rejected: %s\n",
                total.status().ToString().c_str());
  }

  // Dashboard 2: AVERAGE free seats per flight. The avg aggregate uses
  // the paper's min/max mechanism: its result inconsistency is derived
  // from the spread each read viewed and checked against the TIL at the
  // aggregation point.
  const auto average = dashboard.AggregateQuery(
      all_flights, esr::AggregateKind::kAvg,
      esr::BoundSpec::TransactionOnly(40), /*max_restarts=*/5);
  if (average.ok()) {
    std::printf("avg free seats per flight  : %.2f  "
                "(result inconsistency %.2f via min/max rule)\n",
                average->outcome.result,
                average->outcome.result_inconsistency);
  } else {
    std::printf("avg query rejected: %s\n",
                average.status().ToString().c_str());
  }

  // Dashboard 3: the fullest flight (min free seats).
  const auto fullest = dashboard.AggregateQuery(
      all_flights, esr::AggregateKind::kMin,
      esr::BoundSpec::TransactionOnly(40), /*max_restarts=*/5);
  if (fullest.ok()) {
    std::printf("fewest free seats          : %.0f  (bounds [%.0f, %.0f])\n",
                fullest->outcome.result, fullest->outcome.min_result,
                fullest->outcome.max_result);
  } else {
    std::printf("min query rejected: %s\n",
                fullest.status().ToString().c_str());
  }

  for (esr::TxnHandle& txn : in_flight) {
    if (!txn.Commit().ok()) return 1;
  }
  std::printf("\nall pending bookings committed; exact free seats = %lld\n",
              static_cast<long long>(db.server().store().TotalValue()));
  return 0;
}
