// The engine outside the simulator: a real multithreaded client/server
// run, mirroring the prototype's architecture (multiple clients submit
// the generated transaction load; aborted transactions are resubmitted
// with fresh timestamps until they commit). Prints per-level throughput
// and the server's internal counters.
//
// Usage:  ./build/examples/threaded_server [num_clients] [txns_per_client]
//             [--json metrics.json] [--trace trace.json] [--certify]
//             [--profile profile.json] [--health health.json]
//             [--metrics-port N] [--metrics-linger-ms N]
//             [--shards N] [--workers N] [--objects N] [--batch]
//
// The default run is the historical loopback demo: one OS thread per
// client against the single-latch engine. The scaling flags opt into the
// sharded engine and the batched worker pool:
//
//   --shards N    run the sharded TO engine with N shards (per-shard
//                 latch, arena history, group commit); per-shard
//                 engine.shard<i>.* gauges are exported on /metrics.
//   --workers N   drive the clients as multiplexed sessions over N worker
//                 threads (engine/sharded/session.h) instead of one OS
//                 thread each — thousands of clients fit in a handful of
//                 workers, and ops reach the engine as per-shard batches.
//   --batch       shorthand for --workers hardware_concurrency.
//   --objects N   object store size (default 1000).
//   --hot-set N   width of the contended hot set (default: the workload
//                 spec's 20). Worker-pool sessions have zero think time,
//                 so at large client counts the default hot set thrashes
//                 on aborts; scale it with the population.
//
// --json dumps the final epsilon level's metric registry (counters plus
// latency percentiles) as JSON; --trace captures that run's transaction
// lifecycle as causal spans and writes Chrome trace-event JSON loadable
// in Perfetto / about:tracing (and replayable by tools/esr_audit).
// --metrics-port serves the live registry as Prometheus text on
// 127.0.0.1:<port>/metrics (0 picks a free port, printed on stderr) with
// a background sampler recording active-transaction gauges;
// --metrics-linger-ms keeps the endpoint up that long after the last
// level finishes so an external scraper can collect the final state.
// --certify streams every trace probe through an online bound certifier
// (obs/stream_audit.h) for the whole run — one certifier, one wall-clock
// epoch, across all three epsilon levels — and publishes the live
// watermark as the esr_certified_through_seconds /
// esr_certification_lag_windows gauges on /metrics; the process exits 2
// if any bound violation is certified.
// --profile turns on the wall-clock profiler (obs/profile.h) for the
// final epsilon level: per-phase cost attribution, per-site contention
// histograms, and blocked-by tables, written as JSON for tools/esr_profile
// (and live profile.* gauges on /metrics while the level runs).
// --health runs the windowed anomaly-detection engine (obs/health.h)
// live: every 1 s wall-clock window the sampler feeds the commit/abort
// deltas, active MPL, per-node headroom, and per-shard op deltas to the
// detector set; open episodes surface as esr_alert_active{detector=...}
// / esr_alert_count gauges on /metrics, and the alert journal is
// written as JSON (readable by tools/esr_health --journal). These
// windows are *wall-clock* — certification watermarks live in the
// certifier's own epoch, so the stall detector is left to recorded-run
// replay where both clocks are virtual (see DESIGN.md).
//
// SIGINT/SIGTERM interrupt the run cleanly: clients drain at the next
// safe point, every requested output (metrics JSON, trace, profile,
// health journal) is flushed for the level that was running, and the
// process exits 128+signal.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded/session.h"
#include "engine/sharded/sharded_engine.h"
#include "esr/limits.h"
#include "hierarchy/accumulator.h"
#include "obs/exporter.h"
#include "obs/health.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "obs/series.h"
#include "obs/stream_audit.h"
#include "obs/trace.h"
#include "txn/server.h"
#include "txn/transaction.h"
#include "workload/generator.h"

namespace {

// Last signal delivered (0 = none). Async-signal-safe: the handler only
// stores; clients poll it at their loop tops and drain, so main joins,
// flushes every requested output, and exits 128+signal.
std::atomic<int> g_signal{0};

void HandleSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

bool Interrupted() { return g_signal.load(std::memory_order_relaxed) != 0; }

using Clock = std::chrono::steady_clock;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct ClientResult {
  int64_t committed = 0;
  int64_t aborts = 0;
  int64_t waits = 0;
};

// The /metrics endpoint outlives each per-level Server, so scrapes go
// through this mutex-guarded indirection instead of a raw pointer.
struct MetricsHub {
  std::mutex mu;
  esr::Server* server = nullptr;

  void Set(esr::Server* s) {
    std::lock_guard<std::mutex> lock(mu);
    server = s;
  }

  std::string Render() {
    std::lock_guard<std::mutex> lock(mu);
    if (server == nullptr) return "# no active server\n";
    std::ostringstream out;
    esr::WritePrometheusText(server->metrics(), out);
    return out.str();
  }
};

// Executes `txns` transactions from a generated load against the server,
// retrying waits and resubmitting aborts, exactly like the prototype's
// clients (Sec. 6). Per-transaction commit latency lands in the server's
// metric registry ("client.txn_latency_ms"); every server call is wrapped
// in an RPC span so captured traces decompose like the simulator's.
ClientResult RunClient(esr::Server* server, esr::SiteId site,
                       const esr::WorkloadSpec& spec, int txns) {
  ClientResult result;
  esr::WorkloadGenerator generator(spec, 1000 + site);
  esr::TimestampGenerator ts_gen(site);
  // Contention site for client-observed operation waits: the engine
  // returns kWait with the blocking writer's id, and the retry backoff
  // below is the timed wait charged to it.
  esr::ContentionSite* const op_wait_site =
      esr::GlobalProfiler().site("server.op_wait");
  for (int i = 0; i < txns; ++i) {
    if (Interrupted()) break;
    const esr::TxnScript script = generator.Next();
    const int64_t started_us = NowMicros();
    bool committed = false;
    while (!committed) {
      if (Interrupted()) return result;
      const esr::TxnId txn =
          server->Begin(script.type, ts_gen.Next(NowMicros()),
                        script.bounds);
      const esr::Transaction* t = server->engine().Find(txn);
      const uint64_t txn_span = t != nullptr ? t->trace_span() : 0;
      std::vector<esr::Value> reads;
      bool aborted = false;
      for (const esr::ScriptOp& op : script.ops) {
        // A small per-op pause stands in for the RPC round trip; without
        // it transactions are so short that clients never overlap and no
        // concurrency control ever fires. It is profiled as the rpc
        // phase, so attribution accounts for (nearly) every microsecond
        // between Begin and commit.
        {
          esr::ScopedPhaseTimer rpc_phase(esr::ProfilePhase::kRpc);
          std::this_thread::sleep_for(std::chrono::microseconds(150));
        }
        esr::OpResult r;
        while (true) {
          {
            // One RPC span per attempt: the engine's op span (and bound
            // walk) nest inside it, and the gap to the next attempt is
            // the wait backoff the auditor attributes to conflicts.
            esr::TraceSpan rpc(esr::SpanKind::kRpc, txn, site, op.object,
                               txn_span);
            if (op.kind == esr::ScriptOp::Kind::kRead) {
              r = server->Read(txn, op.object);
            } else {
              const esr::Value value = esr::ApplyDeltaReflecting(
                  reads[static_cast<size_t>(op.source_read)], op.delta,
                  spec.min_value, spec.max_value);
              r = server->Write(txn, op.object, value);
            }
          }
          if (r.kind != esr::OpResult::Kind::kWait) break;
          ++result.waits;
          {
            // Lock-wait phase plus blocked-by attribution: the engine
            // told us which uncommitted writer blocks this op.
            esr::ScopedPhaseTimer wait_phase(esr::ProfilePhase::kLockWait);
            esr::ScopedSiteWait site_wait(op_wait_site, r.blocker);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          if (Interrupted()) {
            (void)server->Abort(txn);
            return result;
          }
        }
        if (r.kind == esr::OpResult::Kind::kAbort) {
          ++result.aborts;
          aborted = true;
          break;
        }
        if (op.kind == esr::ScriptOp::Kind::kRead) reads.push_back(r.value);
      }
      if (aborted) continue;  // immediate restart with a new timestamp
      bool commit_ok;
      {
        esr::TraceSpan rpc(esr::SpanKind::kRpc, txn, site, 0, txn_span);
        commit_ok = server->Commit(txn).ok();
      }
      if (commit_ok) {
        committed = true;
        ++result.committed;
        server->metrics().RecordSample(
            "client.txn_latency_ms",
            static_cast<double>(NowMicros() - started_us) / 1000.0);
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int num_clients = 4;
  int txns_per_client = 250;
  std::string json_path;
  std::string trace_path;
  std::string profile_path;
  std::string health_path;
  bool certify = false;
  int metrics_port = -1;
  int metrics_linger_ms = 0;
  int num_shards = 0;    // 0 = historical single-latch engine
  int num_workers = 0;   // 0 = one OS thread per client
  int num_objects = 1000;
  int hot_set = 0;  // 0 = keep the workload spec default
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const bool is_json = std::strcmp(argv[i], "--json") == 0;
    const bool is_trace = std::strcmp(argv[i], "--trace") == 0;
    const bool is_profile = std::strcmp(argv[i], "--profile") == 0;
    const bool is_health = std::strcmp(argv[i], "--health") == 0;
    const bool is_port = std::strcmp(argv[i], "--metrics-port") == 0;
    const bool is_linger = std::strcmp(argv[i], "--metrics-linger-ms") == 0;
    const bool is_shards = std::strcmp(argv[i], "--shards") == 0;
    const bool is_workers = std::strcmp(argv[i], "--workers") == 0;
    const bool is_objects = std::strcmp(argv[i], "--objects") == 0;
    const bool is_hot_set = std::strcmp(argv[i], "--hot-set") == 0;
    if (std::strcmp(argv[i], "--certify") == 0) {
      certify = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      if (num_workers <= 0) {
        num_workers =
            static_cast<int>(std::thread::hardware_concurrency());
        if (num_workers <= 0) num_workers = 4;
      }
    } else if (is_json || is_trace || is_profile || is_health || is_port ||
               is_linger || is_shards || is_workers || is_objects ||
               is_hot_set) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", argv[i]);
        return 1;
      }
      if (is_json) {
        json_path = argv[++i];
      } else if (is_trace) {
        trace_path = argv[++i];
      } else if (is_profile) {
        profile_path = argv[++i];
      } else if (is_health) {
        health_path = argv[++i];
      } else if (is_port) {
        metrics_port = std::atoi(argv[++i]);
      } else if (is_shards) {
        num_shards = std::atoi(argv[++i]);
      } else if (is_workers) {
        num_workers = std::atoi(argv[++i]);
      } else if (is_objects) {
        num_objects = std::atoi(argv[++i]);
      } else if (is_hot_set) {
        hot_set = std::atoi(argv[++i]);
      } else {
        metrics_linger_ms = std::atoi(argv[++i]);
      }
    } else if (positional == 0) {
      num_clients = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      txns_per_client = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (num_objects <= 0) {
    std::fprintf(stderr, "--objects must be positive\n");
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

#ifdef ESR_TRACE_DISABLED
  if (!profile_path.empty()) {
    std::fprintf(stderr,
                 "--profile ignored: profiling compiled out "
                 "(ESR_DISABLE_TRACING)\n");
  }
#endif

  MetricsHub hub;
  esr::MetricsHttpServer metrics_http([&hub] { return hub.Render(); });
  if (metrics_port >= 0) {
    const esr::Status s =
        metrics_http.Start(static_cast<uint16_t>(metrics_port));
    if (!s.ok()) {
      std::fprintf(stderr, "metrics endpoint failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "serving /metrics on 127.0.0.1:%u\n",
                 metrics_http.port());
  }

  // Streaming certification spans the whole run: one certifier, one
  // wall-clock epoch, subscribed to the recorder before any level starts,
  // so the watermark advances monotonically across all three epsilon
  // levels and a /metrics scraper can watch it move live.
  std::unique_ptr<esr::StreamCertifier> certifier;
  std::optional<esr::ScopedTraceObserver> certify_observer;
  bool certify_enabled_trace = false;
  if (certify) {
#ifndef ESR_TRACE_DISABLED
    esr::StreamCertifierOptions certifier_options;
    certifier_options.window_s = 1.0;
    certifier_options.epoch_micros = NowMicros();
    certifier_options.source = "threaded_server";
    certifier_options.emit_trace_events = true;
    certifier = std::make_unique<esr::StreamCertifier>(certifier_options);
    if (!esr::GlobalTrace().enabled()) {
      esr::GlobalTrace().Reset();
      esr::GlobalTrace().set_enabled(true);
      certify_enabled_trace = true;
    }
    certify_observer.emplace(&esr::StreamCertifier::ObserveTrampoline,
                             certifier.get());
    std::fprintf(stderr,
                 "streaming certification on: 1s wall-clock windows\n");
#else
    std::fprintf(stderr,
                 "--certify ignored: tracing compiled out "
                 "(ESR_DISABLE_TRACING)\n");
#endif
  }

  std::printf("threaded client/server run: %d clients x %d transactions\n\n",
              num_clients, txns_per_client);
  std::printf("%-8s %10s %10s %10s %10s %12s\n", "epsilon", "tput(tps)",
              "commits", "aborts", "waits", "p99 lat(ms)");

  const esr::EpsilonLevel levels[] = {esr::EpsilonLevel::kZero,
                                      esr::EpsilonLevel::kLow,
                                      esr::EpsilonLevel::kHigh};
  const esr::EpsilonLevel last_level = levels[2];

  for (const esr::EpsilonLevel level : levels) {
    esr::ServerOptions options;
    options.store.num_objects = static_cast<size_t>(num_objects);
    if (num_shards > 0) {
      options.engine = esr::EngineKind::kSharded;
      options.sharded.num_shards = static_cast<size_t>(num_shards);
    }
    esr::Server server(options);
    hub.Set(&server);

    esr::WorkloadSpec spec;
    spec.num_objects = static_cast<size_t>(num_objects);
    if (hot_set > 0) spec.hot_set_size = static_cast<size_t>(hot_set);
    const esr::TransactionLimits limits = esr::LimitsForLevel(level);
    spec.til = limits.til;
    spec.tel = limits.tel;

    // Trace only the last (most relaxed) level so the capture covers one
    // coherent run rather than three concatenated ones.
    const bool tracing = !trace_path.empty() && level == last_level;
    if (tracing) {
      esr::GlobalTrace().Reset();
      esr::GlobalTrace().set_enabled(true);
    }

    // Profile the same single coherent run as the trace: the last level.
#ifndef ESR_TRACE_DISABLED
    const bool profiling = !profile_path.empty() && level == last_level;
#else
    const bool profiling = false;
#endif
    if (profiling) {
      esr::GlobalProfiler().Reset();
      esr::GlobalProfiler().set_enabled(true);
    }

    // Periodic snapshot sampler: a live gauge of concurrent transactions
    // (and a tick counter proving liveness), visible on /metrics. Bound
    // charges feed a headroom tracker; once per wall second its window is
    // folded into a rolling series and republished as
    // headroom.min_frac[.<node>] gauges, so scrapes see how close each
    // hierarchy node has come to its inconsistency bound.
    esr::NodeHeadroomTracker headroom(server.schema().num_groups());
    server.engine().SetHeadroomTracker(&headroom);
    esr::RunSeries headroom_series;
    headroom_series.source = "threaded_server";
    headroom_series.window_s = 1.0;
    for (esr::GroupId g = 0; g < server.schema().num_groups(); ++g) {
      headroom_series.node_names.push_back(server.schema().name(g));
    }
    // Live health monitor: the sampler feeds it one SeriesWindow per
    // wall-clock second — the same stream AnalyzeSeries replays offline,
    // so a recorded run reproduces exactly the alerts raised here.
    std::unique_ptr<esr::HealthMonitor> health;
    if (!health_path.empty()) {
      esr::HealthOptions health_options;
      health_options.source = "threaded_server";
      health_options.window_s = 1.0;
      for (esr::GroupId g = 0; g < server.schema().num_groups(); ++g) {
        health_options.node_names.push_back(server.schema().name(g));
      }
      health = std::make_unique<esr::HealthMonitor>(health_options);
    }
    std::atomic<bool> sampling{true};
    esr::StreamCertifier* const cert = certifier.get();
    esr::ShardedEngine* const sharded = server.sharded_engine();
    esr::HealthMonitor* const monitor = health.get();
    std::thread sampler([&server, &sampling, &headroom, &headroom_series,
                         cert, profiling, sharded, monitor] {
      int64_t ticks = 0;
      // Commit/abort counter totals at the last window fold; the deltas
      // are the per-window committed/aborted the detectors consume.
      int64_t prev_committed = 0;
      int64_t prev_aborted = 0;
      std::vector<int64_t> prev_shard_ops;
      auto fold_window = [&](double duration_s) {
        esr::SeriesWindow w;
        w.start_s = static_cast<double>(headroom_series.windows.size());
        w.duration_s = duration_s;
        w.active_mpl = static_cast<double>(server.engine().num_active());
        const int64_t committed_total =
            server.metrics().counter("txn.commit.query").value() +
            server.metrics().counter("txn.commit.update").value();
        const int64_t aborted_total =
            server.metrics().counter("txn.abort").value();
        w.committed = committed_total - prev_committed;
        w.aborted = aborted_total - prev_aborted;
        prev_committed = committed_total;
        prev_aborted = aborted_total;
        // Wall-clock run: the certification watermark lives in the
        // certifier's own epoch, not this window index — leave the
        // sentinel so the stall detector stays inert (clock domains
        // must match before lag means anything; DESIGN.md).
        w.nodes.resize(headroom.num_nodes());
        for (esr::GroupId g = 0; g < headroom.num_nodes(); ++g) {
          const esr::NodeHeadroomTracker::NodeSample s =
              headroom.WindowSample(g);
          w.nodes[g].max_accumulated = s.max_accumulated;
          w.nodes[g].min_headroom_frac = s.min_headroom_frac;
          w.nodes[g].limit_at_min = s.limit_at_min;
          w.nodes[g].charges = s.charges;
        }
        headroom.StartWindow();
        if (monitor != nullptr) {
          esr::HealthInput input;
          if (sharded != nullptr) {
            prev_shard_ops.resize(sharded->num_shards(), 0);
            input.shard_ops.resize(sharded->num_shards(), 0);
            for (size_t s = 0; s < sharded->num_shards(); ++s) {
              const int64_t ops = static_cast<int64_t>(
                  sharded->SnapshotShardStats(s).ops);
              input.shard_ops[s] = ops - prev_shard_ops[s];
              prev_shard_ops[s] = ops;
            }
          }
          monitor->OnWindow(w, input);
          monitor->ExportGauges(&server.metrics());
        }
        headroom_series.windows.push_back(std::move(w));
        esr::ExportHeadroomGauges(headroom_series, &server.metrics());
      };
      while (sampling.load(std::memory_order_acquire)) {
        server.metrics().RecordSample(
            "server.active_txns",
            static_cast<double>(server.engine().num_active()));
        server.metrics().counter("sampler.ticks").Increment();
        if (cert != nullptr) {
          // Heartbeat so the watermark advances through quiet stretches,
          // then republish the live gauges for /metrics scrapers.
          cert->AdvanceTo(NowMicros());
          server.metrics()
              .gauge("certified_through_seconds")
              .Set(cert->certified_through_s());
          server.metrics()
              .gauge("certification_lag_windows")
              .Set(cert->lag_windows());
        }
        if (profiling) {
          // Live profile.phase_* / profile.site.* gauges for scrapers
          // (atomics only — the quiescent histograms export after joins).
          esr::GlobalProfiler().ExportLiveGauges(&server.metrics());
        }
        if (sharded != nullptr) {
          // Per-shard engine.shard<i>.* gauges, refreshed every tick so
          // scrapes see live per-shard op/commit/batch counts. Safe
          // against concurrent group commit: each gauge reads one shard's
          // stats under its latch (see shard_gauges_test.cc).
          sharded->ExportShardGauges(&server.metrics());
        }
        if (++ticks % 100 == 0) {  // 100 x 10 ms: one-second windows
          fold_window(1.0);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      // Short runs end mid-window; fold the remainder so even a
      // sub-second level publishes its headroom gauges.
      if (ticks % 100 != 0) {
        fold_window(static_cast<double>(ticks % 100) / 100.0);
      }
    });

    std::vector<ClientResult> results(
        static_cast<size_t>(num_clients));
    const auto start = Clock::now();
    if (num_workers > 0) {
      // Worker-pool mode: clients are multiplexed sessions, not OS
      // threads, so num_clients can be in the thousands. Ops reach the
      // engine as per-shard batches and commits ride group commit.
      esr::SessionPoolOptions pool;
      pool.sessions = static_cast<size_t>(num_clients);
      pool.txns_per_session = txns_per_client;
      pool.workers = static_cast<size_t>(num_workers);
      pool.seed = 0;  // site seeding then matches thread-per-client mode
      pool.record_latency = true;
      std::atomic<bool> stop{false};
      pool.stop = &stop;
      // Relay SIGINT/SIGTERM into the pool's cooperative stop flag; the
      // workers abort in-flight transactions and drain at the next op
      // boundary, same contract as RunClient's Interrupted() polls.
      std::atomic<bool> watching{true};
      std::thread watcher([&stop, &watching] {
        while (watching.load(std::memory_order_acquire)) {
          if (Interrupted()) {
            stop.store(true, std::memory_order_relaxed);
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
      const esr::SessionPoolResult pool_result =
          esr::RunSessionWorkers(&server, spec, pool);
      watching.store(false, std::memory_order_release);
      watcher.join();
      for (size_t s = 0;
           s < pool_result.per_session.size() && s < results.size(); ++s) {
        results[s].committed = pool_result.per_session[s].committed;
        results[s].aborts = pool_result.per_session[s].aborts;
        results[s].waits = pool_result.per_session[s].waits;
      }
    } else {
      std::vector<std::thread> threads;
      for (int c = 0; c < num_clients; ++c) {
        threads.emplace_back([&, c] {
          results[static_cast<size_t>(c)] =
              RunClient(&server, static_cast<esr::SiteId>(c + 1), spec,
                        txns_per_client);
        });
      }
      for (auto& thread : threads) thread.join();
    }
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    sampling.store(false, std::memory_order_release);
    sampler.join();
    // The tracker outlives all transactions (clients joined above), but
    // not the engine — detach before it goes out of scope.
    server.engine().SetHeadroomTracker(nullptr);

    if (tracing) {
      esr::GlobalTrace().set_enabled(false);
      const esr::Status s =
          esr::GlobalTrace().ExportChromeTraceToFile(trace_path);
      if (!s.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   esr::GlobalTrace().size(), trace_path.c_str());
    }

    if (profiling) {
      esr::GlobalProfiler().set_enabled(false);
      // Merge the per-thread phase histograms into the registry before
      // the metrics JSON export and any lingering scrape, so both carry
      // the profile.phase_ms.* families; then write the full profile
      // (threads, sites, blockers) for tools/esr_profile.
      esr::GlobalProfiler().ExportPhaseHistograms(&server.metrics());
      esr::ProfileTxnTotals txn_totals;
      if (const esr::Histogram* lat =
              server.metrics().FindHistogram("client.txn_latency_ms")) {
        txn_totals.count = static_cast<uint64_t>(lat->count());
        txn_totals.total_ms =
            lat->mean() * static_cast<double>(lat->count());
      }
      const esr::Status s = esr::WriteProfileJsonToFile(
          esr::GlobalProfiler().Snapshot(), txn_totals, /*enabled=*/true,
          profile_path);
      if (!s.ok()) {
        std::fprintf(stderr, "profile export failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote profile JSON to %s\n",
                   profile_path.c_str());
    }

    ClientResult total;
    for (const ClientResult& r : results) {
      total.committed += r.committed;
      total.aborts += r.aborts;
      total.waits += r.waits;
    }
    const esr::Histogram* latency =
        server.metrics().FindHistogram("client.txn_latency_ms");
    std::printf("%-8s %10.0f %10lld %10lld %10lld %12.2f\n",
                std::string(esr::EpsilonLevelToString(level)).c_str(),
                static_cast<double>(total.committed) / elapsed_s,
                static_cast<long long>(total.committed),
                static_cast<long long>(total.aborts),
                static_cast<long long>(total.waits),
                latency != nullptr ? latency->ApproximatePercentile(0.99)
                                   : 0.0);

    // Same flush contract as the metrics JSON: on interrupt, the level
    // that was running is the last that will ever finish, so its alert
    // journal is written instead of dropped — a mid-run SIGTERM still
    // leaves a parseable journal on disk (pinned by ctest).
    if (health != nullptr && (level == last_level || Interrupted())) {
      health->Finish();
      const esr::HealthReport report = health->Report();
      const esr::Status s =
          esr::WriteHealthJsonToFile(report, health_path);
      if (!s.ok()) {
        std::fprintf(stderr, "health journal export failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      const std::string verdict =
          report.healthy()
              ? "HEALTHY"
              : std::to_string(report.alerts.size()) + " alert(s)";
      std::fprintf(stderr, "health: %s over %zu window(s) — journal at %s\n",
                   verdict.c_str(), report.windows, health_path.c_str());
    }

    // On interrupt, the level that was running is the last one that will
    // ever finish — flush the metrics JSON for it instead of dropping it.
    if (!json_path.empty() && (level == last_level || Interrupted())) {
      const esr::Status s =
          esr::ExportMetricsJsonToFile(server.metrics(), json_path);
      if (!s.ok()) {
        std::fprintf(stderr, "metrics export failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote metrics JSON to %s\n", json_path.c_str());
    }

    if (level == last_level && metrics_linger_ms > 0 &&
        metrics_http.running() && !Interrupted()) {
      // Keep the final registry scrapeable for external collectors.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(metrics_linger_ms));
    }
    hub.Set(nullptr);
    if (Interrupted()) break;
  }
  metrics_http.Stop();

  int exit_code = 0;
  if (certifier != nullptr) {
    certify_observer.reset();  // detach before reading the final verdict
    certifier->AdvanceTo(NowMicros());
    if (certify_enabled_trace) esr::GlobalTrace().set_enabled(false);
    const esr::StreamCertification cert = certifier->Snapshot();
    if (cert.certified()) {
      std::printf(
          "\nstreaming certification: PASS — certified through %.1fs "
          "(%zu walks, %zu charges over %zu windows)\n",
          cert.certified_through_s, cert.walks_replayed,
          cert.charges_applied, cert.windows_closed);
    } else {
      std::printf(
          "\nstreaming certification: FAIL — %zu violation(s); watermark "
          "froze at %.1fs\n",
          cert.violations.size(), cert.certified_through_s);
      exit_code = 2;
    }
  }

  std::printf("\nNote: without the simulated RPC latency the engine is "
              "memory-speed, so absolute\nnumbers dwarf the paper's; the "
              "epsilon ordering of aborts is what carries over.\n");
  const int sig = g_signal.load(std::memory_order_relaxed);
  if (sig != 0) {
    std::fprintf(stderr,
                 "interrupted by signal %d; outputs flushed, exiting\n", sig);
    return 128 + sig;
  }
  return exit_code;
}
