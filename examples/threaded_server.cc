// The engine outside the simulator: a real multithreaded client/server
// run, mirroring the prototype's architecture (multiple clients submit
// the generated transaction load; aborted transactions are resubmitted
// with fresh timestamps until they commit). Prints per-level throughput
// and the server's internal counters.
//
// Usage:  ./build/examples/threaded_server [num_clients] [txns_per_client]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "esr/limits.h"
#include "txn/server.h"
#include "workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

struct ClientResult {
  int64_t committed = 0;
  int64_t aborts = 0;
  int64_t waits = 0;
};

// Executes `txns` transactions from a generated load against the server,
// retrying waits and resubmitting aborts, exactly like the prototype's
// clients (Sec. 6).
ClientResult RunClient(esr::Server* server, esr::SiteId site,
                       const esr::WorkloadSpec& spec, int txns) {
  ClientResult result;
  esr::WorkloadGenerator generator(spec, 1000 + site);
  esr::TimestampGenerator ts_gen(site);
  for (int i = 0; i < txns; ++i) {
    const esr::TxnScript script = generator.Next();
    bool committed = false;
    while (!committed) {
      const esr::TxnId txn =
          server->Begin(script.type, ts_gen.Next(NowMicros()),
                        script.bounds);
      std::vector<esr::Value> reads;
      bool aborted = false;
      for (const esr::ScriptOp& op : script.ops) {
        // A small per-op pause stands in for the RPC round trip; without
        // it transactions are so short that clients never overlap and no
        // concurrency control ever fires.
        std::this_thread::sleep_for(std::chrono::microseconds(150));
        esr::OpResult r;
        while (true) {
          if (op.kind == esr::ScriptOp::Kind::kRead) {
            r = server->Read(txn, op.object);
          } else {
            const esr::Value value = esr::ApplyDeltaReflecting(
                reads[static_cast<size_t>(op.source_read)], op.delta,
                spec.min_value, spec.max_value);
            r = server->Write(txn, op.object, value);
          }
          if (r.kind != esr::OpResult::Kind::kWait) break;
          ++result.waits;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (r.kind == esr::OpResult::Kind::kAbort) {
          ++result.aborts;
          aborted = true;
          break;
        }
        if (op.kind == esr::ScriptOp::Kind::kRead) reads.push_back(r.value);
      }
      if (aborted) continue;  // immediate restart with a new timestamp
      if (server->Commit(txn).ok()) {
        committed = true;
        ++result.committed;
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int txns_per_client = argc > 2 ? std::atoi(argv[2]) : 250;

  std::printf("threaded client/server run: %d clients x %d transactions\n\n",
              num_clients, txns_per_client);
  std::printf("%-8s %10s %10s %10s %10s\n", "epsilon", "tput(tps)",
              "commits", "aborts", "waits");

  for (const esr::EpsilonLevel level :
       {esr::EpsilonLevel::kZero, esr::EpsilonLevel::kLow,
        esr::EpsilonLevel::kHigh}) {
    esr::ServerOptions options;
    options.store.num_objects = 1000;
    esr::Server server(options);

    esr::WorkloadSpec spec;
    const esr::TransactionLimits limits = esr::LimitsForLevel(level);
    spec.til = limits.til;
    spec.tel = limits.tel;

    std::vector<std::thread> threads;
    std::vector<ClientResult> results(
        static_cast<size_t>(num_clients));
    const auto start = Clock::now();
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        results[static_cast<size_t>(c)] =
            RunClient(&server, static_cast<esr::SiteId>(c + 1), spec,
                      txns_per_client);
      });
    }
    for (auto& thread : threads) thread.join();
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    ClientResult total;
    for (const ClientResult& r : results) {
      total.committed += r.committed;
      total.aborts += r.aborts;
      total.waits += r.waits;
    }
    std::printf("%-8s %10.0f %10lld %10lld %10lld\n",
                std::string(esr::EpsilonLevelToString(level)).c_str(),
                static_cast<double>(total.committed) / elapsed_s,
                static_cast<long long>(total.committed),
                static_cast<long long>(total.aborts),
                static_cast<long long>(total.waits));
  }
  std::printf("\nNote: without the simulated RPC latency the engine is "
              "memory-speed, so absolute\nnumbers dwarf the paper's; the "
              "epsilon ordering of aborts is what carries over.\n");
  return 0;
}
