// The paper's motivating example (Fig. 1): a bank estimates its overall
// holdings during banking hours. Accounts are grouped hierarchically —
// overall -> {company, preferred, personal}, company -> {com1, com2} —
// and the estimate declares a bound at every level:
//
//   BEGIN Query TIL 10000
//     LIMIT company 4000  LIMIT preferred 3000  LIMIT personal 3000
//     LIMIT com1 200 ...
//
// While tellers keep posting updates, the estimate proceeds and the
// inconsistency absorbed from each category stays within its own limit.
//
// Build & run:  ./build/examples/banking_hierarchy [--trace trace.json]
//
// --trace captures the whole run (spans, bound-check walks, conflict
// flows) as Chrome trace-event JSON; feed it to tools/esr_audit to
// recertify every hierarchical bound offline.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/database.h"
#include "obs/trace.h"

namespace {

constexpr esr::ObjectId kAccountsPerDivision = 25;

struct Bank {
  esr::Database db;
  esr::GroupId company, preferred, personal, com1, com2;
  std::vector<esr::ObjectId> all_accounts;

  static esr::ServerOptions Options() {
    esr::ServerOptions opt;
    opt.store.num_objects = 4 * kAccountsPerDivision;
    return opt;
  }

  Bank() : db(Options()) {
    esr::GroupSchema& schema = db.schema();
    company = *schema.AddGroup("company", esr::kRootGroup);
    preferred = *schema.AddGroup("preferred", esr::kRootGroup);
    personal = *schema.AddGroup("personal", esr::kRootGroup);
    com1 = *schema.AddGroup("com1", company);
    com2 = *schema.AddGroup("com2", company);
    // Accounts 0..24 in com1, 25..49 in com2, 50..74 preferred,
    // 75..99 personal.
    const esr::GroupId groups[] = {com1, com2, preferred, personal};
    for (esr::ObjectId id = 0; id < 4 * kAccountsPerDivision; ++id) {
      (void)schema.AssignObject(id, groups[id / kAccountsPerDivision]);
      (void)db.LoadValue(id, 8'000);
      all_accounts.push_back(id);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace trace.json]\n", argv[0]);
      return 1;
    }
  }
  if (!trace_path.empty()) {
    esr::GlobalTrace().Reset();
    esr::GlobalTrace().set_enabled(true);
  }

  Bank bank;
  esr::Session tellers = bank.db.CreateSession(1);
  esr::Session accounting = bank.db.CreateSession(2);

  // Tellers leave a few deposits pending in different categories.
  std::vector<esr::TxnHandle> pending;
  struct Deposit {
    esr::ObjectId account;
    esr::Value amount;
    const char* where;
  };
  const Deposit deposits[] = {
      {3, 150, "com1"}, {30, 900, "com2"}, {60, 700, "preferred"}};
  for (const Deposit& d : deposits) {
    esr::TxnHandle txn =
        tellers.Begin(esr::TxnType::kUpdate, esr::BoundSpec());
    const esr::OpResult r = txn.Read(d.account);
    if (!r.ok() || !txn.Write(d.account, r.value + d.amount).ok()) return 1;
    std::printf("pending deposit: $%lld into account %u (%s)\n",
                static_cast<long long>(d.amount), d.account, d.where);
    pending.push_back(txn);
  }

  // The overall estimate with the paper's hierarchical declaration.
  esr::BoundSpec bounds;
  bounds.SetTransactionLimit(10'000);
  bounds.SetLimit(bank.company, 4'000);
  bounds.SetLimit(bank.preferred, 3'000);
  bounds.SetLimit(bank.personal, 3'000);
  bounds.SetLimit(bank.com1, 200);

  std::printf("\nBEGIN Query TIL 10000, LIMIT company 4000, "
              "LIMIT preferred 3000, LIMIT personal 3000, LIMIT com1 200\n");
  const auto estimate = accounting.AggregateQuery(
      bank.all_accounts, esr::AggregateKind::kSum, bounds,
      /*max_restarts=*/3);
  if (estimate.ok()) {
    std::printf("overall estimate : $%.0f (imported $%.0f of "
                "inconsistency)\n",
                estimate->outcome.result, estimate->imported);
  } else {
    // The com1 deposit ($150) fits its $200 limit, so this should not
    // happen; a bigger com1 deposit would trip exactly that limit.
    std::printf("estimate rejected: %s\n",
                estimate.status().ToString().c_str());
  }

  // Tighten com1's limit below the pending deposit and watch the
  // category-level control reject the query even though the overall TIL
  // has plenty of headroom.
  bounds.SetLimit(bank.com1, 100);
  std::printf("\nretry with LIMIT com1 100 (pending com1 deposit is $150):\n");
  const auto rejected = accounting.AggregateQuery(
      bank.all_accounts, esr::AggregateKind::kSum, bounds,
      /*max_restarts=*/1);
  std::printf("estimate : %s\n",
              rejected.ok() ? "unexpectedly admitted"
                            : rejected.status().ToString().c_str());
  std::printf("group-level rejections so far: %lld\n",
              static_cast<long long>(
                  bank.db.metrics().CounterValue("abort.group_bound")));

  for (esr::TxnHandle& txn : pending) {
    if (!txn.Commit().ok()) return 1;
  }
  std::printf("\nall deposits committed; exact total now $%lld\n",
              static_cast<long long>(
                  bank.db.server().store().TotalValue()));

  if (!trace_path.empty()) {
    esr::GlobalTrace().set_enabled(false);
    const esr::Status s =
        esr::GlobalTrace().ExportChromeTraceToFile(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 esr::GlobalTrace().size(), trace_path.c_str());
  }
  return 0;
}
