// Transaction scripts: the textual ET format of the paper (Secs. 3.1,
// 3.2.1) parsed and executed against the engine — the same shape as the
// load files the prototype's clients replayed (Sec. 6).
//
// Usage:
//   ./build/examples/script_demo               # run the built-in demo
//   ./build/examples/script_demo load.txn      # run a load file

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/database.h"
#include "lang/interpreter.h"
#include "lang/parser.h"
#include "workload/generator.h"

namespace {

constexpr const char* kDemoScript = R"(
# The paper's Sec. 3.2.1 update ET (object ids scaled to this demo DB).
BEGIN Update TEL = 10000
t1 = Read 23
t2 = Read 44
Write 78 , t2+3000
t3 = Read 66
t4 = Read 13
Write 27 , t3-t4+4230
Write 51 , t1+t4+7935
COMMIT

# The Sec. 3.1 hierarchical query: overall bound plus category limits.
BEGIN Query TIL 10000
LIMIT company 4000
LIMIT preferred 3000
LIMIT personal 3000
t1 = Read 78
t2 = Read 27
t3 = Read 51
output("Sum is: ", t1+t2+t3)
COMMIT
)";

}  // namespace

int main(int argc, char** argv) {
  // A demo database with the banking categories of Fig. 1.
  esr::ServerOptions options;
  options.store.num_objects = 100;
  esr::Database db(options);
  esr::GroupSchema& schema = db.schema();
  const esr::GroupId company = *schema.AddGroup("company", esr::kRootGroup);
  const esr::GroupId preferred =
      *schema.AddGroup("preferred", esr::kRootGroup);
  const esr::GroupId personal = *schema.AddGroup("personal", esr::kRootGroup);
  for (esr::ObjectId id = 0; id < 100; ++id) {
    (void)db.LoadValue(id, 1000 + 37 * id);
    (void)schema.AssignObject(
        id, id < 40 ? company : (id < 70 ? preferred : personal));
  }

  std::string source;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
    std::printf("running load file %s\n\n", argv[1]);
  } else {
    source = kDemoScript;
    std::printf("running the built-in demo script:\n%s\n", kDemoScript);
  }

  const auto txns = esr::lang::ParseScript(source);
  if (!txns.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 txns.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu transaction(s)\n", txns->size());

  esr::Session session = db.CreateSession(1);
  const auto outcomes =
      esr::lang::ExecuteScript(&session, db.schema(), *txns);
  if (!outcomes.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 outcomes.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < outcomes->size(); ++i) {
    const esr::lang::ExecOutcome& outcome = (*outcomes)[i];
    std::printf("txn %zu: committed (retries=%d, inconsistency=%.0f)\n",
                i + 1, outcome.retries, outcome.inconsistency);
    for (const std::string& line : outcome.outputs) {
      std::printf("  output: %s\n", line.c_str());
    }
  }

  // Also demonstrate the serializer: write a generated load file the way
  // the prototype's clients consumed them.
  esr::WorkloadSpec spec;
  spec.num_objects = 100;
  esr::WorkloadGenerator generator(spec, 7);
  const std::string load = esr::lang::FormatLoad(generator.MakeLoad(2));
  std::printf("\na generated load file (first two transactions):\n%s",
              load.c_str());
  return 0;
}
