// Replicated reporting: the distributed-data direction the paper's
// conclusion points at. A primary keeps committing updates while two
// read-only replicas lag behind it; report queries run at the replicas
// with an import budget checked against each replica's conservative
// divergence estimate (the sum of unapplied write magnitudes — an upper
// bound on the true divergence by the metric-space triangle inequality).
//
// Build & run:  ./build/examples/replicated_reporting

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "replication/replicated_database.h"

namespace {

constexpr esr::ObjectId kAccounts = 50;

}  // namespace

int main() {
  esr::ReplicationOptions replication;
  replication.num_replicas = 2;
  replication.propagation_delay_ms = 250;
  esr::ServerOptions server;
  server.store.num_objects = kAccounts;
  esr::ReplicatedDatabase db(replication, server);

  std::vector<esr::ObjectId> all;
  for (esr::ObjectId id = 0; id < kAccounts; ++id) all.push_back(id);

  // A stream of primary updates over simulated time.
  esr::Rng rng(12);
  esr::SimTime now = 0;
  int64_t ts = 1;
  int committed = 0;
  auto run_updates = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const esr::ObjectId account =
          static_cast<esr::ObjectId>(rng.UniformInt(0, kAccounts - 1));
      const esr::TxnId txn = db.Begin(esr::TxnType::kUpdate,
                                      esr::Timestamp{ts++, 1},
                                      esr::BoundSpec());
      const esr::OpResult r = db.Read(txn, account);
      if (r.ok() &&
          db.Write(txn, account, r.value + rng.UniformInt(-300, 300))
              .ok()) {
        if (db.Commit(txn, now).ok()) ++committed;
      } else if (db.primary().engine().IsActive(txn)) {
        (void)db.Abort(txn);
      }
      now += 40 * esr::kMicrosPerMilli;  // one update every 40 ms
      db.AdvanceTo(now);
    }
  };

  auto report = [&](int replica, esr::Inconsistency til) {
    const auto q = db.ReplicaSumQuery(replica, all, til);
    if (q.ok()) {
      std::printf(
          "  replica %d, TIL %6.0f : total=%10.0f  estimate=%6.0f  "
          "true staleness=%6.0f\n",
          replica, til, q->sum, q->estimated_import, q->true_import);
    } else {
      std::printf("  replica %d, TIL %6.0f : REJECTED (%s)\n", replica, til,
                  q.status().ToString().c_str());
    }
  };

  std::printf("burst of 40 primary updates (replicas lag by 250 ms)...\n");
  run_updates(40);
  std::printf("%d updates committed; replica queue depths: %zu / %zu\n\n",
              committed, db.PendingWrites(0), db.PendingWrites(1));

  std::printf("reports while replicas lag:\n");
  report(0, 0);        // SR: demands full freshness
  report(0, 500);      // tight budget
  report(0, 5'000);    // loose budget
  report(1, 5'000);

  std::printf("\nafter the propagation pipeline drains:\n");
  now += 300 * esr::kMicrosPerMilli;
  db.AdvanceTo(now);
  report(0, 0);  // now fully fresh: even the SR report succeeds
  const esr::Value primary_total = db.primary().store().TotalValue();
  std::printf("\nprimary total for comparison: %lld\n",
              static_cast<long long>(primary_total));
  return 0;
}
