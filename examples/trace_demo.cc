// Three-transaction conflict, traced end to end: an update leaves a
// deposit uncommitted, one query imports the resulting inconsistency
// within its bounds, and a second query with a tight group limit is
// rejected by the bottom-up check. The recorded events are printed as a
// table and exported as Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Build & run:  ./build/examples/trace_demo [trace.json]

#include <cstdio>
#include <vector>

#include "api/database.h"
#include "cc/to_policy.h"
#include "obs/trace.h"

namespace {

const char* DetailString(const esr::TraceEvent& e) {
  switch (e.type) {
    case esr::TraceEventType::kBegin:
      return e.detail == static_cast<uint8_t>(esr::TxnType::kQuery)
                 ? "query"
                 : "update";
    case esr::TraceEventType::kAbort:
      return esr::AbortReasonToString(
          static_cast<esr::AbortReason>(e.detail));
    case esr::TraceEventType::kBoundCheck:
      return e.detail != 0 ? "admit" : "reject";
    default:
      return "";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "trace_demo.json";

  // A miniature branch: two accounts in "savings" (a group below the
  // root), two directly at the root level.
  esr::ServerOptions opt;
  opt.store.num_objects = 4;
  esr::Database db(opt);
  const esr::GroupId savings = *db.schema().AddGroup("savings",
                                                     esr::kRootGroup);
  (void)db.schema().AssignObject(0, savings);
  (void)db.schema().AssignObject(1, savings);
  for (esr::ObjectId id = 0; id < 4; ++id) (void)db.LoadValue(id, 1'000);

  esr::TraceRecorder& trace = esr::GlobalTrace();
  trace.Reset();
  trace.set_enabled(true);

  // T1: a deposit of $150 into account 0, left uncommitted while the
  // queries run (the source of all imported inconsistency below).
  esr::Session teller = db.CreateSession(1);
  esr::TxnHandle deposit =
      teller.Begin(esr::TxnType::kUpdate, esr::BoundSpec());
  const esr::OpResult r = deposit.Read(0);
  if (!r.ok() || !deposit.Write(0, r.value + 150).ok()) return 1;

  // T2: an estimate with roomy bounds — imports the $150 and commits.
  esr::Session accounting = db.CreateSession(2);
  esr::BoundSpec roomy;
  roomy.SetTransactionLimit(1'000);
  roomy.SetLimit(savings, 500);
  const auto estimate = accounting.AggregateQuery(
      {0, 1, 2, 3}, esr::AggregateKind::kSum, roomy, /*max_restarts=*/0);
  std::printf("roomy query : %s\n",
              estimate.ok() ? "admitted" : "rejected");

  // T3: the same estimate under LIMIT savings 100 — the pending $150
  // trips the group check bottom-up and the query aborts.
  esr::BoundSpec tight;
  tight.SetTransactionLimit(1'000);
  tight.SetLimit(savings, 100);
  const auto rejected = accounting.AggregateQuery(
      {0, 1, 2, 3}, esr::AggregateKind::kSum, tight, /*max_restarts=*/0);
  std::printf("tight query : %s\n",
              rejected.ok() ? "admitted" : "rejected");

  if (!deposit.Commit().ok()) return 1;
  trace.set_enabled(false);

  std::printf("\n%-6s %-12s %-5s %-5s %-8s %-7s %s\n", "ts", "event",
              "txn", "site", "target", "level", "detail");
  for (const esr::TraceEvent& e : trace.Snapshot()) {
    std::printf("%-6lld %-12s %-5llu %-5u %-8llu %-7u %s\n",
                static_cast<long long>(e.ts_micros),
                esr::TraceEventTypeToString(e.type),
                static_cast<unsigned long long>(e.txn),
                static_cast<unsigned>(e.site),
                static_cast<unsigned long long>(e.target),
                static_cast<unsigned>(e.level), DetailString(e));
  }

  const esr::Status status = trace.ExportChromeTraceToFile(trace_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu events exported to %s (load in Perfetto or "
              "chrome://tracing)\n",
              trace.size(), trace_path);
  return 0;
}
