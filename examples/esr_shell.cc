// An interactive shell for the epsilon-serializable database: type
// transactions in the paper's script language and run them against a live
// engine. Useful for poking at bounds interactively.
//
//   $ ./build/examples/esr_shell
//   esr> BEGIN Query TIL 1000
//   ...> t1 = Read 5
//   ...> output("value: ", t1)
//   ...> COMMIT
//   txn committed (retries=0, inconsistency=0)
//   output: value: 4830
//
// Meta commands: \help \peek <id> \group <name> <parent> \assign <id>
// <group> \schema \metrics \quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "api/database.h"
#include "lang/interpreter.h"
#include "lang/parser.h"

namespace {

void PrintHelp() {
  std::printf(
      "Transactions: type the paper's script language, ending with "
      "COMMIT or END, e.g.\n"
      "  BEGIN Query TIL 1000\n"
      "  LIMIT company 400\n"
      "  t1 = Read 5\n"
      "  output(\"value: \", t1)\n"
      "  COMMIT\n"
      "Meta commands:\n"
      "  \\peek <id>              print an object's committed value\n"
      "  \\group <name> <parent>  add a group (parent by name; root = "
      "overall)\n"
      "  \\assign <id> <group>    put an object under a group\n"
      "  \\schema                 list groups\n"
      "  \\metrics                dump server counters\n"
      "  \\help  \\quit\n");
}

bool HandleMeta(const std::string& line, esr::Database* db) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  if (command == "\\help") {
    PrintHelp();
  } else if (command == "\\peek") {
    esr::ObjectId id = 0;
    if (!(in >> id)) {
      std::printf("usage: \\peek <object id>\n");
      return true;
    }
    const auto value = db->PeekValue(id);
    if (value.ok()) {
      std::printf("object %u = %lld\n", id,
                  static_cast<long long>(*value));
    } else {
      std::printf("%s\n", value.status().ToString().c_str());
    }
  } else if (command == "\\group") {
    std::string name, parent;
    if (!(in >> name >> parent)) {
      std::printf("usage: \\group <name> <parent-name>\n");
      return true;
    }
    const auto parent_id = db->schema().FindGroup(parent);
    if (!parent_id.ok()) {
      std::printf("%s\n", parent_id.status().ToString().c_str());
      return true;
    }
    const auto id = db->schema().AddGroup(name, *parent_id);
    if (id.ok()) {
      std::printf("group '%s' added under '%s'\n", name.c_str(),
                  parent.c_str());
    } else {
      std::printf("%s\n", id.status().ToString().c_str());
    }
  } else if (command == "\\assign") {
    esr::ObjectId id = 0;
    std::string group;
    if (!(in >> id >> group)) {
      std::printf("usage: \\assign <object id> <group-name>\n");
      return true;
    }
    const auto group_id = db->schema().FindGroup(group);
    if (!group_id.ok()) {
      std::printf("%s\n", group_id.status().ToString().c_str());
      return true;
    }
    const esr::Status status = db->schema().AssignObject(id, *group_id);
    std::printf("%s\n", status.ToString().c_str());
  } else if (command == "\\schema") {
    const esr::GroupSchema& schema = db->schema();
    for (esr::GroupId g = 0; g < schema.num_groups(); ++g) {
      std::printf("  [%u] %s (parent %s, weight %.1f)\n", g,
                  schema.name(g).c_str(),
                  schema.name(schema.parent(g)).c_str(), schema.weight(g));
    }
  } else if (command == "\\metrics") {
    for (const auto& [name, value] : db->metrics().CounterSnapshot()) {
      std::printf("  %-28s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
  } else if (command == "\\quit" || command == "\\q") {
    return false;
  } else {
    std::printf("unknown command %s (try \\help)\n", command.c_str());
  }
  return true;
}

}  // namespace

int main() {
  esr::ServerOptions options;
  options.store.num_objects = 1000;
  esr::Database db(options);
  esr::Session session = db.CreateSession(1);

  std::printf("esrdb shell — 1000 objects, values 1000..9999. \\help for "
              "help.\n");

  std::string buffer;
  std::string line;
  bool in_txn = false;
  while (true) {
    std::printf("%s", in_txn ? "...> " : "esr> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim leading whitespace.
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    const std::string trimmed = line.substr(start);

    if (!in_txn && trimmed[0] == '\\') {
      if (!HandleMeta(trimmed, &db)) break;
      continue;
    }
    buffer += trimmed + "\n";
    in_txn = true;
    // A transaction ends with COMMIT or END on its own line.
    std::string word;
    std::istringstream first(trimmed);
    first >> word;
    if (word != "COMMIT" && word != "END") continue;

    const auto txns = esr::lang::ParseScript(buffer);
    buffer.clear();
    in_txn = false;
    if (!txns.ok()) {
      std::printf("parse error: %s\n", txns.status().ToString().c_str());
      continue;
    }
    const auto outcomes =
        esr::lang::ExecuteScript(&session, db.schema(), *txns);
    if (!outcomes.ok()) {
      std::printf("error: %s\n", outcomes.status().ToString().c_str());
      continue;
    }
    for (const auto& outcome : *outcomes) {
      std::printf("txn committed (retries=%d, inconsistency=%.0f)\n",
                  outcome.retries, outcome.inconsistency);
      for (const std::string& output : outcome.outputs) {
        std::printf("output: %s\n", output.c_str());
      }
    }
  }
  std::printf("\nbye\n");
  return 0;
}
