// Quickstart: open an epsilon-serializable database, run an update, and
// run a bounded-inconsistency query that reads the updater's uncommitted
// data — the core ESR scenario from the paper's introduction.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "api/database.h"

int main() {
  // A small in-memory database of 100 "accounts".
  esr::ServerOptions options;
  options.store.num_objects = 100;
  esr::Database db(options);
  for (esr::ObjectId id = 0; id < 100; ++id) {
    if (!db.LoadValue(id, 5'000).ok()) return 1;
  }

  esr::Session teller = db.CreateSession(/*site=*/1);
  esr::Session auditor = db.CreateSession(/*site=*/2);

  // A committed deposit through the transactional API.
  const esr::Status deposit = teller.RunUpdate(
      [](esr::TxnHandle& txn) -> esr::Status {
        const esr::OpResult balance = txn.Read(7);
        if (!balance.ok()) return esr::Status::Aborted("read");
        if (!txn.Write(7, balance.value + 250).ok()) {
          return esr::Status::Aborted("write");
        }
        return esr::Status::OK();
      },
      esr::BoundSpec::TransactionOnly(/*TEL=*/1'000));
  std::printf("deposit of $250 into account 7: %s\n",
              deposit.ToString().c_str());

  // Leave a SECOND deposit uncommitted while the auditor queries.
  esr::TxnHandle pending = teller.Begin(esr::TxnType::kUpdate,
                                        esr::BoundSpec::TransactionOnly(
                                            /*TEL=*/1'000));
  const esr::OpResult r = pending.Read(7);
  if (!r.ok() || !pending.Write(7, r.value + 400).ok()) return 1;
  std::printf("second deposit of $400 is pending (uncommitted)\n\n");

  // The auditor sums the first ten accounts. Under plain serializability
  // this query would block behind (or abort because of) the pending
  // deposit; with a transaction import limit of $500 it proceeds and the
  // answer is guaranteed to be within $500 of a serializable result.
  std::vector<esr::ObjectId> accounts;
  for (esr::ObjectId id = 0; id < 10; ++id) accounts.push_back(id);
  const auto query = auditor.AggregateQuery(
      accounts, esr::AggregateKind::kSum,
      esr::BoundSpec::TransactionOnly(/*TIL=*/500));
  if (!query.ok()) {
    std::printf("query failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("audited total of accounts 0..9 : $%.0f\n",
              query->outcome.result);
  std::printf("inconsistency imported         : $%.0f (limit $500)\n",
              query->imported);
  std::printf("=> true serializable total lies within $%.0f of the answer\n",
              query->imported);

  if (!pending.Commit().ok()) return 1;
  std::printf("\npending deposit committed; account 7 = $%lld\n",
              static_cast<long long>(*db.PeekValue(7)));
  return 0;
}
