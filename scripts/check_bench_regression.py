#!/usr/bin/env python3
"""Tolerance-gated bench regression check.

Compares a freshly produced bench JSON report (harness JsonReport format)
against a committed baseline, point by point:

    check_bench_regression.py --baseline bench/baseline/fig07.json \
        --current /tmp/fig07.json [--tolerance 0.05] [--metric throughput]

A point regresses when the current metric falls below baseline * (1 -
tolerance); improvements never fail the gate. Points present in only one
file fail loudly — a silently dropped MPL point is itself a regression.
The simulator is deterministic per seed, so the tolerance only needs to
absorb floating-point variation across compilers, not run-to-run noise.

Exit status: 0 within tolerance, 1 regression or shape mismatch, 2 usage.
"""

import argparse
import json
import sys


def load_series(path):
    with open(path) as f:
        doc = json.load(f)
    series = doc.get("series")
    if not isinstance(series, dict):
        raise ValueError(f"{path}: no 'series' object")
    return doc.get("figure", "?"), series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative drop (default 0.05 = 5%%)")
    parser.add_argument("--metric", default="throughput")
    args = parser.parse_args()

    try:
        base_fig, baseline = load_series(args.baseline)
        cur_fig, current = load_series(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if base_fig != cur_fig:
        print(f"figure mismatch: baseline '{base_fig}' vs current "
              f"'{cur_fig}'", file=sys.stderr)
        return 1

    failures = []
    checked = 0
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            failures.append(f"series '{name}' missing from current run")
            continue
        if name not in baseline:
            failures.append(f"series '{name}' not in baseline "
                            f"(regenerate the baseline?)")
            continue
        base_by_x = {p["x"]: p for p in baseline[name]}
        cur_by_x = {p["x"]: p for p in current[name]}
        for x in sorted(set(base_by_x) | set(cur_by_x)):
            if x not in cur_by_x:
                failures.append(f"{name} x={x}: point missing from current")
                continue
            if x not in base_by_x:
                failures.append(f"{name} x={x}: point not in baseline")
                continue
            base_v = base_by_x[x][args.metric]
            cur_v = cur_by_x[x][args.metric]
            checked += 1
            floor = base_v * (1.0 - args.tolerance)
            status = "ok"
            if cur_v < floor:
                status = "REGRESSION"
                failures.append(
                    f"{name} x={x}: {args.metric} {cur_v:.4g} < "
                    f"{floor:.4g} (baseline {base_v:.4g} - "
                    f"{args.tolerance:.0%})")
            delta = (cur_v / base_v - 1.0) * 100 if base_v else 0.0
            print(f"  {name:>12} x={x:<6g} {args.metric} "
                  f"{base_v:>9.3f} -> {cur_v:>9.3f}  ({delta:+6.2f}%)"
                  f"  {status}")

    print(f"{checked} points checked against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
