#!/usr/bin/env python3
"""Tolerance-gated bench regression check.

Compares freshly produced bench JSON reports (harness JsonReport format)
against committed baselines, point by point. One pair via the legacy
flags:

    check_bench_regression.py --baseline bench/baseline/fig07.json \
        --current /tmp/fig07.json [--tolerance 0.05] [--metric throughput]

or several figures in one invocation, each a `baseline:current` pair —
the gate fails if ANY pair regresses:

    check_bench_regression.py \
        --check bench/baseline/fig07_throughput_vs_mpl.json:/tmp/fig07.json \
        --check bench/baseline/fig11_throughput_vs_til.json:/tmp/fig11.json

A point regresses when the current metric falls below baseline * (1 -
tolerance); improvements never fail the gate. Points present in only one
file fail loudly — a silently dropped MPL point is itself a regression.
The simulator is deterministic per seed, so the tolerance only needs to
absorb floating-point variation across compilers, not run-to-run noise.

Statistical softening: baselines produced by the harness carry a per-point
`ci90_rel` — the relative 90% confidence half-width of the mean across
seeds. When a drop breaches the tolerance gate but the baseline's own CI
is wider than the tolerance AND the current value still lies inside that
CI, the point is reported as a WARNING instead of a failure: the baseline
itself says seed-level dispersion at that point dwarfs the gate, so the
drop is indistinguishable from reseeding noise (the deep-thrashing bench
points are bistable across seeds with CIs of +/-30%). The tolerance stays
the outer bound everywhere the baseline is statistically tight, and a
drop below the baseline CI floor always fails.

Exit status: 0 within tolerance (warnings allowed), 1 regression or shape
mismatch, 2 usage.
"""

import argparse
import json
import os
import sys


def load_series(path):
    with open(path) as f:
        doc = json.load(f)
    series = doc.get("series")
    if not isinstance(series, dict):
        raise ValueError(f"{path}: no 'series' object")
    return doc.get("figure", "?"), series


def check_pair(baseline_path, current_path, tolerance, metric):
    """Returns (checked_points, failures, warnings) for one figure pair."""
    base_fig, baseline = load_series(baseline_path)
    cur_fig, current = load_series(current_path)

    if base_fig != cur_fig:
        return 0, [f"figure mismatch: baseline '{base_fig}' vs current "
                   f"'{cur_fig}'"], []

    failures = []
    warnings = []
    checked = 0
    print(f"{base_fig}:")
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            failures.append(f"series '{name}' missing from current run")
            continue
        if name not in baseline:
            failures.append(f"series '{name}' not in baseline "
                            f"(regenerate the baseline?)")
            continue
        base_by_x = {p["x"]: p for p in baseline[name]}
        cur_by_x = {p["x"]: p for p in current[name]}
        for x in sorted(set(base_by_x) | set(cur_by_x)):
            if x not in cur_by_x:
                failures.append(f"{name} x={x}: point missing from current")
                continue
            if x not in base_by_x:
                failures.append(f"{name} x={x}: point not in baseline")
                continue
            base_v = base_by_x[x][metric]
            cur_v = cur_by_x[x][metric]
            ci90_rel = base_by_x[x].get("ci90_rel", 0.0)
            checked += 1
            floor = base_v * (1.0 - tolerance)
            status = "ok"
            if cur_v < floor:
                ci_floor = base_v * (1.0 - ci90_rel)
                if ci90_rel > tolerance and cur_v >= ci_floor:
                    # The baseline's own seed CI is wider than the gate and
                    # the drop stays inside it: statistically this point
                    # cannot distinguish the drop from reseeding noise.
                    status = "WARNING(within baseline CI)"
                    warnings.append(
                        f"{base_fig}: {name} x={x}: {metric} {cur_v:.4g} "
                        f"below gate {floor:.4g} but inside the baseline "
                        f"90% CI (+/-{ci90_rel:.1%})")
                else:
                    status = "REGRESSION"
                    failures.append(
                        f"{base_fig}: {name} x={x}: {metric} {cur_v:.4g} < "
                        f"{floor:.4g} (baseline {base_v:.4g} - "
                        f"{tolerance:.0%}, CI +/-{ci90_rel:.1%})")
            delta = (cur_v / base_v - 1.0) * 100 if base_v else 0.0
            print(f"  {name:>12} x={x:<6g} {metric} "
                  f"{base_v:>9.3f} -> {cur_v:>9.3f}  ({delta:+6.2f}%)"
                  f"  {status}")

    print(f"{checked} points checked against {baseline_path} "
          f"(tolerance {tolerance:.0%})")
    return checked, failures, warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="single-pair form (legacy)")
    parser.add_argument("--current", help="single-pair form (legacy)")
    parser.add_argument("--check", action="append", default=[],
                        metavar="BASELINE:CURRENT",
                        help="a baseline:current pair; repeatable")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative drop (default 0.05 = 5%%)")
    parser.add_argument("--metric", default="throughput")
    args = parser.parse_args()

    pairs = []
    if args.baseline or args.current:
        if not (args.baseline and args.current):
            print("error: --baseline and --current must be given together",
                  file=sys.stderr)
            return 2
        pairs.append((args.baseline, args.current))
    for spec in args.check:
        baseline, sep, current = spec.partition(":")
        if not sep or not baseline or not current:
            print(f"error: --check expects BASELINE:CURRENT, got '{spec}'",
                  file=sys.stderr)
            return 2
        pairs.append((baseline, current))
    if not pairs:
        print("error: nothing to check (use --baseline/--current or "
              "--check)", file=sys.stderr)
        return 2

    # Fail up front, naming every missing file: a baseline that was never
    # committed (or a current report a bench failed to write) must read as
    # a loud gate failure, not vanish into a traceback.
    missing = []
    for baseline_path, current_path in pairs:
        if not os.path.exists(baseline_path):
            missing.append(f"baseline file missing: {baseline_path} "
                           f"(commit one with the bench's --json output)")
        if not os.path.exists(current_path):
            missing.append(f"current report missing: {current_path} "
                           f"(did the bench run fail?)")
    if missing:
        for m in missing:
            print(f"error: {m}", file=sys.stderr)
        return 2

    total_checked = 0
    failures = []
    warnings = []
    for baseline_path, current_path in pairs:
        try:
            checked, pair_failures, pair_warnings = check_pair(
                baseline_path, current_path, args.tolerance, args.metric)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        total_checked += checked
        failures.extend(pair_failures)
        warnings.extend(pair_warnings)

    print(f"total: {total_checked} points across {len(pairs)} figure(s)")
    if warnings:
        print(f"\n{len(warnings)} warning(s) (inside baseline CI, not "
              f"gating):", file=sys.stderr)
        for w in warnings:
            print(f"  {w}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
