// Figure 10: Total Number of Operations (reads + writes) executed vs
// Multiprogramming Level, including the operations of attempts that later
// aborted. With near-zero aborts (high bounds) this equals the useful
// work; anything above that is wasted effort that depresses throughput.

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::EpsilonLevel;
using esr::EpsilonLevelToString;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr EpsilonLevel kLevels[] = {EpsilonLevel::kZero, EpsilonLevel::kLow,
                                    EpsilonLevel::kMedium,
                                    EpsilonLevel::kHigh};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 10: Number of Operations (R+W) vs MPL",
              "ops at high bounds ~= useful work; the excess at lower "
              "bounds measures wasted effort from aborted transactions",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig10_operations_vs_mpl");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (int mpl = 1; mpl <= 10; ++mpl) {
    for (EpsilonLevel level : kLevels) {
      sweep.Add(BaseOptions(level, mpl, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig10_operations_vs_mpl", sweep.scale());
  Table table(
      {"mpl", "zero(SR)", "low", "medium", "high", "waste(SR-vs-high)"});
  size_t point = 0;
  for (int mpl = 1; mpl <= 10; ++mpl) {
    std::vector<std::string> row{std::to_string(mpl)};
    double zero_ops = 0, high_ops = 0, zero_commit = 0, high_commit = 0;
    for (EpsilonLevel level : kLevels) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint(std::string(EpsilonLevelToString(level)), mpl, r);
      row.push_back(Table::Int(r.ops_executed));
      if (level == EpsilonLevel::kZero) {
        zero_ops = r.ops_executed;
        zero_commit = r.committed;
      }
      if (level == EpsilonLevel::kHigh) {
        high_ops = r.ops_executed;
        high_commit = r.committed;
      }
    }
    // Wasted ops per committed txn under SR relative to the high-epsilon
    // useful-work baseline.
    const double waste =
        (zero_commit > 0 && high_commit > 0)
            ? zero_ops / zero_commit - high_ops / high_commit
            : 0.0;
    row.push_back(Table::Num(waste, 1));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nwaste(SR-vs-high): extra ops per committed txn under SR compared "
      "with the high-epsilon useful-work baseline.\n");
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  return 0;
}
