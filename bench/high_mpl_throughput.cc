// Throughput of the *real* sharded engine (not the simulator) under a
// high multiprogramming level: 64 zero-think-time client sessions
// multiplexed over a worker pool (engine/sharded/session.h), swept
// across (shards, workers) configurations. Where the figure harnesses
// measure the paper's discrete-event model, this measures the concurrent
// implementation itself — per-shard latching, batched op submission, and
// group commit — so the registry records how the engine scales as shards
// and threads grow.
//
// Each configuration runs `seeds` times (fresh Server each run, only the
// pool seed differs) and reports the mean throughput with the usual 90%
// CI column. The first row (1 shard, 1 worker) is the serial baseline;
// the speedup column is relative to it.
//
// --audit additionally runs a shortened pass of every configuration
// with the global trace enabled and replays the capture through
// BoundWalkReplayer: if concurrency ever admitted a charge past a
// declared hierarchical bound, the process exits 1. The audit pass is
// shorter than the measured runs (the global trace ring is fixed-size
// and a lossy capture cannot be replayed) and its throughput never
// enters the averages, so the recorded numbers stay comparable across
// runs with and without --audit.
//
// Outputs follow the figure-harness conventions: a fixed-width table,
// `--json <path>` for the machine-readable report, and `--registry
// <dir>` to append to the cross-run trend registry for esr_bench_report.
//
// Single-core caveat: on one hardware thread the worker pool time-shares
// a core, so the speedup column measures batching/group-commit
// amortization, not parallelism. SPEED.md records both environments.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "engine/sharded/session.h"
#include "engine/sharded/sharded_engine.h"
#include "harness/harness.h"
#include "hierarchy/bound_replay.h"
#include "obs/trace.h"
#include "txn/server.h"
#include "workload/generator.h"

namespace {

using esr::bench::AveragedResult;
using esr::bench::JsonReport;
using esr::bench::MaybeAppendToRegistry;
using esr::bench::RunScale;
using esr::bench::Table;

struct PoolConfig {
  size_t shards;
  size_t workers;
};

struct RunOutcome {
  double throughput = 0.0;
  int64_t committed = 0;
  int64_t aborts = 0;
  int64_t waits = 0;
};

// Mirrors the stress harness: kGroups sibling groups under the root with
// objects assigned round-robin, and hierarchical declarations on every
// transaction so the engine walks (and the audit replays) real bound
// checks, not a no-op hierarchy.
constexpr size_t kObjects = 2000;
constexpr size_t kHotSet = 100;
constexpr size_t kGroups = 6;
constexpr size_t kSessions = 64;  // the fixed MPL of the sweep
constexpr esr::Inconsistency kTil = 50'000;
constexpr esr::Inconsistency kTel = 12'000;

RunOutcome RunOnce(const PoolConfig& cfg, int txns_per_session,
                   uint64_t seed) {
  esr::ServerOptions opt;
  opt.engine = esr::EngineKind::kSharded;
  opt.sharded.num_shards = cfg.shards;
  opt.store.num_objects = kObjects;
  opt.store.seed = 500 + seed;
  esr::Server server(opt);

  std::vector<esr::GroupId> groups;
  for (size_t g = 0; g < kGroups; ++g) {
    groups.push_back(
        *server.schema().AddGroup("g" + std::to_string(g), esr::kRootGroup));
  }
  for (esr::ObjectId id = 0; id < kObjects; ++id) {
    (void)server.schema().AssignObject(id, groups[id % kGroups]);
  }

  esr::WorkloadSpec spec;
  spec.num_objects = kObjects;
  spec.hot_set_size = kHotSet;
  spec.bound_factory = [&groups](esr::TxnType type) {
    esr::BoundSpec bounds;
    const esr::Inconsistency root =
        type == esr::TxnType::kQuery ? kTil : kTel;
    bounds.SetTransactionLimit(root);
    for (const esr::GroupId g : groups) bounds.SetLimit(g, root / 2);
    return bounds;
  };

  esr::SessionPoolOptions pool;
  pool.sessions = kSessions;
  pool.txns_per_session = txns_per_session;
  pool.workers = cfg.workers;
  pool.seed = seed;
  const esr::SessionPoolResult result =
      esr::RunSessionWorkers(&server, spec, pool);

  RunOutcome out;
  out.committed = result.total.committed;
  out.aborts = result.total.aborts;
  out.waits = result.total.waits;
  out.throughput =
      result.elapsed_s > 0.0
          ? static_cast<double>(result.total.committed) / result.elapsed_s
          : 0.0;
  return out;
}

/// Audit pass: same configuration, trace enabled, replayed through the
/// bound-walk replayer. Returns the number of violations found.
size_t AuditOnce(const PoolConfig& cfg, int txns_per_session,
                 uint64_t seed) {
  esr::GlobalTrace().Reset();
  esr::GlobalTrace().set_enabled(true);
  (void)RunOnce(cfg, txns_per_session, seed);
  esr::GlobalTrace().set_enabled(false);
  const std::vector<esr::TraceEvent> events = esr::GlobalTrace().Snapshot();
  if (esr::GlobalTrace().dropped() > 0) {
    std::fprintf(stderr,
                 "audit %zus/%zuw: trace ring wrapped (%llu dropped) — "
                 "replay would be lossy, shrink the run\n",
                 cfg.shards, cfg.workers,
                 static_cast<unsigned long long>(esr::GlobalTrace().dropped()));
    return 1;
  }
  esr::BoundWalkReplayer replayer;
  for (const esr::TraceEvent& event : events) replayer.OnEvent(event);
  if (!replayer.violations().empty()) {
    std::fprintf(stderr,
                 "audit %zus/%zuw: %zu bound violations (first: group %d "
                 "accumulated %lld > limit %lld)\n",
                 cfg.shards, cfg.workers, replayer.violations().size(),
                 static_cast<int>(replayer.violations()[0].group),
                 static_cast<long long>(replayer.violations()[0].accumulated),
                 static_cast<long long>(replayer.violations()[0].limit));
  } else {
    std::fprintf(stderr,
                 "audit %zus/%zuw: clean (%zu walks, %zu charges)\n",
                 cfg.shards, cfg.workers, replayer.walks_replayed(),
                 replayer.charges_applied());
  }
  return replayer.violations().size();
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const RunScale scale = RunScale::FromEnv();
  const bool full = scale.preset == "full";
  const bool audit = HasFlag(argc, argv, "--audit");
  const int txns_per_session = full ? 200 : 100;
  const int seeds = full ? 7 : 5;
  // Sized so 64 sessions' probe events fit the fixed trace ring with
  // ample margin (a wrapped ring fails the audit as lossy).
  const int audit_txns = 12;

  std::printf(
      "=== high_mpl_throughput: sharded engine, %zu sessions, "
      "%d txns/session, %d seeds%s ===\n\n",
      kSessions, txns_per_session, seeds, audit ? ", audited" : "");

  const PoolConfig configs[] = {{1, 1}, {2, 2}, {4, 4}, {16, 8}};

  JsonReport report("high_mpl_throughput", scale);
  Table table({"shards", "workers", "tput(txn/s)", "speedup", "aborts",
               "waits"});

  double baseline = 0.0;
  size_t violations = 0;
  for (const PoolConfig& cfg : configs) {
    std::vector<double> tputs;
    AveragedResult avg;
    for (int s = 0; s < seeds; ++s) {
      const RunOutcome out =
          RunOnce(cfg, txns_per_session, 20 + static_cast<uint64_t>(s));
      tputs.push_back(out.throughput);
      avg.committed += static_cast<double>(out.committed) / seeds;
      avg.aborts += static_cast<double>(out.aborts) / seeds;
      avg.waits += static_cast<double>(out.waits) / seeds;
    }
    double sum = 0.0;
    for (const double t : tputs) sum += t;
    avg.throughput = sum / static_cast<double>(tputs.size());
    avg.ci90_rel = avg.throughput > 0.0
                       ? esr::Ci90HalfWidth(tputs) / avg.throughput
                       : 0.0;
    if (baseline == 0.0) baseline = avg.throughput;

    if (audit) {
      violations += AuditOnce(cfg, audit_txns, 20 + static_cast<uint64_t>(seeds));
    }

    table.AddRow({Table::Int(static_cast<double>(cfg.shards)),
                  Table::Int(static_cast<double>(cfg.workers)),
                  Table::NumCi(avg.throughput, avg.ci90_rel, 0),
                  Table::Num(avg.throughput / baseline),
                  Table::Int(avg.aborts), Table::Int(avg.waits)});
    report.AddPoint("throughput", static_cast<double>(cfg.shards), avg);
  }

  table.Print();
  std::printf(
      "\nspeedup is vs the 1-shard/1-worker serial baseline. On a "
      "single-core host it\nmeasures batching and group-commit "
      "amortization, not parallelism (SPEED.md).\n");

  const std::string json_path = JsonReport::PathFromArgs(argc, argv);
  const esr::Status json_status = report.WriteToFile(json_path);
  if (!json_status.ok()) {
    std::fprintf(stderr, "json export failed: %s\n",
                 json_status.ToString().c_str());
    return 1;
  }
  const esr::Status reg_status =
      MaybeAppendToRegistry(argc, argv, report, /*jobs=*/1);
  if (!reg_status.ok()) {
    std::fprintf(stderr, "registry append failed: %s\n",
                 reg_status.ToString().c_str());
    return 1;
  }
  if (violations > 0) {
    std::fprintf(stderr, "audit FAILED: %zu violations\n", violations);
    return 1;
  }
  return 0;
}
