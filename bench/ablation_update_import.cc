// Ablation: what if update ETs could import inconsistency too? The paper
// restricts its evaluation to query ETs running against CONSISTENT update
// ETs ("in this paper we focus our attention on the situation where
// query ETs run concurrently with consistent update ETs", Sec. 1), while
// noting that "update ETs can view inconsistent data the same way query
// ETs do". This bench runs the generalization: update ETs get an import
// budget, so their reads stop aborting on late data — at the price that
// update results may themselves be computed from (boundedly) inconsistent
// inputs.

#include "harness/harness.h"

#include <cstdio>
#include <iterator>

namespace {

using esr::Inconsistency;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr int kMpls[] = {2, 4, 6, 8, 10};
constexpr Inconsistency kBudgets[] = {0, 2'000, 10'000, 50'000};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Ablation: update-ET import budgets (Sec. 1 generalization)",
              "paper evaluates consistent update ETs only (budget 0); "
              "positive budgets trade update consistency for fewer "
              "update aborts",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "ablation_update_import");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (int mpl : kMpls) {
    for (const Inconsistency budget : kBudgets) {
      // High query/export bounds so the update-read path is what varies.
      auto opt = BaseOptions(/*til=*/100'000, /*tel=*/10'000, mpl, scale);
      opt.workload.update_import_til = budget;
      sweep.Add(opt);
    }
  }
  sweep.Run();

  Table tput({"mpl", "import=0(paper)", "import=2k", "import=10k",
              "import=50k"});
  Table aborts({"mpl", "import=0(paper)", "import=2k", "import=10k",
                "import=50k"});
  size_t point = 0;
  for (int mpl : kMpls) {
    std::vector<std::string> tput_row{std::to_string(mpl)};
    std::vector<std::string> abort_row{std::to_string(mpl)};
    for (size_t b = 0; b < std::size(kBudgets); ++b) {
      const AveragedResult& r = sweep.Result(point++);
      tput_row.push_back(Table::NumCi(r.throughput, r.ci90_rel));
      abort_row.push_back(Table::Int(r.aborts));
    }
    tput.AddRow(tput_row);
    aborts.AddRow(abort_row);
  }
  std::printf("Throughput (tps):\n");
  tput.Print();
  std::printf("\nAborts:\n");
  aborts.Print();
  return 0;
}
