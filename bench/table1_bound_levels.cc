// Table 1 (Sec. 7): the magnitudes of the transaction-level inconsistency
// bounds used in the first set of tests, printed together with the
// realized workload shape (query ETs ~20 ops, update ETs ~6 ops, ~1000
// objects with a ~20-object hot set, values 1000..9999) so the
// configuration is auditable against the paper.

#include "harness/harness.h"

#include <cstdio>

#include "workload/generator.h"

namespace {

using esr::EpsilonLevel;
using esr::EpsilonLevelToString;
using esr::LimitsForLevel;
using esr::ScriptOp;
using esr::TxnScript;
using esr::TxnType;
using esr::WorkloadGenerator;
using esr::WorkloadSpec;
using esr::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  std::printf("=== Table 1: Inconsistency bound levels (Sec. 7) ===\n\n");
  Table bounds({"Level", "TIL", "TEL"});
  for (EpsilonLevel level : {EpsilonLevel::kHigh, EpsilonLevel::kMedium,
                             EpsilonLevel::kLow, EpsilonLevel::kZero}) {
    const auto limits = LimitsForLevel(level);
    bounds.AddRow({std::string(EpsilonLevelToString(level)) + "-epsilon",
                   Table::Int(limits.til), Table::Int(limits.tel)});
  }
  bounds.Print();

  // Realized workload shape, measured from the generator itself.
  const WorkloadSpec spec;
  WorkloadGenerator gen(spec, 1);
  double query_ops = 0, update_ops = 0, update_writes = 0;
  int64_t hot_accesses = 0, total_accesses = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    const TxnScript q = gen.NextQuery();
    query_ops += static_cast<double>(q.ops.size());
    const TxnScript u = gen.NextUpdate();
    update_ops += static_cast<double>(u.ops.size());
    update_writes += static_cast<double>(u.num_writes());
    for (const ScriptOp& op : q.ops) {
      hot_accesses += op.object < spec.hot_set_size ? 1 : 0;
      ++total_accesses;
    }
  }
  std::printf("\nRealized workload shape (%d sampled transactions/kind):\n",
              kSamples);
  std::printf("  objects in database        : %zu (values %lld..%lld)\n",
              spec.num_objects, static_cast<long long>(spec.min_value),
              static_cast<long long>(spec.max_value));
  std::printf("  hot set                    : %zu objects\n",
              spec.hot_set_size);
  std::printf("  query ET ops (paper ~20)   : %.2f\n",
              query_ops / kSamples);
  std::printf("  update ET ops (paper ~6)   : %.2f (%.2f writes)\n",
              update_ops / kSamples, update_writes / kSamples);
  std::printf("  query hot-access fraction  : %.2f\n",
              static_cast<double>(hot_accesses) /
                  static_cast<double>(total_accesses));
  std::printf("  avg write delta w          : %.0f (small %lld x%.2f, large %lld x%.2f)\n",
              spec.MeanWriteDelta(),
              static_cast<long long>(spec.small_write_delta),
              1.0 - spec.large_delta_prob,
              static_cast<long long>(spec.large_write_delta),
              spec.large_delta_prob);
  return 0;
}
