// Replicated deployment, end to end in the simulator: update clients on
// the primary, dashboard clients running bounded sum queries against
// lagging replicas (the conclusion's future-work scenario). Two sweeps:
// query budget at a fixed lag, and replica fan-out showing that replica
// queries scale without touching primary throughput.

#include "harness/harness.h"

#include <cstdio>

#include "sim/replica_cluster.h"

namespace {

using esr::Inconsistency;
using esr::ReplicaCluster;
using esr::ReplicaClusterOptions;
using esr::ReplicaSimResult;
using esr::bench::RunScale;
using esr::bench::Table;

ReplicaClusterOptions BaseOptions(const RunScale& scale) {
  ReplicaClusterOptions opt;
  opt.update_clients = 4;
  opt.replica_query_clients = 4;
  opt.replication.num_replicas = 2;
  opt.replication.propagation_delay_ms = 150.0;
  opt.warmup_s = scale.warmup_s;
  opt.measure_s = scale.measure_s;
  return opt;
}

ReplicaSimResult Averaged(ReplicaClusterOptions opt, const RunScale& scale) {
  ReplicaSimResult total;
  for (int seed = 1; seed <= scale.seeds; ++seed) {
    opt.seed = static_cast<uint64_t>(seed) * 131;
    const ReplicaSimResult r = ReplicaCluster(opt).Run();
    total.elapsed_s += r.elapsed_s;
    total.primary_commits += r.primary_commits;
    total.primary_aborts += r.primary_aborts;
    total.queries_attempted += r.queries_attempted;
    total.queries_admitted += r.queries_admitted;
    total.avg_estimated_import += r.avg_estimated_import;
    total.avg_true_import += r.avg_true_import;
  }
  total.avg_estimated_import /= scale.seeds;
  total.avg_true_import /= scale.seeds;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  std::printf(
      "=== Replicated deployment (DES): bounded dashboards on replicas "
      "===\n");
  std::printf("Extension (paper Sec. 9 future work); propagation lag 150 "
              "ms, 2 replicas.\n\n");

  std::printf("Query budget sweep (4 update + 4 query clients):\n");
  Table budget({"query TIL", "admit%", "query tput", "true staleness",
                "primary tput"});
  for (const Inconsistency til : {0.0, 1'000.0, 5'000.0, 20'000.0,
                                  esr::kUnbounded}) {
    auto opt = BaseOptions(scale);
    opt.query_til = til;
    const ReplicaSimResult r = Averaged(opt, scale);
    budget.AddRow({til == esr::kUnbounded ? "inf" : Table::Int(til),
                   Table::Num(100.0 * r.admitted_fraction(), 0) + "%",
                   Table::Num(r.query_throughput(), 1),
                   Table::Num(r.avg_true_import, 0),
                   Table::Num(r.primary_throughput(), 1)});
  }
  budget.Print();

  std::printf("\nDashboard fan-out sweep (query TIL = 10k): replica "
              "queries add throughput\nwithout consuming primary "
              "capacity:\n");
  Table fanout({"query clients", "query tput", "primary tput"});
  for (const int clients : {1, 2, 4, 8, 16}) {
    auto opt = BaseOptions(scale);
    opt.query_til = 10'000;
    opt.replica_query_clients = clients;
    const ReplicaSimResult r = Averaged(opt, scale);
    fanout.AddRow({std::to_string(clients),
                   Table::Num(r.query_throughput(), 1),
                   Table::Num(r.primary_throughput(), 1)});
  }
  fanout.Print();
  return 0;
}
