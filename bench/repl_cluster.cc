// Replicated deployment, end to end in the simulator: update clients on
// the primary, dashboard clients running bounded sum queries against
// lagging replicas (the conclusion's future-work scenario). Two sweeps:
// query budget at a fixed lag, and replica fan-out showing that replica
// queries scale without touching primary throughput.

#include "harness/harness.h"

#include <cstdio>

#include "sim/replica_cluster.h"

namespace {

using esr::Inconsistency;
using esr::ReplicaCluster;
using esr::ReplicaClusterOptions;
using esr::ReplicaSimResult;
using esr::bench::JobsFromArgs;
using esr::bench::ParallelFor;
using esr::bench::RunScale;
using esr::bench::Table;

ReplicaClusterOptions BaseOptions(const RunScale& scale) {
  ReplicaClusterOptions opt;
  opt.update_clients = 4;
  opt.replica_query_clients = 4;
  opt.replication.num_replicas = 2;
  opt.replication.propagation_delay_ms = 150.0;
  opt.warmup_s = scale.warmup_s;
  opt.measure_s = scale.measure_s;
  return opt;
}

// Runs every (config, seed) pair across `jobs` workers and merges each
// config's seeds on the calling thread, in seed order, so the output is
// bit-identical to a serial run.
std::vector<ReplicaSimResult> RunConfigs(
    const std::vector<ReplicaClusterOptions>& configs, const RunScale& scale,
    int jobs) {
  const size_t seeds = static_cast<size_t>(scale.seeds);
  std::vector<ReplicaSimResult> raw(configs.size() * seeds);
  ParallelFor(raw.size(), jobs, [&](size_t task) {
    ReplicaClusterOptions opt = configs[task / seeds];
    opt.seed = static_cast<uint64_t>(task % seeds + 1) * 131;
    opt.owns_trace = jobs == 1;
    raw[task] = ReplicaCluster(opt).Run();
  });

  std::vector<ReplicaSimResult> merged(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    ReplicaSimResult total;
    for (size_t seed = 0; seed < seeds; ++seed) {
      const ReplicaSimResult& r = raw[c * seeds + seed];
      total.elapsed_s += r.elapsed_s;
      total.primary_commits += r.primary_commits;
      total.primary_aborts += r.primary_aborts;
      total.queries_attempted += r.queries_attempted;
      total.queries_admitted += r.queries_admitted;
      total.avg_estimated_import += r.avg_estimated_import;
      total.avg_true_import += r.avg_true_import;
    }
    total.avg_estimated_import /= scale.seeds;
    total.avg_true_import /= scale.seeds;
    merged[c] = total;
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  std::printf(
      "=== Replicated deployment (DES): bounded dashboards on replicas "
      "===\n");
  std::printf("Extension (paper Sec. 9 future work); propagation lag 150 "
              "ms, 2 replicas.\n\n");

  const Inconsistency kBudgets[] = {0.0, 1'000.0, 5'000.0, 20'000.0,
                                    esr::kUnbounded};
  const int kFanouts[] = {1, 2, 4, 8, 16};

  std::vector<ReplicaClusterOptions> configs;
  for (const Inconsistency til : kBudgets) {
    auto opt = BaseOptions(scale);
    opt.query_til = til;
    configs.push_back(opt);
  }
  for (const int clients : kFanouts) {
    auto opt = BaseOptions(scale);
    opt.query_til = 10'000;
    opt.replica_query_clients = clients;
    configs.push_back(opt);
  }
  const std::vector<ReplicaSimResult> results =
      RunConfigs(configs, scale, JobsFromArgs(argc, argv));
  size_t point = 0;

  std::printf("Query budget sweep (4 update + 4 query clients):\n");
  Table budget({"query TIL", "admit%", "query tput", "true staleness",
                "primary tput"});
  for (const Inconsistency til : kBudgets) {
    const ReplicaSimResult& r = results[point++];
    budget.AddRow({til == esr::kUnbounded ? "inf" : Table::Int(til),
                   Table::Num(100.0 * r.admitted_fraction(), 0) + "%",
                   Table::Num(r.query_throughput(), 1),
                   Table::Num(r.avg_true_import, 0),
                   Table::Num(r.primary_throughput(), 1)});
  }
  budget.Print();

  std::printf("\nDashboard fan-out sweep (query TIL = 10k): replica "
              "queries add throughput\nwithout consuming primary "
              "capacity:\n");
  Table fanout({"query clients", "query tput", "primary tput"});
  for (const int clients : kFanouts) {
    const ReplicaSimResult& r = results[point++];
    fanout.AddRow({std::to_string(clients),
                   Table::Num(r.query_throughput(), 1),
                   Table::Num(r.primary_throughput(), 1)});
  }
  fanout.Print();
  return 0;
}
