// Cross-protocol comparison on the paper's workload: the TO-based ESR
// prototype (the paper's system) against strict 2PL with wait-die (the
// protocol the paper avoided for its deadlock handling, Sec. 4) with the
// same divergence control, and against MVTO (the multiversion scheme
// Sec. 5.1 distinguishes from the proper-value mechanism — queries read
// consistent snapshots, never inconsistent data, at the cost of version
// storage and staleness).

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::EngineKind;
using esr::EpsilonLevel;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr int kMpls[] = {1, 2, 4, 6, 8, 10};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader(
      "Protocol comparison: TO vs 2PL(wait-die) vs MVTO",
      "not in the paper's figures; quantifies the alternatives Secs. 4 "
      "and 5.1 discuss, on the identical workload",
      scale);

  struct Config {
    const char* name;
    EngineKind engine;
    EpsilonLevel level;
  };
  const Config configs[] = {
      {"TO-SR", EngineKind::kTimestampOrdering, EpsilonLevel::kZero},
      {"TO-ESR(high)", EngineKind::kTimestampOrdering, EpsilonLevel::kHigh},
      {"2PL-SR", EngineKind::kTwoPhaseLocking, EpsilonLevel::kZero},
      {"2PL-ESR(high)", EngineKind::kTwoPhaseLocking, EpsilonLevel::kHigh},
      {"MVTO", EngineKind::kMultiversion, EpsilonLevel::kHigh},
  };

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "compare_cc_protocols");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (int mpl : kMpls) {
    for (const Config& config : configs) {
      auto opt = BaseOptions(config.level, mpl, scale);
      opt.server.engine = config.engine;
      sweep.Add(opt);
    }
  }
  sweep.Run();

  std::printf("Throughput (tps):\n");
  Table tput({"mpl", "TO-SR", "TO-ESR(high)", "2PL-SR", "2PL-ESR(high)",
              "MVTO"});
  Table aborts({"mpl", "TO-SR", "TO-ESR(high)", "2PL-SR", "2PL-ESR(high)",
                "MVTO"});
  Table inconsistent({"mpl", "TO-ESR(high)", "2PL-ESR(high)", "MVTO"});
  size_t point = 0;
  for (int mpl : kMpls) {
    std::vector<std::string> tput_row{std::to_string(mpl)};
    std::vector<std::string> abort_row{std::to_string(mpl)};
    std::vector<std::string> incons_row{std::to_string(mpl)};
    for (const Config& config : configs) {
      const AveragedResult& r = sweep.Result(point++);
      tput_row.push_back(Table::NumCi(r.throughput, r.ci90_rel));
      abort_row.push_back(Table::Int(r.aborts));
      if (config.level == EpsilonLevel::kHigh) {
        incons_row.push_back(Table::Int(r.inconsistent_ops));
      }
    }
    tput.AddRow(tput_row);
    aborts.AddRow(abort_row);
    inconsistent.AddRow(incons_row);
  }
  tput.Print();
  std::printf("\nAborts (retries):\n");
  aborts.Print();
  std::printf("\nSuccessful inconsistent operations (MVTO is always 0 — "
              "snapshot reads are consistent):\n");
  inconsistent.Print();
  std::printf(
      "\nReading: ESR helps 2PL exactly as it helps TO (queries stop "
      "blocking/aborting);\nMVTO gets query survival for free but pays in "
      "version storage and stale answers,\nand its updates still abort on "
      "reads-from-the-future (late writes).\n");
  return 0;
}
