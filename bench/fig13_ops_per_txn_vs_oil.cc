// Figure 13: Average number of operations executed per completed
// transaction vs OIL (OEL swept together with it, as in the paper's
// prototype), with TIL at each of three levels; MPL fixed at 4. Includes
// the operations of aborted attempts (wasted work). Paper shape: at high
// TIL the count decreases monotonically as OIL loosens; at low TIL "the
// effect of TIL slowly creeps in as OIL increases" and past a point the
// count rises again — high-inconsistency operations admitted by a loose
// OIL inflate the transaction's total import until the TIL aborts it
// late, after more operations were executed and wasted. The effect
// concentrates in query ETs, so both the all-transaction and the
// query-only counts are reported; in our calibration the low-TIL query
// curve flattens and crosses above the high-TIL curves (see
// EXPERIMENTS.md).

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr int kMpl = 4;
constexpr double kOilInW[] = {0.5, 1, 2, 3, 4, 6, 8, 12};
constexpr double kTilLevels[] = {10'000, 50'000, 100'000};

esr::ClusterOptions PointOptions(double oil_w, double til,
                                 const RunScale& scale) {
  auto opt = BaseOptions(til, /*tel=*/10'000, kMpl, scale);
  const double w = opt.workload.MeanWriteDelta();
  opt.server.store.min_oil = oil_w * w;
  opt.server.store.max_oil = oil_w * w;
  opt.server.store.min_oel = oil_w * w;
  opt.server.store.max_oel = oil_w * w;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader(
      "Figure 13: Avg operations per completed txn vs OIL (TIL varies), "
      "MPL = 4",
      "decreases with OIL at high TIL; at low TIL it rises again past an "
      "intermediate OIL (late TIL aborts waste more ops per transaction)",
      scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig13_ops_per_txn_vs_oil");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (const double oil_w : kOilInW) {
    for (const double til : kTilLevels) {
      sweep.Add(PointOptions(oil_w, til, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig13_ops_per_txn_vs_oil", sweep.scale());
  Table all({"OIL(w)", "TIL=10000(low)", "TIL=50000(med)",
             "TIL=100000(high)"});
  Table queries({"OIL(w)", "TIL=10000(low)", "TIL=50000(med)",
                 "TIL=100000(high)"});
  size_t point = 0;
  for (const double oil_w : kOilInW) {
    std::vector<std::string> all_row{Table::Num(oil_w, 1)};
    std::vector<std::string> query_row{Table::Num(oil_w, 1)};
    for (const double til : kTilLevels) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint("til=" + Table::Int(til), oil_w, r);
      all_row.push_back(Table::Num(r.ops_per_committed_txn));
      query_row.push_back(Table::Num(r.query_ops_per_committed_query));
    }
    all.AddRow(all_row);
    queries.AddRow(query_row);
  }
  std::printf("All transactions:\n");
  all.Print();
  std::printf("\nQuery ETs only (ops per committed query, where the "
              "TIL-driven waste concentrates):\n");
  queries.Print();
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  return 0;
}
