// Sensitivity study: the paper closes by noting that "the actual
// quantitative performance improvement in an application environment
// would depend upon the nature of the applications, the typical conflict
// ratio in those environments etc." (Sec. 8). This bench quantifies that
// dependence: the ESR(high)/SR throughput ratio at MPL 6 as the conflict
// ratio is dialed through the hot-set size and the query share of the
// mix.

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::EpsilonLevel;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr int kMpl = 6;
constexpr EpsilonLevel kLevels[] = {EpsilonLevel::kZero, EpsilonLevel::kHigh};

esr::ClusterOptions PointOptions(size_t hot_set, double query_fraction,
                                 EpsilonLevel level, const RunScale& scale) {
  auto opt = BaseOptions(level, kMpl, scale);
  opt.workload.hot_set_size = hot_set;
  opt.workload.query_fraction = query_fraction;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader(
      "Sensitivity: ESR(high)/SR throughput ratio vs conflict ratio, "
      "MPL = 6",
      "Sec. 8's closing caveat — the ESR win grows with the conflict "
      "ratio (smaller hot set, more queries)",
      scale);

  const size_t hot_sets[] = {10, 20, 40, 100, 400};
  const double query_fractions[] = {0.3, 0.6, 0.8};

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  for (const size_t hot : hot_sets) {
    for (const double fraction : query_fractions) {
      for (const EpsilonLevel level : kLevels) {
        sweep.Add(PointOptions(hot, fraction, level, scale));
      }
    }
  }
  sweep.Run();

  Table table({"hot set", "queries=30%", "queries=60%", "queries=80%"});
  size_t point = 0;
  for (const size_t hot : hot_sets) {
    std::vector<std::string> row{std::to_string(hot)};
    for (const double fraction : query_fractions) {
      (void)fraction;
      const double sr = sweep.Result(point++).throughput;
      const double esr_high = sweep.Result(point++).throughput;
      const double speedup = sr > 0 ? esr_high / sr : 0.0;
      row.push_back(Table::Num(speedup) + "x");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nThe paper's configuration is hot set 20 / queries 60%%. At a "
      "400-object hot set the\nconflict ratio is low and ESR's advantage "
      "shrinks toward 1x, exactly as Sec. 8 predicts.\n");
  return 0;
}
