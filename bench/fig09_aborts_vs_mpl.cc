// Figure 9: Number of Aborts (retries) vs Multiprogramming Level. Every
// abort is resubmitted by its client, so aborts == retries. Expected
// shape: almost zero at high bounds, shooting up at lower bounds, highest
// for zero epsilon (SR).

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::EpsilonLevel;
using esr::EpsilonLevelToString;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr EpsilonLevel kLevels[] = {EpsilonLevel::kZero, EpsilonLevel::kLow,
                                    EpsilonLevel::kMedium,
                                    EpsilonLevel::kHigh};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 9: Number of Aborts vs MPL",
              "aborts at high bounds are almost zero; at low bounds they "
              "shoot up rapidly; zero epsilon (SR) is very high",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig09_aborts_vs_mpl");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (int mpl = 1; mpl <= 10; ++mpl) {
    for (EpsilonLevel level : kLevels) {
      sweep.Add(BaseOptions(level, mpl, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig09_aborts_vs_mpl", sweep.scale());
  Table table({"mpl", "zero(SR)", "low", "medium", "high"});
  size_t point = 0;
  for (int mpl = 1; mpl <= 10; ++mpl) {
    std::vector<std::string> row{std::to_string(mpl)};
    for (EpsilonLevel level : kLevels) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint(std::string(EpsilonLevelToString(level)), mpl, r);
      row.push_back(Table::Int(r.aborts));
    }
    table.AddRow(row);
  }
  table.Print();
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  return 0;
}
