// Ablation: the export-inconsistency combination rule. The paper charges
// a late write the MAXIMUM inconsistency it exports to any concurrent
// query reader (Sec. 5.2), arguing that the sum-over-readers rule of Wu
// et al. [21] overestimates the accumulated error. This bench runs the
// same contended workload under both rules (and both reader scopes) and
// reports throughput and abort counts.

#include <benchmark/benchmark.h>

#include "esr/limits.h"
#include "sim/cluster.h"

namespace esr {
namespace {

void RunRule(benchmark::State& state, ExportCombine combine,
             ExportScope scope) {
  double throughput = 0, aborts = 0, tel_aborts = 0, runs = 0;
  for (auto _ : state) {
    ClusterOptions opt;
    opt.mpl = 6;
    // Low TEL makes the export rule the binding constraint.
    opt.workload.til = 100'000;
    opt.workload.tel = 1'000;
    opt.server.divergence.export_combine = combine;
    opt.server.divergence.export_scope = scope;
    opt.warmup_s = 2.0;
    opt.measure_s = 15.0;
    opt.seed = 99 + runs;
    Cluster cluster(opt);
    const SimResult r = cluster.Run();
    throughput += r.throughput();
    aborts += static_cast<double>(r.aborts);
    tel_aborts += static_cast<double>(
        cluster.server().metrics().CounterValue("abort.transaction_bound"));
    runs += 1;
  }
  state.counters["tput"] = throughput / runs;
  state.counters["aborts"] = aborts / runs;
  state.counters["tel_aborts"] = tel_aborts / runs;
}

void BM_ExportMaxAllReaders(benchmark::State& state) {
  RunRule(state, ExportCombine::kMax, ExportScope::kAllReaders);
}
BENCHMARK(BM_ExportMaxAllReaders)->Unit(benchmark::kMillisecond);

void BM_ExportSumAllReaders(benchmark::State& state) {
  RunRule(state, ExportCombine::kSum, ExportScope::kAllReaders);
}
BENCHMARK(BM_ExportSumAllReaders)->Unit(benchmark::kMillisecond);

void BM_ExportMaxNewerReaders(benchmark::State& state) {
  RunRule(state, ExportCombine::kMax, ExportScope::kNewerReaders);
}
BENCHMARK(BM_ExportMaxNewerReaders)->Unit(benchmark::kMillisecond);

void BM_ExportSumNewerReaders(benchmark::State& state) {
  RunRule(state, ExportCombine::kSum, ExportScope::kNewerReaders);
}
BENCHMARK(BM_ExportSumNewerReaders)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace esr

BENCHMARK_MAIN();
