// Microbenchmarks of the engine's core primitives: object access, proper
// value lookup, the timestamp-ordering decision, hierarchical charge, and
// a full transaction round trip through the transaction manager.

#include <benchmark/benchmark.h>

#include "cc/to_policy.h"
#include "common/random.h"
#include "hierarchy/accumulator.h"
#include "storage/object_store.h"
#include "txn/transaction_manager.h"

namespace esr {
namespace {

ObjectStoreOptions StoreOpt() {
  ObjectStoreOptions opt;
  opt.num_objects = 1000;
  opt.seed = 1;
  return opt;
}

void BM_ObjectStoreRead(benchmark::State& state) {
  ObjectStore store(StoreOpt());
  Rng rng(7);
  for (auto _ : state) {
    const ObjectId id = static_cast<ObjectId>(rng.UniformInt(0, 999));
    benchmark::DoNotOptimize(store.Get(id).value());
  }
}
BENCHMARK(BM_ObjectStoreRead);

void BM_HistoryRecordAndLookup(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  WriteHistory history(depth);
  int64_t t = 0;
  Rng rng(7);
  for (auto _ : state) {
    history.Record(Timestamp{++t, 0}, rng.UniformInt(1000, 9999));
    benchmark::DoNotOptimize(
        history.ProperValueBefore(Timestamp{t - rng.UniformInt(0, 30), 0}));
  }
}
BENCHMARK(BM_HistoryRecordAndLookup)->Arg(5)->Arg(20)->Arg(64);

void BM_DecideRead(benchmark::State& state) {
  ObjectRecord obj(1, 1000, 20);
  obj.ApplyWrite(9, Timestamp{50, 0}, 1100);
  obj.CommitWrite(9);
  const TxnView query{2, TxnType::kQuery, Timestamp{20, 0}, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideRead(query, obj));
  }
}
BENCHMARK(BM_DecideRead);

void BM_DecideWrite(benchmark::State& state) {
  ObjectRecord obj(1, 1000, 20);
  obj.NoteQueryRead(Timestamp{50, 0});
  const TxnView update{2, TxnType::kUpdate, Timestamp{20, 0}, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideWrite(update, obj));
  }
}
BENCHMARK(BM_DecideWrite);

void BM_AccumulatorCharge(benchmark::State& state) {
  GroupSchema schema;
  const GroupId g = *schema.AddGroup("g", kRootGroup);
  for (ObjectId id = 0; id < 100; ++id) {
    (void)schema.AssignObject(id, g);
  }
  InconsistencyAccumulator acc(&schema,
                               BoundSpec::TransactionOnly(kUnbounded));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acc.TryCharge(static_cast<ObjectId>(rng.UniformInt(0, 99)), 1.0));
  }
}
BENCHMARK(BM_AccumulatorCharge);

void BM_FullQueryTransaction(benchmark::State& state) {
  ObjectStore store(StoreOpt());
  GroupSchema schema;
  MetricRegistry metrics;
  TransactionManager manager(&store, &schema, &metrics);
  TimestampGenerator ts_gen(1);
  int64_t clock = 0;
  Rng rng(7);
  const int64_t reads = state.range(0);
  for (auto _ : state) {
    const TxnId txn = manager.Begin(TxnType::kQuery, ts_gen.Next(++clock),
                                    BoundSpec::TransactionOnly(100000));
    for (int64_t i = 0; i < reads; ++i) {
      benchmark::DoNotOptimize(
          manager.Read(txn, static_cast<ObjectId>(rng.UniformInt(0, 999))));
    }
    benchmark::DoNotOptimize(manager.Commit(txn));
  }
  state.SetItemsProcessed(state.iterations() * (reads + 2));
}
BENCHMARK(BM_FullQueryTransaction)->Arg(8)->Arg(20);

void BM_FullUpdateTransaction(benchmark::State& state) {
  ObjectStore store(StoreOpt());
  GroupSchema schema;
  MetricRegistry metrics;
  TransactionManager manager(&store, &schema, &metrics);
  TimestampGenerator ts_gen(1);
  int64_t clock = 0;
  Rng rng(7);
  for (auto _ : state) {
    const TxnId txn = manager.Begin(TxnType::kUpdate, ts_gen.Next(++clock),
                                    BoundSpec::TransactionOnly(10000));
    const ObjectId a = static_cast<ObjectId>(rng.UniformInt(0, 999));
    const ObjectId b = static_cast<ObjectId>(rng.UniformInt(0, 999));
    const OpResult r = manager.Read(txn, a);
    if (r.ok()) {
      (void)manager.Write(txn, b, r.value + 100);
    }
    if (manager.IsActive(txn)) {
      benchmark::DoNotOptimize(manager.Commit(txn));
    }
  }
}
BENCHMARK(BM_FullUpdateTransaction);

}  // namespace
}  // namespace esr

BENCHMARK_MAIN();
