// Microbenchmark of esr::FlatMap against std::unordered_map on the
// commit-path access shapes it replaced (PR 8): the per-transaction
// charge/observation maps (tiny, build-lookup-clear churn) and the lock
// table (long-lived, mixed insert/find/erase). Reported as min-of-N
// ops/sec so the numbers are stable on shared machines, and emitted as a
// JsonReport so `--registry <dir>` records them for cross-run trends
// (tools/esr_bench_report), like every figure harness.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "harness/harness.h"

namespace {

using esr::FlatMap;
using esr::ObjectId;
using esr::bench::AveragedResult;
using esr::bench::JsonReport;
using esr::bench::MaybeAppendToRegistry;
using esr::bench::RunScale;
using esr::bench::Table;

/// Min-of-`reps` wall-clock of `kernel()` (which performs `ops`
/// operations per call), returned as ops/sec. The kernel runs once
/// untimed to warm caches and the allocator.
template <typename Kernel>
double MinOfN(int reps, double ops, Kernel&& kernel) {
  kernel();
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    kernel();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best_s = std::min(best_s, elapsed.count());
  }
  return ops / best_s;
}

/// Uniform surface over FlatMap's PascalCase API and the standard
/// containers, so both sides of the comparison run the same kernel code.
struct FlatShim {
  FlatMap<ObjectId, double> map;
  void Reserve(size_t n) { map.Reserve(n); }
  double& At(ObjectId id) { return map[id]; }
  double* Find(ObjectId id) { return map.Find(id); }
  void Erase(ObjectId id) { map.Erase(id); }
  void Clear() { map.Clear(); }
};

struct StdShim {
  std::unordered_map<ObjectId, double> map;
  void Reserve(size_t n) { map.reserve(n); }
  double& At(ObjectId id) { return map[id]; }
  double* Find(ObjectId id) {
    auto it = map.find(id);
    return it == map.end() ? nullptr : &it->second;
  }
  void Erase(ObjectId id) { map.erase(id); }
  void Clear() { map.clear(); }
};

/// A transaction's life: build a map of `size` charges, look each up
/// twice (the observe-then-charge pattern), then drop the whole map.
template <typename Map>
uint64_t TxnChurnOnce(int size, int rounds) {
  uint64_t sink = 0;
  Map map;
  map.Reserve(static_cast<size_t>(size));
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < size; ++i) {
      const ObjectId id = static_cast<ObjectId>((i * 7919 + r) % 1000);
      map.At(id) += 1.0;
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < size; ++i) {
        const ObjectId id = static_cast<ObjectId>((i * 7919 + r) % 1000);
        const double* v = map.Find(id);
        if (v != nullptr) sink += static_cast<uint64_t>(*v);
      }
    }
    map.Clear();
  }
  return sink;
}

/// The lock table's life: a long-lived map with interleaved insert,
/// lookup, and erase (grant, re-check, release). The `live` keys are
/// *contiguous*, which at larger sizes is deliberately adversarial for
/// FlatMap's identity-hash placement: backward-shift erase scans the
/// whole dense probe cluster. The simulator never holds that many
/// adjacent keys live at once (see the FlatMap probing contract in
/// common/flat_map.h); the row documents the cliff, not a hot path.
template <typename Map>
uint64_t LockTableOnce(int live, int rounds) {
  uint64_t sink = 0;
  Map map;
  map.Reserve(static_cast<size_t>(live) * 2);
  for (int i = 0; i < live; ++i) {
    map.At(static_cast<ObjectId>(i)) = 1.0;
  }
  for (int r = 0; r < rounds; ++r) {
    const ObjectId evict = static_cast<ObjectId>(r % live);
    const ObjectId enter = static_cast<ObjectId>(live + r);
    map.Erase(evict);
    map.At(enter) = 1.0;
    for (int probe = 0; probe < 8; ++probe) {
      const ObjectId id = static_cast<ObjectId>((r * 31 + probe * 131) %
                                                (live + r + 1));
      const double* v = map.Find(id);
      if (v != nullptr) sink += static_cast<uint64_t>(*v);
    }
    map.Erase(enter);
    map.At(evict) = 1.0;
  }
  return sink;
}

AveragedResult Point(double ops_per_sec) {
  AveragedResult result;
  result.throughput = ops_per_sec;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const RunScale scale = RunScale::FromEnv();
  const bool full = scale.preset == "full";
  const int reps = full ? 12 : 5;
  const int churn_rounds = full ? 200'000 : 50'000;
  const int lock_rounds = full ? 2'000'000 : 500'000;
  std::printf(
      "=== micro_flat_map: FlatMap vs std::unordered_map on commit-path "
      "shapes (min of %d reps) ===\n\n",
      reps);

  using Flat = FlatShim;
  using Std = StdShim;
  uint64_t sink = 0;

  JsonReport report("micro_flat_map", scale);
  Table table({"kernel", "size", "flat (Mops/s)", "unordered (Mops/s)",
               "ratio"});

  for (const int size : {8, 32}) {
    // ops per call: size inserts + 2*size lookups per round.
    const double ops = static_cast<double>(churn_rounds) * size * 3;
    const double flat = MinOfN(reps, ops, [&] {
      sink += TxnChurnOnce<Flat>(size, churn_rounds);
    });
    const double std_map = MinOfN(reps, ops, [&] {
      sink += TxnChurnOnce<Std>(size, churn_rounds);
    });
    table.AddRow({"txn-churn", Table::Int(size), Table::Num(flat / 1e6),
                  Table::Num(std_map / 1e6), Table::Num(flat / std_map)});
    report.AddPoint("txn_churn_flat", size, Point(flat));
    report.AddPoint("txn_churn_unordered", size, Point(std_map));
  }

  for (const int live : {64, 512}) {
    // ops per call: 2 erases + 2 inserts + 8 probes per round.
    const double ops = static_cast<double>(lock_rounds) * 12;
    const double flat = MinOfN(reps, ops, [&] {
      sink += LockTableOnce<Flat>(live, lock_rounds);
    });
    const double std_map = MinOfN(reps, ops, [&] {
      sink += LockTableOnce<Std>(live, lock_rounds);
    });
    table.AddRow({live > 64 ? "lock-dense!" : "lock-table",
                  Table::Int(live), Table::Num(flat / 1e6),
                  Table::Num(std_map / 1e6), Table::Num(flat / std_map)});
    report.AddPoint("lock_table_flat", live, Point(flat));
    report.AddPoint("lock_table_unordered", live, Point(std_map));
  }

  table.Print();
  std::printf(
      "\nlock-dense! keeps hundreds of *contiguous* keys live — an\n"
      "adversarial shape for identity-hash backward-shift erase that the\n"
      "simulator's bounded live sets never reach (common/flat_map.h).\n");
  if (sink == 0) std::printf("(impossible sink)\n");

  const std::string json_path = JsonReport::PathFromArgs(argc, argv);
  const esr::Status json_status = report.WriteToFile(json_path);
  if (!json_status.ok()) {
    std::fprintf(stderr, "json export failed: %s\n",
                 json_status.ToString().c_str());
    return 1;
  }
  const esr::Status reg_status =
      MaybeAppendToRegistry(argc, argv, report, /*jobs=*/1);
  if (!reg_status.ok()) {
    std::fprintf(stderr, "registry append failed: %s\n",
                 reg_status.ToString().c_str());
    return 1;
  }
  return 0;
}
