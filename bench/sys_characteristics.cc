// Sec. 6 substrate calibration: the prototype measured a null RPC of
// ~11 ms, an average op RPC of 17-20 ms, and 50-60 tps at ~10 ops/txn
// under a LOW-conflict load at MPL 10. This harness measures the same
// numbers on the simulated substrate. The RPC latencies match the paper
// by construction; the absolute transaction rate is lower because our
// simulated server is a single FIFO CPU (~3.5 ms/op) — the knob that
// produces the paper's thrashing within MPL <= 10 — and we report it so
// the calibration difference is explicit rather than hidden.

#include "harness/harness.h"

#include <cstdio>

#include "sim/latency_model.h"

namespace {

using esr::LatencyModel;
using esr::LatencyModelOptions;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::RunAveraged;
using esr::bench::RunScale;
using esr::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  std::printf("=== Sec. 6: Prototype system characteristics ===\n\n");

  // RPC latency model.
  LatencyModelOptions lat_opt;
  LatencyModel model(lat_opt, 1);
  double null_sum = 0, op_sum = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    null_sum += static_cast<double>(model.SampleControlRpc()) / 1000.0;
    op_sum += static_cast<double>(model.SampleOpRpc()) / 1000.0 +
              lat_opt.server_cpu_per_op_ms;
  }
  Table rpc({"Metric", "Paper", "Simulated"});
  rpc.AddRow({"null RPC (ms)", "~11", Table::Num(null_sum / kSamples, 1)});
  rpc.AddRow({"avg op RPC incl. server (ms)", "17-20",
              Table::Num(op_sum / kSamples, 1)});
  rpc.Print();

  // Low-conflict baseline throughput at MPL 10, ~10 ops per transaction.
  auto opt = BaseOptions(/*til=*/100'000, /*tel=*/10'000, /*mpl=*/10, scale);
  opt.workload.query_ops_min = 9;
  opt.workload.query_ops_max = 11;
  opt.workload.update_ops_min = 9;
  opt.workload.update_ops_max = 11;
  // Low conflict: spread accesses over the whole database.
  opt.workload.query_hot_prob = 0.02;
  opt.workload.update_read_hot_prob = 0.02;
  opt.workload.update_write_hot_prob = 0.02;
  opt.lanes = LanesFromArgs(argc, argv);
  const auto result = RunAveraged(opt, scale, JobsFromArgs(argc, argv));

  std::printf("\nLow-conflict baseline (MPL 10, ~10 ops/txn):\n");
  std::printf("  paper     : 50-60 tps (multithreaded server, ops overlap)\n");
  std::printf("  simulated : %.1f tps (%.1f ops/txn, %.0f aborts, "
              "latency %.0f ms)\n",
              result.throughput, result.ops_per_committed_txn,
              result.aborts, result.avg_txn_latency_ms);
  std::printf(
      "  note      : the simulated server serializes ops on one "
      "%.1f ms/op CPU,\n"
      "              capping it near %.0f ops/s; see EXPERIMENTS.md for "
      "why this\n"
      "              calibration was chosen.\n",
      lat_opt.server_cpu_per_op_ms, 1000.0 / lat_opt.server_cpu_per_op_ms);
  return 0;
}
