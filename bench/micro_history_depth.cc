// Ablation: sensitivity to the per-object write-history depth. The paper
// keeps the last 20 writes per object ("20 is an empirical figure derived
// by dividing the measured values of the average duration of query ETs by
// that of update ETs", Sec. 5.1). Too shallow a history makes long
// queries abort with history-exhausted; deeper histories cost memory and
// lookup time. Each benchmark iteration runs a short simulated cluster
// and reports the abort/throughput consequences as counters.

#include <benchmark/benchmark.h>

#include "esr/limits.h"
#include "sim/cluster.h"

namespace esr {
namespace {

void BM_ClusterAtHistoryDepth(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  double throughput = 0, hist_aborts = 0, aborts = 0, runs = 0;
  for (auto _ : state) {
    ClusterOptions opt;
    opt.mpl = 6;
    const TransactionLimits limits = LimitsForLevel(EpsilonLevel::kHigh);
    opt.workload.til = limits.til;
    opt.workload.tel = limits.tel;
    opt.server.store.history_depth = depth;
    opt.warmup_s = 2.0;
    opt.measure_s = 15.0;
    opt.seed = 1234 + runs;
    Cluster cluster(opt);
    const SimResult r = cluster.Run();
    throughput += r.throughput();
    aborts += static_cast<double>(r.aborts);
    hist_aborts += static_cast<double>(
        cluster.server().metrics().CounterValue("abort.history_exhausted"));
    runs += 1;
  }
  state.counters["tput"] = throughput / runs;
  state.counters["aborts"] = aborts / runs;
  state.counters["hist_aborts"] = hist_aborts / runs;
}
BENCHMARK(BM_ClusterAtHistoryDepth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(20)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace esr

BENCHMARK_MAIN();
