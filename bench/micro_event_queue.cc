// Microbenchmark of the DES kernel: the shipped slab/SBO EventQueue
// against an in-file reimplementation of the previous kernel (a
// std::priority_queue of heap-allocating std::function events). The
// workload is the simulator's hot loop — schedule-one-run-one at a steady
// queue depth — at several depths, plus an oversized-capture variant that
// forces the slab's out-of-line path. Counters report events/sec, so the
// two kernels are directly comparable; see bench/baseline/SPEED.md for
// recorded ratios.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace esr {
namespace {

// The pre-slab kernel, verbatim in structure: every ScheduleAt allocates
// a std::function control block, and the priority_queue moves whole
// events during sift operations.
class LegacyEventQueue {
 public:
  SimTime now() const { return now_; }

  void ScheduleAt(SimTime at, std::function<void()> fn) {
    events_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
  }

  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  bool RunOne() {
    if (events_.empty()) return false;
    Event event = events_.top();
    events_.pop();
    now_ = event.at;
    ++executed_;
    event.fn();
    return true;
  }

  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

// Steady-state schedule/run churn at a fixed queue depth: pre-fill the
// queue, then each iteration runs the earliest event, whose callback
// reschedules itself — the exact shape of a simulator client loop. The
// capture (a pointer and a counter) fits any small-buffer optimization.
template <typename Queue>
void SteadyChurn(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Queue q;
  uint64_t ticks = 0;
  std::function<void(SimTime)> arm = [&](SimTime at) {
    q.ScheduleAt(at, [&q, &ticks, &arm] {
      ++ticks;
      arm(q.now() + 10);
    });
  };
  for (int i = 0; i < depth; ++i) arm(i);
  for (auto _ : state) {
    q.RunOne();
  }
  benchmark::DoNotOptimize(ticks);
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_LegacyKernelChurn(benchmark::State& state) {
  SteadyChurn<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyKernelChurn)->Arg(1)->Arg(64)->Arg(4096);

void BM_SlabKernelChurn(benchmark::State& state) {
  SteadyChurn<EventQueue>(state);
}
BENCHMARK(BM_SlabKernelChurn)->Arg(1)->Arg(64)->Arg(4096);

// Oversized captures (larger than the 64-byte inline slot) exercise the
// slab's retained-heap-block path vs std::function's fresh allocation.
struct FatPayload {
  uint64_t data[24] = {};
};

template <typename Queue>
void OversizeChurn(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Queue q;
  uint64_t sum = 0;
  FatPayload payload;
  payload.data[0] = 1;
  std::function<void(SimTime)> arm = [&](SimTime at) {
    q.ScheduleAt(at, [&q, &sum, &arm, payload] {
      sum += payload.data[0];
      arm(q.now() + 10);
    });
  };
  for (int i = 0; i < depth; ++i) arm(i);
  for (auto _ : state) {
    q.RunOne();
  }
  benchmark::DoNotOptimize(sum);
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_LegacyKernelOversize(benchmark::State& state) {
  OversizeChurn<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyKernelOversize)->Arg(64);

void BM_SlabKernelOversize(benchmark::State& state) {
  OversizeChurn<EventQueue>(state);
}
BENCHMARK(BM_SlabKernelOversize)->Arg(64);

// Bulk fill-then-drain, the shape of warmup scheduling bursts.
template <typename Queue>
void FillDrain(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  uint64_t ticks = 0;
  for (auto _ : state) {
    Queue q;
    for (int i = 0; i < count; ++i) {
      q.ScheduleAt((i * 7919) % 97, [&ticks] { ++ticks; });
    }
    while (q.RunOne()) {
    }
  }
  benchmark::DoNotOptimize(ticks);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * count,
      benchmark::Counter::kIsRate);
}

void BM_LegacyKernelFillDrain(benchmark::State& state) {
  FillDrain<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyKernelFillDrain)->Arg(4096);

void BM_SlabKernelFillDrain(benchmark::State& state) {
  FillDrain<EventQueue>(state);
}
BENCHMARK(BM_SlabKernelFillDrain)->Arg(4096);

}  // namespace
}  // namespace esr

BENCHMARK_MAIN();
