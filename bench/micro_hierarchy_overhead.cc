// Ablation: the cost of hierarchical inconsistency control. The paper
// notes that "hierarchical specification and control does not come free
// of charge and a small price is to be paid" (Sec. 3.1); this bench
// measures that price — the per-operation charge cost and the end-to-end
// transaction cost as a function of the hierarchy depth.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "hierarchy/accumulator.h"
#include "storage/object_store.h"
#include "txn/transaction_manager.h"

namespace esr {
namespace {

// Builds a schema where every object sits under a chain of `depth - 1`
// groups below the root (depth == 1 means objects directly at the root,
// i.e. the flat two-level system of the paper's prototype).
GroupSchema MakeChainSchema(int depth, size_t num_objects) {
  GroupSchema schema;
  GroupId parent = kRootGroup;
  for (int level = 1; level < depth; ++level) {
    parent = *schema.AddGroup("level" + std::to_string(level), parent);
  }
  for (ObjectId id = 0; id < num_objects; ++id) {
    (void)schema.AssignObject(id, parent);
  }
  return schema;
}

void BM_ChargeAtDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  GroupSchema schema = MakeChainSchema(depth, 100);
  BoundSpec bounds;
  bounds.SetTransactionLimit(kUnbounded);
  InconsistencyAccumulator acc(&schema, bounds);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acc.TryCharge(static_cast<ObjectId>(rng.UniformInt(0, 99)), 1.0));
  }
}
BENCHMARK(BM_ChargeAtDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8);

void BM_InconsistentReadAtDepth(benchmark::State& state) {
  // End-to-end: an ESR query read that goes through the full relaxation
  // path (proper-value lookup + object check + hierarchical charge),
  // against a store whose every object is stale relative to the query.
  const int depth = static_cast<int>(state.range(0));
  ObjectStoreOptions store_opt;
  store_opt.num_objects = 100;
  store_opt.seed = 1;
  ObjectStore store(store_opt);
  GroupSchema schema = MakeChainSchema(depth, 100);
  MetricRegistry metrics;
  TransactionManager manager(&store, &schema, &metrics);
  TimestampGenerator ts_gen(1);
  int64_t clock = 1'000'000;

  // Give every object a committed write at ts 500k so queries below that
  // are late (relaxation case 1).
  for (ObjectId id = 0; id < 100; ++id) {
    const TxnId u = manager.Begin(TxnType::kUpdate, Timestamp{500'000, 9},
                                  BoundSpec());
    (void)manager.Write(u, id, 5000 + id);
    (void)manager.Commit(u);
  }

  Rng rng(7);
  for (auto _ : state) {
    const TxnId q = manager.Begin(TxnType::kQuery, Timestamp{400'000, 1},
                                  BoundSpec::TransactionOnly(kUnbounded));
    for (int i = 0; i < 8; ++i) {
      benchmark::DoNotOptimize(
          manager.Read(q, static_cast<ObjectId>(rng.UniformInt(0, 99))));
    }
    (void)manager.Commit(q);
    ++clock;
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_InconsistentReadAtDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace esr

BENCHMARK_MAIN();
