// Replication extension (the paper's stated future work: "evaluate ESR in
// the case of a distributed system with data replication"). A primary
// runs the paper's update stream while read-only replicas lag by a
// propagation delay; replica queries carry an import budget checked
// against the conservative divergence estimate (sum of unapplied write
// weights). The table shows the freshness/availability trade-off: longer
// lags mean more rejected bounded queries and more staleness absorbed by
// the admitted ones.

#include "harness/harness.h"

#include <cstdio>

#include "common/random.h"
#include "replication/replicated_database.h"
#include "workload/generator.h"

namespace {

using esr::BoundSpec;
using esr::Inconsistency;
using esr::kMicrosPerMilli;
using esr::ObjectId;
using esr::OpResult;
using esr::ReplicatedDatabase;
using esr::ReplicationOptions;
using esr::Rng;
using esr::ScriptOp;
using esr::ServerOptions;
using esr::SimTime;
using esr::Timestamp;
using esr::TxnId;
using esr::TxnScript;
using esr::TxnType;
using esr::WorkloadGenerator;
using esr::WorkloadSpec;
using esr::bench::Table;

struct Outcome {
  double admitted_fraction = 0.0;
  double avg_true_staleness = 0.0;
  double avg_estimate = 0.0;
};

Outcome RunOnce(double delay_ms, Inconsistency til, uint64_t seed) {
  ReplicationOptions replication;
  replication.num_replicas = 2;
  replication.propagation_delay_ms = delay_ms;
  ServerOptions server;
  server.store.num_objects = 1000;
  ReplicatedDatabase db(replication, server);

  WorkloadSpec spec;
  WorkloadGenerator generator(spec, seed);
  Rng rng(seed ^ 0xabcd);
  SimTime now = 0;
  int64_t ts_counter = 1;

  int admitted = 0, attempted = 0;
  double staleness = 0, estimates = 0;

  for (int round = 0; round < 400; ++round) {
    // One primary update ET (committed immediately; the primary itself is
    // exercised end-to-end in the main benches).
    const TxnScript update = generator.NextUpdate();
    const TxnId txn = db.Begin(TxnType::kUpdate,
                               Timestamp{ts_counter++, 1}, update.bounds);
    std::vector<esr::Value> reads;
    bool aborted = false;
    for (const ScriptOp& op : update.ops) {
      OpResult r;
      if (op.kind == ScriptOp::Kind::kRead) {
        r = db.Read(txn, op.object);
        if (r.ok()) reads.push_back(r.value);
      } else {
        r = db.Write(txn, op.object,
                     esr::ApplyDeltaReflecting(
                         reads[static_cast<size_t>(op.source_read)],
                         op.delta, spec.min_value, spec.max_value));
      }
      if (!r.ok()) {
        aborted = true;
        break;
      }
    }
    if (!aborted) (void)db.Commit(txn, now);
    else if (db.primary().engine().IsActive(txn)) (void)db.Abort(txn);

    // Time advances ~ one update per 150 ms of virtual time.
    now += 150 * kMicrosPerMilli;
    db.AdvanceTo(now);

    // A bounded replica sum query over part of the hot set.
    std::vector<ObjectId> objects;
    for (ObjectId id = 0; id < 10; ++id) objects.push_back(id);
    const int replica = static_cast<int>(rng.UniformInt(0, 1));
    ++attempted;
    const auto q = db.ReplicaSumQuery(replica, objects, til);
    if (q.ok()) {
      ++admitted;
      staleness += q->true_import;
      estimates += q->estimated_import;
    }
  }

  Outcome outcome;
  outcome.admitted_fraction =
      static_cast<double>(admitted) / static_cast<double>(attempted);
  if (admitted > 0) {
    outcome.avg_true_staleness = staleness / admitted;
    outcome.avg_estimate = estimates / admitted;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  std::printf(
      "=== Replication: bounded replica queries vs propagation lag ===\n");
  std::printf(
      "Extension (paper Sec. 9 future work); 10-object replica sum "
      "queries, TIL in value units.\n\n");

  const double delays[] = {0, 50, 200, 500, 2000};
  const Inconsistency tils[] = {0, 2'000, 10'000, esr::kUnbounded};
  const char* til_names[] = {"TIL=0(SR)", "TIL=2k", "TIL=10k", "TIL=inf"};

  Table admit({"delay(ms)", "TIL=0(SR)", "TIL=2k", "TIL=10k", "TIL=inf"});
  Table stale({"delay(ms)", "TIL=2k", "TIL=10k", "TIL=inf"});
  for (const double delay : delays) {
    std::vector<std::string> admit_row{Table::Int(delay)};
    std::vector<std::string> stale_row{Table::Int(delay)};
    for (size_t i = 0; i < 4; ++i) {
      const Outcome outcome = RunOnce(delay, tils[i], 7);
      admit_row.push_back(Table::Num(outcome.admitted_fraction, 2));
      if (i > 0) {
        stale_row.push_back(Table::Num(outcome.avg_true_staleness, 0));
      }
      (void)til_names;
    }
    admit.AddRow(admit_row);
    stale.AddRow(stale_row);
  }
  std::printf("Fraction of replica queries admitted:\n");
  admit.Print();
  std::printf("\nAvg TRUE staleness absorbed by admitted queries "
              "(always <= the conservative estimate <= TIL):\n");
  stale.Print();
  return 0;
}
