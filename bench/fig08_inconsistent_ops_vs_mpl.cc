// Figure 8: Successful Inconsistent Operations vs Multiprogramming Level.
// No zero-epsilon curve: SR never executes inconsistent operations.
// Expected shape: counts increase with both the inconsistency bounds and
// the MPL.

#include "harness/harness.h"

namespace {

using esr::EpsilonLevel;
using esr::bench::BaseOptions;
using esr::bench::PrintHeader;
using esr::bench::RunAveraged;
using esr::bench::RunScale;
using esr::bench::Table;

}  // namespace

int main() {
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 8: Successful Inconsistent Operations vs MPL",
              "steady increase with each bound level and with MPL",
              scale);

  Table table({"mpl", "low", "medium", "high"});
  for (int mpl = 1; mpl <= 10; ++mpl) {
    std::vector<std::string> row{std::to_string(mpl)};
    for (EpsilonLevel level : {EpsilonLevel::kLow, EpsilonLevel::kMedium,
                               EpsilonLevel::kHigh}) {
      row.push_back(Table::Int(
          RunAveraged(BaseOptions(level, mpl, scale), scale)
              .inconsistent_ops));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
