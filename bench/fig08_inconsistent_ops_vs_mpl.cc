// Figure 8: Successful Inconsistent Operations vs Multiprogramming Level.
// No zero-epsilon curve: SR never executes inconsistent operations.
// Expected shape: counts increase with both the inconsistency bounds and
// the MPL.

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::EpsilonLevel;
using esr::EpsilonLevelToString;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr EpsilonLevel kLevels[] = {EpsilonLevel::kLow,
                                    EpsilonLevel::kMedium,
                                    EpsilonLevel::kHigh};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 8: Successful Inconsistent Operations vs MPL",
              "steady increase with each bound level and with MPL",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig08_inconsistent_ops_vs_mpl");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (int mpl = 1; mpl <= 10; ++mpl) {
    for (EpsilonLevel level : kLevels) {
      sweep.Add(BaseOptions(level, mpl, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig08_inconsistent_ops_vs_mpl", sweep.scale());
  Table table({"mpl", "low", "medium", "high"});
  size_t point = 0;
  for (int mpl = 1; mpl <= 10; ++mpl) {
    std::vector<std::string> row{std::to_string(mpl)};
    for (EpsilonLevel level : kLevels) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint(std::string(EpsilonLevelToString(level)), mpl, r);
      row.push_back(Table::Int(r.inconsistent_ops));
    }
    table.AddRow(row);
  }
  table.Print();
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  return 0;
}
