// Figure 11: Throughput vs Transaction Import Limit (TIL), with TEL held
// at each of three constant levels; MPL fixed at 4. Expected shape:
// throughput increases with TIL, with the steepest slope at small-to-
// medium TIL values (most transactions need only that much slack) and a
// long flattening tail covered by the few transactions that need large
// bounds.

#include "harness/harness.h"

#include <cstdio>
#include <string>

namespace {

using esr::Inconsistency;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr int kMpl = 4;
constexpr double kTilSweep[] = {0,      2'000,  5'000,  10'000, 20'000,
                                35'000, 50'000, 75'000, 100'000};
constexpr double kTelLevels[] = {1'000, 5'000, 10'000};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 11: Throughput vs TIL (TEL varies), MPL = 4",
              "throughput rises with TIL; slope highest at small-to-medium "
              "TIL, flattening at high TIL",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig11_throughput_vs_til");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (const double til : kTilSweep) {
    for (const double tel : kTelLevels) {
      sweep.Add(BaseOptions(til, tel, kMpl, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig11_throughput_vs_til", sweep.scale());
  Table table({"TIL", "TEL=1000(low)", "TEL=5000(med)", "TEL=10000(high)"});
  size_t point = 0;
  for (const double til : kTilSweep) {
    std::vector<std::string> row{Table::Int(til)};
    for (const double tel : kTelLevels) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint("tel=" + Table::Int(tel), til, r);
      row.push_back(Table::NumCi(r.throughput, r.ci90_rel));
    }
    table.AddRow(row);
  }
  table.Print();
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  return 0;
}
