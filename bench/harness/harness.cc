#include "harness/harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace esr {
namespace bench {

RunScale RunScale::FromEnv() {
  RunScale scale;
  const char* full = std::getenv("ESR_BENCH_FULL");
  if (full != nullptr && std::strcmp(full, "0") != 0) {
    scale.warmup_s = 5.0;
    scale.measure_s = 120.0;
    scale.seeds = 7;
  }
  return scale;
}

ClusterOptions BaseOptions(Inconsistency til, Inconsistency tel, int mpl,
                           const RunScale& scale) {
  ClusterOptions opt;
  opt.mpl = mpl;
  opt.workload.til = til;
  opt.workload.tel = tel;
  opt.warmup_s = scale.warmup_s;
  opt.measure_s = scale.measure_s;
  return opt;
}

ClusterOptions BaseOptions(EpsilonLevel level, int mpl,
                           const RunScale& scale) {
  const TransactionLimits limits = LimitsForLevel(level);
  return BaseOptions(limits.til, limits.tel, mpl, scale);
}

AveragedResult RunAveraged(ClusterOptions options, const RunScale& scale) {
  AveragedResult avg;
  std::vector<double> throughputs;
  for (int seed = 1; seed <= scale.seeds; ++seed) {
    options.seed = static_cast<uint64_t>(seed) * 7919;
    const SimResult r = RunCluster(options);
    throughputs.push_back(r.throughput());
    avg.throughput += r.throughput();
    avg.committed += static_cast<double>(r.committed);
    avg.aborts += static_cast<double>(r.aborts);
    avg.ops_executed += static_cast<double>(r.ops_executed);
    avg.inconsistent_ops += static_cast<double>(r.inconsistent_ops);
    avg.waits += static_cast<double>(r.waits);
    avg.ops_per_committed_txn += r.ops_per_committed_txn();
    avg.query_ops_per_committed_query += r.query_ops_per_committed_query();
    avg.avg_import_per_query += r.avg_import_per_query();
    avg.avg_txn_latency_ms += r.avg_txn_latency_ms();
  }
  const double n = static_cast<double>(scale.seeds);
  avg.throughput /= n;
  avg.committed /= n;
  avg.aborts /= n;
  avg.ops_executed /= n;
  avg.inconsistent_ops /= n;
  avg.waits /= n;
  avg.ops_per_committed_txn /= n;
  avg.query_ops_per_committed_query /= n;
  avg.avg_import_per_query /= n;
  avg.avg_txn_latency_ms /= n;
  if (throughputs.size() > 1) {
    double m2 = 0.0;
    for (const double t : throughputs) {
      m2 += (t - avg.throughput) * (t - avg.throughput);
    }
    avg.throughput_stddev =
        std::sqrt(m2 / static_cast<double>(throughputs.size() - 1));
  }
  return avg;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v + 0.5));
  return buf;
}

void PrintHeader(const std::string& figure, const std::string& paper_claim,
                 const RunScale& scale) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Scale: %.0fs warmup + %.0fs measure, %d seeds averaged "
      "(ESR_BENCH_FULL=1 for paper-scale)\n\n",
      scale.warmup_s, scale.measure_s, scale.seeds);
}

}  // namespace bench
}  // namespace esr
