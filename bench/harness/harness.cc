#include "harness/harness.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "obs/exporter.h"
#include "obs/series.h"
#include "obs/trace.h"

namespace esr {
namespace bench {
namespace {

/// Merges `seeds` per-seed runs into one averaged point, in seed order.
/// This is the single merge path for both the serial and the parallel
/// executor, so their arithmetic — and therefore their output bytes —
/// cannot diverge.
AveragedResult MergeSeedResults(const SimResult* runs, int seeds) {
  AveragedResult avg;
  std::vector<double> throughputs;
  for (int i = 0; i < seeds; ++i) {
    const SimResult& r = runs[i];
    throughputs.push_back(r.throughput());
    avg.throughput += r.throughput();
    avg.committed += static_cast<double>(r.committed);
    avg.aborts += static_cast<double>(r.aborts);
    avg.ops_executed += static_cast<double>(r.ops_executed);
    avg.inconsistent_ops += static_cast<double>(r.inconsistent_ops);
    avg.waits += static_cast<double>(r.waits);
    avg.ops_per_committed_txn += r.ops_per_committed_txn();
    avg.query_ops_per_committed_query += r.query_ops_per_committed_query();
    avg.avg_import_per_query += r.avg_import_per_query();
    avg.avg_txn_latency_ms += r.avg_txn_latency_ms();
    avg.latency_ms.Merge(r.latency_ms);
  }
  const double n = static_cast<double>(seeds);
  avg.throughput /= n;
  avg.committed /= n;
  avg.aborts /= n;
  avg.ops_executed /= n;
  avg.inconsistent_ops /= n;
  avg.waits /= n;
  avg.ops_per_committed_txn /= n;
  avg.query_ops_per_committed_query /= n;
  avg.avg_import_per_query /= n;
  avg.avg_txn_latency_ms /= n;
  if (throughputs.size() > 1) {
    double m2 = 0.0;
    for (const double t : throughputs) {
      m2 += (t - avg.throughput) * (t - avg.throughput);
    }
    avg.throughput_stddev =
        std::sqrt(m2 / static_cast<double>(throughputs.size() - 1));
    if (avg.throughput > 0.0) {
      avg.ci90_rel = Ci90HalfWidth(throughputs) / avg.throughput;
    }
  }
  return avg;
}

/// Nominal calibration / series sampling window (virtual seconds); also
/// the unit MSER-5 truncation points are expressed in.
constexpr double kSeriesWindowS = 1.0;

}  // namespace

RunScale RunScale::FromEnv() {
  const char* full = std::getenv("ESR_BENCH_FULL");
  const ScalePreset& preset =
      (full != nullptr && std::strcmp(full, "0") != 0) ? kFullScale
                                                       : kQuickScale;
  RunScale scale;
  scale.warmup_s = preset.warmup_s;
  scale.measure_s = preset.measure_s;
  scale.seeds = preset.seeds;
  scale.preset = preset.name;
  return scale;
}

std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* env_var) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  if (env_var != nullptr) {
    const char* env = std::getenv(env_var);
    if (env != nullptr) return env;
  }
  return "";
}

int JobsFromArgs(int argc, char** argv) {
  int jobs = 0;
  const std::string value = FlagValue(argc, argv, "--jobs", "ESR_BENCH_JOBS");
  if (!value.empty()) {
    jobs = std::atoi(value.c_str());
    if (jobs < 1) {
      std::fprintf(stderr, "ignoring invalid --jobs/ESR_BENCH_JOBS '%s'\n",
                   value.c_str());
      jobs = 0;
    }
  }
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (jobs > 1 && GlobalTrace().enabled()) {
    std::fprintf(stderr,
                 "--trace captures one coherent run: forcing --jobs 1 "
                 "(was %d)\n",
                 jobs);
    jobs = 1;
  }
  return jobs;
}

int LanesFromArgs(int argc, char** argv) {
  const std::string value =
      FlagValue(argc, argv, "--lanes", "ESR_BENCH_LANES");
  if (value.empty()) return 1;
  const int lanes = std::atoi(value.c_str());
  if (lanes < 1) {
    std::fprintf(stderr, "ignoring invalid --lanes/ESR_BENCH_LANES '%s'\n",
                 value.c_str());
    return 1;
  }
  // No trace clamp here: Cluster::Run itself falls back to serial rounds
  // while a capture is live, and the lane structure (hence every result
  // byte) is the same either way.
  return lanes;
}

std::string SeriesPathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--series", "ESR_BENCH_SERIES");
}

std::string HealthPathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--health", "ESR_BENCH_HEALTH");
}

bool CertifyFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--certify") == 0) return true;
  }
  const char* env = std::getenv("ESR_BENCH_CERTIFY");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

void ParallelFor(size_t count, int jobs,
                 const std::function<void(size_t)>& task) {
  const size_t workers =
      std::min(count, static_cast<size_t>(jobs < 1 ? 1 : jobs));
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &task] {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        task(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

uint64_t SeedForRun(int run_index) {
  return static_cast<uint64_t>(run_index + 1) * 7919;
}

Sweep::Sweep(const RunScale& scale, int jobs)
    : scale_(scale),
      jobs_(jobs < 1 ? 1 : jobs),
      coordinator_(std::this_thread::get_id()) {
  // Defense in depth: JobsFromArgs already clamps while a capture is
  // active, but a Sweep constructed with an explicit jobs count must not
  // let workers race the recorder either.
  if (jobs_ > 1 && GlobalTrace().enabled()) jobs_ = 1;
}

size_t Sweep::Add(const ClusterOptions& options) {
  ESR_CHECK(!ran_) << "Sweep::Add after Run";
  configs_.push_back(options);
  return configs_.size() - 1;
}

void Sweep::set_series_export(std::string path, std::string source) {
  ESR_CHECK(!ran_) << "Sweep::set_series_export after Run";
  series_path_ = std::move(path);
  series_source_ = std::move(source);
}

void Sweep::set_certify(bool on) {
  ESR_CHECK(!ran_) << "Sweep::set_certify after Run";
  certify_ = on;
}

void Sweep::set_health(std::string path) {
  ESR_CHECK(!ran_) << "Sweep::set_health after Run";
  health_path_ = std::move(path);
}

void Sweep::set_lanes(int lanes) {
  ESR_CHECK(!ran_) << "Sweep::set_lanes after Run";
  lanes_ = lanes < 1 ? 1 : lanes;
}

void Sweep::ResolveWarmup() {
  // Calibration run: the last scheduled config (the sweeps schedule
  // load-ascending, so this is the slowest-settling one the warmup must
  // cover), standard first seed, zero warmup, and a stretched measure
  // window — MSER-5 wants a healthy batch count (about a dozen) and the
  // startup ramp inside the sampled series it is asked to truncate.
  ClusterOptions calibration = configs_.back();
  calibration.seed = SeedForRun(0);
  calibration.warmup_s = 0.0;
  calibration.measure_s =
      std::max(60.0, 2.0 * (scale_.warmup_s + scale_.measure_s));
  calibration.collect_series = true;
  calibration.series_window_s = kSeriesWindowS;
  calibration.series_source = "mser5-calibration";
  calibration.owns_trace = false;  // never perturb a --trace capture
  calibration.lanes = lanes_;      // deterministic for any lane count
  const SimResult probe = RunCluster(calibration);
  const std::vector<double> throughput = probe.series.ThroughputSeries();

  const MserResult mser = Mser5Truncation(throughput);
  if (!mser.ok) {
    std::fprintf(stderr,
                 "MSER-5 found no steady state in %zu windows; keeping "
                 "preset warmup %.1fs\n",
                 throughput.size(), scale_.warmup_s);
    scale_.warmup_source = "preset-fallback";
  } else {
    const double raw_s =
        static_cast<double>(mser.truncation_windows) * kSeriesWindowS;
    // Never trust less than one window of warmup, and never let a noisy
    // calibration eat more than half the measurement budget. The bounds
    // can cross on sub-window test scales (measure_s < 2 windows), where
    // the budget cap wins.
    const double floor_s = std::min(kSeriesWindowS, scale_.measure_s / 2.0);
    scale_.warmup_s = std::clamp(raw_s, floor_s, scale_.measure_s / 2.0);
    scale_.warmup_source = "mser5";
    scale_.mser_raw_truncation_s = raw_s;
    scale_.mser_statistic = mser.statistic;
    std::fprintf(stderr,
                 "MSER-5 warmup: %.1fs (truncation %.1fs over %zu windows, "
                 "preset was %.1fs)\n",
                 scale_.warmup_s, raw_s, throughput.size(),
                 configs_[0].warmup_s);
  }
  for (ClusterOptions& config : configs_) {
    config.warmup_s = scale_.warmup_s;
  }
}

void Sweep::Run() {
  ESR_CHECK(!ran_) << "Sweep::Run called twice";
  ran_ = true;
  if (configs_.empty()) return;
  // Warmup resolution runs on the coordinator, before the pool, and is
  // deterministic — so the resolved scale (and every downstream byte) is
  // the same for any jobs count.
  if (auto_warmup_) ResolveWarmup();
  const int seeds = scale_.seeds;
  std::vector<SimResult> raw(configs_.size() * static_cast<size_t>(seeds));
  // Worker-pool phase: every (config, seed) run is independent and writes
  // only its own pre-sized slot. With jobs == 1 this executes inline on
  // the coordinator in the exact order the serial harness always used
  // (config-major, seed-minor), preserving --trace's last-run-wins export.
  const size_t series_task = raw.size() - 1;
  auto run_task = [&](size_t task, bool certify) {
    ClusterOptions options = configs_[task / static_cast<size_t>(seeds)];
    options.seed = SeedForRun(static_cast<int>(task % seeds));
    options.lanes = lanes_;
    // A certified run must own the global recorder (the certifier
    // subscribes to it); it only ever executes on the coordinator with no
    // workers running, so ownership is safe.
    options.owns_trace = certify || jobs_ == 1;
    options.certify = certify;
    if ((!series_path_.empty() || !health_path_.empty()) &&
        task == series_task) {
      // Telemetry rides on the last scheduled run: sampling is purely
      // observational, and pinning the exporter by schedule position
      // keeps the file identical for any jobs count. Health analysis
      // replays the same windows, so it pins the same run.
      options.collect_series = true;
      options.series_window_s = kSeriesWindowS;
      options.series_source =
          series_source_ + " config=" +
          std::to_string(task / static_cast<size_t>(seeds)) +
          " seed=" + std::to_string(options.seed);
    }
    raw[task] = RunCluster(options);
  };
  // With certification on, the pool skips the last task; the coordinator
  // runs it afterwards with the certifier attached. Same schedule
  // position, same seed, same options otherwise — so the run's results
  // (certification is purely observational) and every output byte match
  // the uncertified sweep at any jobs count.
  const size_t pool_tasks = certify_ ? raw.size() - 1 : raw.size();
  ParallelFor(pool_tasks, jobs_,
              [&](size_t task) { run_task(task, false); });
  if (certify_) {
    run_task(raw.size() - 1, true);
    certification_ = raw.back().certification;
    if (!certification_.enabled) {
      std::fprintf(stderr,
                   "streaming certification: SKIPPED (tracing compiled "
                   "out)\n");
    } else if (certification_.certified()) {
      std::fprintf(stderr,
                   "streaming certification: PASS — certified through "
                   "%.1fs (%zu walks, %zu charges over %zu windows)\n",
                   certification_.certified_through_s,
                   certification_.walks_replayed,
                   certification_.charges_applied,
                   certification_.windows_closed);
    } else {
      std::fprintf(stderr,
                   "streaming certification: FAIL — %zu violation(s); "
                   "watermark froze at %.1fs\n",
                   certification_.violations.size(),
                   certification_.certified_through_s);
    }
  }
  // Merge phase, coordinator only: Histogram::Merge (and the averaging
  // arithmetic) is single-threaded by contract — see common/metrics.h.
  ESR_CHECK(std::this_thread::get_id() == coordinator_)
      << "Sweep results must be merged on the coordinating thread";
  results_.resize(configs_.size());
  for (size_t c = 0; c < configs_.size(); ++c) {
    results_[c] =
        MergeSeedResults(&raw[c * static_cast<size_t>(seeds)], seeds);
  }
  if (!series_path_.empty()) {
    const RunSeries& series = raw[series_task].series;
    const Status status = ExportSeriesCsvToFile(series, series_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "series export failed: %s\n",
                   status.ToString().c_str());
    } else {
      std::fprintf(stderr, "wrote %zu telemetry windows to %s\n",
                   series.windows.size(), series_path_.c_str());
    }
  }
  if (!health_path_.empty()) {
    // Offline replay of the pinned run's windows: a pure function of
    // the series, so the journal bytes are --jobs-independent.
    health_ = AnalyzeSeries(raw[series_task].series);
    const Status status = WriteHealthJsonToFile(health_, health_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "health journal export failed: %s\n",
                   status.ToString().c_str());
    } else if (health_.healthy()) {
      std::fprintf(stderr,
                   "health: HEALTHY over %zu windows — journal at %s\n",
                   health_.windows, health_path_.c_str());
    } else {
      std::fprintf(stderr,
                   "health: %zu alert(s) over %zu windows — journal at %s\n",
                   health_.alerts.size(), health_.windows,
                   health_path_.c_str());
    }
  }
}

const AveragedResult& Sweep::Result(size_t handle) const {
  ESR_CHECK(ran_) << "Sweep::Result before Run";
  ESR_CHECK(handle < results_.size()) << "bad sweep handle " << handle;
  return results_[handle];
}

AveragedResult RunAveraged(ClusterOptions options, const RunScale& scale,
                           int jobs) {
  Sweep sweep(scale, jobs);
  // Callers of RunAveraged pass fully resolved options (tests pin exact
  // warmups); no calibration pass here. Their lane choice rides along.
  sweep.set_auto_warmup(false);
  sweep.set_lanes(options.lanes);
  sweep.Add(options);
  sweep.Run();
  return sweep.Result(0);
}

ClusterOptions BaseOptions(Inconsistency til, Inconsistency tel, int mpl,
                           const RunScale& scale) {
  ClusterOptions opt;
  opt.mpl = mpl;
  opt.workload.til = til;
  opt.workload.tel = tel;
  opt.warmup_s = scale.warmup_s;
  opt.measure_s = scale.measure_s;
  return opt;
}

ClusterOptions BaseOptions(EpsilonLevel level, int mpl,
                           const RunScale& scale) {
  const TransactionLimits limits = LimitsForLevel(level);
  return BaseOptions(limits.til, limits.tel, mpl, scale);
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v + 0.5));
  return buf;
}

std::string Table::NumCi(double v, double ci90_rel, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.1f%%%s", precision, v,
                100.0 * ci90_rel,
                ci90_rel > kCiFlagThreshold ? "!" : "");
  return buf;
}

std::string JsonReport::PathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--json", "ESR_BENCH_JSON");
}

JsonReport::JsonReport(std::string figure, const RunScale& scale)
    : figure_(std::move(figure)), scale_(scale) {}

void JsonReport::AddPoint(const std::string& series, double x,
                          const AveragedResult& result) {
  for (auto& entry : series_) {
    if (entry.first == series) {
      entry.second.push_back(Point{x, result});
      return;
    }
  }
  series_.emplace_back(series, std::vector<Point>{Point{x, result}});
}

void JsonReport::Write(std::ostream& out) const {
  JsonWriter w(out);
  w.BeginObject();
  w.KV("figure", figure_);
  w.Key("scale");
  w.BeginObject();
  w.KV("warmup_s", scale_.warmup_s);
  w.KV("measure_s", scale_.measure_s);
  w.KV("seeds", static_cast<int64_t>(scale_.seeds));
  w.KV("preset", scale_.preset);
  w.KV("warmup_source", scale_.warmup_source);
  w.KV("mser_raw_truncation_s", scale_.mser_raw_truncation_s);
  w.KV("mser_statistic", scale_.mser_statistic);
  w.EndObject();
  w.Key("series");
  w.BeginObject();
  for (const auto& [name, points] : series_) {
    w.Key(name);
    w.BeginArray();
    for (const Point& p : points) {
      const AveragedResult& r = p.result;
      w.BeginObject();
      w.KV("x", p.x);
      w.KV("throughput", r.throughput);
      w.KV("throughput_stddev", r.throughput_stddev);
      w.KV("ci90_rel", r.ci90_rel);
      w.KV("committed", r.committed);
      w.KV("aborts", r.aborts);
      w.KV("ops_executed", r.ops_executed);
      w.KV("inconsistent_ops", r.inconsistent_ops);
      w.KV("waits", r.waits);
      w.KV("ops_per_committed_txn", r.ops_per_committed_txn);
      w.KV("query_ops_per_committed_query",
           r.query_ops_per_committed_query);
      w.KV("avg_import_per_query", r.avg_import_per_query);
      w.KV("avg_txn_latency_ms", r.avg_txn_latency_ms);
      w.Key("latency_ms");
      w.BeginObject();
      const PercentileSummary pct = r.latency_ms.Percentiles();
      w.KV("count", r.latency_ms.count());
      w.KV("mean", r.latency_ms.mean());
      w.KV("min", r.latency_ms.min());
      w.KV("max", r.latency_ms.max());
      w.KV("stddev", r.latency_ms.stddev());
      w.KV("p50", pct.p50);
      w.KV("p90", pct.p90);
      w.KV("p99", pct.p99);
      w.KV("p999", pct.p999);
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
}

Status JsonReport::WriteToFile(const std::string& path) const {
  if (path.empty()) return Status::OK();
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open bench JSON output file: " + path);
  }
  Write(out);
  out << "\n";
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing bench JSON to: " + path);
  }
  std::fprintf(stderr, "wrote bench JSON to %s\n", path.c_str());
  return Status::OK();
}

namespace {

/// Git sha recorded in registry envelopes: ESR_GIT_SHA wins (tests pin
/// it), then GITHUB_SHA (CI), then `git rev-parse`; "unknown" outside a
/// checkout. Resolved once per process.
std::string ResolveGitSha() {
  for (const char* var : {"ESR_GIT_SHA", "GITHUB_SHA"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') return value;
  }
  std::string sha;
  if (FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

}  // namespace

std::string RegistryDirFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--registry", "ESR_BENCH_REGISTRY");
}

Status AppendReportToRegistry(const JsonReport& report, int jobs,
                              const std::string& dir) {
  ESR_CHECK(!dir.empty());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create registry directory " + dir + ": " +
                            ec.message());
  }
  static std::atomic<int> sequence{0};  // distinct names within one process
  const int64_t now_unix = static_cast<int64_t>(std::time(nullptr));
  std::ostringstream name;
  name << report.figure() << "_" << now_unix << "_" << getpid() << "_"
       << sequence.fetch_add(1, std::memory_order_relaxed) << ".json";
  const std::filesystem::path path = std::filesystem::path(dir) / name.str();
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open registry entry: " + path.string());
  }
  out << "{\n  \"registered\": {\"figure\": \"" << report.figure()
      << "\", \"git_sha\": \"" << ResolveGitSha() << "\", \"preset\": \""
      << report.scale().preset << "\", \"jobs\": " << jobs
      << ", \"recorded_unix\": " << now_unix << "},\n  \"report\": ";
  report.Write(out);
  out << "\n}\n";
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing registry entry: " +
                            path.string());
  }
  std::fprintf(stderr, "registered bench run: %s\n", path.string().c_str());
  return Status::OK();
}

Status MaybeAppendToRegistry(int argc, char** argv, const JsonReport& report,
                             int jobs) {
  const std::string dir = RegistryDirFromArgs(argc, argv);
  if (dir.empty()) return Status::OK();
  return AppendReportToRegistry(report, jobs, dir);
}

std::string TraceCapture::PathFromArgs(int argc, char** argv) {
  return FlagValue(argc, argv, "--trace", "ESR_BENCH_TRACE");
}

TraceCapture::TraceCapture(int argc, char** argv)
    : path_(PathFromArgs(argc, argv)) {
  if (path_.empty()) return;
  GlobalTrace().Reset();
  GlobalTrace().set_enabled(true);
}

TraceCapture::~TraceCapture() {
  if (path_.empty()) return;
  GlobalTrace().set_enabled(false);
  const Status s = GlobalTrace().ExportChromeTraceToFile(path_);
  if (!s.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "wrote %zu trace events to %s\n",
               GlobalTrace().size(), path_.c_str());
}

void PrintHeader(const std::string& figure, const std::string& paper_claim,
                 const RunScale& scale) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Scale: %s — %.0fs measure x %d seeds, MSER-5 warmup "
      "(preset %.0fs fallback; ESR_BENCH_FULL=1 for paper-scale)\n\n",
      scale.preset.c_str(), scale.measure_s, scale.seeds, scale.warmup_s);
}

}  // namespace bench
}  // namespace esr
