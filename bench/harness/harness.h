#ifndef ESR_BENCH_HARNESS_HARNESS_H_
#define ESR_BENCH_HARNESS_HARNESS_H_

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "esr/limits.h"
#include "sim/cluster.h"

namespace esr {
namespace bench {

/// One named run-length preset. The two instances below are the single
/// source of truth for the quick/full literals: RunScale::FromEnv reads
/// them, and the MSER-5 fallback warmup comes from whichever preset is in
/// effect — no scattered copies of the numbers.
struct ScalePreset {
  const char* name;
  double warmup_s;
  double measure_s;
  int seeds;
};

/// Default: fast enough for `for b in build/bench/*; do $b; done`.
/// 60 s x 5 seeds keeps pre-thrashing 90% CIs inside the paper's +/-3%
/// budget (deep-thrashing points are bistable and stay wide at any
/// affordable seed count — the CI flag marks them honestly).
inline constexpr ScalePreset kQuickScale{"quick", 3.0, 60.0, 5};
/// ESR_BENCH_FULL=1: paper-scale windows and more seeds (tighter
/// confidence; the paper reports 90% CIs within +/-3%).
inline constexpr ScalePreset kFullScale{"full", 5.0, 120.0, 7};

/// Run-length configuration for the figure harnesses, seeded from a
/// ScalePreset. `warmup_s` starts as the preset value; Sweep::Run
/// replaces it with the MSER-5 truncation point resolved from a
/// calibration run (falling back to the preset on heuristic failure) and
/// records the provenance here, so JsonReport can emit the warmup that
/// was actually used.
struct RunScale {
  double warmup_s = kQuickScale.warmup_s;
  double measure_s = kQuickScale.measure_s;
  int seeds = kQuickScale.seeds;
  /// Preset the scale came from ("quick" or "full").
  std::string preset = kQuickScale.name;
  /// How warmup_s was decided: "preset" (untouched preset value),
  /// "mser5" (Sweep calibration run), or "preset-fallback" (MSER-5
  /// found no steady state; preset value kept).
  std::string warmup_source = "preset";
  /// Unclamped MSER-5 truncation point, seconds (0 unless
  /// warmup_source == "mser5").
  double mser_raw_truncation_s = 0.0;
  /// The minimized MSER statistic (0 unless warmup_source == "mser5").
  double mser_statistic = 0.0;

  /// Reads ESR_BENCH_FULL from the environment and applies the matching
  /// preset.
  static RunScale FromEnv();
};

/// Shared `--flag <value>` scan for the figure binaries: the first
/// `<flag> <value>` pair anywhere in argv wins over the `env_var`
/// environment variable (pass nullptr for no fallback); empty string when
/// neither is present.
std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* env_var);

/// Worker count for the sweep executor: `--jobs N` wins over
/// ESR_BENCH_JOBS; defaults to std::thread::hardware_concurrency().
/// Forced to 1 (with a stderr note) while a `--trace` capture is active,
/// because the global trace recorder records one coherent run at a time.
int JobsFromArgs(int argc, char** argv);

/// Conservative-parallel worker count for each individual simulator run:
/// `--lanes N` wins over ESR_BENCH_LANES; defaults to 1 (serial rounds).
/// Orthogonal to --jobs: jobs parallelizes across (config, seed) runs,
/// lanes parallelizes the event lanes inside one run. Cluster::Run clamps
/// the value to the lane count (mpl + 1) and forces serial rounds while a
/// trace capture is active; every result byte is identical for any value
/// (see ClusterOptions::lanes). Wire it in with Sweep::set_lanes.
int LanesFromArgs(int argc, char** argv);

/// Output path for per-window run telemetry: `--series <path>` wins over
/// ESR_BENCH_SERIES; empty (export disabled) when neither is present.
/// Wire it into the executor with Sweep::set_series_export.
std::string SeriesPathFromArgs(int argc, char** argv);

/// Streaming-certification toggle: true when `--certify` appears anywhere
/// in argv, or ESR_BENCH_CERTIFY is set to anything but "0". Wire it into
/// the executor with Sweep::set_certify.
bool CertifyFromArgs(int argc, char** argv);

/// Output path for the windowed anomaly-detection journal (obs/health.h):
/// `--health <path>` wins over ESR_BENCH_HEALTH; empty (health analysis
/// disabled) when neither is present. Wire it into the executor with
/// Sweep::set_health.
std::string HealthPathFromArgs(int argc, char** argv);

/// Runs tasks [0, count) across up to `jobs` worker threads pulling from
/// a shared index, inline on the calling thread when jobs <= 1. Tasks
/// must be independent; result merging belongs on the calling thread
/// after this returns (see Histogram's thread-safety contract).
void ParallelFor(size_t count, int jobs,
                 const std::function<void(size_t)>& task);

/// Seed of the k-th (0-based) run of an averaged point. Exposed so
/// binaries that drive Cluster directly average over the same seeds the
/// standard executor uses.
uint64_t SeedForRun(int run_index);

/// The canonical high-conflict experiment configuration of Sec. 7 (about
/// 1000 objects, ~20-object hot set, query ETs ~20 ops / update ETs ~6
/// ops, values 1000..9999) with the given transaction-level bounds.
ClusterOptions BaseOptions(EpsilonLevel level, int mpl,
                           const RunScale& scale);
ClusterOptions BaseOptions(Inconsistency til, Inconsistency tel, int mpl,
                           const RunScale& scale);

/// Averaged metrics over `scale.seeds` runs of the same configuration
/// (only the seed differs).
struct AveragedResult {
  double throughput = 0.0;
  /// Sample standard deviation of throughput across seeds (the paper
  /// reports 90% confidence intervals within +/-3%; this is the analogous
  /// dispersion figure for our seeds).
  double throughput_stddev = 0.0;
  /// Relative half-width of the 90% confidence interval of the mean
  /// throughput across seeds (Student-t, see common/stats.h); 0 with
  /// fewer than two seeds. Tables render it via Table::NumCi; points
  /// above Table::kCiFlagThreshold are flagged.
  double ci90_rel = 0.0;
  double committed = 0.0;
  double aborts = 0.0;
  double ops_executed = 0.0;
  double inconsistent_ops = 0.0;
  double waits = 0.0;
  double ops_per_committed_txn = 0.0;
  double query_ops_per_committed_query = 0.0;
  double avg_import_per_query = 0.0;
  double avg_txn_latency_ms = 0.0;
  /// Commit-latency distribution (ms) merged across all seeds' runs;
  /// source of the percentile columns in the JSON report.
  Histogram latency_ms;
};

/// Deterministic worker-pool sweep executor for the figure binaries. A
/// figure schedules every averaged point up front (`Add`, in table
/// order), calls `Run()` once, then reads results back by handle in the
/// same order it scheduled them:
///
///   Sweep sweep(scale, JobsFromArgs(argc, argv));
///   for (...) handles.push_back(sweep.Add(BaseOptions(...)));
///   sweep.Run();
///   for (...) consume(sweep.Result(handles[i]));
///
/// `Run()` fans the individual (config, seed) simulator runs across the
/// worker pool; each run is self-contained (private EventQueue, Server,
/// MetricRegistry; the global trace recorder is never touched by workers)
/// and deterministic given its seed, and the per-seed SimResults are
/// merged into AveragedResults on the calling thread in seed order — so
/// the results, and therefore every table row and JSON byte a figure
/// emits, are identical for any jobs count, including jobs == 1.
class Sweep {
 public:
  Sweep(const RunScale& scale, int jobs);

  /// Effective worker count (after the trace-capture clamp).
  int jobs() const { return jobs_; }

  /// Schedules one averaged point; returns its result handle. Handles are
  /// assigned sequentially from 0 in Add order. Must precede Run().
  size_t Add(const ClusterOptions& options);

  /// Disables the MSER-5 calibration run: every scheduled config keeps
  /// the fixed warmup it was built with. For tests and callers that
  /// already control warmup explicitly (RunAveraged uses this).
  void set_auto_warmup(bool on) { auto_warmup_ = on; }

  /// After Run(), exports the per-window telemetry of the last scheduled
  /// (config, seed) run as series CSV to `path` (no-op when empty).
  /// `source` labels the series, typically the figure id. Collection is
  /// purely observational, so enabling it never changes results — and the
  /// exporting run is fixed by schedule position, so the file is
  /// identical for any --jobs count.
  void set_series_export(std::string path, std::string source);

  /// Rides streaming certification (obs/stream_audit.h) on the last
  /// scheduled (config, seed) run — the same schedule position the series
  /// exporter pins, so when both are on they share one run and the series
  /// CSV carries the live watermark column. The certified run executes on
  /// the coordinator after the worker pool drains and owns the global
  /// trace recorder (workers never touch it), so every result and output
  /// byte stays identical for any --jobs count. Run() prints the verdict
  /// to stderr; read it back via certification().
  void set_certify(bool on);

  /// After Run(): the certified run's verdict (enabled == false unless
  /// set_certify(true) and tracing is compiled in).
  const StreamCertification& certification() const { return certification_; }

  /// After Run(), replays the pinned telemetry run's window series
  /// through the standard HealthMonitor detector set (obs/health.h) and
  /// writes the alert journal JSON to `path` (no-op when empty). Shares
  /// the series exporter's schedule position — the last scheduled
  /// (config, seed) run — and forces series collection on that run even
  /// when --series is off. The journal is a pure function of the pinned
  /// run's series, so its bytes are identical for any --jobs count.
  void set_health(std::string path);

  /// After Run(): the pinned run's health verdict (empty unless
  /// set_health was given a path).
  const HealthReport& health() const { return health_; }

  /// Lane worker threads inside each simulator run (see LanesFromArgs);
  /// applied to every scheduled config — calibration run included — by
  /// Run(). Determinism contract: results are byte-identical for any
  /// value, so this is purely a wall-clock knob.
  void set_lanes(int lanes);

  /// Executes all scheduled (config, seed) runs and merges their results;
  /// call exactly once, from the thread that constructed the Sweep.
  ///
  /// Unless set_auto_warmup(false), first resolves the warmup with a
  /// MSER-5 calibration run of the last scheduled config — sweeps
  /// schedule load-ascending, so that is the slowest-settling one — (seed
  /// SeedForRun(0), series sampling on, zero warmup so the ramp is in
  /// view): the truncation point from the committed-per-window series —
  /// clamped to [1s, measure_s / 2] — replaces every config's warmup_s.
  /// On heuristic failure the preset warmup stands and a warning is
  /// logged. The calibration runs on the coordinator before the worker
  /// pool and is deterministic, so output bytes stay independent of
  /// --jobs.
  void Run();

  const AveragedResult& Result(size_t handle) const;

  /// Scale actually in effect — warmup_s and its provenance resolved by
  /// Run()'s calibration. Figures hand this (not their pre-Run copy) to
  /// JsonReport so the report carries the real warmup.
  const RunScale& scale() const { return scale_; }

 private:
  void ResolveWarmup();

  RunScale scale_;
  int jobs_;
  /// Merging (AveragedResult::latency_ms.Merge in particular — Histogram
  /// is NOT thread-safe) is pinned to this thread; Run() enforces it.
  std::thread::id coordinator_;
  bool ran_ = false;
  bool auto_warmup_ = true;
  bool certify_ = false;
  int lanes_ = 1;
  StreamCertification certification_;
  HealthReport health_;
  std::string series_path_;
  std::string series_source_;
  std::string health_path_;
  std::vector<ClusterOptions> configs_;
  std::vector<AveragedResult> results_;
};

/// Runs `options` under each of `scale.seeds` seeds — fanned across
/// `jobs` workers when jobs > 1 — and merges on the calling thread.
/// Identical output for any jobs value.
AveragedResult RunAveraged(ClusterOptions options, const RunScale& scale,
                           int jobs = 1);

/// Fixed-width table printer for the figure harnesses.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Num(double v, int precision = 2);
  static std::string Int(double v);

  /// CI half-widths above this relative value get a trailing '!' flag —
  /// the paper's "90% confidence intervals within +/-3%" budget.
  static constexpr double kCiFlagThreshold = 0.03;

  /// `"<v> ±c.c%"` cell: the value plus the relative 90% CI half-width
  /// across seeds (AveragedResult::ci90_rel), with a trailing '!' when
  /// the half-width exceeds kCiFlagThreshold.
  static std::string NumCi(double v, double ci90_rel, int precision = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard harness banner: figure id, what the paper showed,
/// and the scale in effect.
void PrintHeader(const std::string& figure, const std::string& paper_claim,
                 const RunScale& scale);

/// Machine-readable companion to the printed tables: collects every
/// (series, x, AveragedResult) point a figure harness produces and writes
/// them as one JSON document, so plots and regression dashboards consume
/// the same numbers the tables show.
///
/// Output shape:
///   {"figure": "...",
///    "scale": {"warmup_s": _, "measure_s": _, "seeds": _, "preset": _,
///              "warmup_source": _, "mser_raw_truncation_s": _,
///              "mser_statistic": _},
///    "series": {"<name>": [{"x": _, "throughput": _, "ci90_rel": _, ...,
///                           "latency_ms": {"count": _, ..., "p999": _}},
///                          ...], ...}}
///
/// Construct it with Sweep::scale() (after Run) so the scale block
/// reports the MSER-resolved warmup, not the preset.
class JsonReport {
 public:
  /// Resolves the output path: a `--json <path>` pair anywhere in argv
  /// wins over the ESR_BENCH_JSON environment variable; empty string when
  /// neither is present (callers then skip writing).
  static std::string PathFromArgs(int argc, char** argv);

  JsonReport(std::string figure, const RunScale& scale);

  void AddPoint(const std::string& series, double x,
                const AveragedResult& result);

  /// Writes the document to `out` (no trailing newline).
  void Write(std::ostream& out) const;

  /// No-op returning OK when `path` is empty.
  Status WriteToFile(const std::string& path) const;

  const std::string& figure() const { return figure_; }
  const RunScale& scale() const { return scale_; }

 private:
  struct Point {
    double x;
    AveragedResult result;
  };

  std::string figure_;
  RunScale scale_;
  /// Insertion-ordered series.
  std::vector<std::pair<std::string, std::vector<Point>>> series_;
};

// -- Cross-run benchmark registry -------------------------------------------
//
// Every figure run can append its JsonReport — wrapped in an envelope
// carrying the git sha, scale preset, and worker count — to a registry
// directory, one file per run:
//
//   <dir>/<figure>_<unix>_<pid>_<seq>.json
//   {"registered": {"figure": _, "git_sha": _, "preset": _, "jobs": _,
//                   "recorded_unix": _},
//    "report": <JsonReport::Write document>}
//
// tools/esr_bench_report scans the directory, groups entries by figure,
// renders cross-run trend tables, and flags regressions with the same
// CI-aware tolerance rule as scripts/check_bench_regression.py.

/// Registry directory: the first `--registry <dir>` pair in argv wins
/// over ESR_BENCH_REGISTRY; empty (registry disabled) when neither is
/// present.
std::string RegistryDirFromArgs(int argc, char** argv);

/// Appends `report` to the registry at `dir` (created if missing).
/// `jobs` is recorded for provenance only — report bytes are identical
/// for any worker count, so trend comparisons stay apples-to-apples.
Status AppendReportToRegistry(const JsonReport& report, int jobs,
                              const std::string& dir);

/// The call every figure binary makes right after WriteToFile: resolves
/// the registry directory from argv/environment and appends; no-op
/// returning OK when no registry is configured.
Status MaybeAppendToRegistry(int argc, char** argv, const JsonReport& report,
                             int jobs);

/// RAII trace capture for figure binaries: when a `--trace <path>` pair
/// appears in argv (or ESR_BENCH_TRACE is set), resets and enables the
/// global trace recorder for the harness's whole run and exports Chrome
/// trace JSON on destruction. Inert (zero-overhead beyond one enabled
/// check per probe) when no path was given. Declare one at the top of
/// main(), before JobsFromArgs and the sweep runs — an active capture
/// forces the sweep serial so the export stays one coherent run:
///
///   esr::bench::TraceCapture trace(argc, argv);
class TraceCapture {
 public:
  /// `--trace <path>` anywhere in argv wins over ESR_BENCH_TRACE; empty
  /// (capture disabled) when neither is present.
  static std::string PathFromArgs(int argc, char** argv);

  TraceCapture(int argc, char** argv);
  /// Disables the recorder and writes the capture (a warning is printed
  /// on export if the ring dropped events).
  ~TraceCapture();

  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace bench
}  // namespace esr

#endif  // ESR_BENCH_HARNESS_HARNESS_H_
