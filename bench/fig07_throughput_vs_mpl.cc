// Figure 7: Throughput vs Multiprogramming Level, one curve per epsilon
// level (zero = SR, low, medium, high). Expected shape: higher bounds give
// higher throughput; each curve thrashes (peaks and declines), and the
// thrashing point shifts to a higher MPL as the bounds increase.

#include "harness/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace {

using esr::EpsilonLevel;
using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr EpsilonLevel kLevels[] = {EpsilonLevel::kZero, EpsilonLevel::kLow,
                                    EpsilonLevel::kMedium,
                                    EpsilonLevel::kHigh};
constexpr const char* kNames[] = {"zero(SR)", "low", "medium", "high"};

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 7: Throughput vs MPL",
              "ESR >> SR at high bounds; thrashing at MPL~3 for low/zero "
              "bounds shifting to MPL~5 for high bounds",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig07_throughput_vs_mpl");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (int mpl = 1; mpl <= 10; ++mpl) {
    for (int l = 0; l < 4; ++l) {
      sweep.Add(BaseOptions(kLevels[l], mpl, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig07_throughput_vs_mpl", sweep.scale());
  Table table({"mpl", "zero(SR)", "low", "medium", "high"});
  double peak[4] = {0, 0, 0, 0};
  int peak_mpl[4] = {0, 0, 0, 0};
  double max_ci_rel = 0.0;
  size_t point = 0;
  for (int mpl = 1; mpl <= 10; ++mpl) {
    std::vector<std::string> row{std::to_string(mpl)};
    for (int l = 0; l < 4; ++l) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint(kNames[l], mpl, r);
      const double tput = r.throughput;
      max_ci_rel = std::max(max_ci_rel, r.ci90_rel);
      if (tput > peak[l]) {
        peak[l] = tput;
        peak_mpl[l] = mpl;
      }
      row.push_back(Table::NumCi(tput, r.ci90_rel));
    }
    table.AddRow(row);
  }
  table.Print();
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nDispersion: max per-cell 90%% CI half-width across seeds = "
      "±%.1f%% (paper budget: ±3%%; cells above it are flagged '!').\n",
      100.0 * max_ci_rel);

  std::printf("\nThrashing points (MPL at peak throughput, tps):\n");
  for (int l = 0; l < 4; ++l) {
    std::printf("  %-8s peak %.2f tps at MPL %d\n", kNames[l], peak[l],
                peak_mpl[l]);
  }
  return 0;
}
