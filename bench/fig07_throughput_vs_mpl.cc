// Figure 7: Throughput vs Multiprogramming Level, one curve per epsilon
// level (zero = SR, low, medium, high). Expected shape: higher bounds give
// higher throughput; each curve thrashes (peaks and declines), and the
// thrashing point shifts to a higher MPL as the bounds increase.

#include "harness/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace {

using esr::EpsilonLevel;
using esr::bench::BaseOptions;
using esr::bench::PrintHeader;
using esr::bench::RunAveraged;
using esr::bench::RunScale;
using esr::bench::Table;

constexpr EpsilonLevel kLevels[] = {EpsilonLevel::kZero, EpsilonLevel::kLow,
                                    EpsilonLevel::kMedium,
                                    EpsilonLevel::kHigh};

}  // namespace

int main() {
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 7: Throughput vs MPL",
              "ESR >> SR at high bounds; thrashing at MPL~3 for low/zero "
              "bounds shifting to MPL~5 for high bounds",
              scale);

  Table table({"mpl", "zero(SR)", "low", "medium", "high"});
  double peak[4] = {0, 0, 0, 0};
  int peak_mpl[4] = {0, 0, 0, 0};
  double max_rel_stddev = 0.0;
  for (int mpl = 1; mpl <= 10; ++mpl) {
    std::vector<std::string> row{std::to_string(mpl)};
    for (int l = 0; l < 4; ++l) {
      const auto r = RunAveraged(BaseOptions(kLevels[l], mpl, scale), scale);
      const double tput = r.throughput;
      if (tput > 0.0) {
        max_rel_stddev =
            std::max(max_rel_stddev, r.throughput_stddev / tput);
      }
      if (tput > peak[l]) {
        peak[l] = tput;
        peak_mpl[l] = mpl;
      }
      row.push_back(Table::Num(tput));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nDispersion: max per-cell stddev/mean across seeds = %.1f%% "
      "(paper: 90%% CI within +/-3%%).\n",
      100.0 * max_rel_stddev);

  std::printf("\nThrashing points (MPL at peak throughput, tps):\n");
  const char* names[] = {"zero(SR)", "low", "medium", "high"};
  for (int l = 0; l < 4; ++l) {
    std::printf("  %-8s peak %.2f tps at MPL %d\n", names[l], peak[l],
                peak_mpl[l]);
  }
  return 0;
}
