// Figure 12: Throughput vs Object Import Limit (OIL), with TIL at each of
// three levels; MPL fixed at 4. OIL is parameterized in units of w, the
// average change in value due to a write (as in the paper), and the OEL
// range is varied together with it, matching Sec. 6: "the values of OIL
// and OEL are randomly generated within a specified range, which is
// varied while the performance tests on object inconsistency limits are
// carried out". Paper shape: for low-to-medium TIL the throughput peaks
// at an INTERMEDIATE OIL — low OIL tolerates too little, high OIL admits
// high-inconsistency operations into transactions that the TIL then
// aborts late, wasting work. At zero OIL the behaviour corresponds to SR.
// See EXPERIMENTS.md: our calibration reproduces the SR endpoint, the
// rise, and the TIL-capped separation, but the interior maximum is
// weaker than the paper's.

#include "harness/harness.h"

#include <cstdio>

namespace {

using esr::bench::AveragedResult;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::JsonReport;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Sweep;
using esr::bench::Table;

constexpr int kMpl = 4;
constexpr double kOilInW[] = {0, 0.5, 1, 2, 3, 4, 6, 8, 12};
// TIL levels; TEL held high so exports do not interfere.
constexpr double kTilLevels[] = {10'000, 50'000, 100'000};

esr::ClusterOptions PointOptions(double oil_w, double til,
                                 const RunScale& scale) {
  auto opt = BaseOptions(til, /*tel=*/10'000, kMpl, scale);
  const double w = opt.workload.MeanWriteDelta();
  opt.server.store.min_oil = oil_w * w;
  opt.server.store.max_oil = oil_w * w;
  opt.server.store.min_oel = oil_w * w;
  opt.server.store.max_oel = oil_w * w;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader("Figure 12: Throughput vs OIL (TIL varies), MPL = 4",
              "for low/medium TIL the peak throughput occurs at an "
              "intermediate OIL, not at the extremes; OIL = 0 is the SR "
              "case",
              scale);

  Sweep sweep(scale, JobsFromArgs(argc, argv));
  sweep.set_lanes(LanesFromArgs(argc, argv));
  sweep.set_series_export(esr::bench::SeriesPathFromArgs(argc, argv),
                          "fig12_throughput_vs_oil");
  sweep.set_certify(esr::bench::CertifyFromArgs(argc, argv));
  sweep.set_health(esr::bench::HealthPathFromArgs(argc, argv));
  for (const double oil_w : kOilInW) {
    for (const double til : kTilLevels) {
      sweep.Add(PointOptions(oil_w, til, scale));
    }
  }
  sweep.Run();

  JsonReport report("fig12_throughput_vs_oil", sweep.scale());
  Table table({"OIL(w)", "TIL=10000(low)", "TIL=50000(med)",
               "TIL=100000(high)"});
  size_t point = 0;
  for (const double oil_w : kOilInW) {
    std::vector<std::string> row{Table::Num(oil_w, 1)};
    for (const double til : kTilLevels) {
      const AveragedResult& r = sweep.Result(point++);
      report.AddPoint("til=" + Table::Int(til), oil_w, r);
      row.push_back(Table::NumCi(r.throughput, r.ci90_rel));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nOIL(w): object import limit in units of w = average "
              "write delta (%.0f).\n",
              esr::WorkloadSpec{}.MeanWriteDelta());
  const esr::Status json_status =
      report.WriteToFile(JsonReport::PathFromArgs(argc, argv));
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.ToString().c_str());
    return 1;
  }
  const esr::Status registry_status =
      esr::bench::MaybeAppendToRegistry(argc, argv, report, sweep.jobs());
  if (!registry_status.ok()) {
    std::fprintf(stderr, "%s\n", registry_status.ToString().c_str());
    return 1;
  }
  return 0;
}
