// Microbenchmark of the arena-backed write-history layout (PR 8): every
// object's ring lives in one contiguous HistoryArena slice, against the
// previous layout where each object owned a separately heap-allocated
// ring. Both sides run the identical WriteHistory code — the delta is
// purely memory layout — over the simulator's two hot shapes: committed
// write recording round-robin across the store, and proper-value scans
// over neighboring objects. Min-of-N ops/sec, with a JsonReport emitted
// for `--registry <dir>` cross-run trends like every figure harness.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"
#include "harness/harness.h"
#include "storage/object_store.h"
#include "storage/write_history.h"

namespace {

using esr::HistoryArena;
using esr::ObjectId;
using esr::ObjectStore;
using esr::ObjectStoreOptions;
using esr::Timestamp;
using esr::WriteHistory;
using esr::bench::AveragedResult;
using esr::bench::JsonReport;
using esr::bench::MaybeAppendToRegistry;
using esr::bench::RunScale;
using esr::bench::Table;

template <typename Kernel>
double MinOfN(int reps, double ops, Kernel&& kernel) {
  kernel();  // warm caches and the allocator
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    kernel();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best_s = std::min(best_s, elapsed.count());
  }
  return ops / best_s;
}

Timestamp Ts(int64_t t) { return Timestamp{t, 0}; }

/// The store's hot shapes over any collection of per-object histories.
/// `at(i)` returns a WriteHistory&, so arena-backed views and standalone
/// (per-object heap) rings run the exact same instruction stream.
template <typename At>
uint64_t RecordChurn(size_t num_objects, int rounds, const At& at) {
  uint64_t sink = 0;
  int64_t ts = 1;
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < num_objects; ++i) {
      at(i).Record(Ts(ts++), static_cast<esr::Value>(r));
    }
  }
  for (size_t i = 0; i < num_objects; ++i) sink += at(i).size();
  return sink;
}

template <typename At>
uint64_t ProperScan(size_t num_objects, int rounds, const At& at) {
  uint64_t sink = 0;
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < num_objects; ++i) {
      const auto v = at(i).ProperValueBefore(
          Ts(static_cast<int64_t>((i + r) % 1000) * 64 + 1));
      if (v.has_value()) sink += static_cast<uint64_t>(*v);
    }
  }
  return sink;
}

/// Per-object heap layout: each ring is its own allocation, interleaved
/// with decoy allocations so the blocks land apart, the way a long run's
/// churn scatters them.
struct LegacyStore {
  std::vector<std::unique_ptr<WriteHistory>> rings;
  std::vector<std::unique_ptr<WriteHistory::Entry[]>> decoys;

  LegacyStore(size_t num_objects, size_t depth) {
    rings.reserve(num_objects);
    for (size_t i = 0; i < num_objects; ++i) {
      rings.push_back(std::make_unique<WriteHistory>(depth));
      decoys.push_back(
          std::make_unique<WriteHistory::Entry[]>(depth * 3 + i % 7));
    }
  }
  WriteHistory& at(size_t i) const { return *rings[i]; }
};

struct ArenaStore {
  HistoryArena arena;
  std::vector<WriteHistory> rings;

  ArenaStore(size_t num_objects, size_t depth) : arena(num_objects, depth) {
    rings.reserve(num_objects);
    for (size_t i = 0; i < num_objects; ++i) {
      rings.emplace_back(arena.SlotFor(static_cast<ObjectId>(i)), depth);
    }
  }
  WriteHistory& at(size_t i) { return rings[i]; }
};

AveragedResult Point(double ops_per_sec) {
  AveragedResult result;
  result.throughput = ops_per_sec;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const RunScale scale = RunScale::FromEnv();
  const bool full = scale.preset == "full";
  const int reps = full ? 12 : 5;
  const size_t kObjects = 1000;  // the paper's database size
  const int record_rounds = full ? 400 : 100;
  const int scan_rounds = full ? 2000 : 500;
  std::printf(
      "=== micro_object_store: arena-backed vs per-object write-history "
      "layout, %zu objects (min of %d reps) ===\n\n",
      kObjects, reps);

  JsonReport report("micro_object_store", scale);
  Table table({"kernel", "depth", "arena (Mops/s)", "per-object (Mops/s)",
               "ratio"});
  uint64_t sink = 0;

  for (const size_t depth : {size_t{20}, size_t{64}}) {
    const double record_ops =
        static_cast<double>(record_rounds) * static_cast<double>(kObjects);
    const double scan_ops =
        static_cast<double>(scan_rounds) * static_cast<double>(kObjects);

    ArenaStore arena(kObjects, depth);
    LegacyStore legacy(kObjects, depth);
    // Fill both to steady state (full rings) before timing.
    sink += RecordChurn(kObjects, static_cast<int>(depth) + 1,
                        [&](size_t i) -> WriteHistory& { return arena.at(i); });
    sink += RecordChurn(kObjects, static_cast<int>(depth) + 1,
                        [&](size_t i) -> WriteHistory& { return legacy.at(i); });

    const double arena_record = MinOfN(reps, record_ops, [&] {
      sink += RecordChurn(kObjects, record_rounds,
                          [&](size_t i) -> WriteHistory& { return arena.at(i); });
    });
    const double legacy_record = MinOfN(reps, record_ops, [&] {
      sink += RecordChurn(kObjects, record_rounds,
                          [&](size_t i) -> WriteHistory& { return legacy.at(i); });
    });
    table.AddRow({"record", Table::Int(static_cast<double>(depth)),
                  Table::Num(arena_record / 1e6),
                  Table::Num(legacy_record / 1e6),
                  Table::Num(arena_record / legacy_record)});
    report.AddPoint("record_arena", static_cast<double>(depth),
                    Point(arena_record));
    report.AddPoint("record_per_object", static_cast<double>(depth),
                    Point(legacy_record));

    const double arena_scan = MinOfN(reps, scan_ops, [&] {
      sink += ProperScan(kObjects, scan_rounds,
                         [&](size_t i) -> WriteHistory& { return arena.at(i); });
    });
    const double legacy_scan = MinOfN(reps, scan_ops, [&] {
      sink += ProperScan(kObjects, scan_rounds,
                         [&](size_t i) -> WriteHistory& { return legacy.at(i); });
    });
    table.AddRow({"proper-scan", Table::Int(static_cast<double>(depth)),
                  Table::Num(arena_scan / 1e6),
                  Table::Num(legacy_scan / 1e6),
                  Table::Num(arena_scan / legacy_scan)});
    report.AddPoint("proper_scan_arena", static_cast<double>(depth),
                    Point(arena_scan));
    report.AddPoint("proper_scan_per_object", static_cast<double>(depth),
                    Point(legacy_scan));
  }

  // Absolute end-to-end sanity point: the real ObjectStore's load path
  // (populate + seed histories) at the paper's size.
  {
    ObjectStoreOptions opt;
    opt.num_objects = kObjects;
    const double loads = full ? 200 : 50;
    const double load_rate = MinOfN(reps, loads, [&] {
      for (int i = 0; i < static_cast<int>(loads); ++i) {
        ObjectStore store(opt);
        sink += static_cast<uint64_t>(store.TotalValue());
      }
    });
    std::printf("store load+seed: %.1f stores/s (%zu objects each)\n\n",
                load_rate, kObjects);
    report.AddPoint("store_load", static_cast<double>(kObjects),
                    Point(load_rate));
  }

  table.Print();
  if (sink == 0) std::printf("(impossible sink)\n");

  const std::string json_path = JsonReport::PathFromArgs(argc, argv);
  const esr::Status json_status = report.WriteToFile(json_path);
  if (!json_status.ok()) {
    std::fprintf(stderr, "json export failed: %s\n",
                 json_status.ToString().c_str());
    return 1;
  }
  const esr::Status reg_status =
      MaybeAppendToRegistry(argc, argv, report, /*jobs=*/1);
  if (!reg_status.ok()) {
    std::fprintf(stderr, "registry append failed: %s\n",
                 reg_status.ToString().c_str());
    return 1;
  }
  return 0;
}
