// Ablation: hierarchical bounds at the WORKLOAD level. The paper's
// evaluation uses only the two-level specification (transaction +
// object); this bench runs its headline contribution — multi-level group
// limits — end to end: the hot set is organized into a group tree and
// every query declares per-level limits carved out of its TIL. Finer
// declarations trade throughput (more rejection points, Sec. 3.1's
// "small price") for locality of the inconsistency guarantee.

#include "harness/harness.h"

#include <cstdio>
#include <memory>

#include "sim/cluster.h"

namespace {

using esr::BoundSpec;
using esr::Cluster;
using esr::GroupId;
using esr::GroupSchema;
using esr::Inconsistency;
using esr::ObjectId;
using esr::SimResult;
using esr::TxnType;
using esr::bench::BaseOptions;
using esr::bench::JobsFromArgs;
using esr::bench::LanesFromArgs;
using esr::bench::ParallelFor;
using esr::bench::PrintHeader;
using esr::bench::RunScale;
using esr::bench::Table;

constexpr int kMpl = 4;
constexpr Inconsistency kTil = 20'000;

// Builds the group tree: depth 1 = transaction level only; depth 2 adds
// 4 categories over the database; depth 3 subdivides each category in 2.
// Every level's limits sum to the TIL, so deeper trees constrain the
// same budget at finer granularity.
struct Shape {
  const char* name;
  int levels;  // group levels between objects and the root
};

struct RunOutcome {
  double tput = 0.0;
  double aborts = 0.0;
  double group_aborts = 0.0;
  double import_per_query = 0.0;
};

// One (shape, seed) run; self-contained so runs can execute on worker
// threads. `owns_trace` must be false when other runs may be in flight.
RunOutcome RunShapeSeed(const Shape& shape, int seed, const RunScale& scale,
                        bool owns_trace, int lanes) {
  auto opt = BaseOptions(kTil, /*tel=*/10'000, kMpl, scale);
  opt.seed = static_cast<uint64_t>(seed) * 7919;
  opt.owns_trace = owns_trace;
  opt.lanes = lanes;

  // Group ids are deterministic given the construction order below, so
  // the bound factory can reference them before the cluster exists.
  std::vector<GroupId> level1;  // 4 categories: ids 1..4
  std::vector<GroupId> level2;  // 8 subgroups:  ids 5..12
  if (shape.levels >= 1) level1 = {1, 2, 3, 4};
  if (shape.levels >= 2) level2 = {5, 6, 7, 8, 9, 10, 11, 12};

  opt.workload.bound_factory = [level1, level2](TxnType type) {
    if (type == TxnType::kUpdate) {
      return BoundSpec::TransactionOnly(10'000);
    }
    BoundSpec bounds;
    bounds.SetTransactionLimit(kTil);
    for (const GroupId g : level1) bounds.SetLimit(g, kTil / 4);
    for (const GroupId g : level2) bounds.SetLimit(g, kTil / 8);
    return bounds;
  };

  Cluster cluster(opt);
  GroupSchema& schema = cluster.server().schema();
  if (shape.levels >= 1) {
    for (int c = 0; c < 4; ++c) {
      (void)schema.AddGroup("cat" + std::to_string(c), esr::kRootGroup);
    }
    if (shape.levels >= 2) {
      for (int s = 0; s < 8; ++s) {
        (void)schema.AddGroup("sub" + std::to_string(s),
                              static_cast<GroupId>(1 + s / 2));
      }
    }
    for (ObjectId id = 0; id < 1000; ++id) {
      const GroupId leaf = shape.levels >= 2
                               ? static_cast<GroupId>(5 + id % 8)
                               : static_cast<GroupId>(1 + id % 4);
      (void)schema.AssignObject(id, leaf);
    }
  }

  const SimResult r = cluster.Run();
  RunOutcome out;
  out.tput = r.throughput();
  out.aborts = static_cast<double>(r.aborts);
  out.group_aborts = static_cast<double>(
      cluster.server().metrics().CounterValue("abort.group_bound"));
  out.import_per_query = r.avg_import_per_query();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  esr::bench::TraceCapture trace_capture(argc, argv);
  const RunScale scale = RunScale::FromEnv();
  PrintHeader(
      "Ablation: hierarchy depth in the bound declaration (MPL = 4, "
      "TIL = 20000)",
      "the paper's contribution run end to end; its evaluation used only "
      "the two-level form",
      scale);

  const Shape shapes[] = {
      {"txn-level only (paper's eval)", 0},
      {"+4 categories (3-level)", 1},
      {"+8 subgroups (4-level)", 2},
  };
  constexpr size_t kShapeCount = 3;
  const size_t seeds = static_cast<size_t>(scale.seeds);
  const int jobs = JobsFromArgs(argc, argv);
  const int lanes = LanesFromArgs(argc, argv);

  // Fan the (shape, seed) grid across workers; merge on the main thread
  // in seed order so the averages are bit-identical to a serial run.
  std::vector<RunOutcome> raw(kShapeCount * seeds);
  ParallelFor(raw.size(), jobs, [&](size_t task) {
    const Shape& shape = shapes[task / seeds];
    const int seed = static_cast<int>(task % seeds) + 1;
    raw[task] =
        RunShapeSeed(shape, seed, scale, /*owns_trace=*/jobs == 1, lanes);
  });

  Table table({"declaration", "tput(tps)", "aborts", "group_aborts",
               "import/query"});
  for (size_t s = 0; s < kShapeCount; ++s) {
    RunOutcome out;
    for (size_t seed = 0; seed < seeds; ++seed) {
      const RunOutcome& r = raw[s * seeds + seed];
      out.tput += r.tput;
      out.aborts += r.aborts;
      out.group_aborts += r.group_aborts;
      out.import_per_query += r.import_per_query;
    }
    const double n = static_cast<double>(scale.seeds);
    out.tput /= n;
    out.aborts /= n;
    out.group_aborts /= n;
    out.import_per_query /= n;
    table.AddRow({shapes[s].name, Table::Num(out.tput),
                  Table::Int(out.aborts), Table::Int(out.group_aborts),
                  Table::Num(out.import_per_query, 0)});
  }
  table.Print();
  std::printf(
      "\nReading: every level's limits partition the same TIL, so deeper "
      "declarations reject\nlocalized inconsistency spikes earlier "
      "(group_aborts) and admit less total\ninconsistency per query — the "
      "flexibility/throughput compromise of Sec. 3.1.\n");
  return 0;
}
