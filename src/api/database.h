#ifndef ESR_API_DATABASE_H_
#define ESR_API_DATABASE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/timestamp.h"
#include "esr/aggregate.h"
#include "esr/limits.h"
#include "hierarchy/bound_spec.h"
#include "txn/server.h"

namespace esr {

class Session;

/// Embedder-facing facade over the transaction server: an in-memory
/// epsilon-serializable database with hierarchical inconsistency bounds.
///
/// Typical use (see examples/quickstart.cc):
///
///   esr::Database db(options);
///   esr::Session session = db.CreateSession(/*site=*/1);
///   auto result = session.AggregateQuery(accounts, esr::AggregateKind::kSum,
///                                        esr::BoundSpec::TransactionOnly(1e5));
class Database {
 public:
  explicit Database(const ServerOptions& options = {});

  /// The group hierarchy; configure before running transactions.
  GroupSchema& schema() { return server_.schema(); }

  /// Direct (non-transactional) value poke, for loading initial data in
  /// examples and tests. Must not race with transactions.
  Status LoadValue(ObjectId object, Value value);

  /// Non-transactional peek at the present value.
  Result<Value> PeekValue(ObjectId object) const;

  /// Creates a client session; each concurrent client should use its own
  /// site id so its timestamps are unique.
  Session CreateSession(SiteId site);

  Server& server() { return server_; }
  const Server& server() const { return server_; }
  MetricRegistry& metrics() { return server_.metrics(); }

 private:
  Server server_;
};

/// A client-side transaction handle. Operations return the raw OpResult
/// of the engine: kWait means retry the same op after the blocking writer
/// resolves; kAbort means the transaction is gone and must be restarted
/// with a fresh timestamp (Session's high-level helpers do both
/// automatically).
class TxnHandle {
 public:
  bool valid() const { return txn_ != kInvalidTxnId; }
  TxnId id() const { return txn_; }
  Timestamp ts() const { return ts_; }

  OpResult Read(ObjectId object);
  OpResult Write(ObjectId object, Value value);
  Status Commit();
  Status Abort();

 private:
  friend class Session;
  TxnHandle(Server* server, TxnId txn, Timestamp ts)
      : server_(server), txn_(txn), ts_(ts) {}

  Server* server_ = nullptr;
  TxnId txn_ = kInvalidTxnId;
  Timestamp ts_;
};

/// Result of a high-level aggregate query ET.
struct AggregateQueryResult {
  AggregateOutcome outcome;
  /// Total inconsistency the query imported; the answer is guaranteed to
  /// be within this distance of some serializable result.
  Inconsistency imported = 0.0;
  /// Server-side aborts absorbed before success.
  int retries = 0;
};

/// A client connection bound to one site id. Sessions are cheap; create
/// one per thread. Timestamps come from a process-monotonic clock.
class Session {
 public:
  Session(Server* server, SiteId site);

  /// Starts a transaction with an explicit hierarchical bound spec.
  TxnHandle Begin(TxnType type, BoundSpec bounds);

  /// Runs a read-only aggregate query ET over `objects` with automatic
  /// wait-retry and abort-restart (at most `max_restarts` restarts).
  /// Enforces the Sec. 5.3.2 aggregation-point rule for non-sum kinds.
  Result<AggregateQueryResult> AggregateQuery(
      const std::vector<ObjectId>& objects, AggregateKind kind,
      BoundSpec bounds, int max_restarts = 1000);

  /// Runs `body` as an update ET with automatic restart; `body` is
  /// re-invoked from scratch on each attempt and must route all access
  /// through the handle. Returning a non-OK status aborts and gives up.
  Status RunUpdate(const std::function<Status(TxnHandle&)>& body,
                   BoundSpec bounds, int max_restarts = 1000);

  SiteId site() const { return ts_gen_.site(); }

 private:
  int64_t NowMicros() const;

  Server* server_;
  TimestampGenerator ts_gen_;
};

}  // namespace esr

#endif  // ESR_API_DATABASE_H_
