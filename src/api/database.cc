#include "api/database.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "mvto/mvto_manager.h"

namespace esr {
namespace {

// How long a session sleeps before retrying an operation that was told to
// wait for an uncommitted writer (in-process polling analogue of the
// prototype's client-side retry over RPC).
constexpr std::chrono::microseconds kWaitPoll{100};
// Wait retries per op before giving up on the attempt and restarting the
// transaction; guards against a blocker that never resolves (e.g. a
// stalled client thread).
constexpr int kMaxWaitRetries = 20'000;

}  // namespace

Database::Database(const ServerOptions& options) : server_(options) {}

Status Database::LoadValue(ObjectId object, Value value) {
  if (ShardedEngine* sharded = server_.sharded_engine()) {
    if (!sharded->ContainsObject(object)) {
      return Status::NotFound("object " + std::to_string(object));
    }
    ObjectRecord& rec = sharded->ObjectAt(object);
    ESR_CHECK(!rec.has_uncommitted_write())
        << "LoadValue during active transactions";
    rec.ApplyWrite(/*txn=*/UINT64_MAX, Timestamp::Min(), value);
    rec.CommitWrite(/*txn=*/UINT64_MAX);
    return Status::OK();
  }
  if (!server_.store().Contains(object)) {
    return Status::NotFound("object " + std::to_string(object));
  }
  if (server_.options().engine == EngineKind::kMultiversion) {
    // The MVTO engine keeps its own version store; model the load as a
    // committed system transaction older than everything.
    auto& manager = static_cast<MvtoManager&>(server_.engine());
    VersionChain& chain = manager.store().Get(object);
    // Just after the seed version's timestamp, still older than any real
    // transaction timestamp.
    const Timestamp load_ts{INT64_MIN + 1, 0};
    const auto w = chain.Write(load_ts, /*writer=*/UINT64_MAX, value);
    if (w.status != VersionChain::WriteStatus::kOk) {
      return Status::FailedPrecondition(
          "LoadValue after transactions already ran");
    }
    chain.CommitVersions(UINT64_MAX);
    return Status::OK();
  }
  ObjectRecord& rec = server_.store().Get(object);
  ESR_CHECK(!rec.has_uncommitted_write())
      << "LoadValue during active transactions";
  // Model the load as a committed system write older than everything.
  rec.ApplyWrite(/*txn=*/UINT64_MAX, Timestamp::Min(), value);
  rec.CommitWrite(/*txn=*/UINT64_MAX);
  return Status::OK();
}

Result<Value> Database::PeekValue(ObjectId object) const {
  if (server_.options().engine == EngineKind::kSharded) {
    ShardedEngine* sharded =
        const_cast<Server&>(server_).sharded_engine();
    if (!sharded->ContainsObject(object)) {
      return Status::NotFound("object " + std::to_string(object));
    }
    return sharded->ObjectAt(object).value();
  }
  if (server_.options().engine == EngineKind::kMultiversion) {
    if (!server_.store().Contains(object)) {
      return Status::NotFound("object " + std::to_string(object));
    }
    const auto& manager =
        static_cast<const MvtoManager&>(server_.engine());
    return const_cast<MvtoManager&>(manager)
        .store()
        .Get(object)
        .LatestCommittedValue();
  }
  return server_.store().ReadValue(object);
}

Session Database::CreateSession(SiteId site) {
  return Session(&server_, site);
}

OpResult TxnHandle::Read(ObjectId object) {
  ESR_CHECK(valid());
  const OpResult result = server_->Read(txn_, object);
  // A kAbort response means the server already tore the transaction down.
  if (result.kind == OpResult::Kind::kAbort) txn_ = kInvalidTxnId;
  return result;
}

OpResult TxnHandle::Write(ObjectId object, Value value) {
  ESR_CHECK(valid());
  const OpResult result = server_->Write(txn_, object, value);
  if (result.kind == OpResult::Kind::kAbort) txn_ = kInvalidTxnId;
  return result;
}

Status TxnHandle::Commit() {
  ESR_CHECK(valid());
  const Status status = server_->Commit(txn_);
  txn_ = kInvalidTxnId;
  return status;
}

Status TxnHandle::Abort() {
  ESR_CHECK(valid());
  const Status status = server_->Abort(txn_);
  txn_ = kInvalidTxnId;
  return status;
}

Session::Session(Server* server, SiteId site)
    : server_(server), ts_gen_(site) {
  ESR_CHECK(server_ != nullptr);
}

int64_t Session::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TxnHandle Session::Begin(TxnType type, BoundSpec bounds) {
  const Timestamp ts = ts_gen_.Next(NowMicros());
  const TxnId id = server_->Begin(type, ts, std::move(bounds));
  return TxnHandle(server_, id, ts);
}

Result<AggregateQueryResult> Session::AggregateQuery(
    const std::vector<ObjectId>& objects, AggregateKind kind,
    BoundSpec bounds, int max_restarts) {
  if (objects.empty()) {
    return Status::InvalidArgument("aggregate query over zero objects");
  }
  Status last_abort = Status::OK();
  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    TxnHandle txn = Begin(TxnType::kQuery, bounds);
    bool aborted = false;
    for (const ObjectId object : objects) {
      int wait_spins = 0;
      OpResult op = txn.Read(object);
      while (op.kind == OpResult::Kind::kWait) {
        if (++wait_spins > kMaxWaitRetries) break;
        std::this_thread::sleep_for(kWaitPoll);
        op = txn.Read(object);
      }
      if (op.kind == OpResult::Kind::kWait) {
        // Blocker never resolved; give up on this attempt.
        ESR_RETURN_NOT_OK(txn.Abort());
        aborted = true;
        last_abort = Status::Aborted("wait retries exhausted");
        break;
      }
      if (op.kind == OpResult::Kind::kAbort) {
        aborted = true;
        last_abort = Status::Aborted(
            std::string("server abort: ") +
            AbortReasonToString(op.abort_reason));
        break;
      }
    }
    if (aborted) continue;

    // Evaluate while the transaction is still active so the observed
    // min/max ranges are available.
    const Transaction* state = server_->engine().Find(txn.id());
    ESR_CHECK(state != nullptr);
    auto outcome_or = EvaluateAggregate(*state, objects, kind);
    if (!outcome_or.ok()) {
      ESR_RETURN_NOT_OK(txn.Abort());
      return outcome_or.status();
    }
    // Aggregation-point admission (Sec. 5.3.2) for non-sum aggregates;
    // sum is already bounded dynamically, read by read.
    if (kind != AggregateKind::kSum) {
      const Status admissible = CheckAggregateAdmissible(*state, *outcome_or);
      if (!admissible.ok()) {
        ESR_RETURN_NOT_OK(txn.Abort());
        last_abort = admissible;
        continue;
      }
    }
    AggregateQueryResult result;
    result.outcome = *outcome_or;
    result.imported = state->accumulator().total();
    result.retries = attempt;
    ESR_RETURN_NOT_OK(txn.Commit());
    return result;
  }
  return Status::Aborted("query exceeded " + std::to_string(max_restarts) +
                         " restarts; last: " + last_abort.ToString());
}

Status Session::RunUpdate(const std::function<Status(TxnHandle&)>& body,
                          BoundSpec bounds, int max_restarts) {
  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    TxnHandle txn = Begin(TxnType::kUpdate, bounds);
    const Status status = body(txn);
    if (!status.ok()) {
      if (txn.valid()) ESR_RETURN_NOT_OK(txn.Abort());
      // kAborted from the body means the engine killed the attempt:
      // restart. Anything else is the caller's error: give up.
      if (status.code() == StatusCode::kAborted) continue;
      return status;
    }
    if (!txn.valid()) continue;  // body absorbed an abort
    ESR_RETURN_NOT_OK(txn.Commit());
    return Status::OK();
  }
  return Status::Aborted("update exceeded " + std::to_string(max_restarts) +
                         " restarts");
}

}  // namespace esr
