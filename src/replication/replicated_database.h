#ifndef ESR_REPLICATION_REPLICATED_DATABASE_H_
#define ESR_REPLICATION_REPLICATED_DATABASE_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sim/event_queue.h"
#include "txn/server.h"

namespace esr {

/// Configuration of the asynchronous replication layer.
struct ReplicationOptions {
  int num_replicas = 3;
  /// How long a committed write takes to reach and apply at a replica.
  double propagation_delay_ms = 200.0;
};

/// The paper's conclusion points at "ESR in the case of a distributed
/// system with data replication" (the Pu & Leff [16] line of work). This
/// module builds that substrate: a primary transaction server whose
/// committed writes propagate asynchronously to read-only replicas, with
/// ESR-style divergence control for replica reads.
///
/// The key mechanism mirrors Sec. 5's proper/present scheme, adapted to
/// replication:
///
///  * each replica lags the primary by whatever updates are still in its
///    propagation queue;
///  * the *conservative divergence estimate* for object x at replica r is
///    the sum of |value change| over x's queued-but-unapplied updates —
///    an upper bound on |primary(x) - replica(x)| by the triangle
///    inequality (the same property Sec. 2 requires of the state space);
///  * a bounded replica read is admitted iff that estimate fits the
///    query's import budget; with a zero bound, reads are only admitted
///    when the replica is fully caught up on that object (SR behaviour).
///
/// Simulation-only instrumentation also reports the TRUE divergence, so
/// tests can verify estimate >= truth (soundness of the control).
class ReplicatedDatabase {
 public:
  ReplicatedDatabase(const ReplicationOptions& replication,
                     const ServerOptions& server_options);

  /// The primary transaction server (full ESR engine).
  Server& primary() { return primary_; }

  int num_replicas() const { return options_.num_replicas; }

  // -- Primary-side transactional writes ----------------------------------
  /// Wrappers over the primary engine that additionally capture committed
  /// writes for propagation. Use these instead of primary() for updates.
  TxnId Begin(TxnType type, Timestamp ts, BoundSpec bounds);
  OpResult Read(TxnId txn, ObjectId object);
  OpResult Write(TxnId txn, ObjectId object, Value value);
  /// On successful commit, the transaction's writes enter every replica's
  /// propagation queue stamped `now`.
  Status Commit(TxnId txn, SimTime now);
  Status Abort(TxnId txn);

  // -- Replication engine --------------------------------------------------
  /// Applies every queued write that has been in flight for at least the
  /// propagation delay as of `now`. Call from the simulation loop.
  void AdvanceTo(SimTime now);

  /// Forces replica `r` fully up to date (e.g. a sync barrier).
  void SyncReplica(int replica);

  // -- Replica-side bounded reads ------------------------------------------
  struct ReplicaRead {
    Value value = 0;
    /// Conservative divergence estimate charged against the bound.
    Inconsistency estimated_divergence = 0.0;
    /// Exact |primary committed - replica| (instrumentation only).
    Inconsistency true_divergence = 0.0;
  };

  /// Reads object `object` at replica `replica` if its divergence
  /// estimate fits within `budget`; kBoundViolation otherwise.
  Result<ReplicaRead> ReadAtReplica(int replica, ObjectId object,
                                    Inconsistency budget);

  struct ReplicaQueryResult {
    double sum = 0.0;
    Inconsistency estimated_import = 0.0;
    Inconsistency true_import = 0.0;
    size_t objects_read = 0;
  };

  /// A replica-local sum query with a transaction import limit: admitted
  /// iff the accumulated conservative estimate stays within `til`
  /// (bottom-up, read by read, like Sec. 5.1).
  Result<ReplicaQueryResult> ReplicaSumQuery(
      int replica, const std::vector<ObjectId>& objects, Inconsistency til);

  /// Conservative per-object estimate (sum of queued |changes|).
  Inconsistency DivergenceEstimate(int replica, ObjectId object) const;

  /// Queue depth of a replica (diagnostics).
  size_t PendingWrites(int replica) const;

  /// Replica-local value (no admission check; diagnostics/tests).
  Value PeekReplica(int replica, ObjectId object) const;

 private:
  struct QueuedWrite {
    ObjectId object;
    Value new_value;
    /// |new - previous primary value|: the weight this write contributes
    /// to the divergence estimate while unapplied.
    Inconsistency weight;
    SimTime committed_at;
  };

  struct ReplicaState {
    std::vector<Value> values;
    std::deque<QueuedWrite> queue;
    /// Per-object sum of queued weights (the estimate, O(1) reads).
    std::unordered_map<ObjectId, Inconsistency> pending_weight;
  };

  void ApplyFront(ReplicaState* replica);

  ReplicationOptions options_;
  Server primary_;
  std::vector<ReplicaState> replicas_;
  /// Writes of in-flight primary transactions: object -> last value, plus
  /// the pre-write committed value for weight computation.
  struct PendingTxnWrite {
    ObjectId object;
    Value value;
    Value previous_committed;
  };
  std::unordered_map<TxnId, std::vector<PendingTxnWrite>> txn_writes_;
};

}  // namespace esr

#endif  // ESR_REPLICATION_REPLICATED_DATABASE_H_
