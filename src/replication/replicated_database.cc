#include "replication/replicated_database.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace esr {

ReplicatedDatabase::ReplicatedDatabase(const ReplicationOptions& replication,
                                       const ServerOptions& server_options)
    : options_(replication), primary_(server_options) {
  ESR_CHECK(options_.num_replicas >= 1);
  replicas_.resize(static_cast<size_t>(options_.num_replicas));
  for (ReplicaState& replica : replicas_) {
    replica.values.resize(primary_.store().size());
    for (ObjectId id = 0; id < primary_.store().size(); ++id) {
      replica.values[id] = primary_.store().Get(id).value();
    }
  }
}

TxnId ReplicatedDatabase::Begin(TxnType type, Timestamp ts,
                                BoundSpec bounds) {
  return primary_.Begin(type, ts, std::move(bounds));
}

OpResult ReplicatedDatabase::Read(TxnId txn, ObjectId object) {
  const OpResult r = primary_.Read(txn, object);
  if (r.kind == OpResult::Kind::kAbort) txn_writes_.erase(txn);
  return r;
}

OpResult ReplicatedDatabase::Write(TxnId txn, ObjectId object, Value value) {
  // Capture the committed pre-image before the engine applies in place.
  // (If another transaction held an uncommitted write, the engine returns
  // kWait/kAbort and nothing is recorded, so `previous` is always the
  // committed value on the recording path.)
  const Value previous = primary_.store().Get(object).value();
  const OpResult r = primary_.Write(txn, object, value);
  if (r.kind == OpResult::Kind::kAbort) {
    txn_writes_.erase(txn);
    return r;
  }
  if (r.kind != OpResult::Kind::kOk) return r;
  auto& writes = txn_writes_[txn];
  // Overwrite-by-same-txn keeps the original pre-image.
  for (PendingTxnWrite& w : writes) {
    if (w.object == object) {
      w.value = value;
      return r;
    }
  }
  writes.push_back(PendingTxnWrite{object, value, previous});
  return r;
}

Status ReplicatedDatabase::Commit(TxnId txn, SimTime now) {
  const Status status = primary_.Commit(txn);
  if (!status.ok()) return status;
  auto it = txn_writes_.find(txn);
  if (it != txn_writes_.end()) {
    for (const PendingTxnWrite& w : it->second) {
      const Inconsistency weight = static_cast<Inconsistency>(
          std::llabs(w.value - w.previous_committed));
      for (ReplicaState& replica : replicas_) {
        replica.queue.push_back(QueuedWrite{w.object, w.value, weight, now});
        replica.pending_weight[w.object] += weight;
      }
    }
    txn_writes_.erase(it);
  }
  return Status::OK();
}

Status ReplicatedDatabase::Abort(TxnId txn) {
  txn_writes_.erase(txn);
  return primary_.Abort(txn);
}

void ReplicatedDatabase::ApplyFront(ReplicaState* replica) {
  const QueuedWrite& write = replica->queue.front();
  replica->values[write.object] = write.new_value;
  auto it = replica->pending_weight.find(write.object);
  ESR_CHECK(it != replica->pending_weight.end());
  it->second -= write.weight;
  if (it->second <= 1e-9) replica->pending_weight.erase(it);
  replica->queue.pop_front();
}

void ReplicatedDatabase::AdvanceTo(SimTime now) {
  const SimTime delay = static_cast<SimTime>(
      options_.propagation_delay_ms * kMicrosPerMilli);
  for (ReplicaState& replica : replicas_) {
    while (!replica.queue.empty() &&
           replica.queue.front().committed_at + delay <= now) {
      ApplyFront(&replica);
    }
  }
}

void ReplicatedDatabase::SyncReplica(int replica) {
  ESR_CHECK(replica >= 0 && replica < options_.num_replicas);
  ReplicaState& state = replicas_[static_cast<size_t>(replica)];
  while (!state.queue.empty()) ApplyFront(&state);
}

Inconsistency ReplicatedDatabase::DivergenceEstimate(int replica,
                                                     ObjectId object) const {
  ESR_CHECK(replica >= 0 && replica < options_.num_replicas);
  const ReplicaState& state = replicas_[static_cast<size_t>(replica)];
  auto it = state.pending_weight.find(object);
  return it == state.pending_weight.end() ? 0.0 : it->second;
}

size_t ReplicatedDatabase::PendingWrites(int replica) const {
  ESR_CHECK(replica >= 0 && replica < options_.num_replicas);
  return replicas_[static_cast<size_t>(replica)].queue.size();
}

Value ReplicatedDatabase::PeekReplica(int replica, ObjectId object) const {
  ESR_CHECK(replica >= 0 && replica < options_.num_replicas);
  return replicas_[static_cast<size_t>(replica)].values[object];
}

Result<ReplicatedDatabase::ReplicaRead> ReplicatedDatabase::ReadAtReplica(
    int replica, ObjectId object, Inconsistency budget) {
  if (replica < 0 || replica >= options_.num_replicas) {
    return Status::NotFound("replica " + std::to_string(replica));
  }
  if (!primary_.store().Contains(object)) {
    return Status::NotFound("object " + std::to_string(object));
  }
  const Inconsistency estimate = DivergenceEstimate(replica, object);
  if (estimate > budget) {
    return Status::BoundViolation(
        "replica divergence estimate " + std::to_string(estimate) +
        " exceeds budget " + std::to_string(budget));
  }
  ReplicaRead read;
  read.value = replicas_[static_cast<size_t>(replica)].values[object];
  read.estimated_divergence = estimate;
  // Instrumentation: exact divergence against the primary's committed
  // state. An uncommitted primary write is not yet queued, so compare
  // against the shadow-free committed value via the history.
  const ObjectRecord& rec = primary_.store().Get(object);
  const Value primary_committed =
      rec.has_uncommitted_write()
          ? rec.ProperValueFor(Timestamp::Max()).value_or(rec.value())
          : rec.value();
  read.true_divergence = static_cast<Inconsistency>(
      std::llabs(primary_committed - read.value));
  return read;
}

Result<ReplicatedDatabase::ReplicaQueryResult>
ReplicatedDatabase::ReplicaSumQuery(int replica,
                                    const std::vector<ObjectId>& objects,
                                    Inconsistency til) {
  if (objects.empty()) {
    return Status::InvalidArgument("query over zero objects");
  }
  ReplicaQueryResult result;
  for (const ObjectId object : objects) {
    // Remaining budget for this read (Sec. 5.1 accumulation).
    const Inconsistency remaining = til - result.estimated_import;
    auto read = ReadAtReplica(replica, object, remaining);
    if (!read.ok()) return read.status();
    result.sum += static_cast<double>(read->value);
    result.estimated_import += read->estimated_divergence;
    result.true_import += read->true_divergence;
    ++result.objects_read;
  }
  return result;
}

}  // namespace esr
