#include "storage/object_store.h"

#include <cmath>

#include "common/logging.h"

namespace esr {
namespace {

// Uniform draw from an inconsistency range that may include kUnbounded.
Inconsistency SampleLimit(Rng* rng, Inconsistency lo, Inconsistency hi) {
  if (std::isinf(lo) || std::isinf(hi)) return kUnbounded;
  if (lo >= hi) return lo;
  return rng->UniformDouble(lo, hi);
}

}  // namespace

ObjectStore::ObjectStore(const ObjectStoreOptions& options)
    : options_(options),
      rng_(options.seed),
      history_arena_(options.num_objects, options.history_depth) {
  ESR_CHECK(options_.num_objects > 0);
  ESR_CHECK(options_.min_value <= options_.max_value);
  ESR_CHECK(options_.history_depth >= 1);
  objects_.reserve(options_.num_objects);
  for (size_t i = 0; i < options_.num_objects; ++i) {
    const Value v = rng_.UniformInt(options_.min_value, options_.max_value);
    const ObjectId id = static_cast<ObjectId>(i);
    ObjectRecord rec(id, v, history_arena_.SlotFor(id),
                     options_.history_depth);
    rec.set_oil(SampleLimit(&rng_, options_.min_oil, options_.max_oil));
    rec.set_oel(SampleLimit(&rng_, options_.min_oel, options_.max_oel));
    objects_.push_back(std::move(rec));
  }
}

ObjectRecord& ObjectStore::Get(ObjectId id) {
  ESR_CHECK(Contains(id)) << "object " << id << " out of range";
  return objects_[id];
}

const ObjectRecord& ObjectStore::Get(ObjectId id) const {
  ESR_CHECK(Contains(id)) << "object " << id << " out of range";
  return objects_[id];
}

Result<Value> ObjectStore::ReadValue(ObjectId id) const {
  if (!Contains(id)) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return objects_[id].value();
}

void ObjectStore::SetObjectImportLimits(Inconsistency lo, Inconsistency hi) {
  for (ObjectRecord& rec : objects_) rec.set_oil(SampleLimit(&rng_, lo, hi));
}

void ObjectStore::SetObjectExportLimits(Inconsistency lo, Inconsistency hi) {
  for (ObjectRecord& rec : objects_) rec.set_oel(SampleLimit(&rng_, lo, hi));
}

Value ObjectStore::TotalValue() const {
  Value total = 0;
  for (const ObjectRecord& rec : objects_) total += rec.value();
  return total;
}

}  // namespace esr
