#include "storage/object.h"

#include <algorithm>

#include "common/logging.h"

namespace esr {

ObjectRecord::ObjectRecord(ObjectId id, Value initial_value,
                           size_t history_depth)
    : id_(id), value_(initial_value), history_(history_depth) {
  // Seed the history with the load-time value so that a query older than
  // every subsequent write still finds a proper value.
  history_.Record(Timestamp::Min(), initial_value);
}

ObjectRecord::ObjectRecord(ObjectId id, Value initial_value,
                           WriteHistory::Entry* history_slots,
                           size_t history_depth)
    : id_(id),
      value_(initial_value),
      history_(history_slots, history_depth) {
  history_.Record(Timestamp::Min(), initial_value);
}

void ObjectRecord::NoteQueryRead(Timestamp ts) {
  query_read_ts_ = std::max(query_read_ts_, ts);
}

void ObjectRecord::NoteUpdateRead(Timestamp ts) {
  update_read_ts_ = std::max(update_read_ts_, ts);
}

void ObjectRecord::ApplyWrite(TxnId txn, Timestamp ts, Value new_value) {
  ESR_CHECK(txn != kInvalidTxnId);
  if (writer_ == kInvalidTxnId) {
    writer_ = txn;
    shadow_value_ = value_;
    shadow_write_ts_ = write_ts_;
  } else {
    // A transaction overwriting its own pending write keeps the original
    // shadow (the pre-transaction image).
    ESR_CHECK(writer_ == txn) << "concurrent uncommitted writers on object "
                              << id_;
  }
  value_ = new_value;
  pending_write_ts_ = ts;
  write_ts_ = std::max(write_ts_, ts);
}

void ObjectRecord::CommitWrite(TxnId txn) {
  ESR_CHECK(writer_ == txn) << "commit by non-writer on object " << id_;
  history_.Record(pending_write_ts_, value_);
  writer_ = kInvalidTxnId;
}

void ObjectRecord::AbortWrite(TxnId txn) {
  ESR_CHECK(writer_ == txn) << "abort by non-writer on object " << id_;
  value_ = shadow_value_;
  write_ts_ = shadow_write_ts_;
  writer_ = kInvalidTxnId;
}

bool ObjectRecord::RegisterQueryReader(TxnId txn, Timestamp ts,
                                       Value proper_value) {
  for (const QueryReader& r : query_readers_) {
    if (r.txn == txn) return false;  // one read per object per txn (3.2.1)
  }
  query_readers_.push_back(QueryReader{txn, ts, proper_value});
  return true;
}

void ObjectRecord::UnregisterQueryReader(TxnId txn) {
  auto it = std::find_if(query_readers_.begin(), query_readers_.end(),
                         [txn](const QueryReader& r) { return r.txn == txn; });
  if (it != query_readers_.end()) query_readers_.erase(it);
}

std::optional<Value> ObjectRecord::ProperValueFor(Timestamp query_ts) const {
  return history_.ProperValueBefore(query_ts);
}

}  // namespace esr
