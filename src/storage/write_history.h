#ifndef ESR_STORAGE_WRITE_HISTORY_H_
#define ESR_STORAGE_WRITE_HISTORY_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"

namespace esr {

/// Bounded record of the most recent writes to one object, used to find a
/// query's *proper value* — "the value written by the last write with a
/// timestamp less than the query's" (paper Sec. 5.1).
///
/// The paper keeps the last 20 writes per object (20 = measured query
/// duration / update duration); the depth is configurable here and swept
/// by the `micro_history_depth` ablation bench.
///
/// Storage is a fixed ring of `depth` entries, kept sorted by timestamp
/// (strict TO commits nearly, but not exactly, in ts order). The ring
/// normally views a slice of the store-wide HistoryArena — one contiguous
/// allocation for every object's history, so proper-value scans touch
/// adjacent cache lines instead of chasing per-object vectors. A history
/// constructed standalone (tests, ad-hoc records) owns its slice.
///
/// This is NOT multiversion timestamp ordering: reads always return the
/// object's current (present) value; the history is consulted only to
/// measure how inconsistent that present value is.
class WriteHistory {
 public:
  struct Entry {
    Timestamp ts;
    Value value;
  };

  static constexpr size_t kDefaultDepth = 20;

  /// Standalone history owning its `depth` ring slots; must be >= 1.
  explicit WriteHistory(size_t depth = kDefaultDepth);

  /// Arena-backed view over `slots[0, depth)`; the arena must outlive
  /// this object and the slice must not be shared.
  WriteHistory(Entry* slots, size_t depth);

  WriteHistory(const WriteHistory&) = delete;
  WriteHistory& operator=(const WriteHistory&) = delete;
  WriteHistory(WriteHistory&& other) noexcept;
  WriteHistory& operator=(WriteHistory&& other) noexcept;

  /// Records a committed write, keeping the ring sorted by timestamp;
  /// once full, the oldest retained write is evicted. A write older than
  /// everything a full ring retains is dropped (it would be evicted
  /// immediately).
  void Record(Timestamp ts, Value value);

  /// Value written by the newest write with ts strictly less than
  /// `before`, or nullopt if that write has already fallen off the ring
  /// (the query is older than everything we remember).
  std::optional<Value> ProperValueBefore(Timestamp before) const;

  /// Timestamp of the newest retained write, or Timestamp::Min() if empty.
  Timestamp NewestTimestamp() const;

  /// Timestamp of the oldest retained write, or Timestamp::Min() if empty.
  Timestamp OldestTimestamp() const;

  size_t size() const { return count_; }
  size_t depth() const { return depth_; }
  bool empty() const { return count_ == 0; }

  /// Oldest-to-newest copy, for tests and debugging (the ring itself is
  /// not contiguous in logical order).
  std::vector<Entry> entries() const;

 private:
  // i-th retained entry in logical (oldest-to-newest) order.
  Entry& At(size_t i) { return base_[(start_ + i) % depth_]; }
  const Entry& At(size_t i) const { return base_[(start_ + i) % depth_]; }

  Entry* base_;
  size_t depth_;
  size_t start_ = 0;  // ring index of the oldest retained entry
  size_t count_ = 0;
  // Backing storage for standalone histories; empty when arena-backed.
  std::vector<Entry> owned_;
};

/// One contiguous allocation holding every object's write-history ring,
/// indexed by ObjectId: slot i covers entries [i * depth, (i+1) * depth).
/// Replaces per-object vector allocations so a store-wide scan (or the
/// hot proper-value lookups of neighboring objects) stays in one arena.
class HistoryArena {
 public:
  HistoryArena(size_t num_objects, size_t depth)
      : depth_(depth), entries_(num_objects * depth) {}

  HistoryArena(const HistoryArena&) = delete;
  HistoryArena& operator=(const HistoryArena&) = delete;

  size_t depth() const { return depth_; }
  size_t num_objects() const { return depth_ == 0 ? 0 : entries_.size() / depth_; }

  /// The ring slice for `id`; valid for the arena's lifetime (the arena
  /// never reallocates).
  WriteHistory::Entry* SlotFor(ObjectId id) {
    return entries_.data() + static_cast<size_t>(id) * depth_;
  }

 private:
  size_t depth_;
  std::vector<WriteHistory::Entry> entries_;
};

}  // namespace esr

#endif  // ESR_STORAGE_WRITE_HISTORY_H_
