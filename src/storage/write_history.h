#ifndef ESR_STORAGE_WRITE_HISTORY_H_
#define ESR_STORAGE_WRITE_HISTORY_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"

namespace esr {

/// Bounded record of the most recent writes to one object, used to find a
/// query's *proper value* — "the value written by the last write with a
/// timestamp less than the query's" (paper Sec. 5.1).
///
/// The paper keeps the last 20 writes per object (20 = measured query
/// duration / update duration); the depth is configurable here and swept
/// by the `micro_history_depth` ablation bench.
///
/// This is NOT multiversion timestamp ordering: reads always return the
/// object's current (present) value; the history is consulted only to
/// measure how inconsistent that present value is.
class WriteHistory {
 public:
  struct Entry {
    Timestamp ts;
    Value value;
  };

  /// `depth` is the maximum number of retained writes; must be >= 1.
  explicit WriteHistory(size_t depth = kDefaultDepth);

  static constexpr size_t kDefaultDepth = 20;

  /// Records a committed write. Entries may arrive slightly out of
  /// timestamp order (strict TO commits nearly, but not exactly, in ts
  /// order), so the insert keeps the ring sorted by timestamp.
  void Record(Timestamp ts, Value value);

  /// Value written by the newest write with ts strictly less than
  /// `before`, or nullopt if that write has already fallen off the ring
  /// (the query is older than everything we remember).
  std::optional<Value> ProperValueBefore(Timestamp before) const;

  /// Timestamp of the newest retained write, or Timestamp::Min() if empty.
  Timestamp NewestTimestamp() const;

  size_t size() const { return entries_.size(); }
  size_t depth() const { return depth_; }
  bool empty() const { return entries_.empty(); }

  /// Oldest-to-newest view, for tests and debugging.
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  size_t depth_;
  // Sorted by ts ascending; bounded to depth_ (oldest evicted first).
  std::vector<Entry> entries_;
};

}  // namespace esr

#endif  // ESR_STORAGE_WRITE_HISTORY_H_
