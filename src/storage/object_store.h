#ifndef ESR_STORAGE_OBJECT_STORE_H_
#define ESR_STORAGE_OBJECT_STORE_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/types.h"
#include "storage/object.h"

namespace esr {

/// Configuration of the in-memory database loaded at server start-up
/// (the paper's start-up data file, Sec. 6).
struct ObjectStoreOptions {
  /// Number of objects; the paper's database has about 1000.
  size_t num_objects = 1000;
  /// Initial object values are drawn uniformly from this range
  /// (paper Sec. 7: values range from 1000 to 9999).
  Value min_value = 1000;
  Value max_value = 9999;
  /// Depth of the per-object write history used for proper-value lookup.
  size_t history_depth = WriteHistory::kDefaultDepth;
  /// Default object limits; "the values of OIL and OEL are randomly
  /// generated within a specified range" (Sec. 6). A range of
  /// [kUnbounded, kUnbounded] means the object level never rejects.
  Inconsistency min_oil = kUnbounded;
  Inconsistency max_oil = kUnbounded;
  Inconsistency min_oel = kUnbounded;
  Inconsistency max_oel = kUnbounded;
  /// Seed for initial values and randomized limits.
  uint64_t seed = 42;
};

/// The main-memory database: a dense array of `ObjectRecord`s whose write
/// histories all live in one contiguous HistoryArena (ring i = object i),
/// so the proper-value hot path walks flat memory instead of per-object
/// heap vectors. Writing an object changes its value in memory;
/// durability is out of scope, exactly as in the prototype (Sec. 6).
class ObjectStore {
 public:
  explicit ObjectStore(const ObjectStoreOptions& options);

  size_t size() const { return objects_.size(); }

  bool Contains(ObjectId id) const { return id < objects_.size(); }

  /// Borrowed access; the caller must hold the server's latch in
  /// concurrent settings.
  ObjectRecord& Get(ObjectId id);
  const ObjectRecord& Get(ObjectId id) const;

  Result<Value> ReadValue(ObjectId id) const;

  /// Re-randomizes every object's OIL within [lo, hi]; used by the OIL
  /// sweep experiments (Fig. 12/13).
  void SetObjectImportLimits(Inconsistency lo, Inconsistency hi);
  /// Re-randomizes every object's OEL within [lo, hi].
  void SetObjectExportLimits(Inconsistency lo, Inconsistency hi);

  /// Sum of all current values; used by consistency checks in tests.
  Value TotalValue() const;

  const ObjectStoreOptions& options() const { return options_; }

 private:
  ObjectStoreOptions options_;
  Rng rng_;
  // Declared before objects_: every record's history views a slice of the
  // arena, so the arena must be constructed first and destroyed last.
  HistoryArena history_arena_;
  std::vector<ObjectRecord> objects_;
};

}  // namespace esr

#endif  // ESR_STORAGE_OBJECT_STORE_H_
