#ifndef ESR_STORAGE_OBJECT_H_
#define ESR_STORAGE_OBJECT_H_

#include <optional>
#include <vector>

#include "common/timestamp.h"
#include "common/types.h"
#include "storage/write_history.h"

namespace esr {

/// One data item of the in-memory database: id, current value, its OIL/OEL
/// (object import/export limits, set at the server side per Sec. 3.2.2),
/// plus the concurrency-control and divergence-control bookkeeping the
/// paper's data manager maintains per object.
class ObjectRecord {
 public:
  /// An uncommitted query ET that has read this object, remembered with
  /// the proper value it observed; needed to compute the inconsistency a
  /// later write would export (paper Sec. 5.2).
  struct QueryReader {
    TxnId txn = kInvalidTxnId;
    Timestamp ts;
    Value proper_value = 0;
  };

  ObjectRecord() : ObjectRecord(kInvalidObjectId, 0, WriteHistory::kDefaultDepth) {}
  /// Standalone record owning its history ring (tests, ad-hoc use).
  ObjectRecord(ObjectId id, Value initial_value, size_t history_depth);
  /// Record whose history ring views `history_slots[0, history_depth)` in
  /// the store's HistoryArena (must outlive the record).
  ObjectRecord(ObjectId id, Value initial_value,
               WriteHistory::Entry* history_slots, size_t history_depth);

  ObjectId id() const { return id_; }

  /// The *present* value: the current in-memory value, including an
  /// in-place uncommitted write (shadow paging keeps the pre-image).
  Value value() const { return value_; }

  // -- Object-level inconsistency limits ----------------------------------
  Inconsistency oil() const { return oil_; }
  Inconsistency oel() const { return oel_; }
  void set_oil(Inconsistency oil) { oil_ = oil; }
  void set_oel(Inconsistency oel) { oel_ = oel; }

  // -- Timestamp bookkeeping ----------------------------------------------
  /// Timestamp of the last write applied (committed or not).
  Timestamp write_ts() const { return write_ts_; }
  /// Largest timestamp of any read issued by a query ET.
  Timestamp query_read_ts() const { return query_read_ts_; }
  /// Largest timestamp of any read issued by an update ET.
  Timestamp update_read_ts() const { return update_read_ts_; }
  /// Largest read timestamp overall.
  Timestamp max_read_ts() const {
    return query_read_ts_ > update_read_ts_ ? query_read_ts_
                                            : update_read_ts_;
  }

  void NoteQueryRead(Timestamp ts);
  void NoteUpdateRead(Timestamp ts);

  // -- Uncommitted writer (strict ordering admits at most one) ------------
  bool has_uncommitted_write() const { return writer_ != kInvalidTxnId; }
  TxnId uncommitted_writer() const { return writer_; }

  /// Applies a write in place and records the pre-image (shadow value).
  /// `txn` must either be the current uncommitted writer (blind overwrite
  /// by the same transaction) or there must be no uncommitted writer.
  void ApplyWrite(TxnId txn, Timestamp ts, Value new_value);

  /// Commits the pending write of `txn`: discards the shadow and enters
  /// the write into the history used for proper-value lookups.
  void CommitWrite(TxnId txn);

  /// Aborts the pending write of `txn`: restores the shadow value and the
  /// previous write timestamp (paper Sec. 6: shadow technique, no redo log).
  void AbortWrite(TxnId txn);

  // -- Query reader registration (export control, Sec. 5.2) ---------------
  /// Returns whether `txn` was newly registered (false on a repeat read:
  /// one registration per object per txn, Sec. 3.2.1) — callers use it to
  /// skip their own dedup of the per-transaction registered-read list.
  bool RegisterQueryReader(TxnId txn, Timestamp ts, Value proper_value);
  void UnregisterQueryReader(TxnId txn);
  const std::vector<QueryReader>& query_readers() const {
    return query_readers_;
  }

  // -- Proper value lookup (import control, Sec. 5.1) ---------------------
  /// Proper value for a query with timestamp `query_ts`: last committed
  /// write older than the query, from the bounded history. nullopt if the
  /// history no longer reaches back that far.
  std::optional<Value> ProperValueFor(Timestamp query_ts) const;

  const WriteHistory& history() const { return history_; }

 private:
  ObjectId id_;
  Value value_;
  Inconsistency oil_ = kUnbounded;
  Inconsistency oel_ = kUnbounded;

  Timestamp write_ts_ = Timestamp::Min();
  Timestamp query_read_ts_ = Timestamp::Min();
  Timestamp update_read_ts_ = Timestamp::Min();

  // Shadow state for the single in-flight writer.
  TxnId writer_ = kInvalidTxnId;
  Value shadow_value_ = 0;
  Timestamp shadow_write_ts_ = Timestamp::Min();
  Timestamp pending_write_ts_ = Timestamp::Min();

  std::vector<QueryReader> query_readers_;
  WriteHistory history_;
};

}  // namespace esr

#endif  // ESR_STORAGE_OBJECT_H_
