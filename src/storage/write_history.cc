#include "storage/write_history.h"

#include <algorithm>
#include <cassert>

namespace esr {

WriteHistory::WriteHistory(size_t depth) : depth_(depth) {
  assert(depth_ >= 1);
  entries_.reserve(depth_);
}

void WriteHistory::Record(Timestamp ts, Value value) {
  // Common case: appended in order.
  if (entries_.empty() || entries_.back().ts < ts) {
    entries_.push_back(Entry{ts, value});
  } else {
    auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), ts,
        [](Timestamp t, const Entry& e) { return t < e.ts; });
    entries_.insert(pos, Entry{ts, value});
  }
  if (entries_.size() > depth_) entries_.erase(entries_.begin());
}

std::optional<Value> WriteHistory::ProperValueBefore(Timestamp before) const {
  // Index backwards through the list until an older timestamp is found
  // (paper Sec. 5.1).
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->ts < before) return it->value;
  }
  return std::nullopt;
}

Timestamp WriteHistory::NewestTimestamp() const {
  return entries_.empty() ? Timestamp::Min() : entries_.back().ts;
}

}  // namespace esr
