#include "storage/write_history.h"

#include <cassert>

namespace esr {

WriteHistory::WriteHistory(size_t depth) : depth_(depth), owned_(depth) {
  assert(depth_ >= 1);
  base_ = owned_.data();
}

WriteHistory::WriteHistory(Entry* slots, size_t depth)
    : base_(slots), depth_(depth) {
  assert(base_ != nullptr);
  assert(depth_ >= 1);
}

WriteHistory::WriteHistory(WriteHistory&& other) noexcept
    : base_(other.base_),
      depth_(other.depth_),
      start_(other.start_),
      count_(other.count_),
      owned_(std::move(other.owned_)) {
  // A standalone history's ring lives in owned_, whose heap buffer just
  // changed hands; re-point at it. Arena-backed views keep their pointer.
  if (!owned_.empty()) base_ = owned_.data();
  other.count_ = 0;
}

WriteHistory& WriteHistory::operator=(WriteHistory&& other) noexcept {
  if (this == &other) return *this;
  base_ = other.base_;
  depth_ = other.depth_;
  start_ = other.start_;
  count_ = other.count_;
  owned_ = std::move(other.owned_);
  if (!owned_.empty()) base_ = owned_.data();
  other.count_ = 0;
  return *this;
}

void WriteHistory::Record(Timestamp ts, Value value) {
  // Common case: newest write, appended in order.
  if (count_ == 0 || At(count_ - 1).ts < ts) {
    if (count_ == depth_) {
      // Full ring: the oldest slot becomes the newest entry.
      base_[start_] = Entry{ts, value};
      start_ = (start_ + 1) % depth_;
    } else {
      At(count_) = Entry{ts, value};
      ++count_;
    }
    return;
  }
  // Out-of-order commit: find the upper-bound position (first retained
  // entry with a strictly larger timestamp) scanning from the newest end —
  // stragglers land near it.
  size_t pos = count_;
  while (pos > 0 && ts < At(pos - 1).ts) --pos;
  if (count_ < depth_) {
    for (size_t i = count_; i > pos; --i) At(i) = At(i - 1);
    At(pos) = Entry{ts, value};
    ++count_;
    return;
  }
  // Full ring: inserting evicts the oldest entry, so entries below `pos`
  // shift down one and the newcomer lands at pos - 1. At pos == 0 the
  // newcomer itself is the oldest and is dropped outright.
  if (pos == 0) return;
  for (size_t i = 0; i + 1 < pos; ++i) At(i) = At(i + 1);
  At(pos - 1) = Entry{ts, value};
}

std::optional<Value> WriteHistory::ProperValueBefore(Timestamp before) const {
  // Index backwards through the ring until an older timestamp is found
  // (paper Sec. 5.1).
  for (size_t i = count_; i > 0; --i) {
    if (At(i - 1).ts < before) return At(i - 1).value;
  }
  return std::nullopt;
}

Timestamp WriteHistory::NewestTimestamp() const {
  return count_ == 0 ? Timestamp::Min() : At(count_ - 1).ts;
}

Timestamp WriteHistory::OldestTimestamp() const {
  return count_ == 0 ? Timestamp::Min() : At(0).ts;
}

std::vector<WriteHistory::Entry> WriteHistory::entries() const {
  std::vector<Entry> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(At(i));
  return out;
}

}  // namespace esr
