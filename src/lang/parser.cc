#include "lang/parser.h"

#include <cctype>
#include <map>
#include <sstream>

namespace esr {
namespace lang {
namespace {

// ---------------------------------------------------------------- lexer --

struct Token {
  enum class Kind : uint8_t {
    kIdent,
    kNumber,
    kString,
    kSymbol,  // one of = + - , ( )
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int64_t number = 0;
  char symbol = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' || (c == '/' && Peek(1) == '/')) {
        SkipLine();
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        tokens.push_back(LexNumber());
        continue;
      }
      if (c == '"') {
        auto tok = LexString();
        if (!tok.ok()) return tok.status();
        tokens.push_back(*tok);
        continue;
      }
      if (c == '=' || c == '+' || c == '-' || c == ',' || c == '(' ||
          c == ')') {
        Token tok;
        tok.kind = Token::Kind::kSymbol;
        tok.symbol = c;
        tok.line = line_;
        tokens.push_back(tok);
        ++pos_;
        continue;
      }
      return Status::InvalidArgument(Err("unexpected character '" +
                                         std::string(1, c) + "'"));
    }
    Token end;
    end.kind = Token::Kind::kEnd;
    end.line = line_;
    tokens.push_back(end);
    return tokens;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  void SkipLine() {
    while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
  }

  Token LexIdent() {
    Token tok;
    tok.kind = Token::Kind::kIdent;
    tok.line = line_;
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
            source_[pos_] == '_')) {
      tok.text += source_[pos_++];
    }
    return tok;
  }

  Token LexNumber() {
    Token tok;
    tok.kind = Token::Kind::kNumber;
    tok.line = line_;
    while (pos_ < source_.size() &&
           std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
      tok.number = tok.number * 10 + (source_[pos_++] - '0');
    }
    return tok;
  }

  Result<Token> LexString() {
    Token tok;
    tok.kind = Token::Kind::kString;
    tok.line = line_;
    ++pos_;  // opening quote
    while (pos_ < source_.size() && source_[pos_] != '"') {
      if (source_[pos_] == '\n') {
        return Status::InvalidArgument(Err("unterminated string"));
      }
      tok.text += source_[pos_++];
    }
    if (pos_ >= source_.size()) {
      return Status::InvalidArgument(Err("unterminated string"));
    }
    ++pos_;  // closing quote
    return tok;
  }

  std::string Err(const std::string& message) const {
    return "line " + std::to_string(line_) + ": " + message;
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
};

// --------------------------------------------------------------- parser --

bool IdentIs(const Token& tok, std::string_view word) {
  if (tok.kind != Token::Kind::kIdent || tok.text.size() != word.size()) {
    return false;
  }
  for (size_t i = 0; i < word.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(tok.text[i])) !=
        std::tolower(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<ParsedTxn>> ParseAll() {
    std::vector<ParsedTxn> txns;
    while (!AtEnd()) {
      auto txn = ParseTxn();
      if (!txn.ok()) return txn.status();
      txns.push_back(std::move(*txn));
    }
    return txns;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool AtEnd() const { return Cur().kind == Token::Kind::kEnd; }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }
  bool ConsumeSymbol(char symbol) {
    if (Cur().kind == Token::Kind::kSymbol && Cur().symbol == symbol) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(const std::string& message) const {
    return Status::InvalidArgument("line " + std::to_string(Cur().line) +
                                   ": " + message);
  }

  Result<ParsedTxn> ParseTxn() {
    if (!IdentIs(Cur(), "BEGIN")) return Err("expected BEGIN");
    Advance();
    ParsedTxn txn;
    if (IdentIs(Cur(), "Query")) {
      txn.type = TxnType::kQuery;
    } else if (IdentIs(Cur(), "Update")) {
      txn.type = TxnType::kUpdate;
    } else {
      return Err("expected Query or Update after BEGIN");
    }
    Advance();

    // Bound clauses: TIL/TEL [=] number, LIMIT <group> number.
    while (true) {
      if (IdentIs(Cur(), "TIL") || IdentIs(Cur(), "TEL")) {
        const bool is_til = IdentIs(Cur(), "TIL");
        if ((txn.type == TxnType::kQuery) != is_til) {
          return Err(is_til ? "TIL on an Update ET" : "TEL on a Query ET");
        }
        Advance();
        ConsumeSymbol('=');  // optional, both paper spellings accepted
        if (Cur().kind != Token::Kind::kNumber) {
          return Err("expected a number after TIL/TEL");
        }
        txn.transaction_limit = static_cast<Inconsistency>(Cur().number);
        Advance();
        continue;
      }
      if (IdentIs(Cur(), "LIMIT")) {
        Advance();
        if (Cur().kind != Token::Kind::kIdent) {
          return Err("expected a group name after LIMIT");
        }
        GroupLimitClause clause;
        clause.group = Cur().text;
        Advance();
        if (Cur().kind != Token::Kind::kNumber) {
          return Err("expected a number after the group name");
        }
        clause.limit = static_cast<Inconsistency>(Cur().number);
        Advance();
        txn.group_limits.push_back(std::move(clause));
        continue;
      }
      break;
    }

    // Statements until COMMIT/END/ABORT.
    while (true) {
      if (IdentIs(Cur(), "COMMIT") || IdentIs(Cur(), "END")) {
        Advance();
        return txn;
      }
      if (IdentIs(Cur(), "ABORT")) {
        Advance();
        txn.ends_with_abort = true;
        return txn;
      }
      if (AtEnd()) return Err("missing COMMIT/END/ABORT");
      auto stmt = ParseStmt(txn);
      if (!stmt.ok()) return stmt.status();
      txn.statements.push_back(std::move(*stmt));
    }
  }

  Result<Stmt> ParseStmt(const ParsedTxn& txn) {
    // `Write id , expr`
    if (IdentIs(Cur(), "Write")) {
      if (txn.type != TxnType::kUpdate) {
        return Err("Write inside a Query ET");
      }
      Advance();
      Stmt stmt;
      stmt.kind = Stmt::Kind::kWrite;
      if (Cur().kind != Token::Kind::kNumber) {
        return Err("expected an object id after Write");
      }
      stmt.object = static_cast<ObjectId>(Cur().number);
      Advance();
      if (!ConsumeSymbol(',')) return Err("expected ',' after Write id");
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt.expr = std::move(*expr);
      return stmt;
    }
    // `output("label", expr)` (parentheses optional as in Sec. 3.1).
    if (IdentIs(Cur(), "output")) {
      Advance();
      Stmt stmt;
      stmt.kind = Stmt::Kind::kOutput;
      const bool parenthesized = ConsumeSymbol('(');
      if (Cur().kind == Token::Kind::kString) {
        stmt.label = Cur().text;
        Advance();
        ConsumeSymbol(',');
      }
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt.expr = std::move(*expr);
      if (parenthesized && !ConsumeSymbol(')')) {
        return Err("expected ')' to close output");
      }
      return stmt;
    }
    // `t1 = Read 1863`
    if (Cur().kind == Token::Kind::kIdent) {
      Stmt stmt;
      stmt.kind = Stmt::Kind::kRead;
      stmt.variable = Cur().text;
      Advance();
      if (!ConsumeSymbol('=')) return Err("expected '=' after variable");
      if (!IdentIs(Cur(), "Read")) return Err("expected Read");
      Advance();
      if (Cur().kind != Token::Kind::kNumber) {
        return Err("expected an object id after Read");
      }
      stmt.object = static_cast<ObjectId>(Cur().number);
      Advance();
      return stmt;
    }
    return Err("expected a statement");
  }

  Result<Expr> ParseExpr() {
    Expr expr;
    int sign = 1;
    if (ConsumeSymbol('-')) sign = -1;
    while (true) {
      ExprTerm term;
      term.sign = sign;
      if (Cur().kind == Token::Kind::kNumber) {
        term.literal = Cur().number;
      } else if (Cur().kind == Token::Kind::kIdent &&
                 !IdentIs(Cur(), "Read") && !IdentIs(Cur(), "Write")) {
        term.is_variable = true;
        term.variable = Cur().text;
      } else {
        return Err("expected a number or variable in expression");
      }
      Advance();
      expr.terms.push_back(std::move(term));
      if (ConsumeSymbol('+')) {
        sign = 1;
      } else if (ConsumeSymbol('-')) {
        sign = -1;
      } else {
        return expr;
      }
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<ParsedTxn>> ParseScript(std::string_view source) {
  Lexer lexer(source);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseAll();
}

Result<ParsedTxn> ParseSingleTxn(std::string_view source) {
  auto txns = ParseScript(source);
  if (!txns.ok()) return txns.status();
  if (txns->size() != 1) {
    return Status::InvalidArgument("expected exactly one transaction, got " +
                                   std::to_string(txns->size()));
  }
  return std::move((*txns)[0]);
}

std::string FormatTxnScript(const TxnScript& script) {
  std::ostringstream out;
  const bool is_query = script.type == TxnType::kQuery;
  out << "BEGIN " << (is_query ? "Query" : "Update") << " "
      << (is_query ? "TIL" : "TEL") << " = "
      << static_cast<int64_t>(script.bounds.transaction_limit()) << "\n";
  int read_index = 0;
  std::vector<std::string> read_vars;
  for (const ScriptOp& op : script.ops) {
    if (op.kind == ScriptOp::Kind::kRead) {
      const std::string var = "t" + std::to_string(++read_index);
      read_vars.push_back(var);
      out << var << " = Read " << op.object << "\n";
    } else {
      out << "Write " << op.object << " , "
          << read_vars[static_cast<size_t>(op.source_read)];
      if (op.delta >= 0) {
        out << " + " << op.delta;
      } else {
        out << " - " << -op.delta;
      }
      out << "\n";
    }
  }
  if (is_query && read_index > 0) {
    out << "output(\"Sum is: \", ";
    for (int i = 0; i < read_index; ++i) {
      if (i > 0) out << " + ";
      out << read_vars[static_cast<size_t>(i)];
    }
    out << ")\n";
  }
  out << "COMMIT\n";
  return out.str();
}

std::string FormatLoad(const std::vector<TxnScript>& load) {
  std::ostringstream out;
  for (size_t i = 0; i < load.size(); ++i) {
    if (i > 0) out << "\n";
    out << FormatTxnScript(load[i]);
  }
  return out.str();
}

Result<TxnScript> LowerToTxnScript(const ParsedTxn& txn) {
  TxnScript script;
  script.type = txn.type;
  script.bounds = BoundSpec::TransactionOnly(txn.transaction_limit);
  // Group limits need a schema to resolve names and are applied by the
  // interpreter; the lowered form keeps only the transaction level.
  std::map<std::string, int32_t> read_index;
  for (const Stmt& stmt : txn.statements) {
    switch (stmt.kind) {
      case Stmt::Kind::kRead: {
        ScriptOp op;
        op.kind = ScriptOp::Kind::kRead;
        op.object = stmt.object;
        read_index[stmt.variable] =
            static_cast<int32_t>(read_index.size());
        script.ops.push_back(op);
        break;
      }
      case Stmt::Kind::kWrite: {
        // Lowerable writes are var [+/- literal]* (one variable).
        ScriptOp op;
        op.kind = ScriptOp::Kind::kWrite;
        op.object = stmt.object;
        op.source_read = -1;
        Value delta = 0;
        for (const ExprTerm& term : stmt.expr.terms) {
          if (term.is_variable) {
            if (op.source_read != -1 || term.sign != 1) {
              return Status::InvalidArgument(
                  "write expression too complex to lower (multiple or "
                  "negated variables)");
            }
            auto it = read_index.find(term.variable);
            if (it == read_index.end()) {
              return Status::InvalidArgument("undefined variable '" +
                                             term.variable + "'");
            }
            op.source_read = it->second;
          } else {
            delta += term.sign * term.literal;
          }
        }
        if (op.source_read == -1) {
          return Status::InvalidArgument(
              "write expression must reference exactly one read variable");
        }
        op.delta = delta;
        script.ops.push_back(op);
        break;
      }
      case Stmt::Kind::kOutput:
        break;  // no TxnScript equivalent
    }
  }
  return script;
}

}  // namespace lang
}  // namespace esr
