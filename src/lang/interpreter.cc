#include "lang/interpreter.h"

#include <chrono>
#include <map>
#include <sstream>
#include <thread>

namespace esr {
namespace lang {
namespace {

constexpr std::chrono::microseconds kWaitPoll{100};
constexpr int kMaxWaitRetries = 20'000;

Result<Value> Evaluate(const Expr& expr,
                       const std::map<std::string, Value>& env) {
  Value value = 0;
  for (const ExprTerm& term : expr.terms) {
    if (term.is_variable) {
      auto it = env.find(term.variable);
      if (it == env.end()) {
        return Status::InvalidArgument("undefined variable '" +
                                       term.variable + "'");
      }
      value += term.sign * it->second;
    } else {
      value += term.sign * term.literal;
    }
  }
  return value;
}

/// Builds the BoundSpec, resolving LIMIT clauses against the schema.
Result<BoundSpec> ResolveBounds(const GroupSchema& schema,
                                const ParsedTxn& txn) {
  BoundSpec bounds = BoundSpec::TransactionOnly(txn.transaction_limit);
  for (const GroupLimitClause& clause : txn.group_limits) {
    auto group = schema.FindGroup(clause.group);
    if (!group.ok()) return group.status();
    bounds.SetLimit(*group, clause.limit);
  }
  return bounds;
}

/// Runs one operation with wait-polling; returns the final result (never
/// kWait unless the blocker outlived the retry budget).
OpResult RunWithWaits(TxnHandle* txn, const Stmt& stmt, Value write_value) {
  int spins = 0;
  while (true) {
    const OpResult r = stmt.kind == Stmt::Kind::kRead
                           ? txn->Read(stmt.object)
                           : txn->Write(stmt.object, write_value);
    if (r.kind != OpResult::Kind::kWait) return r;
    if (++spins > kMaxWaitRetries) return r;
    std::this_thread::sleep_for(kWaitPoll);
  }
}

}  // namespace

Result<ExecOutcome> ExecuteTxn(Session* session, const GroupSchema& schema,
                               const ParsedTxn& txn, int max_restarts) {
  auto bounds = ResolveBounds(schema, txn);
  if (!bounds.ok()) return bounds.status();

  Status last_abort = Status::OK();
  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    TxnHandle handle = session->Begin(txn.type, *bounds);
    std::map<std::string, Value> env;
    ExecOutcome outcome;
    outcome.retries = attempt;
    bool aborted = false;

    for (const Stmt& stmt : txn.statements) {
      if (stmt.kind == Stmt::Kind::kOutput) {
        auto value = Evaluate(stmt.expr, env);
        if (!value.ok()) {
          if (handle.valid()) ESR_RETURN_NOT_OK(handle.Abort());
          return value.status();
        }
        std::ostringstream line;
        line << stmt.label << *value;
        outcome.outputs.push_back(line.str());
        continue;
      }
      Value write_value = 0;
      if (stmt.kind == Stmt::Kind::kWrite) {
        auto value = Evaluate(stmt.expr, env);
        if (!value.ok()) {
          if (handle.valid()) ESR_RETURN_NOT_OK(handle.Abort());
          return value.status();
        }
        write_value = *value;
      }
      const OpResult r = RunWithWaits(&handle, stmt, write_value);
      if (r.kind == OpResult::Kind::kWait) {
        ESR_RETURN_NOT_OK(handle.Abort());
        last_abort = Status::Aborted("wait retries exhausted");
        aborted = true;
        break;
      }
      if (r.kind == OpResult::Kind::kAbort) {
        last_abort =
            Status::Aborted(std::string("server abort: ") +
                            AbortReasonToString(r.abort_reason));
        aborted = true;
        break;
      }
      outcome.inconsistency += r.inconsistency;
      if (stmt.kind == Stmt::Kind::kRead) env[stmt.variable] = r.value;
    }
    if (aborted) continue;  // resubmit with a fresh timestamp

    if (txn.ends_with_abort) {
      // The script's explicit ABORT: execute, then roll back once —
      // deliberate aborts are not resubmitted.
      ESR_RETURN_NOT_OK(handle.Abort());
      return outcome;
    }
    ESR_RETURN_NOT_OK(handle.Commit());
    return outcome;
  }
  return Status::Aborted("transaction exceeded " +
                         std::to_string(max_restarts) +
                         " restarts; last: " + last_abort.ToString());
}

Result<std::vector<ExecOutcome>> ExecuteScript(
    Session* session, const GroupSchema& schema,
    const std::vector<ParsedTxn>& txns, int max_restarts) {
  std::vector<ExecOutcome> outcomes;
  outcomes.reserve(txns.size());
  for (const ParsedTxn& txn : txns) {
    auto outcome = ExecuteTxn(session, schema, txn, max_restarts);
    if (!outcome.ok()) return outcome.status();
    outcomes.push_back(std::move(*outcome));
  }
  return outcomes;
}

}  // namespace lang
}  // namespace esr
