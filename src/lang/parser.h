#ifndef ESR_LANG_PARSER_H_
#define ESR_LANG_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "workload/spec.h"

namespace esr {
namespace lang {

/// Parses a load file — one or more transactions in the paper's textual
/// form — into ASTs. Accepts both bound spellings the paper uses
/// (`TIL 10000` and `TIL = 100000`), `COMMIT` or `END` as terminator,
/// and `#`/`//` comments to end of line.
Result<std::vector<ParsedTxn>> ParseScript(std::string_view source);

/// Convenience: parses a source expected to hold exactly one transaction.
Result<ParsedTxn> ParseSingleTxn(std::string_view source);

/// Renders a generated TxnScript (the workload generator's form) as
/// script text — the serialization used to write the clients' load files
/// (Sec. 6); ParseScript reads it back (round trip tested).
std::string FormatTxnScript(const TxnScript& script);

/// Renders a whole load file.
std::string FormatLoad(const std::vector<TxnScript>& load);

/// Lowers a parsed transaction to the generator's TxnScript form
/// (group limits resolved later, at execution, since they need a
/// schema). Output statements are dropped (TxnScript has no I/O).
/// Fails if a write references an undefined variable.
Result<TxnScript> LowerToTxnScript(const ParsedTxn& txn);

}  // namespace lang
}  // namespace esr

#endif  // ESR_LANG_PARSER_H_
