#ifndef ESR_LANG_AST_H_
#define ESR_LANG_AST_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace esr {
namespace lang {

/// One additive term of an expression: an integer literal or a variable
/// bound by an earlier `t = Read id` statement.
struct ExprTerm {
  int sign = 1;  // +1 or -1
  bool is_variable = false;
  std::string variable;
  Value literal = 0;
};

/// Sum-of-terms expression — the arithmetic the paper's example ETs use
/// (`t2+3000`, `t3-t4+4230`, `t1+t4+7935`).
struct Expr {
  std::vector<ExprTerm> terms;
};

/// One statement of a transaction body.
struct Stmt {
  enum class Kind : uint8_t {
    /// `t1 = Read 1863`
    kRead,
    /// `Write 1078 , t2+3000`
    kWrite,
    /// `output("Sum is: ", t1+t2)`
    kOutput,
  };

  Kind kind = Kind::kRead;
  std::string variable;  // kRead: the bound variable
  ObjectId object = kInvalidObjectId;  // kRead / kWrite target
  Expr expr;             // kWrite value / kOutput expression
  std::string label;     // kOutput string prefix
};

/// A group-limit clause: `LIMIT company 4000` (resolved against the
/// server's GroupSchema by name at execution time).
struct GroupLimitClause {
  std::string group;
  Inconsistency limit = 0;
};

/// One parsed epsilon transaction, the textual form of Secs. 3.1-3.2:
///
///   BEGIN Query TIL = 100000
///   LIMIT company 4000
///   t1 = Read 1863
///   output("Sum is: ", t1)
///   COMMIT
struct ParsedTxn {
  TxnType type = TxnType::kQuery;
  /// TIL (queries) or TEL (updates); unbounded if not declared.
  Inconsistency transaction_limit = kUnbounded;
  std::vector<GroupLimitClause> group_limits;
  std::vector<Stmt> statements;
  /// True when the body ends with ABORT instead of COMMIT/END: the
  /// transaction executes and then deliberately aborts (the fifth basic
  /// operation of Sec. 6).
  bool ends_with_abort = false;
};

}  // namespace lang
}  // namespace esr

#endif  // ESR_LANG_AST_H_
