#ifndef ESR_LANG_INTERPRETER_H_
#define ESR_LANG_INTERPRETER_H_

#include <string>
#include <vector>

#include "api/database.h"
#include "common/result.h"
#include "lang/ast.h"

namespace esr {
namespace lang {

/// Result of executing one scripted ET.
struct ExecOutcome {
  /// Server-side aborts absorbed before the successful attempt.
  int retries = 0;
  /// Inconsistency imported (queries) or exported (updates).
  Inconsistency inconsistency = 0.0;
  /// Rendered `output(...)` lines, in order.
  std::vector<std::string> outputs;
};

/// Executes a parsed transaction against a session, with automatic
/// wait-retry and abort-resubmission (the client loop of Sec. 6). Group
/// limits are resolved by name against the database's schema; an unknown
/// group name fails with kNotFound before anything runs.
Result<ExecOutcome> ExecuteTxn(Session* session, const GroupSchema& schema,
                               const ParsedTxn& txn,
                               int max_restarts = 1000);

/// Executes a whole load file in order; stops at the first failure.
Result<std::vector<ExecOutcome>> ExecuteScript(
    Session* session, const GroupSchema& schema,
    const std::vector<ParsedTxn>& txns, int max_restarts = 1000);

}  // namespace lang
}  // namespace esr

#endif  // ESR_LANG_INTERPRETER_H_
