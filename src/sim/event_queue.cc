#include "sim/event_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace esr {
namespace {

void FreeBlock(void* block, size_t align) {
  if (align > alignof(std::max_align_t)) {
    ::operator delete(block, std::align_val_t(align));
  } else {
    ::operator delete(block);
  }
}

}  // namespace

EventQueue::~EventQueue() {
  // Destroy pending callables first (free slots already destroyed theirs
  // when they ran or were released), then return every slot's retained
  // oversize block.
  for (const HeapEntry& entry : heap_) {
    Slot& slot = SlotAt(entry.slot);
    slot.destroy(slot.callable);
  }
  for (uint32_t index = 0; index < allocated_slots_; ++index) {
    Slot& slot = SlotAt(index);
    if (slot.heap_block != nullptr) {
      FreeBlock(slot.heap_block, slot.heap_align);
    }
  }
}

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t index = free_head_;
    free_head_ = SlotAt(index).next_free;
    return index;
  }
  if (allocated_slots_ == chunks_.size() * kSlotsPerChunk) {
    chunks_.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
  }
  return allocated_slots_++;
}

void EventQueue::ReleaseSlot(uint32_t index) {
  // The stale run/destroy/callable pointers are never read while the slot
  // sits on the free list; the next ScheduleAt overwrites them.
  Slot& slot = SlotAt(index);
  slot.next_free = free_head_;
  free_head_ = index;
}

void* EventQueue::OversizeStorage(Slot& slot, size_t bytes, size_t align) {
  if (slot.heap_block != nullptr &&
      (slot.heap_bytes < bytes || slot.heap_align < align)) {
    FreeBlock(slot.heap_block, slot.heap_align);
    slot.heap_block = nullptr;
  }
  if (slot.heap_block == nullptr) {
    slot.heap_block =
        align > alignof(std::max_align_t)
            ? ::operator new(bytes, std::align_val_t(align))
            : ::operator new(bytes);
    slot.heap_bytes = bytes;
    slot.heap_align = align;
  }
  return slot.heap_block;
}

void EventQueue::PushEntry(SimTime at, uint32_t slot_index) {
  const HeapEntry entry{std::max(at, now_), next_seq_++, slot_index};
  heap_.push_back(entry);  // reserve the hole; SiftUp assigns into it
  SiftUp(heap_.size() - 1, entry);
}

void EventQueue::SiftUp(size_t hole, HeapEntry entry) {
  while (hole > 0) {
    const size_t parent = (hole - 1) / 2;
    if (!Earlier(entry, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

void EventQueue::SiftDown(HeapEntry entry) {
  const size_t n = heap_.size();
  size_t hole = 0;
  // Floyd's pop refinement: walk the hole all the way to a leaf, always
  // promoting the earlier child, then re-seat `entry` by sifting up.
  // `entry` is the displaced tail element and almost always belongs near
  // the bottom, so skipping the compare-vs-entry at every level trades a
  // usually-trivial sift-up for one fewer compare per level. The
  // prefetch aims two levels ahead: by the time the winning child's own
  // children are compared, their line is already in flight — the win
  // shows on depth-4096 shapes that spill past L1. (A 4-ary variant was
  // measured slower here: with Floyd's refinement a binary sift does
  // log2(n) compares vs the 4-ary's 1.5*log2(n), and these queue depths
  // are cache-resident, so the halved height buys nothing.)
  for (;;) {
    const size_t first_child = 2 * hole + 1;
    if (first_child >= n) break;
    __builtin_prefetch(&heap_[std::min(4 * hole + 7, n - 1)]);
    const size_t second_child = first_child + 1;
    const size_t best =
        (second_child < n && Earlier(heap_[second_child], heap_[first_child]))
            ? second_child
            : first_child;
    heap_[hole] = heap_[best];
    hole = best;
  }
  SiftUp(hole, entry);
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  const HeapEntry entry = heap_.front();
  const HeapEntry displaced = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(displaced);
  ESR_CHECK(entry.at >= now_) << "time went backwards";
  now_ = entry.at;
  ++executed_;
  // The slot stays live across the call: a callback may re-entrantly
  // schedule (growing the pool — slot addresses are chunk-stable), and its
  // captures must survive its own execution. Destroy + recycle after.
  Slot& slot = SlotAt(entry.slot);
  slot.run(slot.callable);
  ReleaseSlot(entry.slot);
  return true;
}

void EventQueue::RunUntil(SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) RunOne();
  now_ = std::max(now_, until);
}

void EventQueue::RunAll(uint64_t max_events) {
  uint64_t n = 0;
  while (RunOne()) {
    if (max_events != 0 && ++n >= max_events) {
      ESR_LOG(kWarning) << "RunAll stopped after " << n << " events";
      return;
    }
  }
}

}  // namespace esr
