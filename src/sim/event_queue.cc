#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace esr {

void EventQueue::ScheduleAt(SimTime at, std::function<void()> fn) {
  events_.push(Event{std::max(at, now_), next_seq_++, std::move(fn)});
}

bool EventQueue::RunOne() {
  if (events_.empty()) return false;
  // priority_queue::top() is const; the function is moved out via a copy
  // of the handle. Events are small, this is fine for a simulator.
  Event event = events_.top();
  events_.pop();
  ESR_CHECK(event.at >= now_) << "time went backwards";
  now_ = event.at;
  ++executed_;
  event.fn();
  return true;
}

void EventQueue::RunUntil(SimTime until) {
  while (!events_.empty() && events_.top().at <= until) RunOne();
  now_ = std::max(now_, until);
}

void EventQueue::RunAll(uint64_t max_events) {
  uint64_t n = 0;
  while (RunOne()) {
    if (max_events != 0 && ++n >= max_events) {
      ESR_LOG(kWarning) << "RunAll stopped after " << n << " events";
      return;
    }
  }
}

}  // namespace esr
