#ifndef ESR_SIM_REPLICA_CLUSTER_H_
#define ESR_SIM_REPLICA_CLUSTER_H_

#include <memory>
#include <vector>

#include <string>

#include "obs/series.h"
#include "replication/replicated_database.h"
#include "sim/event_queue.h"
#include "sim/latency_model.h"
#include "sim/series_sampler.h"
#include "workload/generator.h"

namespace esr {

/// Configuration of a simulated replicated deployment: update clients run
/// the paper's update ETs against the primary; query clients run bounded
/// sum queries against the (lagging) replicas.
struct ReplicaClusterOptions {
  int update_clients = 4;
  int replica_query_clients = 4;
  ReplicationOptions replication;
  ServerOptions server;
  WorkloadSpec workload;
  LatencyModelOptions latency;
  /// Import budget of each replica query (checked against the replica's
  /// conservative divergence estimate).
  Inconsistency query_til = 10'000;
  /// Objects per replica query (drawn from the hot set, like the paper's
  /// sum queries).
  int query_objects = 20;
  /// Delay before a rejected replica query retries.
  double query_retry_ms = 50.0;
  double warmup_s = 3.0;
  double measure_s = 30.0;
  uint64_t seed = 1;
  /// See ClusterOptions::owns_trace: cleared for worker-pool runs so
  /// concurrent clusters never mutate the global recorder's time source.
  bool owns_trace = true;
  /// Per-window telemetry over warmup + measurement (see SeriesSampler);
  /// committed/aborted count the primary's update ETs, restarts count
  /// their resubmissions plus rejected replica-query retries.
  bool collect_series = false;
  double series_window_s = 1.0;
  std::string series_source;
};

/// Metrics of a replicated run over the measurement window.
struct ReplicaSimResult {
  int64_t primary_commits = 0;
  int64_t primary_aborts = 0;
  int64_t queries_attempted = 0;
  int64_t queries_admitted = 0;
  /// Averages over admitted queries.
  double avg_estimated_import = 0.0;
  double avg_true_import = 0.0;
  double elapsed_s = 0.0;

  double primary_throughput() const {
    return elapsed_s > 0 ? static_cast<double>(primary_commits) / elapsed_s
                         : 0.0;
  }
  double query_throughput() const {
    return elapsed_s > 0 ? static_cast<double>(queries_admitted) / elapsed_s
                         : 0.0;
  }
  double admitted_fraction() const {
    return queries_attempted > 0
               ? static_cast<double>(queries_admitted) /
                     static_cast<double>(queries_attempted)
               : 0.0;
  }

  /// Per-window telemetry series (empty unless
  /// ReplicaClusterOptions::collect_series was set).
  RunSeries series;
};

/// Discrete-event simulation of the replicated deployment: the conclusion's
/// future-work scenario, built on the primary engine + the asynchronous
/// replication layer. Replica queries cost no primary-server CPU — that is
/// the scaling argument for pushing bounded-inconsistency reads to
/// replicas.
class ReplicaCluster {
 public:
  explicit ReplicaCluster(const ReplicaClusterOptions& options);
  ~ReplicaCluster();  // defined out of line; client types are incomplete here

  ReplicaSimResult Run();

  ReplicatedDatabase& database() { return *db_; }

 private:
  class UpdateClient;
  class QueryClient;

  ReplicaClusterOptions options_;
  EventQueue queue_;
  std::unique_ptr<ReplicatedDatabase> db_;
  std::unique_ptr<LatencyModel> latency_;
  std::vector<std::unique_ptr<UpdateClient>> update_clients_;
  std::vector<std::unique_ptr<QueryClient>> query_clients_;
  /// Telemetry collector (nullptr unless options_.collect_series); a
  /// member so active transactions' probe pointers into its tracker stay
  /// valid for the cluster's lifetime.
  std::unique_ptr<SeriesSampler> sampler_;
};

}  // namespace esr

#endif  // ESR_SIM_REPLICA_CLUSTER_H_
