#ifndef ESR_SIM_SERIES_SAMPLER_H_
#define ESR_SIM_SERIES_SAMPLER_H_

#include <functional>
#include <string>
#include <vector>

#include "hierarchy/accumulator.h"
#include "obs/series.h"
#include "sim/event_queue.h"
#include "txn/server.h"

namespace esr {

class StreamCertifier;

struct SeriesSamplerOptions {
  /// Virtual-time window length; the fixed ~1 s telemetry grain.
  double window_s = 1.0;
  /// Free-form provenance recorded in the exported series.
  std::string source;
};

/// Per-window telemetry collector for a simulated run: at every window
/// boundary of virtual time it reads the driver's cumulative workload
/// counters, turns the delta into one SeriesWindow (committed/aborted
/// txns, restarts, active MPL, mean op latency), reads the per-node
/// epsilon-headroom extrema out of its NodeHeadroomTracker, and resets
/// the tracker for the next window.
///
/// Decoupled from the driver through CumulativeFn so both Cluster (MPL
/// SimClients) and ReplicaCluster (update + replica-query clients) feed
/// it: the callback returns monotonically growing totals and the sampler
/// does the windowing.
///
/// Purely observational: sampling events only read state (and reset the
/// tracker's window extrema), so interleaving them into the event queue
/// never perturbs transaction scheduling — a sampled run's workload
/// results are byte-identical to an unsampled run's. Where a sampling
/// event ties with a workload event the queue's FIFO tie-break keeps the
/// order deterministic.
///
/// The windows vector is sized up front from the planned run length and
/// per-window node readings reuse the tracker's fixed slots — after
/// ScheduleWindows the sampling path performs no allocation beyond each
/// window's pre-sized node vector. Under ESR_TRACE_DISABLED the charge
/// probes are compiled out, so scalar window stats still fill but node
/// headroom stays at defaults (no charges).
class SeriesSampler {
 public:
  /// Cumulative (run-so-far) workload totals, sampled at each boundary.
  struct Cumulative {
    int64_t committed = 0;
    int64_t aborted = 0;
    /// Resubmissions after an abort; drivers that resubmit every abort
    /// report aborted here too.
    int64_t restarts = 0;
    /// Operation RPC round trips and their total latency (µs); zero when
    /// the driver does not track op latency (mean reports as 0).
    int64_t op_responses = 0;
    int64_t op_latency_total_us = 0;
  };
  using CumulativeFn = std::function<Cumulative()>;

  /// `queue` and `server` must outlive the sampler; the sampler attaches
  /// its tracker to the server's engine and detaches in its destructor.
  SeriesSampler(EventQueue* queue, Server* server, CumulativeFn cumulative,
                SeriesSamplerOptions options);
  ~SeriesSampler();

  SeriesSampler(const SeriesSampler&) = delete;
  SeriesSampler& operator=(const SeriesSampler&) = delete;

  /// Schedules one sampling event per window boundary over [0, end_s]
  /// virtual seconds (ceil(end_s / window_s) windows) and pre-sizes the
  /// series. Call once, before EventQueue::RunUntil.
  void ScheduleWindows(double end_s);

  /// The exact virtual instants ScheduleWindows placed sampling events
  /// at. A boundary reads every client's counters — cross-lane state —
  /// so the lane-parallel cluster must end a conservative run at each
  /// one (LaneExecutor checkpoint phase) for the read to be safe and
  /// worker-count independent.
  const std::vector<SimTime>& boundaries() const { return boundaries_; }

  /// The collected series (after the run). Windows the clock never
  /// reached stay absent: the series length reflects simulated time.
  RunSeries TakeSeries();

  /// Aligns a streaming certifier with the telemetry windows: at each
  /// boundary the sampler advances the certifier's watermark to virtual
  /// now and stamps its certified-through gauge into the window. Call
  /// before ScheduleWindows; nullptr detaches.
  void set_certifier(StreamCertifier* certifier) { certifier_ = certifier; }

 private:
  void Sample(size_t window_index);

  EventQueue* queue_;
  Server* server_;
  CumulativeFn cumulative_;
  SeriesSamplerOptions options_;
  StreamCertifier* certifier_ = nullptr;
  std::vector<SimTime> boundaries_;
  NodeHeadroomTracker tracker_;
  Cumulative prev_;
  double prev_time_s_ = 0.0;
  RunSeries series_;
};

}  // namespace esr

#endif  // ESR_SIM_SERIES_SAMPLER_H_
