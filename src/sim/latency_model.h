#ifndef ESR_SIM_LATENCY_MODEL_H_
#define ESR_SIM_LATENCY_MODEL_H_

#include <vector>

#include "common/random.h"
#include "common/timestamp.h"
#include "sim/event_queue.h"

namespace esr {

/// Timing parameters of the simulated client/server substrate, calibrated
/// to the prototype's measurements (Sec. 6): "A null RPC call takes about
/// 11 milliseconds to return while the average RPC call takes somewhere
/// between 17 and 20 milliseconds."
struct LatencyModelOptions {
  /// Round trip of an RPC that carries no operation payload
  /// (Begin/Commit/Abort acknowledgements).
  double null_rpc_ms = 11.0;
  /// Network + marshalling round trip of a Read/Write RPC, uniformly
  /// distributed over [min, max]; server CPU time is charged separately,
  /// so the total op latency lands in the prototype's measured 17-20 ms.
  double op_rpc_min_ms = 14.0;
  double op_rpc_max_ms = 16.5;
  /// Delay before a client re-issues an operation that was told to wait
  /// for an uncommitted writer (the wait-based strict-ordering protocol is
  /// client-polled over synchronous RPC).
  double wait_retry_ms = 5.0;
  /// Client-side turnaround between an abort response and the resubmission
  /// with a fresh timestamp ("aborts with immediate restarts").
  double restart_delay_ms = 1.0;
  /// Pure server CPU cost per operation; the server is a shared FIFO
  /// resource, so ops queue when it is busy. 3.5 ms/op caps the server
  /// near 286 ops/s — deliberately below the prototype's multithreaded
  /// capacity — so that wasted work from aborts, retries, and wait-polls
  /// pushes the system past the knee (thrashing) within MPL <= 10, as
  /// the paper's higher natural conflict ratio did. See DESIGN.md §4b.
  double server_cpu_per_op_ms = 3.5;
};

/// Samples message/processing delays and models the server CPU as a
/// single FIFO resource.
///
/// Sampling streams: the shared no-argument Sample* overloads draw from
/// one stream (fine for single-queue drivers like ReplicaCluster). The
/// per-site overloads draw from an independent stream per SiteId — the
/// lane-parallel cluster needs them, because with one stream the draw
/// order would depend on how lane events interleave across rounds. Each
/// site's stream is a deterministic function of (seed, site) only.
class LatencyModel {
 public:
  /// `num_sites` sizes the per-site stream table (site ids 0..num_sites-1
  /// are valid for the per-site overloads; 0 means shared-stream only).
  LatencyModel(const LatencyModelOptions& options, uint64_t seed,
               size_t num_sites = 0);

  /// Network + marshalling round-trip for an operation RPC, *excluding*
  /// server CPU (use ReserveServerCpu for that part).
  SimTime SampleOpRpc();
  SimTime SampleOpRpc(SiteId site);

  /// Round trip of a control RPC (Begin/Commit/Abort), with small jitter.
  SimTime SampleControlRpc();
  SimTime SampleControlRpc(SiteId site);

  SimTime WaitRetryDelay() const;
  SimTime RestartDelay() const;

  /// Reserves the server CPU for one op starting no earlier than
  /// `request_arrival`; returns the completion time of the server work.
  /// Shared-resource state: in the lane-parallel cluster only server-lane
  /// events may call this.
  SimTime ReserveServerCpu(SimTime request_arrival);

  /// Strict lower bound on every one-way cross-site leg the simulated
  /// clients produce (request and response halves of control and
  /// operation RPCs), minus a small guard for integer truncation. The
  /// lane executor uses it as its conservative lookahead. Static so the
  /// cluster can size its executor before the model exists.
  static SimTime MinCrossSiteDelayMicros(const LatencyModelOptions& options);
  SimTime MinCrossSiteDelayMicros() const {
    return MinCrossSiteDelayMicros(options_);
  }

  const LatencyModelOptions& options() const { return options_; }

 private:
  Rng& SiteRng(SiteId site);

  LatencyModelOptions options_;
  Rng rng_;
  std::vector<Rng> site_rngs_;
  SimTime server_busy_until_ = 0;
};

}  // namespace esr

#endif  // ESR_SIM_LATENCY_MODEL_H_
