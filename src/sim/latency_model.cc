#include "sim/latency_model.h"

#include <algorithm>

#include "common/logging.h"

namespace esr {
namespace {

SimTime MsToMicros(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMicrosPerMilli));
}

}  // namespace

LatencyModel::LatencyModel(const LatencyModelOptions& options, uint64_t seed,
                           size_t num_sites)
    : options_(options), rng_(seed) {
  site_rngs_.reserve(num_sites);
  for (size_t i = 0; i < num_sites; ++i) site_rngs_.push_back(rng_.Fork());
}

Rng& LatencyModel::SiteRng(SiteId site) {
  ESR_CHECK(static_cast<size_t>(site) < site_rngs_.size())
      << "no latency stream for site " << site;
  return site_rngs_[site];
}

SimTime LatencyModel::SampleOpRpc() {
  const double ms =
      rng_.UniformDouble(options_.op_rpc_min_ms, options_.op_rpc_max_ms);
  return MsToMicros(ms);
}

SimTime LatencyModel::SampleOpRpc(SiteId site) {
  const double ms = SiteRng(site).UniformDouble(options_.op_rpc_min_ms,
                                                options_.op_rpc_max_ms);
  return MsToMicros(ms);
}

SimTime LatencyModel::SampleControlRpc() {
  // +/- 10% jitter around the null-RPC figure.
  const double ms = options_.null_rpc_ms *
                    rng_.UniformDouble(0.9, 1.1);
  return MsToMicros(ms);
}

SimTime LatencyModel::SampleControlRpc(SiteId site) {
  const double ms =
      options_.null_rpc_ms * SiteRng(site).UniformDouble(0.9, 1.1);
  return MsToMicros(ms);
}

SimTime LatencyModel::WaitRetryDelay() const {
  return MsToMicros(options_.wait_retry_ms);
}

SimTime LatencyModel::RestartDelay() const {
  return MsToMicros(options_.restart_delay_ms);
}

SimTime LatencyModel::ReserveServerCpu(SimTime request_arrival) {
  const SimTime start = std::max(request_arrival, server_busy_until_);
  server_busy_until_ = start + MsToMicros(options_.server_cpu_per_op_ms);
  return server_busy_until_;
}

SimTime LatencyModel::MinCrossSiteDelayMicros(
    const LatencyModelOptions& options) {
  // The shortest one-way leg is half the shortest round trip: control
  // RPCs bottom out at 0.9 * null_rpc (the jitter floor), operation RPCs
  // at op_rpc_min. Integer truncation in MsToMicros and the request/
  // response split (rpc/2, rpc - rpc/2) can shave a few microseconds off
  // the analytic floor, so keep a guard below it; clamp at 1 so the
  // executor always makes progress.
  const SimTime min_round_trip =
      std::min(MsToMicros(0.9 * options.null_rpc_ms),
               MsToMicros(options.op_rpc_min_ms));
  return std::max<SimTime>(1, min_round_trip / 2 - 8);
}

}  // namespace esr
