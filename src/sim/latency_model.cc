#include "sim/latency_model.h"

#include <algorithm>

namespace esr {
namespace {

SimTime MsToMicros(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMicrosPerMilli));
}

}  // namespace

LatencyModel::LatencyModel(const LatencyModelOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {}

SimTime LatencyModel::SampleOpRpc() {
  const double ms =
      rng_.UniformDouble(options_.op_rpc_min_ms, options_.op_rpc_max_ms);
  return MsToMicros(ms);
}

SimTime LatencyModel::SampleControlRpc() {
  // +/- 10% jitter around the null-RPC figure.
  const double ms = options_.null_rpc_ms *
                    rng_.UniformDouble(0.9, 1.1);
  return MsToMicros(ms);
}

SimTime LatencyModel::WaitRetryDelay() const {
  return MsToMicros(options_.wait_retry_ms);
}

SimTime LatencyModel::RestartDelay() const {
  return MsToMicros(options_.restart_delay_ms);
}

SimTime LatencyModel::ReserveServerCpu(SimTime request_arrival) {
  const SimTime start = std::max(request_arrival, server_busy_until_);
  server_busy_until_ = start + MsToMicros(options_.server_cpu_per_op_ms);
  return server_busy_until_;
}

}  // namespace esr
