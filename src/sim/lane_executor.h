#ifndef ESR_SIM_LANE_EXECUTOR_H_
#define ESR_SIM_LANE_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace esr {

/// Conservative parallel discrete-event executor: one EventQueue per
/// simulated site (lane 0 is the server, lanes 1..MPL the client
/// workstations), synchronized by the classic conservative-lookahead rule.
/// Cross-site interactions are RPC legs with a known minimum latency L,
/// so events within a window of L virtual time past the globally earliest
/// pending event can never be affected by a message that has not been
/// sent yet — lanes may execute that window concurrently.
///
/// The round loop RunUntil drives:
///   1. drain every lane's inbox in the canonical (time, origin lane,
///      origin sequence) order,
///   2. next = min over lanes of the earliest pending event,
///   3. horizon = min(next + L, until) — the safe window,
///   4. every lane with an event below the horizon runs it (and any
///      others in the window), in parallel across up to `workers`
///      threads; idle lanes are skipped, their clocks catch up lazily,
///   5. barrier; repeat until no event remains below `until`, then run
///      the events at exactly `until` serially in lane order (the
///      checkpoint phase — see below).
///
/// Determinism contract (mirrors the bench harness's --jobs rule): the
/// lane structure is fixed by the cluster topology, never by the worker
/// count, and lanes share no order-dependent state — server state is
/// touched only by lane-0 events, client state only by its own site's
/// chain (the client is synchronous: one outstanding event per site
/// system-wide). Cross-lane sends are merged in a canonical order before
/// they receive queue sequence numbers. Results are therefore
/// byte-identical for every `--lanes` value, including 1; `--lanes N`
/// only changes how many worker threads execute each round.
///
/// The exception to "no shared readers" is observation: the series
/// sampler reads every client's counters at its window boundaries, and
/// the cluster snapshots them at the warm-up and measurement edges. Those
/// instants are checkpoints: the caller ends a RunUntil exactly there, so
/// the boundary events run in the serial phase — after every lane has
/// finished all strictly-earlier work, in fixed lane order — and observe
/// the same state no matter how many workers ran the rounds before.
///
/// The round loop runs once per lookahead window of dense virtual time —
/// millions of times per long run — so the whole message path is built
/// to stay off the allocator: payloads are trivially copyable captures
/// stored inline in POD Message slots (no std::function), per-origin
/// dirty lists make the drain O(pending messages) instead of
/// O(lanes^2), and idle lanes cost nothing per round.
class LaneExecutor {
 public:
  /// `lookahead` is the conservative window L: a strict lower bound on
  /// the virtual delay of every cross-lane send (DrainInboxes checks it).
  LaneExecutor(size_t num_lanes, SimTime lookahead);
  ~LaneExecutor();

  LaneExecutor(const LaneExecutor&) = delete;
  LaneExecutor& operator=(const LaneExecutor&) = delete;

  size_t num_lanes() const { return lanes_.size(); }
  SimTime lookahead() const { return lookahead_; }

  EventQueue& lane(size_t i) { return *lanes_[i]; }
  const EventQueue& lane(size_t i) const { return *lanes_[i]; }

  /// Worker threads per round; clamped to [1, num_lanes]. 1 (the
  /// default) runs every lane inline on the calling thread — same
  /// algorithm, no pool. Call between runs, not from inside one.
  void set_workers(int workers);
  int workers() const { return workers_; }

  /// Cross-lane message: runs `fn` on lane `to` at virtual time `at`.
  /// Must be called from an event executing on lane `from` (or from the
  /// coordinator between rounds). The delivery must respect the
  /// lookahead: at >= sender's now + lookahead, checked at drain time.
  ///
  /// `fn` must be trivially copyable (lambdas capturing PODs and
  /// pointers are) and fit the inline payload slot: messages live in
  /// relocatable vectors and are copied once more into the destination
  /// queue, so this path never touches the allocator in steady state —
  /// the property that lets a million-round run afford cross-lane RPC
  /// for every op. Widen kMaxPayloadBytes if a capture outgrows it.
  template <typename Fn>
  void Send(size_t from, size_t to, SimTime at, Fn&& fn) {
    using Callback = std::decay_t<Fn>;
    static_assert(std::is_invocable_v<const Callback&>,
                  "cross-lane messages take no arguments");
    static_assert(std::is_trivially_copyable_v<Callback>,
                  "cross-lane payloads must be trivially copyable");
    static_assert(sizeof(Callback) <= kMaxPayloadBytes,
                  "cross-lane payload exceeds the inline message slot");
    static_assert(alignof(Callback) <= alignof(void*),
                  "cross-lane payload is over-aligned for the inline slot");
    std::vector<Message>& cell = inbox_[to][from];
    origin_mailed_[from] = 1;
    if (cell.empty()) dirty_[from].push_back(to);
    cell.emplace_back();
    Message& msg = cell.back();
    msg.at = at;
    ::new (static_cast<void*>(msg.payload)) Callback(std::forward<Fn>(fn));
    msg.invoke = [](const void* payload) {
      (*static_cast<const Callback*>(payload))();
    };
  }

  /// Runs every lane up to and including `until` (all lane clocks read
  /// `until` afterwards). Events at exactly `until` run in the serial
  /// checkpoint phase; end a run at every instant where cross-lane state
  /// is observed (series windows, warm-up edge, measurement edge).
  void RunUntil(SimTime until);

  /// Virtual now of the lane currently executing (the serial paths keep
  /// it exact; parallel rounds run with tracing off, where this is only
  /// a round-level approximation). Trace time-source hook.
  SimTime CurrentNow() const { return lanes_[current_lane_]->now(); }

 private:
  /// Inline payload budget: the destination queue's erased-callback
  /// capacity (56 bytes; the largest simulator capture, [this, OpResult],
  /// exactly fills it).
  static constexpr size_t kMaxPayloadBytes = EventQueue::kErasedPayloadBytes;

  /// One cross-lane message: POD, safe to relocate with the vector.
  /// Payloads are trivially destructible (enforced by Send), so clearing
  /// a cell never needs to run destructors. Pointer alignment only — an
  /// over-aligned payload would pad the destination queue's inline slot
  /// past capacity and push every delivery onto the oversize path.
  struct Message {
    SimTime at;
    void (*invoke)(const void* payload);
    unsigned char payload[kMaxPayloadBytes];
  };

  /// Moves every pending inbox message into its destination queue, merged
  /// across origin lanes by (time, origin lane, origin order). Sequence
  /// numbers — the queues' tie-break — are assigned in that canonical
  /// order, so scheduling is independent of which worker ran which lane.
  /// Cost is O(pending messages): origins record which destinations they
  /// mailed (dirty_), and untouched inbox cells are never visited.
  void DrainInboxes();
  /// One parallel round: every lane with work runs its events with time
  /// <= target. Lanes whose next event is later are skipped entirely;
  /// their clocks jump forward when they next run (no event observes the
  /// intermediate values, so the schedule is unchanged).
  void RunLanes(SimTime target);
  void StartPool();
  void StopPool();
  void WorkerLoop();

  std::vector<std::unique_ptr<EventQueue>> lanes_;
  /// inbox_[to][from]: only lane `from`'s executing thread appends during
  /// a round; only the coordinator drains, at a barrier.
  std::vector<std::vector<std::vector<Message>>> inbox_;
  /// dirty_[from]: destinations lane `from` has mailed since the last
  /// drain. Same single-writer rule as the inbox cells.
  std::vector<std::vector<size_t>> dirty_;
  /// origin_mailed_[from]: set by Send, cleared by the drain. The drain
  /// scans this flat byte array eight origins per load instead of
  /// touching every origin's dirty-list header — the common round has
  /// mail from at most a couple of origins, and the scan runs once per
  /// round (millions of times per run). Sized to a multiple of 8 so the
  /// word loads never read past the end; same single-writer-per-origin
  /// rule as the inbox cells (distinct bytes, so no data race).
  std::vector<unsigned char> origin_mailed_;
  /// Drain scratch: destinations with pending mail (dedup via the flag)
  /// and, per destination, the ascending list of origins that mailed it —
  /// so the merge only walks cells that actually hold messages, and the
  /// one-origin/one-message case (most rounds) skips the merge entirely.
  std::vector<size_t> dirty_dests_;
  std::vector<unsigned char> dest_has_mail_;
  std::vector<std::vector<size_t>> dest_origins_;
  /// Cached per-lane NextEventTime, the round loop's working set: the
  /// min-scan and the active-lane selection read this flat array instead
  /// of dereferencing into every queue's heap twice per round. Entries
  /// change only when a lane runs or receives mail, so DrainInboxes and
  /// RunLanes refresh exactly those; RunUntil rebuilds the whole array on
  /// entry (setup code schedules directly on lanes between runs).
  std::vector<SimTime> next_cache_;
  SimTime lookahead_;
  int workers_ = 1;
  size_t current_lane_ = 0;

  /// Scratch for DrainInboxes' canonical merge (kept to avoid per-round
  /// allocation): (time, origin lane, index in origin vector).
  struct MergeRef {
    SimTime at;
    size_t from;
    size_t index;
  };
  std::vector<MergeRef> merge_scratch_;

  // Worker pool (only started once set_workers(>1) takes effect). The
  // mutex hand-offs at round start/end give the happens-before edges
  // between a lane's state in round k (written by worker A) and round
  // k+1 (read by worker B). Workers pull lane indices from
  // active_lanes_, the subset of lanes with events in this round.
  std::vector<size_t> active_lanes_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  SimTime round_target_ = 0;
  size_t next_active_ = 0;
  size_t lanes_remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace esr

#endif  // ESR_SIM_LANE_EXECUTOR_H_
