#ifndef ESR_SIM_CLIENT_H_
#define ESR_SIM_CLIENT_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/timestamp.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/lane_executor.h"
#include "sim/latency_model.h"
#include "sim/skewed_clock.h"
#include "txn/server.h"
#include "workload/generator.h"

namespace esr {

/// Per-client counters; the cluster aggregates them over the measurement
/// window to produce the figures' metrics.
struct ClientStats {
  int64_t committed = 0;
  int64_t committed_query = 0;
  int64_t committed_update = 0;
  /// Server-side aborts observed (== resubmissions, "retries").
  int64_t aborts = 0;
  /// Successfully executed operations (reads + writes), including those
  /// belonging to attempts that later aborted — the Fig. 10 metric.
  int64_t ops_executed = 0;
  /// Split of ops_executed by the issuing transaction's type; feeds the
  /// per-class waste analysis of Fig. 13.
  int64_t ops_query = 0;
  int64_t ops_update = 0;
  /// Operations that succeeded after viewing inconsistency (Fig. 8).
  int64_t inconsistent_ops = 0;
  /// Wait responses (strict-ordering stalls).
  int64_t waits = 0;
  /// Total inconsistency imported by committed query ETs.
  double import_total = 0.0;
  /// Total inconsistency exported by committed update ETs.
  double export_total = 0.0;
  /// Sum of (commit time - first submission time) over committed txns, µs.
  int64_t txn_latency_total_us = 0;
  /// Operation RPC round trips completed (any verdict) and their total
  /// issue-to-response latency, µs — the telemetry sampler's per-window
  /// mean-op-latency numerator/denominator.
  int64_t op_responses = 0;
  int64_t op_latency_total_us = 0;

  ClientStats& operator-=(const ClientStats& other);
};

/// One simulated client workstation (Sec. 6): reads transactions from its
/// generated load, submits operations to the server over synchronous RPC,
/// retries operations told to wait, and resubmits aborted transactions
/// with a new timestamp until they complete.
///
/// Lane placement: the client's own thinking (timestamp assignment, retry
/// timers, response handling, its stats) happens on its site's lane; the
/// server half of every RPC (Begin, operation execution under the shared
/// CPU, Commit) happens on the server lane. Each RPC is two cross-lane
/// legs — request travel to the server, response travel back — so the
/// lane executor's conservative window always has at least one leg of
/// slack. The client is strictly synchronous (one outstanding event per
/// site in the whole system), so its state needs no locking: the chain
/// alternates between its lane and the server lane, never overlapping
/// itself.
class SimClient {
 public:
  /// `lane` is this client's lane index in `lanes` (the cluster uses the
  /// site id); `server_lane` is where the server lives (lane 0).
  SimClient(SiteId site, Server* server, LaneExecutor* lanes, size_t lane,
            size_t server_lane, LatencyModel* latency,
            WorkloadGenerator generator, SkewedClock clock);

  SimClient(const SimClient&) = delete;
  SimClient& operator=(const SimClient&) = delete;

  /// Schedules the first transaction submission at `start_at`.
  void Start(SimTime start_at);

  const ClientStats& stats() const { return stats_; }
  SiteId site() const { return site_; }

  /// Commit-latency distribution (ms) since the last reset. The cluster
  /// resets it at the end of warm-up so the merged run-level histogram
  /// covers exactly the measurement window (histograms, unlike the
  /// counters above, cannot be delta-subtracted).
  const Histogram& latency_histogram() const { return latency_ms_; }
  void ResetLatencyHistogram() { latency_ms_.Reset(); }

 private:
  // The client is strictly synchronous (one outstanding RPC), so these
  // steps chain through scheduled events without any reentrancy.
  void SubmitNextTransaction();
  void BeginCurrentTransaction();
  void IssueCurrentOp();
  /// Runs at the server once the request has arrived and a CPU slot is
  /// free; sends the response back.
  void ExecuteOpAtServer(SimTime response_travel);
  void HandleOpResult(const OpResult& result);
  void IssueCommit();
  /// The value a write op sends, derived from this attempt's reads.
  Value WriteValueFor(const ScriptOp& op) const;

  /// This client's own event queue.
  EventQueue& lane_queue() { return lanes_->lane(lane_); }
  EventQueue& server_queue() { return lanes_->lane(server_lane_); }

  SiteId site_;
  Server* server_;
  LaneExecutor* lanes_;
  size_t lane_;
  size_t server_lane_;
  LatencyModel* latency_;
  WorkloadGenerator generator_;
  SkewedClock clock_;
  TimestampGenerator ts_gen_;

  TxnScript script_;
  TxnId txn_ = kInvalidTxnId;
  /// Causal-span plumbing across event-queue callbacks: the server-side
  /// transaction span (parent for this client's RPC spans) and the RPC
  /// span currently in flight. The BEGIN control RPC itself is not
  /// spanned — its TxnId does not exist until the server executes it.
  uint64_t txn_span_ = 0;
  uint64_t rpc_span_ = 0;
  size_t op_index_ = 0;
  std::vector<Value> read_results_;
  SimTime first_submit_at_ = 0;
  /// Issue instant of the op RPC in flight, for per-op latency.
  SimTime op_issued_at_ = 0;
  /// Inconsistency imported/exported by the current attempt's OK ops;
  /// folded into stats_ only if the attempt commits.
  double attempt_inconsistency_ = 0.0;

  ClientStats stats_;
  Histogram latency_ms_;
};

}  // namespace esr

#endif  // ESR_SIM_CLIENT_H_
