#ifndef ESR_SIM_EVENT_QUEUE_H_
#define ESR_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace esr {

/// Virtual time in microseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kMicrosPerMilli = 1000;
inline constexpr SimTime kMicrosPerSecond = 1'000'000;

/// Deterministic discrete-event simulation kernel: a priority queue of
/// (time, callback) events and a virtual clock. Ties are broken in
/// scheduling order (FIFO), so runs are exactly reproducible.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  void ScheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` after a relative delay.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs the earliest event; false when the queue is empty.
  bool RunOne();

  /// Runs events until virtual time exceeds `until` or the queue drains.
  void RunUntil(SimTime until);

  /// Drains the queue completely (bounded by `max_events` as a runaway
  /// guard; 0 means unbounded).
  void RunAll(uint64_t max_events = 0);

  size_t pending() const { return events_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace esr

#endif  // ESR_SIM_EVENT_QUEUE_H_
