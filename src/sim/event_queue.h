#ifndef ESR_SIM_EVENT_QUEUE_H_
#define ESR_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace esr {

/// Virtual time in microseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kMicrosPerMilli = 1000;
inline constexpr SimTime kMicrosPerSecond = 1'000'000;

/// Sentinel returned by EventQueue::NextEventTime() when no event is
/// pending; larger than every real time so min() folds over lanes work.
inline constexpr SimTime kNoPendingEvent = INT64_MAX;

/// Deterministic discrete-event simulation kernel: a priority queue of
/// (time, callback) events and a virtual clock. Ties are broken in
/// scheduling order (FIFO), so runs are exactly reproducible.
///
/// The hot path is allocation-free in steady state. Callbacks are stored
/// in pooled slots with a small inline buffer (no std::function, no
/// per-event heap allocation for ordinary lambda captures); callables
/// larger than the inline buffer spill to a per-slot heap block that is
/// recycled together with the slot, so even the oversize path stops
/// allocating once the pool is warm. The priority queue orders small POD
/// (time, seq, slot) triples — sift operations move 24 bytes, not a fat
/// type-erased functor. Slots live in fixed-size chunks, so a stored
/// callable never moves once constructed (safe for self-referential
/// captures) and slot indices stay valid across pool growth.
class EventQueue {
 public:
  EventQueue() = default;
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now).
  /// Re-entrant: callbacks may schedule further events, including at the
  /// running event's own timestamp (they run after every event already
  /// queued for that timestamp, preserving the FIFO tie-break).
  /// Move-only callables are accepted.
  template <typename Fn>
  void ScheduleAt(SimTime at, Fn&& fn) {
    using Callback = std::decay_t<Fn>;
    static_assert(std::is_invocable_v<Callback&>,
                  "EventQueue callbacks take no arguments");
    const uint32_t index = AcquireSlot();
    Slot& slot = SlotAt(index);
    void* storage;
    if constexpr (sizeof(Callback) <= kInlineCallbackBytes &&
                  alignof(Callback) <= alignof(std::max_align_t)) {
      storage = slot.inline_storage;
    } else {
      storage = OversizeStorage(slot, sizeof(Callback), alignof(Callback));
    }
    slot.callable = ::new (storage) Callback(std::forward<Fn>(fn));
    // Fused call+destructor keeps the hot path at one indirect call per
    // event; `destroy` alone is only for events still pending at queue
    // destruction.
    slot.run = [](void* callable) {
      Callback* cb = static_cast<Callback*>(callable);
      (*cb)();
      cb->~Callback();
    };
    slot.destroy = [](void* callable) { static_cast<Callback*>(callable)->~Callback(); };
    PushEntry(at, index);
  }

  /// Schedules `fn` after a relative delay.
  template <typename Fn>
  void ScheduleAfter(SimTime delay, Fn&& fn) {
    ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  /// Payload capacity of ScheduleErased: the inline slot minus the
  /// invoke pointer stored alongside it.
  static constexpr size_t kErasedPayloadBytes = 56;

  /// Type-erased fast path for pre-erased callbacks (the lane executor's
  /// cross-lane deliveries): copies kErasedPayloadBytes of `payload`
  /// inline and runs `invoke(payload)` at `at`. Equivalent to wrapping
  /// (invoke, payload) in a callable and passing it to ScheduleAt, minus
  /// the intermediate wrapper copy — this path runs tens of millions of
  /// times per long parallel-lane run.
  void ScheduleErased(SimTime at, void (*invoke)(const void* payload),
                      const void* payload) {
    const uint32_t index = AcquireSlot();
    Slot& slot = SlotAt(index);
    auto* call =
        ::new (static_cast<void*>(slot.inline_storage)) ErasedCall;
    call->invoke = invoke;
    __builtin_memcpy(call->payload, payload, kErasedPayloadBytes);
    slot.callable = call;
    slot.run = [](void* callable) {
      auto* erased = static_cast<ErasedCall*>(callable);
      erased->invoke(erased->payload);
    };
    // ErasedCall is trivially destructible.
    slot.destroy = [](void*) {};
    PushEntry(at, index);
  }

  /// Runs the earliest event; false when the queue is empty.
  bool RunOne();

  /// Runs events until virtual time exceeds `until` or the queue drains.
  void RunUntil(SimTime until);

  /// Drains the queue completely (bounded by `max_events` as a runaway
  /// guard; 0 means unbounded).
  void RunAll(uint64_t max_events = 0);

  size_t pending() const { return heap_.size(); }
  uint64_t executed() const { return executed_; }

  /// Time of the earliest pending event, or kNoPendingEvent when empty.
  /// The conservative lane executor folds this across lanes to compute
  /// the global safe horizon.
  SimTime NextEventTime() const {
    return heap_.empty() ? kNoPendingEvent : heap_.front().at;
  }

 private:
  /// Inline capture budget. Covers every simulator callback (the largest,
  /// [this, OpResult], is 56 bytes) and a small-buffer std::function;
  /// larger callables take the recycled oversize path.
  static constexpr size_t kInlineCallbackBytes = 64;

  /// The in-slot layout of a ScheduleErased callback; exactly fills the
  /// inline buffer.
  struct ErasedCall {
    void (*invoke)(const void* payload);
    unsigned char payload[kErasedPayloadBytes];
  };
  static_assert(sizeof(ErasedCall) == kInlineCallbackBytes,
                "erased payload must exactly fill the inline slot");
  /// Slots per pool chunk. Chunked storage keeps slot addresses stable
  /// while the pool grows (callables must never be memcpy'd).
  static constexpr uint32_t kSlotsPerChunk = 256;
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  using InvokeFn = void (*)(void* callable);
  using DestroyFn = void (*)(void* callable);

  /// One pooled callback holder. `callable` points into `inline_storage`
  /// or into the owned `heap_block` (oversize callables). The heap block
  /// is kept when the slot returns to the free list and reused by the
  /// next oversize callable that fits it.
  struct Slot {
    /// Invokes then destroys the callable (the RunOne path).
    InvokeFn run = nullptr;
    /// Destroys without invoking (pending events at queue destruction).
    DestroyFn destroy = nullptr;
    void* callable = nullptr;
    void* heap_block = nullptr;
    size_t heap_bytes = 0;
    size_t heap_align = 0;
    uint32_t next_free = kNoSlot;
    alignas(std::max_align_t) unsigned char inline_storage[kInlineCallbackBytes];
  };

  /// What the priority queue actually orders: 24 bytes of POD. The heap
  /// is a hand-rolled binary heap with Floyd's pop refinement and a
  /// two-levels-ahead sift-down prefetch (see SiftDown) — the depth-64+
  /// churn shapes are sift-bound, not allocation-bound. (at, seq) is a
  /// total order (seq is unique), so pop order — and therefore
  /// determinism — is independent of the heap's internal layout.
  struct HeapEntry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
  };
  /// "a runs before b": min time first, FIFO (sequence-number) tie-break
  /// — the determinism contract.
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  Slot& SlotAt(uint32_t index) {
    return chunks_[index / kSlotsPerChunk][index % kSlotsPerChunk];
  }

  /// Pops a slot from the free list, growing the pool by one chunk when
  /// every existing slot is live.
  uint32_t AcquireSlot();
  /// Returns a slot (callable already destroyed) to the free list.
  void ReleaseSlot(uint32_t index);
  /// Storage for a callable larger than the inline buffer: reuses the
  /// slot's existing heap block when it fits, else (re)allocates.
  void* OversizeStorage(Slot& slot, size_t bytes, size_t align);
  /// Clamps `at` to now, assigns the FIFO sequence number, and pushes the
  /// (time, seq, slot) triple.
  void PushEntry(SimTime at, uint32_t slot_index);
  /// Inserts `entry` (conceptually at `hole`) by walking toward the root.
  void SiftUp(size_t hole, HeapEntry entry);
  /// Re-seats `entry` (conceptually at the root) by walking toward the
  /// leaves, pulling up the earlier child at each level.
  void SiftDown(HeapEntry entry);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t allocated_slots_ = 0;
  uint32_t free_head_ = kNoSlot;
  std::vector<HeapEntry> heap_;
};

}  // namespace esr

#endif  // ESR_SIM_EVENT_QUEUE_H_
