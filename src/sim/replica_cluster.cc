#include "sim/replica_cluster.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "obs/trace.h"

namespace esr {
namespace {

int64_t VirtualNowMicros(void* ctx) {
  return static_cast<int64_t>(static_cast<EventQueue*>(ctx)->now());
}

}  // namespace

// ------------------------------------------------------- update client --

/// A synchronous primary client running the paper's update ETs through
/// the replication wrappers (so commits enter the propagation queues).
class ReplicaCluster::UpdateClient {
 public:
  UpdateClient(ReplicaCluster* cluster, SiteId site, uint64_t seed)
      : cluster_(cluster),
        generator_(cluster->options_.workload, seed),
        ts_gen_(site) {}

  void Start(SimTime at) {
    cluster_->queue_.ScheduleAt(at, [this] { BeginAttempt(); });
  }

  int64_t commits() const { return commits_; }
  int64_t aborts() const { return aborts_; }
  void Snapshot() {
    commits_at_snapshot_ = commits_;
    aborts_at_snapshot_ = aborts_;
  }
  int64_t commits_since_snapshot() const {
    return commits_ - commits_at_snapshot_;
  }
  int64_t aborts_since_snapshot() const {
    return aborts_ - aborts_at_snapshot_;
  }

 private:
  EventQueue& queue() { return cluster_->queue_; }
  LatencyModel& latency() { return *cluster_->latency_; }
  ReplicatedDatabase& db() { return *cluster_->db_; }

  void BeginAttempt() {
    if (fresh_script_) script_ = generator_.NextUpdate();
    fresh_script_ = false;
    const Timestamp ts = ts_gen_.Next(queue().now());
    queue().ScheduleAfter(latency().SampleControlRpc(), [this, ts] {
      txn_ = db().Begin(TxnType::kUpdate, ts, script_.bounds);
      op_index_ = 0;
      reads_.clear();
      IssueOp();
    });
  }

  void IssueOp() {
    db().AdvanceTo(queue().now());
    if (op_index_ >= script_.ops.size()) {
      queue().ScheduleAfter(latency().SampleControlRpc(), [this] {
        const Status status = db().Commit(txn_, queue().now());
        ESR_CHECK(status.ok()) << status.ToString();
        ++commits_;
        fresh_script_ = true;
        BeginAttempt();
      });
      return;
    }
    const SimTime rpc = latency().SampleOpRpc();
    queue().ScheduleAfter(rpc / 2, [this, rpc] {
      const SimTime done = latency().ReserveServerCpu(queue().now());
      queue().ScheduleAt(done, [this, rpc] {
        const ScriptOp& op = script_.ops[op_index_];
        OpResult r;
        if (op.kind == ScriptOp::Kind::kRead) {
          r = db().Read(txn_, op.object);
        } else {
          const WorkloadSpec& spec = cluster_->options_.workload;
          r = db().Write(
              txn_, op.object,
              ApplyDeltaReflecting(
                  reads_[static_cast<size_t>(op.source_read)], op.delta,
                  spec.min_value, spec.max_value));
        }
        queue().ScheduleAfter(rpc - rpc / 2, [this, r] { HandleResult(r); });
      });
    });
  }

  void HandleResult(const OpResult& r) {
    switch (r.kind) {
      case OpResult::Kind::kOk:
        if (script_.ops[op_index_].kind == ScriptOp::Kind::kRead) {
          reads_.push_back(r.value);
        }
        ++op_index_;
        IssueOp();
        return;
      case OpResult::Kind::kWait:
        queue().ScheduleAfter(latency().WaitRetryDelay(),
                              [this] { IssueOp(); });
        return;
      case OpResult::Kind::kAbort:
        ++aborts_;
        queue().ScheduleAfter(latency().RestartDelay(),
                              [this] { BeginAttempt(); });
        return;
    }
  }

  ReplicaCluster* cluster_;
  WorkloadGenerator generator_;
  TimestampGenerator ts_gen_;
  TxnScript script_;
  bool fresh_script_ = true;
  TxnId txn_ = kInvalidTxnId;
  size_t op_index_ = 0;
  std::vector<Value> reads_;
  int64_t commits_ = 0;
  int64_t aborts_ = 0;
  int64_t commits_at_snapshot_ = 0;
  int64_t aborts_at_snapshot_ = 0;
};

// -------------------------------------------------------- query client --

/// A dashboard client running bounded sum queries against one replica.
/// Replica reads are local to the replica machine: they cost one RPC
/// round trip but no primary CPU.
class ReplicaCluster::QueryClient {
 public:
  QueryClient(ReplicaCluster* cluster, int replica, uint64_t seed)
      : cluster_(cluster), replica_(replica), rng_(seed) {}

  void Start(SimTime at) {
    cluster_->queue_.ScheduleAt(at, [this] { IssueQuery(); });
  }

  int64_t attempted() const { return attempted_; }
  int64_t admitted() const { return admitted_; }
  void Snapshot() {
    attempted_at_snapshot_ = attempted_;
    admitted_at_snapshot_ = admitted_;
    estimated_at_snapshot_ = estimated_;
    true_at_snapshot_ = true_;
  }
  int64_t attempted_since_snapshot() const {
    return attempted_ - attempted_at_snapshot_;
  }
  int64_t admitted_since_snapshot() const {
    return admitted_ - admitted_at_snapshot_;
  }
  double estimated_since_snapshot() const {
    return estimated_ - estimated_at_snapshot_;
  }
  double true_since_snapshot() const { return true_ - true_at_snapshot_; }

 private:
  EventQueue& queue() { return cluster_->queue_; }

  void IssueQuery() {
    // One RPC to the replica covers the whole local scan. Latency is
    // drawn from the client's OWN stream so dashboard load never
    // perturbs the primary's (shared, seeded) latency stream — keeping
    // configurations comparable run to run.
    const LatencyModelOptions& lat = cluster_->options_.latency;
    const SimTime rpc = static_cast<SimTime>(
        rng_.UniformDouble(lat.op_rpc_min_ms, lat.op_rpc_max_ms) *
        kMicrosPerMilli);
    queue().ScheduleAfter(rpc, [this] {
      const ReplicaClusterOptions& options = cluster_->options_;
      cluster_->db_->AdvanceTo(queue().now());
      std::vector<ObjectId> objects;
      const size_t hot = options.workload.hot_set_size;
      while (objects.size() < static_cast<size_t>(options.query_objects) &&
             objects.size() < hot) {
        const ObjectId candidate = static_cast<ObjectId>(
            rng_.UniformInt(0, static_cast<int64_t>(hot) - 1));
        if (std::find(objects.begin(), objects.end(), candidate) ==
            objects.end()) {
          objects.push_back(candidate);
        }
      }
      ++attempted_;
      const auto q = cluster_->db_->ReplicaSumQuery(replica_, objects,
                                                    options.query_til);
      if (q.ok()) {
        ++admitted_;
        estimated_ += q->estimated_import;
        true_ += q->true_import;
        const SimTime think = static_cast<SimTime>(
            options.latency.null_rpc_ms * kMicrosPerMilli);
        queue().ScheduleAfter(think, [this] { IssueQuery(); });
      } else {
        queue().ScheduleAfter(static_cast<SimTime>(
                                  options.query_retry_ms * kMicrosPerMilli),
                              [this] { IssueQuery(); });
      }
    });
  }

  ReplicaCluster* cluster_;
  int replica_;
  Rng rng_;
  int64_t attempted_ = 0;
  int64_t admitted_ = 0;
  double estimated_ = 0.0;
  double true_ = 0.0;
  int64_t attempted_at_snapshot_ = 0;
  int64_t admitted_at_snapshot_ = 0;
  double estimated_at_snapshot_ = 0.0;
  double true_at_snapshot_ = 0.0;
};

// ------------------------------------------------------------- cluster --

ReplicaCluster::ReplicaCluster(const ReplicaClusterOptions& options)
    : options_(options) {
  ESR_CHECK(options_.update_clients >= 1);
  ESR_CHECK(options_.replica_query_clients >= 1);
  ServerOptions server = options_.server;
  server.store.num_objects = options_.workload.num_objects;
  server.store.min_value = options_.workload.min_value;
  server.store.max_value = options_.workload.max_value;
  server.store.seed = options_.seed ^ 0x5eedull;
  db_ = std::make_unique<ReplicatedDatabase>(options_.replication, server);

  Rng master(options_.seed);
  latency_ = std::make_unique<LatencyModel>(options_.latency,
                                            master.NextU64());
  for (int i = 0; i < options_.update_clients; ++i) {
    update_clients_.push_back(std::make_unique<UpdateClient>(
        this, static_cast<SiteId>(i + 1), master.NextU64()));
  }
  for (int i = 0; i < options_.replica_query_clients; ++i) {
    query_clients_.push_back(std::make_unique<QueryClient>(
        this, i % options_.replication.num_replicas, master.NextU64()));
  }
  if (options_.collect_series) {
    SeriesSamplerOptions sampler_options;
    sampler_options.window_s = options_.series_window_s;
    sampler_options.source = options_.series_source;
    sampler_ = std::make_unique<SeriesSampler>(
        &queue_, &db_->primary(),
        [this] {
          SeriesSampler::Cumulative total;
          for (const auto& client : update_clients_) {
            total.committed += client->commits();
            total.aborted += client->aborts();
            // Update clients resubmit every aborted attempt.
            total.restarts += client->aborts();
          }
          for (const auto& client : query_clients_) {
            // A rejected replica query is retried after a delay.
            total.restarts += client->attempted() - client->admitted();
          }
          return total;
        },
        sampler_options);
  }
}

ReplicaCluster::~ReplicaCluster() = default;

ReplicaSimResult ReplicaCluster::Run() {
  std::optional<ScopedTraceTimeSource> trace_clock;
  if (options_.owns_trace) {
    trace_clock.emplace(&VirtualNowMicros, &queue_);
  }
  for (size_t i = 0; i < update_clients_.size(); ++i) {
    update_clients_[i]->Start(static_cast<SimTime>(i) * 3 *
                              kMicrosPerMilli);
  }
  for (size_t i = 0; i < query_clients_.size(); ++i) {
    query_clients_[i]->Start(static_cast<SimTime>(i) * 5 *
                             kMicrosPerMilli);
  }
  if (sampler_ != nullptr) {
    sampler_->ScheduleWindows(options_.warmup_s + options_.measure_s);
  }

  const SimTime warmup_end =
      static_cast<SimTime>(options_.warmup_s * kMicrosPerSecond);
  queue_.RunUntil(warmup_end);
  for (auto& client : update_clients_) client->Snapshot();
  for (auto& client : query_clients_) client->Snapshot();

  queue_.RunUntil(warmup_end + static_cast<SimTime>(options_.measure_s *
                                                    kMicrosPerSecond));

  ReplicaSimResult result;
  result.elapsed_s = options_.measure_s;
  for (const auto& client : update_clients_) {
    result.primary_commits += client->commits_since_snapshot();
    result.primary_aborts += client->aborts_since_snapshot();
  }
  double estimated = 0, truth = 0;
  for (const auto& client : query_clients_) {
    result.queries_attempted += client->attempted_since_snapshot();
    result.queries_admitted += client->admitted_since_snapshot();
    estimated += client->estimated_since_snapshot();
    truth += client->true_since_snapshot();
  }
  if (result.queries_admitted > 0) {
    result.avg_estimated_import =
        estimated / static_cast<double>(result.queries_admitted);
    result.avg_true_import =
        truth / static_cast<double>(result.queries_admitted);
  }
  if (sampler_ != nullptr) result.series = sampler_->TakeSeries();
  return result;
}

}  // namespace esr
