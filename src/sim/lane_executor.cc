#include "sim/lane_executor.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace esr {

LaneExecutor::LaneExecutor(size_t num_lanes, SimTime lookahead)
    : lookahead_(lookahead) {
  ESR_CHECK(num_lanes >= 1);
  ESR_CHECK(lookahead_ >= 1) << "lookahead must be positive";
  lanes_.reserve(num_lanes);
  for (size_t i = 0; i < num_lanes; ++i) {
    lanes_.push_back(std::make_unique<EventQueue>());
  }
  inbox_.resize(num_lanes);
  for (auto& per_origin : inbox_) per_origin.resize(num_lanes);
  dirty_.resize(num_lanes);
  origin_mailed_.assign((num_lanes + 7) & ~size_t{7}, 0);
  dest_has_mail_.assign(num_lanes, 0);
  dest_origins_.resize(num_lanes);
  next_cache_.assign(num_lanes, kNoPendingEvent);
}

LaneExecutor::~LaneExecutor() { StopPool(); }

void LaneExecutor::set_workers(int workers) {
  const int clamped = std::clamp(workers, 1,
                                 static_cast<int>(lanes_.size()));
  if (clamped == workers_) return;
  StopPool();
  workers_ = clamped;
}

void LaneExecutor::DrainInboxes() {
  // Collect the destinations with pending mail from the origins' dirty
  // lists — the common round has only a handful, and untouched inbox
  // cells are never visited. Origins with mail are found by scanning the
  // flat flag array eight at a time, not by touching every dirty list.
  // Scanning origins in ascending index order makes each destination's
  // origin list (dest_origins_) ascending too — the canonical tie-break.
  for (size_t base = 0; base < origin_mailed_.size(); base += 8) {
    uint64_t word;
    std::memcpy(&word, origin_mailed_.data() + base, sizeof(word));
    if (word == 0) continue;
    for (size_t from = base; from < base + 8; ++from) {
      if (origin_mailed_[from]) {
        origin_mailed_[from] = 0;
        std::vector<size_t>& mailed = dirty_[from];
        for (const size_t to : mailed) {
          if (!dest_has_mail_[to]) {
            dest_has_mail_[to] = 1;
            dirty_dests_.push_back(to);
          }
          dest_origins_[to].push_back(from);
        }
        mailed.clear();
      }
    }
  }
  if (dirty_dests_.empty()) return;
  // Destination processing order is irrelevant to determinism: each
  // queue's sequence counter is its own, so only the per-destination
  // merge order below matters.
  for (const size_t to : dirty_dests_) {
    dest_has_mail_[to] = 0;
    auto& per_origin = inbox_[to];
    std::vector<size_t>& origins = dest_origins_[to];
    EventQueue& queue = *lanes_[to];
    // Common case — the round delivered this destination exactly one
    // message (most rounds carry one RPC leg per touched site): deliver
    // it without the merge machinery. A single message is trivially in
    // canonical order.
    if (origins.size() == 1 && per_origin[origins.front()].size() == 1) {
      const Message& msg = per_origin[origins.front()].front();
      // A message from the past would be silently clamped to now and
      // reordered — it means a send violated the lookahead contract.
      ESR_CHECK(msg.at >= queue.now())
          << "cross-lane message at " << msg.at << " arrived late on lane "
          << to << " (now " << queue.now() << "); lookahead " << lookahead_
          << " overstates the minimum cross-site delay";
      queue.ScheduleErased(msg.at, msg.invoke, msg.payload);
      per_origin[origins.front()].clear();
      origins.clear();
      next_cache_[to] = queue.NextEventTime();
      continue;
    }
    merge_scratch_.clear();
    for (const size_t from : origins) {
      for (size_t i = 0; i < per_origin[from].size(); ++i) {
        merge_scratch_.push_back(MergeRef{per_origin[from][i].at, from, i});
      }
    }
    // Canonical delivery order: (time, origin lane, origin order). The
    // gather above is origin-major (ascending origins, origin order
    // inside), so the stable sort on (time, origin) completes the rule.
    std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                     [](const MergeRef& a, const MergeRef& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.from < b.from;
                     });
    for (const MergeRef& ref : merge_scratch_) {
      const Message& msg = per_origin[ref.from][ref.index];
      ESR_CHECK(msg.at >= queue.now())
          << "cross-lane message at " << msg.at << " arrived late on lane "
          << to << " (now " << queue.now() << "); lookahead " << lookahead_
          << " overstates the minimum cross-site delay";
      queue.ScheduleErased(msg.at, msg.invoke, msg.payload);
    }
    for (const size_t from : origins) {
      per_origin[from].clear();
    }
    origins.clear();
    next_cache_[to] = queue.NextEventTime();
  }
  dirty_dests_.clear();
}

void LaneExecutor::RunLanes(SimTime target) {
  if (workers_ <= 1 || lanes_.size() == 1) {
    for (size_t i = 0; i < lanes_.size(); ++i) {
      // An idle lane's clock catches up when it next runs; no event
      // observes it in between.
      if (next_cache_[i] > target) continue;
      EventQueue& queue = *lanes_[i];
      current_lane_ = i;
      queue.RunUntil(target);
      next_cache_[i] = queue.NextEventTime();
    }
    current_lane_ = 0;
    return;
  }
  active_lanes_.clear();
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (next_cache_[i] <= target) active_lanes_.push_back(i);
  }
  if (active_lanes_.empty()) return;
  if (threads_.empty()) StartPool();
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_target_ = target;
    next_active_ = 0;
    lanes_remaining_ = active_lanes_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return lanes_remaining_ == 0; });
  }
  for (const size_t i : active_lanes_) {
    next_cache_[i] = lanes_[i]->NextEventTime();
  }
}

void LaneExecutor::StartPool() {
  threads_.reserve(static_cast<size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void LaneExecutor::StopPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  shutdown_ = false;
}

void LaneExecutor::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this, seen_generation] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    while (next_active_ < active_lanes_.size()) {
      const size_t lane = active_lanes_[next_active_++];
      const SimTime target = round_target_;
      lock.unlock();
      lanes_[lane]->RunUntil(target);
      lock.lock();
      if (--lanes_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void LaneExecutor::RunUntil(SimTime until) {
  // Setup code (cluster wiring, client Start, the series sampler) may
  // have scheduled directly on the lanes since the last run.
  for (size_t i = 0; i < lanes_.size(); ++i) {
    next_cache_[i] = lanes_[i]->NextEventTime();
  }
  for (;;) {
    DrainInboxes();
    SimTime next = kNoPendingEvent;
    for (const SimTime t : next_cache_) {
      next = std::min(next, t);
    }
    if (next >= until) break;
    // Safe window: nothing sent from an event at time >= next can arrive
    // before next + lookahead, so events strictly below the horizon are
    // unaffected by messages not yet drained.
    const SimTime horizon = std::min(next + lookahead_, until);
    RunLanes(horizon - 1);
  }
  // Checkpoint phase: events at exactly `until` run serially in lane
  // order — the only place cross-lane observers (series sampler, the
  // cluster's warm-up/measurement snapshots) are allowed to read. Every
  // lane runs here, even without events, so all clocks read `until`.
  DrainInboxes();
  for (size_t i = 0; i < lanes_.size(); ++i) {
    current_lane_ = i;
    lanes_[i]->RunUntil(until);
  }
  current_lane_ = 0;
}

}  // namespace esr
