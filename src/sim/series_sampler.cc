#include "sim/series_sampler.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "obs/stream_audit.h"

namespace esr {

SeriesSampler::SeriesSampler(EventQueue* queue, Server* server,
                             CumulativeFn cumulative,
                             SeriesSamplerOptions options)
    : queue_(queue),
      server_(server),
      cumulative_(std::move(cumulative)),
      options_(std::move(options)),
      tracker_(server->schema().num_groups()) {
  ESR_CHECK(options_.window_s > 0.0);
  ESR_CHECK(cumulative_ != nullptr);
  series_.source = options_.source;
  series_.window_s = options_.window_s;
  series_.node_names.reserve(server_->schema().num_groups());
  for (GroupId g = 0; g < server_->schema().num_groups(); ++g) {
    series_.node_names.push_back(server_->schema().name(g));
  }
  server_->engine().SetHeadroomTracker(&tracker_);
}

SeriesSampler::~SeriesSampler() {
  server_->engine().SetHeadroomTracker(nullptr);
}

void SeriesSampler::ScheduleWindows(double end_s) {
  const size_t num_windows =
      static_cast<size_t>(std::ceil(end_s / options_.window_s));
  series_.windows.reserve(num_windows);
  boundaries_.reserve(num_windows);
  for (size_t i = 0; i < num_windows; ++i) {
    const double boundary_s =
        std::min(static_cast<double>(i + 1) * options_.window_s, end_s);
    const SimTime at = static_cast<SimTime>(boundary_s * kMicrosPerSecond);
    boundaries_.push_back(at);
    queue_->ScheduleAt(at, [this, i] { Sample(i); });
  }
}

void SeriesSampler::Sample(size_t window_index) {
  ESR_CHECK(window_index == series_.windows.size())
      << "sampling events fired out of order";
  const Cumulative now = cumulative_();
  const double now_s = static_cast<double>(queue_->now()) / kMicrosPerSecond;

  SeriesWindow w;
  w.start_s = prev_time_s_;
  w.duration_s = now_s - prev_time_s_;
  w.committed = now.committed - prev_.committed;
  w.aborted = now.aborted - prev_.aborted;
  w.restarts = now.restarts - prev_.restarts;
  w.active_mpl = static_cast<double>(server_->engine().num_active());
  const int64_t ops = now.op_responses - prev_.op_responses;
  const int64_t op_us = now.op_latency_total_us - prev_.op_latency_total_us;
  w.mean_op_latency_ms =
      ops > 0
          ? static_cast<double>(op_us) / static_cast<double>(ops) / 1000.0
          : 0.0;

  w.nodes.resize(tracker_.num_nodes());
  for (GroupId g = 0; g < tracker_.num_nodes(); ++g) {
    const NodeHeadroomTracker::NodeSample s = tracker_.WindowSample(g);
    w.nodes[g].max_accumulated = s.max_accumulated;
    w.nodes[g].min_headroom_frac = s.min_headroom_frac;
    w.nodes[g].limit_at_min = s.limit_at_min;
    w.nodes[g].charges = s.charges;
  }
  tracker_.StartWindow();

  if (certifier_ != nullptr) {
    // The boundary itself is observed time: this closes window
    // `window_index` even when its tail carried no events, so a healthy
    // run reads certified_through == the boundary with zero lag.
    certifier_->AdvanceTo(static_cast<int64_t>(queue_->now()));
    w.certified_through_s = certifier_->certified_through_s();
  }

  series_.windows.push_back(std::move(w));
  prev_ = now;
  prev_time_s_ = now_s;
}

RunSeries SeriesSampler::TakeSeries() { return std::move(series_); }

}  // namespace esr
