#include "sim/client.h"

#include "common/logging.h"

namespace esr {

ClientStats& ClientStats::operator-=(const ClientStats& other) {
  committed -= other.committed;
  committed_query -= other.committed_query;
  committed_update -= other.committed_update;
  aborts -= other.aborts;
  ops_executed -= other.ops_executed;
  ops_query -= other.ops_query;
  ops_update -= other.ops_update;
  inconsistent_ops -= other.inconsistent_ops;
  waits -= other.waits;
  import_total -= other.import_total;
  export_total -= other.export_total;
  txn_latency_total_us -= other.txn_latency_total_us;
  op_responses -= other.op_responses;
  op_latency_total_us -= other.op_latency_total_us;
  return *this;
}

SimClient::SimClient(SiteId site, Server* server, LaneExecutor* lanes,
                     size_t lane, size_t server_lane, LatencyModel* latency,
                     WorkloadGenerator generator, SkewedClock clock)
    : site_(site),
      server_(server),
      lanes_(lanes),
      lane_(lane),
      server_lane_(server_lane),
      latency_(latency),
      generator_(std::move(generator)),
      clock_(clock),
      ts_gen_(site) {}

void SimClient::Start(SimTime start_at) {
  lane_queue().ScheduleAt(start_at, [this] { SubmitNextTransaction(); });
}

void SimClient::SubmitNextTransaction() {
  script_ = generator_.Next();
  first_submit_at_ = lane_queue().now();
  BeginCurrentTransaction();
}

void SimClient::BeginCurrentTransaction() {
  // The timestamp is assigned when the transaction begins, from the
  // site's corrected clock (Sec. 6).
  const Timestamp ts = ts_gen_.Next(clock_.Read(lane_queue().now()));
  op_index_ = 0;
  read_results_.clear();
  attempt_inconsistency_ = 0.0;
  // The BEGIN RPC carries only the type and the bound declaration:
  // request leg to the server, Begin executes there, response leg back.
  const SimTime ctrl = latency_->SampleControlRpc(site_);
  const SimTime request_travel = ctrl / 2;
  const SimTime response_travel = ctrl - request_travel;
  lanes_->Send(lane_, server_lane_, lane_queue().now() + request_travel,
               [this, ts, response_travel] {
    if (script_.type == TxnType::kUpdate &&
        script_.update_import_limit > 0 &&
        server_->options().engine == EngineKind::kTimestampOrdering) {
      // The Sec. 1 generalization: update ETs with an import budget.
      txn_ = server_->txn_manager().BeginUpdateWithImport(
          ts, script_.bounds,
          BoundSpec::TransactionOnly(script_.update_import_limit));
    } else {
      txn_ = server_->Begin(script_.type, ts, script_.bounds);
    }
    // The engine opened the transaction's lifetime span during Begin;
    // this client's RPC spans parent to it across callbacks.
    const Transaction* t = server_->engine().Find(txn_);
    txn_span_ = t != nullptr ? t->trace_span() : 0;
    lanes_->Send(server_lane_, lane_,
                 server_queue().now() + response_travel,
                 [this] { IssueCurrentOp(); });
  });
}

void SimClient::IssueCurrentOp() {
  if (op_index_ >= script_.ops.size()) {
    IssueCommit();
    return;
  }
  // Client-observed RPC leg: request travel + CPU queueing + service +
  // response travel; closed when the response lands in HandleOpResult.
  rpc_span_ = BeginSpan(SpanKind::kRpc, txn_, site_,
                        script_.ops[op_index_].object, txn_span_);
  op_issued_at_ = lane_queue().now();
  const SimTime rpc = latency_->SampleOpRpc(site_);
  const SimTime request_travel = rpc / 2;
  const SimTime response_travel = rpc - request_travel;
  lanes_->Send(lane_, server_lane_, lane_queue().now() + request_travel,
               [this, response_travel] {
    // Request has arrived at the server; contend for its CPU. The CPU
    // reservation and the op itself stay on the server lane.
    const SimTime cpu_done =
        latency_->ReserveServerCpu(server_queue().now());
    server_queue().ScheduleAt(cpu_done, [this, response_travel] {
      ExecuteOpAtServer(response_travel);
    });
  });
}

void SimClient::ExecuteOpAtServer(SimTime response_travel) {
  const ScriptOp& op = script_.ops[op_index_];
  OpResult result;
  {
    // Re-establish the in-flight RPC span as this callback's context so
    // the engine's op span (and the bound walk under it) parent to it.
    ScopedSpanParent rpc(rpc_span_);
    if (op.kind == ScriptOp::Kind::kRead) {
      result = server_->Read(txn_, op.object);
    } else {
      result = server_->Write(txn_, op.object, WriteValueFor(op));
    }
  }
  lanes_->Send(server_lane_, lane_, server_queue().now() + response_travel,
               [this, result] { HandleOpResult(result); });
}

void SimClient::HandleOpResult(const OpResult& result) {
  // Response delivered: the RPC leg is over regardless of the verdict.
  EndSpan(SpanKind::kRpc, rpc_span_, txn_, site_);
  rpc_span_ = 0;
  ++stats_.op_responses;
  stats_.op_latency_total_us +=
      static_cast<int64_t>(lane_queue().now() - op_issued_at_);
  switch (result.kind) {
    case OpResult::Kind::kOk: {
      ++stats_.ops_executed;
      if (script_.type == TxnType::kQuery) {
        ++stats_.ops_query;
      } else {
        ++stats_.ops_update;
      }
      if (result.relaxed && result.inconsistency > 0.0) {
        ++stats_.inconsistent_ops;
      }
      attempt_inconsistency_ += result.inconsistency;
      if (script_.ops[op_index_].kind == ScriptOp::Kind::kRead) {
        read_results_.push_back(result.value);
      }
      ++op_index_;
      IssueCurrentOp();
      return;
    }
    case OpResult::Kind::kWait: {
      ++stats_.waits;
      lane_queue().ScheduleAfter(latency_->WaitRetryDelay(),
                                 [this] { IssueCurrentOp(); });
      return;
    }
    case OpResult::Kind::kAbort: {
      // The server already released everything; resubmit the same
      // transaction with a new timestamp after a short turnaround.
      ++stats_.aborts;
      txn_ = kInvalidTxnId;
      txn_span_ = 0;
      lane_queue().ScheduleAfter(latency_->RestartDelay(),
                                 [this] { BeginCurrentTransaction(); });
      return;
    }
  }
  ESR_LOG(kFatal) << "unreachable op result kind";
}

void SimClient::IssueCommit() {
  const uint64_t commit_rpc =
      BeginSpan(SpanKind::kRpc, txn_, site_, 0, txn_span_);
  const SimTime ctrl = latency_->SampleControlRpc(site_);
  const SimTime request_travel = ctrl / 2;
  const SimTime response_travel = ctrl - request_travel;
  lanes_->Send(lane_, server_lane_, lane_queue().now() + request_travel,
               [this, commit_rpc, response_travel] {
    {
      ScopedSpanParent rpc(commit_rpc);
      const Status status = server_->Commit(txn_);
      ESR_CHECK(status.ok()) << status.ToString();
    }
    lanes_->Send(server_lane_, lane_,
                 server_queue().now() + response_travel,
                 [this, commit_rpc] {
      // Commit acknowledgement landed: the transaction is over from the
      // client's point of view, so stats and latency close here.
      EndSpan(SpanKind::kRpc, commit_rpc, txn_, site_);
      ++stats_.committed;
      if (script_.type == TxnType::kQuery) {
        ++stats_.committed_query;
        stats_.import_total += attempt_inconsistency_;
      } else {
        ++stats_.committed_update;
        stats_.export_total += attempt_inconsistency_;
      }
      const SimTime latency_us = lane_queue().now() - first_submit_at_;
      stats_.txn_latency_total_us += latency_us;
      latency_ms_.Record(static_cast<double>(latency_us) / 1000.0);
      txn_ = kInvalidTxnId;
      txn_span_ = 0;
      SubmitNextTransaction();
    });
  });
}

Value SimClient::WriteValueFor(const ScriptOp& op) const {
  ESR_CHECK(op.source_read >= 0 &&
            static_cast<size_t>(op.source_read) < read_results_.size())
      << "write sourced from read " << op.source_read << " but only "
      << read_results_.size() << " reads completed";
  const WorkloadSpec& spec = generator_.spec();
  return ApplyDeltaReflecting(read_results_[static_cast<size_t>(
                                  op.source_read)],
                              op.delta, spec.min_value, spec.max_value);
}

}  // namespace esr
