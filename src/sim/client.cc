#include "sim/client.h"

#include "common/logging.h"

namespace esr {

ClientStats& ClientStats::operator-=(const ClientStats& other) {
  committed -= other.committed;
  committed_query -= other.committed_query;
  committed_update -= other.committed_update;
  aborts -= other.aborts;
  ops_executed -= other.ops_executed;
  ops_query -= other.ops_query;
  ops_update -= other.ops_update;
  inconsistent_ops -= other.inconsistent_ops;
  waits -= other.waits;
  import_total -= other.import_total;
  export_total -= other.export_total;
  txn_latency_total_us -= other.txn_latency_total_us;
  op_responses -= other.op_responses;
  op_latency_total_us -= other.op_latency_total_us;
  return *this;
}

SimClient::SimClient(SiteId site, Server* server, EventQueue* queue,
                     LatencyModel* latency, WorkloadGenerator generator,
                     SkewedClock clock)
    : site_(site),
      server_(server),
      queue_(queue),
      latency_(latency),
      generator_(std::move(generator)),
      clock_(clock),
      ts_gen_(site) {}

void SimClient::Start(SimTime start_at) {
  queue_->ScheduleAt(start_at, [this] { SubmitNextTransaction(); });
}

void SimClient::SubmitNextTransaction() {
  script_ = generator_.Next();
  first_submit_at_ = queue_->now();
  BeginCurrentTransaction();
}

void SimClient::BeginCurrentTransaction() {
  // The timestamp is assigned when the transaction begins, from the
  // site's corrected clock (Sec. 6).
  const Timestamp ts = ts_gen_.Next(clock_.Read(queue_->now()));
  op_index_ = 0;
  read_results_.clear();
  attempt_inconsistency_ = 0.0;
  // The BEGIN RPC carries only the type and the bound declaration.
  queue_->ScheduleAfter(latency_->SampleControlRpc(), [this, ts] {
    if (script_.type == TxnType::kUpdate &&
        script_.update_import_limit > 0 &&
        server_->options().engine == EngineKind::kTimestampOrdering) {
      // The Sec. 1 generalization: update ETs with an import budget.
      txn_ = server_->txn_manager().BeginUpdateWithImport(
          ts, script_.bounds,
          BoundSpec::TransactionOnly(script_.update_import_limit));
    } else {
      txn_ = server_->Begin(script_.type, ts, script_.bounds);
    }
    // The engine opened the transaction's lifetime span during Begin;
    // this client's RPC spans parent to it across callbacks.
    const Transaction* t = server_->engine().Find(txn_);
    txn_span_ = t != nullptr ? t->trace_span() : 0;
    IssueCurrentOp();
  });
}

void SimClient::IssueCurrentOp() {
  if (op_index_ >= script_.ops.size()) {
    IssueCommit();
    return;
  }
  // Client-observed RPC leg: request travel + CPU queueing + service +
  // response travel; closed when the response lands in HandleOpResult.
  rpc_span_ = BeginSpan(SpanKind::kRpc, txn_, site_,
                        script_.ops[op_index_].object, txn_span_);
  op_issued_at_ = queue_->now();
  const SimTime rpc = latency_->SampleOpRpc();
  const SimTime request_travel = rpc / 2;
  const SimTime response_travel = rpc - request_travel;
  queue_->ScheduleAfter(request_travel, [this, response_travel] {
    // Request has arrived at the server; contend for its CPU.
    const SimTime cpu_done = latency_->ReserveServerCpu(queue_->now());
    queue_->ScheduleAt(cpu_done, [this, response_travel] {
      ExecuteOpAtServer(response_travel);
    });
  });
}

void SimClient::ExecuteOpAtServer(SimTime response_travel) {
  const ScriptOp& op = script_.ops[op_index_];
  OpResult result;
  {
    // Re-establish the in-flight RPC span as this callback's context so
    // the engine's op span (and the bound walk under it) parent to it.
    ScopedSpanParent rpc(rpc_span_);
    if (op.kind == ScriptOp::Kind::kRead) {
      result = server_->Read(txn_, op.object);
    } else {
      result = server_->Write(txn_, op.object, WriteValueFor(op));
    }
  }
  queue_->ScheduleAfter(response_travel,
                        [this, result] { HandleOpResult(result); });
}

void SimClient::HandleOpResult(const OpResult& result) {
  // Response delivered: the RPC leg is over regardless of the verdict.
  EndSpan(SpanKind::kRpc, rpc_span_, txn_, site_);
  rpc_span_ = 0;
  ++stats_.op_responses;
  stats_.op_latency_total_us +=
      static_cast<int64_t>(queue_->now() - op_issued_at_);
  switch (result.kind) {
    case OpResult::Kind::kOk: {
      ++stats_.ops_executed;
      if (script_.type == TxnType::kQuery) {
        ++stats_.ops_query;
      } else {
        ++stats_.ops_update;
      }
      if (result.relaxed && result.inconsistency > 0.0) {
        ++stats_.inconsistent_ops;
      }
      attempt_inconsistency_ += result.inconsistency;
      if (script_.ops[op_index_].kind == ScriptOp::Kind::kRead) {
        read_results_.push_back(result.value);
      }
      ++op_index_;
      IssueCurrentOp();
      return;
    }
    case OpResult::Kind::kWait: {
      ++stats_.waits;
      queue_->ScheduleAfter(latency_->WaitRetryDelay(),
                            [this] { IssueCurrentOp(); });
      return;
    }
    case OpResult::Kind::kAbort: {
      // The server already released everything; resubmit the same
      // transaction with a new timestamp after a short turnaround.
      ++stats_.aborts;
      txn_ = kInvalidTxnId;
      txn_span_ = 0;
      queue_->ScheduleAfter(latency_->RestartDelay(),
                            [this] { BeginCurrentTransaction(); });
      return;
    }
  }
  ESR_LOG(kFatal) << "unreachable op result kind";
}

void SimClient::IssueCommit() {
  const uint64_t commit_rpc =
      BeginSpan(SpanKind::kRpc, txn_, site_, 0, txn_span_);
  queue_->ScheduleAfter(latency_->SampleControlRpc(), [this, commit_rpc] {
    {
      ScopedSpanParent rpc(commit_rpc);
      const Status status = server_->Commit(txn_);
      ESR_CHECK(status.ok()) << status.ToString();
    }
    EndSpan(SpanKind::kRpc, commit_rpc, txn_, site_);
    ++stats_.committed;
    if (script_.type == TxnType::kQuery) {
      ++stats_.committed_query;
      stats_.import_total += attempt_inconsistency_;
    } else {
      ++stats_.committed_update;
      stats_.export_total += attempt_inconsistency_;
    }
    const SimTime latency_us = queue_->now() - first_submit_at_;
    stats_.txn_latency_total_us += latency_us;
    latency_ms_.Record(static_cast<double>(latency_us) / 1000.0);
    txn_ = kInvalidTxnId;
    txn_span_ = 0;
    SubmitNextTransaction();
  });
}

Value SimClient::WriteValueFor(const ScriptOp& op) const {
  ESR_CHECK(op.source_read >= 0 &&
            static_cast<size_t>(op.source_read) < read_results_.size())
      << "write sourced from read " << op.source_read << " but only "
      << read_results_.size() << " reads completed";
  const WorkloadSpec& spec = generator_.spec();
  return ApplyDeltaReflecting(read_results_[static_cast<size_t>(
                                  op.source_read)],
                              op.delta, spec.min_value, spec.max_value);
}

}  // namespace esr
