#include "sim/skewed_clock.h"

namespace esr {

SkewedClock::SkewedClock(SiteId site, const SkewedClockOptions& options,
                         Rng* rng)
    : site_(site) {
  const double raw_s = rng->UniformDouble(-options.raw_skew_s,
                                          options.raw_skew_s);
  raw_offset_micros_ =
      static_cast<int64_t>(raw_s * static_cast<double>(kMicrosPerSecond));
  const double residual_ms = rng->UniformDouble(-options.residual_skew_ms,
                                                options.residual_skew_ms);
  residual_offset_micros_ =
      static_cast<int64_t>(residual_ms * static_cast<double>(kMicrosPerMilli));
}

}  // namespace esr
