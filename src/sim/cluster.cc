#include "sim/cluster.h"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/logging.h"
#include "common/random.h"
#include "obs/trace.h"

namespace esr {
namespace {

/// Time-source hook stamping trace events with the simulator's virtual
/// clock, so a trace of a simulated run lines up with the virtual
/// timeline the metrics are reported in. Tracing clamps the executor to
/// one worker, so the currently-executing lane is well defined.
int64_t VirtualNowMicros(void* ctx) {
  return static_cast<int64_t>(
      static_cast<LaneExecutor*>(ctx)->CurrentNow());
}

}  // namespace

std::string SimResult::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "mpl=%d tput=%.2f tps commits=%lld (q=%lld,u=%lld) "
                "aborts=%lld ops=%lld inconsistent=%lld waits=%lld",
                mpl, throughput(), static_cast<long long>(committed),
                static_cast<long long>(committed_query),
                static_cast<long long>(committed_update),
                static_cast<long long>(aborts),
                static_cast<long long>(ops_executed),
                static_cast<long long>(inconsistent_ops),
                static_cast<long long>(waits));
  return buf;
}

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      // One lane per site — the server plus mpl clients — always; the
      // worker count is applied in Run() and never changes the shape.
      executor_(static_cast<size_t>(options.mpl) + 1,
                LatencyModel::MinCrossSiteDelayMicros(options.latency)) {
  ESR_CHECK(options_.mpl >= 1);
  // Health detection replays the window stream, so it needs the sampler.
  if (options_.health) options_.collect_series = true;
  // The store must be populated consistently with the workload's universe.
  ServerOptions server_options = options_.server;
  server_options.store.num_objects = options_.workload.num_objects;
  server_options.store.min_value = options_.workload.min_value;
  server_options.store.max_value = options_.workload.max_value;
  server_options.store.seed = options_.seed ^ 0x5eedull;
  server_ = std::make_unique<Server>(server_options);

  // Pre-size the engine's transaction and lock tables for the steady
  // state: MPL concurrent transactions, each touching at most the
  // longest generated script's object count.
  const size_t ops_hint = static_cast<size_t>(
      std::max(options_.workload.query_ops_max,
               options_.workload.update_ops_max));
  server_->engine().ReserveForLoad(
      {static_cast<size_t>(options_.mpl), ops_hint});

  Rng master(options_.seed);
  // Per-site latency streams (site 0 = server is unused but keeps the
  // indexing aligned): which lane interleaving runs first must not
  // change what anyone samples.
  latency_ = std::make_unique<LatencyModel>(
      options_.latency, master.NextU64(),
      static_cast<size_t>(options_.mpl) + 1);
  Rng skew_rng = master.Fork();
  for (int i = 0; i < options_.mpl; ++i) {
    const SiteId site = static_cast<SiteId>(i + 1);
    WorkloadGenerator generator(options_.workload, master.NextU64());
    SkewedClock clock(site, options_.skew, &skew_rng);
    clients_.push_back(std::make_unique<SimClient>(
        site, server_.get(), &executor_, static_cast<size_t>(site),
        /*server_lane=*/0, latency_.get(), std::move(generator), clock));
  }
  if (options_.collect_series) {
    SeriesSamplerOptions sampler_options;
    sampler_options.window_s = options_.series_window_s;
    sampler_options.source = options_.series_source;
    sampler_ = std::make_unique<SeriesSampler>(
        &executor_.lane(0), server_.get(),
        [this] {
          SeriesSampler::Cumulative total;
          for (const auto& client : clients_) {
            const ClientStats& s = client->stats();
            total.committed += s.committed;
            total.aborted += s.aborts;
            // The synchronous client resubmits every aborted attempt.
            total.restarts += s.aborts;
            total.op_responses += s.op_responses;
            total.op_latency_total_us += s.op_latency_total_us;
          }
          return total;
        },
        sampler_options);
  }
}

void Cluster::RunTo(SimTime until) {
  // Every sampler boundary reads cross-lane state, so the conservative
  // run must end exactly there (LaneExecutor checkpoint phase) before
  // continuing — for any worker count, including 1.
  while (!pending_stops_.empty() && pending_stops_.front() <= until) {
    const SimTime stop = pending_stops_.front();
    pending_stops_.erase(pending_stops_.begin());
    if (stop < until) executor_.RunUntil(stop);
  }
  executor_.RunUntil(until);
}

SimResult Cluster::Run() {
  // Only a run that owns the global recorder may touch its shared state
  // (time source, ring reset); worker-pool runs leave it alone entirely.
  std::optional<ScopedTraceTimeSource> trace_clock;
  if (options_.owns_trace) {
    trace_clock.emplace(&VirtualNowMicros, &executor_);
    // Every run restarts the virtual clock and transaction ids, so a
    // capture spanning several seeds would interleave unrelated events
    // under the same (txn, ts) keys and confuse both Perfetto and the
    // auditor. Keep only the most recent run in the ring: a figure binary
    // run with --trace exports its final configuration's final seed as one
    // coherent trace.
    if (GlobalTrace().enabled()) GlobalTrace().Reset();
  }
  // Streaming certification subscribes to the recorder for this run: the
  // certifier sees every probe event as it is recorded and recertifies
  // the bound walks window by window, in lockstep with the sampler.
  std::optional<ScopedTraceObserver> observer;
  bool enabled_trace_for_certify = false;
  if (options_.certify && options_.owns_trace && GlobalTraceEnabled()) {
    // Tracing already on (e.g. --trace is also capturing): just attach.
  } else if (options_.certify && options_.owns_trace) {
#ifndef ESR_TRACE_DISABLED
    GlobalTrace().set_enabled(true);
    GlobalTrace().Reset();
    enabled_trace_for_certify = true;
#else
    ESR_LOG(kWarning) << "streaming certification skipped: tracing is "
                         "compiled out (ESR_DISABLE_TRACING)";
#endif
  } else if (options_.certify) {
    ESR_LOG(kWarning) << "streaming certification skipped: run does not "
                         "own the trace recorder (parallel worker pool)";
  }
  if (options_.certify && options_.owns_trace && GlobalTraceEnabled()) {
    StreamCertifierOptions certifier_options;
    certifier_options.window_s = options_.series_window_s;
    certifier_options.source = options_.series_source;
    certifier_options.emit_trace_events = true;
    certifier_ = std::make_unique<StreamCertifier>(certifier_options);
    observer.emplace(&StreamCertifier::ObserveTrampoline, certifier_.get());
    if (sampler_ != nullptr) sampler_->set_certifier(certifier_.get());
  }
  // Worker threads for the conservative rounds. An active trace capture
  // (or certification riding on one) records from every lane, and the
  // recorder is single-writer — clamp to serial rounds, mirroring how
  // the bench harness forces --jobs 1 under --trace. The lane structure
  // is untouched, so the clamp changes no result byte.
  int workers = options_.lanes;
  if (options_.owns_trace && GlobalTraceEnabled()) workers = 1;
  executor_.set_workers(workers);

  // Stagger client start-up slightly so sites do not run in lockstep.
  for (size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->Start(static_cast<SimTime>(i) * 3 * kMicrosPerMilli);
  }
  if (sampler_ != nullptr) {
    sampler_->ScheduleWindows(options_.warmup_s + options_.measure_s);
    pending_stops_ = sampler_->boundaries();
  }

  const SimTime warmup_end =
      static_cast<SimTime>(options_.warmup_s * kMicrosPerSecond);
  const SimTime measure_end =
      warmup_end +
      static_cast<SimTime>(options_.measure_s * kMicrosPerSecond);

  RunTo(warmup_end);
  std::vector<ClientStats> at_warmup;
  at_warmup.reserve(clients_.size());
  for (const auto& client : clients_) {
    at_warmup.push_back(client->stats());
    client->ResetLatencyHistogram();
  }

  RunTo(measure_end);

  SimResult result;
  result.mpl = options_.mpl;
  result.elapsed_s = options_.measure_s;
  for (size_t i = 0; i < clients_.size(); ++i) {
    ClientStats delta = clients_[i]->stats();
    delta -= at_warmup[i];
    result.committed += delta.committed;
    result.committed_query += delta.committed_query;
    result.committed_update += delta.committed_update;
    result.aborts += delta.aborts;
    result.ops_executed += delta.ops_executed;
    result.ops_query += delta.ops_query;
    result.ops_update += delta.ops_update;
    result.inconsistent_ops += delta.inconsistent_ops;
    result.waits += delta.waits;
    result.import_total += delta.import_total;
    result.export_total += delta.export_total;
    result.txn_latency_total_us +=
        static_cast<double>(delta.txn_latency_total_us);
    result.latency_ms.Merge(clients_[i]->latency_histogram());
  }
  if (sampler_ != nullptr) result.series = sampler_->TakeSeries();
  if (certifier_ != nullptr) {
    certifier_->AdvanceTo(static_cast<int64_t>(executor_.lane(0).now()));
    result.certification = certifier_->Snapshot();
    if (sampler_ != nullptr) sampler_->set_certifier(nullptr);
  }
  if (enabled_trace_for_certify) GlobalTrace().set_enabled(false);
  if (options_.health) result.health = AnalyzeSeries(result.series);
  return result;
}

SimResult RunCluster(const ClusterOptions& options) {
  Cluster cluster(options);
  return cluster.Run();
}

}  // namespace esr
