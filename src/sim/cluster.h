#ifndef ESR_SIM_CLUSTER_H_
#define ESR_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "obs/health.h"
#include "obs/series.h"
#include "obs/stream_audit.h"
#include "sim/client.h"
#include "sim/series_sampler.h"
#include "sim/event_queue.h"
#include "sim/lane_executor.h"
#include "sim/latency_model.h"
#include "sim/skewed_clock.h"
#include "txn/server.h"
#include "workload/generator.h"

namespace esr {

/// Full configuration of one simulated run: the central server plus `mpl`
/// client workstations (the paper's LAN limits MPL to 10, but the
/// simulator accepts any value).
struct ClusterOptions {
  int mpl = 4;
  WorkloadSpec workload;
  ServerOptions server;
  LatencyModelOptions latency;
  SkewedClockOptions skew;
  /// Simulated warm-up discarded from the metrics, and the measurement
  /// window, both in virtual seconds.
  double warmup_s = 5.0;
  double measure_s = 60.0;
  uint64_t seed = 1;
  /// Whether this run owns the process-global trace recorder. An owning
  /// run (the default — examples, tools, serial benches) installs its
  /// virtual clock as the recorder's time source and, when capture is
  /// enabled, resets the ring so the capture covers one coherent run. The
  /// parallel bench harness clears this for worker-pool runs so that
  /// concurrent clusters never mutate shared recorder state; trace capture
  /// itself forces the harness serial, keeping `--trace` a single-capture
  /// export. Metrics need no such flag: every run's Server owns a private
  /// MetricRegistry, so runs are metric-isolated by construction.
  bool owns_trace = true;
  /// Per-window telemetry (see SeriesSampler): when set, Run() fills
  /// SimResult::series with one window per `series_window_s` of virtual
  /// time covering warmup *and* measurement — the warmup ramp stays in
  /// the series so steady-state detection (MSER-5) can see it. Purely
  /// observational: the run's other results are identical either way.
  bool collect_series = false;
  double series_window_s = 1.0;
  /// Provenance string recorded in the exported series.
  std::string series_source;
  /// Online streaming certification (obs/stream_audit.h): Run() enables
  /// trace capture, subscribes a StreamCertifier to the recorder, aligns
  /// its windows with `series_window_s`, and fills
  /// SimResult::certification. Requires owns_trace — worker-pool runs may
  /// never touch the shared recorder — and a build with tracing compiled
  /// in; otherwise certification is skipped with a warning. Purely
  /// observational: workload results are identical either way.
  bool certify = false;
  /// Windowed anomaly detection (obs/health.h): forces collect_series
  /// and, after the run, replays the collected series through the
  /// standard HealthMonitor detector set into SimResult::health. Purely
  /// observational and a pure function of the series bytes, so health
  /// output inherits the series' determinism contract (byte-identical
  /// at any --jobs / --lanes level).
  bool health = false;
  /// Worker threads for the conservative lane executor. The event
  /// structure is always one lane per site (server + MPL clients)
  /// regardless of this value — `lanes` only sets how many threads
  /// execute each conservative round, so results are byte-identical for
  /// every value (the --jobs determinism contract, one level down).
  /// Clamped to [1, mpl + 1]; forced to 1 while this run owns an active
  /// trace capture or certification, because the global trace recorder
  /// is not written concurrently.
  int lanes = 1;
};

/// Aggregated outcome of a run over the measurement window — the
/// performance metrics of Sec. 7.
struct SimResult {
  int mpl = 0;
  double elapsed_s = 0.0;
  int64_t committed = 0;
  int64_t committed_query = 0;
  int64_t committed_update = 0;
  int64_t aborts = 0;
  int64_t ops_executed = 0;
  int64_t ops_query = 0;
  int64_t ops_update = 0;
  int64_t inconsistent_ops = 0;
  int64_t waits = 0;
  double import_total = 0.0;
  double export_total = 0.0;
  double txn_latency_total_us = 0.0;
  /// Commit-latency distribution over the measurement window (ms), merged
  /// across clients; feeds the percentile columns of the bench JSON.
  Histogram latency_ms;
  /// Per-window telemetry series (empty unless
  /// ClusterOptions::collect_series was set).
  RunSeries series;
  /// Streaming certification verdict (enabled == false unless
  /// ClusterOptions::certify ran).
  StreamCertification certification;
  /// Windowed anomaly-detection verdict over `series` (empty unless
  /// ClusterOptions::health was set).
  HealthReport health;

  /// Committed transactions per virtual second.
  double throughput() const {
    return elapsed_s > 0 ? static_cast<double>(committed) / elapsed_s : 0.0;
  }
  /// Fig. 13: operations executed per completed transaction, counting the
  /// work of aborted attempts.
  double ops_per_committed_txn() const {
    return committed > 0
               ? static_cast<double>(ops_executed) /
                     static_cast<double>(committed)
               : 0.0;
  }
  /// Fig. 13, query ETs only: the wasted-work effect concentrates in the
  /// class whose TIL is being squeezed.
  double query_ops_per_committed_query() const {
    return committed_query > 0
               ? static_cast<double>(ops_query) /
                     static_cast<double>(committed_query)
               : 0.0;
  }
  double avg_import_per_query() const {
    return committed_query > 0
               ? import_total / static_cast<double>(committed_query)
               : 0.0;
  }
  double avg_txn_latency_ms() const {
    return committed > 0 ? txn_latency_total_us /
                               static_cast<double>(committed) / 1000.0
                         : 0.0;
  }

  std::string ToString() const;
};

/// Builds and runs the simulated prototype: server, latency model, skewed
/// client clocks, and MPL synchronous clients, all deterministically
/// seeded. Execution is partitioned into per-site event lanes (lane 0 is
/// the server, lane s client site s) driven by the conservative
/// LaneExecutor; ClusterOptions::lanes picks the worker-thread count
/// without affecting any result byte.
class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);

  /// Runs warm-up plus measurement window and returns the aggregated
  /// metrics of the measurement window.
  SimResult Run();

  Server& server() { return *server_; }
  /// The server lane's queue (lane 0); its clock is the run's reference
  /// time at every checkpoint.
  EventQueue& queue() { return executor_.lane(0); }
  LaneExecutor& executor() { return executor_; }

 private:
  /// Conservative run to `until` stopping at every cross-lane
  /// observation instant (series window boundaries) in between.
  void RunTo(SimTime until);

  ClusterOptions options_;
  LaneExecutor executor_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<LatencyModel> latency_;
  std::vector<std::unique_ptr<SimClient>> clients_;
  /// Sampler boundaries not yet passed by RunTo, ascending.
  std::vector<SimTime> pending_stops_;
  /// Telemetry collector (nullptr unless options_.collect_series); a
  /// member rather than a Run() local because active transactions hold
  /// probe pointers into its tracker for the cluster's lifetime.
  std::unique_ptr<SeriesSampler> sampler_;
  /// Streaming certifier (nullptr unless options_.certify); subscribed to
  /// the global recorder for the duration of Run().
  std::unique_ptr<StreamCertifier> certifier_;
};

/// Convenience: configure-and-run in one call.
SimResult RunCluster(const ClusterOptions& options);

}  // namespace esr

#endif  // ESR_SIM_CLUSTER_H_
