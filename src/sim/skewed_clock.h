#ifndef ESR_SIM_SKEWED_CLOCK_H_
#define ESR_SIM_SKEWED_CLOCK_H_

#include "common/random.h"
#include "common/timestamp.h"
#include "sim/event_queue.h"

namespace esr {

/// Clock-skew parameters of the client sites. The prototype observed "a
/// two minute range of variation between the local system clocks" and
/// applied "a correction factor ... to achieve virtual clock
/// synchronization" (Sec. 6); the correction is imperfect, leaving a small
/// residual offset per site.
struct SkewedClockOptions {
  /// Raw offset range before correction (+/-), in seconds.
  double raw_skew_s = 60.0;
  /// Residual offset range after correction (+/-), in milliseconds.
  double residual_skew_ms = 20.0;
};

/// One client site's view of time: virtual time plus a fixed residual
/// offset, feeding a per-site TimestampGenerator so that timestamps are
/// unique and nearly synchronized across sites.
class SkewedClock {
 public:
  SkewedClock(SiteId site, const SkewedClockOptions& options, Rng* rng);

  /// Corrected local reading of the given virtual time.
  int64_t Read(SimTime virtual_now) const {
    return virtual_now + residual_offset_micros_;
  }

  /// Raw (uncorrected) reading; only used to demonstrate the correction
  /// in tests.
  int64_t ReadRaw(SimTime virtual_now) const {
    return virtual_now + raw_offset_micros_;
  }

  int64_t residual_offset_micros() const { return residual_offset_micros_; }

  SiteId site() const { return site_; }

 private:
  SiteId site_;
  int64_t raw_offset_micros_;
  int64_t residual_offset_micros_;
};

}  // namespace esr

#endif  // ESR_SIM_SKEWED_CLOCK_H_
