#ifndef ESR_OBS_PROFILE_H_
#define ESR_OBS_PROFILE_H_

// Wall-clock observability for the real-thread path (threaded_server):
//
//  * ScopedPhaseTimer — per-phase cost attribution with self-time
//    nesting: a thread-local stack of open phases where opening a child
//    settles the elapsed segment into the parent's *self* time, so phase
//    self-times sum to exactly the covered wall-clock with no double
//    counting, while each phase also keeps a full-scope duration
//    histogram (p50–p999).
//  * ContentionSite / ProfiledMutex — per-site wait-time histograms,
//    acquisition counters, and blocked-by attribution (the holder's
//    TxnId read at wait start), for the engine latches, the 2PL lock
//    table's logical conflicts, and the hierarchy accumulator's charge
//    path.
//
// Clock domain: always the steady wall clock (ProfileNowNs), never the
// simulator's virtual time — the profiler answers "where do the real
// threads spend real time", the trace recorder's pluggable time source
// answers "when did this happen in the run's timeline" (DESIGN.md §7).
//
// Cost model mirrors the trace layer: every probe fast-path is one
// inline relaxed load of a constant-initialized flag plus a branch, and
// a build with ESR_DISABLE_TRACING compiles the probes out entirely
// (GlobalProfilerEnabled() folds to false). The cold reporting code
// (snapshots, JSON writer) stays linkable in every build.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/trace.h"

namespace esr {

/// Where a real thread's time goes between a transaction's first Begin
/// and its commit. Client-side phases (kLockWait, kRpc) cover the waits
/// and pacing the threaded server's clients inject; engine-side phases
/// nest inside them via the self-time rule.
enum class ProfilePhase : uint8_t {
  /// Client-side backoff while an operation is blocked on an uncommitted
  /// writer (the engine returned kWait); blamed on the blocker.
  kLockWait = 0,
  /// Client-side RPC stand-in: the per-op pacing sleep.
  kRpc,
  /// In-engine operation service: latch wait plus the Fig. 3 decision
  /// logic, minus the nested bound-walk/apply below.
  kValidate,
  /// One bottom-up bound-check walk in the hierarchy accumulator.
  kBoundWalk,
  /// Applying a write to the object store (shadow-value install).
  kApply,
  /// Engine commit/abort processing (teardown, write install, releases).
  kCommit,
};
inline constexpr size_t kNumProfilePhases = 6;

const char* ProfilePhaseToString(ProfilePhase phase);

namespace internal {
/// Mirror of the global profiler's enabled flag, constant-initialized so
/// probes inlined anywhere read a well-defined `false` (same pattern as
/// g_global_trace_enabled).
extern std::atomic<bool> g_global_profiler_enabled;
}  // namespace internal

/// Probe-site fast path: one inline relaxed load; constant false (so the
/// whole probe folds away) under ESR_DISABLE_TRACING.
inline bool GlobalProfilerEnabled() {
#ifdef ESR_TRACE_DISABLED
  return false;
#else
  return internal::g_global_profiler_enabled.load(std::memory_order_relaxed);
#endif
}

/// The profiler's clock: steady wall-clock nanoseconds.
inline int64_t ProfileNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One contention point (an engine latch, the 2PL lock table, the
/// accumulator's charge path): acquisition counters, a lock-free log2
/// wait-time histogram, and blocked-by attribution — who held the site
/// when the wait started, charged by total wait time. Counter updates
/// are relaxed atomics; only the contended slow path (RecordWait /
/// RecordConflict with a known holder) takes the blockers mutex.
class ContentionSite {
 public:
  /// log2(ns) wait buckets: bucket i covers [2^i, 2^(i+1)) ns, bucket 47
  /// tops out above 39 hours — nothing a run can exceed.
  static constexpr size_t kWaitBuckets = 48;

  struct BlockerEntry {
    TxnId txn = kInvalidTxnId;
    /// Timed waits plus untimed logical conflicts blamed on this txn.
    uint64_t waits = 0;
    uint64_t total_wait_ns = 0;
  };

  struct Snapshot {
    std::string name;
    uint64_t acquisitions = 0;
    /// Timed waits (the acquirer actually blocked).
    uint64_t contended = 0;
    /// Untimed logical conflicts (kWait/kDie grants, bound rejections).
    uint64_t conflicts = 0;
    uint64_t total_wait_ns = 0;
    uint64_t max_wait_ns = 0;
    std::vector<uint64_t> wait_buckets;
    /// Sorted by total_wait_ns descending, then waits descending.
    std::vector<BlockerEntry> blockers;

    /// Wait-time percentile estimate (microseconds) from the log2
    /// buckets, geometric midpoint per bucket; 0 with no timed waits.
    double WaitPercentileUs(double p) const;
  };

  explicit ContentionSite(std::string name) : name_(std::move(name)) {}

  ContentionSite(const ContentionSite&) = delete;
  ContentionSite& operator=(const ContentionSite&) = delete;

  const std::string& name() const { return name_; }

  /// One uncontended-or-not acquisition attempt (lock-free).
  void RecordAcquisition() {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A timed wait of `wait_ns`, blamed on `holder` (kInvalidTxnId when
  /// the holder was unknown at wait start).
  void RecordWait(int64_t wait_ns, TxnId holder);

  /// An untimed logical conflict (a kWait/kDie lock grant, a bound-walk
  /// rejection): counted, blamed, but contributing no wait time.
  void RecordConflict(TxnId holder);

  Snapshot TakeSnapshot() const;
  void Reset();

 private:
  const std::string name_;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> total_wait_ns_{0};
  std::atomic<uint64_t> max_wait_ns_{0};
  std::atomic<uint64_t> wait_buckets_[kWaitBuckets] = {};
  mutable std::mutex blockers_mu_;
  std::unordered_map<TxnId, BlockerEntry> blockers_;
};

/// Per-phase aggregate, for one thread or merged across all of them.
struct PhaseSnapshot {
  uint64_t count = 0;
  /// Wall-clock attributed to this phase alone (children excluded).
  uint64_t self_ns = 0;
  /// Full-scope durations in milliseconds (children *included*); source
  /// of the p50–p999 columns.
  Histogram scope_ms;
};

struct ThreadProfile {
  /// ThreadLaneId() of the thread — matches the trace layer's lanes.
  uint32_t lane = 0;
  PhaseSnapshot phases[kNumProfilePhases];
};

struct ProfileSnapshot {
  std::vector<ThreadProfile> threads;
  /// Merged across threads (scope_ms via Histogram::Merge).
  PhaseSnapshot phases[kNumProfilePhases];
  std::vector<ContentionSite::Snapshot> sites;

  uint64_t TotalSelfNs() const;
};

namespace internal {
/// Per-thread phase accumulator. The owning thread is the only writer of
/// scope_ms; count/self_ns are relaxed atomics so live gauge export can
/// read them mid-run. Registered with the Profiler on first use and kept
/// for the process lifetime (threads are few and slots are small).
struct PhaseThreadStats {
  uint32_t lane = 0;
  std::atomic<uint64_t> count[kNumProfilePhases] = {};
  std::atomic<uint64_t> self_ns[kNumProfilePhases] = {};
  Histogram scope_ms[kNumProfilePhases];
};
}  // namespace internal

/// Process-wide wall-clock profiler: owns the per-thread phase slots and
/// the named contention sites. Disabled by default; the threaded server
/// enables it around the level of interest (enabling costs each probe
/// one relaxed load either way).
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled);

  /// Finds or creates the named contention site; the pointer stays valid
  /// for the profiler's lifetime (call sites cache it).
  ContentionSite* site(const std::string& name);

  /// This thread's phase slot, registering it on first use.
  internal::PhaseThreadStats* ThreadStats();

  /// Full snapshot including the per-thread scope histograms. Quiescent
  /// only: no ScopedPhaseTimer may be live (Histogram is not
  /// thread-safe) — the same end-of-run contract as TraceRecorder
  /// snapshots and Histogram::Merge.
  ProfileSnapshot Snapshot() const;

  /// Live export of the atomically-readable slices (phase counts and
  /// self-time totals, site counters) as gauges — safe concurrently with
  /// running probes; the in-server sampler republishes these every tick.
  void ExportLiveGauges(MetricRegistry* metrics) const;

  /// Quiescent: merges every thread's scope histograms into
  /// `profile.phase_ms.<phase>` registry histograms, so /metrics and the
  /// metrics JSON carry the p50–p999 phase quantiles.
  void ExportPhaseHistograms(MetricRegistry* metrics) const;

  /// Drops all recorded data (keeps registered threads and sites).
  void Reset();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<internal::PhaseThreadStats>> threads_;
  std::vector<std::unique_ptr<ContentionSite>> sites_;
};

/// The process-wide profiler all probes feed.
Profiler& GlobalProfiler();

#ifndef ESR_TRACE_DISABLED
namespace internal {
void OpenPhaseSlow(ProfilePhase phase);
void ClosePhaseSlow();
}  // namespace internal
#endif

/// RAII phase scope with self-time nesting (see ProfilePhase). Opening a
/// nested phase suspends the parent's self-time accumulation; closing
/// resumes it. Scopes are thread-local and must nest (RAII enforces it).
class ScopedPhaseTimer {
 public:
#ifndef ESR_TRACE_DISABLED
  explicit ScopedPhaseTimer(ProfilePhase phase) {
    if (GlobalProfilerEnabled()) {
      open_ = true;
      internal::OpenPhaseSlow(phase);
    }
  }
  ~ScopedPhaseTimer() {
    if (open_) internal::ClosePhaseSlow();
  }
#else
  explicit ScopedPhaseTimer(ProfilePhase) {}
  ~ScopedPhaseTimer() = default;
#endif

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
#ifndef ESR_TRACE_DISABLED
  bool open_ = false;
#endif
};

/// Drop-in std::mutex wrapper (BasicLockable, so std::lock_guard works)
/// that doubles as a ContentionSite: uncontended locks cost one relaxed
/// load, a try_lock and a counter bump; contended locks read the
/// holder's TxnId *before* blocking and charge the measured wait to it.
/// The protected section publishes its identity with set_holder(txn)
/// right after acquiring. With the profiler disabled (or compiled out)
/// this is a plain mutex.
class ProfiledMutex {
 public:
  /// `site_name` must be a string literal (kept by pointer; the site is
  /// resolved lazily on first profiled lock).
  explicit ProfiledMutex(const char* site_name) : site_name_(site_name) {}

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() {
#ifndef ESR_TRACE_DISABLED
    if (GlobalProfilerEnabled()) {
      LockProfiled();
      return;
    }
#endif
    mu_.lock();
  }

  void unlock() {
#ifndef ESR_TRACE_DISABLED
    if (GlobalProfilerEnabled()) {
      holder_.store(kInvalidTxnId, std::memory_order_relaxed);
    }
#endif
    mu_.unlock();
  }

  bool try_lock() { return mu_.try_lock(); }

  /// Publishes the transaction the critical section currently serves, so
  /// contended waiters can blame it. Call while holding the lock.
  void set_holder(TxnId txn) {
#ifndef ESR_TRACE_DISABLED
    if (GlobalProfilerEnabled()) {
      holder_.store(txn, std::memory_order_relaxed);
    }
#else
    (void)txn;
#endif
  }

 private:
#ifndef ESR_TRACE_DISABLED
  void LockProfiled();
#endif

  std::mutex mu_;
  const char* site_name_;
  std::atomic<ContentionSite*> site_{nullptr};
  std::atomic<TxnId> holder_{kInvalidTxnId};
};

/// RAII timed wait against a contention site: measures the scope's
/// duration and charges it to `holder` on destruction. Inert when the
/// profiler is off or `site` is null. The threaded server wraps its
/// kWait retry backoff in one, blaming OpResult::blocker.
class ScopedSiteWait {
 public:
#ifndef ESR_TRACE_DISABLED
  ScopedSiteWait(ContentionSite* site, TxnId holder) {
    if (site != nullptr && GlobalProfilerEnabled()) {
      site_ = site;
      holder_ = holder;
      start_ns_ = ProfileNowNs();
    }
  }
  ~ScopedSiteWait() {
    if (site_ != nullptr) {
      site_->RecordWait(ProfileNowNs() - start_ns_, holder_);
    }
  }
#else
  ScopedSiteWait(ContentionSite*, TxnId) {}
  ~ScopedSiteWait() = default;
#endif

  ScopedSiteWait(const ScopedSiteWait&) = delete;
  ScopedSiteWait& operator=(const ScopedSiteWait&) = delete;

 private:
#ifndef ESR_TRACE_DISABLED
  ContentionSite* site_ = nullptr;
  TxnId holder_ = kInvalidTxnId;
  int64_t start_ns_ = 0;
#endif
};

/// Commit-latency totals the attribution is checked against (the
/// threaded server fills these from its client.txn_latency_ms
/// histogram). Phase self-times must sum to within a few percent of
/// total_ms — tools/esr_profile --check-coverage gates on it.
struct ProfileTxnTotals {
  uint64_t count = 0;
  double total_ms = 0.0;
};

/// Writes the snapshot as one JSON document:
///   {"profile": {"enabled": _, "txn": {...}, "phases": {...},
///                "threads": [...], "sites": [...]}}
/// consumed by tools/esr_profile.
void WriteProfileJson(const ProfileSnapshot& snapshot,
                      const ProfileTxnTotals& txn, bool enabled,
                      std::ostream& out);
Status WriteProfileJsonToFile(const ProfileSnapshot& snapshot,
                              const ProfileTxnTotals& txn, bool enabled,
                              const std::string& path);

}  // namespace esr

#endif  // ESR_OBS_PROFILE_H_
