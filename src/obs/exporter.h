#ifndef ESR_OBS_EXPORTER_H_
#define ESR_OBS_EXPORTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace esr {

/// Minimal streaming JSON writer: objects, arrays, scalar values, correct
/// string escaping, and finite-number handling (NaN/inf become null —
/// JSON has no encoding for them). No dependency beyond <ostream>; shared
/// by the metrics exporter, the trace exporter, and the bench harness.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes `"key":` inside an object; follow with a value call.
  void Key(const std::string& key);

  void Value(const std::string& value);
  void Value(const char* value);
  void Value(double value);
  void Value(int64_t value);
  void Value(uint64_t value);
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(bool value);
  void Null();

  // Key/value shorthands.
  template <typename T>
  void KV(const std::string& key, T value) {
    Key(key);
    Value(value);
  }

  static std::string Escape(const std::string& raw);

 private:
  /// Emits a separating comma when the previous sibling was a value.
  void BeforeValue();

  std::ostream& out_;
  /// Whether a comma is needed before the next element, per nesting level.
  std::vector<bool> needs_comma_{false};
  bool pending_key_ = false;
};

/// Writes the registry's counters, gauges, and histograms as one JSON
/// object:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {count, mean, min, max, stddev,
///                          p50, p90, p99, p999}, ...}}
void WriteMetricsJson(const MetricRegistry& metrics, std::ostream& out);

/// Writes the registry as CSV with a uniform header:
///   kind,name,count,value,mean,min,max,stddev,p50,p90,p99,p999
/// Counter and gauge rows fill value; histogram rows fill the summary
/// columns.
void WriteMetricsCsv(const MetricRegistry& metrics, std::ostream& out);

Status ExportMetricsJsonToFile(const MetricRegistry& metrics,
                               const std::string& path);
Status ExportMetricsCsvToFile(const MetricRegistry& metrics,
                              const std::string& path);

}  // namespace esr

#endif  // ESR_OBS_EXPORTER_H_
