#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>

namespace esr {

namespace internal {
std::atomic<bool> g_global_profiler_enabled{false};
}  // namespace internal

const char* ProfilePhaseToString(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kLockWait: return "lock_wait";
    case ProfilePhase::kRpc: return "rpc";
    case ProfilePhase::kValidate: return "validate";
    case ProfilePhase::kBoundWalk: return "bound_walk";
    case ProfilePhase::kApply: return "apply";
    case ProfilePhase::kCommit: return "commit";
  }
  return "unknown";
}

// -- ContentionSite ----------------------------------------------------------

namespace {

// log2 bucket index for a wait of `ns` nanoseconds (clamped).
size_t WaitBucketIndex(int64_t ns) {
  if (ns < 1) return 0;
  const size_t idx = 63 - static_cast<size_t>(__builtin_clzll(
                              static_cast<unsigned long long>(ns)));
  return std::min(idx, ContentionSite::kWaitBuckets - 1);
}

}  // namespace

void ContentionSite::RecordWait(int64_t wait_ns, TxnId holder) {
  if (wait_ns < 0) wait_ns = 0;
  contended_.fetch_add(1, std::memory_order_relaxed);
  total_wait_ns_.fetch_add(static_cast<uint64_t>(wait_ns),
                           std::memory_order_relaxed);
  wait_buckets_[WaitBucketIndex(wait_ns)].fetch_add(1,
                                                    std::memory_order_relaxed);
  uint64_t prev = max_wait_ns_.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(wait_ns) > prev &&
         !max_wait_ns_.compare_exchange_weak(prev,
                                             static_cast<uint64_t>(wait_ns),
                                             std::memory_order_relaxed)) {
  }
  if (holder == kInvalidTxnId) return;
  std::lock_guard<std::mutex> lock(blockers_mu_);
  BlockerEntry& entry = blockers_[holder];
  entry.txn = holder;
  entry.waits += 1;
  entry.total_wait_ns += static_cast<uint64_t>(wait_ns);
}

void ContentionSite::RecordConflict(TxnId holder) {
  conflicts_.fetch_add(1, std::memory_order_relaxed);
  if (holder == kInvalidTxnId) return;
  std::lock_guard<std::mutex> lock(blockers_mu_);
  BlockerEntry& entry = blockers_[holder];
  entry.txn = holder;
  entry.waits += 1;
}

ContentionSite::Snapshot ContentionSite::TakeSnapshot() const {
  Snapshot snap;
  snap.name = name_;
  snap.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  snap.contended = contended_.load(std::memory_order_relaxed);
  snap.conflicts = conflicts_.load(std::memory_order_relaxed);
  snap.total_wait_ns = total_wait_ns_.load(std::memory_order_relaxed);
  snap.max_wait_ns = max_wait_ns_.load(std::memory_order_relaxed);
  snap.wait_buckets.resize(kWaitBuckets);
  for (size_t i = 0; i < kWaitBuckets; ++i) {
    snap.wait_buckets[i] = wait_buckets_[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(blockers_mu_);
    snap.blockers.reserve(blockers_.size());
    for (const auto& [txn, entry] : blockers_) {
      snap.blockers.push_back(entry);
    }
  }
  std::sort(snap.blockers.begin(), snap.blockers.end(),
            [](const BlockerEntry& a, const BlockerEntry& b) {
              if (a.total_wait_ns != b.total_wait_ns) {
                return a.total_wait_ns > b.total_wait_ns;
              }
              if (a.waits != b.waits) return a.waits > b.waits;
              return a.txn < b.txn;
            });
  return snap;
}

void ContentionSite::Reset() {
  acquisitions_.store(0, std::memory_order_relaxed);
  contended_.store(0, std::memory_order_relaxed);
  conflicts_.store(0, std::memory_order_relaxed);
  total_wait_ns_.store(0, std::memory_order_relaxed);
  max_wait_ns_.store(0, std::memory_order_relaxed);
  for (auto& bucket : wait_buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(blockers_mu_);
  blockers_.clear();
}

double ContentionSite::Snapshot::WaitPercentileUs(double p) const {
  uint64_t total = 0;
  for (uint64_t c : wait_buckets) total += c;
  if (total == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Rank of the target sample (1-based ceiling, like Histogram).
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p * total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < wait_buckets.size(); ++i) {
    seen += wait_buckets[i];
    if (seen >= rank) {
      // Geometric midpoint of [2^i, 2^(i+1)) ns, reported in µs.
      const double lo = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
      return lo * std::sqrt(2.0) / 1000.0;
    }
  }
  return static_cast<double>(max_wait_ns) / 1000.0;
}

// -- Profiler ----------------------------------------------------------------

uint64_t ProfileSnapshot::TotalSelfNs() const {
  uint64_t total = 0;
  for (const PhaseSnapshot& phase : phases) total += phase.self_ns;
  return total;
}

void Profiler::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  if (this == &GlobalProfiler()) {
    internal::g_global_profiler_enabled.store(enabled,
                                              std::memory_order_relaxed);
  }
}

ContentionSite* Profiler::site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& site : sites_) {
    if (site->name() == name) return site.get();
  }
  sites_.push_back(std::make_unique<ContentionSite>(name));
  return sites_.back().get();
}

internal::PhaseThreadStats* Profiler::ThreadStats() {
  // One slot per (profiler, thread): the thread-local cache maps this
  // profiler to the slot it registered, so tests with local Profilers
  // don't cross-pollinate the global one.
  struct Cached {
    Profiler* owner = nullptr;
    internal::PhaseThreadStats* stats = nullptr;
  };
  thread_local Cached cached;
  if (cached.owner == this) return cached.stats;
  auto slot = std::make_unique<internal::PhaseThreadStats>();
  slot->lane = ThreadLaneId();
  internal::PhaseThreadStats* raw = slot.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.push_back(std::move(slot));
  }
  cached = Cached{this, raw};
  return raw;
}

ProfileSnapshot Profiler::Snapshot() const {
  ProfileSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.threads.reserve(threads_.size());
  for (const auto& thread : threads_) {
    ThreadProfile profile;
    profile.lane = thread->lane;
    bool any = false;
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      PhaseSnapshot& phase = profile.phases[p];
      phase.count = thread->count[p].load(std::memory_order_relaxed);
      phase.self_ns = thread->self_ns[p].load(std::memory_order_relaxed);
      phase.scope_ms = thread->scope_ms[p];
      any = any || phase.count > 0;
      snap.phases[p].count += phase.count;
      snap.phases[p].self_ns += phase.self_ns;
      snap.phases[p].scope_ms.Merge(phase.scope_ms);
    }
    if (any) snap.threads.push_back(std::move(profile));
  }
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const ThreadProfile& a, const ThreadProfile& b) {
              return a.lane < b.lane;
            });
  for (const auto& site : sites_) {
    ContentionSite::Snapshot s = site->TakeSnapshot();
    if (s.acquisitions > 0 || s.contended > 0 || s.conflicts > 0) {
      snap.sites.push_back(std::move(s));
    }
  }
  std::sort(snap.sites.begin(), snap.sites.end(),
            [](const ContentionSite::Snapshot& a,
               const ContentionSite::Snapshot& b) {
              if (a.total_wait_ns != b.total_wait_ns) {
                return a.total_wait_ns > b.total_wait_ns;
              }
              return a.name < b.name;
            });
  return snap;
}

void Profiler::ExportLiveGauges(MetricRegistry* metrics) const {
  uint64_t counts[kNumProfilePhases] = {};
  uint64_t self_ns[kNumProfilePhases] = {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& thread : threads_) {
      for (size_t p = 0; p < kNumProfilePhases; ++p) {
        counts[p] += thread->count[p].load(std::memory_order_relaxed);
        self_ns[p] += thread->self_ns[p].load(std::memory_order_relaxed);
      }
    }
    for (const auto& site : sites_) {
      ContentionSite::Snapshot s = site->TakeSnapshot();
      if (s.acquisitions == 0 && s.contended == 0 && s.conflicts == 0) {
        continue;
      }
      const std::string prefix = "profile.site." + s.name;
      metrics->gauge(prefix + ".acquisitions")
          .Set(static_cast<double>(s.acquisitions));
      metrics->gauge(prefix + ".contended")
          .Set(static_cast<double>(s.contended));
      metrics->gauge(prefix + ".conflicts")
          .Set(static_cast<double>(s.conflicts));
      metrics->gauge(prefix + ".wait_ms")
          .Set(static_cast<double>(s.total_wait_ns) / 1e6);
    }
  }
  for (size_t p = 0; p < kNumProfilePhases; ++p) {
    const char* name = ProfilePhaseToString(static_cast<ProfilePhase>(p));
    metrics->gauge(std::string("profile.phase_count.") + name)
        .Set(static_cast<double>(counts[p]));
    metrics->gauge(std::string("profile.phase_self_ms.") + name)
        .Set(static_cast<double>(self_ns[p]) / 1e6);
  }
}

void Profiler::ExportPhaseHistograms(MetricRegistry* metrics) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t p = 0; p < kNumProfilePhases; ++p) {
    const char* name = ProfilePhaseToString(static_cast<ProfilePhase>(p));
    Histogram merged;
    for (const auto& thread : threads_) {
      merged.Merge(thread->scope_ms[p]);
    }
    if (merged.count() == 0) continue;
    Histogram& out = metrics->histogram(std::string("profile.phase_ms.") +
                                        name);
    out.Merge(merged);
  }
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& thread : threads_) {
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      thread->count[p].store(0, std::memory_order_relaxed);
      thread->self_ns[p].store(0, std::memory_order_relaxed);
      thread->scope_ms[p].Reset();
    }
  }
  for (const auto& site : sites_) {
    site->Reset();
  }
}

Profiler& GlobalProfiler() {
  // Leaked like GlobalTrace(): probes on detached threads may fire during
  // static destruction.
  static Profiler* profiler = new Profiler();
  return *profiler;
}

// -- ScopedPhaseTimer --------------------------------------------------------

#ifndef ESR_TRACE_DISABLED
namespace internal {
namespace {

struct PhaseFrame {
  ProfilePhase phase;
  int64_t scope_start_ns;
};

// Per-thread stack of open phase scopes. `seg_start_ns` marks where the
// current self-time segment began (the top frame owns the time since
// then); opening or closing a frame settles the segment into the frame
// that owned it and starts a new one.
struct PhaseStack {
  PhaseThreadStats* stats = nullptr;
  PhaseFrame frames[16];
  int depth = 0;
  int64_t seg_start_ns = 0;
};

thread_local PhaseStack t_phase_stack;

}  // namespace

void OpenPhaseSlow(ProfilePhase phase) {
  PhaseStack& stack = t_phase_stack;
  if (stack.stats == nullptr) {
    stack.stats = GlobalProfiler().ThreadStats();
  }
  const int64_t now = ProfileNowNs();
  if (stack.depth > 0 &&
      stack.depth <= static_cast<int>(std::size(stack.frames))) {
    // Settle the running segment into the parent's self time.
    const PhaseFrame& parent = stack.frames[stack.depth - 1];
    stack.stats->self_ns[static_cast<size_t>(parent.phase)].fetch_add(
        static_cast<uint64_t>(now - stack.seg_start_ns),
        std::memory_order_relaxed);
  }
  if (stack.depth < static_cast<int>(std::size(stack.frames))) {
    stack.frames[stack.depth] = PhaseFrame{phase, now};
  }
  ++stack.depth;  // Overflow frames still count for balanced Close.
  stack.seg_start_ns = now;
}

void ClosePhaseSlow() {
  PhaseStack& stack = t_phase_stack;
  if (stack.depth <= 0) return;
  const int64_t now = ProfileNowNs();
  --stack.depth;
  if (stack.depth < static_cast<int>(std::size(stack.frames))) {
    const PhaseFrame& frame = stack.frames[stack.depth];
    const size_t p = static_cast<size_t>(frame.phase);
    stack.stats->self_ns[p].fetch_add(
        static_cast<uint64_t>(now - stack.seg_start_ns),
        std::memory_order_relaxed);
    stack.stats->count[p].fetch_add(1, std::memory_order_relaxed);
    stack.stats->scope_ms[p].Record(
        static_cast<double>(now - frame.scope_start_ns) / 1e6);
  }
  stack.seg_start_ns = now;
}

}  // namespace internal

// -- ProfiledMutex -----------------------------------------------------------

void ProfiledMutex::LockProfiled() {
  ContentionSite* site = site_.load(std::memory_order_acquire);
  if (site == nullptr) {
    site = GlobalProfiler().site(site_name_);
    site_.store(site, std::memory_order_release);
  }
  site->RecordAcquisition();
  if (mu_.try_lock()) return;
  // Contended: read who holds the latch *before* blocking, then time the
  // wait. The holder may change mid-wait; blaming the holder at wait
  // start matches what a sampling profiler would observe.
  const TxnId holder = holder_.load(std::memory_order_relaxed);
  const int64_t start = ProfileNowNs();
  mu_.lock();
  site->RecordWait(ProfileNowNs() - start, holder);
}
#endif  // !ESR_TRACE_DISABLED

// -- JSON export -------------------------------------------------------------

namespace {

void WritePhaseObject(const PhaseSnapshot& phase, double txn_total_ms,
                      std::ostream& out) {
  const double self_ms = static_cast<double>(phase.self_ns) / 1e6;
  const PercentileSummary pct = phase.scope_ms.Percentiles();
  out << "{\"count\": " << phase.count << ", \"self_ms\": " << self_ms
      << ", \"frac_of_txn\": "
      << (txn_total_ms > 0 ? self_ms / txn_total_ms : 0.0)
      << ", \"mean_ms\": " << phase.scope_ms.mean()
      << ", \"max_ms\": " << phase.scope_ms.max()
      << ", \"p50_ms\": " << pct.p50 << ", \"p90_ms\": " << pct.p90
      << ", \"p99_ms\": " << pct.p99 << ", \"p999_ms\": " << pct.p999 << "}";
}

}  // namespace

void WriteProfileJson(const ProfileSnapshot& snapshot,
                      const ProfileTxnTotals& txn, bool enabled,
                      std::ostream& out) {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(12);
  out << "{\n  \"profile\": {\n";
  out << "    \"enabled\": " << (enabled ? "true" : "false") << ",\n";
  out << "    \"txn\": {\"count\": " << txn.count
      << ", \"total_ms\": " << txn.total_ms << "},\n";
  out << "    \"coverage_ms\": "
      << static_cast<double>(snapshot.TotalSelfNs()) / 1e6 << ",\n";
  out << "    \"phases\": {";
  bool first = true;
  for (size_t p = 0; p < kNumProfilePhases; ++p) {
    if (!first) out << ",";
    first = false;
    out << "\n      \""
        << ProfilePhaseToString(static_cast<ProfilePhase>(p)) << "\": ";
    WritePhaseObject(snapshot.phases[p], txn.total_ms, out);
  }
  out << "\n    },\n";
  out << "    \"threads\": [";
  first = true;
  for (const ThreadProfile& thread : snapshot.threads) {
    if (!first) out << ",";
    first = false;
    out << "\n      {\"lane\": " << thread.lane << ", \"phases\": {";
    bool first_phase = true;
    for (size_t p = 0; p < kNumProfilePhases; ++p) {
      const PhaseSnapshot& phase = thread.phases[p];
      if (phase.count == 0) continue;
      if (!first_phase) out << ", ";
      first_phase = false;
      out << "\"" << ProfilePhaseToString(static_cast<ProfilePhase>(p))
          << "\": {\"count\": " << phase.count << ", \"self_ms\": "
          << static_cast<double>(phase.self_ns) / 1e6 << "}";
    }
    out << "}}";
  }
  out << "\n    ],\n";
  out << "    \"sites\": [";
  first = true;
  for (const ContentionSite::Snapshot& site : snapshot.sites) {
    if (!first) out << ",";
    first = false;
    out << "\n      {\"name\": \"" << site.name
        << "\", \"acquisitions\": " << site.acquisitions
        << ", \"contended\": " << site.contended
        << ", \"conflicts\": " << site.conflicts << ", \"total_wait_ms\": "
        << static_cast<double>(site.total_wait_ns) / 1e6
        << ", \"max_wait_ms\": "
        << static_cast<double>(site.max_wait_ns) / 1e6
        << ", \"p50_wait_us\": " << site.WaitPercentileUs(0.5)
        << ", \"p99_wait_us\": " << site.WaitPercentileUs(0.99)
        << ", \"blockers\": [";
    bool first_blocker = true;
    for (const ContentionSite::BlockerEntry& blocker : site.blockers) {
      if (!first_blocker) out << ", ";
      first_blocker = false;
      out << "{\"txn\": " << blocker.txn << ", \"waits\": " << blocker.waits
          << ", \"total_wait_ms\": "
          << static_cast<double>(blocker.total_wait_ns) / 1e6 << "}";
    }
    out << "]}";
  }
  out << "\n    ]\n  }\n}\n";
  out.flags(flags);
  out.precision(precision);
}

Status WriteProfileJsonToFile(const ProfileSnapshot& snapshot,
                              const ProfileTxnTotals& txn, bool enabled,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open profile output file: " + path);
  }
  WriteProfileJson(snapshot, txn, enabled, out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing profile to: " + path);
  }
  return Status::OK();
}

}  // namespace esr
