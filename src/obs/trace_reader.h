#ifndef ESR_OBS_TRACE_READER_H_
#define ESR_OBS_TRACE_READER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace esr {

/// Recorder metadata carried in the Chrome trace's "otherData" object.
struct TraceMetadata {
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  uint64_t capacity = 0;
  /// The capture file itself was cut short (process died mid-write) and
  /// only the contiguous prefix of event lines could be salvaged. Distinct
  /// from `dropped`, which counts ring-wraparound loss at record time.
  bool truncated = false;
};

/// Parses a Chrome trace-event JSON document produced by
/// TraceRecorder::ExportChromeTrace back into TraceEvents (inverse of the
/// exporter; the auditor and its tests run on this). Accepts both the
/// object form ({"traceEvents":[...]}) and a bare event array. Unknown
/// event names and phases are skipped, not errors, so traces from newer
/// writers still load.
///
/// Lossy captures degrade instead of failing: a file cut mid-write is
/// salvaged line by line up to the truncation point (the exporter writes
/// one event per line) with `metadata->truncated` set, and ring-wraparound
/// loss (`dropped > 0` in otherData) is reported with a warning log — in
/// both cases the caller gets the contiguous portion and certification
/// stays sound, since lost charges can only under-count accumulation.
Status ReadChromeTrace(const std::string& json, std::vector<TraceEvent>* out,
                       TraceMetadata* metadata = nullptr);

/// File variant of ReadChromeTrace.
Status ReadChromeTraceFile(const std::string& path,
                           std::vector<TraceEvent>* out,
                           TraceMetadata* metadata = nullptr);

}  // namespace esr

#endif  // ESR_OBS_TRACE_READER_H_
