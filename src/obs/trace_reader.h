#ifndef ESR_OBS_TRACE_READER_H_
#define ESR_OBS_TRACE_READER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace esr {

/// Recorder metadata carried in the Chrome trace's "otherData" object.
struct TraceMetadata {
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  uint64_t capacity = 0;
};

/// Parses a Chrome trace-event JSON document produced by
/// TraceRecorder::ExportChromeTrace back into TraceEvents (inverse of the
/// exporter; the auditor and its tests run on this). Accepts both the
/// object form ({"traceEvents":[...]}) and a bare event array. Unknown
/// event names and phases are skipped, not errors, so traces from newer
/// writers still load.
Status ReadChromeTrace(const std::string& json, std::vector<TraceEvent>* out,
                       TraceMetadata* metadata = nullptr);

/// File variant of ReadChromeTrace.
Status ReadChromeTraceFile(const std::string& path,
                           std::vector<TraceEvent>* out,
                           TraceMetadata* metadata = nullptr);

}  // namespace esr

#endif  // ESR_OBS_TRACE_READER_H_
