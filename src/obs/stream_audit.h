#ifndef ESR_OBS_STREAM_AUDIT_H_
#define ESR_OBS_STREAM_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "hierarchy/bound_replay.h"
#include "obs/trace.h"

namespace esr {

/// Configuration of one streaming certification session.
struct StreamCertifierOptions {
  /// Certification window length; aligned with the series sampler's
  /// windows so "certified through t" lines up with telemetry windows.
  double window_s = 1.0;
  /// Timestamp (recorder time source units) of window 0's left edge: the
  /// simulator passes 0 (virtual time starts there), the threaded server
  /// passes its start-of-run wall clock.
  int64_t epoch_micros = 0;
  /// Label used in violation log records ("" = unlabeled).
  std::string source;
  /// Emit an ESR_LOG(kError) record per violation as it is caught.
  bool log_violations = true;
  /// Record a kViolation marker event into the global trace per violation
  /// (safe to enable when the certifier is fed by the recorder itself:
  /// observer callbacks are not re-entered for their own records).
  bool emit_trace_events = false;
};

/// Per-node live certification state.
struct NodeCertification {
  uint64_t group = 0;
  uint16_t level = 0;
  size_t checks = 0;
  bool violated = false;
  /// Node watermark, seconds since the epoch; frozen at the violating
  /// window's left edge once `violated`.
  double certified_through_s = 0.0;
};

/// Snapshot of a certification session — the streaming counterpart of
/// AuditReport's bound-recertification section, sharing BoundViolation so
/// the two can be diffed field by field.
struct StreamCertification {
  /// False when certification never ran (flag off, or tracing compiled
  /// out so there was no event stream to observe).
  bool enabled = false;
  double window_s = 1.0;
  size_t events_observed = 0;
  size_t walks_replayed = 0;
  size_t charges_applied = 0;
  size_t windows_closed = 0;
  /// Latest time observed (events or AdvanceTo heartbeats), seconds since
  /// the epoch.
  double observed_through_s = 0.0;
  /// Aggregate monotone watermark: every bound proven to hold on
  /// [certified_from_s, certified_through_s). Frozen at the violating
  /// window's left edge once a violation is caught.
  double certified_through_s = 0.0;
  /// Left edge of the certified range: 0 for complete captures, the first
  /// fully-observed window when a lossy prefix was reported.
  double certified_from_s = 0.0;
  /// (observed - certified) / window — how far live certification trails
  /// the present.
  double lag_windows = 0.0;
  /// Events lost before the stream started (ring wraparound on a replayed
  /// capture); floors certified_from_s.
  uint64_t lost_prefix_events = 0;
  std::vector<BoundViolation> violations;
  /// Conflict chain blamed per violation (parallel to `violations`): the
  /// writers this transaction had waited on before the crossing, oldest
  /// first.
  std::vector<std::vector<TxnId>> blamed_writers;
  std::vector<NodeCertification> nodes;

  bool certified() const { return violations.empty(); }
};

/// Incremental streaming certifier: consumes trace events as they are
/// recorded (TraceRecorder::SetObserver) or replayed, recertifies the
/// Sec. 5.3.1 bound walk through the shared BoundWalkReplayer, and
/// maintains the monotone "certified through t" watermark per node and in
/// aggregate. Thread-safe: the threaded server's engine threads call
/// Observe concurrently via the recorder observer hook while the metrics
/// thread polls the watermark.
class StreamCertifier {
 public:
  explicit StreamCertifier(StreamCertifierOptions options = {});

  /// TraceRecorder::SetObserver trampoline; `ctx` is the StreamCertifier.
  static void ObserveTrampoline(void* ctx, const TraceEvent& event);

  /// Feeds one event, in stream order per transaction.
  void Observe(const TraceEvent& event);

  /// Heartbeat: closes windows up to `ts_micros` even when no event has
  /// been observed lately (idle system, quiet tail of a run).
  void AdvanceTo(int64_t ts_micros);

  /// Reports record-time loss before the observed stream (auditing a
  /// wrapped capture): certification can only vouch from the first fully
  /// observed window onward.
  void NoteLostPrefix(uint64_t lost_events, int64_t first_retained_ts);

  // -- Live gauges (each takes the lock; cheap) ---------------------------
  double certified_through_s() const;
  double lag_windows() const;
  size_t violation_count() const;
  bool certified() const;

  /// Full snapshot; violations without a captured transaction end get
  /// ts_end = last observed event timestamp, mirroring the offline
  /// auditor.
  StreamCertification Snapshot() const;

 private:
  struct NodeState {
    uint16_t level = 0;
    size_t checks = 0;
    bool violated = false;
    /// Watermark ceiling (left edge of the violating window); INT64_MAX
    /// until the node violates.
    int64_t freeze_micros = INT64_MAX;
  };

  int64_t ClosedBoundary(int64_t ts) const;  // requires mu_ held
  double ToSeconds(int64_t ts) const;
  void RecordViolation(const TraceEvent& event, size_t index);

  const StreamCertifierOptions options_;
  const int64_t window_micros_;

  mutable std::mutex mu_;
  BoundWalkReplayer replayer_;
  size_t events_observed_ = 0;
  int64_t observed_through_;
  int64_t last_event_ts_;
  int64_t certified_from_;
  /// Aggregate watermark ceiling; INT64_MAX until the first violation.
  int64_t freeze_micros_;
  uint64_t lost_prefix_events_ = 0;
  std::map<uint64_t, NodeState> nodes_;
  std::vector<std::vector<TxnId>> blamed_writers_;
  /// Writers each live transaction waited on (blame candidates); dropped
  /// at transaction end.
  std::unordered_map<TxnId, std::vector<TxnId>> waits_;
};

// -- Schedule perturbation (violation hunting) ----------------------------

struct PerturbOptions {
  uint64_t seed = 1;
  /// A site whose next event lies within this horizon of the earliest
  /// pending event is eligible to be drawn next; bounds how far commit
  /// order can drift from the captured timing.
  int64_t horizon_micros = 50'000;
  /// Max per-event timestamp jitter added during the merge.
  int64_t jitter_micros = 500;
};

/// Rebuilds a captured schedule under a seeded commit-order/timing
/// perturbation that preserves each site's (client's) program order:
/// events are partitioned into per-site lanes and re-merged by repeatedly
/// drawing uniformly among the lanes whose head lies within
/// `horizon_micros` of the earliest head. Output timestamps are jittered
/// and made non-decreasing.
std::vector<TraceEvent> PerturbSchedule(const std::vector<TraceEvent>& events,
                                        const PerturbOptions& options);

/// Shrinks a violating schedule to a minimal reproduction: the violating
/// transaction's bound-relevant events, truncated right after the walk
/// that crosses the limit, re-verified to still violate. Returns an empty
/// vector when `schedule` does not violate.
std::vector<TraceEvent> MinimizeViolatingSchedule(
    const std::vector<TraceEvent>& schedule, double window_s);

/// Verdict of one perturbed schedule.
struct PerturbVerdict {
  uint64_t seed = 0;
  size_t violations = 0;
  double certified_through_s = 0.0;
};

/// Result of a perturbation hunt over N seeded schedules.
struct PerturbReport {
  size_t schedules = 0;
  size_t violating = 0;
  std::vector<PerturbVerdict> verdicts;
  /// First violating schedule's seed, its violations, and its minimized
  /// reproduction; empty/0 when every schedule certified.
  uint64_t first_violating_seed = 0;
  std::vector<BoundViolation> first_violations;
  std::vector<TraceEvent> minimal_schedule;
};

/// Replays `events` under `n` seeded perturbations (seeds base_seed ..
/// base_seed + n - 1), streaming each through a certifier.
PerturbReport HuntPerturbations(const std::vector<TraceEvent>& events,
                                size_t n, uint64_t base_seed,
                                double window_s);

}  // namespace esr

#endif  // ESR_OBS_STREAM_AUDIT_H_
