#ifndef ESR_OBS_PROMETHEUS_H_
#define ESR_OBS_PROMETHEUS_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"

namespace esr {

/// Writes the registry in Prometheus text exposition format 0.0.4:
/// counters as `esr_<name>_total`, gauges as `esr_<name>`, histograms as
/// summaries
/// (`esr_<name>{quantile="0.5"}` ... plus `_sum`/`_count`). Metric names
/// are sanitized (dots and dashes become underscores) and prefixed with
/// `esr_` so a scrape of a mixed fleet stays collision-free.
void WritePrometheusText(const MetricRegistry& metrics, std::ostream& out);

/// `esr_` + `name` with every character Prometheus disallows in metric
/// names replaced by '_'.
std::string PrometheusMetricName(const std::string& name);

/// Minimal blocking HTTP/1.0 server exposing a /metrics endpoint, backed
/// by plain POSIX sockets (no dependencies). One accept loop on a
/// background thread hands each connection to a short-lived handler
/// thread, response rendered by a caller-supplied callback — an
/// indirection rather than a registry pointer because the
/// threaded-server example swaps its MetricRegistry per epsilon level
/// while the endpoint stays up.
///
/// GET /metrics returns the render callback's output as
/// text/plain; version=0.0.4. Any other path returns 404. Concurrent
/// scrapes are safe: renders are serialized internally, and a stalled
/// client (connected but never sending) is cut off by a receive timeout
/// instead of blocking other scrapers. Still not a general web server.
class MetricsHttpServer {
 public:
  using RenderFn = std::function<std::string()>;

  /// `render` runs on a per-connection handler thread but calls are
  /// serialized by an internal mutex, so it only needs to be safe against
  /// the rest of the program, not against itself.
  explicit MetricsHttpServer(RenderFn render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — query port()
  /// after Start) and launches the accept loop.
  Status Start(uint16_t port);

  /// Stops the accept loop, joins the thread, and drains in-flight
  /// connection handlers (each bounded by the receive timeout) so the
  /// render callback cannot fire after Stop returns. Idempotent; also
  /// called by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  RenderFn render_;
  /// Serializes render_ invocations across concurrent scrapes.
  std::mutex render_mu_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  /// Detached handler threads still running; Stop spins until zero.
  std::atomic<int> active_connections_{0};
  std::thread thread_;
};

}  // namespace esr

#endif  // ESR_OBS_PROMETHEUS_H_
