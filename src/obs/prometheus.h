#ifndef ESR_OBS_PROMETHEUS_H_
#define ESR_OBS_PROMETHEUS_H_

#include <atomic>
#include <functional>
#include <ostream>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"

namespace esr {

/// Writes the registry in Prometheus text exposition format 0.0.4:
/// counters as `esr_<name>_total`, gauges as `esr_<name>`, histograms as
/// summaries
/// (`esr_<name>{quantile="0.5"}` ... plus `_sum`/`_count`). Metric names
/// are sanitized (dots and dashes become underscores) and prefixed with
/// `esr_` so a scrape of a mixed fleet stays collision-free.
void WritePrometheusText(const MetricRegistry& metrics, std::ostream& out);

/// `esr_` + `name` with every character Prometheus disallows in metric
/// names replaced by '_'.
std::string PrometheusMetricName(const std::string& name);

/// Minimal blocking HTTP/1.0 server exposing a /metrics endpoint, backed
/// by plain POSIX sockets (no dependencies). One accept loop on a
/// background thread, one request per connection, response rendered by a
/// caller-supplied callback — an indirection rather than a registry
/// pointer because the threaded-server example swaps its MetricRegistry
/// per epsilon level while the endpoint stays up.
///
/// GET /metrics returns the render callback's output as
/// text/plain; version=0.0.4. Any other path returns 404. Not a general
/// web server: single-threaded handling is plenty for a scraper.
class MetricsHttpServer {
 public:
  using RenderFn = std::function<std::string()>;

  /// `render` is invoked on the accept thread for every scrape; it must
  /// be safe to call concurrently with the rest of the program.
  explicit MetricsHttpServer(RenderFn render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — query port()
  /// after Start) and launches the accept loop.
  Status Start(uint16_t port);

  /// Stops the accept loop and joins the thread. Idempotent; also called
  /// by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();

  RenderFn render_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace esr

#endif  // ESR_OBS_PROMETHEUS_H_
