#include "obs/json_value.h"

#include <cctype>
#include <cstdlib>

namespace esr {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    error_.clear();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Literal("false", 5);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
          out->push_back('?');
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  JsonParser parser(text);
  const bool ok = parser.Parse(out);
  if (!ok && error != nullptr) *error = parser.error();
  return ok;
}

}  // namespace esr
