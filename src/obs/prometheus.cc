#include "obs/prometheus.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

namespace esr {

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "esr_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void WriteSample(std::ostream& out, const std::string& name,
                 const std::string& labels, double value) {
  out << name << labels << " ";
  if (std::isnan(value)) {
    out << "NaN";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << buf;
  }
  out << "\n";
}

/// One-line # HELP text for a metric family. Families with documented
/// semantics get specific text; everything else falls back to a generic
/// per-kind description so every family still carries a HELP line
/// (text-format convention: HELP precedes TYPE).
std::string HelpText(const std::string& dotted, const char* kind) {
  if (dotted == "certified_through_seconds") {
    return "Streaming-certification watermark: every hierarchical "
           "inconsistency bound proven to hold through this run time "
           "(seconds); freezes at the first violation's window.";
  }
  if (dotted == "certification_lag_windows") {
    return "How many certification windows live certification trails the "
           "latest observed event.";
  }
  if (dotted == "headroom.min_frac") {
    return "Tightest epsilon headroom across all hierarchy nodes: "
           "min (limit - accumulated) / limit over the sampled windows.";
  }
  if (dotted.rfind("headroom.min_frac.", 0) == 0) {
    return "Tightest epsilon headroom of hierarchy node '" +
           dotted.substr(std::strlen("headroom.min_frac.")) +
           "': min (limit - accumulated) / limit over the sampled windows.";
  }
  if (dotted.rfind("profile.phase_ms.", 0) == 0) {
    return "Full-scope wall-clock duration (ms) of profiler phase '" +
           dotted.substr(std::strlen("profile.phase_ms.")) +
           "' on the real-thread path (nested child phases included).";
  }
  if (dotted.rfind("profile.phase_self_ms.", 0) == 0) {
    return "Cumulative wall-clock self-time (ms) attributed to profiler "
           "phase '" +
           dotted.substr(std::strlen("profile.phase_self_ms.")) +
           "' across all threads (nested child phases excluded).";
  }
  if (dotted.rfind("profile.phase_count.", 0) == 0) {
    return "Completed scopes of profiler phase '" +
           dotted.substr(std::strlen("profile.phase_count.")) + "'.";
  }
  if (dotted.rfind("profile.site.", 0) == 0) {
    return "Contention-site statistic " + dotted +
           ": acquisitions, timed contended waits, untimed logical "
           "conflicts, or total wait milliseconds at one profiled lock "
           "or charge path.";
  }
  if (std::strcmp(kind, "counter") == 0) {
    return "Monotonic count of " + dotted + " events.";
  }
  if (std::strcmp(kind, "gauge") == 0) {
    return "Last published value of " + dotted + ".";
  }
  return "Distribution of " + dotted + " samples.";
}

void WriteFamilyHeader(std::ostream& out, const std::string& dotted,
                       const std::string& prom, const char* kind) {
  out << "# HELP " << prom << " " << HelpText(dotted, kind) << "\n";
  out << "# TYPE " << prom << " " << kind << "\n";
}

/// Matches the sharded engine's dotted per-shard stats,
/// "engine.shard<i>.<stat>", yielding the stat slug and shard index.
/// "engine.shards" and "engine.shard<i>" without a stat do not match.
bool ParseShardStat(const std::string& dotted, std::string* stat,
                    long* shard) {
  static const char kPrefix[] = "engine.shard";
  if (dotted.rfind(kPrefix, 0) != 0) return false;
  size_t pos = std::strlen(kPrefix);
  size_t digits = 0;
  long index = 0;
  while (pos < dotted.size() &&
         std::isdigit(static_cast<unsigned char>(dotted[pos]))) {
    index = index * 10 + (dotted[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0 || pos >= dotted.size() || dotted[pos] != '.') return false;
  *stat = dotted.substr(pos + 1);
  if (stat->empty()) return false;
  *shard = index;
  return true;
}

/// Matches the health monitor's per-detector liveness gauges,
/// "alert.active.<detector>".
bool ParseAlertActive(const std::string& dotted, std::string* detector) {
  static const char kPrefix[] = "alert.active.";
  if (dotted.rfind(kPrefix, 0) != 0) return false;
  *detector = dotted.substr(std::strlen(kPrefix));
  return !detector->empty();
}

}  // namespace

void WritePrometheusText(const MetricRegistry& metrics, std::ostream& out) {
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    const std::string prom = PrometheusMetricName(name) + "_total";
    WriteFamilyHeader(out, name, prom, "counter");
    out << prom << " " << value << "\n";
  }
  // Dotted per-shard and per-detector gauge names are promoted to
  // labeled Prometheus families (esr_shard_ops{shard="3"},
  // esr_alert_active{detector="abort_livelock"}) so dashboards can
  // aggregate across the label instead of regex-matching name suffixes.
  // The dotted spellings stay canonical everywhere else (JSON/CSV
  // exporters, FindGauge); only the text exposition re-groups them.
  // map keeps families and label values deterministically ordered —
  // shards numerically via the long key, stats lexicographically.
  std::map<std::string, std::map<long, double>> shard_families;
  std::map<std::string, double> alert_active;
  for (const auto& [name, value] : metrics.GaugeSnapshot()) {
    std::string stat;
    long shard = 0;
    if (ParseShardStat(name, &stat, &shard)) {
      shard_families[stat][shard] = value;
      continue;
    }
    std::string detector;
    if (ParseAlertActive(name, &detector)) {
      alert_active[detector] = value;
      continue;
    }
    const std::string prom = PrometheusMetricName(name);
    WriteFamilyHeader(out, name, prom, "gauge");
    WriteSample(out, prom, "", value);
  }
  if (!alert_active.empty()) {
    const std::string prom = "esr_alert_active";
    out << "# HELP " << prom
        << " 1 while the named health detector has an open alert "
           "episode, 0 otherwise (obs/health).\n";
    out << "# TYPE " << prom << " gauge\n";
    for (const auto& [detector, value] : alert_active) {
      WriteSample(out, prom, "{detector=\"" + detector + "\"}", value);
    }
  }
  for (const auto& [stat, samples] : shard_families) {
    const std::string prom =
        PrometheusMetricName("shard." + stat);
    out << "# HELP " << prom << " Per-shard " << stat
        << " from the sharded engine's consistent stats snapshot, "
           "labeled by shard index.\n";
    out << "# TYPE " << prom << " gauge\n";
    for (const auto& [shard, value] : samples) {
      WriteSample(out, prom, "{shard=\"" + std::to_string(shard) + "\"}",
                  value);
    }
  }
  for (const auto& [name, hist] : metrics.HistogramSnapshot()) {
    const std::string prom = PrometheusMetricName(name);
    WriteFamilyHeader(out, name, prom, "summary");
    const PercentileSummary p = hist.Percentiles();
    WriteSample(out, prom, "{quantile=\"0.5\"}", p.p50);
    WriteSample(out, prom, "{quantile=\"0.9\"}", p.p90);
    WriteSample(out, prom, "{quantile=\"0.99\"}", p.p99);
    WriteSample(out, prom, "{quantile=\"0.999\"}", p.p999);
    WriteSample(out, prom + "_sum", "",
                hist.mean() * static_cast<double>(hist.count()));
    out << prom << "_count " << hist.count() << "\n";
  }
}

MetricsHttpServer::MetricsHttpServer(RenderFn render)
    : render_(std::move(render)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("metrics server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind(): " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen(): " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&MetricsHttpServer::AcceptLoop, this);
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocked accept() so the loop observes running_
  // == false and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Drain in-flight handlers so render_ cannot fire after Stop returns
  // (the owner is about to tear down whatever the callback captures).
  // Each handler is bounded by the connection receive timeout.
  while (active_connections_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void MetricsHttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure; keep serving
    }
    // One short-lived thread per connection, so a slow or stalled client
    // cannot block the next scraper. Handlers are detached; Stop drains
    // them via active_connections_.
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    std::thread(&MetricsHttpServer::HandleConnection, this, fd).detach();
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Cut off clients that connect but never send a request line; without
  // this a stalled scraper would pin its handler (and the Stop drain)
  // indefinitely.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char buf[2048];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  std::string request =
      n > 0 ? std::string(buf, static_cast<size_t>(n)) : std::string();
  // "GET <path> HTTP/1.x" — only the path matters.
  std::string path;
  {
    std::istringstream line(request);
    std::string method;
    line >> method >> path;
  }
  std::string response;
  if (path == "/metrics" || path == "/") {
    std::string body;
    if (render_) {
      std::lock_guard<std::mutex> lock(render_mu_);
      body = render_();
    }
    std::ostringstream r;
    r << "HTTP/1.0 200 OK\r\n"
      << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
    response = r.str();
  } else {
    static const char kNotFound[] =
        "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: "
        "close\r\n\r\n";
    response = kNotFound;
  }
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t w =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  ::close(fd);
  active_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace esr
