#include "obs/exporter.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace esr {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (needs_comma_.back()) out_ << ",";
  needs_comma_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << "{";
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ << "}";
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << "[";
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ << "]";
}

void JsonWriter::Key(const std::string& key) {
  if (needs_comma_.back()) out_ << ",";
  needs_comma_.back() = true;
  out_ << "\"" << Escape(key) << "\":";
  pending_key_ = true;
}

void JsonWriter::Value(const std::string& value) {
  BeforeValue();
  out_ << "\"" << Escape(value) << "\"";
}

void JsonWriter::Value(const char* value) { Value(std::string(value)); }

void JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ << buf;
}

void JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Value(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
}

std::string JsonWriter::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteMetricsJson(const MetricRegistry& metrics, std::ostream& out) {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    w.KV(name, value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : metrics.GaugeSnapshot()) {
    w.KV(name, value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : metrics.HistogramSnapshot()) {
    const PercentileSummary p = h.Percentiles();
    w.Key(name);
    w.BeginObject();
    w.KV("count", h.count());
    w.KV("mean", h.mean());
    w.KV("min", h.min());
    w.KV("max", h.max());
    w.KV("stddev", h.stddev());
    w.KV("p50", p.p50);
    w.KV("p90", p.p90);
    w.KV("p99", p.p99);
    w.KV("p999", p.p999);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  out << "\n";
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

void WriteMetricsCsv(const MetricRegistry& metrics, std::ostream& out) {
  out << "kind,name,count,value,mean,min,max,stddev,p50,p90,p99,p999\n";
  char buf[352];
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    std::snprintf(buf, sizeof(buf), "counter,%s,,%lld,,,,,,,,\n",
                  CsvEscape(name).c_str(), static_cast<long long>(value));
    out << buf;
  }
  for (const auto& [name, value] : metrics.GaugeSnapshot()) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,,%g,,,,,,,,\n",
                  CsvEscape(name).c_str(), value);
    out << buf;
  }
  for (const auto& [name, h] : metrics.HistogramSnapshot()) {
    const PercentileSummary p = h.Percentiles();
    std::snprintf(buf, sizeof(buf),
                  "histogram,%s,%lld,,%g,%g,%g,%g,%g,%g,%g,%g\n",
                  CsvEscape(name).c_str(),
                  static_cast<long long>(h.count()), h.mean(), h.min(),
                  h.max(), h.stddev(), p.p50, p.p90, p.p99, p.p999);
    out << buf;
  }
}

namespace {

Status WriteToFile(const std::string& path,
                   void (*writer)(const MetricRegistry&, std::ostream&),
                   const MetricRegistry& metrics) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open metrics output file: " + path);
  }
  writer(metrics, out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing metrics to: " + path);
  }
  return Status::OK();
}

}  // namespace

Status ExportMetricsJsonToFile(const MetricRegistry& metrics,
                               const std::string& path) {
  return WriteToFile(path, &WriteMetricsJson, metrics);
}

Status ExportMetricsCsvToFile(const MetricRegistry& metrics,
                              const std::string& path) {
  return WriteToFile(path, &WriteMetricsCsv, metrics);
}

}  // namespace esr
