#include "obs/trace_reader.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "obs/json_value.h"

namespace esr {

namespace {

bool NameToInstantType(const std::string& name, TraceEventType* out) {
  if (name == "Begin") *out = TraceEventType::kBegin;
  else if (name == "Read") *out = TraceEventType::kRead;
  else if (name == "Write") *out = TraceEventType::kWrite;
  else if (name == "Commit") *out = TraceEventType::kCommit;
  else if (name == "Abort") *out = TraceEventType::kAbort;
  else if (name == "BoundCheck") *out = TraceEventType::kBoundCheck;
  else if (name == "ImportCharge") *out = TraceEventType::kImportCharge;
  else if (name == "Wait") *out = TraceEventType::kWait;
  else if (name == "Violation") *out = TraceEventType::kViolation;
  else return false;
  return true;
}

bool NameToSpanKind(const std::string& name, SpanKind* out) {
  if (name == "txn") *out = SpanKind::kTxn;
  else if (name == "rpc") *out = SpanKind::kRpc;
  else if (name == "op") *out = SpanKind::kOp;
  else if (name == "commit") *out = SpanKind::kCommit;
  else if (name == "bound_walk") *out = SpanKind::kBoundWalk;
  else return false;
  return true;
}

uint64_t U64Or(const JsonValue& obj, const std::string& key,
               uint64_t fallback) {
  const double d = obj.NumberOr(key, -1.0);
  return d < 0 ? fallback : static_cast<uint64_t>(d);
}

// One exported Chrome event object -> TraceEvent. Returns false to skip
// (unknown name/phase, metadata rows) — skipping is not an error.
bool DecodeEvent(const JsonValue& obj, TraceEvent* e) {
  const JsonValue* name = obj.Find("name");
  const JsonValue* ph = obj.Find("ph");
  if (name == nullptr || !name->is_string() || ph == nullptr ||
      !ph->is_string()) {
    return false;
  }
  *e = TraceEvent{};
  e->ts_micros = static_cast<int64_t>(obj.NumberOr("ts", 0.0));
  e->site = static_cast<SiteId>(obj.NumberOr("pid", 0.0));
  e->txn = static_cast<TxnId>(obj.NumberOr("tid", 0.0));
  const JsonValue* args = obj.Find("args");

  const std::string& phase = ph->string;
  if (phase == "B" || phase == "E" || phase == "b" || phase == "e") {
    SpanKind kind;
    if (!NameToSpanKind(name->string, &kind)) return false;
    const bool begin = phase == "B" || phase == "b";
    e->type = begin ? TraceEventType::kSpanBegin : TraceEventType::kSpanEnd;
    e->detail = static_cast<uint8_t>(kind);
    if (args != nullptr) {
      e->span = U64Or(*args, "span", 0);
      e->lane = static_cast<uint32_t>(U64Or(*args, "lane", 0));
      // thread_lanes-mode exports move the transaction id into args
      // (tid carries the lane there); prefer it when present.
      e->txn = U64Or(*args, "txn", e->txn);
      if (begin) {
        e->parent = U64Or(*args, "parent", 0);
        e->target = U64Or(*args, "target", 0);
      }
    }
    // Async txn spans also carry the id at top level; prefer args' span
    // but fall back for traces trimmed by other tools.
    if (e->span == 0) e->span = U64Or(obj, "id", 0);
    return e->span != 0;
  }
  if (phase == "s" || phase == "f") {
    e->type = phase == "s" ? TraceEventType::kFlowBegin
                           : TraceEventType::kFlowEnd;
    e->span = U64Or(obj, "id", 0);
    return true;
  }
  if (phase != "i" && phase != "I") return false;

  if (!NameToInstantType(name->string, &e->type)) return false;
  if (args != nullptr) {
    e->target = U64Or(*args, "target", 0);
    e->level = static_cast<uint16_t>(args->NumberOr("level", 0.0));
    e->detail = static_cast<uint8_t>(args->NumberOr("detail", 0.0));
    e->span = U64Or(*args, "span", 0);
    e->lane = static_cast<uint32_t>(U64Or(*args, "lane", 0));
    e->txn = U64Or(*args, "txn", e->txn);
    e->charged = args->NumberOr("charged", 0.0);
    if (e->type == TraceEventType::kWait) {
      e->parent = U64Or(*args, "writer", 0);
    }
    if (e->type == TraceEventType::kBoundCheck ||
        e->type == TraceEventType::kViolation) {
      const double limit = args->NumberOr("limit", -1.0);
      // The exporter clamps unbounded limits to -1 (inf is not JSON).
      e->limit = limit < 0 ? kUnbounded : limit;
    }
  }
  return true;
}

// Recovers events from a capture file cut mid-write. The exporter emits
// one event object per line (prefixed by two spaces, comma-separated), so
// the contiguous prefix is recoverable by parsing line-wise and stopping
// at the first unparsable event after at least one success. Returns the
// number of events salvaged (0 = nothing recognizable; keep the original
// parse error).
size_t SalvageTruncatedTrace(const std::string& json,
                             std::vector<TraceEvent>* out) {
  out->clear();
  size_t pos = 0;
  bool parsed_any = false;
  while (pos < json.size()) {
    size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    size_t begin = pos;
    size_t end = eol;
    pos = eol + 1;
    while (begin < end && (json[begin] == ' ' || json[begin] == '\t')) {
      ++begin;
    }
    while (end > begin &&
           (json[end - 1] == ',' || json[end - 1] == ' ' ||
            json[end - 1] == '\r')) {
      --end;
    }
    if (begin >= end || json[begin] != '{') continue;
    JsonValue obj;
    std::string error;
    if (!ParseJson(json.substr(begin, end - begin), &obj, &error) ||
        !obj.is_object()) {
      // Lines before the first event (the {"traceEvents":[ header) are
      // not standalone objects; skip them. After events started parsing,
      // the first bad line is the truncation point.
      if (parsed_any) break;
      continue;
    }
    parsed_any = true;
    TraceEvent e;
    if (DecodeEvent(obj, &e)) out->push_back(e);
  }
  return out->size();
}

}  // namespace

Status ReadChromeTrace(const std::string& json, std::vector<TraceEvent>* out,
                       TraceMetadata* metadata) {
  JsonValue root;
  std::string error;
  if (!ParseJson(json, &root, &error)) {
    const size_t salvaged = SalvageTruncatedTrace(json, out);
    if (salvaged == 0) {
      return Status::InvalidArgument("malformed trace JSON: " + error);
    }
    ESR_LOG(kWarning) << "trace JSON is truncated (" << error
                      << "); salvaged the contiguous prefix of " << salvaged
                      << " event(s) — stats and certification cover that "
                         "prefix only";
    if (metadata != nullptr) {
      *metadata = TraceMetadata{};
      metadata->truncated = true;
      metadata->recorded = salvaged;
    }
    return Status::OK();
  }
  const JsonValue* events = nullptr;
  if (root.is_array()) {
    events = &root;
  } else if (root.is_object()) {
    events = root.Find("traceEvents");
    if (metadata != nullptr) {
      *metadata = TraceMetadata{};
      if (const JsonValue* other = root.Find("otherData")) {
        metadata->recorded = U64Or(*other, "recorded", 0);
        metadata->dropped = U64Or(*other, "dropped", 0);
        metadata->capacity = U64Or(*other, "capacity", 0);
      }
    }
  }
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument(
        "trace JSON has no traceEvents array");
  }
  out->clear();
  out->reserve(events->array.size());
  for (const JsonValue& obj : events->array) {
    if (!obj.is_object()) continue;
    TraceEvent e;
    if (DecodeEvent(obj, &e)) out->push_back(e);
  }
  if (metadata != nullptr && metadata->dropped > 0) {
    ESR_LOG(kWarning) << "trace capture lost " << metadata->dropped
                      << " event(s) to ring wraparound; certification "
                         "replays the retained "
                      << out->size()
                      << "-event suffix (sound — lost charges only "
                         "under-count accumulation)";
  }
  return Status::OK();
}

Status ReadChromeTraceFile(const std::string& path,
                           std::vector<TraceEvent>* out,
                           TraceMetadata* metadata) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadChromeTrace(buffer.str(), out, metadata);
}

}  // namespace esr
