#include "obs/series.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/stats.h"
#include "obs/exporter.h"

namespace esr {

std::vector<double> RunSeries::ThroughputSeries() const {
  std::vector<double> out;
  out.reserve(windows.size());
  for (const SeriesWindow& w : windows) {
    out.push_back(w.duration_s > 0.0
                      ? static_cast<double>(w.committed) / w.duration_s
                      : 0.0);
  }
  return out;
}

namespace {

constexpr char kCsvMagic[] = "# esr-series v1";
constexpr char kCsvHeader[] =
    "kind,window,start_s,duration_s,committed,aborted,restarts,active_mpl,"
    "mean_op_latency_ms,node,max_accumulated,min_headroom_frac,limit_at_min,"
    "charges,certified_through_s";

/// Node names come from GroupSchema identifiers; a comma would corrupt
/// the row, so it is replaced rather than quoted (the reader stays a
/// plain split).
std::string SafeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ',' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

std::string FormatG(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void WriteSeriesCsv(const RunSeries& series, std::ostream& out) {
  out << kCsvMagic << " window_s=" << FormatG(series.window_s) << "\n";
  out << "# source: " << SafeName(series.source) << "\n";
  out << kCsvHeader << "\n";
  for (size_t i = 0; i < series.windows.size(); ++i) {
    const SeriesWindow& w = series.windows[i];
    out << "window," << i << "," << FormatG(w.start_s) << ","
        << FormatG(w.duration_s) << "," << w.committed << "," << w.aborted
        << "," << w.restarts << "," << FormatG(w.active_mpl) << ","
        << FormatG(w.mean_op_latency_ms) << ",,,,,,";
    // Empty trailing field when certification was off: the reader maps it
    // back to -1, keeping off-runs byte-stable.
    if (w.certified_through_s >= 0.0) {
      out << FormatG(w.certified_through_s);
    }
    out << "\n";
    for (size_t n = 0; n < w.nodes.size() && n < series.node_names.size();
         ++n) {
      const SeriesNodeWindow& node = w.nodes[n];
      out << "node," << i << ",,,,,,,," << SafeName(series.node_names[n])
          << "," << FormatG(node.max_accumulated) << ","
          << FormatG(node.min_headroom_frac) << ","
          << FormatG(node.limit_at_min) << "," << node.charges << ",\n";
    }
  }
}

void WriteSeriesJson(const RunSeries& series, std::ostream& out) {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("series");
  w.BeginObject();
  w.KV("source", series.source);
  w.KV("window_s", series.window_s);
  w.Key("nodes");
  w.BeginArray();
  for (const std::string& name : series.node_names) w.Value(name);
  w.EndArray();
  w.Key("windows");
  w.BeginArray();
  for (const SeriesWindow& win : series.windows) {
    w.BeginObject();
    w.KV("start_s", win.start_s);
    w.KV("duration_s", win.duration_s);
    w.KV("committed", win.committed);
    w.KV("aborted", win.aborted);
    w.KV("restarts", win.restarts);
    w.KV("active_mpl", win.active_mpl);
    w.KV("mean_op_latency_ms", win.mean_op_latency_ms);
    w.KV("certified_through_s", win.certified_through_s);
    w.Key("nodes");
    w.BeginArray();
    for (const SeriesNodeWindow& node : win.nodes) {
      w.BeginObject();
      w.KV("max_accumulated", node.max_accumulated);
      w.KV("min_headroom_frac", node.min_headroom_frac);
      w.KV("limit_at_min", node.limit_at_min);
      w.KV("charges", node.charges);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  out << "\n";
}

Status ExportSeriesCsvToFile(const RunSeries& series,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open series output file: " + path);
  }
  WriteSeriesCsv(series, out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing series to: " + path);
  }
  return Status::OK();
}

namespace {

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

Status BadRow(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("series CSV line " +
                                 std::to_string(line_no) + ": " + why);
}

}  // namespace

Result<RunSeries> ReadSeriesCsv(std::istream& in) {
  RunSeries series;
  std::string line;
  size_t line_no = 0;

  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty series file");
  }
  ++line_no;
  if (line.rfind(kCsvMagic, 0) != 0) {
    return Status::InvalidArgument(
        "not an esr-series file (missing '# esr-series v1' header)");
  }
  const size_t ws = line.find("window_s=");
  if (ws != std::string::npos) {
    series.window_s = std::strtod(line.c_str() + ws + 9, nullptr);
  }

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string kSource = "# source: ";
      if (line.rfind(kSource, 0) == 0) {
        series.source = line.substr(kSource.size());
        while (!series.source.empty() && series.source.back() == '\r') {
          series.source.pop_back();
        }
      }
      continue;
    }
    const std::vector<std::string> f = SplitCsv(line);
    if (f[0] == "kind") continue;  // header row
    // 15 fields since certified_through_s was added; 14 accepted for
    // series written by older builds (certification reads as off).
    if (f.size() != 14 && f.size() != 15) {
      return BadRow(line_no, "expected 14 or 15 fields, got " +
                                 std::to_string(f.size()));
    }
    char* end = nullptr;
    const size_t idx = std::strtoul(f[1].c_str(), &end, 10);
    if (end == f[1].c_str()) return BadRow(line_no, "bad window index");
    if (f[0] == "window") {
      if (idx != series.windows.size()) {
        return BadRow(line_no, "non-contiguous window index");
      }
      SeriesWindow w;
      w.start_s = std::strtod(f[2].c_str(), nullptr);
      w.duration_s = std::strtod(f[3].c_str(), nullptr);
      w.committed = std::strtoll(f[4].c_str(), nullptr, 10);
      w.aborted = std::strtoll(f[5].c_str(), nullptr, 10);
      w.restarts = std::strtoll(f[6].c_str(), nullptr, 10);
      w.active_mpl = std::strtod(f[7].c_str(), nullptr);
      w.mean_op_latency_ms = std::strtod(f[8].c_str(), nullptr);
      if (f.size() == 15 && !f[14].empty()) {
        w.certified_through_s = std::strtod(f[14].c_str(), nullptr);
      }
      series.windows.push_back(std::move(w));
    } else if (f[0] == "node") {
      if (idx >= series.windows.size()) {
        return BadRow(line_no, "node row before its window row");
      }
      const std::string& name = f[9];
      if (name.empty()) return BadRow(line_no, "node row without a name");
      size_t node_idx = 0;
      while (node_idx < series.node_names.size() &&
             series.node_names[node_idx] != name) {
        ++node_idx;
      }
      if (node_idx == series.node_names.size()) {
        series.node_names.push_back(name);
      }
      SeriesWindow& w = series.windows[idx];
      if (w.nodes.size() <= node_idx) w.nodes.resize(node_idx + 1);
      SeriesNodeWindow& node = w.nodes[node_idx];
      node.max_accumulated = std::strtod(f[10].c_str(), nullptr);
      node.min_headroom_frac = std::strtod(f[11].c_str(), nullptr);
      node.limit_at_min = std::strtod(f[12].c_str(), nullptr);
      node.charges = std::strtoll(f[13].c_str(), nullptr, 10);
    } else {
      return BadRow(line_no, "unknown row kind '" + f[0] + "'");
    }
  }
  // Windows written before a node first appeared are shorter; square the
  // table off so index-aligned consumers need no bounds checks.
  for (SeriesWindow& w : series.windows) {
    w.nodes.resize(series.node_names.size());
  }
  return series;
}

Result<RunSeries> ReadSeriesCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open series file: " + path);
  }
  return ReadSeriesCsv(in);
}

SeriesSummary SummarizeSeries(const RunSeries& series) {
  SeriesSummary s;
  s.total_windows = series.windows.size();
  if (series.windows.empty()) return s;

  const MserResult mser = Mser5Truncation(series.ThroughputSeries());
  s.steady_state_found = mser.ok;
  s.warmup_windows = mser.ok ? mser.truncation_windows : 0;

  int64_t committed = 0, aborted = 0;
  double duration = 0.0, mpl_sum = 0.0, latency_sum = 0.0;
  size_t latency_windows = 0;
  for (size_t i = s.warmup_windows; i < series.windows.size(); ++i) {
    const SeriesWindow& w = series.windows[i];
    committed += w.committed;
    aborted += w.aborted;
    duration += w.duration_s;
    mpl_sum += w.active_mpl;
    if (w.committed > 0) {
      latency_sum += w.mean_op_latency_ms;
      ++latency_windows;
    }
  }
  const size_t steady_windows = series.windows.size() - s.warmup_windows;
  s.steady_throughput =
      duration > 0.0 ? static_cast<double>(committed) / duration : 0.0;
  s.steady_abort_rate =
      committed + aborted > 0
          ? static_cast<double>(aborted) /
                static_cast<double>(committed + aborted)
          : 0.0;
  s.steady_mean_mpl =
      steady_windows > 0 ? mpl_sum / static_cast<double>(steady_windows)
                         : 0.0;
  s.steady_mean_op_latency_ms =
      latency_windows > 0
          ? latency_sum / static_cast<double>(latency_windows)
          : 0.0;

  s.nodes.reserve(series.node_names.size());
  for (size_t n = 0; n < series.node_names.size(); ++n) {
    SeriesNodeSummary node;
    node.name = series.node_names[n];
    for (size_t i = 0; i < series.windows.size(); ++i) {
      if (n >= series.windows[i].nodes.size()) continue;
      const SeriesNodeWindow& w = series.windows[i].nodes[n];
      if (w.charges <= 0) continue;
      node.charges += w.charges;
      node.peak_accumulated =
          std::max(node.peak_accumulated, w.max_accumulated);
      if (w.min_headroom_frac < node.min_headroom_frac) {
        node.min_headroom_frac = w.min_headroom_frac;
        node.min_window = i;
        node.limit_at_min = w.limit_at_min;
      }
    }
    if (node.charges > 0) {
      // A node may be charged under several limits (e.g. the root sees
      // both TIL and TEL checks), so pair the utilization with the
      // tightest observation rather than dividing the peak by an
      // unrelated limit.
      node.utilization = 1.0 - node.min_headroom_frac;
    }
    if (node.charges > 0) {
      s.headroom_observed = true;
      if (node.min_headroom_frac < s.tightest_headroom_frac) {
        s.tightest_headroom_frac = node.min_headroom_frac;
        s.tightest_node = node.name;
        s.tightest_window = node.min_window;
        s.tightest_limit = node.limit_at_min;
      }
    }
    s.nodes.push_back(std::move(node));
  }
  s.negative_headroom = s.headroom_observed && s.tightest_headroom_frac < 0.0;

  for (const SeriesWindow& w : series.windows) {
    if (w.certified_through_s < 0.0) continue;
    s.certification_observed = true;
    s.certified_through_s = w.certified_through_s;  // monotone; last wins
  }
  if (s.certification_observed && !series.windows.empty()) {
    const SeriesWindow& last = series.windows.back();
    // A healthy watermark reaches the final boundary; stopping more than
    // one window short means it froze on a violation mid-run.
    const double final_boundary = last.start_s + last.duration_s;
    s.certification_froze =
        s.certified_through_s + series.window_s <= final_boundary;
  }
  return s;
}

void WriteSeriesSummaryJson(const SeriesSummary& summary,
                            std::ostream& out) {
  JsonWriter w(out);
  w.BeginObject();
  w.KV("total_windows", static_cast<int64_t>(summary.total_windows));
  w.KV("steady_state_found", summary.steady_state_found);
  w.KV("warmup_windows", static_cast<int64_t>(summary.warmup_windows));
  w.KV("steady_throughput", summary.steady_throughput);
  w.KV("steady_abort_rate", summary.steady_abort_rate);
  w.KV("steady_mean_mpl", summary.steady_mean_mpl);
  w.KV("steady_mean_op_latency_ms", summary.steady_mean_op_latency_ms);
  w.KV("headroom_observed", summary.headroom_observed);
  w.KV("negative_headroom", summary.negative_headroom);
  w.KV("certification_observed", summary.certification_observed);
  if (summary.certification_observed) {
    w.KV("certified_through_s", summary.certified_through_s);
    w.KV("certification_froze", summary.certification_froze);
  }
  if (summary.headroom_observed) {
    w.Key("tightest");
    w.BeginObject();
    w.KV("node", summary.tightest_node);
    w.KV("window", static_cast<int64_t>(summary.tightest_window));
    w.KV("min_headroom_frac", summary.tightest_headroom_frac);
    w.KV("limit", summary.tightest_limit);
    w.EndObject();
  }
  w.Key("nodes");
  w.BeginArray();
  for (const SeriesNodeSummary& node : summary.nodes) {
    w.BeginObject();
    w.KV("name", node.name);
    w.KV("charges", node.charges);
    w.KV("peak_accumulated", node.peak_accumulated);
    w.KV("min_headroom_frac", node.min_headroom_frac);
    w.KV("min_window", static_cast<int64_t>(node.min_window));
    w.KV("limit_at_min", node.limit_at_min);
    w.KV("utilization", node.utilization);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
}

void ExportHeadroomGauges(const RunSeries& series, MetricRegistry* metrics) {
  if (metrics == nullptr) return;
  double global_min = 1.0;
  bool any = false;
  for (size_t n = 0; n < series.node_names.size(); ++n) {
    double node_min = 1.0;
    bool charged = false;
    for (const SeriesWindow& w : series.windows) {
      if (n >= w.nodes.size() || w.nodes[n].charges <= 0) continue;
      charged = true;
      node_min = std::min(node_min, w.nodes[n].min_headroom_frac);
    }
    if (!charged) continue;
    any = true;
    global_min = std::min(global_min, node_min);
    metrics->gauge("headroom.min_frac." + series.node_names[n])
        .Set(node_min);
  }
  if (any) metrics->gauge("headroom.min_frac").Set(global_min);
}

RunSeries BuildDemoSeries(bool with_violation) {
  RunSeries series;
  series.source = with_violation ? "demo(negative-headroom)" : "demo";
  series.window_s = 1.0;
  series.node_names = {"root", "accounts", "branches"};

  // 30 one-second windows: an 8-window exponential-ish ramp, then steady
  // state around 100 txn/s with a small deterministic ripple.
  for (int i = 0; i < 30; ++i) {
    SeriesWindow w;
    w.start_s = static_cast<double>(i);
    w.duration_s = 1.0;
    if (i < 8) {
      w.committed = 40 + i * 8;  // 40 .. 96
    } else {
      w.committed = 100 + ((i % 2 == 0) ? 2 : -2);
    }
    w.aborted = 3 + (i % 3);
    w.restarts = w.aborted;
    w.active_mpl = i < 8 ? 4.0 + 0.5 * i : 8.0;
    w.mean_op_latency_ms = i < 8 ? 14.0 - i : 6.0 + 0.25 * (i % 4);

    SeriesNodeWindow root;
    root.limit_at_min = 10.0;
    root.max_accumulated = i < 8 ? 1.0 + 0.5 * i : 6.0 + 0.1 * (i % 5);
    root.min_headroom_frac =
        (root.limit_at_min - root.max_accumulated) / root.limit_at_min;
    root.charges = w.committed * 3;

    SeriesNodeWindow accounts;
    accounts.limit_at_min = 2.0;
    accounts.max_accumulated = i < 8 ? 0.2 * i : 1.4 + 0.05 * (i % 4);
    accounts.min_headroom_frac =
        (accounts.limit_at_min - accounts.max_accumulated) /
        accounts.limit_at_min;
    accounts.charges = w.committed * 2;
    if (with_violation && i == 20) {
      // One window where a charge slipped past the bound: the failure the
      // exit-code contract exists to catch.
      accounts.max_accumulated = 2.1;
      accounts.min_headroom_frac = -0.05;
    }

    SeriesNodeWindow branches;
    branches.limit_at_min = 5.0;
    branches.max_accumulated = i < 8 ? 0.3 * i : 2.4 + 0.1 * (i % 3);
    branches.min_headroom_frac =
        (branches.limit_at_min - branches.max_accumulated) /
        branches.limit_at_min;
    branches.charges = w.committed;

    w.nodes = {root, accounts, branches};
    series.windows.push_back(std::move(w));
  }
  return series;
}

}  // namespace esr
