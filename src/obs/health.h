#ifndef ESR_OBS_HEALTH_H_
#define ESR_OBS_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/series.h"

namespace esr {

// -- Alerts -----------------------------------------------------------------

enum class AlertSeverity : uint8_t {
  kWarn = 0,
  kError = 1,
};

const char* AlertSeverityName(AlertSeverity severity);

/// One detected anomaly episode. Episodes are windows-denominated: an
/// alert opens when its detector's condition has held long enough to be
/// credible and keeps extending `last_window` while the condition
/// persists, so a 70 s livelock is one alert with a 70-window evidence
/// range, not 70 alerts.
struct Alert {
  /// Detector slug, e.g. "abort_livelock".
  std::string detector;
  AlertSeverity severity = AlertSeverity::kWarn;
  /// Evidence window range, inclusive on both ends.
  size_t first_window = 0;
  size_t last_window = 0;
  /// Virtual (sim) or wall-clock (threaded server) seconds spanned by
  /// the evidence windows.
  double start_s = 0.0;
  double end_s = 0.0;
  /// Blamed hierarchy node, empty when the alert is not node-scoped.
  std::string node;
  /// Blamed shard, -1 when the alert is not shard-scoped.
  int shard = -1;
  /// Human-readable one-liner (deterministic — journals are compared
  /// byte-for-byte across --jobs levels).
  std::string message;
  /// Detector-specific numeric evidence, in a fixed per-detector order.
  std::vector<std::pair<std::string, double>> evidence;
  /// True while the condition still held at the last window fed to the
  /// monitor (live drivers export this as esr_alert_active).
  bool open = false;
};

/// Per-window side-channel input that is not part of SeriesWindow.
/// `shard_ops` carries this window's per-shard op deltas from the
/// sharded engine's `engine.shard<i>.ops` stats; leave empty for
/// drivers without a sharded engine (the ShardImbalanceDetector is then
/// inert, never unhealthy).
struct HealthInput {
  std::vector<int64_t> shard_ops;
};

// -- Detector options -------------------------------------------------------

/// Sustained near-zero commits with a live abort/restart rate: the
/// documented MPL 2/low episodic livelock (EXPERIMENTS.md) spent 70
/// consecutive seconds committing nothing while aborting 61-70
/// transactions per 5 s window.
struct AbortLivelockOptions {
  bool enabled = true;
  /// Consecutive qualifying windows before the alert opens.
  size_t min_windows = 5;
  /// A window qualifies when committed <= max_committed ...
  int64_t max_committed = 0;
  /// ... and aborted (or restarts) >= min_aborted. Distinguishes
  /// livelock (work churning, nothing finishing) from idleness.
  int64_t min_aborted = 1;
};

/// Rolling bimodality + coefficient-of-variation test on
/// committed-per-window at high MPL: the documented deep-thrashing
/// bistability (MPL >= 8) splits runs into ~17 tps and ~7 tps regimes.
struct ThrashingBistabilityOptions {
  bool enabled = true;
  /// Trailing windows the test runs over.
  size_t lookback = 20;
  /// Mean active MPL over the lookback must reach this before the test
  /// applies (the phenomenon is documented at MPL >= 8; stable MPL 3/6
  /// rows must never trip it).
  double min_mpl = 7.0;
  /// Coefficient of variation (stddev/mean) threshold.
  double min_cv = 0.4;
  /// The two throughput clusters (split at the lookback mean) must be
  /// separated by at least this fraction of the mean ...
  double min_separation_frac = 0.8;
  /// ... and each cluster must hold at least this fraction of the
  /// lookback windows (rejects one-off dips).
  double min_cluster_frac = 0.25;
};

/// Per-node epsilon headroom trending to zero before run end, from the
/// NodeHeadroomTracker samples riding each window. Healthy ESR runs
/// routinely brush low per-window headroom — transactions legitimately
/// spend most of their budget and the engine rejects the overdraft — so
/// a low reading alone is NOT an anomaly. The detector fires on two
/// shapes only: a *sustained monotone drain* (shared accumulators
/// emptying toward zero, as in replica-divergence scenarios), or
/// *negative* headroom (a violation the engine should have prevented).
struct HeadroomExhaustionOptions {
  bool enabled = true;
  /// Consecutive charged windows in the trend test.
  size_t lookback = 10;
  /// Alert when the fitted trend crosses zero within this many windows.
  double horizon_windows = 20.0;
  /// Trend alerts only fire once headroom is already below this
  /// fraction (a full tank draining slowly is not an emergency).
  double max_start_frac = 0.5;
  /// The lookback samples must be non-increasing within this tolerance
  /// (stationary noise breaks monotonicity almost surely; a genuine
  /// drain does not).
  double monotone_eps = 0.02;
  /// ... and the trailing half of the lookback must have fallen by at
  /// least this much on its own — the drain is ongoing, not a load
  /// ramp that already settled into a plateau.
  double min_decline = 0.1;
  /// Headroom falling *while load ramps up* is the expected response to
  /// the ramp, not a drain: the trend test is skipped when mean
  /// committed over the trailing half of the lookback exceeds the
  /// leading half's by more than this factor.
  double max_load_ramp = 1.2;
  /// Immediate kError alert strictly below this fraction. The default 0
  /// means: only negative headroom — an enforced-bound engine never
  /// goes below zero, so anything less is a violation.
  double exhausted_frac = 0.0;
};

/// Certified-through watermark lagging the window boundary: the
/// streaming certifier (obs/stream_audit.h) freezes its watermark at
/// the first violation, so a growing lag means either a violation or a
/// stalled certification pipeline.
struct CertificationStallOptions {
  bool enabled = true;
  /// Lag, in windows, beyond which the alert opens.
  double max_lag_windows = 3.0;
};

/// Max/mean per-shard op ratio from the sharded engine's
/// `engine.shard<i>.*` stats (live drivers only; see HealthInput).
struct ShardImbalanceOptions {
  bool enabled = true;
  /// max/mean per-shard ops ratio beyond which a window qualifies.
  double max_ratio = 4.0;
  /// Windows with fewer total ops than this are ignored (ratios over a
  /// handful of ops are noise).
  int64_t min_total_ops = 64;
  /// Consecutive qualifying windows before the alert opens.
  size_t min_windows = 2;
};

struct HealthOptions {
  /// Provenance echoed into the report/journal (defaults to the
  /// series' own source in AnalyzeSeries).
  std::string source;
  double window_s = 1.0;
  /// Hierarchy node names, index-aligned with SeriesWindow::nodes.
  std::vector<std::string> node_names;
  /// ESR_LOG(kWarning/kError) when an alert opens.
  bool log_alerts = true;
  AbortLivelockOptions livelock;
  ThrashingBistabilityOptions bistability;
  HeadroomExhaustionOptions headroom;
  CertificationStallOptions certification;
  ShardImbalanceOptions shard_imbalance;
};

// -- Report -----------------------------------------------------------------

struct HealthReport {
  std::string source;
  double window_s = 1.0;
  size_t windows = 0;
  std::vector<Alert> alerts;
  bool healthy() const { return alerts.empty(); }
};

// -- Detectors --------------------------------------------------------------

/// Where detectors deposit episodes. HealthMonitor implements this; a
/// test can substitute its own sink.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  /// Registers a new open episode, returns a handle for Extend/Close.
  virtual size_t OpenAlert(Alert alert) = 0;
  /// Extends an open episode's evidence range through `window`.
  virtual void ExtendAlert(size_t handle, size_t window, double end_s) = 0;
  /// Marks an episode's condition as cleared.
  virtual void CloseAlert(size_t handle) = 0;
};

/// A windowed anomaly detector. `OnWindow` is called once per closed
/// series window, in order; `Finish` once at end of run (close any
/// still-open episode bookkeeping there if needed — open alerts stay
/// `open` in the report, which is itself a finding).
class HealthDetector {
 public:
  virtual ~HealthDetector() = default;
  virtual const char* name() const = 0;
  virtual void OnWindow(size_t index, const SeriesWindow& window,
                        const HealthInput& input, AlertSink* sink) = 0;
  virtual void Finish(AlertSink* sink) { (void)sink; }
};

// -- Monitor ----------------------------------------------------------------

/// Hosts the detector set and accumulates the alert journal. Feed it
/// live (one OnWindow per closed window, e.g. threaded_server's
/// sampler) or replay a recorded series through AnalyzeSeries. The
/// result is identical either way: detectors see only the window
/// stream, so offline replay of a recorded run reproduces exactly the
/// alerts a live monitor would have raised.
class HealthMonitor : public AlertSink {
 public:
  explicit HealthMonitor(HealthOptions options = HealthOptions());
  ~HealthMonitor() override;

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Adds a custom detector beside the built-in five.
  void AddDetector(std::unique_ptr<HealthDetector> detector);

  void OnWindow(const SeriesWindow& window,
                const HealthInput& input = HealthInput());
  /// Idempotent end-of-run hook.
  void Finish();

  size_t windows_seen() const { return windows_; }
  const std::vector<Alert>& alerts() const { return alerts_; }
  /// Open episodes right now.
  size_t active_alerts() const;
  /// True when the named detector has an open episode.
  bool detector_active(const std::string& name) const;
  /// Registered detector names, in registration order.
  std::vector<std::string> detector_names() const;

  HealthReport Report() const;

  /// Publishes `alert.count` plus one `alert.active.<detector>` gauge
  /// per registered detector (1 while an episode is open). The
  /// Prometheus exposition renders these as esr_alert_count and
  /// esr_alert_active{detector="..."}.
  void ExportGauges(MetricRegistry* metrics) const;

  const HealthOptions& options() const { return options_; }

  // AlertSink:
  size_t OpenAlert(Alert alert) override;
  void ExtendAlert(size_t handle, size_t window, double end_s) override;
  void CloseAlert(size_t handle) override;

 private:
  HealthOptions options_;
  std::vector<std::unique_ptr<HealthDetector>> detectors_;
  std::vector<Alert> alerts_;
  size_t windows_ = 0;
  bool finished_ = false;
};

// -- Offline analysis -------------------------------------------------------

/// Replays a recorded series through a fresh HealthMonitor. Source,
/// window_s, and node names default from the series when unset in
/// `options`. Purely a function of the series bytes — the bench
/// harness relies on this for --jobs byte-identity.
HealthReport AnalyzeSeries(const RunSeries& series,
                           HealthOptions options = HealthOptions());

// -- Journal ----------------------------------------------------------------

/// JSON alert journal:
///   {"health": {"source", "window_s", "windows", "healthy",
///               "alert_count", "alerts": [{"detector", "severity",
///               "first_window", "last_window", "start_s", "end_s",
///               "node", "shard", "open", "message",
///               "evidence": {...}}]}}
void WriteHealthJson(const HealthReport& report, std::ostream& out);
Status WriteHealthJsonToFile(const HealthReport& report,
                             const std::string& path);

/// Parses WriteHealthJson output (tools/esr_health --journal, tests).
Result<HealthReport> ReadHealthJson(std::istream& in);
Result<HealthReport> ReadHealthJsonFile(const std::string& path);

/// Human-readable report (tools/esr_health default output).
void WriteHealthText(const HealthReport& report, std::ostream& out);

// -- Demo -------------------------------------------------------------------

/// Deterministic synthetic series reproducing the documented MPL 2/low
/// abort-livelock shape: healthy throughput except windows 12..25,
/// which commit nothing while aborting steadily. AnalyzeSeries over it
/// raises exactly one abort_livelock alert blaming windows 12..25.
RunSeries BuildLivelockDemoSeries();

/// Deterministic synthetic series reproducing the documented MPL >= 8
/// deep-thrashing bistability: committed-per-window alternates between
/// a ~17 tps and a ~7 tps regime in 4-window blocks at active MPL 9.
RunSeries BuildBistableDemoSeries();

}  // namespace esr

#endif  // ESR_OBS_HEALTH_H_
