#ifndef ESR_OBS_AUDIT_H_
#define ESR_OBS_AUDIT_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.h"
#include "hierarchy/accumulator.h"
#include "hierarchy/bound_replay.h"
#include "obs/trace.h"
#include "obs/trace_reader.h"

namespace esr {

struct StreamCertification;

// BoundViolation — the shared recertification-failure record — lives in
// hierarchy/bound_replay.h alongside the replay core; the streaming
// certifier (obs/stream_audit.h) reports the same type so the two
// checkers' outputs can be diffed field for field.

/// One wait edge of the conflict graph: `waiter` blocked on `object`
/// because `writer` held an uncommitted write.
struct ConflictEdge {
  TxnId waiter = 0;
  TxnId writer = 0;
  uint64_t object = 0;
  int64_t ts_wait = 0;
  /// Time until the waiter's next RPC attempt (backoff + retry travel);
  /// 0 when no retry was captured.
  int64_t wait_micros = 0;
};

/// Aggregated view of one blocking writer.
struct BlockerSummary {
  TxnId writer = 0;
  uint64_t waits_induced = 0;
  int64_t total_wait_micros = 0;
  /// 'c' committed, 'a' aborted, '?' end not in trace.
  char outcome = '?';
};

/// Critical-path decomposition of one transaction's lifetime:
///   total = rpc_wait + service + conflict_wait + other
/// where rpc_wait is RPC time minus the engine work nested inside it
/// (network travel + CPU queueing), service is engine op/commit CPU time,
/// conflict_wait is time between a Wait verdict and the retry RPC, and
/// other is client think time / scheduling (and any uninstrumented gap).
struct TxnBreakdown {
  TxnId txn = 0;
  SiteId site = 0;
  bool committed = false;
  int64_t total_micros = 0;
  int64_t rpc_wait_micros = 0;
  int64_t service_micros = 0;
  int64_t conflict_wait_micros = 0;
  int64_t other_micros = 0;
};

struct AuditReport {
  TraceMetadata metadata;
  size_t num_events = 0;
  size_t txns_seen = 0;
  size_t txns_committed = 0;
  size_t txns_aborted = 0;
  /// Bound-check walks replayed / individual node charges applied.
  size_t walks_replayed = 0;
  size_t charges_applied = 0;

  std::vector<BoundViolation> violations;
  std::vector<ConflictEdge> conflicts;
  /// Sorted by total induced wait, descending.
  std::vector<BlockerSummary> blockers;
  /// Committed transactions, sorted by total latency, descending.
  std::vector<TxnBreakdown> breakdowns;

  /// Averages over committed transactions (microseconds).
  double avg_total = 0.0;
  double avg_rpc_wait = 0.0;
  double avg_service = 0.0;
  double avg_conflict_wait = 0.0;
  double avg_other = 0.0;

  /// Every admitted charge stayed within its declared bounds.
  bool certified() const { return violations.empty(); }
};

/// Replays a captured trace: recertifies every hierarchical bound from the
/// BoundCheck stream (Sec. 5.3.1's invariant, checked offline), rebuilds
/// the conflict graph from Wait events, and decomposes commit latency from
/// the causal spans. Events must be in record order (as Snapshot and
/// ReadChromeTrace return them).
AuditReport AuditTrace(const std::vector<TraceEvent>& events,
                       const TraceMetadata& metadata = TraceMetadata{});

/// Human-readable report; `top_n` bounds the blocker and slowest-commit
/// tables.
void PrintAuditReport(const AuditReport& report, std::ostream& out,
                      size_t top_n = 10);

/// Machine-readable report (one JSON object). When `stream` is given, a
/// "stream" sub-object carries the streaming certifier's verdict over the
/// same events (tools/esr_audit runs both and diffs them).
void WriteAuditJson(const AuditReport& report, std::ostream& out,
                    size_t top_n = 10,
                    const StreamCertification* stream = nullptr);

/// True when the streaming certifier's verdict agrees with the offline
/// replay field for field: same walk and charge counts, and the same
/// violations (txn, direction, group, level, interval, accumulated,
/// limit). Any disagreement is a certifier bug, not a property of the
/// trace — the two share BoundWalkReplayer.
bool StreamMatchesOffline(const AuditReport& report,
                          const StreamCertification& stream);

}  // namespace esr

#endif  // ESR_OBS_AUDIT_H_
